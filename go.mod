module github.com/tipprof/tip

go 1.22
