package tip

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"io"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// assertResultsIdentical deep-compares every profiler artifact of two runs.
func assertResultsIdentical(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if ref.SampleInterval != got.SampleInterval {
		t.Fatalf("%s: interval %d vs %d", label, ref.SampleInterval, got.SampleInterval)
	}
	if !reflect.DeepEqual(ref.Oracle.Profile, got.Oracle.Profile) {
		t.Fatalf("%s: Oracle profile differs", label)
	}
	if !reflect.DeepEqual(ref.Oracle.Stack, got.Oracle.Stack) {
		t.Fatalf("%s: cycle stack differs", label)
	}
	for _, k := range AllKinds() {
		a, b := ref.Sampled[k], got.Sampled[k]
		if a.Samples != b.Samples {
			t.Fatalf("%s: %v sample count %d vs %d", label, k, a.Samples, b.Samples)
		}
		if !reflect.DeepEqual(a.Profile, b.Profile) {
			t.Fatalf("%s: %v profile differs", label, k)
		}
	}
}

// TestRunStreamingMatchesCaptured is the metamorphic identity pin for the
// fused path: at a fixed sampling interval, streaming and capture-then-replay
// must produce deeply equal profiler state at ReplayWorkers 1 and 4, with
// the conservation checker attached throughout.
func TestRunStreamingMatchesCaptured(t *testing.T) {
	w, capture, stats := captureForTest(t)
	for _, workers := range []int{1, 4} {
		rc := DefaultRunConfig()
		rc.SampleInterval = 1009
		rc.Check = true
		rc.WithBreakdown = true
		rc.ReplayWorkers = workers

		ref, err := RunCaptured(context.Background(), w, capture, stats, rc)
		if err != nil {
			t.Fatalf("RunCaptured workers=%d: %v", workers, err)
		}
		got, err := RunStreaming(context.Background(), w, rc)
		if err != nil {
			t.Fatalf("RunStreaming workers=%d: %v", workers, err)
		}
		assertResultsIdentical(t, "workers="+string(rune('0'+workers)), ref, got)
		if got.Stats != stats {
			t.Fatalf("workers=%d: streaming stats %+v, want %+v", workers, got.Stats, stats)
		}
	}
}

// TestRunStreamingPilotParityOnGolden pins pilot-window calibration against
// CalibrateInterval on the committed golden capture's workload: the run ends
// inside the default pilot window, so the pilot stats are exact and the
// streamed run must pick the identical interval — and therefore produce
// identical profiles — to the two-pass path.
func TestRunStreamingPilotParityOnGolden(t *testing.T) {
	w, err := workload.LoadScaled("mcf", 1, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.TargetSamples = 512
	rc.Check = true

	capt, stats, err := CaptureWorkload(w, rc.Core)
	if err != nil {
		t.Fatal(err)
	}
	defer capt.Close()
	if stats.Cycles >= DefaultPilotCycles {
		t.Fatalf("golden workload runs %d cycles, expected to end inside the %d-cycle pilot window",
			stats.Cycles, uint64(DefaultPilotCycles))
	}
	ref, err := RunCaptured(context.Background(), w, capt, stats, rc)
	if err != nil {
		t.Fatal(err)
	}

	got, err := RunStreaming(context.Background(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	want := CalibrateInterval(stats.Cycles, rc.TargetSamples)
	if got.SampleInterval != want {
		t.Fatalf("streamed interval %d, want CalibrateInterval's %d", got.SampleInterval, want)
	}
	assertResultsIdentical(t, "golden pilot parity", ref, got)
}

// TestRunStreamingTeeMatchesCapture checks the tee path emits the
// byte-identical encoded stream CaptureWorkload produces, and that the
// committed golden capture validates it end to end.
func TestRunStreamingTeeMatchesCapture(t *testing.T) {
	w, err := workload.LoadScaled("mcf", 1, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.TargetSamples = 512
	res, capt, stats, err := RunStreamingTee(context.Background(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer capt.Close()
	if res == nil || stats.Cycles == 0 || capt.Cycles() != stats.Cycles {
		t.Fatalf("tee bookkeeping: stats=%+v capture cycles=%d", stats, capt.Cycles())
	}
	var got bytes.Buffer
	if _, err := capt.WriteTo(&got); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(goldenCapturePath)
	if err != nil {
		t.Skipf("golden capture unavailable: %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("teed capture diverged from the committed golden capture")
	}
}

// TestRunStreamingConsumerFault checks a failing extra consumer aborts the
// fused run — including the still-simulating core — and surfaces its error.
func TestRunStreamingConsumerFault(t *testing.T) {
	w, err := workload.LoadScaled("imagick", 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	bad := &faultingEveryCycle{failAt: 500}
	rc := DefaultRunConfig()
	rc.SampleInterval = 1009
	rc.ReplayWorkers = 4
	rc.ExtraConsumers = []trace.Consumer{bad}
	_, err = RunStreaming(context.Background(), w, rc)
	if err == nil || !strings.Contains(err.Error(), "injected mid-replay failure") {
		t.Fatalf("err = %v, want the injected failure", err)
	}
}

// TestRunStreamingContextCancelled checks an already cancelled context stops
// the fused run before results are delivered.
func TestRunStreamingContextCancelled(t *testing.T) {
	w, err := workload.LoadScaled("imagick", 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := DefaultRunConfig()
	rc.TargetSamples = 512
	res, err := RunStreaming(ctx, w, rc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("got a result from a cancelled streamed run")
	}
}

// TestRunStreamingExtraConsumersAt checks the post-calibration hook runs
// exactly once with the calibrated interval and its consumers join the
// matrix.
func TestRunStreamingExtraConsumersAt(t *testing.T) {
	w, err := workload.LoadScaled("mcf", 1, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.TargetSamples = 512
	var calls int
	var hookInterval, hookEst uint64
	counter := &trace.CountingConsumer{}
	rc.ExtraConsumersAt = func(interval, estCycles uint64) []trace.Consumer {
		calls++
		hookInterval, hookEst = interval, estCycles
		return []trace.Consumer{counter}
	}
	res, err := RunStreaming(context.Background(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("hook ran %d times, want once", calls)
	}
	if hookInterval != res.SampleInterval || hookEst != res.Stats.Cycles {
		t.Fatalf("hook saw interval=%d est=%d, want %d/%d (exact pilot)",
			hookInterval, hookEst, res.SampleInterval, res.Stats.Cycles)
	}
	if counter.Cycles != res.Stats.Cycles || !counter.Finished {
		t.Fatalf("hook consumer saw %d records (finished=%v), want every one of %d cycles",
			counter.Cycles, counter.Finished, res.Stats.Cycles)
	}
}

// TestPilotEstimateCycles covers the extrapolation arithmetic.
func TestPilotEstimateCycles(t *testing.T) {
	cases := []struct {
		name string
		ps   trace.PilotStats
		dyn  uint64
		want uint64
	}{
		{"exact", trace.PilotStats{Cycles: 123, Committed: 456, Exact: true}, 1 << 20, 123},
		{"no-budget", trace.PilotStats{Cycles: 100, Committed: 50}, 0, 100},
		{"no-commits", trace.PilotStats{Cycles: 100}, 1000, 100},
		{"proportional", trace.PilotStats{Cycles: 1000, Committed: 500}, 5000, 10_000},
		{"never-below-pilot", trace.PilotStats{Cycles: 1000, Committed: 500}, 100, 1000},
		{"saturates", trace.PilotStats{Cycles: math.MaxUint64 / 2, Committed: 1}, math.MaxUint64 / 2, math.MaxUint64},
	}
	for _, tc := range cases {
		if got := PilotEstimateCycles(tc.ps, tc.dyn); got != tc.want {
			t.Errorf("%s: PilotEstimateCycles(%+v, %d) = %d, want %d", tc.name, tc.ps, tc.dyn, got, tc.want)
		}
	}
}
