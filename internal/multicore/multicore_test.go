package multicore

import (
	"testing"

	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

func load(t *testing.T, name string, scale uint64) *workload.Workload {
	t.Helper()
	w, err := workload.LoadScaled(name, 1, scale)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func sysConfig() Config {
	cfg := Config{Core: cpu.DefaultConfig()}
	cfg.Core.MaxCycles = 0
	cfg.MaxCycles = 100_000_000
	return cfg
}

func TestTwoCoresFinishIndependently(t *testing.T) {
	short := load(t, "exchange2", 60_000)
	long := load(t, "exchange2", 240_000)
	a, b := &trace.CountingConsumer{}, &trace.CountingConsumer{}
	sys := New(sysConfig(), []CoreSpec{
		{Workload: short, Consumers: []trace.Consumer{a}},
		{Workload: long, Consumers: []trace.Consumer{b}},
	})
	results, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Finished || !b.Finished {
		t.Fatal("consumers not finished")
	}
	if results[0].Stats.Cycles >= results[1].Stats.Cycles {
		t.Fatalf("short workload (%d cycles) not shorter than long (%d)",
			results[0].Stats.Cycles, results[1].Stats.Cycles)
	}
	// A finished core's consumer stops receiving records.
	if a.Cycles != results[0].Stats.Cycles && a.Cycles != results[0].Stats.Cycles+1 {
		t.Fatalf("core 0 consumer saw %d records for %d cycles", a.Cycles, results[0].Stats.Cycles)
	}
}

func TestSharedLLCContentionSlowsCoRunners(t *testing.T) {
	// mcf (DRAM-bound pointer chasing) co-running with a second mcf must
	// be slower than running alone on the same shared-LLC system.
	solo := New(sysConfig(), []CoreSpec{
		{Workload: load(t, "mcf", 60_000)},
	})
	soloRes, err := solo.Run()
	if err != nil {
		t.Fatal(err)
	}
	pair := New(sysConfig(), []CoreSpec{
		{Workload: load(t, "mcf", 60_000)},
		{Workload: load(t, "omnetpp", 120_000)},
	})
	pairRes, err := pair.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pairRes[0].Stats.Committed != soloRes[0].Stats.Committed {
		t.Fatalf("instruction counts differ: %d vs %d",
			pairRes[0].Stats.Committed, soloRes[0].Stats.Committed)
	}
	if pairRes[0].Stats.Cycles <= soloRes[0].Stats.Cycles {
		t.Fatalf("co-run mcf (%d cycles) not slower than solo (%d)",
			pairRes[0].Stats.Cycles, soloRes[0].Stats.Cycles)
	}
}

// TestPerCoreTIPStaysAccurateUnderContention: each core's TIP unit profiles
// its own workload accurately even while sharing the memory system.
func TestPerCoreTIPStaysAccurateUnderContention(t *testing.T) {
	mkConsumers := func(w *workload.Workload) (*profiler.Oracle, *profiler.Sampled, *profiler.Sampled, []trace.Consumer) {
		or := profiler.NewOracle(w.Prog, false)
		tip := profiler.NewSampled(profiler.KindTIP, w.Prog, sampling.NewPeriodic(53))
		nci := profiler.NewSampled(profiler.KindNCI, w.Prog, sampling.NewPeriodic(53))
		return or, tip, nci, []trace.Consumer{or, tip, nci}
	}
	w0 := load(t, "imagick", 200_000)
	w1 := load(t, "lbm", 200_000)
	or0, tip0, nci0, cons0 := mkConsumers(w0)
	or1, tip1, nci1, cons1 := mkConsumers(w1)
	sys := New(sysConfig(), []CoreSpec{
		{Workload: w0, Consumers: cons0},
		{Workload: w1, Consumers: cons1},
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	e0 := tip0.Profile.Error(or0.Profile, profile.GranInstruction, true)
	e1 := tip1.Profile.Error(or1.Profile, profile.GranInstruction, true)
	if e0 > 0.10 {
		t.Fatalf("core 0 TIP error %.3f under contention", e0)
	}
	if e1 > 0.10 {
		t.Fatalf("core 1 TIP error %.3f under contention", e1)
	}
	if n0 := nci0.Profile.Error(or0.Profile, profile.GranInstruction, true); n0 < e0 {
		t.Fatalf("core 0: NCI %.3f beat TIP %.3f", n0, e0)
	}
	if n1 := nci1.Profile.Error(or1.Profile, profile.GranInstruction, true); n1 < e1 {
		t.Fatalf("core 1: NCI %.3f beat TIP %.3f", n1, e1)
	}
	// Oracle accounts every cycle on both cores.
	if got, want := or0.Profile.Attributed(), or0.Profile.TotalCycles; got < want-1 || got > want+1 {
		t.Fatalf("core 0 oracle attributed %v of %v", got, want)
	}
	if got, want := or1.Profile.Attributed(), or1.Profile.TotalCycles; got < want-1 || got > want+1 {
		t.Fatalf("core 1 oracle attributed %v of %v", got, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []CoreResult {
		sys := New(sysConfig(), []CoreSpec{
			{Workload: load(t, "x264", 80_000)},
			{Workload: load(t, "deepsjeng", 80_000)},
		})
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Stats != b[i].Stats {
			t.Fatalf("core %d stats differ across identical runs", i)
		}
	}
}

func TestLLCSharedBetweenCores(t *testing.T) {
	sys := New(sysConfig(), []CoreSpec{
		{Workload: load(t, "mcf", 40_000)},
		{Workload: load(t, "canneal", 40_000)},
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if total := sys.LLC().Hits + sys.LLC().Misses; sys.LLC().Misses == 0 || total < 1000 {
		t.Fatalf("shared LLC barely used: %d hits, %d misses", sys.LLC().Hits, sys.LLC().Misses)
	}
}

func TestEmptySpecsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty system")
		}
	}()
	New(sysConfig(), nil)
}

func TestMaxCyclesAborts(t *testing.T) {
	cfg := sysConfig()
	cfg.MaxCycles = 100
	sys := New(cfg, []CoreSpec{{Workload: load(t, "x264", 500_000)}})
	if _, err := sys.Run(); err == nil {
		t.Fatal("expected MaxCycles error")
	}
}

// TestMaxCyclesBoundary pins the cap semantics to cpu.Core's: MaxCycles
// permits exactly MaxCycles lockstep cycles, so a run needing N cycles
// succeeds at MaxCycles=N and aborts at N-1.
func TestMaxCyclesBoundary(t *testing.T) {
	specs := func() []CoreSpec {
		return []CoreSpec{
			{Workload: load(t, "exchange2", 40_000)},
			{Workload: load(t, "exchange2", 80_000)},
		}
	}
	cfg := sysConfig()
	a, b := &trace.CountingConsumer{}, &trace.CountingConsumer{}
	unboundedSpecs := specs()
	unboundedSpecs[0].Consumers = []trace.Consumer{a}
	unboundedSpecs[1].Consumers = []trace.Consumer{b}
	if _, err := New(cfg, unboundedSpecs).Run(); err != nil {
		t.Fatal(err)
	}
	// Every lockstep cycle delivers a record to each live core's consumer,
	// so the slower core's record count is the cycles the run stepped.
	steps := a.Cycles
	if b.Cycles > steps {
		steps = b.Cycles
	}

	cfg.MaxCycles = steps
	if _, err := New(cfg, specs()).Run(); err != nil {
		t.Fatalf("MaxCycles=%d (exact) aborted: %v", steps, err)
	}
	cfg.MaxCycles = steps - 1
	if _, err := New(cfg, specs()).Run(); err == nil {
		t.Fatalf("MaxCycles=%d (one short) did not abort", steps-1)
	}
}

// recordSink copies every record it observes.
type recordSink struct {
	recs  []trace.Record
	total uint64
}

func (s *recordSink) OnCycle(r *trace.Record)   { s.recs = append(s.recs, *r) }
func (s *recordSink) Finish(totalCycles uint64) { s.total = totalCycles }

// TestCaptureRunInterleavesTaggedRecords checks the shared-consumer stream:
// records are tagged with the producing core, the per-core subsequences are
// exactly what each core's own consumers observed, and the interleaving is
// lockstep (cycle-major, core order within a cycle).
func TestCaptureRunInterleavesTaggedRecords(t *testing.T) {
	var per [2]recordSink
	var shared recordSink
	sys := New(sysConfig(), []CoreSpec{
		{Workload: load(t, "exchange2", 40_000), Consumers: []trace.Consumer{&per[0]}},
		{Workload: load(t, "exchange2", 80_000), Consumers: []trace.Consumer{&per[1]}},
	})
	if _, err := sys.CaptureRun(nil, &shared); err != nil {
		t.Fatal(err)
	}
	if len(shared.recs) != len(per[0].recs)+len(per[1].recs) {
		t.Fatalf("shared stream has %d records, cores emitted %d+%d",
			len(shared.recs), len(per[0].recs), len(per[1].recs))
	}
	var idx [2]int
	lastCycle := uint64(0)
	lastCore := -1
	for i, r := range shared.recs {
		if r.Core > 1 {
			t.Fatalf("record %d tagged with core %d", i, r.Core)
		}
		c := int(r.Core)
		if idx[c] >= len(per[c].recs) {
			t.Fatalf("core %d emitted more shared records than its own consumer saw", c)
		}
		if r != per[c].recs[idx[c]] {
			t.Fatalf("shared record %d differs from core %d record %d", i, c, idx[c])
		}
		idx[c]++
		if r.Cycle < lastCycle {
			t.Fatalf("record %d regressed to cycle %d after %d", i, r.Cycle, lastCycle)
		}
		if r.Cycle == lastCycle && c <= lastCore {
			t.Fatalf("record %d breaks core order within cycle %d", i, r.Cycle)
		}
		lastCycle, lastCore = r.Cycle, c
	}
	if idx[0] != len(per[0].recs) || idx[1] != len(per[1].recs) {
		t.Fatalf("shared stream missing records: %d/%d and %d/%d",
			idx[0], len(per[0].recs), idx[1], len(per[1].recs))
	}
}
