package multicore

import (
	"testing"

	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

func load(t *testing.T, name string, scale uint64) *workload.Workload {
	t.Helper()
	w, err := workload.LoadScaled(name, 1, scale)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func sysConfig() Config {
	cfg := Config{Core: cpu.DefaultConfig()}
	cfg.Core.MaxCycles = 0
	cfg.MaxCycles = 100_000_000
	return cfg
}

func TestTwoCoresFinishIndependently(t *testing.T) {
	short := load(t, "exchange2", 60_000)
	long := load(t, "exchange2", 240_000)
	a, b := &trace.CountingConsumer{}, &trace.CountingConsumer{}
	sys := New(sysConfig(), []CoreSpec{
		{Workload: short, Consumers: []trace.Consumer{a}},
		{Workload: long, Consumers: []trace.Consumer{b}},
	})
	results, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Finished || !b.Finished {
		t.Fatal("consumers not finished")
	}
	if results[0].Stats.Cycles >= results[1].Stats.Cycles {
		t.Fatalf("short workload (%d cycles) not shorter than long (%d)",
			results[0].Stats.Cycles, results[1].Stats.Cycles)
	}
	// A finished core's consumer stops receiving records.
	if a.Cycles != results[0].Stats.Cycles && a.Cycles != results[0].Stats.Cycles+1 {
		t.Fatalf("core 0 consumer saw %d records for %d cycles", a.Cycles, results[0].Stats.Cycles)
	}
}

func TestSharedLLCContentionSlowsCoRunners(t *testing.T) {
	// mcf (DRAM-bound pointer chasing) co-running with a second mcf must
	// be slower than running alone on the same shared-LLC system.
	solo := New(sysConfig(), []CoreSpec{
		{Workload: load(t, "mcf", 60_000)},
	})
	soloRes, err := solo.Run()
	if err != nil {
		t.Fatal(err)
	}
	pair := New(sysConfig(), []CoreSpec{
		{Workload: load(t, "mcf", 60_000)},
		{Workload: load(t, "omnetpp", 120_000)},
	})
	pairRes, err := pair.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pairRes[0].Stats.Committed != soloRes[0].Stats.Committed {
		t.Fatalf("instruction counts differ: %d vs %d",
			pairRes[0].Stats.Committed, soloRes[0].Stats.Committed)
	}
	if pairRes[0].Stats.Cycles <= soloRes[0].Stats.Cycles {
		t.Fatalf("co-run mcf (%d cycles) not slower than solo (%d)",
			pairRes[0].Stats.Cycles, soloRes[0].Stats.Cycles)
	}
}

// TestPerCoreTIPStaysAccurateUnderContention: each core's TIP unit profiles
// its own workload accurately even while sharing the memory system.
func TestPerCoreTIPStaysAccurateUnderContention(t *testing.T) {
	mkConsumers := func(w *workload.Workload) (*profiler.Oracle, *profiler.Sampled, *profiler.Sampled, []trace.Consumer) {
		or := profiler.NewOracle(w.Prog, false)
		tip := profiler.NewSampled(profiler.KindTIP, w.Prog, sampling.NewPeriodic(53))
		nci := profiler.NewSampled(profiler.KindNCI, w.Prog, sampling.NewPeriodic(53))
		return or, tip, nci, []trace.Consumer{or, tip, nci}
	}
	w0 := load(t, "imagick", 200_000)
	w1 := load(t, "lbm", 200_000)
	or0, tip0, nci0, cons0 := mkConsumers(w0)
	or1, tip1, nci1, cons1 := mkConsumers(w1)
	sys := New(sysConfig(), []CoreSpec{
		{Workload: w0, Consumers: cons0},
		{Workload: w1, Consumers: cons1},
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	e0 := tip0.Profile.Error(or0.Profile, profile.GranInstruction, true)
	e1 := tip1.Profile.Error(or1.Profile, profile.GranInstruction, true)
	if e0 > 0.10 {
		t.Fatalf("core 0 TIP error %.3f under contention", e0)
	}
	if e1 > 0.10 {
		t.Fatalf("core 1 TIP error %.3f under contention", e1)
	}
	if n0 := nci0.Profile.Error(or0.Profile, profile.GranInstruction, true); n0 < e0 {
		t.Fatalf("core 0: NCI %.3f beat TIP %.3f", n0, e0)
	}
	if n1 := nci1.Profile.Error(or1.Profile, profile.GranInstruction, true); n1 < e1 {
		t.Fatalf("core 1: NCI %.3f beat TIP %.3f", n1, e1)
	}
	// Oracle accounts every cycle on both cores.
	if got, want := or0.Profile.Attributed(), or0.Profile.TotalCycles; got < want-1 || got > want+1 {
		t.Fatalf("core 0 oracle attributed %v of %v", got, want)
	}
	if got, want := or1.Profile.Attributed(), or1.Profile.TotalCycles; got < want-1 || got > want+1 {
		t.Fatalf("core 1 oracle attributed %v of %v", got, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []CoreResult {
		sys := New(sysConfig(), []CoreSpec{
			{Workload: load(t, "x264", 80_000)},
			{Workload: load(t, "deepsjeng", 80_000)},
		})
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Stats != b[i].Stats {
			t.Fatalf("core %d stats differ across identical runs", i)
		}
	}
}

func TestLLCSharedBetweenCores(t *testing.T) {
	sys := New(sysConfig(), []CoreSpec{
		{Workload: load(t, "mcf", 40_000)},
		{Workload: load(t, "canneal", 40_000)},
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if total := sys.LLC().Hits + sys.LLC().Misses; sys.LLC().Misses == 0 || total < 1000 {
		t.Fatalf("shared LLC barely used: %d hits, %d misses", sys.LLC().Hits, sys.LLC().Misses)
	}
}

func TestEmptySpecsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty system")
		}
	}()
	New(sysConfig(), nil)
}

func TestMaxCyclesAborts(t *testing.T) {
	cfg := sysConfig()
	cfg.MaxCycles = 100
	sys := New(cfg, []CoreSpec{{Workload: load(t, "x264", 500_000)}})
	if _, err := sys.Run(); err == nil {
		t.Fatal("expected MaxCycles error")
	}
}
