// Package multicore runs several cores in lockstep over a shared LLC and
// DRAM, each with its own TIP unit — the multi-core deployment §3.2
// sketches ("Each physical core needs its own TIP unit"; perf tags every
// sample with core/process/thread identifiers so profiles separate cleanly).
//
// The simulated machine is multi-programmed: each core runs its own
// workload. Cores contend in the shared LLC and memory controller, so a
// co-runner changes a benchmark's timing — but not the accuracy of its TIP
// profile, which each test validates against that core's own Oracle.
//
// Simultaneous multithreading (two logical cores sharing one physical
// pipeline) is out of scope; DESIGN.md records the substitution.
package multicore

import (
	"context"
	"fmt"

	"github.com/tipprof/tip/internal/cache"
	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// CoreSpec describes one core's workload and trace consumers.
type CoreSpec struct {
	// Workload runs on this core.
	Workload *workload.Workload
	// Consumers observe this core's per-cycle commit-stage records.
	Consumers []trace.Consumer
}

// CoreResult is one core's outcome.
type CoreResult struct {
	// Stats are the core's run statistics.
	Stats cpu.Stats
	// DoneCycle is the cycle of the core's last commit.
	DoneCycle uint64
}

// Config parameterises the system.
type Config struct {
	// Core is the per-core configuration (Table 1); its Hierarchy block
	// sizes the private L1/L2 stacks and the shared LLC/DRAM.
	Core cpu.Config
	// MaxCycles aborts runaway simulations (0 = the per-core value).
	MaxCycles uint64
}

// System is a lockstep multi-core machine.
type System struct {
	cfg   Config
	cores []*cpu.Core
	specs []CoreSpec
	llc   *cache.Cache
}

// New builds a system with one core per spec, all sharing an LLC and DRAM.
func New(cfg Config, specs []CoreSpec) *System {
	if len(specs) == 0 {
		panic("multicore: no cores")
	}
	hcfg := cfg.Core.Hierarchy
	shared := cache.NewSharedLLC(hcfg)
	sys := &System{cfg: cfg, specs: specs, llc: shared}
	for i, spec := range specs {
		// Each core gets a disjoint physical range (per-process address
		// spaces) so co-runners contend for capacity without sharing
		// data.
		l1i, l1d := cache.NewPrivateStack(hcfg, shared, uint64(i)<<44)
		core := cpu.NewWithCaches(cfg.Core, spec.Workload.Prog, spec.Workload.Stream(), l1i, l1d)
		for _, reg := range spec.Workload.Prefault {
			core.MMU().PrefaultRange(reg.Base, reg.Size)
		}
		sys.cores = append(sys.cores, core)
	}
	return sys
}

// LLC exposes the shared last-level cache for inspection.
func (s *System) LLC() *cache.Cache { return s.llc }

// Core exposes core i.
func (s *System) Core(i int) *cpu.Core { return s.cores[i] }

// Run steps every core each cycle until all workloads finish. Each core's
// consumers see exactly the records that core produced, then Finish with
// that core's cycle count.
func (s *System) Run() ([]CoreResult, error) {
	return s.run(nil, nil)
}

// CaptureRun is Run with a shared consumer observing the interleaved
// stream: every live core's record each cycle, in core order, tagged with
// the producing core's ID (Record.Core). Streaming the shared consumer into
// a trace.NewCaptureV3 capture records the whole multi-programmed run in
// one TIPTRC3 stream that a core-demuxing replay (trace.CoreFilter) can
// later fan back out onto per-core profiler matrices — the capture-once,
// evaluate-many workflow extended to §3.2's one-TIP-unit-per-core machine.
//
// The shared consumer's Finish receives the interleaved run's total under
// the replay rule: the last committing cycle across all cores plus one
// (each core's own consumers still Finish with that core's count).
// Cancelling ctx aborts the lockstep loop within a few thousand cycles; a
// nil ctx disables cancellation.
func (s *System) CaptureRun(ctx context.Context, shared trace.Consumer) ([]CoreResult, error) {
	return s.run(ctx, shared)
}

// cancelCheckMask matches cpu.Core.RunContext's polling cadence: ctx.Err is
// checked every 8192 lockstep cycles.
const cancelCheckMask = 8191

func (s *System) run(ctx context.Context, shared trace.Consumer) ([]CoreResult, error) {
	n := len(s.cores)
	done := make([]bool, n)
	results := make([]CoreResult, n)
	recs := make([]trace.Record, n)
	for i := range recs {
		// Tag each core's reused record once; Record.Reset leaves Core
		// alone, so every record core i emits carries its ID.
		recs[i].Core = uint32(i)
	}
	remaining := n
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = s.cfg.Core.MaxCycles
	}

	for cycle := uint64(0); remaining > 0; cycle++ {
		// MaxCycles permits exactly maxCycles lockstep cycles (cycle
		// values 0..maxCycles-1), the same boundary cpu.Core.RunContext
		// enforces.
		if maxCycles > 0 && cycle >= maxCycles {
			return nil, fmt.Errorf("multicore: exceeded %d cycles with %d cores unfinished", maxCycles, remaining)
		}
		if ctx != nil && cycle&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("multicore: aborted at cycle %d: %w", cycle, err)
			}
		}
		for i, core := range s.cores {
			if done[i] {
				continue
			}
			finished := core.Step(cycle, &recs[i])
			for _, c := range s.specs[i].Consumers {
				c.OnCycle(&recs[i])
			}
			if shared != nil {
				shared.OnCycle(&recs[i])
			}
			if recs[i].CommitCount > 0 {
				results[i].DoneCycle = cycle
			}
			if finished {
				done[i] = true
				remaining--
				core.FinalizeStats(results[i].DoneCycle)
				results[i].Stats = core.Stats()
				for _, c := range s.specs[i].Consumers {
					c.Finish(results[i].Stats.Cycles)
				}
			}
		}
	}
	if shared != nil {
		// Same total a replay of the interleaved stream derives: the last
		// committing cycle across all cores, plus one (trailing drain
		// cycles carry no commits).
		maxCommit := uint64(0)
		for i := range results {
			if results[i].DoneCycle > maxCommit {
				maxCommit = results[i].DoneCycle
			}
		}
		shared.Finish(maxCommit + 1)
	}
	return results, nil
}
