// Package multicore runs several cores in lockstep over a shared LLC and
// DRAM, each with its own TIP unit — the multi-core deployment §3.2
// sketches ("Each physical core needs its own TIP unit"; perf tags every
// sample with core/process/thread identifiers so profiles separate cleanly).
//
// The simulated machine is multi-programmed: each core runs its own
// workload. Cores contend in the shared LLC and memory controller, so a
// co-runner changes a benchmark's timing — but not the accuracy of its TIP
// profile, which each test validates against that core's own Oracle.
//
// Simultaneous multithreading (two logical cores sharing one physical
// pipeline) is out of scope; DESIGN.md records the substitution.
package multicore

import (
	"fmt"

	"github.com/tipprof/tip/internal/cache"
	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// CoreSpec describes one core's workload and trace consumers.
type CoreSpec struct {
	// Workload runs on this core.
	Workload *workload.Workload
	// Consumers observe this core's per-cycle commit-stage records.
	Consumers []trace.Consumer
}

// CoreResult is one core's outcome.
type CoreResult struct {
	// Stats are the core's run statistics.
	Stats cpu.Stats
	// DoneCycle is the cycle of the core's last commit.
	DoneCycle uint64
}

// Config parameterises the system.
type Config struct {
	// Core is the per-core configuration (Table 1); its Hierarchy block
	// sizes the private L1/L2 stacks and the shared LLC/DRAM.
	Core cpu.Config
	// MaxCycles aborts runaway simulations (0 = the per-core value).
	MaxCycles uint64
}

// System is a lockstep multi-core machine.
type System struct {
	cfg   Config
	cores []*cpu.Core
	specs []CoreSpec
	llc   *cache.Cache
}

// New builds a system with one core per spec, all sharing an LLC and DRAM.
func New(cfg Config, specs []CoreSpec) *System {
	if len(specs) == 0 {
		panic("multicore: no cores")
	}
	hcfg := cfg.Core.Hierarchy
	shared := cache.NewSharedLLC(hcfg)
	sys := &System{cfg: cfg, specs: specs, llc: shared}
	for i, spec := range specs {
		// Each core gets a disjoint physical range (per-process address
		// spaces) so co-runners contend for capacity without sharing
		// data.
		l1i, l1d := cache.NewPrivateStack(hcfg, shared, uint64(i)<<44)
		core := cpu.NewWithCaches(cfg.Core, spec.Workload.Prog, spec.Workload.Stream(), l1i, l1d)
		for _, reg := range spec.Workload.Prefault {
			core.MMU().PrefaultRange(reg.Base, reg.Size)
		}
		sys.cores = append(sys.cores, core)
	}
	return sys
}

// LLC exposes the shared last-level cache for inspection.
func (s *System) LLC() *cache.Cache { return s.llc }

// Core exposes core i.
func (s *System) Core(i int) *cpu.Core { return s.cores[i] }

// Run steps every core each cycle until all workloads finish. Each core's
// consumers see exactly the records that core produced, then Finish with
// that core's cycle count.
func (s *System) Run() ([]CoreResult, error) {
	n := len(s.cores)
	done := make([]bool, n)
	results := make([]CoreResult, n)
	recs := make([]trace.Record, n)
	remaining := n
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = s.cfg.Core.MaxCycles
	}

	for cycle := uint64(0); remaining > 0; cycle++ {
		if maxCycles > 0 && cycle > maxCycles {
			return nil, fmt.Errorf("multicore: exceeded %d cycles with %d cores unfinished", maxCycles, remaining)
		}
		for i, core := range s.cores {
			if done[i] {
				continue
			}
			finished := core.Step(cycle, &recs[i])
			for _, c := range s.specs[i].Consumers {
				c.OnCycle(&recs[i])
			}
			if recs[i].CommitCount > 0 {
				results[i].DoneCycle = cycle
			}
			if finished {
				done[i] = true
				remaining--
				core.FinalizeStats(results[i].DoneCycle)
				results[i].Stats = core.Stats()
				for _, c := range s.specs[i].Consumers {
					c.Finish(results[i].Stats.Cycles)
				}
			}
		}
	}
	return results, nil
}
