package mem

import (
	"testing"
	"testing/quick"
)

func TestRowHitFasterThanMiss(t *testing.T) {
	d := New(DefaultConfig())
	first := d.Access(0, false, 0)       // row miss (cold)
	second := d.Access(64, false, first) // same row: hit
	missLat := first - 0
	hitLat := second - first
	if hitLat >= missLat {
		t.Fatalf("row hit latency %d >= miss latency %d", hitLat, missLat)
	}
}

func TestRowConflictReopens(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	now := d.Access(0, false, 0)
	// Different row, same bank: banks = row % Banks, so row+Banks rows
	// later maps to the same bank with a different row.
	conflictAddr := cfg.RowBytes * uint64(cfg.Banks)
	done := d.Access(conflictAddr, false, now+1000)
	if lat := done - (now + 1000); lat != cfg.RowMiss {
		t.Fatalf("row conflict latency %d, want %d", lat, cfg.RowMiss)
	}
	if d.RowMisses != 2 {
		t.Fatalf("RowMisses = %d, want 2", d.RowMisses)
	}
}

func TestBankContentionSerializes(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	// Two simultaneous accesses to the same bank, different rows.
	a := d.Access(0, false, 0)
	b := d.Access(cfg.RowBytes*uint64(cfg.Banks), false, 0)
	if b <= a-cfg.RowMiss+cfg.BusOccupancy-1 {
		t.Fatalf("second access (%d) did not wait for bank occupancy (first done %d)", b, a)
	}
	if b <= a {
		// Second access must finish after the first started + occupancy.
		t.Fatalf("contended access finished too early: %d <= %d", b, a)
	}
}

func TestDifferentBanksParallel(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	a := d.Access(0, false, 0)
	b := d.Access(cfg.RowBytes, false, 0) // next row -> next bank
	if a != b {
		t.Fatalf("independent banks should have equal cold latency: %d vs %d", a, b)
	}
}

func TestQueueDepthPushback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 2
	d := New(cfg)
	// Saturate one bank at time 0.
	last := uint64(0)
	for i := 0; i < 6; i++ {
		last = d.Access(0, false, 0)
	}
	if d.QueueStalls == 0 {
		t.Fatal("expected queue stalls when exceeding depth")
	}
	if last < cfg.RowMiss+2*cfg.RowHit {
		t.Fatalf("saturated bank completed too fast: %d", last)
	}
}

func TestResetClearsState(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, false, 0)
	d.Access(64, false, 100)
	d.Reset()
	if d.Accesses != 0 || d.RowHits != 0 || d.RowMisses != 0 {
		t.Fatal("stats not cleared")
	}
	done := d.Access(64, false, 0)
	if done != DefaultConfig().RowMiss {
		t.Fatalf("post-reset access latency %d, want cold miss %d", done, DefaultConfig().RowMiss)
	}
}

func TestRowHitRate(t *testing.T) {
	d := New(DefaultConfig())
	if d.RowHitRate() != 0 {
		t.Fatal("empty DRAM hit rate should be 0")
	}
	now := uint64(0)
	for i := 0; i < 10; i++ {
		now = d.Access(uint64(i*64), false, now)
	}
	if r := d.RowHitRate(); r != 0.9 {
		t.Fatalf("sequential hit rate = %v, want 0.9", r)
	}
}

func TestWritesSameTiming(t *testing.T) {
	dr := New(DefaultConfig())
	dw := New(DefaultConfig())
	r := dr.Access(0, false, 0)
	w := dw.Access(0, true, 0)
	if r != w {
		t.Fatalf("read %d vs write %d timing differ", r, w)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Banks: 0, RowBytes: 1024, QueueDepth: 8},
		{Banks: 8, RowBytes: 0, QueueDepth: 8},
		{Banks: 8, RowBytes: 1024, QueueDepth: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: completion time is never before the request time plus the
// minimum latency, and never retreats for back-to-back same-bank requests.
func TestQuickMonotoneCompletion(t *testing.T) {
	f := func(addrs []uint64) bool {
		d := New(DefaultConfig())
		now := uint64(0)
		for _, a := range addrs {
			done := d.Access(a%(1<<30), false, now)
			if done < now+DefaultConfig().RowHit {
				return false
			}
			now = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	d := New(DefaultConfig())
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		now = d.Access(uint64(i)*64, false, now)
	}
}
