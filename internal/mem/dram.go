// Package mem models the main-memory substrate: a banked DRAM with
// row-buffer locality and FR-FCFS-flavoured contention, corresponding to the
// Table 1 configuration (16 GB DDR3 quad-rank, 25.6 GB/s, 14-14-14 @ 1 GHz,
// queue depth 8).
//
// The model is deliberately latency-oriented: callers ask "when will the
// data for this line be available?" and the DRAM answers with an absolute
// core-clock cycle, accounting for bank busy time, row hits/misses, and a
// bounded per-bank queue. Absolute timings are expressed in core cycles
// (3.2 GHz), so a 14-cycle DRAM CAS at 1 GHz is ~45 core cycles.
package mem

import "fmt"

// Config parameterises the DRAM model. All latencies are in core cycles.
type Config struct {
	// Banks is the number of independent banks (ranks x banks).
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes uint64
	// RowHit is the access latency when the row buffer hits (CAS).
	RowHit uint64
	// RowMiss is the access latency on a row-buffer conflict
	// (precharge + activate + CAS).
	RowMiss uint64
	// BusOccupancy is how long a bank stays busy per access (data burst
	// plus command overhead) — this is what creates bandwidth pressure.
	BusOccupancy uint64
	// QueueDepth bounds per-bank outstanding requests; a full queue
	// pushes the request's start time back.
	QueueDepth int
}

// DefaultConfig mirrors Table 1 translated to 3.2 GHz core cycles.
func DefaultConfig() Config {
	return Config{
		Banks:        32, // quad-rank x 8 banks
		RowBytes:     2048,
		RowHit:       45, // ~14 ns CAS
		RowMiss:      90, // precharge + activate + CAS
		BusOccupancy: 8,  // 64 B burst at 25.6 GB/s ≈ 2.5 ns
		QueueDepth:   8,
	}
}

// DRAM is the main-memory timing model.
type DRAM struct {
	cfg Config
	// Per-bank state.
	openRow  []uint64
	rowValid []bool
	// queue[b] holds completion times of in-flight requests (unsorted,
	// bounded by QueueDepth).
	queue [][]uint64
	// busyUntil[b] is when the bank can accept the next request.
	busyUntil []uint64

	// Stats.
	Accesses    uint64
	RowHits     uint64
	RowMisses   uint64
	QueueStalls uint64
}

// New returns a DRAM with the given configuration.
func New(cfg Config) *DRAM {
	if cfg.Banks <= 0 {
		panic(fmt.Sprintf("mem: invalid bank count %d", cfg.Banks))
	}
	if cfg.RowBytes == 0 || cfg.QueueDepth <= 0 {
		panic("mem: invalid DRAM config")
	}
	return &DRAM{
		cfg:       cfg,
		openRow:   make([]uint64, cfg.Banks),
		rowValid:  make([]bool, cfg.Banks),
		queue:     make([][]uint64, cfg.Banks),
		busyUntil: make([]uint64, cfg.Banks),
	}
}

// Config returns the DRAM's configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Access requests the cache line at addr at core cycle now and returns the
// absolute cycle at which the data is available. Writes have the same bank
// timing as reads in this model (write buffering is folded into the cache
// hierarchy's write-back behaviour).
func (d *DRAM) Access(addr uint64, write bool, now uint64) uint64 {
	d.Accesses++
	row := addr / d.cfg.RowBytes
	bank := int(row) % d.cfg.Banks

	start := now
	if d.busyUntil[bank] > start {
		start = d.busyUntil[bank]
	}
	// Queue pressure: drop completed entries, and if still at depth, wait
	// for the oldest to finish.
	q := d.queue[bank][:0]
	for _, done := range d.queue[bank] {
		if done > now {
			q = append(q, done)
		}
	}
	d.queue[bank] = q
	if len(q) >= d.cfg.QueueDepth {
		d.QueueStalls++
		oldest := q[0]
		for _, v := range q {
			if v < oldest {
				oldest = v
			}
		}
		if oldest > start {
			start = oldest
		}
		// Time advanced: requests that completed by start have drained.
		q2 := d.queue[bank][:0]
		for _, done := range d.queue[bank] {
			if done > start {
				q2 = append(q2, done)
			}
		}
		d.queue[bank] = q2
	}

	var lat uint64
	if d.rowValid[bank] && d.openRow[bank] == row {
		d.RowHits++
		lat = d.cfg.RowHit
	} else {
		d.RowMisses++
		lat = d.cfg.RowMiss
		d.openRow[bank] = row
		d.rowValid[bank] = true
	}
	done := start + lat
	d.busyUntil[bank] = start + d.cfg.BusOccupancy
	d.queue[bank] = append(d.queue[bank], done)
	return done
}

// CopyFrom overwrites d's bank state and statistics with src's. Both DRAMs
// must share a bank count; slice capacity is reused, so steady-state copies
// allocate only when a source queue outgrew the destination's capacity.
func (d *DRAM) CopyFrom(src *DRAM) {
	if d.cfg.Banks != src.cfg.Banks {
		panic(fmt.Sprintf("mem: CopyFrom bank mismatch %d vs %d", d.cfg.Banks, src.cfg.Banks))
	}
	copy(d.openRow, src.openRow)
	copy(d.rowValid, src.rowValid)
	copy(d.busyUntil, src.busyUntil)
	for b := range src.queue {
		d.queue[b] = append(d.queue[b][:0], src.queue[b]...)
	}
	d.Accesses = src.Accesses
	d.RowHits = src.RowHits
	d.RowMisses = src.RowMisses
	d.QueueStalls = src.QueueStalls
}

// Clone returns an independent deep copy of d.
func (d *DRAM) Clone() *DRAM {
	c := New(d.cfg)
	c.CopyFrom(d)
	return c
}

// Reset clears all bank state and statistics.
func (d *DRAM) Reset() {
	for i := range d.rowValid {
		d.rowValid[i] = false
		d.busyUntil[i] = 0
		d.queue[i] = d.queue[i][:0]
	}
	d.Accesses, d.RowHits, d.RowMisses, d.QueueStalls = 0, 0, 0, 0
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Accesses)
}
