package mem

import "testing"

// driveDRAM replays a row-locality-heavy access mix and returns the
// completion-cycle signature.
func driveDRAM(d *DRAM, base uint64, n int) []uint64 {
	sig := make([]uint64, 0, n)
	now := uint64(0)
	for i := 0; i < n; i++ {
		addr := base + uint64(i%8)*64 + uint64(i/8%16)<<14
		now = d.Access(addr, i%6 == 0, now)
		sig = append(sig, now)
	}
	return sig
}

// TestDRAMCloneRoundTrip pins the open-row state transfer: a cloned DRAM
// replays the same row-hit/row-miss latencies the original would.
func TestDRAMCloneRoundTrip(t *testing.T) {
	src := New(DefaultConfig())
	driveDRAM(src, 1<<22, 500) // open a working set of rows

	cl := src.Clone()
	if cl.RowHits != src.RowHits || cl.RowMisses != src.RowMisses {
		t.Fatal("clone statistics differ from source")
	}

	a := driveDRAM(src, 1<<22, 400)
	b := driveDRAM(cl, 1<<22, 400)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d: source done at %d, clone at %d", i, a[i], b[i])
		}
	}

	hits := cl.RowHits
	driveDRAM(src, 1<<26, 200)
	if cl.RowHits != hits {
		t.Fatal("driving the source mutated the clone")
	}
}

// TestDRAMCopyFromReuse: CopyFrom into a dirtied DRAM (pooled checkpoint
// container) fully overwrites the stale open-row and timing state.
func TestDRAMCopyFromReuse(t *testing.T) {
	src := New(DefaultConfig())
	driveDRAM(src, 1<<22, 300)

	dst := New(DefaultConfig())
	driveDRAM(dst, 1<<27, 350)
	dst.CopyFrom(src)

	a := driveDRAM(src, 2<<22, 300)
	b := driveDRAM(dst, 2<<22, 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d: source done at %d, copy at %d", i, a[i], b[i])
		}
	}
}
