package pprofenc

import (
	"bytes"
	"compress/gzip"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/workload"
)

// testProfile builds a deterministic synthetic profile over a real workload
// program: every 7th instruction gets a fractional cycle weight.
func testProfile(t *testing.T) *profile.Profile {
	t.Helper()
	w, err := workload.LoadScaled("x264", 1, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(w.Prog)
	for i := 0; i < w.Prog.NumInsts(); i += 7 {
		p.Add(int32(i), float64(i)*1.5+0.25)
	}
	p.TotalCycles = p.Attributed()
	return p
}

func TestEncodeDeterministic(t *testing.T) {
	p := testProfile(t)
	opt := JobOptions("x264", 1, 30_000, "TIP", 1009)
	a, err := Encode(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same profile and options encoded to different bytes")
	}
	if len(a) == 0 {
		t.Fatal("empty encoding")
	}
}

// TestEncodeRoundTrip decodes the wire format with a minimal protobuf walker
// and checks the per-function cycle attribution survives the encoding.
func TestEncodeRoundTrip(t *testing.T) {
	p := testProfile(t)
	data, err := Encode(p, JobOptions("x264", 1, 30_000, "Oracle", 997))
	if err != nil {
		t.Fatal(err)
	}
	dec := decodeProfile(t, data)

	if dec.strings[0] != "" {
		t.Fatalf("string table must start with empty string, got %q", dec.strings[0])
	}
	if dec.period != 997 {
		t.Fatalf("period = %d, want 997", dec.period)
	}
	if got := dec.strings[dec.sampleTypeID]; got != "cycles" {
		t.Fatalf("sample type = %q, want cycles", got)
	}
	if len(dec.comments) != 1 || !strings.Contains(dec.comments[0], "profiler=Oracle") {
		t.Fatalf("comments = %q", dec.comments)
	}

	// Expected per-function totals: round each instruction's cycles like the
	// encoder does, then sum by function.
	want := map[string]int64{}
	p.EachNonZero(func(idx int, cycles float64) {
		fn := p.Prog.InstByIndex(idx).Func().Name
		want[fn] += int64(math.Round(cycles))
	})

	got := map[string]int64{}
	nSamples := 0
	for _, s := range dec.samples {
		nSamples++
		if len(s.locIDs) != 1 || len(s.values) != 1 {
			t.Fatalf("sample has %d locations, %d values; want 1, 1", len(s.locIDs), len(s.values))
		}
		loc, ok := dec.locations[s.locIDs[0]]
		if !ok {
			t.Fatalf("sample references unknown location %d", s.locIDs[0])
		}
		fn, ok := dec.functions[loc.funcID]
		if !ok {
			t.Fatalf("location %d references unknown function %d", s.locIDs[0], loc.funcID)
		}
		got[dec.strings[fn.nameID]] += s.values[0]

		// The location address must be the instruction's PC.
		in := p.Prog.InstByIndex(int(s.locIDs[0] - 1))
		if loc.address != in.PC {
			t.Fatalf("location %d address %#x, want PC %#x", s.locIDs[0], loc.address, in.PC)
		}
	}
	if nSamples == 0 {
		t.Fatal("no samples decoded")
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d functions, want %d", len(got), len(want))
	}
	for fn, w := range want {
		if got[fn] != w {
			t.Fatalf("function %s: decoded %d cycles, want %d", fn, got[fn], w)
		}
	}
}

// TestEncodeLabels pins the sample-label wire format: every sample must
// carry each configured string label, decodable by the same walker the
// round-trip test uses, and labelled output must stay deterministic.
func TestEncodeLabels(t *testing.T) {
	p := testProfile(t)
	opt := JobOptions("x264", 1, 30_000, "TIP", 1009)
	opt.Labels = []Label{{Key: "core", Value: "1"}, {Key: "profiler", Value: "TIP"}}
	a, err := Encode(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("labelled encoding is not deterministic")
	}

	dec := decodeProfile(t, a)
	if len(dec.samples) == 0 {
		t.Fatal("no samples decoded")
	}
	for i, s := range dec.samples {
		if got := s.labels["core"]; got != "1" {
			t.Fatalf("sample %d: core label = %q, want \"1\"", i, got)
		}
		if got := s.labels["profiler"]; got != "TIP" {
			t.Fatalf("sample %d: profiler label = %q, want \"TIP\"", i, got)
		}
	}

	// Unlabelled samples must carry no labels (field 3 absent entirely).
	plain := decodeProfile(t, mustEncode(t, p, JobOptions("x264", 1, 30_000, "TIP", 1009)))
	for i, s := range plain.samples {
		if len(s.labelIDs) != 0 {
			t.Fatalf("unlabelled sample %d carries labels %v", i, s.labels)
		}
	}
}

func mustEncode(t *testing.T, p *profile.Profile, opt Options) []byte {
	t.Helper()
	data, err := Encode(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoToolPprofReads shells out to `go tool pprof -top` to prove the
// emitted file opens in the real toolchain. Skipped when no go binary is on
// PATH (e.g. stripped-down CI runners executing a prebuilt test binary).
func TestGoToolPprofReads(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not on PATH")
	}
	p := testProfile(t)
	data, err := Encode(p, JobOptions("x264", 1, 30_000, "TIP", 1009))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prof.pb.gz")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(goBin, "tool", "pprof", "-top", "-nodecount", "5", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top failed: %v\n%s", err, out)
	}
	// The hottest function by rounded cycles must appear in the report.
	var hot string
	var hotV int64
	agg := map[string]int64{}
	p.EachNonZero(func(idx int, cycles float64) {
		fn := p.Prog.InstByIndex(idx).Func().Name
		agg[fn] += int64(math.Round(cycles))
		if agg[fn] > hotV {
			hot, hotV = fn, agg[fn]
		}
	})
	if !strings.Contains(string(out), hot) {
		t.Fatalf("pprof -top output does not mention hottest function %q:\n%s", hot, out)
	}
}

// --- minimal pprof wire decoder for tests ----------------------------------

type decSample struct {
	locIDs   []uint64
	values   []int64
	labelIDs [][2]uint64
	labels   map[string]string
}

type decLocation struct {
	address uint64
	funcID  uint64
}

type decFunction struct {
	nameID int64
}

type decoded struct {
	strings      []string
	samples      []decSample
	locations    map[uint64]decLocation
	functions    map[uint64]decFunction
	sampleTypeID int64
	period       int64
	comments     []string
	commentIDs   []int64
}

func decodeProfile(t *testing.T, gz []byte) *decoded {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatalf("not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	d := &decoded{
		locations: map[uint64]decLocation{},
		functions: map[uint64]decFunction{},
	}
	walkFields(t, raw, func(field int, wire int, v uint64, body []byte) {
		switch field {
		case 1: // sample_type
			walkFields(t, body, func(f, _ int, v uint64, _ []byte) {
				if f == 1 {
					d.sampleTypeID = int64(v)
				}
			})
		case 2: // sample
			var s decSample
			walkFields(t, body, func(f, w int, v uint64, b []byte) {
				switch f {
				case 1:
					s.locIDs = append(s.locIDs, packedOrScalar(t, w, v, b)...)
				case 2:
					for _, u := range packedOrScalar(t, w, v, b) {
						s.values = append(s.values, int64(u))
					}
				case 3: // label {key: 1, str: 2} — string-table indices,
					// resolved after the walk once the table is complete.
					var key, str uint64
					walkFields(t, b, func(lf, _ int, lv uint64, _ []byte) {
						switch lf {
						case 1:
							key = lv
						case 2:
							str = lv
						}
					})
					s.labelIDs = append(s.labelIDs, [2]uint64{key, str})
				}
			})
			d.samples = append(d.samples, s)
		case 4: // location
			var id uint64
			var loc decLocation
			walkFields(t, body, func(f, _ int, v uint64, b []byte) {
				switch f {
				case 1:
					id = v
				case 3:
					loc.address = v
				case 4: // line
					walkFields(t, b, func(lf, _ int, lv uint64, _ []byte) {
						if lf == 1 {
							loc.funcID = lv
						}
					})
				}
			})
			d.locations[id] = loc
		case 5: // function
			var id uint64
			var fn decFunction
			walkFields(t, body, func(f, _ int, v uint64, _ []byte) {
				switch f {
				case 1:
					id = v
				case 2:
					fn.nameID = int64(v)
				}
			})
			d.functions[id] = fn
		case 6: // string table
			d.strings = append(d.strings, string(body))
		case 12:
			d.period = int64(v)
		case 13:
			d.commentIDs = append(d.commentIDs, int64(v))
		}
	})
	for _, id := range d.commentIDs {
		if id < 0 || int(id) >= len(d.strings) {
			t.Fatalf("comment index %d out of string table range", id)
		}
		d.comments = append(d.comments, d.strings[id])
	}
	for i := range d.samples {
		s := &d.samples[i]
		s.labels = map[string]string{}
		for _, kv := range s.labelIDs {
			if kv[0] >= uint64(len(d.strings)) || kv[1] >= uint64(len(d.strings)) {
				t.Fatalf("label indices %v out of string table range", kv)
			}
			s.labels[d.strings[kv[0]]] = d.strings[kv[1]]
		}
	}
	return d
}

// walkFields iterates a protobuf message's fields. For wire type 0 the value
// is passed as v; for wire type 2 the payload is passed as body.
func walkFields(t *testing.T, data []byte, f func(field, wire int, v uint64, body []byte)) {
	t.Helper()
	pos := 0
	for pos < len(data) {
		tag, n := uvarint(data[pos:])
		if n <= 0 {
			t.Fatalf("bad tag varint at %d", pos)
		}
		pos += n
		field, wire := int(tag>>3), int(tag&7)
		switch wire {
		case 0:
			v, n := uvarint(data[pos:])
			if n <= 0 {
				t.Fatalf("bad varint at %d", pos)
			}
			pos += n
			f(field, wire, v, nil)
		case 2:
			l, n := uvarint(data[pos:])
			if n <= 0 {
				t.Fatalf("bad length at %d", pos)
			}
			pos += n
			if pos+int(l) > len(data) {
				t.Fatalf("field %d overruns buffer", field)
			}
			f(field, wire, 0, data[pos:pos+int(l)])
			pos += int(l)
		default:
			t.Fatalf("unexpected wire type %d for field %d", wire, field)
		}
	}
}

// packedOrScalar reads a repeated varint field that may arrive packed
// (wire 2) or as a single scalar (wire 0).
func packedOrScalar(t *testing.T, wire int, v uint64, body []byte) []uint64 {
	t.Helper()
	if wire == 0 {
		return []uint64{v}
	}
	var out []uint64
	pos := 0
	for pos < len(body) {
		u, n := uvarint(body[pos:])
		if n <= 0 {
			t.Fatalf("bad packed varint at %d", pos)
		}
		out = append(out, u)
		pos += n
	}
	return out
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}
