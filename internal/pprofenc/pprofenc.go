// Package pprofenc encodes TIP profiles as gzipped pprof protocol buffers,
// the interchange format `go tool pprof` (and the wider pprof toolchain)
// consumes. It closes the loop on the paper's deployment story (§3.1): perf
// records TIP samples online, the profile is rebuilt offline, and from there
// it should flow into standard profiling tooling — here, pprof.
//
// The encoder is hand-rolled protobuf (the repo takes no dependencies): the
// pprof Profile message is small and append-only, so a minimal varint/
// length-delimited writer suffices. Output is byte-deterministic for a given
// profile and options — instructions are walked in static index order, the
// string table is built in first-use order, and the gzip header carries no
// timestamp — so two runs of the same (bench, seed, scale, profiler)
// evaluation encode to identical files. Services and CLIs share this one
// encoder, and tests pin the byte-for-byte equality.
//
// Mapping of TIP concepts onto pprof:
//
//   - each static instruction with attributed cycles becomes one Sample
//     whose single-frame stack is a Location at the instruction's PC;
//   - each workload function becomes a pprof Function; the Location's Line
//     records the instruction's position within its function;
//   - the sample value is the attributed cycle count, rounded to int64
//     (pprof values are integral); the value type is "cycles"/"cycles";
//   - one synthetic Mapping spans the workload's text segment.
package pprofenc

import (
	"compress/gzip"
	"fmt"
	"io"
	"math"

	"github.com/tipprof/tip/internal/profile"
)

// Options parameterize one encoding.
type Options struct {
	// SampleType names the value dimension (default "cycles").
	SampleType string
	// Unit is the value's unit (default "cycles").
	Unit string
	// Period is the sampling period in cycles (0 omits the period).
	Period int64
	// Mapping names the synthetic binary in the pprof mapping table
	// (default the program's workload name).
	Mapping string
	// Comments are attached as pprof comment strings (`pprof -comments`).
	Comments []string
	// Labels are string labels attached to every sample (`pprof -tags`),
	// in slice order. Multicore profiles tag samples with {"core", "N"} so
	// per-core profiles stay distinguishable after merging.
	Labels []Label
}

// Label is one string-valued pprof sample label.
type Label struct {
	Key, Value string
}

// JobOptions builds the canonical options for an evaluated run, shared by
// the tipd daemon and the batch CLIs so the two paths emit byte-identical
// files for the same (bench, seed, scale, profiler, period) tuple.
func JobOptions(bench string, seed, scale uint64, profiler string, period uint64) Options {
	return Options{
		Period:  int64(period),
		Mapping: bench,
		Comments: []string{
			fmt.Sprintf("tip: bench=%s seed=%d scale=%d profiler=%s period=%d",
				bench, seed, scale, profiler, period),
		},
	}
}

// Encode returns the gzipped pprof encoding of p.
func Encode(p *profile.Profile, opt Options) ([]byte, error) {
	raw := encodeProto(p, opt)
	var buf writerBuf
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// Write encodes p and writes the gzipped result to w.
func Write(w io.Writer, p *profile.Profile, opt Options) error {
	data, err := Encode(p, opt)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// writerBuf is a minimal append-only io.Writer (bytes.Buffer without the
// read-side machinery).
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// pprof Profile message field numbers.
const (
	fProfileSampleType  = 1
	fProfileSample      = 2
	fProfileMapping     = 3
	fProfileLocation    = 4
	fProfileFunction    = 5
	fProfileStringTable = 6
	fProfilePeriodType  = 11
	fProfilePeriod      = 12
	fProfileComment     = 13
)

// strTable interns strings into the pprof string table (index 0 is "").
type strTable struct {
	idx map[string]int64
	tab []string
}

func newStrTable() *strTable {
	return &strTable{idx: map[string]int64{"": 0}, tab: []string{""}}
}

func (t *strTable) id(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.tab))
	t.idx[s] = i
	t.tab = append(t.tab, s)
	return i
}

func encodeProto(p *profile.Profile, opt Options) []byte {
	if opt.SampleType == "" {
		opt.SampleType = "cycles"
	}
	if opt.Unit == "" {
		opt.Unit = "cycles"
	}
	if opt.Mapping == "" {
		opt.Mapping = p.Prog.Name
	}
	st := newStrTable()
	sampleTypeID := st.id(opt.SampleType)
	unitID := st.id(opt.Unit)
	mappingFileID := st.id("tip://" + opt.Mapping)

	// Sample labels are identical for every sample; encode once. Label
	// {key: 1, str: 2} nested in Sample field 3.
	var labels []byte
	for _, lb := range opt.Labels {
		l := appendVarintField(nil, 1, uint64(st.id(lb.Key)))
		l = appendVarintField(l, 2, uint64(st.id(lb.Value)))
		labels = appendBytesField(labels, 3, l)
	}

	var out []byte

	// sample_type: one ValueType {type, unit}.
	vt := appendVarintField(nil, 1, uint64(sampleTypeID))
	vt = appendVarintField(vt, 2, uint64(unitID))
	out = appendBytesField(out, fProfileSampleType, vt)

	// Samples: one per attributed instruction, single-frame stacks.
	// Location/function IDs are 1-based; locations reuse the instruction's
	// static index, functions the program's function index.
	prog := p.Prog
	usedFuncs := make(map[int]bool)
	var locs []byte
	p.EachNonZero(func(idx int, cycles float64) {
		in := prog.InstByIndex(idx)
		fn := in.Func()
		usedFuncs[fn.Index] = true

		locID := uint64(idx + 1)
		// Sample {location_id: [locID], value: [round(cycles)]}.
		var s []byte
		s = appendPackedField(s, 1, []uint64{locID})
		s = appendPackedField(s, 2, []uint64{uint64(int64(math.Round(cycles)))})
		s = append(s, labels...)
		out = appendBytesField(out, fProfileSample, s)

		// Location {id, mapping_id: 1, address, line}. The "line" is the
		// instruction's 1-based position within its function — the closest
		// analogue of a source line a generated workload has.
		line := appendVarintField(nil, 1, uint64(fn.Index+1))
		line = appendVarintField(line, 2, uint64(in.Index-fn.Blocks[0].Insts[0].Index+1))
		var l []byte
		l = appendVarintField(l, 1, locID)
		l = appendVarintField(l, 2, 1)
		l = appendVarintField(l, 3, in.PC)
		l = appendBytesField(l, 4, line)
		locs = appendBytesField(locs, fProfileLocation, l)
	})

	// Mapping {id: 1, memory_start, memory_limit, filename, has_functions}.
	var m []byte
	m = appendVarintField(m, 1, 1)
	m = appendVarintField(m, 2, prog.Base())
	m = appendVarintField(m, 3, prog.Base()+prog.CodeBytes())
	m = appendVarintField(m, 5, uint64(mappingFileID))
	m = appendVarintField(m, 7, 1) // has_functions
	out = appendBytesField(out, fProfileMapping, m)

	out = append(out, locs...)

	// Functions, in program order, restricted to those referenced.
	for _, fn := range prog.Funcs {
		if !usedFuncs[fn.Index] {
			continue
		}
		nameID := st.id(fn.Name)
		var f []byte
		f = appendVarintField(f, 1, uint64(fn.Index+1))
		f = appendVarintField(f, 2, uint64(nameID))
		f = appendVarintField(f, 3, uint64(nameID))
		f = appendVarintField(f, 4, uint64(mappingFileID))
		out = appendBytesField(out, fProfileFunction, f)
	}

	// period_type + period.
	if opt.Period > 0 {
		pt := appendVarintField(nil, 1, uint64(sampleTypeID))
		pt = appendVarintField(pt, 2, uint64(unitID))
		out = appendBytesField(out, fProfilePeriodType, pt)
		out = appendVarintField(out, fProfilePeriod, uint64(opt.Period))
	}

	// Comments (string-table indices).
	for _, c := range opt.Comments {
		out = appendVarintField(out, fProfileComment, uint64(st.id(c)))
	}

	// String table last: interning is complete only now.
	for _, s := range st.tab {
		out = appendBytesField(out, fProfileStringTable, []byte(s))
	}
	return out
}

// --- protobuf wire helpers -------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// appendVarintField appends a varint-typed field (wire type 0).
func appendVarintField(b []byte, field int, v uint64) []byte {
	b = appendUvarint(b, uint64(field)<<3)
	return appendUvarint(b, v)
}

// appendBytesField appends a length-delimited field (wire type 2).
func appendBytesField(b []byte, field int, v []byte) []byte {
	b = appendUvarint(b, uint64(field)<<3|2)
	b = appendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// appendPackedField appends a packed repeated varint field (wire type 2).
func appendPackedField(b []byte, field int, vs []uint64) []byte {
	var body []byte
	for _, v := range vs {
		body = appendUvarint(body, v)
	}
	return appendBytesField(b, field, body)
}
