// Package stats provides the small aggregation helpers the evaluation
// uses: arithmetic means (the paper aggregates errors across benchmarks
// with the arithmetic mean, §4) and five-number summaries for the Fig. 11c
// box plots.
package stats

import "sort"

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// BoxPlot is a five-number summary.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) BoxPlot {
	return BoxPlot{
		Min:    Min(xs),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Max(xs),
	}
}
