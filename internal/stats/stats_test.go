package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !approx(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !approx(Quantile(xs, 0), 1) || !approx(Quantile(xs, 1), 5) {
		t.Fatal("extremes wrong")
	}
	if !approx(Quantile(xs, 0.5), 3) {
		t.Fatal("median wrong")
	}
	if !approx(Quantile(xs, 0.25), 2) {
		t.Fatal("q1 wrong")
	}
	// Interpolation between order statistics.
	if !approx(Quantile([]float64{0, 10}, 0.5), 5) {
		t.Fatal("interpolation wrong")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("input mutated")
	}
}

func TestSummarize(t *testing.T) {
	b := Summarize([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || !approx(b.Median, 3) {
		t.Fatalf("summary = %+v", b)
	}
	if !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max) {
		t.Fatalf("summary not ordered: %+v", b)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
		vals := make([]float64, len(qs))
		for i, q := range qs {
			vals[i] = Quantile(xs, q)
		}
		if !sort.Float64sAreSorted(vals) {
			return false
		}
		return vals[0] == Min(xs) && vals[len(vals)-1] == Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
