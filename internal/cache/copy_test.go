package cache

import "testing"

// driveHier replays a deterministic mixed access pattern — striding loads, a
// hot write set, and instruction fetches — returning each access's completion
// cycle. Two hierarchies in the same state must produce the same signature.
func driveHier(h *Hierarchy, base uint64, n int) []uint64 {
	sig := make([]uint64, 0, 2*n)
	now := uint64(0)
	for i := 0; i < n; i++ {
		addr := base + uint64(i*192%(256<<10))
		now = h.L1D.Access(addr, i%5 == 0, now)
		sig = append(sig, now)
		now = h.L1I.Access(base+uint64(i*64%4096), false, now)
		sig = append(sig, now)
	}
	return sig
}

// TestHierarchyCloneRoundTrip pins the checkpoint seam's cache contract: a
// cloned hierarchy replays the exact same latencies the original would, and
// the two are fully independent afterwards.
func TestHierarchyCloneRoundTrip(t *testing.T) {
	src := NewHierarchy(DefaultHierarchyConfig())
	driveHier(src, 1<<20, 3000) // warm every level, open DRAM rows

	cl := src.Clone()
	if cl.L1D.Hits != src.L1D.Hits || cl.L2.Misses != src.L2.Misses ||
		cl.LLC.Misses != src.LLC.Misses || cl.DRAM.RowHits != src.DRAM.RowHits {
		t.Fatal("clone statistics differ from source")
	}

	a := driveHier(src, 5<<20, 1500)
	b := driveHier(cl, 5<<20, 1500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d: source done at %d, clone at %d", i, a[i], b[i])
		}
	}

	// Divergence: driving one must not disturb the other.
	misses := cl.LLC.Misses
	driveHier(src, 9<<20, 500)
	if cl.LLC.Misses != misses {
		t.Fatal("driving the source mutated the clone")
	}
}

// TestHierarchyCopyFromReuse pins the pooled-checkpoint usage: CopyFrom into
// an already-used hierarchy (a worker restoring its next job) must fully
// overwrite the stale state.
func TestHierarchyCopyFromReuse(t *testing.T) {
	src := NewHierarchy(DefaultHierarchyConfig())
	driveHier(src, 1<<20, 2000)

	dst := NewHierarchy(DefaultHierarchyConfig())
	driveHier(dst, 7<<20, 2500) // stale state from a previous window
	dst.CopyFrom(src)

	a := driveHier(src, 3<<20, 1000)
	b := driveHier(dst, 3<<20, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d: source done at %d, copy at %d", i, a[i], b[i])
		}
	}
}
