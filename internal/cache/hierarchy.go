package cache

import "github.com/tipprof/tip/internal/mem"

// Hierarchy is the Table 1 cache hierarchy: split 32 KB 8-way L1I/L1D, a
// shared 512 KB 8-way L2, a 4 MB 8-way LLC, and DRAM behind it.
type Hierarchy struct {
	L1I, L1D, L2, LLC *Cache
	DRAM              *mem.DRAM
}

// HierarchyConfig collects the per-level configurations.
type HierarchyConfig struct {
	L1I, L1D, L2, LLC Config
	DRAM              mem.Config
}

// DefaultHierarchyConfig returns the Table 1 configuration. Hit latencies
// are load-to-use cycles typical of the simulated BOOM at 3.2 GHz.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:  Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Latency: 1, MSHRs: 4},
		L1D:  Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Latency: 3, MSHRs: 8, NextLinePrefetch: true},
		L2:   Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: 64, Ways: 8, Latency: 14, MSHRs: 12},
		LLC:  Config{Name: "LLC", SizeBytes: 4 << 20, LineBytes: 64, Ways: 8, Latency: 30, MSHRs: 8},
		DRAM: mem.DefaultConfig(),
	}
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	dram := mem.New(cfg.DRAM)
	llc := New(cfg.LLC, dram)
	l2 := New(cfg.L2, llc)
	l1d := New(cfg.L1D, l2)
	l1i := New(cfg.L1I, l2)
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, LLC: llc, DRAM: dram}
}

// Reset clears every level.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.LLC.Reset()
	h.DRAM.Reset()
}

// CopyFrom overwrites every level's state with src's. Both hierarchies must
// share a configuration; the chain wiring (which level misses into which) is
// untouched, so h stays self-contained. Steady-state copies do not allocate.
func (h *Hierarchy) CopyFrom(src *Hierarchy) {
	h.L1I.CopyFrom(src.L1I)
	h.L1D.CopyFrom(src.L1D)
	h.L2.CopyFrom(src.L2)
	h.LLC.CopyFrom(src.LLC)
	h.DRAM.CopyFrom(src.DRAM)
}

// Clone returns an independent deep copy of the hierarchy: a freshly wired
// L1I/L1D→L2→LLC→DRAM chain carrying h's tag, LRU, and timing state.
func (h *Hierarchy) Clone() *Hierarchy {
	cfg := HierarchyConfig{
		L1I: h.L1I.cfg, L1D: h.L1D.cfg, L2: h.L2.cfg, LLC: h.LLC.cfg,
		DRAM: h.DRAM.Config(),
	}
	n := NewHierarchy(cfg)
	n.CopyFrom(h)
	return n
}

// NewSharedLLC builds an LLC backed by its own DRAM, to be shared by
// several cores' private stacks (multi-core configurations).
func NewSharedLLC(cfg HierarchyConfig) *Cache {
	return New(cfg.LLC, mem.New(cfg.DRAM))
}

// Offset relocates addresses before forwarding to the next level. In the
// multi-core system it stands in for per-process physical mappings: every
// core's virtual addresses land in a disjoint physical range, so co-runners
// contend for shared-cache capacity without falsely sharing data.
type Offset struct {
	// Base is added to every address.
	Base uint64
	// Next receives the relocated accesses.
	Next Level
}

// Access implements Level.
func (o *Offset) Access(addr uint64, write bool, now uint64) uint64 {
	return o.Next.Access(addr+o.Base, write, now)
}

// NewPrivateStack builds one core's private L1I/L1D/L2 on top of a shared
// next level (typically a NewSharedLLC cache), relocating the core's
// addresses by physOffset.
func NewPrivateStack(cfg HierarchyConfig, shared Level, physOffset uint64) (l1i, l1d *Cache) {
	var next Level = shared
	if physOffset != 0 {
		next = &Offset{Base: physOffset, Next: shared}
	}
	l2 := New(cfg.L2, next)
	return New(cfg.L1I, l2), New(cfg.L1D, l2)
}
