// Package cache models the on-chip cache hierarchy of Table 1: set
// associative caches with LRU replacement, write-back/write-allocate
// policy, a bounded number of MSHRs, and an optional next-line prefetcher.
//
// Like the DRAM model, caches are latency-oriented: Access returns the
// absolute core cycle at which the requested line is available, chaining
// into the next level on a miss. MSHRs bound the number of outstanding
// misses; overlapping misses to the same line merge into the existing MSHR.
package cache

import (
	"fmt"
	"math/bits"
)

// Level is anything that can service a line request: a Cache or the DRAM.
type Level interface {
	// Access requests addr (any byte within the line) at cycle now and
	// returns the cycle the data is available.
	Access(addr uint64, write bool, now uint64) uint64
}

// Config describes one cache.
type Config struct {
	// Name labels the cache in stats ("L1D", "L2", ...).
	Name string
	// SizeBytes is the total capacity; must be a power of two multiple
	// of LineBytes*Ways.
	SizeBytes int
	// LineBytes is the cache line size (power of two).
	LineBytes int
	// Ways is the associativity.
	Ways int
	// Latency is the hit latency in cycles.
	Latency uint64
	// MSHRs bounds outstanding misses (Table 1: 8 for L1D, 12 for L2, 8
	// for LLC).
	MSHRs int
	// NextLinePrefetch enables fetching line+1 from the next level into
	// this cache on every demand miss (Table 1: L1D next-line prefetcher
	// from L2).
	NextLinePrefetch bool
}

type mshr struct {
	line uint64
	done uint64
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg      Config
	next     Level
	sets     int
	lineBits uint
	setMask  uint64

	// Flat arrays: index = set*ways + way. Empty slots hold invalidTag in
	// tags so the hit-path scan compares tags alone; valid backs the
	// replacement and eviction logic.
	tags  []uint64
	valid []bool
	dirty []bool
	// readyAt[i] is when the line's data arrives (hits on in-flight
	// prefetched lines wait for it).
	readyAt []uint64
	// lru[i] is a per-set stamp; larger = more recently used.
	lru   []uint64
	stamp uint64

	mshrs []mshr

	// Stats.
	Hits, Misses, Evictions, Writebacks, MSHRStalls, Prefetches uint64
	// WarmFills counts lines installed through Warm (functional warming);
	// kept apart so the timed hit/miss statistics describe detailed
	// simulation only.
	WarmFills uint64
}

// New builds a cache in front of next.
func New(cfg Config, next Level) *Cache {
	if next == nil {
		panic("cache: nil next level")
	}
	if cfg.LineBytes <= 0 || bits.OnesCount(uint(cfg.LineBytes)) != 1 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry", cfg.Name))
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", cfg.Name, lines, cfg.Ways))
	}
	sets := lines / cfg.Ways
	if bits.OnesCount(uint(sets)) != 1 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, sets))
	}
	if cfg.MSHRs <= 0 {
		panic(fmt.Sprintf("cache %s: need at least one MSHR", cfg.Name))
	}
	n := sets * cfg.Ways
	c := &Cache{
		cfg:      cfg,
		next:     next,
		sets:     sets,
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		readyAt:  make([]uint64, n),
		lru:      make([]uint64, n),
		mshrs:    make([]mshr, 0, cfg.MSHRs),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// invalidTag marks an empty slot. Simulated addresses live far below the top
// of the 64-bit space (synthetic code and data regions), so no real line
// number can collide with ^0; seeding empty slots with it lets the hit path
// skip the valid-bit load entirely.
const invalidTag = ^uint64(0)

// Name returns the cache's label.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) lineOf(addr uint64) uint64 { return addr >> c.lineBits }
func (c *Cache) setOf(line uint64) int     { return int(line & c.setMask) }

// lookup returns the way index of line in its set, or -1. Empty slots hold
// invalidTag, so the scan needs no valid-bit check.
func (c *Cache) lookup(line uint64) int {
	base := c.setOf(line) * c.cfg.Ways
	tags := c.tags[base : base+c.cfg.Ways]
	for w := range tags {
		if tags[w] == line {
			return base + w
		}
	}
	return -1
}

// touch refreshes LRU state for slot i.
func (c *Cache) touch(i int) {
	c.stamp++
	c.lru[i] = c.stamp
}

// victim picks the LRU slot in line's set, preferring invalid slots.
func (c *Cache) victim(line uint64) int {
	base := c.setOf(line) * c.cfg.Ways
	best := base
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if !c.valid[i] {
			return i
		}
		if c.lru[i] < c.lru[best] {
			best = i
		}
	}
	return best
}

// install places line into the cache, evicting (and writing back) as
// needed; readyAt is when the line's data arrives.
func (c *Cache) install(line uint64, write bool, readyAt uint64) {
	i := c.victim(line)
	if c.valid[i] {
		c.Evictions++
		if c.dirty[i] {
			c.Writebacks++
			// Write-back consumes next-level bandwidth but is off
			// the load's critical path.
			c.next.Access(c.tags[i]<<c.lineBits, true, readyAt)
		}
	}
	c.tags[i] = line
	c.valid[i] = true
	c.dirty[i] = write
	c.readyAt[i] = readyAt
	c.touch(i)
}

// Access implements Level.
func (c *Cache) Access(addr uint64, write bool, now uint64) uint64 {
	line := c.lineOf(addr)
	if i := c.lookup(line); i >= 0 {
		c.Hits++
		c.touch(i)
		if write {
			c.dirty[i] = true
		}
		done := now + c.cfg.Latency
		if c.readyAt[i] > done {
			// The line is still in flight (e.g. prefetched).
			done = c.readyAt[i]
		}
		return done
	}
	c.Misses++

	// MSHR handling: merge with an in-flight miss to the same line, else
	// take a free slot, else stall until the earliest one frees.
	start := now
	live := c.mshrs[:0]
	var merged *mshr
	for k := range c.mshrs {
		m := c.mshrs[k]
		if m.done > now {
			live = append(live, m)
			if m.line == line {
				merged = &live[len(live)-1]
			}
		}
	}
	c.mshrs = live
	if merged != nil {
		// The line is already on its way; piggyback.
		if write {
			// Mark dirty once it arrives.
			if i := c.lookup(line); i >= 0 {
				c.dirty[i] = true
			}
		}
		done := merged.done
		c.install(line, write, done) // idempotent refresh on arrival
		return done
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.MSHRStalls++
		oldest := c.mshrs[0].done
		for _, m := range c.mshrs {
			if m.done < oldest {
				oldest = m.done
			}
		}
		if oldest > start {
			start = oldest
		}
		// Re-filter now that time advanced.
		live = c.mshrs[:0]
		for _, m := range c.mshrs {
			if m.done > start {
				live = append(live, m)
			}
		}
		c.mshrs = live
	}

	// The lookup that discovered the miss costs the hit latency before the
	// request heads to the next level; fill time is the data-ready time.
	fill := c.next.Access(addr, false, start+c.cfg.Latency)
	c.mshrs = append(c.mshrs, mshr{line: line, done: fill})
	c.install(line, write, fill)

	if c.cfg.NextLinePrefetch {
		// The prefetcher issues the next line concurrently with the
		// demand miss (same request time): off the critical path, but
		// it occupies next-level bandwidth. Issuing it at the demand's
		// time (not its fill time) keeps the latency-chain model's
		// timestamps ordered — a future-dated access would block
		// earlier demand requests in the bank model.
		nl := line + 1
		if c.lookup(nl) < 0 {
			c.Prefetches++
			pfFill := c.next.Access(nl<<c.lineBits, false, start+c.cfg.Latency)
			c.install(nl, false, pfFill)
		}
	}
	return fill
}

// Warm installs the line holding addr touching only the tag, LRU and dirty
// arrays — no latency chain, no MSHR traffic, no Hits/Misses accounting.
// It is the functional fast-forward's bulk warming entry point: after a
// warmed skip a detailed window observes roughly the residency full
// simulation would have left behind. A miss recurses into the next cache
// level (DRAM has no tags to warm) and triggers the same next-line
// prefetch a demand miss would; a dirty victim's writeback is dropped —
// warming models residency, not bandwidth.
func (c *Cache) Warm(addr uint64, write bool) {
	line := c.lineOf(addr)
	if i := c.lookup(line); i >= 0 {
		c.touch(i)
		if write {
			c.dirty[i] = true
		}
		return
	}
	c.warmInstall(line, write)
	if nc, ok := c.next.(*Cache); ok {
		nc.Warm(addr, false)
	}
	if c.cfg.NextLinePrefetch {
		if nl := line + 1; c.lookup(nl) < 0 {
			c.warmInstall(nl, false)
			if nc, ok := c.next.(*Cache); ok {
				nc.Warm(nl<<c.lineBits, false)
			}
		}
	}
}

// warmInstall places line without timing or eviction statistics; data is
// treated as immediately available (readyAt 0 is always in the past).
func (c *Cache) warmInstall(line uint64, write bool) {
	c.WarmFills++
	i := c.victim(line)
	c.tags[i] = line
	c.valid[i] = true
	c.dirty[i] = write
	c.readyAt[i] = 0
	c.touch(i)
}

// CopyFrom overwrites c's tag, LRU, MSHR and statistics state with src's.
// The two caches must share a geometry (they keep their own next-level
// wiring); slice capacities are reused, so steady-state copies do not
// allocate.
func (c *Cache) CopyFrom(src *Cache) {
	if c.sets != src.sets || c.cfg.Ways != src.cfg.Ways || c.lineBits != src.lineBits {
		panic(fmt.Sprintf("cache %s: CopyFrom geometry mismatch with %s", c.cfg.Name, src.cfg.Name))
	}
	copy(c.tags, src.tags)
	copy(c.valid, src.valid)
	copy(c.dirty, src.dirty)
	copy(c.readyAt, src.readyAt)
	copy(c.lru, src.lru)
	c.stamp = src.stamp
	c.mshrs = append(c.mshrs[:0], src.mshrs...)
	c.Hits, c.Misses = src.Hits, src.Misses
	c.Evictions, c.Writebacks = src.Evictions, src.Writebacks
	c.MSHRStalls, c.Prefetches = src.MSHRStalls, src.Prefetches
	c.WarmFills = src.WarmFills
}

// Clone returns an independent copy of c wired in front of next.
func (c *Cache) Clone(next Level) *Cache {
	n := New(c.cfg, next)
	n.CopyFrom(c)
	return n
}

// Contains reports whether the line holding addr is present (for tests).
func (c *Cache) Contains(addr uint64) bool {
	return c.lookup(c.lineOf(addr)) >= 0
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.lru[i] = 0
		c.tags[i] = invalidTag
	}
	c.stamp = 0
	c.mshrs = c.mshrs[:0]
	c.Hits, c.Misses, c.Evictions, c.Writebacks, c.MSHRStalls, c.Prefetches = 0, 0, 0, 0, 0, 0
	c.WarmFills = 0
}

// MissRate returns misses/(hits+misses).
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// FixedLatency is a Level with a constant service time; useful as a test
// backing store and as the LLC-miss abstraction in unit tests.
type FixedLatency struct {
	Lat      uint64
	Accesses uint64
}

// Access implements Level.
func (f *FixedLatency) Access(addr uint64, write bool, now uint64) uint64 {
	f.Accesses++
	return now + f.Lat
}
