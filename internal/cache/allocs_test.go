package cache

import "testing"

// TestAccessSteadyStateZeroAllocs guards the per-access hot path: once a
// hierarchy has been warmed over its working set (all MSHR slices and
// internal tables at final capacity), Access must not allocate at all.
// A single simulated cycle can perform several cache accesses, so any
// per-access allocation would dominate capture-time GC pressure.
func TestAccessSteadyStateZeroAllocs(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	const lines = 4096 // working set larger than L1, exercises hits and misses
	now := uint64(0)
	pass := func() {
		for i := 0; i < lines; i++ {
			now = h.L1D.Access(uint64(i)*64, i%7 == 0, now)
		}
		for i := 0; i < lines; i++ {
			now = h.L1I.Access(uint64(i)*64, false, now)
		}
	}
	// Warm until every level has seen the full stream and transient
	// slice growth (MSHR bookkeeping) has settled.
	for w := 0; w < 3; w++ {
		pass()
	}
	if avg := testing.AllocsPerRun(5, pass); avg != 0 {
		t.Fatalf("steady-state cache access allocates: %.2f allocs/pass, want 0", avg)
	}
}
