package cache

import (
	"testing"
	"testing/quick"
)

func smallCache(back Level) *Cache {
	return New(Config{
		Name: "T", SizeBytes: 1024, LineBytes: 64, Ways: 2, Latency: 2, MSHRs: 4,
	}, back)
}

func TestHitAfterMiss(t *testing.T) {
	back := &FixedLatency{Lat: 100}
	c := smallCache(back)
	d1 := c.Access(0x40, false, 0)
	if d1 != 2+100 { // lookup latency + backing latency
		t.Fatalf("cold miss done at %d, want 102", d1)
	}
	d2 := c.Access(0x40, false, d1)
	if d2 != d1+2 {
		t.Fatalf("hit done at %d, want %d", d2, d1+2)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestSameLineDifferentBytes(t *testing.T) {
	c := smallCache(&FixedLatency{Lat: 50})
	c.Access(0x80, false, 0)
	d := c.Access(0xBF, false, 100) // same 64 B line
	if d != 102 {
		t.Fatalf("same-line access missed: done %d", d)
	}
}

func TestLRUEviction(t *testing.T) {
	back := &FixedLatency{Lat: 10}
	c := smallCache(back) // 8 sets, 2 ways
	// Three lines mapping to set 0: line numbers 0, 8, 16.
	c.Access(0*64*8*0, false, 0) // line 0 -> set 0
	c.Access(8*64, false, 100)   // line 8 -> set 0
	c.Access(0, false, 200)      // touch line 0 (now MRU)
	c.Access(16*64, false, 300)  // line 16 evicts line 8 (LRU)
	if !c.Contains(0) {
		t.Fatal("line 0 should survive (MRU)")
	}
	if c.Contains(8 * 64) {
		t.Fatal("line 8 should have been evicted")
	}
	if !c.Contains(16 * 64) {
		t.Fatal("line 16 should be present")
	}
}

func TestDirtyWriteback(t *testing.T) {
	back := &FixedLatency{Lat: 10}
	c := smallCache(back)
	c.Access(0, true, 0)       // write-allocate line 0 in set 0
	c.Access(8*64, false, 100) // fill set 0 way 2
	before := back.Accesses
	c.Access(16*64, false, 200) // evicts dirty line 0 -> writeback + fill
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks)
	}
	if back.Accesses != before+2 { // one writeback + one fill
		t.Fatalf("backing accesses = %d, want %d", back.Accesses, before+2)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	back := &FixedLatency{Lat: 10}
	c := smallCache(back)
	c.Access(0, false, 0)
	c.Access(8*64, false, 100)
	c.Access(16*64, false, 200)
	if c.Writebacks != 0 {
		t.Fatalf("writebacks = %d, want 0", c.Writebacks)
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
}

func TestMSHRMerge(t *testing.T) {
	back := &FixedLatency{Lat: 100}
	c := smallCache(back)
	d1 := c.Access(0, false, 0)
	// Second access to the same line while the first is in flight should
	// merge and complete no later than the first fill plus hit latency.
	d2 := c.Access(0, false, 1)
	if back.Accesses != 1 {
		t.Fatalf("backing accesses = %d, want 1 (merged)", back.Accesses)
	}
	if d2 > d1+2 {
		t.Fatalf("merged access done %d, first %d", d2, d1)
	}
}

func TestMSHRStall(t *testing.T) {
	back := &FixedLatency{Lat: 100}
	c := New(Config{Name: "T", SizeBytes: 4096, LineBytes: 64, Ways: 4, Latency: 1, MSHRs: 2}, back)
	c.Access(0*64, false, 0)
	c.Access(1*64, false, 0)
	// Third distinct miss at time 0 must wait for an MSHR.
	d := c.Access(2*64, false, 0)
	if c.MSHRStalls != 1 {
		t.Fatalf("MSHR stalls = %d, want 1", c.MSHRStalls)
	}
	if d <= 101 {
		t.Fatalf("stalled miss finished too early: %d", d)
	}
}

func TestNextLinePrefetch(t *testing.T) {
	back := &FixedLatency{Lat: 50}
	c := New(Config{Name: "T", SizeBytes: 4096, LineBytes: 64, Ways: 4, Latency: 1, MSHRs: 8, NextLinePrefetch: true}, back)
	c.Access(0, false, 0)
	if c.Prefetches != 1 {
		t.Fatalf("prefetches = %d, want 1", c.Prefetches)
	}
	if !c.Contains(64) {
		t.Fatal("next line not prefetched")
	}
	// Access to the prefetched line is a hit.
	misses := c.Misses
	c.Access(64, false, 200)
	if c.Misses != misses {
		t.Fatal("prefetched line missed")
	}
}

func TestMissRate(t *testing.T) {
	c := smallCache(&FixedLatency{Lat: 10})
	if c.MissRate() != 0 {
		t.Fatal("empty cache miss rate should be 0")
	}
	c.Access(0, false, 0)
	c.Access(0, false, 100)
	c.Access(0, false, 200)
	c.Access(64, false, 300)
	if r := c.MissRate(); r != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", r)
	}
}

func TestReset(t *testing.T) {
	c := smallCache(&FixedLatency{Lat: 10})
	c.Access(0, true, 0)
	c.Reset()
	if c.Contains(0) {
		t.Fatal("line survived reset")
	}
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("stats survived reset")
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{Name: "b", SizeBytes: 1024, LineBytes: 48, Ways: 2, MSHRs: 1},       // non-pow2 line
		{Name: "b", SizeBytes: 1024, LineBytes: 64, Ways: 0, MSHRs: 1},       // zero ways
		{Name: "b", SizeBytes: 1024, LineBytes: 64, Ways: 2, MSHRs: 0},       // zero mshrs
		{Name: "b", SizeBytes: 3 * 64 * 2, LineBytes: 64, Ways: 2, MSHRs: 1}, // non-pow2 sets
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, &FixedLatency{Lat: 1})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil next level did not panic")
			}
		}()
		New(Config{Name: "b", SizeBytes: 1024, LineBytes: 64, Ways: 2, MSHRs: 1}, nil)
	}()
}

func TestHierarchyDefault(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold access goes all the way to DRAM.
	d := h.L1D.Access(0x100000, false, 0)
	if d < 45 {
		t.Fatalf("cold access completed at %d, too fast for a DRAM trip", d)
	}
	if h.DRAM.Accesses == 0 {
		t.Fatal("cold miss never reached DRAM")
	}
	// Hot access is an L1 hit.
	d2 := h.L1D.Access(0x100000, false, d)
	if d2 != d+h.L1D.Config().Latency {
		t.Fatalf("hot access latency = %d", d2-d)
	}
}

func TestHierarchyL2SharedByL1I(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.L1D.Access(0x200000, false, 0)
	l2Hits := h.L2.Hits
	// Same line through the I-side should hit in the shared L2.
	h.L1I.Access(0x200000, false, 1000)
	if h.L2.Hits != l2Hits+1 {
		t.Fatalf("L2 hits = %d, want %d", h.L2.Hits, l2Hits+1)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.L1D.Access(0x1000, false, 0)
	h.Reset()
	if h.L1D.Contains(0x1000) || h.L2.Contains(0x1000) || h.LLC.Contains(0x1000) {
		t.Fatal("lines survived hierarchy reset")
	}
}

func TestWorkingSetLatencyTiers(t *testing.T) {
	// A footprint that fits L1 must have lower average latency than one
	// that only fits L2, which must beat one that only fits LLC.
	avg := func(footprint uint64) float64 {
		h := NewHierarchy(DefaultHierarchyConfig())
		now := uint64(0)
		var total uint64
		const rounds = 4
		n := int(footprint / 64)
		for r := 0; r < rounds; r++ {
			for i := 0; i < n; i++ {
				start := now
				now = h.L1D.Access(uint64(i)*64, false, now)
				if r > 0 { // skip cold round
					total += now - start
				}
			}
		}
		return float64(total) / float64((rounds-1)*n)
	}
	l1 := avg(16 << 10)
	l2 := avg(256 << 10)
	llc := avg(2 << 20)
	if !(l1 < l2 && l2 < llc) {
		t.Fatalf("latency tiers wrong: L1 %v, L2 %v, LLC %v", l1, l2, llc)
	}
}

// Property: Access never returns a time earlier than now + hit latency.
func TestQuickAccessMonotone(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := smallCache(&FixedLatency{Lat: 30})
		now := uint64(0)
		for _, a := range addrs {
			done := c.Access(uint64(a), a%3 == 0, now)
			if done < now+c.Config().Latency {
				return false
			}
			now = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after accessing an address, it is contained (no silent drop).
func TestQuickInstalled(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := smallCache(&FixedLatency{Lat: 5})
		now := uint64(0)
		for _, a := range addrs {
			now = c.Access(uint64(a), false, now)
			if !c.Contains(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := smallCache(&FixedLatency{Lat: 100})
	c.Access(0, false, 0)
	now := uint64(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = c.Access(0, false, now)
	}
}

func BenchmarkHierarchyStride(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig())
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = h.L1D.Access(uint64(i%100000)*64, false, now)
	}
}
