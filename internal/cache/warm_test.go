package cache

import "testing"

// TestWarmInstallsWithoutTiming checks Warm fills tags (and the next level)
// without touching the timed statistics or the MSHRs.
func TestWarmInstallsWithoutTiming(t *testing.T) {
	back := &FixedLatency{Lat: 100}
	l2 := New(Config{Name: "L2", SizeBytes: 4096, LineBytes: 64, Ways: 4, Latency: 10, MSHRs: 4}, back)
	l1 := New(Config{Name: "L1", SizeBytes: 1024, LineBytes: 64, Ways: 2, Latency: 2, MSHRs: 4}, l2)

	l1.Warm(0x40, false)
	if !l1.Contains(0x40) || !l2.Contains(0x40) {
		t.Fatal("Warm should install the line at both levels")
	}
	if l1.Hits+l1.Misses+l2.Hits+l2.Misses != 0 {
		t.Fatalf("Warm touched timed stats: l1 %d/%d l2 %d/%d", l1.Hits, l1.Misses, l2.Hits, l2.Misses)
	}
	if back.Accesses != 0 {
		t.Fatalf("Warm reached the backing store: %d accesses", back.Accesses)
	}
	if l1.WarmFills == 0 || l2.WarmFills == 0 {
		t.Fatal("WarmFills not counted")
	}

	// A later timed access to the warmed line is a hit at hit latency.
	if done := l1.Access(0x40, false, 1000); done != 1002 {
		t.Fatalf("access to warmed line done at %d, want 1002", done)
	}
}

// TestWarmDirtyVictimDropped checks evicting a warm-dirty line through Warm
// performs no writeback traffic.
func TestWarmDirtyVictimDropped(t *testing.T) {
	back := &FixedLatency{Lat: 10}
	c := New(Config{Name: "T", SizeBytes: 128, LineBytes: 64, Ways: 1, Latency: 1, MSHRs: 2}, back)
	c.Warm(0, true) // line 0 -> set 0, dirty
	c.Warm(2*64, true)
	c.Warm(4*64, true) // evicts line 0
	if back.Accesses != 0 || c.Writebacks != 0 {
		t.Fatalf("warm eviction wrote back: backing=%d writebacks=%d", back.Accesses, c.Writebacks)
	}
}

// TestWarmNextLinePrefetch checks Warm mirrors the demand path's next-line
// prefetch so warmed residency matches what full simulation builds.
func TestWarmNextLinePrefetch(t *testing.T) {
	back := &FixedLatency{Lat: 10}
	c := New(Config{Name: "T", SizeBytes: 1024, LineBytes: 64, Ways: 2, Latency: 1, MSHRs: 2, NextLinePrefetch: true}, back)
	c.Warm(0x100, false)
	if !c.Contains(0x100) || !c.Contains(0x140) {
		t.Fatal("next-line prefetch not warmed")
	}
	if c.Prefetches != 0 {
		t.Fatalf("warm prefetch counted as timed prefetch: %d", c.Prefetches)
	}
}
