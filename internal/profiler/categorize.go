package profiler

import (
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/trace"
)

// SampleFlags is the TIP flags CSR exposed with each sample (§3.1): the
// post-processing step combines these with the instruction types from the
// application binary to label each sample with a cycle category.
type SampleFlags uint8

const (
	// FlagStalled: no instructions committed in the sampled cycle.
	FlagStalled SampleFlags = 1 << iota
	// FlagMispredicted: ROB empty after a mispredicted control-flow
	// instruction (from the OIR).
	FlagMispredicted
	// FlagFlush: ROB empty after a commit-time pipeline flush.
	FlagFlush
	// FlagException: ROB empty after an exception.
	FlagException
	// FlagFrontend: ROB empty because the front end starved.
	FlagFrontend
)

// Has reports whether all given flags are set.
func (f SampleFlags) Has(mask SampleFlags) bool { return f&mask == mask }

// CategorizeSample reproduces TIP's post-processing (§3.1): cycles where the
// application commits are execution cycles; drained cycles are front-end
// cycles; stalls are split by the stalled instruction's type, looked up in
// the binary; flushes split into mispredicts and the rest.
func CategorizeSample(flags SampleFlags, prog *program.Program, instIndex int32) profile.Category {
	switch {
	case flags.Has(FlagMispredicted):
		return profile.CatMispredict
	case flags.Has(FlagFlush) || flags.Has(FlagException):
		return profile.CatMiscFlush
	case flags.Has(FlagFrontend):
		return profile.CatFrontend
	case flags.Has(FlagStalled):
		if instIndex >= 0 && int(instIndex) < prog.NumInsts() {
			return profile.StallCategoryOf(prog.InstByIndex(int(instIndex)).Kind)
		}
		return profile.CatALUStall
	default:
		return profile.CatExecution
	}
}

// flagsForRecord derives the flags CSR contents for a sample taken at r,
// given the profiler's OIR state (Fig. 6 sample-selection logic).
func flagsForRecord(r *trace.Record, o *oir) SampleFlags {
	var f SampleFlags
	if r.CommitCount == 0 {
		f |= FlagStalled
	}
	if r.ROBEmpty {
		switch {
		case o.valid && o.mispredicted:
			f |= FlagMispredicted
		case o.valid && o.flush:
			f |= FlagFlush
		case o.valid && o.exception:
			f |= FlagException
		default:
			f |= FlagFrontend
		}
	}
	return f
}

// CategoryProfile accumulates TIP samples into a cycle stack and an
// optional per-instruction category matrix — the §3.1 "help developers
// understand why some instructions take longer than others" output, and
// the sampled counterpart of Oracle's exact Fig. 13 breakdowns.
type CategoryProfile struct {
	prog *program.Program
	// Stack is the sampled cycle-type breakdown.
	Stack profile.CycleStack
	// Breakdown[i][c] is cycles of category c attributed to instruction
	// i (nil unless enabled).
	Breakdown [][]float64
}

// NewCategoryProfile builds an empty categorized profile.
func NewCategoryProfile(prog *program.Program, withBreakdown bool) *CategoryProfile {
	cp := &CategoryProfile{prog: prog}
	if withBreakdown {
		cp.Breakdown = make([][]float64, prog.NumInsts())
		for i := range cp.Breakdown {
			cp.Breakdown[i] = make([]float64, profile.NumCategories)
		}
	}
	return cp
}

// Add records w cycles on instruction idx under the category derived from
// flags.
func (cp *CategoryProfile) Add(flags SampleFlags, idx int32, w float64) {
	cat := CategorizeSample(flags, cp.prog, idx)
	cp.Stack.Add(cat, w)
	cp.Stack.Total += w
	if cp.Breakdown != nil && idx >= 0 && int(idx) < len(cp.Breakdown) {
		cp.Breakdown[idx][cat] += w
	}
}

// FunctionStack aggregates the sampled per-category breakdown over one
// function (requires the breakdown matrix).
func (cp *CategoryProfile) FunctionStack(fnName string) profile.CycleStack {
	var out profile.CycleStack
	if cp.Breakdown == nil {
		return out
	}
	for _, f := range cp.prog.Funcs {
		if f.Name != fnName {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				for c, v := range cp.Breakdown[in.Index] {
					out.Cycles[c] += v
				}
			}
		}
	}
	for _, v := range out.Cycles {
		out.Total += v
	}
	return out
}
