package profiler

import "sort"

// ShardSampled partitions sampled profilers into at most w groups for a
// sharded replay, balancing each group's expected dispatcher wakeups. A
// sampled profiler's steady-state cost is proportional to its sampling rate
// — it wakes on roughly one cycle per period (plus the pending-resolution
// tail each wakeup drags behind it) — so the cost model is 1/Period.
//
// Group 0 is assumed to also carry the every-cycle tier (Oracle, checker,
// extra full-rate consumers); everyCost pre-loads it with that tier's
// per-cycle cost (1.0 per every-cycle consumer) so the greedy assignment
// steers sampled work away from the worker that already scans every record.
//
// The assignment is longest-processing-time greedy with deterministic
// tie-breaking (cost, then registration order), so a given matrix always
// shards the same way. Groups may come back empty when there are fewer
// profilers than workers; callers should skip spawning workers for them.
func ShardSampled(w int, sampled []*Sampled, everyCost float64) [][]*Sampled {
	if w < 1 {
		w = 1
	}
	groups := make([][]*Sampled, w)
	load := make([]float64, w)
	load[0] = everyCost

	order := make([]int, len(sampled))
	for i := range order {
		order[i] = i
	}
	cost := func(s *Sampled) float64 {
		p := s.Period()
		if p == 0 {
			return 1
		}
		return 1 / float64(p)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cost(sampled[order[a]]) > cost(sampled[order[b]])
	})
	for _, i := range order {
		s := sampled[i]
		lightest := 0
		for g := 1; g < w; g++ {
			if load[g] < load[lightest] {
				lightest = g
			}
		}
		groups[lightest] = append(groups[lightest], s)
		load[lightest] += cost(s)
	}
	return groups
}
