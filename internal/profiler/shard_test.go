package profiler

import (
	"reflect"
	"testing"

	"github.com/tipprof/tip/internal/sampling"
)

// shardFixture builds sampled profilers with the given sampling periods.
func shardFixture(t *testing.T, periods []uint64) []*Sampled {
	t.Helper()
	p := fig4Program(t)
	out := make([]*Sampled, len(periods))
	for i, period := range periods {
		out[i] = NewSampled(KindNCI, p, sampling.NewPeriodic(period))
	}
	return out
}

func TestShardSampledCoversEveryProfilerOnce(t *testing.T) {
	sampled := shardFixture(t, []uint64{16, 32, 64, 128, 256, 512, 1024})
	for _, w := range []int{1, 2, 3, 7, 12} {
		groups := ShardSampled(w, sampled, 1)
		if len(groups) != w {
			t.Fatalf("w=%d: got %d groups", w, len(groups))
		}
		seen := map[*Sampled]int{}
		for _, g := range groups {
			for _, s := range g {
				seen[s]++
			}
		}
		if len(seen) != len(sampled) {
			t.Fatalf("w=%d: %d distinct profilers assigned, want %d", w, len(seen), len(sampled))
		}
		for s, n := range seen {
			if n != 1 {
				t.Fatalf("w=%d: profiler %p assigned %d times", w, s, n)
			}
		}
	}
}

// TestShardSampledAvoidsLoadedShardZero checks the everyCost pre-load works:
// with a heavy every-cycle tier on shard 0, the sampled profilers land on the
// other shards.
func TestShardSampledAvoidsLoadedShardZero(t *testing.T) {
	sampled := shardFixture(t, []uint64{100, 100, 100, 100})
	groups := ShardSampled(3, sampled, 5) // shard 0 already scans 5 streams/cycle
	if len(groups[0]) != 0 {
		t.Fatalf("shard 0 got %d sampled profilers despite its every-cycle load", len(groups[0]))
	}
	if len(groups[1])+len(groups[2]) != 4 {
		t.Fatalf("sampled tier split %d/%d", len(groups[1]), len(groups[2]))
	}
}

// TestShardSampledBalancesByRate checks a high-rate profiler counts for more
// than a low-rate one: one fast sampler should weigh as much as many slow
// ones rather than being grouped by count.
func TestShardSampledBalancesByRate(t *testing.T) {
	// Period 10 costs 0.1; the four period-1000 profilers cost 0.001 each.
	sampled := shardFixture(t, []uint64{10, 1000, 1000, 1000, 1000})
	groups := ShardSampled(2, sampled, 0)
	var fastGroup int = -1
	for gi, g := range groups {
		for _, s := range g {
			if s == sampled[0] {
				fastGroup = gi
			}
		}
	}
	if fastGroup == -1 {
		t.Fatal("fast profiler unassigned")
	}
	// The fast profiler dominates its shard; all slow ones go to the other.
	if len(groups[fastGroup]) != 1 {
		t.Fatalf("fast profiler shares its shard with %d others", len(groups[fastGroup])-1)
	}
}

func TestShardSampledDeterministic(t *testing.T) {
	sampled := shardFixture(t, []uint64{16, 16, 32, 64, 64, 128})
	a := ShardSampled(4, sampled, 2)
	b := ShardSampled(4, sampled, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same inputs sharded differently")
	}
}

func TestShardSampledDegenerateWorkerCounts(t *testing.T) {
	sampled := shardFixture(t, []uint64{16, 32})
	one := ShardSampled(0, sampled, 1) // w < 1 clamps to 1
	if len(one) != 1 || len(one[0]) != 2 {
		t.Fatalf("w=0: groups %v", one)
	}
	many := ShardSampled(6, sampled, 0)
	nonEmpty := 0
	for _, g := range many {
		if len(g) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("2 profilers across 6 shards occupy %d shards", nonEmpty)
	}
}
