package profiler

import (
	"math"
	"testing"

	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/profile"
)

func TestCategorizeSampleMapping(t *testing.T) {
	p := fig4Program(t)
	cases := []struct {
		flags SampleFlags
		idx   int32
		want  profile.Category
	}{
		{0, idxI1, profile.CatExecution},
		{FlagStalled, idxI1, profile.CatALUStall},
		{FlagStalled, idxLoad, profile.CatLoadStall},
		{FlagStalled | FlagMispredicted, idxBranch, profile.CatMispredict},
		{FlagStalled | FlagFlush, idxDummy2, profile.CatMiscFlush},
		{FlagStalled | FlagException, idxLoad, profile.CatMiscFlush},
		{FlagStalled | FlagFrontend, idxI3, profile.CatFrontend},
		{FlagStalled, -1, profile.CatALUStall}, // unknown instruction
	}
	for _, c := range cases {
		if got := CategorizeSample(c.flags, p, c.idx); got != c.want {
			t.Errorf("flags %b idx %d: got %v, want %v", c.flags, c.idx, got, c.want)
		}
	}
}

func TestSampleFlagsHas(t *testing.T) {
	f := FlagStalled | FlagFlush
	if !f.Has(FlagStalled) || !f.Has(FlagFlush) || f.Has(FlagMispredicted) {
		t.Fatal("Has logic wrong")
	}
}

// TestTIPCategoriesMatchOracleStack: sampling every cycle, TIP's sampled
// cycle stack equals Oracle's exact one.
func TestTIPCategoriesMatchOracleStack(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})
	s.cycle(ent{idx: idxDummy, committing: true})
	loadFID := uint64(40)
	s.cycle(ent{idx: idxI1, committing: true}, ent{idx: idxLoad, fid: loadFID})
	for i := 0; i < 10; i++ {
		s.cycle(ent{idx: idxLoad, fid: loadFID})
	}
	s.cycle(ent{idx: idxLoad, committing: true, fid: loadFID})
	s.cycle(ent{idx: idxBranch, committing: true, mispredicted: true})
	s.cycle()
	s.cycle()
	s.cycle(ent{idx: idxI5, committing: true}, ent{idx: idxI6, committing: true})

	or := NewOracle(p, true)
	tip := NewSampled(KindTIP, p, everyCycle{})
	tip.EnableCategories(true)
	s.run(or, tip)

	for c := 0; c < profile.NumCategories; c++ {
		want := or.Stack.Cycles[c]
		got := tip.Categories.Stack.Cycles[c]
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("category %v: TIP %v, Oracle %v", profile.Category(c), got, want)
		}
	}
	// Per-function stacks agree too (ceil holds everything here).
	of := or.FunctionStack("main")
	tf := tip.Categories.FunctionStack("main")
	if math.Abs(of.Cycles[profile.CatLoadStall]-tf.Cycles[profile.CatLoadStall]) > 1e-9 {
		t.Errorf("function load-stall cycles: TIP %v, Oracle %v",
			tf.Cycles[profile.CatLoadStall], of.Cycles[profile.CatLoadStall])
	}
}

func TestCategoryProfileWithoutBreakdown(t *testing.T) {
	p := fig4Program(t)
	cp := NewCategoryProfile(p, false)
	cp.Add(FlagStalled, idxLoad, 5)
	if cp.Stack.Cycles[profile.CatLoadStall] != 5 {
		t.Fatal("stack not accumulated")
	}
	if st := cp.FunctionStack("main"); st.Total != 0 {
		t.Fatal("function stack should be empty without breakdown")
	}
}

func TestCategoryProfileIgnoresBadIndex(t *testing.T) {
	p := fig4Program(t)
	cp := NewCategoryProfile(p, true)
	cp.Add(FlagStalled|FlagFrontend, -1, 3)
	if cp.Stack.Cycles[profile.CatFrontend] != 3 {
		t.Fatal("stack should still accumulate")
	}
	cp.Add(0, int32(p.NumInsts()+5), 2)
	if cp.Stack.Cycles[profile.CatExecution] != 2 {
		t.Fatal("stack should still accumulate for out-of-range index")
	}
}

func TestIsa(t *testing.T) { _ = isa.KindLoad } // keep import if cases change
