package profiler

import (
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
)

// Kind identifies a sampled-profiler policy.
type Kind int

const (
	// KindSoftware models interrupt-based profiling (Linux perf without
	// hardware support): the sample lands on the instruction execution
	// resumes from after all in-flight instructions drain — skid.
	KindSoftware Kind = iota
	// KindDispatch models AMD IBS / Arm SPE dispatch tagging: the
	// instruction at the dispatch stage is tagged and the sample is
	// collected when it commits.
	KindDispatch
	// KindLCI models external monitors (Arm CoreSight): the sample goes
	// to the last-committed instruction.
	KindLCI
	// KindNCI models Intel PEBS: the sample goes to the next-committing
	// instruction.
	KindNCI
	// KindNCIILP is the §5.2 variant of NCI that splits the sample over
	// all instructions co-committing with the next-committing one.
	KindNCIILP
	// KindTIPILP is TIP without ILP accounting: commit-cycle samples go
	// to a single committing instruction.
	KindTIPILP
	// KindTIP is the full Time-Proportional Instruction Profiler (§3).
	KindTIP

	numKinds
)

// NumKinds is the number of sampled-profiler policies.
const NumKinds = int(numKinds)

var kindNames = [NumKinds]string{
	"Software", "Dispatch", "LCI", "NCI", "NCI+ILP", "TIP-ILP", "TIP",
}

// String names the policy as in the paper's figures.
func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return "profiler(?)"
}

// AllKinds lists every sampled-profiler policy.
func AllKinds() []Kind {
	out := make([]Kind, NumKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// pendingSample is a sample awaiting a resolution event.
type pendingSample struct {
	weight float64
	// targetFID is the fetch-ID threshold for Software/Dispatch
	// resolution; unused by NCI-style pending samples.
	targetFID uint64
	// flags are the TIP flags CSR latched at sample time (category
	// post-processing, §3.1).
	flags SampleFlags
}

// Sampled is one statistical profiler instance.
type Sampled struct {
	// Kind is the attribution policy.
	Kind Kind
	// Profile accumulates the sampled attribution.
	Profile *profile.Profile
	// Samples counts collected samples.
	Samples uint64
	// SampledWeight is the total cycle weight of all samples taken (each
	// sample carries the length of the interval behind it).
	SampledWeight float64
	// LostWeight is sampled weight that could not be attributed to any
	// instruction: samples pending at end of run, LCI samples before the
	// first commit, and attributions to unknown instruction indices.
	// Conservation (checked by internal/check) requires
	// Profile.Attributed() + LostWeight == SampledWeight.
	LostWeight float64
	// Categories, when enabled on a TIP-family profiler, accumulates the
	// §3.1 flag-based cycle categorization alongside the profile.
	Categories *CategoryProfile

	prog  *program.Program
	sched sampling.Schedule
	next  uint64
	last  uint64 // previous sample cycle + 1 (start of current window)

	// facts is the per-cycle policy state (OIR, last-committed tracking).
	// A standalone profiler owns a private copy and advances it itself;
	// one attached to a Dispatcher shares the dispatcher's copy, advanced
	// once per cycle for the whole sample-aware tier.
	facts    *CycleFacts
	ownFacts bool
	// Pending resolution queues.
	pendNCI      []pendingSample // resolve on next committing cycle
	pendNCISplit []pendingSample // resolve splitting across that cycle
	pendDrain    []pendingSample // TIP front-end: resolve on next valid entry
	pendFID      []pendingSample // Software/Dispatch: resolve on commit >= FID
}

// NewSampled builds a sampled profiler of the given kind over prog,
// sampling on sched.
func NewSampled(kind Kind, prog *program.Program, sched sampling.Schedule) *Sampled {
	s := &Sampled{
		Kind:     kind,
		Profile:  profile.New(prog),
		prog:     prog,
		sched:    sched,
		facts:    &CycleFacts{},
		ownFacts: true,
	}
	s.next = sched.Next(0)
	return s
}

// Period returns the profiler's nominal sampling period in cycles (the
// shard balancer's cost model: expected wakeups per cycle is 1/Period).
func (s *Sampled) Period() uint64 { return s.sched.Period() }

// EnableCategories turns on §3.1 sample categorization (TIP exposes the
// flags CSR; the post-processing needs the program binary). withBreakdown
// additionally keeps the per-instruction category matrix.
func (s *Sampled) EnableCategories(withBreakdown bool) {
	s.Categories = NewCategoryProfile(s.prog, withBreakdown)
}

// cat records a categorized attribution when categorization is enabled.
func (s *Sampled) cat(flags SampleFlags, idx int32, w float64) {
	if s.Categories != nil {
		s.Categories.Add(flags, idx, w)
	}
}

// add attributes sample weight, booking weight aimed at an unknown
// instruction as lost so conservation stays checkable.
func (s *Sampled) add(idx int32, w float64) {
	if idx < 0 || int(idx) >= s.prog.NumInsts() {
		s.LostWeight += w
		return
	}
	s.Profile.Add(idx, w)
}

// OnCycle implements trace.Consumer.
func (s *Sampled) OnCycle(r *trace.Record) {
	s.observe(r)
	if s.ownFacts {
		s.facts.Observe(r)
	}
}

// observe handles one record's attribution work: resolve pending samples,
// then take a new sample if this is a scheduled cycle. It deliberately does
// NOT advance the cycle facts — a standalone profiler does that in OnCycle,
// while a Dispatcher advances the shared facts once for its whole tier.
func (s *Sampled) observe(r *trace.Record) {
	// Resolve pending samples first: a sample taken in an earlier cycle
	// resolves on this cycle's events (commits, dispatches).
	s.resolve(r)

	if r.Cycle == s.next {
		w := float64(r.Cycle + 1 - s.last)
		s.last = r.Cycle + 1
		s.next = s.sched.Next(r.Cycle)
		s.Samples++
		s.SampledWeight += w
		s.take(r, w)
	}
}

// hasPending reports whether any sample awaits resolution.
func (s *Sampled) hasPending() bool {
	return len(s.pendNCI) > 0 || len(s.pendNCISplit) > 0 ||
		len(s.pendDrain) > 0 || len(s.pendFID) > 0
}

// take captures one sample with the given weight according to the policy.
func (s *Sampled) take(r *trace.Record, w float64) {
	switch s.Kind {
	case KindSoftware:
		// The interrupt fires, in-flight instructions drain, and the
		// saved PC is the next instruction after them.
		if r.AnyInFlight {
			s.pendFID = append(s.pendFID, pendingSample{weight: w, targetFID: r.YoungestFID + 1})
		} else {
			s.pendFID = append(s.pendFID, pendingSample{weight: w, targetFID: 0})
		}
	case KindDispatch:
		if r.DispatchValid {
			s.pendFID = append(s.pendFID, pendingSample{weight: w, targetFID: r.DispatchFID})
		} else if r.AnyInFlight {
			// Nothing at dispatch: tag the next instruction to
			// arrive there.
			s.pendFID = append(s.pendFID, pendingSample{weight: w, targetFID: r.YoungestFID + 1})
		} else {
			s.pendFID = append(s.pendFID, pendingSample{weight: w, targetFID: 0})
		}
	case KindLCI:
		if r.CommitCount > 0 {
			// A commit in the sampled cycle: the freshest commit
			// record is the oldest instruction committing now
			// (Fig. 4b: the load, not its ILP partner).
			if old := oldestCommitting(r); old != nil {
				s.add(old.InstIndex, w)
			} else {
				s.LostWeight += w
			}
		} else if s.facts.lastCommittedSet {
			s.add(s.facts.lastCommitted, w)
		} else {
			// Before the first commit of the run the sample is lost.
			s.LostWeight += w
		}
	case KindNCI:
		// "Next committing" includes instructions committing in the
		// sampled cycle itself.
		if old := oldestCommitting(r); old != nil {
			s.add(old.InstIndex, w)
		} else {
			s.pendNCI = append(s.pendNCI, pendingSample{weight: w})
		}
	case KindNCIILP:
		if r.CommitCount > 0 {
			split := w / float64(r.CommitCount)
			n, b := scanStart(r)
			for i := 0; i < n; i++ {
				e := &r.Banks[b]
				if e.Valid && e.Committing {
					s.add(e.InstIndex, split)
				}
				if b++; b == n {
					b = 0
				}
			}
		} else {
			s.pendNCISplit = append(s.pendNCISplit, pendingSample{weight: w})
		}
	case KindTIP, KindTIPILP:
		s.takeTIP(r, w)
	}
}

// takeTIP implements the Fig. 6 sample-selection logic.
func (s *Sampled) takeTIP(r *trace.Record, w float64) {
	flags := flagsForRecord(r, &s.facts.o)
	if !r.ROBEmpty {
		if r.CommitCount > 0 {
			// Computing state.
			if s.Kind == KindTIP {
				split := w / float64(r.CommitCount)
				n, b := scanStart(r)
				for i := 0; i < n; i++ {
					e := &r.Banks[b]
					if e.Valid && e.Committing {
						s.add(e.InstIndex, split)
						s.cat(flags, e.InstIndex, split)
					}
					if b++; b == n {
						b = 0
					}
				}
			} else if old := oldestCommitting(r); old != nil {
				// TIP-ILP: single instruction.
				s.add(old.InstIndex, w)
				s.cat(flags, old.InstIndex, w)
			} else {
				s.LostWeight += w
			}
			return
		}
		// Stalled state: the Oldest ID register points at the stalled
		// instruction.
		if old := r.Oldest(); old != nil {
			s.add(old.InstIndex, w)
			s.cat(flags, old.InstIndex, w)
		} else {
			s.LostWeight += w
		}
		return
	}
	// ROB empty: Flushed (OIR flags set) or Drained (front-end flag; the
	// sample waits for the first instruction to dispatch).
	if s.facts.o.flushed() {
		s.add(s.facts.o.instIndex, w)
		s.cat(flags, s.facts.o.instIndex, w)
		return
	}
	s.pendDrain = append(s.pendDrain, pendingSample{weight: w, flags: flags})
}

// resolve settles pending samples against this cycle's record.
func (s *Sampled) resolve(r *trace.Record) {
	if len(s.pendNCI) > 0 && r.CommitCount > 0 {
		if old := oldestCommitting(r); old != nil {
			for _, p := range s.pendNCI {
				s.add(old.InstIndex, p.weight)
			}
			s.pendNCI = s.pendNCI[:0]
		}
	}
	if len(s.pendNCISplit) > 0 && r.CommitCount > 0 {
		split := 1.0 / float64(r.CommitCount)
		for _, p := range s.pendNCISplit {
			n, b := scanStart(r)
			for i := 0; i < n; i++ {
				e := &r.Banks[b]
				if e.Valid && e.Committing {
					s.add(e.InstIndex, p.weight*split)
				}
				if b++; b == n {
					b = 0
				}
			}
		}
		s.pendNCISplit = s.pendNCISplit[:0]
	}
	if len(s.pendDrain) > 0 && !r.ROBEmpty {
		if old := r.Oldest(); old != nil {
			for _, p := range s.pendDrain {
				s.add(old.InstIndex, p.weight)
				s.cat(p.flags, old.InstIndex, p.weight)
			}
			s.pendDrain = s.pendDrain[:0]
		}
	}
	if len(s.pendFID) > 0 && r.CommitCount > 0 {
		// The youngest committing FID bounds every pending target: an
		// entry resolves this cycle iff its target is at or below it.
		// One scan decides, so stall-heavy stretches skip the per-entry
		// bank scans and the slice rebuild entirely.
		if yc := r.YoungestCommitting(); yc != nil {
			maxFID := yc.FID
			resolvable := false
			for i := range s.pendFID {
				if s.pendFID[i].targetFID <= maxFID {
					resolvable = true
					break
				}
			}
			if resolvable {
				keep := s.pendFID[:0]
				for _, p := range s.pendFID {
					if p.targetFID <= maxFID {
						idx, _ := firstCommitAtOrAfter(r, p.targetFID)
						s.add(idx, p.weight)
					} else {
						keep = append(keep, p)
					}
				}
				s.pendFID = keep
			}
		}
	}
}

// Finish implements trace.Consumer. Unresolved samples are dropped, like
// samples a real profiler would attribute past the end of the run; their
// weight is booked as lost so conservation stays checkable.
func (s *Sampled) Finish(totalCycles uint64) {
	s.Profile.TotalCycles = float64(totalCycles)
	for _, q := range [][]pendingSample{s.pendNCI, s.pendNCISplit, s.pendDrain, s.pendFID} {
		for _, p := range q {
			s.LostWeight += p.weight
		}
	}
	s.pendNCI = nil
	s.pendNCISplit = nil
	s.pendDrain = nil
	s.pendFID = nil
}

// scanStart returns the bank count and the oldest bank's index reduced into
// [0, n), for age-order scans that wrap-increment instead of taking a modulo
// per step. n == 0 when the record carries no banks (callers' loops then do
// not run, matching the old modulo scan).
func scanStart(r *trace.Record) (n, b int) {
	n = r.NumBanks
	if n <= 0 {
		return 0, 0
	}
	b = int(r.HeadBank)
	if b >= n {
		b %= n
	}
	return n, b
}

// oldestCommitting returns the oldest committing bank entry.
func oldestCommitting(r *trace.Record) *trace.BankEntry {
	n, b := scanStart(r)
	for i := 0; i < n; i++ {
		e := &r.Banks[b]
		if e.Valid && e.Committing {
			return e
		}
		if b++; b == n {
			b = 0
		}
	}
	return nil
}

// firstCommitAtOrAfter returns the instruction index of the oldest
// committing entry with FID >= target.
func firstCommitAtOrAfter(r *trace.Record, target uint64) (int32, bool) {
	n, b := scanStart(r)
	for i := 0; i < n; i++ {
		e := &r.Banks[b]
		if e.Valid && e.Committing && e.FID >= target {
			return e.InstIndex, true
		}
		if b++; b == n {
			b = 0
		}
	}
	return -1, false
}
