package profiler

// Overhead models §3.2's storage and data-rate analysis. The numbers the
// paper reports for its 4-wide BOOM at 3.2 GHz and perf's default 4 kHz
// sampling — 57 B of state, 179 GB/s for Oracle, 352 KB/s for TIP, 224 KB/s
// for non-ILP-aware profilers, and 192 KB/s of TIP CSR payload — all fall
// out of these formulas.
type Overhead struct {
	// CommitWidth is the core's commit width b (ROB banks / address CSRs).
	CommitWidth int
	// ClockHz is the core frequency.
	ClockHz uint64
	// SampleHz is the sampling frequency.
	SampleHz uint64
}

// CSR and record field sizes in bytes. RISC-V CSRs are 64-bit (§3.2).
const (
	addrBytes = 8
	cycleCSR  = 8
	flagsCSR  = 8
	// perfMetadataBytes is what perf reads from kernel structures per
	// sample: core, process and thread identifiers and friends.
	perfMetadataBytes = 40
	// oirFlagBits is the OIR flag field width.
	oirFlagBits = 3
)

// OracleBytesPerCycle is the per-cycle record Oracle needs: b instruction
// addresses plus the cycle counter, the flag set, and bank metadata.
func (o Overhead) OracleBytesPerCycle() uint64 {
	return uint64(o.CommitWidth)*addrBytes + cycleCSR + flagsCSR + 8
}

// OracleBytesPerSecond is Oracle's data rate (≈179 GB/s in the paper's
// setup): it records every cycle.
func (o Overhead) OracleBytesPerSecond() uint64 {
	return o.OracleBytesPerCycle() * o.ClockHz
}

// TIPCSRBytes is the CSR payload TIP exposes per sample: b addresses, the
// cycle counter and the merged flags CSR (48 B for b=4; 192 KB/s at 4 kHz —
// the number quoted in the paper's introduction).
func (o Overhead) TIPCSRBytes() uint64 {
	return uint64(o.CommitWidth)*addrBytes + cycleCSR + flagsCSR
}

// TIPSampleBytes is the full per-sample record perf writes for TIP,
// including kernel metadata (88 B for b=4).
func (o Overhead) TIPSampleBytes() uint64 {
	return perfMetadataBytes + o.TIPCSRBytes()
}

// NonILPSampleBytes is the per-sample record of a single-address profiler
// such as NCI/PEBS: metadata plus one address and the cycle counter (56 B).
func (o Overhead) NonILPSampleBytes() uint64 {
	return perfMetadataBytes + addrBytes + cycleCSR
}

// TIPBytesPerSecond is TIP's profiling data rate (352 KB/s at 4 kHz).
func (o Overhead) TIPBytesPerSecond() uint64 {
	return o.TIPSampleBytes() * o.SampleHz
}

// TIPCSRBytesPerSecond is the CSR-only data rate (192 KB/s at 4 kHz).
func (o Overhead) TIPCSRBytesPerSecond() uint64 {
	return o.TIPCSRBytes() * o.SampleHz
}

// NonILPBytesPerSecond is the single-address profilers' rate (224 KB/s).
func (o Overhead) NonILPBytesPerSecond() uint64 {
	return o.NonILPSampleBytes() * o.SampleHz
}

// StorageBytes is TIP's hardware state: the OIR (64-bit address plus a
// 3-bit flag, byte-rounded) and b+2 64-bit CSRs (b addresses, cycle,
// flags) — 57 B for the 4-wide BOOM.
func (o Overhead) StorageBytes() uint64 {
	oirBytes := uint64(addrBytes + (oirFlagBits+7)/8)
	return oirBytes + uint64(o.CommitWidth+2)*8
}

// ReductionVsOracle is how many times less data TIP generates than Oracle.
func (o Overhead) ReductionVsOracle() float64 {
	return float64(o.OracleBytesPerSecond()) / float64(o.TIPBytesPerSecond())
}
