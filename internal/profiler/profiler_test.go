package profiler

import (
	"math"
	"testing"

	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/trace"
)

// fig4Program lays out the instructions used by the Figure 4 scenarios:
// index 0,1 dummies, then I1, load, I3, I4, branch, I5, I6, I2.
func fig4Program(t testing.TB) *program.Program {
	t.Helper()
	b := program.NewBuilder("fig4")
	f := b.Func("main")
	blk := f.NewBlock()
	blk.Op(isa.KindIntALU, isa.IntReg(1))                                          // 0: dummy
	blk.Op(isa.KindIntALU, isa.IntReg(2))                                          // 1: dummy2
	blk.Op(isa.KindIntALU, isa.IntReg(3))                                          // 2: I1
	blk.Load(isa.IntReg(4), isa.IntReg(5), program.MemBehavior{Base: 0, Size: 64}) // 3: load
	blk.Op(isa.KindIntALU, isa.IntReg(6))                                          // 4: I3
	blk.Op(isa.KindIntALU, isa.IntReg(7))                                          // 5: I4
	blk.Op(isa.KindIntALU, isa.IntReg(8))                                          // 6: I5
	blk.Op(isa.KindIntALU, isa.IntReg(9))                                          // 7: I6
	blk.Op(isa.KindIntALU, isa.IntReg(10))                                         // 8: I2
	blk.Branch(1, program.BranchBehavior{Mode: program.BrRandom, P: 0.5})          // 9: branch
	b2 := f.NewBlock()
	b2.Ret() // 10
	return b.MustBuild(0)
}

const (
	idxDummy  = 0
	idxDummy2 = 1
	idxI1     = 2
	idxLoad   = 3
	idxI3     = 4
	idxI4     = 5
	idxI5     = 6
	idxI6     = 7
	idxI2     = 8
	idxBranch = 9
)

// seq builds a record sequence for a 2-wide commit machine.
type seq struct {
	prog *program.Program
	recs []trace.Record
	fid  uint64
}

func newSeq(p *program.Program) *seq { return &seq{prog: p, fid: 1} }

type ent struct {
	idx          int
	committing   bool
	mispredicted bool
	flush        bool
	exception    bool
	fid          uint64 // 0 = auto-assign on commit order
}

// cycle appends a record whose ROB holds entries (oldest first, at most 2).
func (s *seq) cycle(entries ...ent) *trace.Record {
	var r trace.Record
	r.Cycle = uint64(len(s.recs))
	r.NumBanks = 2
	r.HeadBank = 0
	if len(entries) == 0 {
		r.ROBEmpty = true
	}
	commits := 0
	for i, e := range entries {
		if i >= 2 {
			panic("seq: at most 2 entries")
		}
		fid := e.fid
		if fid == 0 {
			fid = s.fid
			s.fid++
		}
		in := s.prog.InstByIndex(e.idx)
		r.Banks[i] = trace.BankEntry{
			Valid: true, Committing: e.committing,
			Mispredicted: e.mispredicted, Flush: e.flush, Exception: e.exception,
			PC: in.PC, FID: fid, InstIndex: int32(e.idx),
		}
		if e.committing {
			commits++
		}
	}
	r.CommitCount = uint8(commits)
	s.recs = append(s.recs, r)
	return &s.recs[len(s.recs)-1]
}

// run feeds the sequence to consumers and finishes them.
func (s *seq) run(consumers ...trace.Consumer) {
	for i := range s.recs {
		for _, c := range consumers {
			c.OnCycle(&s.recs[i])
		}
	}
	for _, c := range consumers {
		c.Finish(uint64(len(s.recs)))
	}
}

// everyCycle samples every cycle (weight 1 after the first).
type everyCycle struct{}

func (everyCycle) Next(c uint64) uint64 { return c + 1 }
func (everyCycle) Period() uint64       { return 1 }

func buildAll(p *program.Program) (or *Oracle, byKind map[Kind]*Sampled, consumers []trace.Consumer) {
	or = NewOracle(p, true)
	byKind = map[Kind]*Sampled{}
	consumers = []trace.Consumer{or}
	for _, k := range AllKinds() {
		sp := NewSampled(k, p, everyCycle{})
		byKind[k] = sp
		consumers = append(consumers, sp)
	}
	return
}

func checkCycles(t *testing.T, name string, prof *profile.Profile, want map[int]float64) {
	t.Helper()
	for idx, w := range want {
		if got := prof.InstCycles[idx]; math.Abs(got-w) > 1e-9 {
			t.Errorf("%s: inst %d = %v cycles, want %v", name, idx, got, w)
		}
	}
}

// BenchmarkSampledObserve measures the per-cycle cost of the TIP sampled
// profiler over a stall-heavy stream: bursts of commits separated by long
// stalls on the load, the shape that dominates replay time. Exercises the
// commit-gated fast path and the pendFID resolve bound.
func BenchmarkSampledObserve(b *testing.B) {
	p := fig4Program(b)
	s := newSeq(p)
	for burst := 0; burst < 64; burst++ {
		s.cycle(ent{idx: idxI1, committing: true}, ent{idx: idxLoad})
		for stall := 0; stall < 20; stall++ {
			s.cycle(ent{idx: idxLoad}, ent{idx: idxI3})
		}
		s.cycle(ent{idx: idxLoad, committing: true}, ent{idx: idxI3, committing: true})
		s.cycle(ent{idx: idxI4, committing: true}, ent{idx: idxI5, committing: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := NewSampled(KindTIP, p, everyCycle{})
		for r := range s.recs {
			sp.OnCycle(&s.recs[r])
		}
		sp.Finish(uint64(len(s.recs)))
	}
}

// TestFig4bStalled reproduces Figure 4b: a 40-cycle load stall.
func TestFig4bStalled(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})  // c0
	s.cycle(ent{idx: idxDummy2, committing: true}) // c1
	loadFID := uint64(100)
	i3FID := uint64(101)
	s.cycle(ent{idx: idxI1, committing: true}, ent{idx: idxLoad, fid: loadFID}) // c2
	for i := 0; i < 40; i++ {                                                   // c3..c42: stalled on the load
		s.cycle(ent{idx: idxLoad, fid: loadFID}, ent{idx: idxI3, fid: i3FID})
	}
	s.cycle(ent{idx: idxLoad, committing: true, fid: loadFID}, ent{idx: idxI3, committing: true, fid: i3FID}) // c43

	or, by, consumers := buildAll(p)
	s.run(consumers...)

	checkCycles(t, "Oracle", or.Profile, map[int]float64{idxI1: 1, idxLoad: 40.5, idxI3: 0.5})
	checkCycles(t, "TIP", by[KindTIP].Profile, map[int]float64{idxI1: 1, idxLoad: 40.5, idxI3: 0.5})
	checkCycles(t, "TIP-ILP", by[KindTIPILP].Profile, map[int]float64{idxI1: 1, idxLoad: 41, idxI3: 0})
	checkCycles(t, "NCI", by[KindNCI].Profile, map[int]float64{idxI1: 1, idxLoad: 41, idxI3: 0})
	checkCycles(t, "LCI", by[KindLCI].Profile, map[int]float64{idxI1: 41, idxLoad: 1, idxI3: 0})
	// Stall cycles classified as load stalls in the cycle stack.
	if or.Stack.Cycles[profile.CatLoadStall] != 40 {
		t.Errorf("Oracle load-stall cycles = %v, want 40", or.Stack.Cycles[profile.CatLoadStall])
	}
}

// TestFig4cFlushed reproduces Figure 4c: a mispredicted branch empties the
// ROB for 4 cycles.
func TestFig4cFlushed(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})
	s.cycle(ent{idx: idxDummy2, committing: true})
	s.cycle(ent{idx: idxI1, committing: true}, ent{idx: idxBranch, committing: true, mispredicted: true}) // c2
	for i := 0; i < 4; i++ {                                                                              // c3..c6: flushed
		s.cycle()
	}
	i5FID := uint64(200)
	s.cycle(ent{idx: idxI5, fid: i5FID})                                                      // c7: stalled on I5
	s.cycle(ent{idx: idxI5, committing: true, fid: i5FID}, ent{idx: idxI6, committing: true}) // c8

	or, by, consumers := buildAll(p)
	s.run(consumers...)

	checkCycles(t, "Oracle", or.Profile, map[int]float64{idxI1: 0.5, idxBranch: 4.5, idxI5: 1.5, idxI6: 0.5})
	checkCycles(t, "TIP", by[KindTIP].Profile, map[int]float64{idxI1: 0.5, idxBranch: 4.5, idxI5: 1.5, idxI6: 0.5})
	// NCI blames I5 for the flush and gives the branch nothing.
	checkCycles(t, "NCI", by[KindNCI].Profile, map[int]float64{idxI1: 1, idxBranch: 0, idxI5: 6, idxI6: 0})
	// LCI gets the flush right.
	checkCycles(t, "LCI", by[KindLCI].Profile, map[int]float64{idxI1: 1, idxBranch: 5, idxI5: 1, idxI6: 0})
	if or.Stack.Cycles[profile.CatMispredict] != 4 {
		t.Errorf("mispredict flush cycles = %v, want 4", or.Stack.Cycles[profile.CatMispredict])
	}
}

// TestFig4dDrained reproduces Figure 4d: an I-cache miss drains the ROB.
func TestFig4dDrained(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})
	s.cycle(ent{idx: idxDummy2, committing: true})
	s.cycle(ent{idx: idxI1, committing: true}, ent{idx: idxI2, committing: true}) // c2
	for i := 0; i < 40; i++ {                                                     // c3..c42: drained (no flush flags)
		s.cycle()
	}
	i3FID := uint64(300)
	s.cycle(ent{idx: idxI3, fid: i3FID})                                                      // c43: stalled on I3
	s.cycle(ent{idx: idxI3, committing: true, fid: i3FID}, ent{idx: idxI4, committing: true}) // c44

	or, by, consumers := buildAll(p)
	s.run(consumers...)

	checkCycles(t, "Oracle", or.Profile, map[int]float64{idxI1: 0.5, idxI2: 0.5, idxI3: 41.5, idxI4: 0.5})
	checkCycles(t, "TIP", by[KindTIP].Profile, map[int]float64{idxI1: 0.5, idxI2: 0.5, idxI3: 41.5, idxI4: 0.5})
	// NCI is mostly correct here.
	checkCycles(t, "NCI", by[KindNCI].Profile, map[int]float64{idxI1: 1, idxI3: 42, idxI4: 0})
	// LCI blames I2, the last-committed instruction before the drain.
	checkCycles(t, "LCI", by[KindLCI].Profile, map[int]float64{idxI1: 1, idxI2: 41, idxI3: 1, idxI4: 0})
	if or.Stack.Cycles[profile.CatFrontend] != 40 {
		t.Errorf("front-end cycles = %v, want 40", or.Stack.Cycles[profile.CatFrontend])
	}
}

// TestCSRFlushAttribution: a CSR with the flush flag commits alone and the
// empty cycles after it belong to the CSR (TIP/Oracle) versus the next
// committing instruction (NCI) — the Imagick case-study mechanism (§6).
func TestCSRFlushAttribution(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})
	s.cycle(ent{idx: idxDummy2, committing: true, flush: true}) // CSR-like flush commit
	for i := 0; i < 6; i++ {
		s.cycle() // flushed
	}
	s.cycle(ent{idx: idxI1, committing: true})

	or, by, consumers := buildAll(p)
	s.run(consumers...)

	checkCycles(t, "Oracle", or.Profile, map[int]float64{idxDummy2: 7, idxI1: 1})
	// The first sample (cycle 1) carries weight 2 (it also represents
	// cycle 0), so the sampled profilers see 8 cycles on the CSR window.
	checkCycles(t, "TIP", by[KindTIP].Profile, map[int]float64{idxDummy2: 8, idxI1: 1})
	checkCycles(t, "NCI", by[KindNCI].Profile, map[int]float64{idxDummy2: 2, idxI1: 7})
	if or.Stack.Cycles[profile.CatMiscFlush] != 6 {
		t.Errorf("misc flush cycles = %v, want 6", or.Stack.Cycles[profile.CatMiscFlush])
	}
}

// TestExceptionAttribution: empty-ROB cycles after an exception go to the
// excepting instruction (paper §2.2, page-miss walkthrough).
func TestExceptionAttribution(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})
	loadFID := uint64(50)
	// Load stalled at head with its exception pending.
	s.cycle(ent{idx: idxLoad, exception: true, fid: loadFID})
	r := s.cycle(ent{idx: idxLoad, exception: true, fid: loadFID})
	r.ExceptionRaised = true
	r.ExceptionPC = p.InstByIndex(idxLoad).PC
	r.ExceptionFID = loadFID
	r.ExceptionInstIndex = idxLoad
	for i := 0; i < 5; i++ {
		s.cycle() // flushed due to exception
	}
	s.cycle(ent{idx: idxI1, committing: true}) // handler/replay resumes

	or, by, consumers := buildAll(p)
	s.run(consumers...)

	// Load: 2 stall cycles + 5 exception-flush cycles (TIP's first
	// sample carries the cycle-0 weight too).
	checkCycles(t, "Oracle", or.Profile, map[int]float64{idxLoad: 7, idxI1: 1})
	checkCycles(t, "TIP", by[KindTIP].Profile, map[int]float64{idxLoad: 8, idxI1: 1})
	if or.Stack.Cycles[profile.CatMiscFlush] != 5 {
		t.Errorf("exception flush cycles = %v, want 5", or.Stack.Cycles[profile.CatMiscFlush])
	}
}

// TestComputingILPSplit: TIP splits co-committed cycles, TIP-ILP/NCI do not.
func TestComputingILPSplit(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})
	for i := 0; i < 10; i++ {
		s.cycle(ent{idx: idxI1, committing: true}, ent{idx: idxI2, committing: true})
	}

	or, by, consumers := buildAll(p)
	s.run(consumers...)

	checkCycles(t, "Oracle", or.Profile, map[int]float64{idxI1: 5, idxI2: 5})
	checkCycles(t, "TIP", by[KindTIP].Profile, map[int]float64{idxI1: 5.5, idxI2: 5.5})
	checkCycles(t, "TIP-ILP", by[KindTIPILP].Profile, map[int]float64{idxI1: 11, idxI2: 0})
	checkCycles(t, "NCI", by[KindNCI].Profile, map[int]float64{idxI1: 11, idxI2: 0})
	checkCycles(t, "NCI+ILP", by[KindNCIILP].Profile, map[int]float64{idxI1: 5.5, idxI2: 5.5})
}

// TestSoftwareSkid: the software profiler attributes samples far past the
// stalled instruction — to where execution resumes after the drain.
func TestSoftwareSkid(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})
	loadFID, i3FID := uint64(10), uint64(11)
	// Load stalls for 5 cycles with I3 in flight; youngest in-flight is
	// a fetched-but-not-dispatched I5 (FID 12).
	for i := 0; i < 5; i++ {
		r := s.cycle(ent{idx: idxLoad, fid: loadFID}, ent{idx: idxI3, fid: i3FID})
		r.AnyInFlight = true
		r.YoungestFID = 12
	}
	s.cycle(ent{idx: idxLoad, committing: true, fid: loadFID}, ent{idx: idxI3, committing: true, fid: i3FID})
	// I5 (FID 12) and I6 (FID 13) commit: software samples resolve at
	// FID >= 13, i.e. on I6 — not the load that caused the stall.
	s.cycle(ent{idx: idxI5, fid: 12, committing: true}, ent{idx: idxI6, fid: 13, committing: true})

	sw := NewSampled(KindSoftware, p, everyCycle{})
	s.run(sw)

	if got := sw.Profile.InstCycles[idxLoad]; got != 0 {
		t.Errorf("software attributed %v cycles to the stalled load", got)
	}
	if got := sw.Profile.InstCycles[idxI6]; got < 5 {
		t.Errorf("software skid target I6 got %v cycles, want >= 5", got)
	}
}

// TestDispatchTagging: dispatch samples tag the instruction at dispatch and
// resolve when it commits.
func TestDispatchTagging(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})
	loadFID := uint64(20)
	// Load stalls; I5 (FID 25) is stuck at the dispatch stage (Fig. 2b).
	for i := 0; i < 6; i++ {
		r := s.cycle(ent{idx: idxLoad, fid: loadFID})
		r.DispatchValid = true
		r.DispatchPC = p.InstByIndex(idxI5).PC
		r.DispatchFID = 25
		r.DispatchInstIndex = idxI5
		r.AnyInFlight = true
		r.YoungestFID = 25
	}
	s.cycle(ent{idx: idxLoad, committing: true, fid: loadFID})
	s.cycle(ent{idx: idxI5, fid: 25, committing: true})

	dp := NewSampled(KindDispatch, p, everyCycle{})
	s.run(dp)

	if got := dp.Profile.InstCycles[idxI5]; got < 6 {
		t.Errorf("dispatch attributed %v cycles to I5, want >= 6 (bias)", got)
	}
	if got := dp.Profile.InstCycles[idxLoad]; got > 1.5 {
		t.Errorf("dispatch attributed %v cycles to the load, want ~1", got)
	}
}

// TestOracleAccountsEveryCycle: total attribution equals the cycle count.
func TestOracleAccountsEveryCycle(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})
	s.cycle(ent{idx: idxI1, committing: true}, ent{idx: idxBranch, committing: true, mispredicted: true})
	s.cycle()
	s.cycle()
	s.cycle(ent{idx: idxI5, committing: true})
	or := NewOracle(p, false)
	s.run(or)
	if got := or.Profile.Attributed(); got != 5 {
		t.Fatalf("Oracle attributed %v cycles for a 5-cycle run", got)
	}
	if or.Profile.TotalCycles != 5 {
		t.Fatalf("TotalCycles = %v", or.Profile.TotalCycles)
	}
}

// TestOracleDrainAtEnd: pending drain cycles are conserved at Finish.
func TestOracleDrainAtEnd(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	s.cycle(ent{idx: idxDummy, committing: true})
	s.cycle()
	s.cycle()
	or := NewOracle(p, false)
	s.run(or)
	if got := or.Profile.Attributed(); got != 3 {
		t.Fatalf("attributed %v, want 3 (drain charged at Finish)", got)
	}
}

// TestTIPEqualsOracleOnSampledCycles: sampling every cycle, TIP's profile
// matches Oracle's exactly (the statistical error vanishes).
func TestTIPEqualsOracleOnSampledCycles(t *testing.T) {
	p := fig4Program(t)
	s := newSeq(p)
	// Two dummy cycles so the weight-2 first sample lands on the dummy
	// exactly like Oracle's two dummy cycles.
	s.cycle(ent{idx: idxDummy, committing: true})
	s.cycle(ent{idx: idxDummy, committing: true})
	s.cycle(ent{idx: idxI1, committing: true}, ent{idx: idxI2, committing: true})
	loadFID := uint64(31)
	for i := 0; i < 7; i++ {
		s.cycle(ent{idx: idxLoad, fid: loadFID})
	}
	s.cycle(ent{idx: idxLoad, committing: true, fid: loadFID})
	s.cycle(ent{idx: idxBranch, committing: true, mispredicted: true})
	s.cycle()
	s.cycle()
	s.cycle(ent{idx: idxI5, committing: true}, ent{idx: idxI6, committing: true})

	or, by, consumers := buildAll(p)
	s.run(consumers...)
	tip := by[KindTIP]
	for i := 0; i < p.NumInsts(); i++ {
		want := or.Profile.InstCycles[i]
		if got := tip.Profile.InstCycles[i]; math.Abs(got-want) > 1e-9 {
			t.Errorf("TIP inst %d = %v, Oracle %v", i, got, want)
		}
	}
	if err := tip.Profile.Error(or.Profile, profile.GranInstruction, false); err > 1e-9 {
		t.Errorf("TIP error sampling every cycle = %v, want 0", err)
	}
}

func TestOverheadMatchesPaper(t *testing.T) {
	o := Overhead{CommitWidth: 4, ClockHz: 3_200_000_000, SampleHz: 4000}
	if got := o.StorageBytes(); got != 57 {
		t.Errorf("storage = %d B, want 57", got)
	}
	if got := o.TIPSampleBytes(); got != 88 {
		t.Errorf("TIP sample = %d B, want 88", got)
	}
	if got := o.NonILPSampleBytes(); got != 56 {
		t.Errorf("non-ILP sample = %d B, want 56", got)
	}
	if got := o.TIPBytesPerSecond(); got != 352_000 {
		t.Errorf("TIP rate = %d B/s, want 352 KB/s", got)
	}
	if got := o.TIPCSRBytesPerSecond(); got != 192_000 {
		t.Errorf("TIP CSR rate = %d B/s, want 192 KB/s", got)
	}
	if got := o.NonILPBytesPerSecond(); got != 224_000 {
		t.Errorf("non-ILP rate = %d B/s, want 224 KB/s", got)
	}
	// Oracle's rate is ~179 GB/s.
	gb := float64(o.OracleBytesPerSecond()) / 1e9
	if gb < 170 || gb > 190 {
		t.Errorf("Oracle rate = %.1f GB/s, want ~179", gb)
	}
	if r := o.ReductionVsOracle(); r < 100_000 {
		t.Errorf("reduction vs Oracle = %.0fx, want several orders of magnitude", r)
	}
}

func TestKindNames(t *testing.T) {
	want := []string{"Software", "Dispatch", "LCI", "NCI", "NCI+ILP", "TIP-ILP", "TIP"}
	for i, k := range AllKinds() {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", i, k.String(), want[i])
		}
	}
}
