// Package profiler implements the paper's profilers: the Oracle golden
// reference (§2.2), the practical Time-Proportional Instruction Profiler
// hardware model (§3), and every baseline heuristic evaluated in §5 —
// Software, Dispatch, LCI, NCI, commit-parallelism-aware NCI (NCI+ILP) and
// ILP-oblivious TIP (TIP-ILP).
//
// All profilers are trace.Consumers over the same per-cycle commit-stage
// stream, so they observe the exact same execution and — for the sampled
// profilers — sample the exact same cycles.
package profiler

import "github.com/tipprof/tip/internal/trace"

// oir models TIP's Offending Instruction Register (§3.1, Fig. 5): every
// cycle it latches the address and flags of the youngest committing ROB
// entry, or of the excepting instruction when the core raises an exception.
// When the ROB is empty, its flags distinguish a flush (attribute the empty
// cycles to the offending instruction) from a front-end drain.
type oir struct {
	valid        bool
	pc           uint64
	fid          uint64
	instIndex    int32
	mispredicted bool
	flush        bool
	exception    bool
}

// observe latches this cycle's OIR update. Call after the cycle's
// attribution decisions: the register reflects state from *previous* cycles
// when the current cycle's ROB is empty (no commits can have happened in an
// empty-ROB cycle, so the order only matters for committing cycles).
func (o *oir) observe(r *trace.Record) {
	// CommitCount is authoritative for whether any bank commits (the same
	// contract replay's cycle accounting relies on), so the bank scan only
	// runs on committing cycles.
	if r.CommitCount > 0 {
		if y := r.YoungestCommitting(); y != nil {
			o.latchCommit(y)
		}
	}
	if r.ExceptionRaised {
		o.latchException(r)
	}
}

// latchCommit latches the youngest committing entry (already scanned by the
// caller, so shared-fact dispatch scans the banks once per cycle).
func (o *oir) latchCommit(y *trace.BankEntry) {
	o.valid = true
	o.pc = y.PC
	o.fid = y.FID
	o.instIndex = y.InstIndex
	o.mispredicted = y.Mispredicted
	o.flush = y.Flush
	o.exception = false
}

// latchException latches the excepting instruction.
func (o *oir) latchException(r *trace.Record) {
	o.valid = true
	o.pc = r.ExceptionPC
	o.fid = r.ExceptionFID
	o.instIndex = r.ExceptionInstIndex
	o.mispredicted = false
	o.flush = false
	o.exception = true
}

// flushed reports whether an empty ROB should be classified as Flushed
// (versus Drained): one of the exception/flush/mispredicted flags is set.
func (o *oir) flushed() bool {
	return o.valid && (o.mispredicted || o.flush || o.exception)
}
