package profiler

import (
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/trace"
)

// Oracle is the golden-reference profiler (§2.2): it attributes every clock
// cycle to the instruction(s) whose latency the processor exposes in that
// cycle, following the four commit-stage states of Fig. 3:
//
//	Computing: 1/n cycles to each of the n committing instructions.
//	Stalled:   the cycle goes to the instruction blocking the ROB head.
//	Flushed:   the cycle goes to the instruction that emptied the ROB
//	           (mispredicted branch, flushing CSR, or excepting
//	           instruction), identified via OIR flags.
//	Drained:   the cycle goes to the first instruction that enters the
//	           ROB after the front-end stall.
//
// Because it accounts every cycle and every dynamic instruction, it cannot
// be implemented in real hardware (it would generate ~179 GB/s, §3.2) — it
// exists to quantify the other profilers' systematic error, and to build
// the commit cycle stacks of Fig. 7.
type Oracle struct {
	prog *program.Program

	// Profile is the exact attributed-cycle profile.
	Profile *profile.Profile
	// Stack is the cycle-type breakdown (Fig. 7).
	Stack profile.CycleStack
	// Breakdown, when enabled, holds per-instruction per-category cycles
	// (used for the Fig. 12/13 per-function time breakdowns).
	Breakdown [][]float64

	o            oir
	drainPending float64
	finished     bool
}

// NewOracle returns an Oracle profiler for prog. withBreakdown enables the
// per-instruction category matrix.
func NewOracle(prog *program.Program, withBreakdown bool) *Oracle {
	or := &Oracle{prog: prog, Profile: profile.New(prog)}
	if withBreakdown {
		or.Breakdown = make([][]float64, prog.NumInsts())
		for i := range or.Breakdown {
			or.Breakdown[i] = make([]float64, profile.NumCategories)
		}
	}
	return or
}

func (or *Oracle) attr(idx int32, w float64, cat profile.Category) {
	or.Profile.Add(idx, w)
	or.Stack.Add(cat, w)
	if or.Breakdown != nil && idx >= 0 && int(idx) < len(or.Breakdown) {
		or.Breakdown[idx][cat] += w
	}
}

// OnCycle implements trace.Consumer.
func (or *Oracle) OnCycle(r *trace.Record) {
	if !r.ROBEmpty {
		oldest := r.Oldest()
		if or.drainPending > 0 && oldest != nil {
			// Drained cycles go to the first instruction that
			// entered the ROB after the stall.
			or.attr(oldest.InstIndex, or.drainPending, profile.CatFrontend)
			or.drainPending = 0
		}
		if r.CommitCount > 0 {
			w := 1.0 / float64(r.CommitCount)
			n, b := scanStart(r)
			for i := 0; i < n; i++ {
				e := &r.Banks[b]
				if e.Valid && e.Committing {
					or.attr(e.InstIndex, w, profile.CatExecution)
				}
				if b++; b == n {
					b = 0
				}
			}
		} else if oldest != nil {
			kind := or.prog.InstByIndex(int(oldest.InstIndex)).Kind
			or.attr(oldest.InstIndex, 1, profile.StallCategoryOf(kind))
		}
	} else {
		if or.o.flushed() {
			cat := profile.CatMiscFlush
			if or.o.mispredicted {
				cat = profile.CatMispredict
			}
			or.attr(or.o.instIndex, 1, cat)
		} else {
			or.drainPending++
		}
	}
	or.o.observe(r)
}

// Finish implements trace.Consumer.
func (or *Oracle) Finish(totalCycles uint64) {
	if or.drainPending > 0 {
		// The run ended while draining (no further dispatch): charge
		// the cycles to the last known instruction so every cycle
		// stays accounted for.
		or.attr(or.o.instIndex, or.drainPending, profile.CatFrontend)
		or.drainPending = 0
	}
	or.Profile.TotalCycles = float64(totalCycles)
	or.Stack.Total = float64(totalCycles)
	or.finished = true
}

// FunctionStack aggregates the per-category breakdown over one function
// (requires withBreakdown). Used for Fig. 13.
func (or *Oracle) FunctionStack(fnName string) profile.CycleStack {
	var out profile.CycleStack
	if or.Breakdown == nil {
		return out
	}
	for _, f := range or.prog.Funcs {
		if f.Name != fnName {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				for c, v := range or.Breakdown[in.Index] {
					out.Cycles[c] += v
				}
			}
		}
	}
	for _, v := range out.Cycles {
		out.Total += v
	}
	return out
}
