package profiler

import (
	"github.com/tipprof/tip/internal/trace"
)

// CycleFacts are the per-cycle stream facts every sampled profiler needs but
// none should derive on its own: the OIR state (§3.1) and the identity of
// the last committed instruction (LCI state). A standalone Sampled owns a
// private copy and advances it every delivered cycle; a Dispatcher advances
// one shared copy exactly once per cycle for its whole sample-aware tier, so
// the bank scan behind YoungestCommitting happens once instead of once per
// profiler.
type CycleFacts struct {
	o oir
	// lastCommitted is the youngest instruction of the most recent
	// committing cycle.
	lastCommitted    int32
	lastCommittedSet bool
}

// Observe advances the facts past r. Call it after the cycle's attribution
// decisions, like oir.observe: samplers must see the facts as of the
// previous cycle.
func (f *CycleFacts) Observe(r *trace.Record) {
	// Gated on CommitCount like oir.observe: most cycles commit nothing,
	// and the bank scan is this function's entire cost.
	if r.CommitCount > 0 {
		if y := r.YoungestCommitting(); y != nil {
			f.lastCommitted = y.InstIndex
			f.lastCommittedSet = true
			f.o.latchCommit(y)
		}
	}
	if r.ExceptionRaised {
		f.o.latchException(r)
	}
}

// Dispatcher fans one trace stream out in two tiers. Every-cycle consumers
// (Oracle, invariant checkers, trace writers) see every record. Sampled
// profilers sit in a min-heap keyed by the next cycle each one cares about —
// its next scheduled sample, or the very next cycle while it has samples
// awaiting resolution — and are only invoked on those cycles. On the
// overwhelming majority of cycles the sample-aware tier costs one heap-top
// comparison, instead of ~N virtual calls that each re-derive the same
// per-cycle state and decline to sample.
//
// All attached Sampled profilers share the dispatcher's CycleFacts, updated
// once per cycle after delivery. Results are bit-identical to delivering
// every cycle to every consumer: skipped cycles are exactly the cycles on
// which Sampled.OnCycle would have taken no action, and the shared facts
// take the same values a private copy would.
type Dispatcher struct {
	every   []trace.Consumer
	sampled []*Sampled
	heap    []heapEntry
	// active holds profilers with samples awaiting resolution: they need
	// every cycle until the pending queue drains, so keeping them in a
	// plain filtered-in-place slice avoids re-sifting the heap top once
	// per consumer per cycle.
	active []*Sampled
	facts  CycleFacts
	// faultables are the attached consumers that can report a mid-stream
	// failure; Err polls them so a sharded replay can abort early.
	faultables []trace.Faultable
}

// heapEntry pairs a sampled profiler with the next cycle it must observe.
type heapEntry struct {
	next uint64
	s    *Sampled
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher { return &Dispatcher{} }

// AddEveryCycle attaches a consumer that must see every record.
func (d *Dispatcher) AddEveryCycle(c trace.Consumer) {
	d.every = append(d.every, c)
	if f, ok := c.(trace.Faultable); ok {
		d.faultables = append(d.faultables, f)
	}
}

// Err implements trace.Faultable: it reports the first mid-stream failure
// of any attached consumer that exposes one (a spilling capture, a trace
// writer, an invariant checker with violations on record). Sharded replay
// polls it between chunks to stop feeding a pipeline that already failed.
func (d *Dispatcher) Err() error {
	for _, f := range d.faultables {
		if err := f.Err(); err != nil {
			return err
		}
	}
	return nil
}

// AddSampled attaches a sampled profiler to the sample-aware tier, switching
// it onto the dispatcher's shared facts. Attach before streaming: a profiler
// that already consumed records owns facts the dispatcher would discard.
func (d *Dispatcher) AddSampled(s *Sampled) {
	s.facts = &d.facts
	s.ownFacts = false
	d.sampled = append(d.sampled, s)
	d.push(heapEntry{next: s.next, s: s})
}

// Sampled lists the attached sample-aware consumers.
func (d *Dispatcher) Sampled() []*Sampled { return d.sampled }

// OnCycle implements trace.Consumer.
func (d *Dispatcher) OnCycle(r *trace.Record) {
	for _, c := range d.every {
		c.OnCycle(r)
	}
	// Profilers with pending samples observe every cycle; once resolved
	// they rejoin the heap at their next scheduled sample.
	if len(d.active) > 0 {
		keep := d.active[:0]
		for _, s := range d.active {
			s.observe(r)
			switch {
			case s.hasPending():
				keep = append(keep, s)
			case s.next > r.Cycle:
				d.push(heapEntry{next: s.next, s: s})
			}
			// Otherwise the schedule saturated with nothing pending:
			// the profiler has no future interest and is dropped.
		}
		d.active = keep
	}
	for len(d.heap) > 0 && d.heap[0].next <= r.Cycle {
		s := d.heap[0].s
		s.observe(r)
		if s.hasPending() {
			d.popTop()
			d.active = append(d.active, s)
			continue
		}
		if s.next <= r.Cycle {
			// Schedule saturated with nothing pending: no future
			// interest.
			d.popTop()
			continue
		}
		d.heap[0].next = s.next
		d.siftDown(0)
	}
	d.facts.Observe(r)
}

// Finish implements trace.Consumer.
func (d *Dispatcher) Finish(totalCycles uint64) {
	for _, c := range d.every {
		c.Finish(totalCycles)
	}
	for _, s := range d.sampled {
		s.Finish(totalCycles)
	}
}

// --- minimal binary min-heap on (next, insertion-stable enough) ---

func (d *Dispatcher) push(e heapEntry) {
	d.heap = append(d.heap, e)
	i := len(d.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if d.heap[p].next <= d.heap[i].next {
			break
		}
		d.heap[p], d.heap[i] = d.heap[i], d.heap[p]
		i = p
	}
}

func (d *Dispatcher) popTop() {
	n := len(d.heap) - 1
	d.heap[0] = d.heap[n]
	d.heap = d.heap[:n]
	if n > 0 {
		d.siftDown(0)
	}
}

func (d *Dispatcher) siftDown(i int) {
	n := len(d.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && d.heap[l].next < d.heap[m].next {
			m = l
		}
		if r < n && d.heap[r].next < d.heap[m].next {
			m = r
		}
		if m == i {
			return
		}
		d.heap[i], d.heap[m] = d.heap[m], d.heap[i]
		i = m
	}
}
