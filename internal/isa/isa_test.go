package isa

import (
	"strings"
	"testing"
)

func allKinds() []Kind {
	kinds := make([]Kind, NumKinds)
	for i := range kinds {
		kinds[i] = Kind(i)
	}
	return kinds
}

func TestKindStringsUnique(t *testing.T) {
	seen := make(map[string]Kind)
	for _, k := range allKinds() {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %v and %v share name %q", prev, k, s)
		}
		seen[s] = k
	}
}

func TestInvalidKindString(t *testing.T) {
	k := Kind(200)
	if k.Valid() {
		t.Fatal("Kind(200) reported valid")
	}
	if got := k.String(); got != "kind(200)" {
		t.Fatalf("invalid kind string = %q", got)
	}
}

func TestIsMem(t *testing.T) {
	want := map[Kind]bool{KindLoad: true, KindStore: true, KindAtomic: true}
	for _, k := range allKinds() {
		if got := k.IsMem(); got != want[k] {
			t.Errorf("%v.IsMem() = %v, want %v", k, got, want[k])
		}
	}
}

func TestIsControlFlow(t *testing.T) {
	want := map[Kind]bool{KindBranch: true, KindJump: true, KindCall: true, KindRet: true}
	for _, k := range allKinds() {
		if got := k.IsControlFlow(); got != want[k] {
			t.Errorf("%v.IsControlFlow() = %v, want %v", k, got, want[k])
		}
	}
}

func TestIsSerializing(t *testing.T) {
	want := map[Kind]bool{KindFence: true, KindAtomic: true, KindCSR: true}
	for _, k := range allKinds() {
		if got := k.IsSerializing(); got != want[k] {
			t.Errorf("%v.IsSerializing() = %v, want %v", k, got, want[k])
		}
	}
}

func TestIssueClassCoversAllKinds(t *testing.T) {
	for _, k := range allKinds() {
		c := IssueClassOf(k)
		if int(c) >= NumIssueClasses {
			t.Fatalf("%v maps to invalid issue class %d", k, c)
		}
	}
}

func TestIssueClassAgreement(t *testing.T) {
	for _, k := range allKinds() {
		c := IssueClassOf(k)
		if k.IsFP() && c != IssueFP {
			t.Errorf("FP kind %v in queue %v", k, c)
		}
		if k.IsMem() && c != IssueMem {
			t.Errorf("mem kind %v in queue %v", k, c)
		}
		if !k.IsFP() && !k.IsMem() && c != IssueInt {
			t.Errorf("kind %v in queue %v, want int", k, c)
		}
	}
}

func TestIssueClassString(t *testing.T) {
	if IssueInt.String() != "int" || IssueMem.String() != "mem" || IssueFP.String() != "fp" {
		t.Fatal("issue class names wrong")
	}
	if got := IssueClass(9).String(); got != "issue(9)" {
		t.Fatalf("invalid issue class string = %q", got)
	}
}

func TestLatencyPositive(t *testing.T) {
	for _, k := range allKinds() {
		if Latency(k) < 1 {
			t.Errorf("%v latency %d < 1", k, Latency(k))
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	if !(Latency(KindIntALU) < Latency(KindIntMul)) {
		t.Error("ALU should be faster than multiply")
	}
	if !(Latency(KindIntMul) < Latency(KindIntDiv)) {
		t.Error("multiply should be faster than divide")
	}
	if !(Latency(KindFPMul) < Latency(KindFPDiv)) {
		t.Error("FP multiply should be faster than FP divide")
	}
}

func TestDividesUnpipelined(t *testing.T) {
	for _, k := range allKinds() {
		want := k != KindIntDiv && k != KindFPDiv
		if got := Pipelined(k); got != want {
			t.Errorf("Pipelined(%v) = %v, want %v", k, got, want)
		}
	}
}

func TestRegisters(t *testing.T) {
	if IntReg(0) != RegZero {
		t.Fatal("IntReg(0) is not the zero register")
	}
	if IntReg(5).IsFPReg() {
		t.Fatal("x5 reported as FP")
	}
	if !FPReg(5).IsFPReg() {
		t.Fatal("f5 not reported as FP")
	}
	if got := IntReg(5).String(); got != "x5" {
		t.Fatalf("IntReg(5) = %q", got)
	}
	if got := FPReg(7).String(); got != "f7" {
		t.Fatalf("FPReg(7) = %q", got)
	}
}

func TestRegWraparound(t *testing.T) {
	if IntReg(32) != IntReg(0) {
		t.Fatal("IntReg should wrap mod 32")
	}
	if FPReg(33) != FPReg(1) {
		t.Fatal("FPReg should wrap mod 32")
	}
}
