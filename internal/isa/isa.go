// Package isa defines the instruction vocabulary of the simulated machine.
//
// The simulator models a RISC-V-flavoured RV64-class core (the paper's BOOM
// runs RV64IMAFDCSUX). We do not encode or decode real machine code — the
// workloads are synthetic — but every instruction carries a Kind that mirrors
// a RISC-V instruction class, so the profiler post-processing step that the
// paper performs on the application binary ("determine the instruction type")
// has the same information available.
package isa

import "fmt"

// Kind classifies an instruction by its functional unit and commit behaviour.
type Kind uint8

const (
	// KindNop is an architectural no-op (single-cycle int ALU slot).
	KindNop Kind = iota
	// KindIntALU covers single-cycle integer arithmetic and logic.
	KindIntALU
	// KindIntMul is a pipelined integer multiply.
	KindIntMul
	// KindIntDiv is an unpipelined integer divide.
	KindIntDiv
	// KindFPALU covers pipelined FP add/sub/compare/convert.
	KindFPALU
	// KindFPMul is a pipelined FP multiply (and fused multiply-add).
	KindFPMul
	// KindFPDiv is an unpipelined FP divide/sqrt.
	KindFPDiv
	// KindLoad is a memory load through the D-TLB and D-cache.
	KindLoad
	// KindStore is a memory store; address/data generated at execute,
	// written to the memory system at commit.
	KindStore
	// KindBranch is a conditional branch resolved at execute.
	KindBranch
	// KindJump is an unconditional direct jump.
	KindJump
	// KindCall is a direct call (pushes the return-address stack).
	KindCall
	// KindRet is a return through the return-address stack.
	KindRet
	// KindCSR is a control/status register access. On the modelled BOOM
	// core, writes to unrenamed status registers (e.g. fsflags/frflags)
	// flush the pipeline when they commit (paper §6).
	KindCSR
	// KindFence is a serializing instruction: all older instructions must
	// commit before it dispatches and nothing younger dispatches until it
	// commits (paper §2.2, "Putting-it-all-together").
	KindFence
	// KindAtomic is an AMO; modelled as a serialized memory operation.
	KindAtomic

	numKinds
)

// NumKinds is the number of distinct instruction kinds.
const NumKinds = int(numKinds)

var kindNames = [NumKinds]string{
	"nop", "int.alu", "int.mul", "int.div",
	"fp.alu", "fp.mul", "fp.div",
	"load", "store",
	"branch", "jump", "call", "ret",
	"csr", "fence", "atomic",
}

// String returns the mnemonic class name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k names a defined instruction kind.
func (k Kind) Valid() bool { return int(k) < NumKinds }

// IsMem reports whether the instruction accesses data memory.
func (k Kind) IsMem() bool {
	return k == KindLoad || k == KindStore || k == KindAtomic
}

// IsControlFlow reports whether the instruction can redirect fetch.
func (k Kind) IsControlFlow() bool {
	switch k {
	case KindBranch, KindJump, KindCall, KindRet:
		return true
	}
	return false
}

// IsSerializing reports whether dispatch must drain the ROB first.
func (k Kind) IsSerializing() bool {
	return k == KindFence || k == KindAtomic || k == KindCSR
}

// IsFP reports whether the instruction executes on the FP pipeline.
func (k Kind) IsFP() bool {
	return k == KindFPALU || k == KindFPMul || k == KindFPDiv
}

// IssueClass selects which issue queue an instruction dispatches to.
type IssueClass uint8

const (
	// IssueInt is the integer queue (Table 1: 40-entry, 4-issue).
	IssueInt IssueClass = iota
	// IssueMem is the memory queue (Table 1: 24-entry, dual-issue).
	IssueMem
	// IssueFP is the floating-point queue (Table 1: 32-entry, dual-issue).
	IssueFP

	numIssueClasses
)

// NumIssueClasses is the number of issue queues.
const NumIssueClasses = int(numIssueClasses)

// String names the issue class.
func (c IssueClass) String() string {
	switch c {
	case IssueInt:
		return "int"
	case IssueMem:
		return "mem"
	case IssueFP:
		return "fp"
	}
	return fmt.Sprintf("issue(%d)", uint8(c))
}

// IssueClassOf returns the issue queue the kind dispatches to.
func IssueClassOf(k Kind) IssueClass {
	switch k {
	case KindLoad, KindStore, KindAtomic:
		return IssueMem
	case KindFPALU, KindFPMul, KindFPDiv:
		return IssueFP
	default:
		return IssueInt
	}
}

// Latency returns the execution latency in cycles of kind k, excluding any
// memory-system time (loads add cache latency on top of their pipe latency).
// The values model the BOOM configuration in Table 1.
func Latency(k Kind) int {
	switch k {
	case KindNop, KindIntALU, KindBranch, KindJump, KindCall, KindRet, KindCSR:
		return 1
	case KindIntMul:
		return 3
	case KindIntDiv:
		return 16
	case KindFPALU:
		return 4
	case KindFPMul:
		return 4
	case KindFPDiv:
		return 20
	case KindLoad, KindStore:
		return 1 // address generation; memory time added by the LSU
	case KindFence:
		return 1
	case KindAtomic:
		return 4
	}
	return 1
}

// Pipelined reports whether the functional unit for k accepts a new
// instruction every cycle. Divides occupy their unit for the full latency.
func Pipelined(k Kind) bool {
	return k != KindIntDiv && k != KindFPDiv
}

// InstBytes is the size of one instruction in the synthetic address layout.
// We lay instructions out uncompressed (4 bytes) so PC arithmetic matches a
// plain RV64 binary.
const InstBytes = 4

// Reg identifies an architectural register. The simulator uses an abstract
// unified namespace: integer registers [0,32) and FP registers [32,64).
// Reg 0 is the hardwired zero register (never a real dependence).
type Reg uint8

// NumRegs is the size of the architectural register namespace.
const NumRegs = 64

// RegZero is the hardwired zero register.
const RegZero Reg = 0

// IntReg returns the i'th integer register (i in [0,32)).
func IntReg(i int) Reg { return Reg(i & 31) }

// FPReg returns the i'th floating-point register (i in [0,32)).
func FPReg(i int) Reg { return Reg(32 + (i & 31)) }

// IsFPReg reports whether r names an FP register.
func (r Reg) IsFPReg() bool { return r >= 32 }

// String returns the RISC-V-style register name.
func (r Reg) String() string {
	if r.IsFPReg() {
		return fmt.Sprintf("f%d", int(r)-32)
	}
	return fmt.Sprintf("x%d", int(r))
}
