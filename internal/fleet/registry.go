package fleet

import (
	"sync"
	"time"
)

// NodeHealth is one worker's self-reported state, pushed to the coordinator
// in every heartbeat and mirrored from tipd's /healthz fields so the
// coordinator's routing decisions and a human's health probe read the same
// signal.
type NodeHealth struct {
	// Name identifies the node on the ring; URL is how the coordinator
	// reaches it.
	Name string `json:"name"`
	URL  string `json:"url"`
	// CoreHash fingerprints the node's simulated core configuration.
	// Captures are only interchangeable between nodes with equal hashes.
	CoreHash string `json:"core_hash,omitempty"`
	// Draining nodes are excluded from the ring (no new jobs) but keep
	// serving reads while their in-flight jobs finish.
	Draining     bool   `json:"draining"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap,omitempty"`
	Running      int    `json:"running"`
	Workers      int    `json:"workers"`
	CacheEntries int    `json:"cache_entries"`
	CacheBytes   uint64 `json:"cache_bytes"`
}

// nodeState is the registry's record of one worker.
type nodeState struct {
	health   NodeHealth
	lastSeen time.Time
	assigned uint64 // jobs routed here as home node
	stolen   uint64 // jobs routed here as a steal (home was saturated)
}

// registry tracks the live worker set from heartbeats and derives the hash
// ring from it. A node disappears from the ring when it reports draining or
// when its heartbeats stop for ttl; its record survives a while longer so
// in-flight job reads still resolve to a URL.
type registry struct {
	mu    sync.Mutex
	ttl   time.Duration
	nodes map[string]*nodeState
	ring  *Ring
	dirty bool
}

func newRegistry(ttl time.Duration) *registry {
	return &registry{ttl: ttl, nodes: map[string]*nodeState{}, ring: BuildRing(nil)}
}

// heartbeat records h (keyed by h.Name) and marks the ring dirty when
// membership or drain state changed.
func (r *registry) heartbeat(h NodeHealth, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ns := r.nodes[h.Name]
	if ns == nil {
		ns = &nodeState{}
		r.nodes[h.Name] = ns
		r.dirty = true
	}
	if ns.health.Draining != h.Draining || ns.health.URL != h.URL {
		r.dirty = true
	}
	ns.health = h
	ns.lastSeen = now
}

// ringLocked prunes expired nodes and rebuilds the ring if needed.
// Caller holds r.mu.
func (r *registry) ringLocked(now time.Time) *Ring {
	for name, ns := range r.nodes {
		if now.Sub(ns.lastSeen) > 4*r.ttl {
			// Long gone: drop the record entirely.
			delete(r.nodes, name)
			r.dirty = true
		}
	}
	if r.dirty {
		var live []string
		for name, ns := range r.nodes {
			if !ns.health.Draining && now.Sub(ns.lastSeen) <= r.ttl {
				live = append(live, name)
			}
		}
		r.ring = BuildRing(live)
		r.dirty = false
	}
	return r.ring
}

// owners returns up to n candidate nodes for key in preference order,
// resolved to their URLs. Nodes that expired between ring rebuilds are
// revalidated against ttl here.
func (r *registry) owners(key string, n int, now time.Time) []NodeHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	// An expiry can make the current ring stale without a heartbeat having
	// marked it dirty; detect that before routing.
	for _, ns := range r.nodes {
		if !ns.health.Draining && now.Sub(ns.lastSeen) > r.ttl {
			r.dirty = true
			break
		}
	}
	ring := r.ringLocked(now)
	var out []NodeHealth
	for _, name := range ring.Owners(key, n) {
		if ns := r.nodes[name]; ns != nil {
			out = append(out, ns.health)
		}
	}
	return out
}

// url resolves a node name to its URL ("" if unknown).
func (r *registry) url(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ns := r.nodes[name]; ns != nil {
		return ns.health.URL
	}
	return ""
}

// routed bumps the assignment counters for a routing decision.
func (r *registry) routed(name string, steal bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ns := r.nodes[name]; ns != nil {
		if steal {
			ns.stolen++
		} else {
			ns.assigned++
		}
	}
}

// NodeView is one row of the coordinator's /fleet/v1/nodes listing.
type NodeView struct {
	NodeHealth
	LastSeenMS int64  `json:"last_seen_ms"`
	OnRing     bool   `json:"on_ring"`
	Assigned   uint64 `json:"assigned"`
	Stolen     uint64 `json:"stolen"`
}

// views snapshots every known node, sorted by name by the caller.
func (r *registry) views(now time.Time) []NodeView {
	r.mu.Lock()
	defer r.mu.Unlock()
	ring := r.ringLocked(now)
	onRing := map[string]bool{}
	for _, name := range ring.Owners("", ring.Nodes()) {
		onRing[name] = true
	}
	out := make([]NodeView, 0, len(r.nodes))
	for name, ns := range r.nodes {
		out = append(out, NodeView{
			NodeHealth: ns.health,
			LastSeenMS: now.Sub(ns.lastSeen).Milliseconds(),
			OnRing:     onRing[name],
			Assigned:   ns.assigned,
			Stolen:     ns.stolen,
		})
	}
	return out
}
