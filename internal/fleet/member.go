package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Member is the worker side of fleet registration: a heartbeat loop that
// pushes the node's health snapshot to the coordinator so it stays on the
// ring. The snapshot callback reads live server state, so the same loop
// that registers the node also announces drain (the snapshot flips
// Draining) and the coordinator stops routing new jobs to it while reads
// keep proxying.
type Member struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Name and URL identify this node; URL is what the coordinator dials.
	Name string
	URL  string
	// Interval is the heartbeat period (default 1s).
	Interval time.Duration
	// Snapshot fills the health fields (Name/URL are overwritten here).
	Snapshot func() NodeHealth
	// Client overrides the HTTP client (default: 5s timeout).
	Client *http.Client
}

func (m *Member) client() *http.Client {
	if m.Client != nil {
		return m.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// Beat sends one heartbeat immediately. Used on startup (register before
// the first interval elapses) and on drain start (take the node off the
// ring promptly instead of waiting out the interval).
func (m *Member) Beat(ctx context.Context) error {
	h := m.Snapshot()
	h.Name = m.Name
	h.URL = m.URL
	body, err := json.Marshal(h)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		m.Coordinator+"/fleet/v1/register", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: heartbeat: coordinator returned %d", resp.StatusCode)
	}
	return nil
}

// Run heartbeats until ctx is cancelled. Transient failures are retried at
// the next tick — the registry's TTL is several intervals wide, so a node
// only falls off the ring after sustained unreachability.
func (m *Member) Run(ctx context.Context) {
	interval := m.Interval
	if interval <= 0 {
		interval = time.Second
	}
	m.Beat(ctx)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Beat(ctx)
		}
	}
}
