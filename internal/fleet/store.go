package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"

	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/trace"
)

// Store is the fleet's content-addressed shared capture store: a directory
// (typically on shared storage) holding one <id>.trc per capture — exactly
// the encoded stream trace.Capture.WriteTo emits, the same format tipd's
// spill directory uses — plus an <id>.json sidecar carrying the replay
// calibration stats and a SHA-256 of the payload.
//
// Captures are deterministic functions of their key (bench, seed, scale,
// core-config hash — the golden-capture tests pin byte-identity), so the key
// id doubles as the content address: two nodes racing to Put the same id
// write identical bytes, last rename wins, and nothing ever needs
// invalidating. Get verifies the payload hash so a torn or corrupted entry
// reads as a miss, never as wrong data.
type Store struct {
	dir   string
	warnf func(format string, args ...any)

	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
}

// storeMeta is the sidecar schema. CoreStats always carries one entry per
// core (length 1 for single-core captures), unlike tipd's spill sidecar
// which keeps a legacy scalar field; the store is new, so it doesn't carry
// that compatibility shim.
type storeMeta struct {
	ID      string      `json:"id"`
	Records uint64      `json:"records"`
	Cycles  uint64      `json:"cycles"`
	SHA256  string      `json:"sha256"`
	Stats   []cpu.Stats `json:"core_stats"`
}

// OpenStore opens (creating if needed) the store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: opening store: %w", err)
	}
	return &Store{dir: dir, warnf: log.Printf}, nil
}

// SetWarnf redirects corruption warnings (default log.Printf).
func (st *Store) SetWarnf(f func(string, ...any)) { st.warnf = f }

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Get fetches the capture stored under id. It returns ok=false on any
// miss — absent, unreadable, or failing integrity verification (the latter
// with a warning); a store read must never be worse than re-simulating.
func (st *Store) Get(id string) (*trace.Capture, []cpu.Stats, bool) {
	metaData, err := os.ReadFile(filepath.Join(st.dir, id+".json"))
	if err != nil {
		st.misses.Add(1)
		return nil, nil, false
	}
	var meta storeMeta
	if err := json.Unmarshal(metaData, &meta); err != nil || meta.ID != id || len(meta.Stats) == 0 {
		st.warnf("fleet: store entry %s: corrupted sidecar, skipping (%v)", id, err)
		st.misses.Add(1)
		return nil, nil, false
	}
	enc, err := os.ReadFile(filepath.Join(st.dir, id+".trc"))
	if err != nil {
		st.misses.Add(1)
		return nil, nil, false
	}
	sum := sha256.Sum256(enc)
	if got := hex.EncodeToString(sum[:]); got != meta.SHA256 {
		st.warnf("fleet: store entry %s: payload hash %s != sidecar %s, skipping", id, got, meta.SHA256)
		st.misses.Add(1)
		return nil, nil, false
	}
	capt, err := trace.NewCaptureFromEncoded(enc, meta.Records, meta.Cycles)
	if err != nil {
		st.warnf("fleet: store entry %s: undecodable payload, skipping (%v)", id, err)
		st.misses.Add(1)
		return nil, nil, false
	}
	st.hits.Add(1)
	return capt, meta.Stats, true
}

// Put stores capt under id. Writes are atomic (temp file + rename, payload
// before sidecar) so concurrent readers either see a complete entry or a
// miss. Putting an id that already exists rewrites it with identical bytes.
func (st *Store) Put(id string, capt *trace.Capture, stats []cpu.Stats) error {
	var buf bytes.Buffer
	h := sha256.New()
	if _, err := capt.WriteTo(io.MultiWriter(&buf, h)); err != nil {
		return fmt.Errorf("fleet: store put %s: %w", id, err)
	}
	if err := atomicWrite(filepath.Join(st.dir, id+".trc"), buf.Bytes()); err != nil {
		return fmt.Errorf("fleet: store put %s: %w", id, err)
	}
	meta := storeMeta{
		ID:      id,
		Records: capt.Records(),
		Cycles:  capt.Cycles(),
		SHA256:  hex.EncodeToString(h.Sum(nil)),
		Stats:   stats,
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: store put %s: %w", id, err)
	}
	if err := atomicWrite(filepath.Join(st.dir, id+".json"), append(data, '\n')); err != nil {
		return fmt.Errorf("fleet: store put %s: %w", id, err)
	}
	st.puts.Add(1)
	return nil
}

// Counters returns (hits, misses, puts) for metrics exposition.
func (st *Store) Counters() (hits, misses, puts uint64) {
	return st.hits.Load(), st.misses.Load(), st.puts.Load()
}

// atomicWrite writes data to path via a uniquely named temp file in the
// same directory plus rename, so readers never observe a partial file.
func atomicWrite(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
