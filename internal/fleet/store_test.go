package fleet

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/workload"
)

// testCapture simulates one tiny workload into a capture for store tests.
func testCapture(t *testing.T) (*tip.TraceCapture, []cpu.Stats) {
	t.Helper()
	w, err := workload.LoadScaled("x264", 1, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	capt, stats, err := tip.CaptureWorkload(w, cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { capt.Close() })
	return capt, []cpu.Stats{stats}
}

// warnRecorder collects store warnings for assertions.
type warnRecorder struct {
	mu   sync.Mutex
	msgs []string
}

func (wr *warnRecorder) warnf(format string, args ...any) {
	wr.mu.Lock()
	wr.msgs = append(wr.msgs, fmt.Sprintf(format, args...))
	wr.mu.Unlock()
}

func (wr *warnRecorder) contains(sub string) bool {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	for _, m := range wr.msgs {
		if strings.Contains(m, sub) {
			return true
		}
	}
	return false
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	capt, stats := testCapture(t)
	const id = "x264-1-20000-deadbeef"
	if err := st.Put(id, capt, stats); err != nil {
		t.Fatal(err)
	}

	got, gotStats, ok := st.Get(id)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	defer got.Close()
	if len(gotStats) != 1 || gotStats[0] != stats[0] {
		t.Fatalf("stats round trip: got %+v want %+v", gotStats, stats)
	}
	if got.Records() != capt.Records() || got.Cycles() != capt.Cycles() {
		t.Fatalf("shape round trip: got %d/%d want %d/%d",
			got.Records(), got.Cycles(), capt.Records(), capt.Cycles())
	}
	var a, b bytes.Buffer
	if _, err := capt.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := got.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("stored capture not byte-identical to the original")
	}

	hits, misses, puts := st.Counters()
	if hits != 1 || misses != 0 || puts != 1 {
		t.Fatalf("counters = %d/%d/%d, want 1/0/1", hits, misses, puts)
	}
}

func TestStoreMissOnAbsent(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get("nope"); ok {
		t.Fatal("Get on empty store hit")
	}
	if _, misses, _ := st.Counters(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

// TestStoreCorruptionIsAMiss flips bits in both the payload and the sidecar
// and checks each reads as a warned miss — corruption on shared storage must
// degrade to a re-simulation, never to wrong data or a crash.
func TestStoreCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	wr := &warnRecorder{}
	st.SetWarnf(wr.warnf)
	capt, stats := testCapture(t)
	const id = "x264-1-20000-deadbeef"
	if err := st.Put(id, capt, stats); err != nil {
		t.Fatal(err)
	}

	// Corrupt the payload: hash verification must reject it.
	trcPath := filepath.Join(dir, id+".trc")
	enc, err := os.ReadFile(trcPath)
	if err != nil {
		t.Fatal(err)
	}
	enc[len(enc)/2] ^= 0xff
	if err := os.WriteFile(trcPath, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get(id); ok {
		t.Fatal("Get returned a corrupted payload")
	}
	if !wr.contains("payload hash") {
		t.Fatalf("no payload-hash warning logged: %v", wr.msgs)
	}

	// Restore the payload, corrupt the sidecar.
	enc[len(enc)/2] ^= 0xff
	if err := os.WriteFile(trcPath, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get(id); !ok {
		t.Fatal("restored entry should hit again")
	}
	if err := os.WriteFile(filepath.Join(dir, id+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get(id); ok {
		t.Fatal("Get trusted a corrupted sidecar")
	}
	if !wr.contains("corrupted sidecar") {
		t.Fatalf("no sidecar warning logged: %v", wr.msgs)
	}
}
