package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// CoordinatorConfig parameterises the fleet coordinator.
type CoordinatorConfig struct {
	// HeartbeatTTL is how long a worker stays on the ring without a
	// heartbeat (default 5s).
	HeartbeatTTL time.Duration
	// MaxRoutedJobs bounds the submit-routing table; the oldest routes are
	// forgotten first (default 4096). A forgotten route returns 404 like a
	// forgotten tipd job.
	MaxRoutedJobs int
	// ProxyTimeout bounds one proxied request to a worker (default 30s).
	ProxyTimeout time.Duration
}

func (c *CoordinatorConfig) fill() {
	if c.HeartbeatTTL <= 0 {
		c.HeartbeatTTL = 5 * time.Second
	}
	if c.MaxRoutedJobs <= 0 {
		c.MaxRoutedJobs = 4096
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 30 * time.Second
	}
}

// routedJob maps one coordinator job id to where it actually ran.
type routedJob struct {
	node     string
	remoteID string
	key      string
	stolen   bool
}

// Coordinator fronts a fleet of tipd workers. Submissions are
// consistent-hashed by capture key onto the ring — so repeated jobs for one
// key land on the node whose LRU cache is warm for it — with a single steal
// hop to the second-choice owner when the home node rejects (429 saturated,
// 503 draining, or unreachable). Job reads and cancels proxy through to the
// owning node with the coordinator's job id rewritten in.
//
// API (client-facing routes mirror tipd's):
//
//	POST   /v1/jobs                submit: route by capture key, steal on saturation
//	GET    /v1/jobs                routing table (coordinator id → node, remote id)
//	GET    /v1/jobs/{id}           proxy to the owning node
//	DELETE /v1/jobs/{id}           proxy to the owning node
//	GET    /v1/jobs/{id}/pprof     proxy (bytes pass through untouched)
//	POST   /fleet/v1/register      worker heartbeat (NodeHealth body)
//	GET    /fleet/v1/nodes         fleet membership + per-node routing counters
//	GET    /metrics                Prometheus text exposition
//	GET    /healthz                liveness + ring size
type Coordinator struct {
	cfg    CoordinatorConfig
	reg    *registry
	client *http.Client
	mux    *http.ServeMux

	mu      sync.Mutex
	jobs    map[string]*routedJob
	order   []string
	nextID  uint64
	routed  uint64
	steals  uint64
	rejects uint64 // all candidates saturated
	errors  uint64 // proxy failures
}

// NewCoordinator builds a Coordinator with an empty fleet; workers appear as
// their heartbeats arrive.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg.fill()
	c := &Coordinator{
		cfg:    cfg,
		reg:    newRegistry(cfg.HeartbeatTTL),
		client: &http.Client{Timeout: cfg.ProxyTimeout},
		mux:    http.NewServeMux(),
		jobs:   map[string]*routedJob{},
	}
	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs", c.handleList)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleProxyGet)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleProxyDelete)
	c.mux.HandleFunc("GET /v1/jobs/{id}/pprof", c.handleProxyPprof)
	c.mux.HandleFunc("POST /fleet/v1/register", c.handleRegister)
	c.mux.HandleFunc("GET /fleet/v1/nodes", c.handleNodes)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	return c
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// RouteKey derives the ring key from a tipd job spec body. Only the fields
// that enter the capture-cache key matter (bench/seed/scale, or the ordered
// core set); everything else — profilers, granularity, replay workers —
// changes how a capture is consumed, not which capture it is, so specs that
// share a capture always hash to the same home node. The defaulting below
// mirrors JobSpec.normalize (seed 0 → 1) so explicit and implicit defaults
// key identically.
func RouteKey(specJSON []byte) (string, error) {
	var spec struct {
		Bench string `json:"bench"`
		Seed  uint64 `json:"seed"`
		Scale uint64 `json:"scale"`
		Cores []struct {
			Bench string `json:"bench"`
			Seed  uint64 `json:"seed"`
			Scale uint64 `json:"scale"`
		} `json:"cores"`
	}
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return "", fmt.Errorf("bad job spec: %w", err)
	}
	if len(spec.Cores) > 0 {
		var b strings.Builder
		b.WriteString("cores:")
		for _, cs := range spec.Cores {
			seed := cs.Seed
			if seed == 0 {
				seed = 1
			}
			fmt.Fprintf(&b, "%s:%d:%d,", cs.Bench, seed, cs.Scale)
		}
		return b.String(), nil
	}
	if spec.Bench == "" {
		return "", fmt.Errorf("bench is required")
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	return fmt.Sprintf("%s:%d:%d", spec.Bench, seed, spec.Scale), nil
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var h NodeHealth
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil || h.Name == "" || h.URL == "" {
		cWriteJSON(w, http.StatusBadRequest, map[string]any{"error": "heartbeat needs name and url"})
		return
	}
	c.reg.heartbeat(h, time.Now())
	cWriteJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleSubmit routes one submission: forward to the home node, steal to the
// next ring owner if the home rejects, 429 with jitter when every candidate
// is saturated.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		cWriteJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	key, err := RouteKey(body)
	if err != nil {
		cWriteJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	// Home plus one steal candidate: a second hop already smooths hot
	// spots, and bounding the walk keeps a saturated fleet's rejects fast.
	cands := c.reg.owners(key, 2, time.Now())
	if len(cands) == 0 {
		cWriteJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no workers registered"})
		return
	}
	saturated := 0
	for i, cand := range cands {
		resp, err := c.client.Post(cand.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			c.bump(&c.errors)
			continue
		}
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if rerr != nil {
			c.bump(&c.errors)
			continue
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			c.acceptRouted(w, key, cand.Name, i > 0, respBody)
			return
		case http.StatusTooManyRequests:
			// Saturated: steal to the next owner on the ring.
			saturated++
			continue
		case http.StatusServiceUnavailable:
			// Draining but its heartbeat hasn't told us yet.
			continue
		default:
			// A real answer (e.g. 400 bad spec): relay it verbatim.
			for k, vs := range resp.Header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(resp.StatusCode)
			w.Write(respBody)
			return
		}
	}
	c.bump(&c.rejects)
	if saturated > 0 {
		ms := RetryAfterMS()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", (ms+999)/1000))
		cWriteJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":          "fleet saturated; retry later",
			"retry_after_ms": ms,
		})
		return
	}
	cWriteJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no reachable worker for key"})
}

// acceptRouted records the mapping for an accepted job and relays the
// worker's 202 with the coordinator's id (and the serving node) swapped in.
func (c *Coordinator) acceptRouted(w http.ResponseWriter, key, node string, stolen bool, respBody []byte) {
	var view map[string]any
	if err := json.Unmarshal(respBody, &view); err != nil {
		c.bump(&c.errors)
		cWriteJSON(w, http.StatusBadGateway, map[string]any{"error": "bad worker response"})
		return
	}
	remoteID, _ := view["id"].(string)

	c.mu.Lock()
	c.nextID++
	c.routed++
	if stolen {
		c.steals++
	}
	id := fmt.Sprintf("f%08d", c.nextID)
	c.jobs[id] = &routedJob{node: node, remoteID: remoteID, key: key, stolen: stolen}
	c.order = append(c.order, id)
	for len(c.order) > c.cfg.MaxRoutedJobs {
		delete(c.jobs, c.order[0])
		c.order = c.order[1:]
	}
	c.mu.Unlock()
	c.reg.routed(node, stolen)

	view["id"] = id
	view["node"] = node
	view["stolen"] = stolen
	w.Header().Set("Location", "/v1/jobs/"+id)
	cWriteJSON(w, http.StatusAccepted, view)
}

// lookup resolves a coordinator job id to (node URL, remote id).
func (c *Coordinator) lookup(id string) (rj *routedJob, url string, ok bool) {
	c.mu.Lock()
	rj = c.jobs[id]
	c.mu.Unlock()
	if rj == nil {
		return nil, "", false
	}
	url = c.reg.url(rj.node)
	return rj, url, url != ""
}

// proxyJSON forwards method to the owning worker and relays the response
// with coordinator ids swapped back in.
func (c *Coordinator) proxyJSON(w http.ResponseWriter, method, id, suffix string) {
	rj, base, ok := c.lookup(id)
	if !ok {
		cWriteJSON(w, http.StatusNotFound, map[string]any{"error": "no such job"})
		return
	}
	req, err := http.NewRequest(method, base+"/v1/jobs/"+rj.remoteID+suffix, nil)
	if err != nil {
		cWriteJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.bump(&c.errors)
		cWriteJSON(w, http.StatusBadGateway, map[string]any{"error": fmt.Sprintf("node %s unreachable: %v", rj.node, err)})
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		c.bump(&c.errors)
		cWriteJSON(w, http.StatusBadGateway, map[string]any{"error": err.Error()})
		return
	}
	var view map[string]any
	if len(body) > 0 && json.Unmarshal(body, &view) == nil && view != nil {
		if _, has := view["id"]; has {
			view["id"] = id
			view["node"] = rj.node
			view["stolen"] = rj.stolen
		}
		cWriteJSON(w, resp.StatusCode, view)
		return
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

func (c *Coordinator) handleProxyGet(w http.ResponseWriter, r *http.Request) {
	c.proxyJSON(w, http.MethodGet, r.PathValue("id"), "")
}

func (c *Coordinator) handleProxyDelete(w http.ResponseWriter, r *http.Request) {
	c.proxyJSON(w, http.MethodDelete, r.PathValue("id"), "")
}

// handleProxyPprof relays the binary pprof payload untouched: the fleet's
// contract is that warm profiles are bit-identical from any node, so the
// coordinator must not reframe them.
func (c *Coordinator) handleProxyPprof(w http.ResponseWriter, r *http.Request) {
	rj, base, ok := c.lookup(r.PathValue("id"))
	if !ok {
		cWriteJSON(w, http.StatusNotFound, map[string]any{"error": "no such job"})
		return
	}
	url := base + "/v1/jobs/" + rj.remoteID + "/pprof"
	if q := r.URL.RawQuery; q != "" {
		url += "?" + q
	}
	resp, err := c.client.Get(url)
	if err != nil {
		c.bump(&c.errors)
		cWriteJSON(w, http.StatusBadGateway, map[string]any{"error": err.Error()})
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	jobs := make([]map[string]any, 0, len(c.order))
	for _, id := range c.order {
		if rj := c.jobs[id]; rj != nil {
			jobs = append(jobs, map[string]any{
				"id": id, "node": rj.node, "remote_id": rj.remoteID,
				"key": rj.key, "stolen": rj.stolen,
			})
		}
	}
	c.mu.Unlock()
	cWriteJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (c *Coordinator) handleNodes(w http.ResponseWriter, r *http.Request) {
	views := c.reg.views(time.Now())
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	cWriteJSON(w, http.StatusOK, map[string]any{"nodes": views})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	views := c.reg.views(time.Now())
	onRing := 0
	for _, v := range views {
		if v.OnRing {
			onRing++
		}
	}
	cWriteJSON(w, http.StatusOK, map[string]any{
		"ok": true, "role": "coordinator", "nodes": len(views), "ring_nodes": onRing,
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	views := c.reg.views(time.Now())
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	c.mu.Lock()
	routed, steals, rejects, errs := c.routed, c.steals, c.rejects, c.errors
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP fleet_jobs_routed_total Submissions accepted by some worker.\n")
	fmt.Fprintf(w, "# TYPE fleet_jobs_routed_total counter\n")
	fmt.Fprintf(w, "fleet_jobs_routed_total %d\n", routed)
	fmt.Fprintf(w, "# HELP fleet_steals_total Jobs routed to a non-home node because the home was saturated.\n")
	fmt.Fprintf(w, "# TYPE fleet_steals_total counter\n")
	fmt.Fprintf(w, "fleet_steals_total %d\n", steals)
	fmt.Fprintf(w, "# HELP fleet_rejected_total Submissions rejected with every candidate unavailable.\n")
	fmt.Fprintf(w, "# TYPE fleet_rejected_total counter\n")
	fmt.Fprintf(w, "fleet_rejected_total %d\n", rejects)
	fmt.Fprintf(w, "# HELP fleet_proxy_errors_total Worker requests that failed at the transport level.\n")
	fmt.Fprintf(w, "# TYPE fleet_proxy_errors_total counter\n")
	fmt.Fprintf(w, "fleet_proxy_errors_total %d\n", errs)
	fmt.Fprintf(w, "# HELP fleet_nodes Registered workers (on the ring or not).\n")
	fmt.Fprintf(w, "# TYPE fleet_nodes gauge\n")
	fmt.Fprintf(w, "fleet_nodes %d\n", len(views))
	fmt.Fprintf(w, "# HELP fleet_node_assigned_total Jobs routed to a node as its home.\n")
	fmt.Fprintf(w, "# TYPE fleet_node_assigned_total counter\n")
	for _, v := range views {
		fmt.Fprintf(w, "fleet_node_assigned_total{node=%q} %d\n", v.Name, v.Assigned)
	}
	fmt.Fprintf(w, "# HELP fleet_node_stolen_total Jobs a node received as a steal.\n")
	fmt.Fprintf(w, "# TYPE fleet_node_stolen_total counter\n")
	for _, v := range views {
		fmt.Fprintf(w, "fleet_node_stolen_total{node=%q} %d\n", v.Name, v.Stolen)
	}
}

func (c *Coordinator) bump(ctr *uint64) {
	c.mu.Lock()
	*ctr++
	c.mu.Unlock()
}

// RetryAfterMS picks a jittered retry hint for saturation 429s: a fixed
// Retry-After synchronizes every backed-off client into retry storms that
// re-saturate the queue in lockstep, so spread them over [500ms, 1500ms).
// tipd's own 429 path uses the same draw.
func RetryAfterMS() int { return 500 + rand.IntN(1000) }

func cWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
