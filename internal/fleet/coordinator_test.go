package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeWorker mimics tipd's job API: 202 with a fresh id, or 429 when
// saturated, or 503 when draining. It records which specs it accepted.
type fakeWorker struct {
	name string
	ts   *httptest.Server

	mu        sync.Mutex
	saturated bool
	accepted  []string // raw bodies
	nextID    int
	gets      []string // remote ids fetched
}

func newFakeWorker(t *testing.T, name string) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{name: name}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		fw.mu.Lock()
		defer fw.mu.Unlock()
		if fw.saturated {
			w.Header().Set("Retry-After", "1")
			cWriteJSON(w, http.StatusTooManyRequests, map[string]any{
				"error": "job queue saturated; retry later", "retry_after_ms": 700,
			})
			return
		}
		fw.nextID++
		fw.accepted = append(fw.accepted, buf.String())
		cWriteJSON(w, http.StatusAccepted, map[string]any{
			"id": fmt.Sprintf("%s-j%d", fw.name, fw.nextID), "state": "queued",
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		fw.mu.Lock()
		fw.gets = append(fw.gets, r.PathValue("id"))
		fw.mu.Unlock()
		cWriteJSON(w, http.StatusOK, map[string]any{
			"id": r.PathValue("id"), "state": "done", "cache_hit": true,
		})
	})
	fw.ts = httptest.NewServer(mux)
	t.Cleanup(fw.ts.Close)
	return fw
}

func (fw *fakeWorker) setSaturated(v bool) {
	fw.mu.Lock()
	fw.saturated = v
	fw.mu.Unlock()
}

func (fw *fakeWorker) acceptedCount() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return len(fw.accepted)
}

func (fw *fakeWorker) health(draining bool) NodeHealth {
	return NodeHealth{Name: fw.name, URL: fw.ts.URL, Draining: draining, Workers: 2}
}

func newTestCoordinator(t *testing.T) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := NewCoordinator(CoordinatorConfig{HeartbeatTTL: time.Minute})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

func register(t *testing.T, ts *httptest.Server, h NodeHealth) {
	t.Helper()
	body, _ := json.Marshal(h)
	resp, err := http.Post(ts.URL+"/fleet/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
}

func submitRaw(t *testing.T, ts *httptest.Server, spec string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

func TestCoordinatorAffinityAndProxy(t *testing.T) {
	_, ts := newTestCoordinator(t)
	a, b := newFakeWorker(t, "a"), newFakeWorker(t, "b")
	register(t, ts, a.health(false))
	register(t, ts, b.health(false))

	// Same key routes to the same node every time.
	spec := `{"bench":"mcf","scale":100000}`
	first, code := submitRaw(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", code, first)
	}
	home := first["node"].(string)
	if first["stolen"].(bool) {
		t.Fatal("unsaturated submit marked stolen")
	}
	for i := 0; i < 5; i++ {
		v, code := submitRaw(t, ts, spec)
		if code != http.StatusAccepted || v["node"].(string) != home {
			t.Fatalf("repeat submit landed on %v (status %d), want %s", v["node"], code, home)
		}
	}
	if got := a.acceptedCount() + b.acceptedCount(); got != 6 {
		t.Fatalf("workers accepted %d jobs, want 6", got)
	}
	if a.acceptedCount() != 0 && b.acceptedCount() != 0 {
		t.Fatal("one key spread across both nodes")
	}

	// The coordinator id proxies through to the owning worker.
	id := first["id"].(string)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var view map[string]any
	json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || view["id"] != id || view["state"] != "done" {
		t.Fatalf("proxied get = %v (status %d)", view, resp.StatusCode)
	}
	if view["node"] != home {
		t.Fatalf("proxied view node = %v, want %s", view["node"], home)
	}
}

func TestCoordinatorStealsOnSaturation(t *testing.T) {
	_, ts := newTestCoordinator(t)
	a, b := newFakeWorker(t, "a"), newFakeWorker(t, "b")
	register(t, ts, a.health(false))
	register(t, ts, b.health(false))

	spec := `{"bench":"x264","scale":50000}`
	first, code := submitRaw(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	home := first["node"].(string)
	workers := map[string]*fakeWorker{"a": a, "b": b}
	other := "a"
	if home == "a" {
		other = "b"
	}

	// Saturate the home node: the next submit must steal to the other.
	workers[home].setSaturated(true)
	v, code := submitRaw(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("steal submit: status %d (%v)", code, v)
	}
	if v["node"].(string) != other || !v["stolen"].(bool) {
		t.Fatalf("steal went to %v (stolen=%v), want %s", v["node"], v["stolen"], other)
	}

	// Saturate both: jittered 429.
	workers[other].setSaturated(true)
	v, code = submitRaw(t, ts, spec)
	if code != http.StatusTooManyRequests {
		t.Fatalf("fully saturated submit: status %d (%v)", code, v)
	}
	ms, ok := v["retry_after_ms"].(float64)
	if !ok || ms < 500 || ms >= 1500 {
		t.Fatalf("retry_after_ms = %v, want in [500, 1500)", v["retry_after_ms"])
	}

	// Metrics reflect the steal and the reject.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"fleet_steals_total 1", "fleet_rejected_total 1", "fleet_jobs_routed_total 2"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}

func TestCoordinatorExcludesDrainingNodes(t *testing.T) {
	_, ts := newTestCoordinator(t)
	a, b := newFakeWorker(t, "a"), newFakeWorker(t, "b")
	register(t, ts, a.health(false))
	register(t, ts, b.health(false))

	// Drain b: every key must now route to a, without steals.
	register(t, ts, b.health(true))
	for i := 0; i < 8; i++ {
		spec := `{"bench":"mcf","seed":` + strconv.Itoa(i+1) + `,"scale":50000}`
		v, code := submitRaw(t, ts, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d (%v)", i, code, v)
		}
		if v["node"].(string) != "a" || v["stolen"].(bool) {
			t.Fatalf("submit %d routed to %v (stolen=%v), want a unstolen", i, v["node"], v["stolen"])
		}
	}
	if b.acceptedCount() != 0 {
		t.Fatalf("draining node accepted %d jobs", b.acceptedCount())
	}

	// A drained-then-returned node rejoins the ring.
	register(t, ts, b.health(false))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if hz["ring_nodes"].(float64) != 2 {
		t.Fatalf("ring_nodes = %v after rejoin, want 2", hz["ring_nodes"])
	}
}

func TestCoordinatorBadSpecAndNoWorkers(t *testing.T) {
	_, ts := newTestCoordinator(t)
	if _, code := submitRaw(t, ts, `{"bench":"mcf"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit with no workers: status %d, want 503", code)
	}
	a := newFakeWorker(t, "a")
	register(t, ts, a.health(false))
	if _, code := submitRaw(t, ts, `{"scale":1}`); code != http.StatusBadRequest {
		t.Fatalf("missing bench: status %d, want 400", code)
	}
	if _, code := submitRaw(t, ts, `not json`); code != http.StatusBadRequest {
		t.Fatalf("garbage spec: status %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/f99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

func TestRouteKeyMatchesDefaults(t *testing.T) {
	// Explicit and implicit seed defaults key identically (normalize sets
	// seed 1), so they share a home node and a capture.
	k1, err := RouteKey([]byte(`{"bench":"mcf","scale":100}`))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := RouteKey([]byte(`{"bench":"mcf","seed":1,"scale":100}`))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("default-seed keys differ: %q vs %q", k1, k2)
	}
	k3, err := RouteKey([]byte(`{"cores":[{"bench":"mcf","scale":100},{"bench":"x264","scale":100}]}`))
	if err != nil {
		t.Fatal(err)
	}
	k4, err := RouteKey([]byte(`{"cores":[{"bench":"x264","scale":100},{"bench":"mcf","scale":100}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k4 {
		t.Fatal("core order must be part of the key: placement is semantic")
	}
}
