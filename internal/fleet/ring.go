// Package fleet turns single-box tipd into a horizontally scaled profiling
// service: a coordinator consistent-hashes jobs by capture key onto a fleet
// of registered tipd workers, a content-addressed shared capture store lets
// any node serve any warm key without re-simulating, and cold misses steal
// to the second-choice node when the home node is saturated.
//
// The package deliberately has no dependency on internal/server: the
// coordinator speaks tipd's HTTP API and the workers push their state to the
// coordinator via heartbeats, so the two services stay separately deployable.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many virtual points each node contributes to the hash
// ring. 128 keeps the per-node share close to uniform for small fleets
// while keeping ring rebuilds trivially cheap.
const ringVnodes = 128

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node names.
// Keys map to the first point clockwise from their hash; Owners walks
// further clockwise for failover candidates. Adding or removing one node
// moves only the keys that hashed to its points — every other key keeps
// its home node, which is what keeps per-node capture caches warm across
// membership changes.
type Ring struct {
	points []ringPoint
	nodes  int
}

// BuildRing constructs a ring over nodes (order-insensitive, duplicates
// collapse). An empty node set yields an empty ring.
func BuildRing(nodes []string) *Ring {
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes++
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", n, v)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes reports how many distinct nodes are on the ring.
func (r *Ring) Nodes() int { return r.nodes }

// Owners returns up to n distinct nodes responsible for key, in preference
// order: the home node first, then the steal candidates encountered walking
// clockwise. Returns nil on an empty ring.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > r.nodes {
		n = r.nodes
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Owner returns the home node for key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV alone clusters badly on short, similar strings ("a#0", "a#1",
	// ...), which skews ring shares by 3-4x; a splitmix64 finalizer
	// scatters the points properly.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
