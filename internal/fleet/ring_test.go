package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench%d:%d:%d", i%7, i, 100000)
	}
	return keys
}

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := BuildRing([]string{"a", "b", "c"})
	if r.Nodes() != 3 {
		t.Fatalf("Nodes() = %d, want 3", r.Nodes())
	}
	for _, key := range ringKeys(200) {
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q, 2) = %v, want 2 distinct", key, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%q) repeated node %q", key, owners[0])
		}
		again := r.Owners(key, 2)
		if owners[0] != again[0] || owners[1] != again[1] {
			t.Fatalf("Owners(%q) unstable: %v then %v", key, owners, again)
		}
	}
	// Asking for more owners than nodes caps at the node count.
	if got := r.Owners("k", 10); len(got) != 3 {
		t.Fatalf("Owners(k, 10) = %v, want all 3 nodes", got)
	}
}

func TestRingBalance(t *testing.T) {
	r := BuildRing([]string{"a", "b", "c"})
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	for node, n := range counts {
		frac := float64(n) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.0f%% of keys, outside [15%%, 55%%]: %v", node, 100*frac, counts)
		}
	}
}

// TestRingMinimalDisruption is the property consistent hashing buys: when a
// node leaves, only its keys move — everyone else's home (and therefore
// their warm capture caches) stays put.
func TestRingMinimalDisruption(t *testing.T) {
	full := BuildRing([]string{"a", "b", "c"})
	reduced := BuildRing([]string{"a", "b"})
	for _, key := range ringKeys(1000) {
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "c" && before != after {
			t.Fatalf("key %q moved %s -> %s though its home never left", key, before, after)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := BuildRing(nil)
	if r.Owner("k") != "" || r.Owners("k", 2) != nil || r.Nodes() != 0 {
		t.Fatal("empty ring must own nothing")
	}
}
