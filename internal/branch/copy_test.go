package branch

import "testing"

// trainTage feeds a mix of biased, patterned, and loop-like branches.
func trainTage(tg *Tage, n int) {
	for i := 0; i < n; i++ {
		pc := uint64(0x400000 + (i%37)*4)
		taken := i%3 != 0
		if i%5 == 0 {
			taken = (i/5)%2 == 0
		}
		tg.PredictUpdate(pc, taken)
	}
}

// TestTageCopyFromRoundTrip pins the predictor side of the checkpoint seam:
// a copied TAGE must predict and train exactly as the original from that
// point on (same tables, same folded histories, same use-alt counter).
func TestTageCopyFromRoundTrip(t *testing.T) {
	src := NewTage(DefaultTageConfig())
	trainTage(src, 5000)

	cp := NewTage(DefaultTageConfig())
	trainTage(cp, 1234) // stale state a pooled worker might carry
	cp.CopyFrom(src)

	for i := 0; i < 3000; i++ {
		pc := uint64(0x400000 + (i%53)*4)
		taken := i%7 < 4
		a := src.PredictUpdate(pc, taken)
		b := cp.PredictUpdate(pc, taken)
		if a != b {
			t.Fatalf("branch %d: source predicted %v, copy %v", i, a, b)
		}
	}
	if src.MispredictRate() != cp.MispredictRate() {
		t.Fatalf("mispredict rates diverged: %f vs %f", src.MispredictRate(), cp.MispredictRate())
	}
}

// TestBTBCopyFromRoundTrip: a copied BTB answers every lookup the way the
// original does, and replacement state carries over (probing new targets
// from the same state evicts the same victims).
func TestBTBCopyFromRoundTrip(t *testing.T) {
	src := NewBTB(512, 4)
	for i := 0; i < 2000; i++ {
		pc := uint64(0x10000 + (i%700)*4)
		src.Probe(pc, pc+uint64(8+i%16))
	}
	cp := NewBTB(512, 4)
	cp.CopyFrom(src)

	for i := 0; i < 700; i++ {
		pc := uint64(0x10000 + i*4)
		ta, oka := src.Lookup(pc)
		tb, okb := cp.Lookup(pc)
		if ta != tb || oka != okb {
			t.Fatalf("pc %#x: source (%#x,%v), copy (%#x,%v)", pc, ta, oka, tb, okb)
		}
	}
	// Same replacement decisions from the copied state.
	for i := 0; i < 300; i++ {
		pc := uint64(0x90000 + i*4)
		if src.Probe(pc, pc+8) != cp.Probe(pc, pc+8) {
			t.Fatalf("probe %d: replacement behaviour diverged", i)
		}
	}
}

// TestRASCopyFromRoundTrip: a copied return-address stack pops the same
// predictions, including after overflow wraps.
func TestRASCopyFromRoundTrip(t *testing.T) {
	src := NewRAS(16)
	for i := 0; i < 40; i++ { // overflow the 16-deep stack
		src.Push(uint64(0x1000 + i*8))
	}
	cp := NewRAS(16)
	cp.CopyFrom(src)

	for i := 0; i < 20; i++ {
		actual := uint64(0x1000 + (39-i)*8)
		pa, ca := src.Pop(actual)
		pb, cb := cp.Pop(actual)
		if pa != pb || ca != cb {
			t.Fatalf("pop %d: source (%#x,%v), copy (%#x,%v)", i, pa, ca, pb, cb)
		}
	}
	if src.Depth() != cp.Depth() {
		t.Fatalf("depths diverged: %d vs %d", src.Depth(), cp.Depth())
	}
}
