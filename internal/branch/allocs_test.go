package branch

import (
	"testing"

	"github.com/tipprof/tip/internal/xrand"
)

// TestPredictorSteadyStateZeroAllocs guards the per-branch hot paths:
// after warm-up (tables trained, BTB ways filled), TAGE predict/update
// and BTB lookup/probe/insert must not allocate. The core calls these
// once per control-flow instruction, every cycle of a branchy workload.
func TestPredictorSteadyStateZeroAllocs(t *testing.T) {
	tg := NewTage(DefaultTageConfig())
	btb := NewBTB(512, 4)
	ras := NewRAS(16)
	rng := xrand.New(7)
	const nPCs = 1024 // exceeds BTB capacity so insert/evict stays live
	pcs := make([]uint64, nPCs)
	outs := make([]bool, nPCs)
	for i := range pcs {
		pcs[i] = uint64(0x4000 + i*4)
		outs[i] = rng.Bool(0.6)
	}
	pass := func() {
		for i := 0; i < nPCs; i++ {
			pc, taken := pcs[i], outs[i]
			tg.PredictUpdate(pc, taken)
			btb.Lookup(pc)
			if taken {
				if !btb.Probe(pc, pc+0x100) {
					btb.Insert(pc, pc+0x100)
				}
			}
			if i%13 == 0 {
				ras.Push(pc + 4)
			} else if i%13 == 7 {
				ras.Pop(pc + 4)
			}
		}
	}
	for w := 0; w < 3; w++ {
		pass()
	}
	if avg := testing.AllocsPerRun(5, pass); avg != 0 {
		t.Fatalf("steady-state branch prediction allocates: %.2f allocs/pass, want 0", avg)
	}
}
