// Package branch models the front-end prediction structures of Table 1: a
// TAGE direction predictor (28 KB class), a branch target buffer, and a
// return-address stack.
//
// The predictor is used trace-driven: the core asks for a prediction for the
// committed-path branch and then updates with the actual outcome, recording
// a misprediction whenever they disagree. This matches how the paper's
// FireSim methodology observes mispredict flags on the committed-path ROB
// entries.
package branch

// TageConfig parameterises the direction predictor.
type TageConfig struct {
	// BaseBits is log2 of the bimodal base table size.
	BaseBits int
	// TableBits is log2 of each tagged table size.
	TableBits int
	// TagBits is the tag width of tagged entries.
	TagBits int
	// Histories lists the geometric history lengths, shortest first.
	Histories []int
	// UsefulResetPeriod is how many allocations occur between halvings
	// of the useful counters.
	UsefulResetPeriod int
}

// DefaultTageConfig approximates the 28 KB TAGE of Table 1.
func DefaultTageConfig() TageConfig {
	return TageConfig{
		BaseBits:          13, // 8K 2-bit counters = 2 KB
		TableBits:         10, // 1K entries x 4 tables
		TagBits:           9,
		Histories:         []int{5, 15, 44, 130},
		UsefulResetPeriod: 256 * 1024,
	}
}

type tagEntry struct {
	tag    uint32
	ctr    int8 // 3-bit signed counter [-4,3]; >=0 predicts taken
	useful uint8
}

// folded is an incrementally maintained folded-history register (Seznec's
// CBP TAGE technique): it holds the XOR-fold of the newest olen history
// bits into clen bits, updated in O(1) per branch.
type folded struct {
	comp     uint64
	clen     uint
	olen     uint
	outpoint uint
}

func newFolded(olen, clen int) folded {
	return folded{clen: uint(clen), olen: uint(olen), outpoint: uint(olen % clen)}
}

func (f *folded) update(newBit, oldBit uint64) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= oldBit << f.outpoint
	f.comp ^= f.comp >> f.clen
	f.comp &= (1 << f.clen) - 1
}

// Tage is the direction predictor.
type Tage struct {
	cfg  TageConfig
	base []int8 // 2-bit counters [-2,1]
	tabs [][]tagEntry

	// Circular global history buffer (one byte per outcome) plus folded
	// registers for index and tag computation per tagged table.
	hist     []uint8
	histHead int
	// histOld[i] is the buffer position of the bit that falls out of table
	// i's folded registers on the next shift. It advances in lockstep with
	// histHead, replacing a modulo computation per table per branch.
	histOld []int
	fIdx    []folded
	fTag1   []folded
	fTag2   []folded

	allocs uint64

	// Stats.
	Lookups, Mispredicts uint64
}

// NewTage builds the predictor.
func NewTage(cfg TageConfig) *Tage {
	if cfg.BaseBits <= 0 || cfg.TableBits <= 0 || len(cfg.Histories) == 0 {
		panic("branch: invalid TAGE config")
	}
	maxHist := cfg.Histories[len(cfg.Histories)-1]
	t := &Tage{
		cfg:  cfg,
		base: make([]int8, 1<<cfg.BaseBits),
		tabs: make([][]tagEntry, len(cfg.Histories)),
		hist: make([]uint8, maxHist+1),
	}
	for i := range t.tabs {
		t.tabs[i] = make([]tagEntry, 1<<cfg.TableBits)
		t.fIdx = append(t.fIdx, newFolded(cfg.Histories[i], cfg.TableBits))
		t.fTag1 = append(t.fTag1, newFolded(cfg.Histories[i], cfg.TagBits))
		t.fTag2 = append(t.fTag2, newFolded(cfg.Histories[i], cfg.TagBits-1))
		t.histOld = append(t.histOld, initialHistOld(cfg.Histories[i], len(t.hist)))
	}
	return t
}

// initialHistOld returns where the first shift reads table i's outgoing bit:
// (histHead+1 - olen) mod n with histHead starting at 0.
func initialHistOld(olen, n int) int {
	return ((1-olen)%n + n) % n
}

func (t *Tage) index(table int, pc uint64) int {
	v := (pc >> 2) ^ (pc >> (2 + uint(table+1))) ^ t.fIdx[table].comp
	return int(v & uint64(len(t.tabs[table])-1))
}

func (t *Tage) tag(table int, pc uint64) uint32 {
	v := (pc >> 2) ^ t.fTag1[table].comp ^ (t.fTag2[table].comp << 1)
	return uint32(v & ((1 << t.cfg.TagBits) - 1))
}

func (t *Tage) baseIndex(pc uint64) int {
	return int((pc >> 2) & uint64(len(t.base)-1))
}

// lookup finds the longest-history matching table; returns (table, index,
// prediction, providerFound). Table -1 means the base predictor provided.
func (t *Tage) lookup(pc uint64) (provider int, idx int, pred bool) {
	for table := len(t.tabs) - 1; table >= 0; table-- {
		i := t.index(table, pc)
		if t.tabs[table][i].tag == t.tag(table, pc) {
			return table, i, t.tabs[table][i].ctr >= 0
		}
	}
	return -1, t.baseIndex(pc), t.base[t.baseIndex(pc)] >= 0
}

// Predict returns the predicted direction for the branch at pc.
func (t *Tage) Predict(pc uint64) bool {
	t.Lookups++
	_, _, pred := t.lookup(pc)
	return pred
}

// PredictUpdate predicts the branch at pc, trains with the actual outcome,
// and returns the prediction. It is Predict followed by Update — identical
// state transitions and statistics — with a single table lookup: the core's
// trace-driven use always pairs the two back to back on unchanged predictor
// state, and the lookup (per-table index and tag hashing) is the expensive
// half of each call.
func (t *Tage) PredictUpdate(pc uint64, taken bool) bool {
	t.Lookups++
	provider, idx, pred := t.lookup(pc)
	if pred != taken {
		t.Mispredicts++
	}
	t.train(provider, idx, pred, pc, taken)
	return pred
}

// Warm trains the predictor on a committed-path outcome without recording
// lookup or mispredict statistics. It is the functional fast-forward's bulk
// warming entry point: table, useful-counter and history transitions are
// identical to PredictUpdate's, so a detailed window resumed after a warmed
// skip sees the predictor state full simulation would roughly have built.
func (t *Tage) Warm(pc uint64, taken bool) {
	provider, idx, pred := t.lookup(pc)
	t.train(provider, idx, pred, pc, taken)
}

// Update trains the predictor with the actual outcome and shifts history.
// It returns whether the pre-update prediction was correct, so callers can
// do Predict and Update as one call when convenient.
func (t *Tage) Update(pc uint64, taken bool) bool {
	provider, idx, pred := t.lookup(pc)
	if pred != taken {
		t.Mispredicts++
	}
	t.train(provider, idx, pred, pc, taken)
	return pred == taken
}

// train applies the outcome to the provider entry found by lookup, handles
// mispredict allocation, and shifts history.
func (t *Tage) train(provider, idx int, pred bool, pc uint64, taken bool) {
	correct := pred == taken

	if provider >= 0 {
		e := &t.tabs[provider][idx]
		e.ctr = satUpdate3(e.ctr, taken)
		if correct && e.useful < 3 {
			e.useful++
		} else if !correct && e.useful > 0 {
			e.useful--
		}
	} else {
		b := &t.base[idx]
		*b = satUpdate2(*b, taken)
	}

	// On a mispredict, allocate an entry in a longer-history table.
	if !correct && provider < len(t.tabs)-1 {
		allocated := false
		for table := provider + 1; table < len(t.tabs); table++ {
			i := t.index(table, pc)
			if t.tabs[table][i].useful == 0 {
				t.tabs[table][i] = tagEntry{
					tag: t.tag(table, pc),
					ctr: ctrInit(taken),
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness so future allocations succeed.
			for table := provider + 1; table < len(t.tabs); table++ {
				i := t.index(table, pc)
				if t.tabs[table][i].useful > 0 {
					t.tabs[table][i].useful--
				}
			}
		}
		t.allocs++
		if t.cfg.UsefulResetPeriod > 0 && t.allocs%uint64(t.cfg.UsefulResetPeriod) == 0 {
			for _, tab := range t.tabs {
				for k := range tab {
					tab[k].useful >>= 1
				}
			}
		}
	}

	t.shiftHistory(taken)
}

// shiftHistory pushes the outcome into global history and updates every
// folded register in O(1).
func (t *Tage) shiftHistory(taken bool) {
	b := uint64(0)
	if taken {
		b = 1
	}
	n := len(t.hist)
	if t.histHead++; t.histHead == n {
		t.histHead = 0
	}
	t.hist[t.histHead] = uint8(b)
	for i := range t.fIdx {
		oi := t.histOld[i]
		old := uint64(t.hist[oi])
		if oi++; oi == n {
			oi = 0
		}
		t.histOld[i] = oi
		t.fIdx[i].update(b, old)
		t.fTag1[i].update(b, old)
		t.fTag2[i].update(b, old)
	}
}

// CopyFrom overwrites t's tables, history and statistics with src's. Both
// predictors must share a configuration; all slices are fixed-size at
// construction, so copies never allocate.
func (t *Tage) CopyFrom(src *Tage) {
	if len(t.base) != len(src.base) || len(t.tabs) != len(src.tabs) || len(t.hist) != len(src.hist) {
		panic("branch: Tage CopyFrom config mismatch")
	}
	copy(t.base, src.base)
	for i := range t.tabs {
		copy(t.tabs[i], src.tabs[i])
	}
	copy(t.hist, src.hist)
	t.histHead = src.histHead
	copy(t.histOld, src.histOld)
	copy(t.fIdx, src.fIdx)
	copy(t.fTag1, src.fTag1)
	copy(t.fTag2, src.fTag2)
	t.allocs = src.allocs
	t.Lookups, t.Mispredicts = src.Lookups, src.Mispredicts
}

// MispredictRate returns mispredicts/lookups.
func (t *Tage) MispredictRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Mispredicts) / float64(t.Lookups)
}

// Reset clears all predictor state.
func (t *Tage) Reset() {
	for i := range t.base {
		t.base[i] = 0
	}
	for _, tab := range t.tabs {
		for k := range tab {
			tab[k] = tagEntry{}
		}
	}
	for i := range t.hist {
		t.hist[i] = 0
	}
	t.histHead = 0
	for i := range t.fIdx {
		t.fIdx[i].comp = 0
		t.fTag1[i].comp = 0
		t.fTag2[i].comp = 0
		t.histOld[i] = initialHistOld(int(t.fIdx[i].olen), len(t.hist))
	}
	t.allocs, t.Lookups, t.Mispredicts = 0, 0, 0
}

// StorageBits estimates the predictor's storage budget in bits.
func (t *Tage) StorageBits() int {
	bitsPerTag := t.cfg.TagBits + 3 + 2 // tag + ctr + useful
	return len(t.base)*2 + len(t.tabs)*(1<<t.cfg.TableBits)*bitsPerTag
}

func satUpdate2(c int8, taken bool) int8 {
	if taken {
		if c < 1 {
			c++
		}
	} else if c > -2 {
		c--
	}
	return c
}

func satUpdate3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > -4 {
		c--
	}
	return c
}

func ctrInit(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}
