package branch

// BTB is a set-associative branch target buffer. Because the synthetic
// programs have static targets for direct control flow, a BTB hit always
// yields the correct target; a miss on a taken control-flow instruction
// costs a front-end redirect bubble (the target becomes known at decode).
type BTB struct {
	ways    int
	sets    int
	tags    []uint64
	targets []uint64
	valid   []bool
	lru     []uint64
	stamp   uint64

	Hits, Misses uint64
}

// NewBTB builds a BTB with the given total entries and associativity.
func NewBTB(entries, ways int) *BTB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("branch: invalid BTB geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("branch: BTB set count must be a power of two")
	}
	return &BTB{
		ways:    ways,
		sets:    sets,
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
		lru:     make([]uint64, entries),
	}
}

func (b *BTB) setOf(pc uint64) int { return int(hashPC(pc) & uint64(b.sets-1)) }

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	base := b.setOf(pc) * b.ways
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			b.Hits++
			b.stamp++
			b.lru[i] = b.stamp
			return b.targets[i], true
		}
	}
	b.Misses++
	return 0, false
}

// Probe is Lookup fused with Insert-on-miss: it reports whether pc hit, and
// on a miss installs pc -> target. State transitions and statistics are
// identical to Lookup followed by Insert, but the set is hashed and scanned
// once — the pattern the core's fetch stage always uses for direct control
// flow.
func (b *BTB) Probe(pc, target uint64) bool {
	base := b.setOf(pc) * b.ways
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			b.Hits++
			b.stamp++
			b.lru[i] = b.stamp
			return true
		}
	}
	b.Misses++
	// pc cannot be resident (the scan above missed), so the victim is the
	// first invalid way, else LRU.
	victim := base
	for w := 0; w < b.ways; w++ {
		i := base + w
		if !b.valid[i] {
			victim = i
			break
		}
		if b.lru[i] < b.lru[victim] {
			victim = i
		}
	}
	b.tags[victim] = pc
	b.targets[victim] = target
	b.valid[victim] = true
	b.stamp++
	b.lru[victim] = b.stamp
	return false
}

// Warm is Probe without the hit/miss statistics: the functional
// fast-forward's bulk warming entry point. Tag, target, valid and LRU
// transitions are identical to Probe's, so a detailed window resumed after
// a warmed skip sees the BTB contents full simulation would have built.
func (b *BTB) Warm(pc, target uint64) {
	base := b.setOf(pc) * b.ways
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			b.stamp++
			b.lru[i] = b.stamp
			return
		}
	}
	victim := base
	for w := 0; w < b.ways; w++ {
		i := base + w
		if !b.valid[i] {
			victim = i
			break
		}
		if b.lru[i] < b.lru[victim] {
			victim = i
		}
	}
	b.tags[victim] = pc
	b.targets[victim] = target
	b.valid[victim] = true
	b.stamp++
	b.lru[victim] = b.stamp
}

// CopyFrom overwrites b's entries, recency state and statistics with src's.
// Both BTBs must share a geometry; copies never allocate.
func (b *BTB) CopyFrom(src *BTB) {
	if b.ways != src.ways || b.sets != src.sets {
		panic("branch: BTB CopyFrom geometry mismatch")
	}
	copy(b.tags, src.tags)
	copy(b.targets, src.targets)
	copy(b.valid, src.valid)
	copy(b.lru, src.lru)
	b.stamp = src.stamp
	b.Hits, b.Misses = src.Hits, src.Misses
}

// Insert records pc -> target.
func (b *BTB) Insert(pc, target uint64) {
	base := b.setOf(pc) * b.ways
	victim := base
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			victim = i
			break
		}
		if !b.valid[i] {
			victim = i
			break
		}
		if b.lru[i] < b.lru[victim] {
			victim = i
		}
	}
	b.tags[victim] = pc
	b.targets[victim] = target
	b.valid[victim] = true
	b.stamp++
	b.lru[victim] = b.stamp
}

// Reset clears the BTB.
func (b *BTB) Reset() {
	for i := range b.valid {
		b.valid[i] = false
	}
	b.Hits, b.Misses, b.stamp = 0, 0, 0
}

// RAS is a circular return-address stack. Overflow silently wraps (the
// oldest entries are clobbered), which makes deep recursion mispredict its
// unwinding returns — matching real hardware.
type RAS struct {
	stack []uint64
	top   int // number of live entries, may exceed len (wrapped)
	idx   int // top reduced into [0, len): next push slot, kept incrementally

	Pushes, Pops, Mispredicts uint64
}

// NewRAS builds a return-address stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("branch: invalid RAS depth")
	}
	return &RAS{stack: make([]uint64, depth)}
}

// Push records a return address at a call.
func (r *RAS) Push(ret uint64) {
	r.stack[r.idx] = ret
	if r.idx++; r.idx == len(r.stack) {
		r.idx = 0
	}
	r.top++
	r.Pushes++
}

// Pop predicts the target of a return; correct reports whether the
// prediction matched actual. An empty stack always mispredicts.
func (r *RAS) Pop(actual uint64) (predicted uint64, correct bool) {
	r.Pops++
	if r.top == 0 {
		r.Mispredicts++
		return 0, false
	}
	r.top--
	if r.idx == 0 {
		r.idx = len(r.stack)
	}
	r.idx--
	predicted = r.stack[r.idx]
	if predicted != actual {
		r.Mispredicts++
		return predicted, false
	}
	return predicted, true
}

// Depth returns the current live entry count (capped at capacity for
// reporting).
func (r *RAS) Depth() int {
	if r.top > len(r.stack) {
		return len(r.stack)
	}
	return r.top
}

// Reset empties the stack.
func (r *RAS) Reset() {
	r.top = 0
	r.idx = 0
	r.Pushes, r.Pops, r.Mispredicts = 0, 0, 0
}

// CopyFrom restores this stack's contents from other (same depth required).
// Cores keep an architectural RAS updated at commit and restore the
// speculative fetch RAS from it on pipeline flushes.
func (r *RAS) CopyFrom(other *RAS) {
	if len(r.stack) != len(other.stack) {
		panic("branch: RAS depth mismatch in CopyFrom")
	}
	copy(r.stack, other.stack)
	r.top = other.top
	r.idx = other.idx
}

// hashPC mixes a PC for BTB indexing.
func hashPC(pc uint64) uint64 {
	pc ^= pc >> 33
	pc *= 0xff51afd7ed558ccd
	pc ^= pc >> 33
	return pc
}
