package branch

import (
	"testing"

	"github.com/tipprof/tip/internal/xrand"
)

func trainAndMeasure(t *testing.T, outcomes func(i int) (pc uint64, taken bool), warm, measure int) float64 {
	t.Helper()
	tg := NewTage(DefaultTageConfig())
	for i := 0; i < warm; i++ {
		pc, taken := outcomes(i)
		tg.Update(pc, taken)
	}
	tg.Lookups, tg.Mispredicts = 0, 0
	for i := warm; i < warm+measure; i++ {
		pc, taken := outcomes(i)
		pred := tg.Predict(pc)
		tg.Update(pc, taken)
		_ = pred
	}
	return tg.MispredictRate()
}

func TestTageAlwaysTaken(t *testing.T) {
	r := trainAndMeasure(t, func(i int) (uint64, bool) { return 0x1000, true }, 100, 1000)
	if r > 0.001 {
		t.Fatalf("always-taken mispredict rate %v", r)
	}
}

func TestTageAlternating(t *testing.T) {
	r := trainAndMeasure(t, func(i int) (uint64, bool) { return 0x1000, i%2 == 0 }, 500, 2000)
	if r > 0.02 {
		t.Fatalf("alternating pattern mispredict rate %v, want near 0", r)
	}
}

func TestTageShortLoop(t *testing.T) {
	// Loop with trip 5: T T T T N repeating — needs history.
	r := trainAndMeasure(t, func(i int) (uint64, bool) { return 0x2000, i%5 != 4 }, 1000, 5000)
	if r > 0.05 {
		t.Fatalf("trip-5 loop mispredict rate %v, want < 5%%", r)
	}
}

func TestTageRandomNearChance(t *testing.T) {
	rng := xrand.New(1)
	outcomes := make([]bool, 20000)
	for i := range outcomes {
		outcomes[i] = rng.Bool(0.5)
	}
	r := trainAndMeasure(t, func(i int) (uint64, bool) { return 0x3000, outcomes[i] }, 2000, 10000)
	if r < 0.35 || r > 0.65 {
		t.Fatalf("random branch mispredict rate %v, want near 0.5", r)
	}
}

func TestTageBiasedBranch(t *testing.T) {
	rng := xrand.New(2)
	outcomes := make([]bool, 30000)
	for i := range outcomes {
		outcomes[i] = rng.Bool(0.9)
	}
	r := trainAndMeasure(t, func(i int) (uint64, bool) { return 0x4000, outcomes[i] }, 2000, 20000)
	if r > 0.2 {
		t.Fatalf("90%%-biased branch mispredict rate %v, want < 0.2", r)
	}
}

func TestTageManyBranchesNoInterference(t *testing.T) {
	// 64 branches, each always-taken or always-not-taken by PC parity.
	outcome := func(i int) (uint64, bool) {
		pc := uint64(0x1000 + (i%64)*4)
		return pc, (i%64)%2 == 0
	}
	r := trainAndMeasure(t, outcome, 64*20, 64*100)
	if r > 0.01 {
		t.Fatalf("static branches mispredict rate %v", r)
	}
}

func TestTageCorrelatedBranches(t *testing.T) {
	// Branch B is taken iff branch A was taken: global history captures it.
	state := false
	rng := xrand.New(3)
	outcome := func(i int) (uint64, bool) {
		if i%2 == 0 {
			state = rng.Bool(0.5)
			return 0x5000, state
		}
		return 0x6000, state
	}
	tg := NewTage(DefaultTageConfig())
	for i := 0; i < 20000; i++ {
		pc, taken := outcome(i)
		tg.Update(pc, taken)
	}
	tg.Lookups, tg.Mispredicts = 0, 0
	misB, totB := 0, 0
	for i := 20000; i < 60000; i++ {
		pc, taken := outcome(i)
		pred := tg.Predict(pc)
		tg.Update(pc, taken)
		if pc == 0x6000 {
			totB++
			if pred != taken {
				misB++
			}
		}
	}
	rate := float64(misB) / float64(totB)
	if rate > 0.10 {
		t.Fatalf("correlated branch mispredict rate %v, want < 0.10", rate)
	}
}

func TestTageReset(t *testing.T) {
	tg := NewTage(DefaultTageConfig())
	for i := 0; i < 1000; i++ {
		tg.Update(0x1000, true)
	}
	tg.Reset()
	if tg.Lookups != 0 || tg.Mispredicts != 0 {
		t.Fatal("stats survived reset")
	}
	// A reset predictor predicts not-taken-ish from zero counters; just
	// check it functions.
	tg.Predict(0x1000)
	tg.Update(0x1000, false)
}

func TestTageStorageBudget(t *testing.T) {
	tg := NewTage(DefaultTageConfig())
	kb := tg.StorageBits() / 8 / 1024
	if kb < 4 || kb > 56 {
		t.Fatalf("TAGE storage %d KB implausible for a 28 KB-class predictor", kb)
	}
}

func TestTageInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewTage(TageConfig{})
}

func TestBTBHitAfterInsert(t *testing.T) {
	b := NewBTB(512, 4)
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("empty BTB hit")
	}
	b.Insert(0x1000, 0x2000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x2000 {
		t.Fatalf("lookup = %#x, %v", tgt, ok)
	}
}

func TestBTBUpdateExisting(t *testing.T) {
	b := NewBTB(512, 4)
	b.Insert(0x1000, 0x2000)
	b.Insert(0x1000, 0x3000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x3000 {
		t.Fatalf("lookup after update = %#x, %v", tgt, ok)
	}
}

func TestBTBEvictionLRU(t *testing.T) {
	b := NewBTB(4, 4) // single set
	for i := 0; i < 4; i++ {
		b.Insert(uint64(0x1000+i*8), uint64(i))
	}
	b.Lookup(0x1000) // make first entry MRU
	b.Insert(0x9000, 99)
	if _, ok := b.Lookup(0x1000); !ok {
		t.Fatal("MRU entry evicted")
	}
	live := 0
	for i := 0; i < 4; i++ {
		if _, ok := b.Lookup(uint64(0x1000 + i*8)); ok {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("%d original entries live, want 3", live)
	}
}

func TestBTBGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBTB(0, 1) },
		func() { NewBTB(512, 0) },
		func() { NewBTB(511, 4) },
		func() { NewBTB(24, 4) }, // 6 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad BTB geometry did not panic")
				}
			}()
			f()
		}()
	}
}

func TestRASBalancedCalls(t *testing.T) {
	r := NewRAS(16)
	for depth := 0; depth < 10; depth++ {
		r.Push(uint64(0x1000 + depth*4))
	}
	for depth := 9; depth >= 0; depth-- {
		pred, ok := r.Pop(uint64(0x1000 + depth*4))
		if !ok {
			t.Fatalf("balanced pop mispredicted at depth %d (pred %#x)", depth, pred)
		}
	}
	if r.Mispredicts != 0 {
		t.Fatalf("mispredicts = %d", r.Mispredicts)
	}
}

func TestRASUnderflowMispredicts(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(0x1234); ok {
		t.Fatal("empty RAS pop predicted correctly?")
	}
	if r.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d", r.Mispredicts)
	}
}

func TestRASOverflowClobbers(t *testing.T) {
	r := NewRAS(4)
	for i := 0; i < 6; i++ { // two deeper than capacity
		r.Push(uint64(0x1000 + i*4))
	}
	// Unwind: the top 4 predict correctly, the bottom 2 were clobbered.
	correct := 0
	for i := 5; i >= 0; i-- {
		if _, ok := r.Pop(uint64(0x1000 + i*4)); ok {
			correct++
		}
	}
	if correct != 4 {
		t.Fatalf("%d correct pops, want 4", correct)
	}
}

func TestRASDepthReporting(t *testing.T) {
	r := NewRAS(4)
	for i := 0; i < 10; i++ {
		r.Push(1)
	}
	if r.Depth() != 4 {
		t.Fatalf("Depth = %d, want capped 4", r.Depth())
	}
	r.Reset()
	if r.Depth() != 0 {
		t.Fatal("reset did not empty RAS")
	}
}

func BenchmarkTagePredictUpdate(b *testing.B) {
	tg := NewTage(DefaultTageConfig())
	rng := xrand.New(1)
	pcs := make([]uint64, 256)
	outs := make([]bool, 256)
	for i := range pcs {
		pcs[i] = uint64(0x1000 + i*4)
		outs[i] = rng.Bool(0.7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 255
		tg.Predict(pcs[k])
		tg.Update(pcs[k], outs[k])
	}
}

func BenchmarkBTBLookup(b *testing.B) {
	btb := NewBTB(512, 4)
	btb.Insert(0x1000, 0x2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		btb.Lookup(0x1000)
	}
}
