package branch

import (
	"testing"

	"github.com/tipprof/tip/internal/xrand"
)

// TestTageWarmMatchesPredictUpdate trains one predictor through the timed
// path and one through the warming path on the same outcome sequence: the
// table state must end up identical (probed via Predict agreement on a
// fresh outcome stream) while the warmed predictor records no statistics.
func TestTageWarmMatchesPredictUpdate(t *testing.T) {
	timed := NewTage(DefaultTageConfig())
	warmed := NewTage(DefaultTageConfig())
	rng := xrand.New(7)
	pcs := []uint64{0x1000, 0x1040, 0x2000, 0x2100}
	for i := 0; i < 20000; i++ {
		pc := pcs[rng.Uint64n(uint64(len(pcs)))]
		taken := rng.Bool(0.6)
		timed.PredictUpdate(pc, taken)
		warmed.Warm(pc, taken)
	}
	if warmed.Lookups != 0 || warmed.Mispredicts != 0 {
		t.Fatalf("Warm recorded stats: lookups=%d mispredicts=%d", warmed.Lookups, warmed.Mispredicts)
	}
	for i := 0; i < 2000; i++ {
		pc := pcs[rng.Uint64n(uint64(len(pcs)))]
		taken := rng.Bool(0.6)
		pt := timed.PredictUpdate(pc, taken)
		pw := warmed.PredictUpdate(pc, taken)
		if pt != pw {
			t.Fatalf("prediction diverged at probe %d: timed=%v warmed=%v", i, pt, pw)
		}
	}
}

// TestBTBWarmMatchesProbe checks Warm leaves the same contents as Probe
// (hits on a re-probe) without recording hit/miss statistics.
func TestBTBWarmMatchesProbe(t *testing.T) {
	b := NewBTB(64, 4)
	for pc := uint64(0); pc < 32; pc++ {
		b.Warm(0x4000+pc*4, 0x8000+pc*4)
	}
	if b.Hits != 0 || b.Misses != 0 {
		t.Fatalf("Warm recorded stats: hits=%d misses=%d", b.Hits, b.Misses)
	}
	for pc := uint64(0); pc < 32; pc++ {
		target, ok := b.Lookup(0x4000 + pc*4)
		if !ok || target != 0x8000+pc*4 {
			t.Fatalf("warmed entry %d: ok=%v target=%#x", pc, ok, target)
		}
	}
	// Warming a resident entry refreshes recency, exactly like a Probe hit.
	hits := b.Hits
	b.Warm(0x4000, 0x8000)
	if b.Hits != hits {
		t.Fatalf("Warm hit bumped Hits")
	}
}
