package workload

import (
	"testing"

	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/trace"
)

// runStack runs w on a default core with an Oracle-equivalent cycle-type
// classifier and returns the cycle stack.
func runStack(t *testing.T, w *Workload) profile.CycleStack {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 100_000_000
	core := cpu.New(cfg, w.Prog, w.Stream())
	for _, reg := range w.Prefault {
		core.MMU().PrefaultRange(reg.Base, reg.Size)
	}
	var stack profile.CycleStack
	var lastFlags struct {
		valid, mispred, flush, except bool
	}
	drain := 0.0
	cc := &classConsumer{onCycle: func(r *trace.Record) {
		if !r.ROBEmpty {
			if drain > 0 {
				stack.Add(profile.CatFrontend, drain)
				drain = 0
			}
			if r.CommitCount > 0 {
				stack.Add(profile.CatExecution, 1)
			} else if old := r.Oldest(); old != nil {
				kind := w.Prog.InstByIndex(int(old.InstIndex)).Kind
				stack.Add(profile.StallCategoryOf(kind), 1)
			}
		} else {
			switch {
			case lastFlags.valid && lastFlags.mispred:
				stack.Add(profile.CatMispredict, 1)
			case lastFlags.valid && (lastFlags.flush || lastFlags.except):
				stack.Add(profile.CatMiscFlush, 1)
			default:
				drain++
			}
		}
		if y := r.YoungestCommitting(); y != nil {
			lastFlags.valid = true
			lastFlags.mispred = y.Mispredicted
			lastFlags.flush = y.Flush
			lastFlags.except = false
		}
		if r.ExceptionRaised {
			lastFlags.valid = true
			lastFlags.mispred, lastFlags.flush, lastFlags.except = false, false, true
		}
	}}
	stats, err := core.Run(cc)
	if err != nil {
		t.Fatal(err)
	}
	stack.Total = float64(stats.Cycles)
	return stack
}

type classConsumer struct {
	onCycle func(*trace.Record)
}

func (c *classConsumer) OnCycle(r *trace.Record) { c.onCycle(r) }
func (c *classConsumer) Finish(uint64)           {}
