// Package workload provides the synthetic benchmark suite standing in for
// SPEC CPU2017 and PARSEC (§4): 27 parameterised programs with the paper's
// benchmark names, each tuned to land in its Fig. 7 class
// (compute-/flush-/stall-intensive), plus the hand-built Imagick case-study
// programs of §6.
//
// The substitution rationale (DESIGN.md): the paper's evaluation only
// depends on commit-stage dynamics — who commits together, who blocks the
// ROB head, why the ROB empties — so each synthetic program recreates its
// benchmark's dominant cycle types rather than its exact computation.
package workload

import (
	"fmt"

	"github.com/tipprof/tip/internal/program"
)

// Region is an address range a workload touches.
type Region struct {
	Base uint64
	Size uint64
}

// Workload is a generated benchmark: the program plus run metadata.
type Workload struct {
	// Name is the benchmark name (paper's Fig. 7 labels).
	Name string
	// Class is the expected Fig. 7 class: "Compute", "Flush" or "Stall".
	Class string
	// Prog is the program to execute.
	Prog *program.Program
	// Prefault lists data regions resident at start (demand paging is
	// modelled only for FaultRegion).
	Prefault []Region
	// TargetDynInsts is the approximate dynamic instruction count.
	TargetDynInsts uint64
	// Seed seeds the interpreter.
	Seed uint64
}

// Stream returns a fresh dynamic-instruction stream for the workload. Every
// call starts from the workload's initial state, so one loaded Workload can
// feed any number of simulations.
func (w *Workload) Stream() program.Stream {
	return program.NewInterp(w.Prog, w.Seed)
}

// Reset restores the workload to its just-loaded state so it can be
// re-streamed. Streams are already constructed fresh per Stream call and the
// generated Prog/Prefault tables are immutable, so today this is a no-op; it
// exists as the documented contract point for re-running a workload without
// paying LoadScaled again, should workloads ever grow mutable state.
func (w *Workload) Reset() {}

// Spec names a benchmark and its generator parameters.
type Spec struct {
	Name   string
	Class  string
	Params Params
}

// Params are the knobs of the generic benchmark generator.
type Params struct {
	// TargetDynInsts is the approximate dynamic instruction budget.
	TargetDynInsts uint64

	// HotFuncs is the number of hot leaf functions main iterates over.
	HotFuncs int
	// BlocksPerFunc is the number of work blocks per hot function.
	BlocksPerFunc int
	// InstsPerBlock is the straight-line instruction count per block.
	InstsPerBlock int
	// InnerTrip is the hot functions' inner-loop trip count.
	InnerTrip int

	// ColdFuncs adds straight-line functions called every ColdPeriod
	// outer iterations (I-cache pressure); ColdInsts sizes each.
	ColdFuncs  int
	ColdInsts  int
	ColdPeriod int

	// ILP is the number of independent dependence chains (1 = fully
	// serial, 6+ = wide).
	ILP int

	// Instruction mix fractions (of the work instructions).
	FracLoad  float64
	FracStore float64
	FracFP    float64
	FracMul   float64
	FracDiv   float64

	// FootprintBytes sizes the main data region; Pattern selects its
	// address behaviour. HotLoadFrac of loads go to a small
	// stack-like region that always hits the L1.
	FootprintBytes uint64
	Pattern        program.MemPattern
	HotLoadFrac    float64

	// RandomBranchFrac is the fraction of inter-block branches that are
	// hard to predict; RandomTakenP is their taken probability.
	RandomBranchFrac float64
	RandomTakenP     float64

	// CSRPerIteration inserts that many flushing CSR pairs per hot
	// function iteration (imagick-style commit-time flushes).
	CSRPerIteration int
	// FencePerIteration inserts serializing fences.
	FencePerIteration int

	// FaultPages sizes a demand-faulted region touched once per outer
	// iteration (page-fault exceptions).
	FaultPages int

	// Phased alternates load-heavy and compute-heavy inner phases with
	// a fixed period (time-varying behaviour that aliases with periodic
	// sampling — §5.2 random-sampling sensitivity).
	Phased bool
}

func (p *Params) defaults() {
	if p.TargetDynInsts == 0 {
		p.TargetDynInsts = 2_000_000
	}
	if p.HotFuncs == 0 {
		p.HotFuncs = 2
	}
	if p.BlocksPerFunc == 0 {
		p.BlocksPerFunc = 3
	}
	if p.InstsPerBlock == 0 {
		p.InstsPerBlock = 12
	}
	if p.InnerTrip == 0 {
		p.InnerTrip = 16
	}
	if p.ILP == 0 {
		p.ILP = 4
	}
	if p.FootprintBytes == 0 {
		p.FootprintBytes = 16 << 10
	}
	if p.RandomTakenP == 0 {
		p.RandomTakenP = 0.5
	}
	if p.ColdPeriod == 0 {
		p.ColdPeriod = 16
	}
}

// Data-region layout constants.
const (
	mainRegionBase  = 0x1_0000_0000
	stackRegionBase = 0x7_0000_0000
	stackRegionSize = 4 << 10
	storeRegionGap  = 0x1_0000_0000
	faultRegionBase = 0xf_0000_0000
)

// Generate builds the workload described by spec with the given seed.
func Generate(spec Spec, seed uint64) (*Workload, error) {
	p := spec.Params
	p.defaults()

	g := &generator{p: p, b: program.NewBuilder(spec.Name)}
	g.build()
	prog, err := g.b.Build(0)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
	}
	w := &Workload{
		Name:           spec.Name,
		Class:          spec.Class,
		Prog:           prog,
		TargetDynInsts: p.TargetDynInsts,
		Seed:           seed,
		Prefault: []Region{
			{Base: mainRegionBase, Size: p.FootprintBytes},
			{Base: mainRegionBase + storeRegionGap, Size: p.FootprintBytes},
			{Base: stackRegionBase, Size: stackRegionSize},
		},
	}
	return w, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(spec Spec, seed uint64) *Workload {
	w, err := Generate(spec, seed)
	if err != nil {
		panic(err)
	}
	return w
}
