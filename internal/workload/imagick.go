package workload

import (
	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
)

// Imagick builds the §6 case-study program. The original version's ceil and
// floor wrap their floating-point rounding in frflags/fsflags accesses to
// the FP status register: on the modelled BOOM core the fsflags write
// flushes the pipeline at commit (the core does not rename status
// registers) and both accesses serialize dispatch. The optimized version
// replaces both with nops at the same addresses — exactly the paper's fix —
// which removes the flushes and lets the core hide latencies again
// (second-order effect: MeanShiftImage itself also speeds up).
//
// Function set (the four hottest functions of Fig. 13): MeanShiftImage
// (calls ceil and floor per pixel), ceil, floor, and MorphologyApply.
func Imagick(optimized bool, seed uint64) *Workload {
	return ImagickScaled(optimized, seed, 700)
}

// ImagickScaled is Imagick with an explicit outer-iteration count (the
// default 700 gives ~2.5 M dynamic instructions; tests use smaller runs).
func ImagickScaled(optimized bool, seed uint64, outerIters int) *Workload {
	if outerIters < 1 {
		outerIters = 1
	}
	b := program.NewBuilder(imagickName(optimized))

	handler := buildImagickHandler(b)

	imageRegion := program.MemBehavior{
		Base: mainRegionBase, Size: 2 << 20, Pattern: program.MemStride, Stride: 8,
	}
	kernelRegion := program.MemBehavior{
		Base: mainRegionBase + storeRegionGap, Size: 16 << 10,
		Pattern: program.MemStride, Stride: 8,
	}
	outRegion := program.MemBehavior{
		Base: mainRegionBase + 2*storeRegionGap, Size: 2 << 20,
		Pattern: program.MemStride, Stride: 8,
	}

	ceil := buildRoundFn(b, "ceil", optimized)
	floor := buildRoundFn(b, "floor", optimized)

	// MeanShiftImage: per-pixel loop — a wide-ILP window computation
	// (8 independent FP chains plus pixel loads) that calls ceil and
	// floor to clamp the window bounds.
	mean := b.Func("MeanShiftImage")
	m0 := mean.NewBlock()
	emitWindowMath(m0, imageRegion, 0)
	m0.Call(ceil)
	m1 := mean.NewBlock()
	emitWindowMath(m1, imageRegion, 1)
	m1.Call(floor)
	// The third window block samples the image at the shifted window
	// position — a data-dependent (random) access whose L1/L2 mix gives
	// real programs' timing jitter.
	gatherRegion := program.MemBehavior{
		Base: mainRegionBase, Size: 96 << 10, Pattern: program.MemRandom,
	}
	m2 := mean.NewBlock()
	m2.Load(isa.FPReg(15), isa.IntReg(regBase), gatherRegion)
	emitWindowMath(m2, imageRegion, 2)
	m2.Store(isa.IntReg(4), isa.IntReg(regBase), outRegion)
	m2.LoopBack(0, 24, isa.IntReg(1))
	m3 := mean.NewBlock()
	m3.Ret()

	// MorphologyApply: convolution-style loop, no status-register traffic.
	morph := b.Func("MorphologyApply")
	p0 := morph.NewBlock()
	p0.Load(isa.FPReg(1), isa.IntReg(regBase), imageRegion)
	p0.Load(isa.FPReg(2), isa.IntReg(regBase), kernelRegion)
	p0.Op(isa.KindFPMul, isa.FPReg(3), isa.FPReg(1), isa.FPReg(2))
	p0.Op(isa.KindFPALU, isa.FPReg(4), isa.FPReg(3), isa.FPReg(4))
	p0.Load(isa.FPReg(5), isa.IntReg(regBase), imageRegion)
	p0.Op(isa.KindFPMul, isa.FPReg(6), isa.FPReg(5), isa.FPReg(2))
	p0.Op(isa.KindFPALU, isa.FPReg(7), isa.FPReg(6), isa.FPReg(7))
	p0.Op(isa.KindIntALU, isa.IntReg(1), isa.IntReg(1))
	p0.Op(isa.KindIntALU, isa.IntReg(2), isa.IntReg(2))
	p0.Branch(1, program.BranchBehavior{Mode: program.BrPattern,
		Pattern: []bool{true, true, false, true}}, isa.IntReg(1))
	p1 := morph.NewBlock()
	p1.Store(isa.IntReg(2), isa.IntReg(regBase), outRegion)
	p1.Op(isa.KindFPALU, isa.FPReg(8), isa.FPReg(7), isa.FPReg(4))
	p1.LoopBack(0, 141, isa.IntReg(2))
	p2 := morph.NewBlock()
	p2.Ret()

	// main: iterate MeanShiftImage then MorphologyApply.
	main := b.Func("main")
	e := main.NewBlock()
	e.Op(isa.KindIntALU, isa.IntReg(regBase))
	c0 := main.NewBlock()
	c0.Call(mean)
	c1 := main.NewBlock()
	c1.Call(morph)
	tail := main.NewBlock()
	tail.LoopBack(c0.Index(), outerIters, isa.IntReg(regBase))
	rb := main.NewBlock()
	rb.Ret()

	b.SetEntry(main)
	b.SetHandler(handler)
	prog := b.MustBuild(0)

	return &Workload{
		Name:  imagickName(optimized),
		Class: "Flush",
		Prog:  prog,
		Prefault: []Region{
			{Base: imageRegion.Base, Size: imageRegion.Size},
			{Base: kernelRegion.Base, Size: kernelRegion.Size},
			{Base: outRegion.Base, Size: outRegion.Size},
		},
		TargetDynInsts: uint64(outerIters) * 3500,
		Seed:           seed,
	}
}

// emitWindowMath emits ~20 instructions of wide-ILP pixel math: loads from
// the image plus 8 independent FP accumulation chains. Without flushes the
// core sustains high IPC on this code; with the ceil/floor flushes it
// cannot — the Fig. 13 second-order effect.
func emitWindowMath(blk *program.BlockBuilder, image program.MemBehavior, phase int) {
	for c := 0; c < 6; c++ {
		f := isa.FPReg(1 + (phase*4+c)%8)
		g := isa.FPReg(9 + (phase+c)%4)
		blk.Load(g, isa.IntReg(regBase), image)
		blk.Op(isa.KindFPMul, f, f, g)
		blk.Op(isa.KindFPALU, f, f, g)
		d := isa.IntReg(1 + (phase*4+c)%6)
		blk.Op(isa.KindIntALU, d, d)
		blk.Op(isa.KindIntALU, isa.IntReg(7+(phase+c)%2), isa.IntReg(7+(phase+c)%2))
	}
}

func imagickName(optimized bool) string {
	if optimized {
		return "imagick-opt"
	}
	return "imagick"
}

// buildRoundFn emits ceil/floor: FP rounding wrapped in status-register
// save/restore. frflags (a read) serializes dispatch; fsflags (a write)
// serializes and flushes the pipeline when it commits. In the optimized
// variant both become nops at the same addresses (the paper's fix preserves
// the binary layout).
func buildRoundFn(b *program.Builder, name string, optimized bool) *program.FuncBuilder {
	f := b.Func(name)
	blk := f.NewBlock()
	if optimized {
		blk.Nop() // was frflags
	} else {
		blk.CSR("frflags", isa.IntReg(6), false)
	}
	blk.Op(isa.KindFPALU, isa.FPReg(10), isa.FPReg(1)).Mnemonic = "fcvt.l.d"
	blk.Op(isa.KindFPALU, isa.FPReg(11), isa.FPReg(10)).Mnemonic = "fcvt.d.l"
	blk.Op(isa.KindFPALU, isa.FPReg(12), isa.FPReg(11), isa.FPReg(1)).Mnemonic = "feq.d"
	blk.Op(isa.KindFPALU, isa.FPReg(13), isa.FPReg(12), isa.FPReg(11)).Mnemonic = "fadd.d"
	if optimized {
		blk.Nop() // was fsflags
	} else {
		blk.CSR("fsflags", isa.IntReg(0), true)
	}
	blk.Ret()
	return f
}

func buildImagickHandler(b *program.Builder) *program.FuncBuilder {
	f := b.Func("os_pagefault_handler")
	blk := f.NewBlock()
	for i := 0; i < 24; i++ {
		d := isa.IntReg(1 + i%6)
		blk.Op(isa.KindIntALU, d, d)
	}
	blk.Ret()
	return f
}
