package workload

import (
	"testing"

	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
)

func TestAllSpecsGenerate(t *testing.T) {
	for _, spec := range Specs() {
		if spec.Name == "imagick" {
			continue // hand-built, covered below
		}
		w, err := Generate(spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if w.Prog.NumInsts() == 0 {
			t.Fatalf("%s: empty program", spec.Name)
		}
		if w.Prog.Handler() == nil {
			t.Fatalf("%s: no OS handler", spec.Name)
		}
	}
}

func TestSuiteHas27Benchmarks(t *testing.T) {
	if n := len(Specs()); n != 27 {
		t.Fatalf("suite has %d benchmarks, want 27", n)
	}
	classes := map[string]int{}
	for _, s := range Specs() {
		classes[s.Class]++
	}
	// Fig. 7: 6 compute, 8 flush, 13 stall.
	if classes["Compute"] != 6 || classes["Flush"] != 8 || classes["Stall"] != 13 {
		t.Fatalf("class counts = %v, want 6/8/13", classes)
	}
}

func TestNamesUniqueAndLookup(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate benchmark %s", n)
		}
		seen[n] = true
		if _, ok := ByName(n); !ok {
			t.Fatalf("ByName(%s) failed", n)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName accepted unknown name")
	}
}

func TestLoadDispatchesImagick(t *testing.T) {
	w, err := Load("imagick", 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "imagick" {
		t.Fatalf("name = %s", w.Name)
	}
	opt, err := Load("imagick-opt", 1)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Name != "imagick-opt" {
		t.Fatalf("name = %s", opt.Name)
	}
	if _, err := Load("nope", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func countDynInsts(t *testing.T, w *Workload, limit uint64) uint64 {
	t.Helper()
	it := w.Stream()
	n := uint64(0)
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
		if n > limit {
			t.Fatalf("%s: stream exceeded %d instructions", w.Name, limit)
		}
	}
	return n
}

func TestDynamicLengthNearTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, spec := range Specs() {
		if spec.Name == "imagick" {
			continue
		}
		spec.Params.TargetDynInsts = 200_000
		w := MustGenerate(spec, 1)
		n := countDynInsts(t, w, 2_000_000)
		if n < 100_000 || n > 500_000 {
			t.Errorf("%s: %d dynamic insts for a 200k target", spec.Name, n)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	spec, _ := ByName("deepsjeng")
	spec.Params.TargetDynInsts = 50_000
	w := MustGenerate(spec, 7)
	a, b := w.Stream(), w.Stream()
	for i := 0; i < 60_000; i++ {
		da, oka := a.Next()
		db, okb := b.Next()
		if oka != okb {
			t.Fatal("stream lengths differ")
		}
		if !oka {
			break
		}
		if da.SI != db.SI || da.Taken != db.Taken || da.MemAddr != db.MemAddr {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDifferentStreams(t *testing.T) {
	spec, _ := ByName("nab") // random branches: seed-sensitive
	spec.Params.TargetDynInsts = 50_000
	w1 := MustGenerate(spec, 1)
	w2 := MustGenerate(spec, 2)
	a, b := w1.Stream(), w2.Stream()
	diff := false
	for i := 0; i < 20_000; i++ {
		da, oka := a.Next()
		db, okb := b.Next()
		if !oka || !okb {
			break
		}
		if da.SI != db.SI || da.Taken != db.Taken {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSameSpecSameProgram(t *testing.T) {
	spec, _ := ByName("gcc")
	a := MustGenerate(spec, 1)
	b := MustGenerate(spec, 2)
	if a.Prog.NumInsts() != b.Prog.NumInsts() {
		t.Fatal("structural generation not deterministic")
	}
	for i := 0; i < a.Prog.NumInsts(); i++ {
		if a.Prog.InstByIndex(i).Kind != b.Prog.InstByIndex(i).Kind {
			t.Fatalf("structure differs at inst %d", i)
		}
	}
}

func TestChaseLoadsAreDependent(t *testing.T) {
	spec, _ := ByName("mcf")
	w := MustGenerate(spec, 1)
	found := false
	for i := 0; i < w.Prog.NumInsts(); i++ {
		in := w.Prog.InstByIndex(i)
		if in.Kind == isa.KindLoad && in.Mem.Pattern == program.MemChase {
			if in.Srcs[0] != in.Dst {
				t.Fatalf("chase load at %#x is not self-dependent", in.PC)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("mcf has no chase loads")
	}
}

func TestColdCodeGrowsFootprint(t *testing.T) {
	small, _ := ByName("lbm")
	big, _ := ByName("gcc")
	ws := MustGenerate(small, 1)
	wb := MustGenerate(big, 1)
	if wb.Prog.CodeBytes() < 2*ws.Prog.CodeBytes() {
		t.Fatalf("gcc code %d B not much larger than lbm %d B",
			wb.Prog.CodeBytes(), ws.Prog.CodeBytes())
	}
}

func TestImagickStructure(t *testing.T) {
	w := Imagick(false, 1)
	var hasFr, hasFs bool
	names := map[string]bool{}
	for _, f := range w.Prog.Funcs {
		names[f.Name] = true
	}
	for _, n := range []string{"MeanShiftImage", "ceil", "floor", "MorphologyApply", "main"} {
		if !names[n] {
			t.Fatalf("imagick missing function %s", n)
		}
	}
	for i := 0; i < w.Prog.NumInsts(); i++ {
		in := w.Prog.InstByIndex(i)
		switch in.Mnemonic {
		case "frflags":
			hasFr = true
			// frflags is a status read: it serializes dispatch but
			// does not flush at commit.
			if in.FlushAtCommit {
				t.Fatal("frflags should not flush")
			}
			if !in.Kind.IsSerializing() {
				t.Fatal("frflags should serialize")
			}
		case "fsflags":
			hasFs = true
			if !in.FlushAtCommit {
				t.Fatal("fsflags does not flush")
			}
		}
	}
	if !hasFr || !hasFs {
		t.Fatal("imagick missing status-register accesses")
	}
}

func TestImagickOptSameLayoutNoCSRs(t *testing.T) {
	orig := Imagick(false, 1)
	opt := Imagick(true, 1)
	if orig.Prog.NumInsts() != opt.Prog.NumInsts() {
		t.Fatalf("optimized layout differs: %d vs %d insts",
			orig.Prog.NumInsts(), opt.Prog.NumInsts())
	}
	for i := 0; i < opt.Prog.NumInsts(); i++ {
		in := opt.Prog.InstByIndex(i)
		if in.Kind == isa.KindCSR {
			t.Fatalf("optimized imagick still has a CSR at %#x", in.PC)
		}
		if orig.Prog.InstByIndex(i).PC != in.PC {
			t.Fatal("addresses differ between variants")
		}
	}
}

func TestImagickStreamsEnd(t *testing.T) {
	for _, opt := range []bool{false, true} {
		w := Imagick(opt, 1)
		n := countDynInsts(t, w, 10_000_000)
		if n < 200_000 {
			t.Fatalf("imagick(opt=%v) only %d insts", opt, n)
		}
	}
}

// TestSuiteClassesAtScale runs every benchmark at reduced scale through the
// core and checks the Fig. 7 classification. The full-scale validation is
// cmd/tipbench's Fig07 table.
func TestSuiteClassesAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite")
	}
	// Import cycle prevents using the tip facade here; drive cpu directly.
	// Benchmarks near the class thresholds (exec 50%, flush 3%) may flip
	// at reduced scale because warmup weighs more; allow those within a
	// small margin. Full-scale classification is exact (results_full.txt).
	for _, name := range Names() {
		w, err := LoadScaled(name, 1, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		stack := runStack(t, w)
		class := stack.Class()
		if class == w.Class {
			continue
		}
		execMargin := stack.ExecutionShare() - 0.5
		flushMargin := stack.FlushShare() - 0.03
		borderline := (execMargin > -0.08 && execMargin < 0.08) ||
			(flushMargin > -0.02 && flushMargin < 0.02)
		if !borderline {
			t.Errorf("%s classified %s at reduced scale (exec %.1f%%, flush %.1f%%), want %s",
				name, class, stack.ExecutionShare()*100, stack.FlushShare()*100, w.Class)
		}
	}
}
