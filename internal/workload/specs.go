package workload

import "github.com/tipprof/tip/internal/program"

// Specs returns the 27-benchmark suite in the paper's Fig. 7 order
// (compute-intensive, then flush-intensive, then stall-intensive). Each
// entry is a synthetic stand-in tuned to reproduce its benchmark's dominant
// commit-stage cycle types; see DESIGN.md for the substitution rationale.
func Specs() []Spec {
	return []Spec{
		// --- Compute-intensive: >50% of cycles commit instructions.
		{Name: "exchange2", Class: "Compute", Params: Params{
			ILP: 6, BlocksPerFunc: 4, InstsPerBlock: 14,
			FracLoad: 0.12, FracMul: 0.05, HotLoadFrac: 0.6,
			FootprintBytes: 48 << 10, RandomBranchFrac: 0.05,
		}},
		{Name: "x264", Class: "Compute", Params: Params{
			ILP: 5, FracLoad: 0.20, FracMul: 0.10, HotLoadFrac: 0.5,
			FootprintBytes: 256 << 10, RandomBranchFrac: 0.30,
		}},
		{Name: "deepsjeng", Class: "Compute", Params: Params{
			ILP: 6, FracLoad: 0.15, FootprintBytes: 192 << 10,
			Pattern: program.MemRandom, HotLoadFrac: 0.6,
			RandomBranchFrac: 0.15,
		}},
		{Name: "namd", Class: "Compute", Params: Params{
			ILP: 10, FracFP: 0.40, FracMul: 0.10, FracLoad: 0.18,
			HotLoadFrac: 0.6, FootprintBytes: 256 << 10,
			Pattern: program.MemRandom, RandomBranchFrac: 0.08,
		}},
		{Name: "leela", Class: "Compute", Params: Params{
			ILP: 6, FracLoad: 0.18, FootprintBytes: 384 << 10,
			Pattern: program.MemRandom, HotLoadFrac: 0.6,
			RandomBranchFrac: 0.12,
		}},
		{Name: "swaptions", Class: "Compute", Params: Params{
			ILP: 10, FracFP: 0.28, FracDiv: 0.01, FracLoad: 0.16,
			HotLoadFrac: 0.6, FootprintBytes: 96 << 10,
			Pattern: program.MemRandom, RandomBranchFrac: 0.30,
		}},

		// --- Flush-intensive: >3% of cycles in pipeline flushes.
		// (imagick is hand-built in imagick.go; its spec appears here so
		// suites iterate uniformly.)
		{Name: "imagick", Class: "Flush", Params: Params{}},
		{Name: "nab", Class: "Flush", Params: Params{
			ILP: 6, BlocksPerFunc: 6, FracFP: 0.20, FracLoad: 0.25,
			HotLoadFrac: 0.4, FootprintBytes: 768 << 10,
			RandomBranchFrac: 0.8, Phased: true,
		}},
		{Name: "perlbench", Class: "Flush", Params: Params{
			ILP: 5, BlocksPerFunc: 6, FracLoad: 0.25,
			FootprintBytes: 1 << 20, Pattern: program.MemRandom,
			HotLoadFrac: 0.4, RandomBranchFrac: 0.8, Phased: true,
			ColdFuncs: 56, ColdInsts: 128, ColdPeriod: 2,
		}},
		{Name: "fluidanimate", Class: "Flush", Params: Params{
			ILP: 5, BlocksPerFunc: 6, FracFP: 0.25, FracLoad: 0.25,
			HotLoadFrac: 0.4, FootprintBytes: 2 << 20,
			RandomBranchFrac: 0.8, Phased: true,
		}},
		{Name: "blackscholes", Class: "Flush", Params: Params{
			ILP: 6, BlocksPerFunc: 6, FracFP: 0.20, FracDiv: 0.01,
			FracLoad: 0.25, HotLoadFrac: 0.45, FootprintBytes: 640 << 10,
			RandomBranchFrac: 0.85, Phased: true,
		}},
		{Name: "povray", Class: "Flush", Params: Params{
			ILP: 6, BlocksPerFunc: 6, FracFP: 0.25, FracLoad: 0.22,
			HotLoadFrac: 0.5, FootprintBytes: 768 << 10,
			Pattern: program.MemRandom, RandomBranchFrac: 0.7, Phased: true,
			ColdFuncs: 8, ColdInsts: 96, ColdPeriod: 6,
		}},
		{Name: "bodytrack", Class: "Flush", Params: Params{
			ILP: 6, BlocksPerFunc: 6, FracFP: 0.20, FracLoad: 0.25,
			HotLoadFrac: 0.4, FootprintBytes: 1 << 20,
			RandomBranchFrac: 0.6, Phased: true,
		}},
		{Name: "gcc", Class: "Flush", Params: Params{
			ILP: 5, HotFuncs: 4, BlocksPerFunc: 8,
			FracLoad: 0.22, HotLoadFrac: 0.5, FootprintBytes: 512 << 10,
			Pattern: program.MemRandom, RandomBranchFrac: 0.7, Phased: true,
			ColdFuncs: 64, ColdInsts: 128, ColdPeriod: 2,
		}},

		// --- Stall-intensive: dominated by memory/functional stalls.
		{Name: "canneal", Class: "Stall", Params: Params{
			ILP: 2, FracLoad: 0.30, FootprintBytes: 32 << 20,
			Pattern: program.MemChase, RandomBranchFrac: 0.05,
		}},
		{Name: "lbm", Class: "Stall", Params: Params{
			ILP: 4, BlocksPerFunc: 6, FracLoad: 0.30, FracStore: 0.20,
			FracFP: 0.25, FootprintBytes: 64 << 20,
		}},
		{Name: "mcf", Class: "Stall", Params: Params{
			ILP: 1, FracLoad: 0.35, FootprintBytes: 64 << 20,
			Pattern: program.MemChase, RandomBranchFrac: 0.08,
			FaultPages: 16,
		}},
		{Name: "fotonik3d", Class: "Stall", Params: Params{
			ILP: 3, FracFP: 0.30, FracLoad: 0.30, FracStore: 0.10,
			FootprintBytes: 32 << 20, Phased: true,
		}},
		{Name: "bwaves", Class: "Stall", Params: Params{
			ILP: 4, FracFP: 0.35, FracLoad: 0.30, FracStore: 0.15,
			FootprintBytes: 48 << 20,
		}},
		{Name: "omnetpp", Class: "Stall", Params: Params{
			ILP: 2, FracLoad: 0.30, FootprintBytes: 24 << 20,
			Pattern: program.MemRandom, RandomBranchFrac: 0.15,
			FaultPages: 32,
		}},
		{Name: "roms", Class: "Stall", Params: Params{
			ILP: 4, FracFP: 0.30, FracLoad: 0.28, FracStore: 0.12,
			FootprintBytes: 32 << 20,
		}},
		{Name: "streamcluster", Class: "Stall", Params: Params{
			ILP: 2, FracLoad: 0.35, FootprintBytes: 16 << 20,
			Phased: true,
		}},
		{Name: "xalancbmk", Class: "Stall", Params: Params{
			ILP: 2, FracLoad: 0.30, FootprintBytes: 8 << 20,
			Pattern: program.MemRandom, RandomBranchFrac: 0.10,
			ColdFuncs: 32, ColdInsts: 96, ColdPeriod: 2, FaultPages: 32,
		}},
		{Name: "wrf", Class: "Stall", Params: Params{
			ILP: 3, FracFP: 0.30, FracLoad: 0.25, FracStore: 0.10,
			FootprintBytes: 24 << 20, ColdFuncs: 8, ColdInsts: 96, ColdPeriod: 8,
		}},
		{Name: "parest", Class: "Stall", Params: Params{
			ILP: 3, FracFP: 0.25, FracLoad: 0.30,
			FootprintBytes: 16 << 20, Pattern: program.MemRandom,
		}},
		{Name: "cam4", Class: "Stall", Params: Params{
			ILP: 3, FracFP: 0.30, FracLoad: 0.25, FracStore: 0.08,
			FootprintBytes: 24 << 20, ColdFuncs: 12, ColdInsts: 96, ColdPeriod: 6,
		}},
		{Name: "cactuBSSN", Class: "Stall", Params: Params{
			ILP: 4, BlocksPerFunc: 8, InstsPerBlock: 16,
			FracFP: 0.35, FracLoad: 0.30, FracStore: 0.08,
			FootprintBytes: 40 << 20,
		}},
	}
}

// ByName returns the spec with the given benchmark name.
func ByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists the suite's benchmark names in Fig. 7 order.
func Names() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Load generates the named workload (dispatching imagick to its hand-built
// case-study program).
func Load(name string, seed uint64) (*Workload, error) {
	return LoadScaled(name, seed, 0)
}

// LoadScaled is Load with an approximate dynamic-instruction budget
// override (0 keeps each benchmark's default ~2M-instruction scale).
func LoadScaled(name string, seed uint64, targetDynInsts uint64) (*Workload, error) {
	switch name {
	case "imagick", "imagick-opt":
		outer := 700
		if targetDynInsts > 0 {
			outer = int(targetDynInsts / 3500)
		}
		return ImagickScaled(name == "imagick-opt", seed, outer), nil
	}
	spec, ok := ByName(name)
	if !ok {
		return nil, errUnknown(name)
	}
	if targetDynInsts > 0 {
		spec.Params.TargetDynInsts = targetDynInsts
	}
	return Generate(spec, seed)
}

type unknownError string

func (e unknownError) Error() string { return "workload: unknown benchmark " + string(e) }

func errUnknown(name string) error { return unknownError(name) }
