package workload

import (
	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/xrand"
)

// generator builds one benchmark program. The structural RNG is fixed so a
// given Params always produces the same program; only the interpreter seed
// varies dynamic behaviour.
type generator struct {
	p   Params
	b   *program.Builder
	rng *xrand.Source

	intChain int
	fpChain  int
	// lastLoadDst is the destination of the most recent load; random
	// (data-dependent) branches read it so mispredicted branches resolve
	// late, draining the ROB — the behaviour that produces the paper's
	// flush cycles (Fig. 4c).
	lastLoadDst isa.Reg
	// randAcc allocates hard branches deterministically: every branch
	// site adds RandomBranchFrac, and a site becomes data-dependent
	// random when the accumulator crosses 1. This keeps the realized
	// fraction exact even with few branch sites.
	randAcc float64
}

const structuralSeed = 0xC0DEBA5E

func (g *generator) build() {
	g.rng = xrand.New(structuralSeed)
	g.randAcc = 0.5 // centre the hard-branch allocator

	handler := g.buildHandler()

	hot := make([]*program.FuncBuilder, g.p.HotFuncs)
	for i := range hot {
		hot[i] = g.buildHotFunc(i)
	}
	cold := make([]*program.FuncBuilder, g.p.ColdFuncs)
	for i := range cold {
		cold[i] = g.buildColdFunc(i)
	}
	main := g.buildMain(hot, cold)

	g.b.SetEntry(main)
	g.b.SetHandler(handler)
}

// memBehaviors for the three data regions.
func (g *generator) mainLoad() program.MemBehavior {
	return program.MemBehavior{
		Base: mainRegionBase, Size: g.p.FootprintBytes,
		Pattern: g.p.Pattern, Stride: 64,
	}
}

func (g *generator) mainStore() program.MemBehavior {
	return program.MemBehavior{
		Base: mainRegionBase + storeRegionGap, Size: g.p.FootprintBytes,
		Pattern: g.p.Pattern, Stride: 64,
	}
}

func (g *generator) stackLoad() program.MemBehavior {
	return program.MemBehavior{
		Base: stackRegionBase, Size: stackRegionSize,
		Pattern: program.MemStride, Stride: 8,
	}
}

// nextIntReg round-robins the integer dependence chains.
func (g *generator) nextIntReg() isa.Reg {
	r := isa.IntReg(1 + g.intChain%g.p.ILP)
	g.intChain++
	return r
}

func (g *generator) nextFPReg() isa.Reg {
	r := isa.FPReg(1 + g.fpChain%g.p.ILP)
	g.fpChain++
	return r
}

const (
	regBase  = 30 // x30: region base pointer, never redefined
	regFault = 29 // x29: fault-region pointer
)

// emitWork fills one block with InstsPerBlock mixed instructions.
// loadBoost scales the load and FP fractions (phased workloads alternate
// it: slow blocks are memory/FP-bound, fast blocks are wide integer code).
func (g *generator) emitWork(blk *program.BlockBuilder, loadBoost float64) {
	p := &g.p
	fpBoost := loadBoost
	if fpBoost > 1 {
		fpBoost = 1
	}
	// Vary block sizes (+/- 25%) so basic blocks differ like compiled
	// code and commit-group boundaries rotate across loop iterations.
	n := p.InstsPerBlock + g.rng.Intn(p.InstsPerBlock/2+1) - p.InstsPerBlock/4
	if n < 2 {
		n = 2
	}
	for i := 0; i < n; i++ {
		x := g.rng.Float64()
		switch {
		case x < p.FracLoad*loadBoost:
			mb := g.mainLoad()
			if g.rng.Float64() < p.HotLoadFrac {
				mb = g.stackLoad()
			}
			var dst, addr isa.Reg
			if mb.Pattern == program.MemChase {
				// Pointer chasing: the load's address depends on
				// its own previous value.
				dst = g.nextIntReg()
				addr = dst
			} else {
				dst = g.nextIntReg()
				addr = isa.IntReg(regBase)
			}
			blk.Load(dst, addr, mb)
			g.lastLoadDst = dst
		case x < (p.FracLoad*loadBoost + p.FracStore):
			val := g.nextIntReg()
			blk.Store(val, isa.IntReg(regBase), g.mainStore())
		case x < (p.FracLoad*loadBoost + p.FracStore + p.FracFP*fpBoost):
			d := g.nextFPReg()
			blk.Op(isa.KindFPALU, d, d, g.nextFPReg())
		case x < (p.FracLoad*loadBoost + p.FracStore + p.FracFP*fpBoost + p.FracMul):
			d := g.nextIntReg()
			if g.rng.Bool(0.5) && p.FracFP > 0 {
				fd := g.nextFPReg()
				blk.Op(isa.KindFPMul, fd, fd, g.nextFPReg())
			} else {
				blk.Op(isa.KindIntMul, d, d, g.nextIntReg())
			}
		case x < (p.FracLoad*loadBoost + p.FracStore + p.FracFP*fpBoost + p.FracMul + p.FracDiv):
			if p.FracFP > 0 {
				fd := g.nextFPReg()
				blk.Op(isa.KindFPDiv, fd, fd, g.nextFPReg())
			} else {
				d := g.nextIntReg()
				blk.Op(isa.KindIntDiv, d, d, g.nextIntReg())
			}
		default:
			d := g.nextIntReg()
			blk.Op(isa.KindIntALU, d, d, g.nextIntReg())
		}
	}
}

// buildHotFunc emits one hot leaf function: BlocksPerFunc work blocks
// connected by conditional branches, an inner loop, and a return.
func (g *generator) buildHotFunc(index int) *program.FuncBuilder {
	p := &g.p
	f := g.b.Func(hotFuncName(index))
	// Pre-create blocks: work blocks, loop tail, ret.
	blocks := make([]*program.BlockBuilder, p.BlocksPerFunc)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	tail := f.NewBlock()
	retb := f.NewBlock()

	for i, blk := range blocks {
		boost := 1.0
		fast := true
		if p.Phased {
			// Alternate load-heavy and compute-heavy blocks; with
			// the inner loop this creates regular phase behaviour,
			// and the fast blocks keep ROB occupancy low so their
			// mispredicted branches drain the ROB (visible flush
			// cycles, Fig. 4c).
			if (index+i)%2 == 0 {
				boost, fast = 1.8, false
			} else {
				boost, fast = 0.2, true
			}
		}
		g.emitWork(blk, boost)
		if p.CSRPerIteration > 0 && i < p.CSRPerIteration {
			blk.CSR("fsflags", g.nextIntReg(), true)
		}
		if p.FencePerIteration > 0 && i < p.FencePerIteration {
			blk.Fence()
		}
		// Terminator: branch towards the next block (sometimes
		// skipping one), hard or easy to predict per the mix.
		next := i + 1
		target := next
		if i+2 < len(blocks) && g.rng.Bool(0.5) {
			target = i + 2
		}
		if i == len(blocks)-1 {
			// Last work block falls into the loop tail.
			continue
		}
		if fast {
			g.randAcc += p.RandomBranchFrac
		}
		if fast && g.randAcc >= 1 {
			g.randAcc -= 1
			// Data-dependent branch. In phased code the branch
			// reads a short ALU chain (fast resolution while the
			// ROB is shallow); otherwise it reads the latest load.
			src := g.lastLoadDst
			if p.Phased || src == isa.RegZero {
				src = g.nextIntReg()
			}
			blk.Branch(target, program.BranchBehavior{Mode: program.BrRandom, P: p.RandomTakenP},
				src)
		} else {
			// Every site gets its own repeating pattern (length
			// 4-7, ~60% taken): diverse, predictable control flow
			// that keeps commit-group alignment rotating like real
			// loop nests do.
			pat := make([]bool, 4+g.rng.Intn(4))
			for k := range pat {
				pat[k] = g.rng.Bool(0.6)
			}
			blk.Branch(target, program.BranchBehavior{Mode: program.BrPattern, Pattern: pat},
				g.nextIntReg())
		}
	}
	tail.LoopBack(0, p.InnerTrip, isa.IntReg(regBase))
	retb.Ret()
	return f
}

func hotFuncName(i int) string {
	names := []string{"kernel_main", "kernel_aux", "kernel_edge", "kernel_init"}
	if i < len(names) {
		return names[i]
	}
	return names[0]
}

// buildColdFunc emits a straight-line rarely-called function (I-cache
// pressure).
func (g *generator) buildColdFunc(index int) *program.FuncBuilder {
	f := g.b.Func(coldFuncName(index))
	per := 16
	n := g.p.ColdInsts
	if n <= 0 {
		n = 64
	}
	for n > 0 {
		blk := f.NewBlock()
		c := per
		if c > n {
			c = n
		}
		for i := 0; i < c; i++ {
			d := g.nextIntReg()
			blk.Op(isa.KindIntALU, d, d)
		}
		n -= c
		if n == 0 {
			blk.Ret()
		}
	}
	return f
}

func coldFuncName(i int) string {
	return "helper_" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// buildMain emits the driver: an outer loop calling the hot functions,
// touching the fault region, and occasionally calling cold functions.
func (g *generator) buildMain(hot, cold []*program.FuncBuilder) *program.FuncBuilder {
	p := &g.p
	f := g.b.Func("main")

	entry := f.NewBlock()
	entry.Op(isa.KindIntALU, isa.IntReg(regBase))
	entry.Op(isa.KindIntALU, isa.IntReg(regFault))

	// Estimate instructions per outer iteration to size the loop.
	perHotIter := p.BlocksPerFunc*(p.InstsPerBlock+1) + 2 + p.CSRPerIteration + p.FencePerIteration
	perIter := uint64(p.HotFuncs * (p.InnerTrip*perHotIter + 2))
	outer := p.TargetDynInsts / perIter
	if outer == 0 {
		outer = 1
	}

	// Pre-create the loop body blocks.
	var callBlocks []*program.BlockBuilder
	for range hot {
		callBlocks = append(callBlocks, f.NewBlock())
	}
	var faultBlk *program.BlockBuilder
	if p.FaultPages > 0 {
		faultBlk = f.NewBlock()
	}
	type coldPair struct{ skip, call *program.BlockBuilder }
	var coldPairs []coldPair
	for range cold {
		coldPairs = append(coldPairs, coldPair{skip: f.NewBlock(), call: f.NewBlock()})
	}
	tail := f.NewBlock()
	retb := f.NewBlock()

	for i, cb := range callBlocks {
		cb.Call(hot[i])
	}
	if faultBlk != nil {
		faultBlk.Load(isa.IntReg(regFault), isa.IntReg(regFault), program.MemBehavior{
			Base: faultRegionBase, Size: uint64(p.FaultPages) * 4096, Stride: 4096,
		})
	}
	for i, cp := range coldPairs {
		// Pattern branch: taken (skip the call) ColdPeriod-1 of every
		// ColdPeriod iterations.
		pat := make([]bool, p.ColdPeriod)
		for k := range pat {
			pat[k] = true
		}
		pat[(i*7)%len(pat)] = false
		// Taken -> skip to the block after the call block.
		skipTarget := cp.call.Index() + 1
		cp.skip.Branch(skipTarget, program.BranchBehavior{Mode: program.BrPattern, Pattern: pat},
			isa.IntReg(regBase))
		cp.call.Call(cold[i])
	}
	tail.LoopBack(callBlocks[0].Index(), int(outer), isa.IntReg(regBase))
	retb.Ret()
	return f
}

// buildHandler emits the synthetic OS page-fault handler (pure ALU; its
// cycles are OS time, excluded from application profiles like the paper's
// 1.1% OS fraction).
func (g *generator) buildHandler() *program.FuncBuilder {
	f := g.b.Func("os_pagefault_handler")
	for b := 0; b < 3; b++ {
		blk := f.NewBlock()
		for i := 0; i < 14; i++ {
			d := isa.IntReg(1 + i%6)
			blk.Op(isa.KindIntALU, d, d)
		}
		if b == 2 {
			blk.Ret()
		}
	}
	return f
}
