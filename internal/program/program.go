// Package program defines the static program representation executed by the
// simulated core and the interpreter that turns it into a dynamic
// instruction stream.
//
// A Program is a list of Functions; a Function is a list of basic Blocks; a
// Block is straight-line code ending in an optional control-flow terminator.
// After Layout, every instruction has a unique PC and the package provides
// the symbolization maps (PC -> instruction -> basic block -> function) that
// profilers use to aggregate attributed cycles at the three granularities the
// paper evaluates (instruction, basic block, function).
//
// The package deliberately separates the *static* program (shared, immutable
// after Layout) from the *dynamic* execution state (Interp), so one program
// can be run many times — e.g. once per profiler sweep — deterministically.
package program

import (
	"fmt"
	"sort"

	"github.com/tipprof/tip/internal/isa"
)

// DefaultBase is the address of the first instruction after Layout. It is
// page-aligned and nonzero so PC 0 can mean "no instruction".
const DefaultBase uint64 = 0x10000

// MemPattern selects how a memory instruction generates addresses.
type MemPattern uint8

const (
	// MemStride walks the region with a fixed stride, wrapping.
	MemStride MemPattern = iota
	// MemRandom picks uniformly random cache-block-aligned addresses in
	// the region.
	MemRandom
	// MemChase walks a pseudo-random permutation of the region's cache
	// blocks (dependent-load pointer chasing behaviour).
	MemChase
)

// String names the pattern.
func (p MemPattern) String() string {
	switch p {
	case MemStride:
		return "stride"
	case MemRandom:
		return "random"
	case MemChase:
		return "chase"
	}
	return fmt.Sprintf("mempattern(%d)", uint8(p))
}

// MemBehavior describes the address stream of a static load or store.
type MemBehavior struct {
	// Base and Size delimit the data region in bytes.
	Base uint64
	Size uint64
	// Pattern selects the address generator.
	Pattern MemPattern
	// Stride is the byte stride for MemStride (defaults to 8).
	Stride uint64
}

// BranchMode selects how a conditional branch decides its direction.
type BranchMode uint8

const (
	// BrRandom takes the branch with probability P each execution.
	BrRandom BranchMode = iota
	// BrLoop is a loop back-edge: taken Trip-1 times, then not taken once
	// (then the counter resets). Trip must be >= 1.
	BrLoop
	// BrPattern cycles through the fixed Pattern of outcomes.
	BrPattern
)

// BranchBehavior describes the outcome stream of a conditional branch.
type BranchBehavior struct {
	Mode    BranchMode
	P       float64 // BrRandom: taken probability
	Trip    int     // BrLoop: iterations per loop instance
	Pattern []bool  // BrPattern: repeating outcome sequence
}

// TermKind is a block terminator's control-flow type.
type TermKind uint8

const (
	// TermFall falls through to the next block in the function.
	TermFall TermKind = iota
	// TermBranch is a conditional branch; taken goes to Target, not-taken
	// falls through. The branch instruction is the last in the block.
	TermBranch
	// TermJump unconditionally jumps to Target within the function.
	TermJump
	// TermCall calls Callee and falls through to the next block on
	// return. The call instruction is the last in the block.
	TermCall
	// TermRet returns from the function.
	TermRet
)

// Inst is one static instruction.
type Inst struct {
	// PC is assigned by Layout.
	PC uint64
	// Index is the global static-instruction index assigned by Layout
	// (dense, suitable for array-indexed profiles).
	Index int
	// Kind is the functional class.
	Kind isa.Kind
	// Mnemonic is an optional precise name (e.g. "frflags", "feq.d") used
	// in reports; defaults to Kind.String().
	Mnemonic string
	// Dst and Srcs are architectural registers. RegZero means unused.
	Dst  isa.Reg
	Srcs [2]isa.Reg
	// Mem describes the address stream for loads/stores/atomics.
	Mem *MemBehavior
	// Br describes the outcome stream if this is a conditional branch.
	Br *BranchBehavior
	// FlushAtCommit marks instructions that flush the pipeline when they
	// commit (CSR writes to unrenamed status registers on BOOM, §6).
	FlushAtCommit bool

	block *Block
}

// Name returns the mnemonic if set, else the kind name.
func (in *Inst) Name() string {
	if in.Mnemonic != "" {
		return in.Mnemonic
	}
	return in.Kind.String()
}

// Block returns the containing basic block.
func (in *Inst) Block() *Block { return in.block }

// Func returns the containing function.
func (in *Inst) Func() *Function { return in.block.fn }

// Block is a basic block: straight-line instructions plus a terminator.
type Block struct {
	// ID is the global basic-block index assigned by Layout.
	ID int
	// IndexInFunc is the block's position within its function.
	IndexInFunc int
	// Insts includes the terminator instruction (if the terminator has
	// one: branch, jump, call, ret).
	Insts []*Inst
	// Term describes control flow out of the block.
	Term TermKind
	// Target is the IndexInFunc of the taken/jump target block.
	Target int
	// Callee is the called function for TermCall.
	Callee *Function

	fn *Function
}

// Func returns the containing function.
func (b *Block) Func() *Function { return b.fn }

// Start returns the PC of the block's first instruction.
func (b *Block) Start() uint64 {
	if len(b.Insts) == 0 {
		return 0
	}
	return b.Insts[0].PC
}

// Function is a named sequence of basic blocks; entry is Blocks[0].
type Function struct {
	// Name is the symbol name (e.g. "MeanShiftImage").
	Name string
	// Index is the global function index assigned by Layout.
	Index int
	// Blocks lists the function's basic blocks in layout order.
	Blocks []*Block

	start, end uint64
}

// Start returns the function's first PC (valid after Layout).
func (f *Function) Start() uint64 { return f.start }

// End returns one past the function's last PC (valid after Layout).
func (f *Function) End() uint64 { return f.end }

// NumInsts returns the function's static instruction count.
func (f *Function) NumInsts() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Program is a complete laid-out program.
type Program struct {
	// Name identifies the workload (e.g. "imagick").
	Name string
	// Funcs lists all functions; Funcs[EntryIndex] is the entry point.
	Funcs []*Function
	// EntryIndex is the index of the entry function in Funcs.
	EntryIndex int
	// HandlerIndex is the index of the OS page-fault handler function, or
	// -1 if the program has none.
	HandlerIndex int

	base   uint64
	insts  []*Inst // dense, by Index
	blocks []*Block
}

// Base returns the address of the first instruction.
func (p *Program) Base() uint64 { return p.base }

// NumInsts returns the total static instruction count.
func (p *Program) NumInsts() int { return len(p.insts) }

// NumBlocks returns the total basic block count.
func (p *Program) NumBlocks() int { return len(p.blocks) }

// NumFuncs returns the function count.
func (p *Program) NumFuncs() int { return len(p.Funcs) }

// Entry returns the entry function.
func (p *Program) Entry() *Function { return p.Funcs[p.EntryIndex] }

// Handler returns the OS fault-handler function, or nil.
func (p *Program) Handler() *Function {
	if p.HandlerIndex < 0 {
		return nil
	}
	return p.Funcs[p.HandlerIndex]
}

// InstAt returns the instruction at pc, or nil if pc is not a valid
// instruction address.
func (p *Program) InstAt(pc uint64) *Inst {
	if pc < p.base {
		return nil
	}
	idx := (pc - p.base) / isa.InstBytes
	if idx >= uint64(len(p.insts)) {
		return nil
	}
	if (pc-p.base)%isa.InstBytes != 0 {
		return nil
	}
	return p.insts[idx]
}

// InstByIndex returns the instruction with the given global index.
func (p *Program) InstByIndex(i int) *Inst { return p.insts[i] }

// BlockByID returns the basic block with the given global ID.
func (p *Program) BlockByID(i int) *Block { return p.blocks[i] }

// FuncAt returns the function containing pc, or nil.
func (p *Program) FuncAt(pc uint64) *Function {
	i := sort.Search(len(p.Funcs), func(i int) bool { return p.Funcs[i].end > pc })
	if i < len(p.Funcs) && pc >= p.Funcs[i].start {
		return p.Funcs[i]
	}
	return nil
}

// CodeBytes returns the size of the program's text segment.
func (p *Program) CodeBytes() uint64 {
	return uint64(len(p.insts)) * isa.InstBytes
}

// Validate checks structural invariants: nonempty functions and blocks,
// in-range branch targets, terminator instruction kinds, and layout
// consistency. Workload generators call it after building.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("program %q has no functions", p.Name)
	}
	if p.EntryIndex < 0 || p.EntryIndex >= len(p.Funcs) {
		return fmt.Errorf("program %q entry index %d out of range", p.Name, p.EntryIndex)
	}
	if p.HandlerIndex >= len(p.Funcs) {
		return fmt.Errorf("program %q handler index %d out of range", p.Name, p.HandlerIndex)
	}
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("function %q has no blocks", f.Name)
		}
		for _, b := range f.Blocks {
			if len(b.Insts) == 0 {
				return fmt.Errorf("function %q block %d is empty", f.Name, b.IndexInFunc)
			}
			last := b.Insts[len(b.Insts)-1]
			switch b.Term {
			case TermBranch:
				if last.Kind != isa.KindBranch {
					return fmt.Errorf("%s/b%d: branch terminator but last inst is %v", f.Name, b.IndexInFunc, last.Kind)
				}
				if last.Br == nil {
					return fmt.Errorf("%s/b%d: branch without behaviour", f.Name, b.IndexInFunc)
				}
				if b.Target < 0 || b.Target >= len(f.Blocks) {
					return fmt.Errorf("%s/b%d: branch target %d out of range", f.Name, b.IndexInFunc, b.Target)
				}
				if b.IndexInFunc == len(f.Blocks)-1 {
					return fmt.Errorf("%s/b%d: conditional branch in last block cannot fall through", f.Name, b.IndexInFunc)
				}
			case TermJump:
				if last.Kind != isa.KindJump {
					return fmt.Errorf("%s/b%d: jump terminator but last inst is %v", f.Name, b.IndexInFunc, last.Kind)
				}
				if b.Target < 0 || b.Target >= len(f.Blocks) {
					return fmt.Errorf("%s/b%d: jump target %d out of range", f.Name, b.IndexInFunc, b.Target)
				}
			case TermCall:
				if last.Kind != isa.KindCall {
					return fmt.Errorf("%s/b%d: call terminator but last inst is %v", f.Name, b.IndexInFunc, last.Kind)
				}
				if b.Callee == nil {
					return fmt.Errorf("%s/b%d: call without callee", f.Name, b.IndexInFunc)
				}
				if b.IndexInFunc == len(f.Blocks)-1 {
					return fmt.Errorf("%s/b%d: call in last block cannot fall through on return", f.Name, b.IndexInFunc)
				}
			case TermRet:
				if last.Kind != isa.KindRet {
					return fmt.Errorf("%s/b%d: ret terminator but last inst is %v", f.Name, b.IndexInFunc, last.Kind)
				}
			case TermFall:
				if b.IndexInFunc == len(f.Blocks)-1 {
					return fmt.Errorf("%s/b%d: last block falls off the function end", f.Name, b.IndexInFunc)
				}
			default:
				return fmt.Errorf("%s/b%d: unknown terminator %d", f.Name, b.IndexInFunc, b.Term)
			}
			for _, in := range b.Insts {
				if in.Kind.IsMem() && in.Mem == nil {
					return fmt.Errorf("%s/b%d: memory inst %v without behaviour", f.Name, b.IndexInFunc, in.Kind)
				}
				if in.Mem != nil && in.Mem.Size == 0 {
					return fmt.Errorf("%s/b%d: memory region size 0", f.Name, b.IndexInFunc)
				}
			}
		}
		// The last block must not fall through; enforced above. Also check
		// the function is reachable-terminated: at least one ret or jump
		// that ends execution is the interpreter's job (it errors on
		// fall-off), so only structural checks here.
	}
	return nil
}

// layout assigns PCs, indices and builds lookup tables. Called by the
// Builder; exported indirectly through Builder.Build.
func (p *Program) layout(base uint64) {
	p.base = base
	pc := base
	instIdx := 0
	blockID := 0
	p.insts = p.insts[:0]
	p.blocks = p.blocks[:0]
	for fi, f := range p.Funcs {
		f.Index = fi
		f.start = pc
		for bi, b := range f.Blocks {
			b.fn = f
			b.IndexInFunc = bi
			b.ID = blockID
			blockID++
			p.blocks = append(p.blocks, b)
			for _, in := range b.Insts {
				in.block = b
				in.PC = pc
				in.Index = instIdx
				instIdx++
				p.insts = append(p.insts, in)
				pc += isa.InstBytes
			}
		}
		f.end = pc
	}
}
