package program

import (
	"fmt"

	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/xrand"
)

// DynInst is one dynamic (executed) instruction delivered by an Interp.
// It is a value type: the core copies it into pipeline structures.
type DynInst struct {
	// Seq is the dynamic sequence number, starting at 0.
	Seq uint64
	// SI is the static instruction.
	SI *Inst
	// Taken is the branch outcome (conditional branches only).
	Taken bool
	// NextPC is the address of the dynamically next instruction (the
	// correct-path successor); used to detect front-end mispredictions.
	NextPC uint64
	// MemAddr is the effective address for memory operations.
	MemAddr uint64
}

// PC returns the instruction address.
func (d *DynInst) PC() uint64 { return d.SI.PC }

// frame is one call-stack entry of the interpreter.
type frame struct {
	fn    *Function
	block int
	inst  int
	loops []int32 // per-block loop iteration counters
}

// MaxCallDepth bounds interpreter recursion so a miswired workload fails
// loudly instead of growing the stack forever.
const MaxCallDepth = 512

// Interp walks a program's CFG and produces its dynamic instruction stream.
// All stochastic choices draw from a private RNG, so the stream for a given
// (program, seed) pair is identical on every run — which is what lets every
// profiler observe the exact same execution.
type Interp struct {
	prog *Program
	rng  *xrand.Source

	stack []frame
	seq   uint64
	done  bool

	// Per-static-instruction dynamic state, indexed by Inst.Index.
	memCur []uint64 // current offset within the region
	brPos  []int32  // BrPattern position

	loopPool map[*Function][][]int32
}

// NewInterp returns an interpreter that executes the whole program from its
// entry function.
func NewInterp(p *Program, seed uint64) *Interp {
	return newInterp(p, p.Entry(), seed)
}

// NewInterpFunc returns an interpreter that executes just fn (used for the
// synthetic OS fault-handler stream).
func NewInterpFunc(p *Program, fn *Function, seed uint64) *Interp {
	return newInterp(p, fn, seed)
}

func newInterp(p *Program, fn *Function, seed uint64) *Interp {
	it := &Interp{
		prog:     p,
		rng:      xrand.New(seed),
		memCur:   make([]uint64, p.NumInsts()),
		brPos:    make([]int32, p.NumInsts()),
		loopPool: make(map[*Function][][]int32),
	}
	it.push(fn)
	// Seed stride cursors at zero and chase cursors at a random block so
	// chase streams differ across instructions.
	return it
}

func (it *Interp) push(fn *Function) {
	var loops []int32
	if pool := it.loopPool[fn]; len(pool) > 0 {
		loops = pool[len(pool)-1]
		it.loopPool[fn] = pool[:len(pool)-1]
		for i := range loops {
			loops[i] = 0
		}
	} else {
		loops = make([]int32, len(fn.Blocks))
	}
	it.stack = append(it.stack, frame{fn: fn, loops: loops})
}

func (it *Interp) pop() {
	top := &it.stack[len(it.stack)-1]
	it.loopPool[top.fn] = append(it.loopPool[top.fn], top.loops)
	it.stack = it.stack[:len(it.stack)-1]
}

// Done reports whether the stream has ended.
func (it *Interp) Done() bool { return it.done }

// Seq returns the number of instructions delivered so far.
func (it *Interp) Seq() uint64 { return it.seq }

// Next delivers the next dynamic instruction. ok is false once the entry
// function has returned.
func (it *Interp) Next() (d DynInst, ok bool) {
	if it.done {
		return DynInst{}, false
	}
	top := &it.stack[len(it.stack)-1]
	blk := top.fn.Blocks[top.block]
	in := blk.Insts[top.inst]

	d.Seq = it.seq
	it.seq++
	d.SI = in

	if in.Mem != nil {
		d.MemAddr = it.memAddr(in)
	}

	isTerm := top.inst == len(blk.Insts)-1
	if !isTerm || blk.Term == TermFall {
		// Straight-line step (possibly crossing into the next block).
		if top.inst++; top.inst == len(blk.Insts) {
			top.inst = 0
			top.block++
			if top.block >= len(top.fn.Blocks) {
				panic(fmt.Sprintf("program %s: fell off end of %s", it.prog.Name, top.fn.Name))
			}
		}
		d.NextPC = it.currentPC()
		return d, true
	}

	switch blk.Term {
	case TermBranch:
		d.Taken = it.branchTaken(in, top, blk)
		if d.Taken {
			top.block = blk.Target
		} else {
			top.block++
		}
		top.inst = 0
		d.NextPC = it.currentPC()
	case TermJump:
		top.block = blk.Target
		top.inst = 0
		d.Taken = true
		d.NextPC = it.currentPC()
	case TermCall:
		if len(it.stack) >= MaxCallDepth {
			panic(fmt.Sprintf("program %s: call depth exceeds %d in %s", it.prog.Name, MaxCallDepth, top.fn.Name))
		}
		// Resume point: next block of the caller.
		top.block++
		top.inst = 0
		it.push(blk.Callee)
		d.Taken = true
		d.NextPC = it.currentPC()
	case TermRet:
		it.pop()
		d.Taken = true
		if len(it.stack) == 0 {
			it.done = true
			d.NextPC = 0
		} else {
			d.NextPC = it.currentPC()
		}
	}
	return d, true
}

// CopyFrom overwrites it's position — call stack, RNG, sequence number, and
// per-instruction dynamic state — with src's, making it deliver the exact
// instruction stream src would from this point. It works on a zero-value
// Interp (pooled checkpoint containers) and reuses existing slice capacity,
// so steady-state copies between same-program interpreters do not allocate.
func (it *Interp) CopyFrom(src *Interp) {
	it.prog = src.prog
	if it.rng == nil {
		it.rng = &xrand.Source{}
	}
	*it.rng = *src.rng
	// Deep-copy the call stack, reusing each destination frame's loops
	// slice where its capacity suffices. Reading the old loops slice before
	// overwriting frame i is safe: append below either reuses it.stack's
	// backing array (old[i] still live until assigned) or allocates afresh.
	old := it.stack
	it.stack = it.stack[:0]
	for i, f := range src.stack {
		var loops []int32
		if i < len(old) && cap(old[i].loops) >= len(f.loops) {
			loops = old[i].loops[:len(f.loops)]
		} else {
			loops = make([]int32, len(f.loops))
		}
		copy(loops, f.loops)
		it.stack = append(it.stack, frame{fn: f.fn, block: f.block, inst: f.inst, loops: loops})
	}
	it.seq = src.seq
	it.done = src.done
	it.memCur = append(it.memCur[:0], src.memCur...)
	it.brPos = append(it.brPos[:0], src.brPos...)
	if it.loopPool == nil {
		it.loopPool = make(map[*Function][][]int32)
	}
}

// Clone returns an independent interpreter at the same stream position.
func (it *Interp) Clone() *Interp {
	n := &Interp{}
	n.CopyFrom(it)
	return n
}

// currentPC returns the PC of the instruction the interpreter will deliver
// next.
func (it *Interp) currentPC() uint64 {
	top := &it.stack[len(it.stack)-1]
	return top.fn.Blocks[top.block].Insts[top.inst].PC
}

func (it *Interp) branchTaken(in *Inst, top *frame, blk *Block) bool {
	br := in.Br
	switch br.Mode {
	case BrRandom:
		return it.rng.Bool(br.P)
	case BrLoop:
		trip := int32(br.Trip)
		if trip < 1 {
			trip = 1
		}
		top.loops[blk.IndexInFunc]++
		if top.loops[blk.IndexInFunc] >= trip {
			top.loops[blk.IndexInFunc] = 0
			return false // loop exit: fall through
		}
		return true // back-edge taken
	case BrPattern:
		if len(br.Pattern) == 0 {
			return false
		}
		pos := it.brPos[in.Index]
		it.brPos[in.Index] = (pos + 1) % int32(len(br.Pattern))
		return br.Pattern[pos]
	}
	return false
}

// memAddr produces the next effective address for a memory instruction.
func (it *Interp) memAddr(in *Inst) uint64 {
	m := in.Mem
	cur := it.memCur[in.Index]
	var off uint64
	switch m.Pattern {
	case MemStride:
		off = cur
		next := cur + m.Stride
		if next >= m.Size {
			next = 0
		}
		it.memCur[in.Index] = next
	case MemRandom:
		// Cache-block aligned random offset.
		blocks := m.Size / 64
		if blocks == 0 {
			blocks = 1
		}
		off = it.rng.Uint64n(blocks) * 64
	case MemChase:
		// Deterministic pseudo-random walk over the region's cache
		// blocks using a full-period LCG (mod power-of-two block
		// count), giving dependent-chain random access.
		blocks := pow2Floor(m.Size / 64)
		if blocks == 0 {
			blocks = 1
		}
		next := (cur*6364136223846793005 + 1442695040888963407) & (blocks - 1)
		it.memCur[in.Index] = next
		off = next * 64
	}
	if off >= m.Size {
		off %= m.Size
	}
	return m.Base + off
}

func pow2Floor(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	p := uint64(1)
	for p<<1 != 0 && p<<1 <= v {
		p <<= 1
	}
	return p
}

// Stream is the interface the core pulls dynamic instructions from.
type Stream interface {
	// Next returns the next instruction; ok is false at end of program.
	Next() (DynInst, bool)
}

var _ Stream = (*Interp)(nil)

// BatchStream is an optional Stream extension: NextBatch fills dst and
// returns how many instructions were delivered (less than len(dst) only at
// end of stream). The fast-forward loop uses it to replace a per-
// instruction interface dispatch with one call per batch.
type BatchStream interface {
	Stream
	NextBatch(dst []DynInst) int
}

// NextBatch implements BatchStream.
func (it *Interp) NextBatch(dst []DynInst) int {
	n := 0
	for n < len(dst) {
		d, ok := it.Next()
		if !ok {
			break
		}
		dst[n] = d
		n++
	}
	return n
}

var _ BatchStream = (*Interp)(nil)

// CappedStream wraps a Stream and ends it after max instructions; used to
// bound simulation length.
type CappedStream struct {
	S   Stream
	Max uint64
	n   uint64
}

// Next implements Stream.
func (c *CappedStream) Next() (DynInst, bool) {
	if c.n >= c.Max {
		return DynInst{}, false
	}
	d, ok := c.S.Next()
	if ok {
		c.n++
	}
	return d, ok
}

// Delivered returns how many instructions have been delivered.
func (c *CappedStream) Delivered() uint64 { return c.n }

// NextBatch implements BatchStream, honoring the cap and delegating to the
// wrapped stream's batch path when it has one.
func (c *CappedStream) NextBatch(dst []DynInst) int {
	if remaining := c.Max - c.n; uint64(len(dst)) > remaining {
		dst = dst[:remaining]
	}
	n := 0
	if bs, ok := c.S.(BatchStream); ok {
		n = bs.NextBatch(dst)
	} else {
		for n < len(dst) {
			d, ok := c.S.Next()
			if !ok {
				break
			}
			dst[n] = d
			n++
		}
	}
	c.n += uint64(n)
	return n
}

// Kind helpers used by profiler post-processing ("inspect the instruction
// type in the binary", paper §3.1).

// StallClassOf maps a static instruction to the cycle-stack stall category
// used when the instruction blocks at the head of the ROB.
func StallClassOf(in *Inst) isa.Kind {
	return in.Kind
}
