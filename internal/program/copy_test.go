package program

import (
	"testing"

	"github.com/tipprof/tip/internal/isa"
)

// buildStochastic builds a looped program whose branches and loads both draw
// from the interpreter's RNG, so any aliasing between a clone's RNG and its
// source's shows up as stream divergence.
func buildStochastic(iters int) *Program {
	b := NewBuilder("stochastic")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Load(isa.IntReg(1), isa.IntReg(2), MemBehavior{Base: 1 << 30, Size: 1 << 20, Pattern: MemRandom})
	b0.Op(isa.KindIntALU, isa.IntReg(3), isa.IntReg(1))
	b0.Branch(2, BranchBehavior{Mode: BrRandom, P: 0.35}, isa.IntReg(3))
	b1 := f.NewBlock()
	b1.Store(isa.IntReg(3), isa.IntReg(2), MemBehavior{Base: 1 << 31, Size: 1 << 16, Pattern: MemStride, Stride: 64})
	b2 := f.NewBlock()
	b2.Op(isa.KindIntALU, isa.IntReg(4), isa.IntReg(3))
	b2.LoopBack(0, iters)
	b3 := f.NewBlock()
	b3.Ret()
	return b.MustBuild(0)
}

func collect(it *Interp, n int) []DynInst {
	out := make([]DynInst, 0, n)
	for i := 0; i < n; i++ {
		d, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, d)
	}
	return out
}

// TestInterpCloneRoundTrip pins the architectural half of a checkpoint: a
// clone taken mid-stream must deliver the exact instruction stream the
// source would — same branch outcomes, same effective addresses — and the
// two streams must be independent (no shared RNG or cursor state).
func TestInterpCloneRoundTrip(t *testing.T) {
	p := buildStochastic(100_000)
	src := NewInterp(p, 42)
	collect(src, 10_000) // advance into the steady state

	cl := src.Clone()
	if cl.Seq() != src.Seq() {
		t.Fatalf("clone at seq %d, source at %d", cl.Seq(), src.Seq())
	}

	// Run the clone FIRST. If it shared mutable state with the source, the
	// source's subsequent stream would be perturbed.
	want := collect(cl, 5_000)
	got := collect(src, 5_000)
	if len(want) != len(got) {
		t.Fatalf("stream lengths diverged: clone %d, source %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("instruction %d diverged:\nclone  %+v\nsource %+v", i, want[i], got[i])
		}
	}
}

// TestInterpCopyFromZeroValue pins the pooled-container path the parallel
// scheduler uses: CopyFrom must work on a zero-value Interp and produce the
// same stream as a fresh Clone.
func TestInterpCopyFromZeroValue(t *testing.T) {
	p := buildStochastic(50_000)
	src := NewInterp(p, 7)
	collect(src, 8_000)

	var pooled Interp
	pooled.CopyFrom(src)
	want := collect(src.Clone(), 3_000)
	got := collect(&pooled, 3_000)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("instruction %d diverged between clone and zero-value copy", i)
		}
	}

	// Reuse: copy a later position into the same container.
	src2 := NewInterp(p, 9)
	collect(src2, 12_000)
	pooled.CopyFrom(src2)
	want = collect(src2.Clone(), 3_000)
	got = collect(&pooled, 3_000)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("instruction %d diverged after container reuse", i)
		}
	}
}
