package program

import (
	"fmt"

	"github.com/tipprof/tip/internal/isa"
)

// Builder constructs a Program. Workload generators create functions and
// blocks, fill them with instructions, then call Build, which validates the
// structure and lays out addresses.
type Builder struct {
	prog *Program
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name, EntryIndex: 0, HandlerIndex: -1}}
}

// Func adds a new function and returns its builder. The first function added
// is the entry point unless SetEntry overrides it.
func (b *Builder) Func(name string) *FuncBuilder {
	f := &Function{Name: name}
	b.prog.Funcs = append(b.prog.Funcs, f)
	return &FuncBuilder{b: b, f: f}
}

// SetEntry marks fb's function as the program entry point.
func (b *Builder) SetEntry(fb *FuncBuilder) {
	for i, f := range b.prog.Funcs {
		if f == fb.f {
			b.prog.EntryIndex = i
			return
		}
	}
	panic("program: SetEntry with foreign function")
}

// SetHandler marks fb's function as the OS page-fault handler.
func (b *Builder) SetHandler(fb *FuncBuilder) {
	for i, f := range b.prog.Funcs {
		if f == fb.f {
			b.prog.HandlerIndex = i
			return
		}
	}
	panic("program: SetHandler with foreign function")
}

// Build validates the program and assigns addresses starting at base
// (DefaultBase if base is zero).
func (b *Builder) Build(base uint64) (*Program, error) {
	if base == 0 {
		base = DefaultBase
	}
	p := b.prog
	p.layout(base)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// structure is statically known to be valid.
func (b *Builder) MustBuild(base uint64) *Program {
	p, err := b.Build(base)
	if err != nil {
		panic(fmt.Sprintf("program: %v", err))
	}
	return p
}

// FuncBuilder builds one function.
type FuncBuilder struct {
	b *Builder
	f *Function
}

// Name returns the function name.
func (fb *FuncBuilder) Name() string { return fb.f.Name }

// Function returns the function under construction (for call targets).
func (fb *FuncBuilder) Function() *Function { return fb.f }

// NewBlock appends an empty fall-through block and returns its builder.
// Blocks are laid out in creation order; targets refer to creation indices,
// so forward references work by creating blocks up front.
func (fb *FuncBuilder) NewBlock() *BlockBuilder {
	blk := &Block{Term: TermFall, Target: -1}
	fb.f.Blocks = append(fb.f.Blocks, blk)
	return &BlockBuilder{fb: fb, blk: blk, index: len(fb.f.Blocks) - 1}
}

// NumBlocks returns the number of blocks created so far.
func (fb *FuncBuilder) NumBlocks() int { return len(fb.f.Blocks) }

// BlockBuilder builds one basic block.
type BlockBuilder struct {
	fb    *FuncBuilder
	blk   *Block
	index int
}

// Index returns the block's index within its function.
func (bb *BlockBuilder) Index() int { return bb.index }

// Block returns the block under construction.
func (bb *BlockBuilder) Block() *Block { return bb.blk }

// add appends an instruction and returns it for further customization.
func (bb *BlockBuilder) add(in *Inst) *Inst {
	bb.blk.Insts = append(bb.blk.Insts, in)
	return in
}

// Op appends a register-register instruction.
func (bb *BlockBuilder) Op(kind isa.Kind, dst isa.Reg, srcs ...isa.Reg) *Inst {
	in := &Inst{Kind: kind, Dst: dst}
	for i, s := range srcs {
		if i >= 2 {
			break
		}
		in.Srcs[i] = s
	}
	return bb.add(in)
}

// Nop appends an architectural no-op.
func (bb *BlockBuilder) Nop() *Inst {
	return bb.add(&Inst{Kind: isa.KindNop})
}

// Load appends a load with the given address behaviour.
func (bb *BlockBuilder) Load(dst isa.Reg, addr isa.Reg, mem MemBehavior) *Inst {
	m := mem
	if m.Stride == 0 {
		m.Stride = 8
	}
	in := &Inst{Kind: isa.KindLoad, Dst: dst, Mem: &m}
	in.Srcs[0] = addr
	return bb.add(in)
}

// Store appends a store with the given address behaviour.
func (bb *BlockBuilder) Store(val isa.Reg, addr isa.Reg, mem MemBehavior) *Inst {
	m := mem
	if m.Stride == 0 {
		m.Stride = 8
	}
	in := &Inst{Kind: isa.KindStore, Mem: &m}
	in.Srcs[0] = addr
	in.Srcs[1] = val
	return bb.add(in)
}

// CSR appends a control/status register access. flush marks it as flushing
// the pipeline at commit (BOOM fsflags/frflags behaviour, paper §6).
func (bb *BlockBuilder) CSR(mnemonic string, dst isa.Reg, flush bool) *Inst {
	return bb.add(&Inst{Kind: isa.KindCSR, Mnemonic: mnemonic, Dst: dst, FlushAtCommit: flush})
}

// Fence appends a serializing fence.
func (bb *BlockBuilder) Fence() *Inst {
	return bb.add(&Inst{Kind: isa.KindFence, Mnemonic: "fence"})
}

// Atomic appends a serialized atomic memory operation.
func (bb *BlockBuilder) Atomic(dst isa.Reg, addr isa.Reg, mem MemBehavior) *Inst {
	m := mem
	if m.Stride == 0 {
		m.Stride = 8
	}
	in := &Inst{Kind: isa.KindAtomic, Mnemonic: "amoadd.d", Dst: dst, Mem: &m}
	in.Srcs[0] = addr
	return bb.add(in)
}

// Branch terminates the block with a conditional branch to target (a block
// index within the same function); not-taken falls through.
func (bb *BlockBuilder) Branch(target int, br BranchBehavior, srcs ...isa.Reg) *Inst {
	in := &Inst{Kind: isa.KindBranch, Br: &br}
	for i, s := range srcs {
		if i >= 2 {
			break
		}
		in.Srcs[i] = s
	}
	bb.add(in)
	bb.blk.Term = TermBranch
	bb.blk.Target = target
	return in
}

// LoopBack terminates the block with a loop back-edge to target taken
// trip-1 times per loop instance.
func (bb *BlockBuilder) LoopBack(target, trip int, srcs ...isa.Reg) *Inst {
	return bb.Branch(target, BranchBehavior{Mode: BrLoop, Trip: trip}, srcs...)
}

// Jump terminates the block with an unconditional jump to target.
func (bb *BlockBuilder) Jump(target int) *Inst {
	in := &Inst{Kind: isa.KindJump}
	bb.add(in)
	bb.blk.Term = TermJump
	bb.blk.Target = target
	return in
}

// Call terminates the block with a call to callee; execution resumes at the
// next block after the callee returns.
func (bb *BlockBuilder) Call(callee *FuncBuilder) *Inst {
	in := &Inst{Kind: isa.KindCall}
	bb.add(in)
	bb.blk.Term = TermCall
	bb.blk.Callee = callee.f
	return in
}

// Ret terminates the block with a function return.
func (bb *BlockBuilder) Ret() *Inst {
	in := &Inst{Kind: isa.KindRet, Mnemonic: "ret"}
	bb.add(in)
	bb.blk.Term = TermRet
	return in
}
