package program

// ffBatchCap is the fast-forward refill batch size. Large enough that the
// per-batch overhead (bounds set-up, the interface call into the supply)
// amortises away; small enough that a batch stays within the L1 data cache
// of the simulating host.
const ffBatchCap = 1024

// FastForward is the batched functional fast-forward front end: it pulls
// dynamic instructions from a Stream in batches (advancing architectural
// state — branch outcomes, memory addresses, call depth — exactly as
// detailed simulation would, since both consume the same deterministic
// interpreter) and keeps a per-static-instruction execution count so
// profilers and error harnesses can attribute the skipped work. It models
// no time: the caller decides how many cycles the skipped instructions
// represent.
//
// The batch buffer and count table are allocated once; steady-state Fill
// calls allocate nothing (guarded by TestFastForwardZeroAllocs).
type FastForward struct {
	counts   []uint64
	executed uint64
	batch    []DynInst
}

// NewFastForward builds a fast-forward front end for p's instruction space.
func NewFastForward(p *Program) *FastForward {
	return &FastForward{
		counts: make([]uint64, p.NumInsts()),
		batch:  make([]DynInst, 0, ffBatchCap),
	}
}

// Fill pulls up to max instructions (capped at the batch capacity) from src
// into the internal batch, counting executions per static instruction. The
// returned slice is valid until the next Fill. A batch shorter than the
// requested amount means src is exhausted.
func (f *FastForward) Fill(src Stream, max uint64) []DynInst {
	n := uint64(cap(f.batch))
	if max < n {
		n = max
	}
	var batch []DynInst
	if bs, ok := src.(BatchStream); ok {
		batch = f.batch[:n]
		batch = batch[:bs.NextBatch(batch)]
		for i := range batch {
			f.counts[batch[i].SI.Index]++
		}
	} else {
		batch = f.batch[:0]
		for uint64(len(batch)) < n {
			d, ok := src.Next()
			if !ok {
				break
			}
			f.counts[d.SI.Index]++
			batch = append(batch, d)
		}
	}
	f.executed += uint64(len(batch))
	f.batch = batch
	return batch
}

// Executed returns the total number of instructions fast-forwarded.
func (f *FastForward) Executed() uint64 { return f.executed }

// Counts returns the per-static-instruction execution counts, indexed by
// Inst.Index. The slice is live: later Fills keep accumulating into it.
func (f *FastForward) Counts() []uint64 { return f.counts }
