package program

import (
	"testing"

	"github.com/tipprof/tip/internal/isa"
)

// buildLinear builds: entry { b0: n ALU ops; ret }.
func buildLinear(t *testing.T, n int) *Program {
	t.Helper()
	b := NewBuilder("linear")
	f := b.Func("main")
	blk := f.NewBlock()
	for i := 0; i < n; i++ {
		blk.Op(isa.KindIntALU, isa.IntReg(1), isa.IntReg(1))
	}
	blk.Ret()
	return b.MustBuild(0)
}

func TestLayoutAddresses(t *testing.T) {
	p := buildLinear(t, 5)
	if p.Base() != DefaultBase {
		t.Fatalf("base = %#x, want %#x", p.Base(), DefaultBase)
	}
	if p.NumInsts() != 6 { // 5 ALU + ret
		t.Fatalf("NumInsts = %d, want 6", p.NumInsts())
	}
	for i := 0; i < p.NumInsts(); i++ {
		in := p.InstByIndex(i)
		want := DefaultBase + uint64(i*isa.InstBytes)
		if in.PC != want {
			t.Fatalf("inst %d PC = %#x, want %#x", i, in.PC, want)
		}
		if got := p.InstAt(in.PC); got != in {
			t.Fatalf("InstAt(%#x) mismatch", in.PC)
		}
	}
}

func TestInstAtInvalid(t *testing.T) {
	p := buildLinear(t, 3)
	if p.InstAt(0) != nil {
		t.Fatal("InstAt(0) should be nil")
	}
	if p.InstAt(p.Base()+1) != nil {
		t.Fatal("misaligned PC should be nil")
	}
	if p.InstAt(p.Base()+uint64(p.NumInsts()*isa.InstBytes)) != nil {
		t.Fatal("past-end PC should be nil")
	}
}

func TestFuncAt(t *testing.T) {
	b := NewBuilder("two")
	f1 := b.Func("alpha")
	bl1 := f1.NewBlock()
	bl1.Op(isa.KindIntALU, isa.IntReg(1))
	bl1.Ret()
	f2 := b.Func("beta")
	bl2 := f2.NewBlock()
	bl2.Op(isa.KindIntALU, isa.IntReg(2))
	bl2.Ret()
	p := b.MustBuild(0)

	if got := p.FuncAt(p.Funcs[0].Start()); got == nil || got.Name != "alpha" {
		t.Fatalf("FuncAt(alpha start) = %v", got)
	}
	if got := p.FuncAt(p.Funcs[1].Start()); got == nil || got.Name != "beta" {
		t.Fatalf("FuncAt(beta start) = %v", got)
	}
	if got := p.FuncAt(p.Funcs[1].End()); got != nil {
		t.Fatalf("FuncAt(end) = %v, want nil", got)
	}
	if got := p.FuncAt(0); got != nil {
		t.Fatalf("FuncAt(0) = %v, want nil", got)
	}
}

func TestSymbolization(t *testing.T) {
	b := NewBuilder("sym")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Op(isa.KindIntALU, isa.IntReg(1))
	b1 := f.NewBlock()
	b1.Op(isa.KindIntALU, isa.IntReg(2))
	b1.Ret()
	_ = b0
	p := b.MustBuild(0)

	if p.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d", p.NumBlocks())
	}
	in := p.InstByIndex(1)
	if in.Block().ID != 1 {
		t.Fatalf("inst 1 block ID = %d, want 1", in.Block().ID)
	}
	if in.Func().Name != "main" {
		t.Fatalf("inst 1 func = %q", in.Func().Name)
	}
	if p.BlockByID(1).Func() != p.Funcs[0] {
		t.Fatal("block 1 function mismatch")
	}
}

func TestValidateEmptyFunction(t *testing.T) {
	b := NewBuilder("bad")
	b.Func("empty")
	if _, err := b.Build(0); err == nil {
		t.Fatal("expected error for function with no blocks")
	}
}

func TestValidateFallOffEnd(t *testing.T) {
	b := NewBuilder("bad")
	f := b.Func("main")
	blk := f.NewBlock()
	blk.Op(isa.KindIntALU, isa.IntReg(1))
	// No terminator: last block falls through off the function end.
	if _, err := b.Build(0); err == nil {
		t.Fatal("expected error for fall-through in last block")
	}
}

func TestValidateBranchTargetRange(t *testing.T) {
	b := NewBuilder("bad")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Branch(5, BranchBehavior{Mode: BrRandom, P: 0.5})
	b1 := f.NewBlock()
	b1.Ret()
	_ = b1
	if _, err := b.Build(0); err == nil {
		t.Fatal("expected error for out-of-range branch target")
	}
}

func TestValidateMemWithoutBehavior(t *testing.T) {
	b := NewBuilder("bad")
	f := b.Func("main")
	blk := f.NewBlock()
	blk.add(&Inst{Kind: isa.KindLoad}) // bypass Load helper
	blk.Ret()
	if _, err := b.Build(0); err == nil {
		t.Fatal("expected error for load without mem behaviour")
	}
}

func TestInterpLinear(t *testing.T) {
	p := buildLinear(t, 4)
	it := NewInterp(p, 1)
	var seqs []uint64
	var pcs []uint64
	for {
		d, ok := it.Next()
		if !ok {
			break
		}
		seqs = append(seqs, d.Seq)
		pcs = append(pcs, d.PC())
	}
	if len(seqs) != 5 {
		t.Fatalf("delivered %d insts, want 5", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("seq[%d] = %d", i, s)
		}
	}
	for i := 0; i < len(pcs)-1; i++ {
		if pcs[i+1] != pcs[i]+isa.InstBytes {
			t.Fatalf("non-sequential PCs at %d", i)
		}
	}
	if !it.Done() {
		t.Fatal("interp not done after ret")
	}
	if _, ok := it.Next(); ok {
		t.Fatal("Next after done returned ok")
	}
}

func TestInterpNextPCStraightLine(t *testing.T) {
	p := buildLinear(t, 2)
	it := NewInterp(p, 1)
	d0, _ := it.Next()
	if d0.NextPC != d0.PC()+isa.InstBytes {
		t.Fatalf("NextPC = %#x, want %#x", d0.NextPC, d0.PC()+isa.InstBytes)
	}
}

// buildLoop builds: main { b0: alu; loop-branch to b0 trip times; b1: ret }.
func buildLoop(trip int) *Program {
	b := NewBuilder("loop")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Op(isa.KindIntALU, isa.IntReg(1), isa.IntReg(1))
	b0.LoopBack(0, trip)
	b1 := f.NewBlock()
	b1.Ret()
	_ = b1
	return b.MustBuild(0)
}

func TestInterpLoopTripCount(t *testing.T) {
	const trip = 7
	p := buildLoop(trip)
	it := NewInterp(p, 1)
	aluCount := 0
	takenCount := 0
	for {
		d, ok := it.Next()
		if !ok {
			break
		}
		if d.SI.Kind == isa.KindIntALU {
			aluCount++
		}
		if d.SI.Kind == isa.KindBranch && d.Taken {
			takenCount++
		}
	}
	if aluCount != trip {
		t.Fatalf("loop body executed %d times, want %d", aluCount, trip)
	}
	if takenCount != trip-1 {
		t.Fatalf("back-edge taken %d times, want %d", takenCount, trip-1)
	}
}

func TestInterpLoopBranchNextPC(t *testing.T) {
	p := buildLoop(2)
	it := NewInterp(p, 1)
	d0, _ := it.Next() // alu
	d1, _ := it.Next() // branch, taken (iteration 1 of 2)
	if !d1.Taken {
		t.Fatal("first back-edge not taken")
	}
	if d1.NextPC != d0.PC() {
		t.Fatalf("taken branch NextPC = %#x, want loop head %#x", d1.NextPC, d0.PC())
	}
	_, _ = it.Next()   // alu
	d3, _ := it.Next() // branch, not taken
	if d3.Taken {
		t.Fatal("final back-edge taken")
	}
	if d3.NextPC != d3.PC()+isa.InstBytes {
		t.Fatalf("fall-through NextPC = %#x", d3.NextPC)
	}
}

func TestInterpCallRet(t *testing.T) {
	b := NewBuilder("call")
	callee := b.Func("leaf")
	cb := callee.NewBlock()
	cb.Op(isa.KindIntALU, isa.IntReg(3))
	cb.Ret()

	main := b.Func("main")
	m0 := main.NewBlock()
	m0.Call(callee)
	m1 := main.NewBlock()
	m1.Op(isa.KindIntALU, isa.IntReg(4))
	m1.Ret()
	b.SetEntry(main)
	p := b.MustBuild(0)

	it := NewInterp(p, 1)
	var names []string
	var nextPCs []uint64
	for {
		d, ok := it.Next()
		if !ok {
			break
		}
		names = append(names, d.SI.Func().Name+"/"+d.SI.Kind.String())
		nextPCs = append(nextPCs, d.NextPC)
	}
	want := []string{"main/call", "leaf/int.alu", "leaf/ret", "main/int.alu", "main/ret"}
	if len(names) != len(want) {
		t.Fatalf("got %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("step %d = %q, want %q (all: %v)", i, names[i], want[i], names)
		}
	}
	// Call's NextPC is the callee entry; leaf ret's NextPC is main block 1.
	if nextPCs[0] != p.Funcs[p.EntryIndex].Blocks[0].Insts[0].PC &&
		nextPCs[0] != callee.Function().Start() {
		t.Fatalf("call NextPC = %#x, want callee start %#x", nextPCs[0], callee.Function().Start())
	}
	if nextPCs[2] != p.Entry().Blocks[1].Start() {
		t.Fatalf("ret NextPC = %#x, want resume %#x", nextPCs[2], p.Entry().Blocks[1].Start())
	}
}

func TestInterpPatternBranch(t *testing.T) {
	b := NewBuilder("pat")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Op(isa.KindIntALU, isa.IntReg(1))
	b0.Branch(2, BranchBehavior{Mode: BrPattern, Pattern: []bool{true, false}})
	b1 := f.NewBlock() // not-taken path
	b1.Op(isa.KindIntALU, isa.IntReg(2))
	b1.Jump(3)
	b2 := f.NewBlock() // taken path
	b2.Op(isa.KindIntALU, isa.IntReg(3))
	b2.Jump(3)
	b3 := f.NewBlock()
	b3.LoopBack(0, 4)
	b4 := f.NewBlock()
	b4.Ret()
	_, _, _ = b1, b2, b4
	p := b.MustBuild(0)

	it := NewInterp(p, 1)
	var outcomes []bool
	for {
		d, ok := it.Next()
		if !ok {
			break
		}
		if d.SI.Kind == isa.KindBranch && d.SI.Br != nil && d.SI.Br.Mode == BrPattern {
			outcomes = append(outcomes, d.Taken)
		}
	}
	want := []bool{true, false, true, false}
	if len(outcomes) != len(want) {
		t.Fatalf("pattern branch executed %d times, want %d", len(outcomes), len(want))
	}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("outcome[%d] = %v, want %v", i, outcomes[i], want[i])
		}
	}
}

func TestInterpRandomBranchDeterminism(t *testing.T) {
	b := NewBuilder("rand")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Op(isa.KindIntALU, isa.IntReg(1))
	b0.Branch(2, BranchBehavior{Mode: BrRandom, P: 0.5})
	b1 := f.NewBlock()
	b1.Op(isa.KindIntALU, isa.IntReg(2))
	b1.Jump(3)
	b2 := f.NewBlock()
	b2.Op(isa.KindIntALU, isa.IntReg(3))
	b2.Jump(3)
	b3 := f.NewBlock()
	b3.LoopBack(0, 100)
	b4 := f.NewBlock()
	b4.Ret()
	_, _, _ = b1, b2, b4
	p := b.MustBuild(0)

	run := func(seed uint64) []bool {
		it := NewInterp(p, seed)
		var out []bool
		for {
			d, ok := it.Next()
			if !ok {
				break
			}
			if d.SI.Br != nil && d.SI.Br.Mode == BrRandom {
				out = append(out, d.Taken)
			}
		}
		return out
	}
	a, b2run := run(42), run(42)
	if len(a) != 100 || len(b2run) != 100 {
		t.Fatalf("branch executed %d/%d times, want 100", len(a), len(b2run))
	}
	for i := range a {
		if a[i] != b2run[i] {
			t.Fatal("same seed produced different outcomes")
		}
	}
	c := run(43)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical outcome streams")
	}
}

func TestMemStrideAddresses(t *testing.T) {
	b := NewBuilder("mem")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Load(isa.IntReg(1), isa.IntReg(2), MemBehavior{Base: 0x1000, Size: 64, Stride: 16})
	b0.LoopBack(0, 6)
	b1 := f.NewBlock()
	b1.Ret()
	_ = b1
	p := b.MustBuild(0)

	it := NewInterp(p, 1)
	var addrs []uint64
	for {
		d, ok := it.Next()
		if !ok {
			break
		}
		if d.SI.Kind == isa.KindLoad {
			addrs = append(addrs, d.MemAddr)
		}
	}
	want := []uint64{0x1000, 0x1010, 0x1020, 0x1030, 0x1000, 0x1010}
	if len(addrs) != len(want) {
		t.Fatalf("got %d addrs %v", len(addrs), addrs)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("addr[%d] = %#x, want %#x", i, addrs[i], want[i])
		}
	}
}

func TestMemRandomInRegion(t *testing.T) {
	b := NewBuilder("mem")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Load(isa.IntReg(1), isa.IntReg(2), MemBehavior{Base: 0x2000, Size: 1 << 12, Pattern: MemRandom})
	b0.LoopBack(0, 200)
	b1 := f.NewBlock()
	b1.Ret()
	_ = b1
	p := b.MustBuild(0)
	it := NewInterp(p, 5)
	seen := map[uint64]bool{}
	for {
		d, ok := it.Next()
		if !ok {
			break
		}
		if d.SI.Kind == isa.KindLoad {
			if d.MemAddr < 0x2000 || d.MemAddr >= 0x2000+(1<<12) {
				t.Fatalf("address %#x outside region", d.MemAddr)
			}
			if d.MemAddr%64 != 0 {
				t.Fatalf("address %#x not block aligned", d.MemAddr)
			}
			seen[d.MemAddr] = true
		}
	}
	if len(seen) < 20 {
		t.Fatalf("random pattern touched only %d distinct blocks", len(seen))
	}
}

func TestMemChaseCoversRegion(t *testing.T) {
	b := NewBuilder("mem")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Load(isa.IntReg(1), isa.IntReg(2), MemBehavior{Base: 0, Size: 64 * 64, Pattern: MemChase})
	b0.LoopBack(0, 64)
	b1 := f.NewBlock()
	b1.Ret()
	_ = b1
	p := b.MustBuild(0)
	it := NewInterp(p, 5)
	seen := map[uint64]bool{}
	for {
		d, ok := it.Next()
		if !ok {
			break
		}
		if d.SI.Kind == isa.KindLoad {
			if d.MemAddr >= 64*64 {
				t.Fatalf("chase address %#x outside region", d.MemAddr)
			}
			seen[d.MemAddr] = true
		}
	}
	if len(seen) < 32 {
		t.Fatalf("chase touched only %d distinct blocks in 64 steps", len(seen))
	}
}

func TestCappedStream(t *testing.T) {
	p := buildLinear(t, 100)
	cs := &CappedStream{S: NewInterp(p, 1), Max: 10}
	n := 0
	for {
		_, ok := cs.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("capped stream delivered %d, want 10", n)
	}
	if cs.Delivered() != 10 {
		t.Fatalf("Delivered = %d", cs.Delivered())
	}
}

func TestInterpHandlerFunc(t *testing.T) {
	b := NewBuilder("h")
	h := b.Func("os_handler")
	hb := h.NewBlock()
	hb.Op(isa.KindIntALU, isa.IntReg(1))
	hb.Ret()
	main := b.Func("main")
	mb := main.NewBlock()
	mb.Op(isa.KindIntALU, isa.IntReg(2))
	mb.Ret()
	b.SetEntry(main)
	b.SetHandler(h)
	p := b.MustBuild(0)

	if p.Handler() == nil || p.Handler().Name != "os_handler" {
		t.Fatal("handler not registered")
	}
	it := NewInterpFunc(p, p.Handler(), 9)
	count := 0
	for {
		d, ok := it.Next()
		if !ok {
			break
		}
		if d.SI.Func().Name != "os_handler" {
			t.Fatalf("handler stream delivered %s", d.SI.Func().Name)
		}
		count++
	}
	if count != 2 {
		t.Fatalf("handler delivered %d insts, want 2", count)
	}
}

func TestMnemonicAndName(t *testing.T) {
	b := NewBuilder("m")
	f := b.Func("ceil")
	blk := f.NewBlock()
	csr := blk.CSR("frflags", isa.IntReg(5), true)
	alu := blk.Op(isa.KindIntALU, isa.IntReg(1))
	blk.Ret()
	p := b.MustBuild(0)
	_ = p
	if csr.Name() != "frflags" {
		t.Fatalf("csr name = %q", csr.Name())
	}
	if !csr.FlushAtCommit {
		t.Fatal("frflags should flush at commit")
	}
	if alu.Name() != "int.alu" {
		t.Fatalf("alu name = %q", alu.Name())
	}
}

func TestCodeBytes(t *testing.T) {
	p := buildLinear(t, 9)
	if p.CodeBytes() != 10*isa.InstBytes {
		t.Fatalf("CodeBytes = %d", p.CodeBytes())
	}
}

func BenchmarkInterpNext(b *testing.B) {
	p := buildLoop(1 << 30)
	it := NewInterp(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := it.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}
