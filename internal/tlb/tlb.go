// Package tlb models address translation: split L1 I/D TLBs (32-entry fully
// associative), a 512-entry direct-mapped L2 TLB, a hardware page-table
// walker whose memory accesses go through the cache hierarchy, and demand
// paging — the first touch of a page raises a page fault that the core's
// OS-handler machinery services (paper §2.2 page-miss walkthrough).
package tlb

import "github.com/tipprof/tip/internal/cache"

// PageBits is log2 of the page size (4 KiB pages).
const PageBits = 12

// PageSize is the page size in bytes.
const PageSize = 1 << PageBits

// PageOf returns the virtual page number of addr.
func PageOf(addr uint64) uint64 { return addr >> PageBits }

// Config parameterises the translation machinery.
type Config struct {
	// L1Entries is the size of each fully associative L1 TLB.
	L1Entries int
	// L2Entries is the size of the direct-mapped shared L2 TLB.
	L2Entries int
	// WalkLevels is the number of page-table levels the walker reads on
	// an L2 TLB miss (Sv39 = 3).
	WalkLevels int
	// PTBase is the physical base address of the page-table area the
	// walker's reads hit in the cache hierarchy.
	PTBase uint64
}

// DefaultConfig mirrors Table 1.
func DefaultConfig() Config {
	return Config{L1Entries: 32, L2Entries: 512, WalkLevels: 3, PTBase: 0x7f00000000}
}

// Result describes one translation.
type Result struct {
	// Done is the absolute cycle the translation is available.
	Done uint64
	// Fault is true when the page is not present (demand-paging fault).
	// The translation is not installed; the core must run the OS handler
	// and retry after InstallPage.
	Fault bool
	// L1Hit/L2Hit/Walked describe where the translation was found.
	L1Hit  bool
	L2Hit  bool
	Walked bool
}

// invalidPage marks an empty TLB slot. Virtual page numbers are addresses
// shifted right by PageBits, so ^0 can never be a real VPN; seeding empty
// slots with it lets lookups compare page numbers alone.
const invalidPage = ^uint64(0)

// l1tlb is a small fully associative TLB with LRU replacement. Empty slots
// hold invalidPage; valid backs the replacement scan.
type l1tlb struct {
	pages []uint64
	valid []bool
	lru   []uint64
	stamp uint64
	// mru is the slot touched by the last hit or insert. Translation
	// streams hit the same page repeatedly (sequential fetch, stack data),
	// so checking it first short-circuits the associative scan. Skipping
	// the LRU re-stamp on an mru hit is invisible to replacement: the slot
	// already holds the maximum stamp and no other slot changed.
	mru int
}

func newL1(entries int) *l1tlb {
	t := &l1tlb{
		pages: make([]uint64, entries),
		valid: make([]bool, entries),
		lru:   make([]uint64, entries),
	}
	for i := range t.pages {
		t.pages[i] = invalidPage
	}
	return t
}

func (t *l1tlb) lookup(page uint64) bool {
	if t.pages[t.mru] == page {
		return true
	}
	for i := range t.pages {
		if t.pages[i] == page {
			t.stamp++
			t.lru[i] = t.stamp
			t.mru = i
			return true
		}
	}
	return false
}

func (t *l1tlb) insert(page uint64) {
	victim := 0
	for i := range t.pages {
		if !t.valid[i] {
			victim = i
			break
		}
		if t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	t.pages[victim] = page
	t.valid[victim] = true
	t.stamp++
	t.lru[victim] = t.stamp
	t.mru = victim
}

func (t *l1tlb) invalidate() {
	for i := range t.valid {
		t.valid[i] = false
		t.pages[i] = invalidPage
	}
	t.mru = 0
}

// MMU bundles the I-TLB, D-TLB, shared L2 TLB, walker and the present-page
// set for one simulated hardware thread.
type MMU struct {
	cfg  Config
	itlb *l1tlb
	dtlb *l1tlb

	// l2pages is the direct-mapped L2 TLB; empty slots hold invalidPage.
	// l2mask is L2Entries-1 when that is a power of two (the default 512),
	// turning the index computation into an AND; zero otherwise.
	l2pages []uint64
	l2mask  uint64

	// walkPath is the cache level the page-table walker reads through
	// (the L1D in the real BOOM; configurable for tests).
	walkPath cache.Level

	present    map[uint64]bool
	allPresent bool

	// log records installed pages in install order; present is always
	// exactly the set of pages in log (when allPresent is false). Because
	// installs are the only mutation — pages are never evicted — any prefix
	// of the log is an immutable snapshot of an earlier present set, which
	// is what lets CheckpointInto capture the set by reference in O(1) and
	// RestoreFrom replay only the delta since the MMU's previous restore.
	log []uint64
	// applied is the length of the shared checkpoint-log prefix this MMU's
	// present set currently includes; log entries past it are this MMU's
	// own installs (demand faults taken during a detailed leg).
	applied int

	// Stats.
	ITLBMisses, DTLBMisses, L2TLBMisses, Walks, Faults uint64
	// WarmInstalls counts pages first installed through Warm* (functional
	// warming standing in for the OS fault handler); kept apart so the
	// timed miss/walk/fault statistics describe detailed simulation only.
	WarmInstalls uint64
}

// New builds an MMU whose page-table walks read through walkPath.
func New(cfg Config, walkPath cache.Level) *MMU {
	if cfg.L1Entries <= 0 || cfg.L2Entries <= 0 || cfg.WalkLevels <= 0 {
		panic("tlb: invalid config")
	}
	m := &MMU{
		cfg:      cfg,
		itlb:     newL1(cfg.L1Entries),
		dtlb:     newL1(cfg.L1Entries),
		l2pages:  make([]uint64, cfg.L2Entries),
		walkPath: walkPath,
		present:  make(map[uint64]bool),
	}
	if n := uint64(cfg.L2Entries); n&(n-1) == 0 {
		m.l2mask = n - 1
	}
	for i := range m.l2pages {
		m.l2pages[i] = invalidPage
	}
	return m
}

// InstallPage marks a page present (what the OS fault handler does) without
// inserting a TLB entry; the retried access walks and fills the TLBs.
func (m *MMU) InstallPage(page uint64) {
	if m.allPresent || m.present[page] {
		return
	}
	m.present[page] = true
	m.log = append(m.log, page)
}

// PrefaultAll marks the entire address space present, disabling demand
// paging; used by workloads that model fully warmed-up memory.
func (m *MMU) PrefaultAll() { m.allPresent = true }

// PagePresent reports whether the page has been installed.
func (m *MMU) PagePresent(page uint64) bool { return m.allPresent || m.present[page] }

// PresentPages returns the number of installed pages.
func (m *MMU) PresentPages() int { return len(m.present) }

func (m *MMU) l2idx(page uint64) int {
	if m.l2mask != 0 {
		return int(page & m.l2mask)
	}
	return int(page % uint64(m.cfg.L2Entries))
}

func (m *MMU) l2lookup(page uint64) bool {
	return m.l2pages[m.l2idx(page)] == page
}

func (m *MMU) l2insert(page uint64) {
	m.l2pages[m.l2idx(page)] = page
}

// translate performs a lookup through the given L1 TLB.
func (m *MMU) translate(t *l1tlb, isData bool, addr uint64, now uint64) Result {
	page := PageOf(addr)
	if t.lookup(page) {
		return Result{Done: now, L1Hit: true}
	}
	if isData {
		m.DTLBMisses++
	} else {
		m.ITLBMisses++
	}
	// L2 TLB: a few cycles.
	now += 2
	if m.l2lookup(page) {
		t.insert(page)
		return Result{Done: now, L2Hit: true}
	}
	m.L2TLBMisses++
	// Hardware page-table walk: WalkLevels dependent reads through the
	// cache hierarchy, at page-table addresses derived from the VPN so
	// walks exhibit realistic locality (nearby pages share PTE lines).
	m.Walks++
	for lvl := 0; lvl < m.cfg.WalkLevels; lvl++ {
		shift := uint(9 * (m.cfg.WalkLevels - 1 - lvl))
		idx := (page >> shift) & 0x1ff
		pteAddr := m.cfg.PTBase + (page>>shift>>9)<<12 + idx*8
		now = m.walkPath.Access(pteAddr, false, now)
	}
	if !m.allPresent && !m.present[page] {
		m.Faults++
		return Result{Done: now, Fault: true, Walked: true}
	}
	m.l2insert(page)
	t.insert(page)
	return Result{Done: now, Walked: true}
}

// warmLevel is the optional warming extension of the walker's cache path.
type warmLevel interface {
	Warm(addr uint64, write bool)
}

// warm fills the translation path for addr without timing, statistics or
// faulting: an L1 hit is a no-op (refreshing recency); otherwise the L2 and
// L1 entries are filled, installing an absent page first — the functional
// fast-forward carries the OS fault handler's architectural effect, just
// not its cycles. Where the detailed walker would read page-table entries
// through the cache hierarchy, warming installs those PTE lines as warm
// fills: a workload that thrashes the L2 TLB walks on almost every access,
// and resuming it with the page-table lines evicted (data warming floods
// the caches' LRU) would charge a DRAM-latency walk per miss for the rest
// of the window — a double-digit CPI overestimate on chase workloads.
func (m *MMU) warm(t *l1tlb, addr uint64) {
	page := PageOf(addr)
	if t.lookup(page) {
		return
	}
	if !m.l2lookup(page) {
		if !m.allPresent && !m.present[page] {
			m.present[page] = true
			m.log = append(m.log, page)
			m.WarmInstalls++
		}
		if w, ok := m.walkPath.(warmLevel); ok {
			for lvl := 0; lvl < m.cfg.WalkLevels; lvl++ {
				shift := uint(9 * (m.cfg.WalkLevels - 1 - lvl))
				idx := (page >> shift) & 0x1ff
				pteAddr := m.cfg.PTBase + (page>>shift>>9)<<12 + idx*8
				w.Warm(pteAddr, false)
			}
		}
		m.l2insert(page)
	}
	t.insert(page)
}

// WarmData is the functional fast-forward's bulk warming entry point for
// data accesses.
func (m *MMU) WarmData(addr uint64) { m.warm(m.dtlb, addr) }

// WarmFetch is the functional fast-forward's bulk warming entry point for
// instruction fetches.
func (m *MMU) WarmFetch(addr uint64) { m.warm(m.itlb, addr) }

// TranslateData translates a data access.
func (m *MMU) TranslateData(addr uint64, now uint64) Result {
	return m.translate(m.dtlb, true, addr, now)
}

// TranslateFetch translates an instruction fetch.
func (m *MMU) TranslateFetch(addr uint64, now uint64) Result {
	return m.translate(m.itlb, false, addr, now)
}

// copyFrom overwrites t's entries and recency state with src's. Both TLBs
// must have the same entry count.
func (t *l1tlb) copyFrom(src *l1tlb) {
	if len(t.pages) != len(src.pages) {
		panic("tlb: copyFrom size mismatch")
	}
	copy(t.pages, src.pages)
	copy(t.valid, src.valid)
	copy(t.lru, src.lru)
	t.stamp = src.stamp
	t.mru = src.mru
}

// CopyFrom overwrites m's TLB entries, present-page set and statistics with
// src's. The walk path stays m's own — a checkpoint MMU can live with a nil
// walk path as a pure state container, and restoring into a core keeps the
// walker reading through that core's L1D. Map buckets are reused, so
// steady-state copies allocate only when the present set grows.
func (m *MMU) CopyFrom(src *MMU) {
	if m.cfg.L1Entries != src.cfg.L1Entries || m.cfg.L2Entries != src.cfg.L2Entries {
		panic("tlb: CopyFrom config mismatch")
	}
	m.copyShallow(src)
	clear(m.present)
	for p := range src.present {
		m.present[p] = true
	}
	m.log = append(m.log[:0], src.log...)
	m.applied = src.applied
}

// copyShallow copies everything except the present set.
func (m *MMU) copyShallow(src *MMU) {
	m.itlb.copyFrom(src.itlb)
	m.dtlb.copyFrom(src.dtlb)
	copy(m.l2pages, src.l2pages)
	m.allPresent = src.allPresent
	m.ITLBMisses, m.DTLBMisses = src.ITLBMisses, src.DTLBMisses
	m.L2TLBMisses, m.Walks, m.Faults = src.L2TLBMisses, src.Walks, src.Faults
	m.WarmInstalls = src.WarmInstalls
}

// CheckpointInto writes m's state into dst as a pure state container in
// O(TLB size), independent of how many pages are present: the present set is
// captured as a reference to m's append-only install log, whose current
// prefix is immutable. dst must only be read back through RestoreFrom.
func (m *MMU) CheckpointInto(dst *MMU) {
	if m.cfg.L1Entries != dst.cfg.L1Entries || m.cfg.L2Entries != dst.cfg.L2Entries {
		panic("tlb: CheckpointInto config mismatch")
	}
	dst.copyShallow(m)
	dst.log = m.log // shared by reference; the slice length is the snapshot
}

// RestoreFrom rebuilds m's state from a container written by CheckpointInto.
// The present set is restored incrementally: m's own installs past the
// previously applied shared prefix are rolled back, then the shared log's
// delta is replayed — O(pages changed since m's last restore), not O(pages
// present). Checkpoints must be restored in install-log order (the parallel
// sampled scheduler's workers draw jobs from a FIFO, so they always do).
func (m *MMU) RestoreFrom(cp *MMU) {
	if m.cfg.L1Entries != cp.cfg.L1Entries || m.cfg.L2Entries != cp.cfg.L2Entries {
		panic("tlb: RestoreFrom config mismatch")
	}
	if m.applied > len(cp.log) {
		panic("tlb: RestoreFrom out of install-log order")
	}
	m.copyShallow(cp)
	for _, p := range m.log[m.applied:] {
		delete(m.present, p)
	}
	m.log = m.log[:m.applied]
	for _, p := range cp.log[m.applied:] {
		m.present[p] = true
		m.log = append(m.log, p)
	}
	m.applied = len(cp.log)
}

// Reset clears TLBs, present pages and statistics.
func (m *MMU) Reset() {
	m.itlb.invalidate()
	m.dtlb.invalidate()
	for i := range m.l2pages {
		m.l2pages[i] = invalidPage
	}
	m.present = make(map[uint64]bool)
	m.log = m.log[:0]
	m.applied = 0
	m.allPresent = false
	m.ITLBMisses, m.DTLBMisses, m.L2TLBMisses, m.Walks, m.Faults = 0, 0, 0, 0, 0
	m.WarmInstalls = 0
}

// PrefaultRange installs all pages covering [base, base+size) — used for
// regions that should not demand-fault (e.g. code that the loader touched).
func (m *MMU) PrefaultRange(base, size uint64) {
	for p := PageOf(base); p <= PageOf(base+size-1); p++ {
		m.InstallPage(p)
	}
}
