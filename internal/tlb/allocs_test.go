package tlb

import "testing"

// TestTranslateSteadyStateZeroAllocs guards the translation hot path:
// with demand faulting disabled (PrefaultAll, as capture mode runs) and
// the TLBs warmed over the working set, TranslateData and TranslateFetch
// must not allocate. Translation runs at least once per simulated
// instruction, so even one word per call would swamp the heap.
func TestTranslateSteadyStateZeroAllocs(t *testing.T) {
	m, _ := newMMU(10)
	m.PrefaultAll()
	const pages = 256 // spills the L1 TLBs so both hit and miss paths run
	now := uint64(0)
	pass := func() {
		for p := 0; p < pages; p++ {
			r := m.TranslateData(uint64(p)*PageSize, now)
			now = r.Done
			r = m.TranslateFetch(uint64(p)*PageSize, now)
			now = r.Done
		}
	}
	for w := 0; w < 3; w++ {
		pass()
	}
	if avg := testing.AllocsPerRun(5, pass); avg != 0 {
		t.Fatalf("steady-state translation allocates: %.2f allocs/pass, want 0", avg)
	}
}
