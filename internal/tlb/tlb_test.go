package tlb

import (
	"testing"

	"github.com/tipprof/tip/internal/cache"
)

func newMMU(walkLat uint64) (*MMU, *cache.FixedLatency) {
	back := &cache.FixedLatency{Lat: walkLat}
	return New(DefaultConfig(), back), back
}

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(PageSize-1) != 0 || PageOf(PageSize) != 1 {
		t.Fatal("PageOf boundaries wrong")
	}
}

func TestFirstTouchFaults(t *testing.T) {
	m, _ := newMMU(10)
	r := m.TranslateData(0x1000, 0)
	if !r.Fault {
		t.Fatal("first touch should fault")
	}
	if m.Faults != 1 {
		t.Fatalf("Faults = %d", m.Faults)
	}
}

func TestInstallThenHit(t *testing.T) {
	m, _ := newMMU(10)
	m.InstallPage(PageOf(0x1000))
	r := m.TranslateData(0x1000, 0)
	if r.Fault {
		t.Fatal("installed page faulted")
	}
	if !r.Walked {
		t.Fatal("first translation should walk")
	}
	r2 := m.TranslateData(0x1234, r.Done) // same page
	if !r2.L1Hit {
		t.Fatal("second access should hit L1 TLB")
	}
	if r2.Done != r.Done {
		t.Fatalf("L1 hit should be free, got +%d cycles", r2.Done-r.Done)
	}
}

func TestWalkLatencyScalesWithLevels(t *testing.T) {
	back := &cache.FixedLatency{Lat: 50}
	cfg := DefaultConfig()
	cfg.WalkLevels = 3
	m := New(cfg, back)
	m.InstallPage(5)
	r := m.TranslateData(5*PageSize, 0)
	// 2 cycles L2 TLB + 3 dependent 50-cycle reads.
	if r.Done != 2+3*50 {
		t.Fatalf("walk done at %d, want 152", r.Done)
	}
	if back.Accesses != 3 {
		t.Fatalf("walker issued %d reads, want 3", back.Accesses)
	}
}

func TestL2TLBCatchesL1Evictions(t *testing.T) {
	m, back := newMMU(10)
	cfg := DefaultConfig()
	// Touch more pages than L1 entries but fewer than L2 entries.
	n := cfg.L1Entries * 2
	for i := 0; i < n; i++ {
		m.InstallPage(uint64(i))
		m.TranslateData(uint64(i)*PageSize, 0)
	}
	walks := m.Walks
	backAcc := back.Accesses
	// Re-touch page 0: evicted from L1 (LRU) but present in L2 TLB.
	r := m.TranslateData(0, 0)
	if r.Fault || r.Walked {
		t.Fatalf("expected L2 TLB hit, got %+v", r)
	}
	if !r.L2Hit {
		t.Fatal("expected L2 hit flag")
	}
	if m.Walks != walks || back.Accesses != backAcc {
		t.Fatal("L2 hit should not walk")
	}
}

func TestITLBSeparateFromDTLB(t *testing.T) {
	m, _ := newMMU(10)
	m.InstallPage(7)
	m.TranslateData(7*PageSize, 0)
	// Fetch side never saw page 7 in its L1, but the shared L2 has it.
	r := m.TranslateFetch(7*PageSize, 0)
	if r.L1Hit {
		t.Fatal("I-TLB should not hit on a page only the D-side touched")
	}
	if !r.L2Hit {
		t.Fatal("shared L2 TLB should hit")
	}
	if m.ITLBMisses != 1 {
		t.Fatalf("ITLBMisses = %d", m.ITLBMisses)
	}
}

func TestFaultDoesNotInstall(t *testing.T) {
	m, _ := newMMU(10)
	m.TranslateData(0x5000, 0) // faults
	r := m.TranslateData(0x5000, 100)
	if !r.Fault {
		t.Fatal("page should still fault until installed")
	}
	m.InstallPage(PageOf(0x5000))
	r = m.TranslateData(0x5000, 200)
	if r.Fault {
		t.Fatal("page still faulting after install")
	}
}

func TestPrefaultRange(t *testing.T) {
	m, _ := newMMU(10)
	m.PrefaultRange(0x10000, 3*PageSize)
	for _, a := range []uint64{0x10000, 0x10000 + PageSize, 0x10000 + 2*PageSize, 0x10000 + 3*PageSize - 1} {
		if !m.PagePresent(PageOf(a)) {
			t.Fatalf("page of %#x not present", a)
		}
	}
	if m.PresentPages() != 3 {
		t.Fatalf("PresentPages = %d, want 3", m.PresentPages())
	}
}

func TestReset(t *testing.T) {
	m, _ := newMMU(10)
	m.InstallPage(1)
	m.TranslateData(PageSize, 0)
	m.Reset()
	if m.PresentPages() != 0 || m.Walks != 0 {
		t.Fatal("reset incomplete")
	}
	if r := m.TranslateData(PageSize, 0); !r.Fault {
		t.Fatal("page survived reset")
	}
}

func TestLRUInL1TLB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Entries = 2
	m := New(cfg, &cache.FixedLatency{Lat: 10})
	for p := uint64(0); p < 3; p++ {
		m.InstallPage(p)
	}
	m.TranslateData(0, 0)          // page 0
	m.TranslateData(PageSize, 0)   // page 1
	m.TranslateData(0, 0)          // touch page 0 -> MRU
	m.TranslateData(2*PageSize, 0) // page 2 evicts page 1
	if r := m.TranslateData(0, 0); !r.L1Hit {
		t.Fatal("page 0 should still be in L1 TLB")
	}
	if r := m.TranslateData(PageSize, 0); r.L1Hit {
		t.Fatal("page 1 should have been evicted from L1 TLB")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{L1Entries: 0, L2Entries: 512, WalkLevels: 3}, &cache.FixedLatency{})
}

func TestWalkLocalityThroughRealCache(t *testing.T) {
	// Walking adjacent pages should hit the same PTE cache lines: with a
	// real cache behind the walker, the second walk is much cheaper.
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	m := New(DefaultConfig(), h.L1D)
	m.InstallPage(100)
	m.InstallPage(101)
	r1 := m.TranslateData(100*PageSize, 0)
	cold := r1.Done
	r2 := m.TranslateData(101*PageSize, r1.Done)
	warm := r2.Done - r1.Done
	if warm >= cold {
		t.Fatalf("adjacent-page walk not cheaper: cold %d, warm %d", cold, warm)
	}
}

func BenchmarkL1TLBHit(b *testing.B) {
	m, _ := newMMU(10)
	m.InstallPage(0)
	m.TranslateData(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TranslateData(0, 0)
	}
}
