package tlb

import (
	"testing"

	"github.com/tipprof/tip/internal/cache"
)

// TestWarmDataInstallsTranslation checks WarmData installs an absent page
// (standing in for the OS fault handler) and fills both TLB levels, all
// without touching the timed statistics or the walker's cache path.
func TestWarmDataInstallsTranslation(t *testing.T) {
	back := &cache.FixedLatency{Lat: 5}
	m := New(DefaultConfig(), back)

	const addr = 0x1234_5000
	m.WarmData(addr)
	if !m.PagePresent(PageOf(addr)) {
		t.Fatal("WarmData should install the absent page")
	}
	if m.WarmInstalls != 1 {
		t.Fatalf("WarmInstalls = %d, want 1", m.WarmInstalls)
	}
	if m.DTLBMisses+m.L2TLBMisses+m.Walks+m.Faults != 0 {
		t.Fatalf("WarmData touched timed stats: %+v", m)
	}
	if back.Accesses != 0 {
		t.Fatalf("WarmData walked through the cache path: %d accesses", back.Accesses)
	}

	// The warmed translation hits the L1 D-TLB with zero added latency.
	res := m.TranslateData(addr, 100)
	if !res.L1Hit || res.Done != 100 || res.Fault {
		t.Fatalf("translation after WarmData = %+v, want L1 hit", res)
	}
	// Re-warming a resident translation changes nothing.
	m.WarmData(addr)
	if m.WarmInstalls != 1 {
		t.Fatalf("re-warm installed again: %d", m.WarmInstalls)
	}
}

// TestWarmFetchFillsITLB checks the I-side warming path fills the I-TLB.
func TestWarmFetchFillsITLB(t *testing.T) {
	m := New(DefaultConfig(), &cache.FixedLatency{Lat: 5})
	const pc = 0x40_0000
	m.WarmFetch(pc)
	res := m.TranslateFetch(pc, 7)
	if !res.L1Hit || res.Done != 7 {
		t.Fatalf("fetch translation after WarmFetch = %+v, want L1 hit", res)
	}
	if m.ITLBMisses != 0 {
		t.Fatalf("WarmFetch counted an ITLB miss")
	}
}
