package tlb

import (
	"testing"

	"github.com/tipprof/tip/internal/cache"
)

// mmuStateEqual compares every piece of MMU state that CopyFrom transfers:
// TLB arrays and recency, present set, install log prefix, and statistics.
func mmuStateEqual(t *testing.T, a, b *MMU) {
	t.Helper()
	for i := range a.itlb.pages {
		if a.itlb.pages[i] != b.itlb.pages[i] || a.itlb.valid[i] != b.itlb.valid[i] || a.itlb.lru[i] != b.itlb.lru[i] {
			t.Fatalf("itlb slot %d differs", i)
		}
	}
	for i := range a.dtlb.pages {
		if a.dtlb.pages[i] != b.dtlb.pages[i] || a.dtlb.valid[i] != b.dtlb.valid[i] || a.dtlb.lru[i] != b.dtlb.lru[i] {
			t.Fatalf("dtlb slot %d differs", i)
		}
	}
	if a.itlb.stamp != b.itlb.stamp || a.itlb.mru != b.itlb.mru ||
		a.dtlb.stamp != b.dtlb.stamp || a.dtlb.mru != b.dtlb.mru {
		t.Fatal("L1 TLB recency state differs")
	}
	for i := range a.l2pages {
		if a.l2pages[i] != b.l2pages[i] {
			t.Fatalf("l2 slot %d differs", i)
		}
	}
	if len(a.present) != len(b.present) {
		t.Fatalf("present sets differ in size: %d vs %d", len(a.present), len(b.present))
	}
	for p := range a.present {
		if !b.present[p] {
			t.Fatalf("page %d present in one MMU only", p)
		}
	}
	if a.allPresent != b.allPresent {
		t.Fatal("allPresent differs")
	}
	if a.ITLBMisses != b.ITLBMisses || a.DTLBMisses != b.DTLBMisses ||
		a.L2TLBMisses != b.L2TLBMisses || a.Walks != b.Walks ||
		a.Faults != b.Faults || a.WarmInstalls != b.WarmInstalls {
		t.Fatal("statistics differ")
	}
}

// exercise drives m through a mixed install/translate/warm sequence so every
// copied structure holds non-trivial state.
func exercise(m *MMU, base uint64, n int) {
	for i := 0; i < n; i++ {
		p := base + uint64(i*3%97)
		m.InstallPage(p)
		m.TranslateData(p<<PageBits, 0)
		if i%4 == 0 {
			m.TranslateFetch(p<<PageBits, 0)
		}
		if i%7 == 0 {
			m.WarmData((base + uint64(200+i)) << PageBits)
		}
	}
}

// TestCheckpointRestoreMatchesDeepCopy is the incremental checkpoint's
// correctness contract: CheckpointInto (O(TLB size), log shared by reference)
// followed by RestoreFrom must leave the worker MMU in exactly the state a
// full deep CopyFrom would — even when the worker carries stale installs of
// its own from an earlier leg.
func TestCheckpointRestoreMatchesDeepCopy(t *testing.T) {
	sweep, _ := newMMU(10)
	exercise(sweep, 0, 120)

	// Incremental container (nil walk path: pure state holder) and deep copy.
	cp := New(DefaultConfig(), &cache.FixedLatency{Lat: 10})
	sweep.CheckpointInto(cp)
	deep, _ := newMMU(10)
	deep.CopyFrom(sweep)

	// Worker restores the checkpoint twice, dirtying itself in between with
	// demand installs the rollback must undo.
	worker, _ := newMMU(10)
	worker.RestoreFrom(cp)
	mmuStateEqual(t, deep, worker)

	exercise(worker, 500, 40) // the detailed leg's own faults and fills

	// The sweep moves on; a later checkpoint extends the shared log.
	exercise(sweep, 1000, 60)
	cp2 := New(DefaultConfig(), &cache.FixedLatency{Lat: 10})
	sweep.CheckpointInto(cp2)
	deep2, _ := newMMU(10)
	deep2.CopyFrom(sweep)

	worker.RestoreFrom(cp2)
	mmuStateEqual(t, deep2, worker)
	for _, p := range []uint64{500, 503, 509} { // worker's own installs rolled back
		if worker.present[p] && !deep2.present[p] {
			t.Fatalf("worker install of page %d survived restore", p)
		}
	}
}

// TestRestoreOutOfOrderPanics pins the FIFO discipline: a worker that has
// applied a long install log cannot restore an older, shorter checkpoint.
func TestRestoreOutOfOrderPanics(t *testing.T) {
	sweep, _ := newMMU(10)
	exercise(sweep, 0, 20)
	early := New(DefaultConfig(), &cache.FixedLatency{Lat: 10})
	sweep.CheckpointInto(early)
	earlyLen := len(early.log)

	exercise(sweep, 100, 20)
	late := New(DefaultConfig(), &cache.FixedLatency{Lat: 10})
	sweep.CheckpointInto(late)
	if len(late.log) <= earlyLen {
		t.Fatal("test needs the second checkpoint to extend the log")
	}

	worker, _ := newMMU(10)
	worker.RestoreFrom(late)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order RestoreFrom did not panic")
		}
	}()
	worker.RestoreFrom(early)
}

// TestResetClearsCheckpointState verifies Reset returns an MMU to a
// restorable-from-scratch state: the applied prefix is forgotten, so a
// subsequent RestoreFrom replays the full log.
func TestResetClearsCheckpointState(t *testing.T) {
	sweep, _ := newMMU(10)
	exercise(sweep, 0, 50)
	cp := New(DefaultConfig(), &cache.FixedLatency{Lat: 10})
	sweep.CheckpointInto(cp)
	deep, _ := newMMU(10)
	deep.CopyFrom(sweep)

	worker, _ := newMMU(10)
	worker.RestoreFrom(cp)
	worker.Reset()
	if worker.applied != 0 || len(worker.log) != 0 || worker.PresentPages() != 0 {
		t.Fatalf("Reset left checkpoint state: applied=%d log=%d present=%d",
			worker.applied, len(worker.log), worker.PresentPages())
	}
	worker.RestoreFrom(cp)
	mmuStateEqual(t, deep, worker)
}

// TestCopyFromRoundTrip pins the deep copy itself: copy, diverge the source,
// and check the copy kept the original state.
func TestCopyFromRoundTrip(t *testing.T) {
	src, _ := newMMU(10)
	exercise(src, 0, 80)
	snap, _ := newMMU(10)
	snap.CopyFrom(src)
	mmuStateEqual(t, src, snap)

	walks := snap.Walks
	exercise(src, 2000, 30) // diverge the source
	if snap.Walks != walks {
		t.Fatal("copy shares statistics with source")
	}
	if snap.PagePresent(2000) {
		t.Fatal("copy shares present set with source")
	}
}
