package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// detOpts keeps the metamorphic runs small: determinism does not get more
// deterministic at scale.
func detOpts(benchmarks ...string) Options {
	return Options{
		Scale:         60_000,
		TargetSamples: 512,
		Frequencies:   []uint64{100, BaseFrequency},
		Benchmarks:    benchmarks,
	}
}

// TestEvalBenchmarkDeterministic is the metamorphic identity check: the same
// seed must reproduce the evaluation bit for bit.
func TestEvalBenchmarkDeterministic(t *testing.T) {
	a, err := EvalBenchmark("x264", detOpts("x264"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvalBenchmark("x264", detOpts("x264"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different evaluations:\n%+v\nvs\n%+v", a, b)
	}
}

// TestEvalSuiteParallelismInvariant asserts the suite result is independent
// of the worker count: sequential and parallel evaluation must agree exactly.
func TestEvalSuiteParallelismInvariant(t *testing.T) {
	benchmarks := []string{"x264", "imagick", "lbm"}

	seqOpt := detOpts(benchmarks...)
	seqOpt.Parallelism = 1
	seq, err := EvalSuite(seqOpt)
	if err != nil {
		t.Fatal(err)
	}

	parOpt := detOpts(benchmarks...)
	parOpt.Parallelism = runtime.GOMAXPROCS(0)
	par, err := EvalSuite(parOpt)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seq, par) {
		t.Fatal("suite evaluation depends on Parallelism")
	}
}

// TestEvalSuiteChecked runs the suite with the invariant checker attached to
// every profiled run.
func TestEvalSuiteChecked(t *testing.T) {
	opt := detOpts("imagick", "gcc")
	opt.Checked = true
	if _, err := EvalSuite(opt); err != nil {
		t.Fatalf("checked suite failed: %v", err)
	}
}

// TestEvalSuiteReportsError asserts a failing benchmark surfaces as an error
// rather than a hang or a silent hole in the results.
func TestEvalSuiteReportsError(t *testing.T) {
	if _, err := EvalSuite(detOpts("x264", "no-such-benchmark", "lbm")); err == nil {
		t.Fatal("unknown benchmark accepted by EvalSuite")
	}
}
