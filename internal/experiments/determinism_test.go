package experiments

import (
	"reflect"
	"runtime"
	"testing"

	tip "github.com/tipprof/tip"
)

// detOpts keeps the metamorphic runs small: determinism does not get more
// deterministic at scale.
func detOpts(benchmarks ...string) Options {
	return Options{
		Scale:         60_000,
		TargetSamples: 512,
		Frequencies:   []uint64{100, BaseFrequency},
		Benchmarks:    benchmarks,
	}
}

// TestEvalBenchmarkDeterministic is the metamorphic identity check: the same
// seed must reproduce the evaluation bit for bit.
func TestEvalBenchmarkDeterministic(t *testing.T) {
	a, err := EvalBenchmark("x264", detOpts("x264"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvalBenchmark("x264", detOpts("x264"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different evaluations:\n%+v\nvs\n%+v", a, b)
	}
}

// TestEvalSuiteParallelismInvariant asserts the suite result is independent
// of the worker count: sequential and parallel evaluation must agree exactly.
func TestEvalSuiteParallelismInvariant(t *testing.T) {
	benchmarks := []string{"x264", "imagick", "lbm"}

	seqOpt := detOpts(benchmarks...)
	seqOpt.Parallelism = 1
	seq, err := EvalSuite(seqOpt)
	if err != nil {
		t.Fatal(err)
	}

	parOpt := detOpts(benchmarks...)
	parOpt.Parallelism = runtime.GOMAXPROCS(0)
	par, err := EvalSuite(parOpt)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seq, par) {
		t.Fatal("suite evaluation depends on Parallelism")
	}
}

// TestEvalReplayWorkersInvariant is the metamorphic worker-count check for
// sharded replay: evaluating with 1, 2, and GOMAXPROCS replay workers — with
// the conservation checker attached — must produce byte-identical results.
// The decode-once broadcast hands every worker the same record stream, so
// the only thing allowed to vary is which goroutine a profiler runs on.
func TestEvalReplayWorkersInvariant(t *testing.T) {
	workers := []int{1, 2, runtime.GOMAXPROCS(0)}
	var ref *BenchmarkEval
	for _, w := range workers {
		opt := detOpts("imagick")
		opt.Checked = true
		// Grant exactly the slots the replay wants so the borrow is
		// deterministic and the run really fans out over w workers.
		opt.Parallelism = w
		opt.ReplayWorkers = w
		ev, err := EvalBenchmark("imagick", opt)
		if err != nil {
			t.Fatalf("ReplayWorkers=%d: %v", w, err)
		}
		if ref == nil {
			ref = ev
			continue
		}
		if !reflect.DeepEqual(ref, ev) {
			t.Fatalf("evaluation differs between ReplayWorkers=%d and ReplayWorkers=%d",
				workers[0], w)
		}
	}
}

// TestEvalSuiteReplayWorkersInvariant repeats the worker-count check at the
// suite level, where replay workers are borrowed from the shared parallelism
// budget while several benchmarks evaluate at once.
func TestEvalSuiteReplayWorkersInvariant(t *testing.T) {
	benchmarks := []string{"x264", "lbm"}

	seqOpt := detOpts(benchmarks...)
	seqOpt.Parallelism = 1
	seqOpt.ReplayWorkers = 1
	seq, err := EvalSuite(seqOpt)
	if err != nil {
		t.Fatal(err)
	}

	parOpt := detOpts(benchmarks...)
	parOpt.Parallelism = 4
	parOpt.ReplayWorkers = 3
	par, err := EvalSuite(parOpt)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seq, par) {
		t.Fatal("suite evaluation depends on ReplayWorkers")
	}
}

// TestEvalSuiteChecked runs the suite with the invariant checker attached to
// every profiled run.
func TestEvalSuiteChecked(t *testing.T) {
	opt := detOpts("imagick", "gcc")
	opt.Checked = true
	if _, err := EvalSuite(opt); err != nil {
		t.Fatalf("checked suite failed: %v", err)
	}
}

// TestEvalSuiteReportsError asserts a failing benchmark surfaces as an error
// rather than a hang or a silent hole in the results.
func TestEvalSuiteReportsError(t *testing.T) {
	if _, err := EvalSuite(detOpts("x264", "no-such-benchmark", "lbm")); err == nil {
		t.Fatal("unknown benchmark accepted by EvalSuite")
	}
}

// TestEvalBenchmarkStreamingParity pins the fused evaluation to the
// capture-then-replay one. The test workload finishes inside the default
// pilot window, so streaming calibration is exact and the two paths must
// agree bit for bit — including with the checker attached and the replay
// sharded.
func TestEvalBenchmarkStreamingParity(t *testing.T) {
	opt := detOpts("x264")
	opt.Checked = true
	ref, err := EvalBenchmark("x264", opt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cycles >= tip.DefaultPilotCycles {
		t.Fatalf("test workload runs %d cycles, expected to end inside the %d-cycle pilot window",
			ref.Cycles, uint64(tip.DefaultPilotCycles))
	}
	for _, workers := range []int{1, 4} {
		sOpt := detOpts("x264")
		sOpt.Checked = true
		sOpt.Streaming = true
		sOpt.Parallelism = workers
		sOpt.ReplayWorkers = workers
		got, err := EvalBenchmark("x264", sOpt)
		if err != nil {
			t.Fatalf("streaming workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("streaming evaluation differs from captured at ReplayWorkers=%d", workers)
		}
	}
}
