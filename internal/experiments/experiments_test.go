package experiments

import (
	"strings"
	"testing"

	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
)

// quickOpts keeps test runs small; full scale is exercised by cmd/tipbench
// and the root bench harness.
func quickOpts(benchmarks ...string) Options {
	return Options{
		Scale:         150_000,
		TargetSamples: 2048,
		Benchmarks:    benchmarks,
	}
}

func evalQuick(t *testing.T, benchmarks ...string) []*BenchmarkEval {
	t.Helper()
	evals, err := EvalSuite(quickOpts(benchmarks...))
	if err != nil {
		t.Fatal(err)
	}
	return evals
}

func TestEvalBenchmarkPopulatesEverything(t *testing.T) {
	ev, err := EvalBenchmark("x264", quickOpts("x264"))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cycles == 0 || ev.Committed == 0 || ev.IPC <= 0 {
		t.Fatalf("run stats empty: %+v", ev)
	}
	if ev.Interval4k == 0 {
		t.Fatal("no calibrated interval")
	}
	for _, freq := range DefaultFrequencies {
		kinds := sweepKinds()
		if freq == BaseFrequency {
			kinds = profiler.AllKinds()
		}
		for _, k := range kinds {
			ge, ok := ev.Periodic[freq][k]
			if !ok {
				t.Fatalf("missing %v at %d Hz", k, freq)
			}
			for _, e := range []float64{ge.Inst, ge.Block, ge.Func} {
				if e < 0 || e > 1 {
					t.Fatalf("error %v out of range for %v@%d", e, k, freq)
				}
			}
		}
	}
	for _, k := range profiler.AllKinds() {
		if _, ok := ev.Random[k]; !ok {
			t.Fatalf("missing random errors for %v", k)
		}
		if _, ok := ev.PeriodicRaw[k]; !ok {
			t.Fatalf("missing raw periodic errors for %v", k)
		}
	}
	if _, ok := ev.CrossProfiler[profiler.KindSoftware][profiler.KindNCI]; !ok {
		t.Fatal("missing Software-vs-NCI cross difference")
	}
}

func TestEvalUnknownBenchmark(t *testing.T) {
	if _, err := EvalBenchmark("nope", quickOpts("nope")); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestGranErrorsAt(t *testing.T) {
	g := GranErrors{Inst: 0.1, Block: 0.2, Func: 0.3}
	if g.At(profile.GranInstruction) != 0.1 || g.At(profile.GranBlock) != 0.2 || g.At(profile.GranFunction) != 0.3 {
		t.Fatal("At() mapping wrong")
	}
}

func TestFigureTablesRender(t *testing.T) {
	evals := evalQuick(t, "x264", "imagick")
	for _, tb := range []*Table{
		Fig01(evals), Fig07(evals), Fig08(evals), Fig09(evals),
		Fig10(evals), Fig11a(evals, nil), Fig11b(evals), Fig11c(evals),
		Validation(evals),
	} {
		s := tb.String()
		if !strings.Contains(s, tb.Title) {
			t.Fatalf("render missing title: %q", tb.Title)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s has no rows", tb.Title)
		}
	}
}

func TestFig07RowsPerBenchmark(t *testing.T) {
	evals := evalQuick(t, "x264", "lbm")
	tb := Fig07(evals)
	if len(tb.Rows) != 2 {
		t.Fatalf("Fig07 rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "x264" || tb.Rows[1][0] != "lbm" {
		t.Fatalf("Fig07 order wrong: %v", tb.Rows)
	}
}

func TestFig10HasAverageRows(t *testing.T) {
	evals := evalQuick(t, "x264", "lbm")
	tb := Fig10(evals)
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "avg:All" {
		t.Fatalf("last row = %v", last)
	}
	// 2 benchmarks + 3 class averages + 1 overall.
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig10 rows = %d", len(tb.Rows))
	}
}

func TestTable1MatchesConfig(t *testing.T) {
	tb := Table1()
	s := tb.String()
	for _, want := range []string{"128-entry ROB", "32 KB 8-way I-cache", "512 KB 8-way L2", "4 MB 8-way LLC", "3.2 GHz"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestOverheadTableMatchesPaper(t *testing.T) {
	s := OverheadTable().String()
	for _, want := range []string{"57 B", "179 GB/s", "352 KB/s", "224 KB/s", "192 KB/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("overhead table missing %q:\n%s", want, s)
		}
	}
}

func TestFig12QualitativeClaims(t *testing.T) {
	tb, err := Fig12(Options{Scale: 400_000, TargetSamples: 4096, Benchmarks: []string{"imagick"}})
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	for _, want := range []string{"fsflags", "frflags", "ceil", "MeanShiftImage"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Fig12 missing %q", want)
		}
	}
}

func TestFig13SpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("two full imagick runs")
	}
	r, err := Fig13(Options{TargetSamples: 2048, Benchmarks: []string{"imagick"}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup < 1.7 || r.Speedup > 2.2 {
		t.Fatalf("speedup %.2f outside ballpark", r.Speedup)
	}
	if r.OptIPC <= r.OrigIPC {
		t.Fatal("optimization did not raise IPC")
	}
	// Misc-flush cycles vanish from ceil in the optimized variant.
	origCeil := r.OrigStacks["ceil"]
	optCeil := r.OptStacks["ceil"]
	if origCeil.Cycles[profile.CatMiscFlush] == 0 {
		t.Fatal("original ceil shows no flush cycles")
	}
	if optCeil.Cycles[profile.CatMiscFlush] != 0 {
		t.Fatal("optimized ceil still shows flush cycles")
	}
	// ceil collapses; MorphologyApply stays roughly unchanged.
	if optCeil.Total > origCeil.Total/2 {
		t.Fatalf("ceil did not collapse: %v -> %v", origCeil.Total, optCeil.Total)
	}
	om, nm := r.OrigStacks["MorphologyApply"].Total, r.OptStacks["MorphologyApply"].Total
	if nm < om*0.8 || nm > om*1.2 {
		t.Fatalf("MorphologyApply changed: %v -> %v", om, nm)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tb.AddRow("x", "y")
	s := tb.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "note: n") {
		t.Fatalf("render: %q", s)
	}
}
