package experiments

import (
	"context"
	"testing"
)

// TestCompareSampledAccuracy runs the sampled-vs-full harness on two
// benchmarks at a reduced scale and checks the headline contract: the CPI
// estimate lands close to the full run, every profiler's sampled
// attribution error stays within a few points of its full-trace error, and
// the trace invariant checker holds inside the measurement windows.
func TestCompareSampledAccuracy(t *testing.T) {
	for _, name := range []string{"imagick", "mcf"} {
		opt := SampledOptions{
			Scale:         1_200_000,
			TargetSamples: 2048,
			Checked:       true,
		}
		c, err := CompareSampled(context.Background(), name, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: full %d cyc (%.2f Mcyc/s), est %d cyc (%.2f eff Mcyc/s), CPI err %.4f, speedup %.2fx, fraction %.3f, windows %d",
			name, c.FullCycles, c.FullRate()/1e6, c.EstCycles, c.EffectiveRate()/1e6,
			c.CPIError, c.Speedup, c.DetailedFraction, c.Windows)
		t.Logf("%s: oracle drift inst %.4f block %.4f func %.4f",
			name, c.OracleDrift.Inst, c.OracleDrift.Block, c.OracleDrift.Func)
		for k, se := range c.SampledErr {
			t.Logf("%s: %v full %.4f sampled %.4f (inst)", name, k, c.FullErr[k].Inst, se.Inst)
		}
		if c.CPIError > 0.02 {
			t.Errorf("%s: CPI error %.4f exceeds 2%%", name, c.CPIError)
		}
		for k, se := range c.SampledErr {
			if se.Func > c.FullErr[k].Func+0.15 {
				t.Errorf("%s: %v sampled function error %.4f far above full-trace %.4f",
					name, k, se.Func, c.FullErr[k].Func)
			}
		}
	}
}

// TestSampledTableRenders smoke-tests the report renderer.
func TestSampledTableRenders(t *testing.T) {
	c, err := CompareSampled(context.Background(), "mcf", SampledOptions{
		Scale:         60_000,
		TargetSamples: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := SampledTable([]*SampledCompare{c}).String()
	if len(out) == 0 {
		t.Fatal("empty table")
	}
	t.Log("\n" + out)
}
