package experiments

import (
	"context"
	"testing"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/workload"
)

// TestEvalSuiteSampledBorrowsWindowWorkers runs a sampled suite evaluation
// and checks the budget contract: window workers draw from the shared
// Parallelism budget (the evaluation's held slot guarantees at least one),
// and the suite's stitched cycle estimate matches a direct checkpoint-
// parallel RunSampled of the same workload — the budget only changes
// wall-clock, never results.
func TestEvalSuiteSampledBorrowsWindowWorkers(t *testing.T) {
	opt := Options{
		Benchmarks:     []string{"mcf"},
		Scale:          200_000,
		TargetSamples:  512,
		Parallelism:    2,
		Sampled:        true,
		WindowCycles:   1 << 11,
		WindowInterval: 1 << 13,
		WarmupCycles:   1 << 9,
		WindowWorkers:  4,
	}
	evals, st, err := EvalSuiteTimed(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 1 || evals[0] == nil {
		t.Fatalf("expected one evaluation, got %+v", evals)
	}
	if st.MaxWindowWorkers < 1 || st.MaxWindowWorkers > opt.Parallelism {
		t.Fatalf("window workers %d outside [1, Parallelism=%d]: the suite slot covers one, extras must borrow",
			st.MaxWindowWorkers, opt.Parallelism)
	}

	w, err := workload.LoadScaled("mcf", 1, opt.Scale)
	if err != nil {
		t.Fatal(err)
	}
	rc := tip.DefaultRunConfig()
	rc.TargetSamples = opt.TargetSamples
	rc.Sampled = true
	rc.WindowCycles = opt.WindowCycles
	rc.WindowInterval = opt.WindowInterval
	rc.WarmupCycles = opt.WarmupCycles
	rc.WindowWorkers = 1 // any count >= 1 is byte-identical
	res, err := tip.RunSampled(context.Background(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if evals[0].Cycles != res.Stats.Cycles {
		t.Fatalf("suite sampled estimate %d differs from direct parallel run %d: the budget must not change results",
			evals[0].Cycles, res.Stats.Cycles)
	}
}
