package experiments

import (
	"context"
	"fmt"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/workload"
)

// DefaultMulticorePairs are the co-runner sets of the multicore experiment:
// one pair per cycle-stack class mix, pairing a memory-bound workload with a
// compute-lean one (the contention case TIP's per-core units are built for,
// §3.2) plus a stall/stall pair where the shared LLC and DRAM are fought
// over from both sides.
var DefaultMulticorePairs = [][]string{
	{"mcf", "x264"},
	{"omnetpp", "exchange2"},
	{"mcf", "omnetpp"},
}

// MulticoreEval is one co-runner set's per-core evaluation.
type MulticoreEval struct {
	// Benches names the workloads, index = core.
	Benches []string
	// TotalCycles is the interleaved run's length.
	TotalCycles uint64
	// Cores holds each core's result, profiled against its own Oracle.
	Cores []*tip.Result
}

// EvalMulticore runs one co-runner set lockstep through the multicore
// capture/replay pipeline and evaluates TIP and NCI per core.
func EvalMulticore(ctx context.Context, benches []string, opt Options) (*MulticoreEval, error) {
	opt.fill()
	ws := make([]*tip.Workload, len(benches))
	for i, name := range benches {
		w, err := workload.LoadScaled(name, opt.Seed, opt.Scale)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	rc := tip.DefaultRunConfig()
	rc.Profilers = []profiler.Kind{profiler.KindNCI, profiler.KindTIP}
	rc.TargetSamples = opt.TargetSamples
	rc.Check = opt.Checked
	rc.ReplayWorkers = opt.ReplayWorkers
	res, err := tip.RunMulticore(ctx, ws, rc)
	if err != nil {
		return nil, fmt.Errorf("multicore %v: %w", benches, err)
	}
	return &MulticoreEval{Benches: benches, TotalCycles: res.TotalCycles, Cores: res.Cores}, nil
}

// Multicore runs the default co-runner pairs and renders the per-core
// accuracy table: each benchmark's cycles, IPC, and TIP/NCI instruction-level
// error against that core's own Oracle. The paper's claim (§3.2) is that a
// co-runner changes a benchmark's timing — visible here as depressed IPC
// versus a solo run — but not its profile's accuracy: TIP stays within a few
// percent of Oracle, and under NCI, under contention as when alone.
func Multicore(opt Options) (*Table, error) {
	t := &Table{
		Title:  "Multicore: per-core profile accuracy under shared-LLC contention",
		Header: []string{"pair", "core", "bench", "cycles", "ipc", "interval", "TIP err", "NCI err"},
		Notes: []string{
			"errors are instruction-granularity, each core vs its own Oracle (§3.2: per-core TIP units)",
			"profiles come from one core-tagged capture demultiplexed per core; byte-identical to the direct run",
		},
	}
	for _, pair := range DefaultMulticorePairs {
		ev, err := EvalMulticore(context.Background(), pair, opt)
		if err != nil {
			return nil, err
		}
		for i, cr := range ev.Cores {
			t.AddRow(
				fmt.Sprintf("%s+%s", pair[0], pair[1]),
				fmt.Sprintf("%d", i),
				ev.Benches[i],
				fmt.Sprintf("%d", cr.Stats.Cycles),
				fmt.Sprintf("%.2f", cr.Stats.IPC()),
				fmt.Sprintf("%d", cr.SampleInterval),
				pct(cr.Err(profiler.KindTIP, profile.GranInstruction)),
				pct(cr.Err(profiler.KindNCI, profile.GranInstruction)),
			)
		}
	}
	return t, nil
}
