package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/check"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// DefaultFrequencies are the Fig. 11a sweep points in Hz-equivalents; 4000
// is the paper's default operating point.
var DefaultFrequencies = []uint64{100, 1000, 4000, 10000, 20000}

// BaseFrequency is the paper's default sampling frequency (4 kHz).
const BaseFrequency uint64 = 4000

// Options configures a suite evaluation.
type Options struct {
	// Seed seeds workload interpretation.
	Seed uint64
	// TargetSamples calibrates the 4 kHz-equivalent period. The default
	// 32768 keeps the samples-per-hot-instruction ratio in the same
	// regime as the paper (4 kHz over multi-minute SPEC runs collects
	// ~10^6 samples; our benchmarks are ~500x shorter). See DESIGN.md.
	TargetSamples uint64
	// Scale overrides each benchmark's dynamic-instruction budget
	// (0 = default full scale).
	Scale uint64
	// Benchmarks restricts the suite (nil = all 27).
	Benchmarks []string
	// Frequencies are the sensitivity sweep points (nil = Default).
	Frequencies []uint64
	// Parallelism bounds concurrent benchmark evaluations
	// (0 = GOMAXPROCS).
	Parallelism int
	// Checked attaches a cycle-level invariant checker (internal/check)
	// to every profiled run and fails the evaluation on any violation.
	Checked bool
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TargetSamples == 0 {
		o.TargetSamples = 32768
	}
	if o.Benchmarks == nil {
		o.Benchmarks = workload.Names()
	}
	if o.Frequencies == nil {
		o.Frequencies = DefaultFrequencies
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// GranErrors holds one profiler's error at the three granularities.
type GranErrors struct {
	Inst, Block, Func float64
}

// At selects by granularity.
func (g GranErrors) At(gran profile.Granularity) float64 {
	switch gran {
	case profile.GranInstruction:
		return g.Inst
	case profile.GranBlock:
		return g.Block
	default:
		return g.Func
	}
}

// BenchmarkEval is one benchmark's full evaluation: every profiler at every
// sweep frequency (periodic) plus random sampling at the base frequency,
// all observed in a single simulation run like the paper's out-of-band
// methodology (§4).
type BenchmarkEval struct {
	Name  string
	Class string

	Cycles    uint64
	Committed uint64
	IPC       float64

	Stack profile.CycleStack

	// Interval4k is the calibrated 4 kHz-equivalent period in cycles.
	Interval4k uint64

	// Periodic[freq][kind] are periodic-sampling errors.
	Periodic map[uint64]map[profiler.Kind]GranErrors
	// Random[kind] are random-sampling errors at the base frequency.
	Random map[profiler.Kind]GranErrors
	// PeriodicRaw[kind] are base-frequency periodic errors WITHOUT the
	// prime-interval anti-aliasing adjustment — the configuration the
	// paper's periodic sampling corresponds to, and the honest baseline
	// for the Fig. 11b periodic-vs-random comparison.
	PeriodicRaw map[profiler.Kind]GranErrors
	// CrossProfiler[a][b] is the relative difference between two sampled
	// profilers' instruction-level profiles (used by the §5.2 validation
	// experiment: Software vs NCI).
	CrossProfiler map[profiler.Kind]map[profiler.Kind]float64
}

// sweepKinds returns the profilers modelled at non-base frequencies
// (the paper sweeps the three most accurate: NCI, TIP-ILP, TIP).
func sweepKinds() []profiler.Kind {
	return []profiler.Kind{profiler.KindNCI, profiler.KindTIPILP, profiler.KindTIP}
}

// EvalBenchmark runs one benchmark with the full profiler matrix.
func EvalBenchmark(name string, opt Options) (*BenchmarkEval, error) {
	opt.fill()
	w, err := workload.LoadScaled(name, opt.Seed, opt.Scale)
	if err != nil {
		return nil, err
	}

	cfg := tip.DefaultRunConfig()

	// The single cycle-level simulation: measure cycles for calibration
	// while capturing the encoded trace the profiler matrix will replay.
	capture, stats, err := tip.CaptureWorkload(w, cfg.Core)
	if err != nil {
		return nil, fmt.Errorf("experiments: capture %s: %w", name, err)
	}
	defer capture.Close()
	// Prime the interval to avoid aliasing with cycle-deterministic
	// synthetic loops (see sampling.NextPrime).
	interval4k := tip.CalibrateInterval(stats.Cycles, opt.TargetSamples)

	// Build the profiler matrix: all kinds at the base frequency
	// (periodic + random), sweep kinds at the other frequencies. The
	// Oracle reference comes from tip.Run itself.
	var consumers []trace.Consumer
	var checker *check.Checker
	if opt.Checked {
		checker = check.New(check.Options{
			Benchmark:       name,
			CommitWidth:     cfg.Core.CommitWidth,
			ROBEntries:      cfg.Core.ROBEntries,
			FetchBufEntries: cfg.Core.FetchBufEntries,
		})
	}
	periodic := map[uint64]map[profiler.Kind]*profiler.Sampled{}
	random := map[profiler.Kind]*profiler.Sampled{}
	for _, freq := range opt.Frequencies {
		interval := interval4k * BaseFrequency / freq
		if interval < 4 {
			interval = 4
		}
		interval = sampling.NextPrime(interval)
		kinds := sweepKinds()
		if freq == BaseFrequency {
			kinds = profiler.AllKinds()
		}
		periodic[freq] = map[profiler.Kind]*profiler.Sampled{}
		for _, k := range kinds {
			sp := profiler.NewSampled(k, w.Prog, sampling.NewPeriodic(interval))
			periodic[freq][k] = sp
			consumers = append(consumers, sp)
			if checker != nil {
				checker.AuditSampled(fmt.Sprintf("periodic@%d/%v", freq, k), sp)
			}
		}
	}
	periodicRaw := map[profiler.Kind]*profiler.Sampled{}
	rawInterval := stats.Cycles / opt.TargetSamples
	if rawInterval < 16 {
		rawInterval = 16
	}
	for _, k := range profiler.AllKinds() {
		sp := profiler.NewSampled(k, w.Prog, sampling.NewRandom(interval4k, opt.Seed^0x5eed))
		random[k] = sp
		consumers = append(consumers, sp)
		spRaw := profiler.NewSampled(k, w.Prog, sampling.NewPeriodic(rawInterval))
		periodicRaw[k] = spRaw
		consumers = append(consumers, spRaw)
		if checker != nil {
			checker.AuditSampled(fmt.Sprintf("random/%v", k), sp)
			checker.AuditSampled(fmt.Sprintf("periodic-raw/%v", k), spRaw)
		}
	}
	if checker != nil {
		consumers = append(consumers, checker)
	}

	// Replay the captured trace through the matrix — the deterministic
	// codec hands every consumer the byte-identical record stream the
	// live core produced, without a second simulation.
	res, err := tip.RunCaptured(w, capture, stats, tip.RunConfig{
		Core:           cfg.Core,
		Profilers:      []profiler.Kind{}, // matrix supplied below
		SampleInterval: interval4k,
		ExtraConsumers: consumers,
	})
	if err != nil {
		return nil, err
	}
	if checker != nil {
		// Audits are evaluated lazily by Err, so the Oracle built inside
		// tip.Run can be registered after the run completes.
		checker.AuditOracle("Oracle", res.Oracle)
		if err := checker.Err(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
	}

	oracle := res.Oracle
	ev := &BenchmarkEval{
		Name:        name,
		Class:       w.Class,
		Cycles:      res.Stats.Cycles,
		Committed:   res.Stats.Committed,
		IPC:         res.Stats.IPC(),
		Stack:       oracle.Stack,
		Interval4k:  interval4k,
		Periodic:    map[uint64]map[profiler.Kind]GranErrors{},
		Random:      map[profiler.Kind]GranErrors{},
		PeriodicRaw: map[profiler.Kind]GranErrors{},
	}
	errsOf := func(sp *profiler.Sampled) GranErrors {
		return GranErrors{
			Inst:  sp.Profile.Error(oracle.Profile, profile.GranInstruction, true),
			Block: sp.Profile.Error(oracle.Profile, profile.GranBlock, true),
			Func:  sp.Profile.Error(oracle.Profile, profile.GranFunction, true),
		}
	}
	for freq, byKind := range periodic {
		ev.Periodic[freq] = map[profiler.Kind]GranErrors{}
		for k, sp := range byKind {
			ev.Periodic[freq][k] = errsOf(sp)
		}
	}
	for k, sp := range random {
		ev.Random[k] = errsOf(sp)
	}
	for k, sp := range periodicRaw {
		ev.PeriodicRaw[k] = errsOf(sp)
	}

	// Cross-profiler relative differences at the base frequency.
	base := periodic[BaseFrequency]
	ev.CrossProfiler = map[profiler.Kind]map[profiler.Kind]float64{}
	for a, sa := range base {
		ev.CrossProfiler[a] = map[profiler.Kind]float64{}
		for bk, sb := range base {
			if a == bk {
				continue
			}
			ev.CrossProfiler[a][bk] = profile.DistributionError(
				sa.Profile.Aggregate(profile.GranInstruction, true),
				sb.Profile.Aggregate(profile.GranInstruction, true))
		}
	}
	return ev, nil
}

// EvalSuite evaluates the selected benchmarks, in parallel when the host
// has spare cores. At most Parallelism evaluations (and their workload
// allocations) are live at once: the semaphore is acquired before the
// goroutine is spawned, so Parallelism=1 really is sequential. After the
// first failure no further benchmarks are launched.
func EvalSuite(opt Options) ([]*BenchmarkEval, error) {
	opt.fill()
	evals := make([]*BenchmarkEval, len(opt.Benchmarks))
	errs := make([]error, len(opt.Benchmarks))
	sem := make(chan struct{}, opt.Parallelism)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i, name := range opt.Benchmarks {
		sem <- struct{}{}
		if failed.Load() {
			<-sem
			break
		}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			defer func() { <-sem }()
			evals[i], errs[i] = EvalBenchmark(name, opt)
			if errs[i] != nil {
				failed.Store(true)
			}
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", opt.Benchmarks[i], err)
		}
	}
	return evals, nil
}
