package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/check"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// DefaultFrequencies are the Fig. 11a sweep points in Hz-equivalents; 4000
// is the paper's default operating point.
var DefaultFrequencies = []uint64{100, 1000, 4000, 10000, 20000}

// BaseFrequency is the paper's default sampling frequency (4 kHz).
const BaseFrequency uint64 = 4000

// Options configures a suite evaluation.
type Options struct {
	// Seed seeds workload interpretation.
	Seed uint64
	// TargetSamples calibrates the 4 kHz-equivalent period. The default
	// 32768 keeps the samples-per-hot-instruction ratio in the same
	// regime as the paper (4 kHz over multi-minute SPEC runs collects
	// ~10^6 samples; our benchmarks are ~500x shorter). See DESIGN.md.
	TargetSamples uint64
	// Scale overrides each benchmark's dynamic-instruction budget
	// (0 = default full scale).
	Scale uint64
	// Benchmarks restricts the suite (nil = all 27).
	Benchmarks []string
	// Frequencies are the sensitivity sweep points (nil = Default).
	Frequencies []uint64
	// Parallelism is the evaluation's total worker budget: it bounds the
	// concurrent benchmark evaluations AND the extra replay workers they
	// spawn, all drawing from one shared semaphore (0 = GOMAXPROCS).
	Parallelism int
	// ReplayWorkers asks each benchmark's captured-trace replay to fan
	// out over up to this many workers (0 or 1 = sequential). Workers
	// beyond the first only materialize when the shared Parallelism
	// budget has idle slots, so a saturated suite never oversubscribes
	// the host; results are byte-identical at any worker count.
	ReplayWorkers int
	// Checked attaches a cycle-level invariant checker (internal/check)
	// to every profiled run and fails the evaluation on any violation.
	Checked bool
	// Streaming fuses each benchmark's capture and replay phases: the
	// cycle-level simulation streams into the profiler matrix through a
	// bounded ring (see tip.RunConfig.Streaming), so peak memory stays
	// independent of trace length and per-benchmark wall-clock approaches
	// max(capture, replay). Intervals are pilot-calibrated, so errors can
	// differ marginally from a non-streaming evaluation of the same suite;
	// the default (non-streaming) path is unchanged.
	Streaming bool
	// PilotCycles overrides the streaming calibration window
	// (0 = tip.DefaultPilotCycles). Ignored unless Streaming.
	PilotCycles uint64
	// Sampled evaluates each benchmark under sampled simulation instead of
	// a full capture: the profiler matrix observes only the measurement
	// windows and the reported cycle total is the stitched estimate.
	// Mutually exclusive with Streaming.
	Sampled bool
	// WindowCycles, WindowInterval, WarmupCycles set the sampled schedule
	// geometry (0 = DefaultSampled*); WarmupAuto sizes the warmup from the
	// fast-forward leg length instead. Ignored unless Sampled.
	WindowCycles   uint64
	WindowInterval uint64
	WarmupCycles   uint64
	WarmupAuto     bool
	// WindowWorkers asks each sampled run to execute its detailed windows
	// checkpoint-parallel on up to this many worker cores. Like
	// ReplayWorkers, workers beyond the first only materialize when the
	// shared Parallelism budget has idle slots, so suite-level and
	// window-level parallelism never oversubscribe the host. Results are
	// byte-identical at any count >= 1 (and any WindowWorkers > 0 request
	// always gets at least one worker — the evaluation's own held slot —
	// so the schedule never silently degrades to the serial variant).
	// Ignored unless Sampled.
	WindowWorkers int
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TargetSamples == 0 {
		o.TargetSamples = 32768
	}
	if o.Benchmarks == nil {
		o.Benchmarks = workload.Names()
	}
	if o.Frequencies == nil {
		o.Frequencies = DefaultFrequencies
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// GranErrors holds one profiler's error at the three granularities.
type GranErrors struct {
	Inst, Block, Func float64
}

// At selects by granularity.
func (g GranErrors) At(gran profile.Granularity) float64 {
	switch gran {
	case profile.GranInstruction:
		return g.Inst
	case profile.GranBlock:
		return g.Block
	default:
		return g.Func
	}
}

// BenchmarkEval is one benchmark's full evaluation: every profiler at every
// sweep frequency (periodic) plus random sampling at the base frequency,
// all observed in a single simulation run like the paper's out-of-band
// methodology (§4).
type BenchmarkEval struct {
	Name  string
	Class string

	Cycles    uint64
	Committed uint64
	IPC       float64

	Stack profile.CycleStack

	// Interval4k is the calibrated 4 kHz-equivalent period in cycles.
	Interval4k uint64

	// Periodic[freq][kind] are periodic-sampling errors.
	Periodic map[uint64]map[profiler.Kind]GranErrors
	// Random[kind] are random-sampling errors at the base frequency.
	Random map[profiler.Kind]GranErrors
	// PeriodicRaw[kind] are base-frequency periodic errors WITHOUT the
	// prime-interval anti-aliasing adjustment — the configuration the
	// paper's periodic sampling corresponds to, and the honest baseline
	// for the Fig. 11b periodic-vs-random comparison.
	PeriodicRaw map[profiler.Kind]GranErrors
	// CrossProfiler[a][b] is the relative difference between two sampled
	// profilers' instruction-level profiles (used by the §5.2 validation
	// experiment: Software vs NCI).
	CrossProfiler map[profiler.Kind]map[profiler.Kind]float64
}

// sweepKinds returns the profilers modelled at non-base frequencies
// (the paper sweeps the three most accurate: NCI, TIP-ILP, TIP).
func sweepKinds() []profiler.Kind {
	return []profiler.Kind{profiler.KindNCI, profiler.KindTIPILP, profiler.KindTIP}
}

// budget is the evaluation's shared worker semaphore: suite-level
// benchmark evaluations and replay-level shard workers all draw slots from
// the same pool, so nested parallelism can never oversubscribe the host.
type budget struct {
	sem chan struct{}
}

func newBudget(slots int) *budget {
	if slots < 1 {
		slots = 1
	}
	return &budget{sem: make(chan struct{}, slots)}
}

// acquire blocks until a slot is free.
func (b *budget) acquire() { b.sem <- struct{}{} }

// tryExtra grabs up to max idle slots without blocking and returns how many
// it got. Extra slots must never be acquired blockingly while holding one:
// a suite full of evaluations each waiting for replay workers would
// deadlock.
func (b *budget) tryExtra(max int) int {
	got := 0
	for got < max {
		select {
		case b.sem <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

// release returns n slots.
func (b *budget) release(n int) {
	for ; n > 0; n-- {
		<-b.sem
	}
}

// Timing is one benchmark evaluation's phase split: the cycle-level capture
// simulation vs the profiler-matrix replay of the capture.
type Timing struct {
	Capture time.Duration
	Replay  time.Duration
	// ReplayWorkers is the worker count the replay actually ran with
	// (≤ Options.ReplayWorkers, depending on idle budget slots).
	ReplayWorkers int
	// WindowWorkers is the checkpoint-parallel worker count a sampled
	// evaluation actually ran with (≤ Options.WindowWorkers, depending on
	// idle budget slots; 0 when the run was serial or not sampled).
	WindowWorkers int
}

// EvalBenchmark runs one benchmark with the full profiler matrix.
func EvalBenchmark(name string, opt Options) (*BenchmarkEval, error) {
	opt.fill()
	b := newBudget(opt.Parallelism)
	b.acquire()
	defer b.release(1)
	ev, _, err := evalBenchmark(context.Background(), b, name, opt)
	return ev, err
}

// evalMatrix is one evaluation's full consumer fan-out, keyed for the
// post-run error extraction.
type evalMatrix struct {
	consumers   []trace.Consumer
	periodic    map[uint64]map[profiler.Kind]*profiler.Sampled
	random      map[profiler.Kind]*profiler.Sampled
	periodicRaw map[profiler.Kind]*profiler.Sampled
	checker     *check.Checker
}

// buildEvalMatrix assembles the profiler matrix: all kinds at the base
// frequency (periodic + random), sweep kinds at the other frequencies, plus
// the raw (non-primed) base-frequency periodic tier. The Oracle reference
// comes from tip.Run itself. interval4k is the calibrated base period;
// rawInterval the non-primed equivalent.
func buildEvalMatrix(name string, w *workload.Workload, core tip.CoreConfig, opt Options, interval4k, rawInterval uint64) *evalMatrix {
	m := &evalMatrix{
		periodic:    map[uint64]map[profiler.Kind]*profiler.Sampled{},
		random:      map[profiler.Kind]*profiler.Sampled{},
		periodicRaw: map[profiler.Kind]*profiler.Sampled{},
	}
	if opt.Checked {
		m.checker = check.New(check.Options{
			Benchmark:       name,
			CommitWidth:     core.CommitWidth,
			ROBEntries:      core.ROBEntries,
			FetchBufEntries: core.FetchBufEntries,
		})
	}
	for _, freq := range opt.Frequencies {
		interval := interval4k * BaseFrequency / freq
		if interval < 4 {
			interval = 4
		}
		interval = sampling.NextPrime(interval)
		kinds := sweepKinds()
		if freq == BaseFrequency {
			kinds = profiler.AllKinds()
		}
		m.periodic[freq] = map[profiler.Kind]*profiler.Sampled{}
		for _, k := range kinds {
			sp := profiler.NewSampled(k, w.Prog, sampling.NewPeriodic(interval))
			m.periodic[freq][k] = sp
			m.consumers = append(m.consumers, sp)
			if m.checker != nil {
				m.checker.AuditSampled(fmt.Sprintf("periodic@%d/%v", freq, k), sp)
			}
		}
	}
	for _, k := range profiler.AllKinds() {
		sp := profiler.NewSampled(k, w.Prog, sampling.NewRandom(interval4k, opt.Seed^0x5eed))
		m.random[k] = sp
		m.consumers = append(m.consumers, sp)
		spRaw := profiler.NewSampled(k, w.Prog, sampling.NewPeriodic(rawInterval))
		m.periodicRaw[k] = spRaw
		m.consumers = append(m.consumers, spRaw)
		if m.checker != nil {
			m.checker.AuditSampled(fmt.Sprintf("random/%v", k), sp)
			m.checker.AuditSampled(fmt.Sprintf("periodic-raw/%v", k), spRaw)
		}
	}
	if m.checker != nil {
		m.consumers = append(m.consumers, m.checker)
	}
	return m
}

// rawIntervalFor is the non-primed base-frequency period derived from a
// cycle count (exact on the captured path, pilot-estimated when streaming).
func rawIntervalFor(cycles, targetSamples uint64) uint64 {
	raw := cycles / targetSamples
	if raw < 16 {
		raw = 16
	}
	return raw
}

// evalBenchmark is EvalBenchmark with the suite plumbing exposed: the
// caller must already hold one budget slot; extra replay workers borrow
// idle slots for the replay phase only. Cancelling ctx aborts the
// evaluation at the next phase boundary (and, when the replay is sharded,
// between record chunks).
func evalBenchmark(ctx context.Context, b *budget, name string, opt Options) (*BenchmarkEval, Timing, error) {
	var tm Timing
	if err := ctx.Err(); err != nil {
		return nil, tm, err
	}
	w, err := workload.LoadScaled(name, opt.Seed, opt.Scale)
	if err != nil {
		return nil, tm, err
	}

	cfg := tip.DefaultRunConfig()
	var res *tip.Result
	var m *evalMatrix
	var interval4k uint64

	if opt.Sampled {
		// Sampled path: one sampled simulation streams its measurement
		// windows into the matrix; the cycle total is the stitched
		// estimate. Extra window workers borrow idle budget slots — the
		// evaluation's own held slot covers the first worker, so a
		// WindowWorkers request never degrades below the parallel
		// schedule (whose output is byte-identical at any count >= 1).
		src := tip.RunConfig{
			Core:          cfg.Core,
			Profilers:     []profiler.Kind{}, // matrix supplied by the hook
			TargetSamples: opt.TargetSamples,
			SamplingSeed:  cfg.SamplingSeed, // schedule jitter: match direct runs
			Sampled:       true,
			ReplayWorkers: 1,
			ExtraConsumersAt: func(interval, estCycles uint64) []trace.Consumer {
				interval4k = interval
				m = buildEvalMatrix(name, w, cfg.Core, opt, interval,
					rawIntervalFor(estCycles, opt.TargetSamples))
				return m.consumers
			},
		}
		src.WindowCycles = opt.WindowCycles
		if src.WindowCycles == 0 {
			src.WindowCycles = DefaultSampledWindow
		}
		src.WindowInterval = opt.WindowInterval
		if src.WindowInterval == 0 {
			src.WindowInterval = DefaultSampledInterval
		}
		src.WarmupCycles = opt.WarmupCycles
		src.WarmupAuto = opt.WarmupAuto
		if !src.WarmupAuto && src.WarmupCycles == 0 && src.WindowCycles != src.WindowInterval {
			src.WarmupCycles = DefaultSampledWarmup
		}
		if opt.WindowWorkers > 0 {
			extra := b.tryExtra(opt.WindowWorkers - 1)
			src.WindowWorkers = 1 + extra
			defer b.release(extra)
		}
		tm.WindowWorkers = src.WindowWorkers
		runStart := time.Now()
		res, err = tip.RunSampled(ctx, w, src)
		tm.Replay = time.Since(runStart)
		if err != nil {
			return nil, tm, err
		}
	} else if opt.Streaming {
		// Fused path: one simulation streams straight into the matrix. The
		// base interval is pilot-calibrated inside the run, so the matrix is
		// assembled by the post-calibration hook; simulation and replay
		// overlap, and the whole fused wall-clock is attributed to Replay
		// (Capture stays 0 — there is no separate capture phase).
		workers := 1
		if opt.ReplayWorkers > 1 {
			extra := b.tryExtra(opt.ReplayWorkers - 1)
			workers += extra
			defer b.release(extra)
		}
		tm.ReplayWorkers = workers
		runStart := time.Now()
		res, err = tip.RunStreaming(ctx, w, tip.RunConfig{
			Core:          cfg.Core,
			Profilers:     []profiler.Kind{}, // matrix supplied by the hook
			TargetSamples: opt.TargetSamples,
			PilotCycles:   opt.PilotCycles,
			ReplayWorkers: workers,
			ExtraConsumersAt: func(interval, estCycles uint64) []trace.Consumer {
				interval4k = interval
				m = buildEvalMatrix(name, w, cfg.Core, opt, interval,
					rawIntervalFor(estCycles, opt.TargetSamples))
				return m.consumers
			},
		})
		tm.Replay = time.Since(runStart)
		if err != nil {
			return nil, tm, err
		}
	} else {
		// The single cycle-level simulation: measure cycles for calibration
		// while capturing the encoded trace the profiler matrix will replay.
		capStart := time.Now()
		capture, stats, err := tip.CaptureWorkload(w, cfg.Core)
		if err != nil {
			return nil, tm, fmt.Errorf("experiments: capture %s: %w", name, err)
		}
		defer capture.Close()
		tm.Capture = time.Since(capStart)
		if err := ctx.Err(); err != nil {
			return nil, tm, err
		}
		// Prime the interval to avoid aliasing with cycle-deterministic
		// synthetic loops (see sampling.NextPrime).
		interval4k = tip.CalibrateInterval(stats.Cycles, opt.TargetSamples)
		m = buildEvalMatrix(name, w, cfg.Core, opt, interval4k,
			rawIntervalFor(stats.Cycles, opt.TargetSamples))

		// Replay the captured trace through the matrix — the deterministic
		// codec hands every consumer the byte-identical record stream the
		// live core produced, without a second simulation. Extra replay
		// workers borrow idle budget slots for the duration of the replay;
		// the worker count never changes the results, only the wall-clock.
		workers := 1
		if opt.ReplayWorkers > 1 {
			extra := b.tryExtra(opt.ReplayWorkers - 1)
			workers += extra
			defer b.release(extra)
		}
		tm.ReplayWorkers = workers
		repStart := time.Now()
		res, err = tip.RunCaptured(ctx, w, capture, stats, tip.RunConfig{
			Core:           cfg.Core,
			Profilers:      []profiler.Kind{}, // matrix supplied below
			SampleInterval: interval4k,
			ExtraConsumers: m.consumers,
			ReplayWorkers:  workers,
		})
		tm.Replay = time.Since(repStart)
		if err != nil {
			return nil, tm, err
		}
	}
	if m.checker != nil {
		// Audits are evaluated lazily by Err, so the Oracle built inside
		// tip.Run can be registered after the run completes.
		m.checker.AuditOracle("Oracle", res.Oracle)
		if err := m.checker.Err(); err != nil {
			return nil, tm, fmt.Errorf("experiments: %s: %w", name, err)
		}
	}
	periodic, random, periodicRaw := m.periodic, m.random, m.periodicRaw

	oracle := res.Oracle
	ev := &BenchmarkEval{
		Name:        name,
		Class:       w.Class,
		Cycles:      res.Stats.Cycles,
		Committed:   res.Stats.Committed,
		IPC:         res.Stats.IPC(),
		Stack:       oracle.Stack,
		Interval4k:  interval4k,
		Periodic:    map[uint64]map[profiler.Kind]GranErrors{},
		Random:      map[profiler.Kind]GranErrors{},
		PeriodicRaw: map[profiler.Kind]GranErrors{},
	}
	errsOf := func(sp *profiler.Sampled) GranErrors {
		return GranErrors{
			Inst:  sp.Profile.Error(oracle.Profile, profile.GranInstruction, true),
			Block: sp.Profile.Error(oracle.Profile, profile.GranBlock, true),
			Func:  sp.Profile.Error(oracle.Profile, profile.GranFunction, true),
		}
	}
	for freq, byKind := range periodic {
		ev.Periodic[freq] = map[profiler.Kind]GranErrors{}
		for k, sp := range byKind {
			ev.Periodic[freq][k] = errsOf(sp)
		}
	}
	for k, sp := range random {
		ev.Random[k] = errsOf(sp)
	}
	for k, sp := range periodicRaw {
		ev.PeriodicRaw[k] = errsOf(sp)
	}

	// Cross-profiler relative differences at the base frequency.
	base := periodic[BaseFrequency]
	ev.CrossProfiler = map[profiler.Kind]map[profiler.Kind]float64{}
	for a, sa := range base {
		ev.CrossProfiler[a] = map[profiler.Kind]float64{}
		for bk, sb := range base {
			if a == bk {
				continue
			}
			ev.CrossProfiler[a][bk] = profile.DistributionError(
				sa.Profile.Aggregate(profile.GranInstruction, true),
				sb.Profile.Aggregate(profile.GranInstruction, true))
		}
	}
	return ev, tm, nil
}

// SuiteTiming aggregates a suite evaluation's phase split: total wall-clock
// plus the per-benchmark capture and replay durations summed across the
// suite (with parallel evaluations these sums exceed the wall-clock).
type SuiteTiming struct {
	Wall    time.Duration
	Capture time.Duration
	Replay  time.Duration
	// MaxReplayWorkers is the largest worker count any benchmark's replay
	// actually ran with.
	MaxReplayWorkers int
	// MaxWindowWorkers is the largest checkpoint-parallel worker count any
	// sampled evaluation actually ran with (0 for non-sampled suites).
	MaxWindowWorkers int
}

// EvalSuite evaluates the selected benchmarks, in parallel when the host
// has spare cores. See EvalSuiteTimed for the scheduling rules.
func EvalSuite(opt Options) ([]*BenchmarkEval, error) {
	evals, _, err := EvalSuiteTimed(context.Background(), opt)
	return evals, err
}

// EvalSuiteTimed evaluates the selected benchmarks and reports the suite's
// capture/replay timing split. Benchmark evaluations and their replay
// workers share one Parallelism-slot budget: each evaluation holds a slot
// for its lifetime (acquired before the goroutine is spawned, so
// Parallelism=1 really is sequential) and replays borrow idle slots for
// extra workers. On the first failure no further benchmarks are launched
// and the context handed to in-flight evaluations is cancelled, aborting
// their replays between record chunks; the first root-cause error (rather
// than a secondary cancellation error) is returned. Cancelling ctx aborts
// the whole suite the same way.
func EvalSuiteTimed(ctx context.Context, opt Options) ([]*BenchmarkEval, SuiteTiming, error) {
	opt.fill()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	evals := make([]*BenchmarkEval, len(opt.Benchmarks))
	timings := make([]Timing, len(opt.Benchmarks))
	errs := make([]error, len(opt.Benchmarks))
	b := newBudget(opt.Parallelism)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i, name := range opt.Benchmarks {
		b.acquire()
		if failed.Load() {
			b.release(1)
			break
		}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			defer b.release(1)
			evals[i], timings[i], errs[i] = evalBenchmark(ctx, b, name, opt)
			if errs[i] != nil {
				failed.Store(true)
				// First failure: pull the plug on every in-flight
				// evaluation instead of letting them run to completion.
				cancel()
			}
		}(i, name)
	}
	wg.Wait()

	var st SuiteTiming
	st.Wall = time.Since(start)
	for _, tm := range timings {
		st.Capture += tm.Capture
		st.Replay += tm.Replay
		if tm.ReplayWorkers > st.MaxReplayWorkers {
			st.MaxReplayWorkers = tm.ReplayWorkers
		}
		if tm.WindowWorkers > st.MaxWindowWorkers {
			st.MaxWindowWorkers = tm.WindowWorkers
		}
	}
	// Prefer the root cause: an evaluation cancelled because a sibling
	// failed reports context.Canceled, which would mask the real error
	// when the failing benchmark sorts later in the suite.
	var firstCancel error
	var firstCancelName string
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if firstCancel == nil {
				firstCancel = err
				firstCancelName = opt.Benchmarks[i]
			}
			continue
		}
		return nil, st, fmt.Errorf("experiments: %s: %w", opt.Benchmarks[i], err)
	}
	if firstCancel != nil {
		return nil, st, fmt.Errorf("experiments: %s: %w", firstCancelName, firstCancel)
	}
	return evals, st, nil
}
