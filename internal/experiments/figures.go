package experiments

import (
	"fmt"
	"sort"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/stats"
	"github.com/tipprof/tip/internal/workload"
)

// figureOrder is the profiler order used across the paper's figures.
var figureOrder = []profiler.Kind{
	profiler.KindSoftware, profiler.KindDispatch, profiler.KindLCI,
	profiler.KindNCI, profiler.KindNCIILP, profiler.KindTIPILP, profiler.KindTIP,
}

// fig8Kinds drops NCI+ILP (a Fig. 11c-only variant).
var fig8Kinds = []profiler.Kind{
	profiler.KindSoftware, profiler.KindDispatch, profiler.KindLCI,
	profiler.KindNCI, profiler.KindTIPILP, profiler.KindTIP,
}

func baseErrors(ev *BenchmarkEval, k profiler.Kind) GranErrors {
	return ev.Periodic[BaseFrequency][k]
}

// suiteAverage averages an extractor across the evals.
func suiteAverage(evals []*BenchmarkEval, f func(*BenchmarkEval) float64) float64 {
	xs := make([]float64, len(evals))
	for i, ev := range evals {
		xs[i] = f(ev)
	}
	return stats.Mean(xs)
}

func classAverage(evals []*BenchmarkEval, class string, f func(*BenchmarkEval) float64) float64 {
	var xs []float64
	for _, ev := range evals {
		if ev.Class == class {
			xs = append(xs, f(ev))
		}
	}
	return stats.Mean(xs)
}

// Fig01 builds Figure 1: average instruction-level profile error per
// profiler across the suite (a), and for imagick alone (b).
func Fig01(evals []*BenchmarkEval) *Table {
	t := &Table{
		Title:  "Figure 1: instruction-level profile error (average / imagick)",
		Header: []string{"Profiler", "Average", "Imagick", "Paper avg"},
		Notes: []string{
			"paper averages: Software 61.8%, Dispatch 53.1%, LCI 55.4%, NCI 9.3%, TIP 1.6%; imagick NCI 21.0%",
		},
	}
	paper := map[profiler.Kind]string{
		profiler.KindSoftware: "61.8%", profiler.KindDispatch: "53.1%",
		profiler.KindLCI: "55.4%", profiler.KindNCI: "9.3%",
		profiler.KindNCIILP: "19.3%", profiler.KindTIPILP: "7.2%",
		profiler.KindTIP: "1.6%",
	}
	var imagick *BenchmarkEval
	for _, ev := range evals {
		if ev.Name == "imagick" {
			imagick = ev
		}
	}
	for _, k := range figureOrder {
		avg := suiteAverage(evals, func(ev *BenchmarkEval) float64 { return baseErrors(ev, k).Inst })
		im := "-"
		if imagick != nil {
			im = pct(baseErrors(imagick, k).Inst)
		}
		t.AddRow(k.String(), pct(avg), im, paper[k])
	}
	return t
}

// Fig07 builds Figure 7: normalized commit cycle stacks per benchmark.
func Fig07(evals []*BenchmarkEval) *Table {
	t := &Table{
		Title: "Figure 7: normalized cycle stacks collected at commit",
		Header: []string{"Benchmark", "Class", "IPC",
			"Execution", "ALU stall", "Load stall", "Store stall",
			"Front-end", "Mispredict", "Misc. flush"},
		Notes: []string{
			"classes per the paper's rule: >50% execution = Compute; else >3% flush = Flush; else Stall",
		},
	}
	for _, ev := range evals {
		n := ev.Stack.Normalized()
		row := []string{ev.Name, ev.Stack.Class(), fmt.Sprintf("%.2f", ev.IPC)}
		for c := 0; c < profile.NumCategories; c++ {
			row = append(row, pct(n[c]))
		}
		t.AddRow(row...)
	}
	return t
}

// errorFigure builds the common Fig. 8/9/10 shape: per-benchmark errors per
// profiler at one granularity, plus class and overall averages.
func errorFigure(evals []*BenchmarkEval, title string, gran profile.Granularity,
	kinds []profiler.Kind, notes ...string) *Table {
	header := []string{"Benchmark", "Class"}
	for _, k := range kinds {
		header = append(header, k.String())
	}
	t := &Table{Title: title, Header: header, Notes: notes}
	for _, ev := range evals {
		row := []string{ev.Name, ev.Class}
		for _, k := range kinds {
			row = append(row, pct(baseErrors(ev, k).At(gran)))
		}
		t.AddRow(row...)
	}
	for _, class := range []string{"Compute", "Flush", "Stall"} {
		row := []string{"avg:" + class, ""}
		for _, k := range kinds {
			row = append(row, pct(classAverage(evals, class, func(ev *BenchmarkEval) float64 {
				return baseErrors(ev, k).At(gran)
			})))
		}
		t.AddRow(row...)
	}
	row := []string{"avg:All", ""}
	for _, k := range kinds {
		row = append(row, pct(suiteAverage(evals, func(ev *BenchmarkEval) float64 {
			return baseErrors(ev, k).At(gran)
		})))
	}
	t.AddRow(row...)
	return t
}

// Fig08 builds Figure 8: function-level errors for all profilers.
func Fig08(evals []*BenchmarkEval) *Table {
	return errorFigure(evals, "Figure 8: function-level profile error",
		profile.GranFunction, fig8Kinds,
		"paper averages: Software 9.1%, Dispatch 5.8%, LCI 1.6%, NCI 0.6%, TIP-ILP 0.4%, TIP 0.3%")
}

// Fig09 builds Figure 9: basic-block-level errors (accurate profilers).
func Fig09(evals []*BenchmarkEval) *Table {
	return errorFigure(evals, "Figure 9: basic-block-level profile error",
		profile.GranBlock,
		[]profiler.Kind{profiler.KindLCI, profiler.KindNCI, profiler.KindTIPILP, profiler.KindTIP},
		"paper averages: LCI 11.9% (lbm 56.1%), NCI 2.3%, TIP-ILP 1.2%, TIP 0.7%")
}

// Fig10 builds Figure 10: instruction-level errors (accurate profilers).
func Fig10(evals []*BenchmarkEval) *Table {
	return errorFigure(evals, "Figure 10: instruction-level profile error",
		profile.GranInstruction,
		[]profiler.Kind{profiler.KindNCI, profiler.KindTIPILP, profiler.KindTIP},
		"paper averages: NCI 9.3% (imagick 21.0%), TIP-ILP 7.2%, TIP 1.6% (gcc 5.0%)")
}

// Fig11a builds the sampling-frequency sensitivity sweep.
func Fig11a(evals []*BenchmarkEval, freqs []uint64) *Table {
	if freqs == nil {
		freqs = DefaultFrequencies
	}
	header := []string{"Profiler"}
	for _, f := range freqs {
		header = append(header, fmt.Sprintf("%d Hz", f))
	}
	t := &Table{
		Title:  "Figure 11a: average instruction-level error vs sampling frequency",
		Header: header,
		Notes: []string{
			"paper: errors fall with frequency for all profilers; only TIP keeps improving beyond 4 kHz",
		},
	}
	for _, k := range sweepKinds() {
		row := []string{k.String()}
		for _, f := range freqs {
			row = append(row, pct(suiteAverage(evals, func(ev *BenchmarkEval) float64 {
				return ev.Periodic[f][k].Inst
			})))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig11b compares periodic and random sampling for TIP.
func Fig11b(evals []*BenchmarkEval) *Table {
	t := &Table{
		Title:  "Figure 11b: TIP instruction-level error, periodic vs random sampling",
		Header: []string{"Benchmark", "Class", "Periodic", "Periodic(primed)", "Random"},
		Notes: []string{
			"paper: average falls from 1.6% (periodic) to 1.1% (random); repetitive benchmarks benefit most",
			"Periodic = raw interval (alias-prone, like the paper's); Periodic(primed) = prime interval (used everywhere else); Random = random cycle within each interval",
		},
	}
	for _, ev := range evals {
		t.AddRow(ev.Name, ev.Class,
			pct(ev.PeriodicRaw[profiler.KindTIP].Inst),
			pct(baseErrors(ev, profiler.KindTIP).Inst),
			pct(ev.Random[profiler.KindTIP].Inst))
	}
	t.AddRow("avg:All", "",
		pct(suiteAverage(evals, func(ev *BenchmarkEval) float64 {
			return ev.PeriodicRaw[profiler.KindTIP].Inst
		})),
		pct(suiteAverage(evals, func(ev *BenchmarkEval) float64 {
			return baseErrors(ev, profiler.KindTIP).Inst
		})),
		pct(suiteAverage(evals, func(ev *BenchmarkEval) float64 {
			return ev.Random[profiler.KindTIP].Inst
		})))
	return t
}

// Fig11c builds the NCI+ILP box plots: making NCI commit-parallelism-aware
// hurts (error rises), unlike TIP.
func Fig11c(evals []*BenchmarkEval) *Table {
	t := &Table{
		Title:  "Figure 11c: instruction-level error distribution (box plots)",
		Header: []string{"Profiler", "Min", "Q1", "Median", "Q3", "Max", "Mean"},
		Notes: []string{
			"paper: NCI+ILP average error rises to 19.3% vs NCI 9.3%; TIP stays at 1.6%",
		},
	}
	for _, k := range []profiler.Kind{profiler.KindNCIILP, profiler.KindNCI, profiler.KindTIPILP, profiler.KindTIP} {
		xs := make([]float64, len(evals))
		for i, ev := range evals {
			xs[i] = baseErrors(ev, k).Inst
		}
		b := stats.Summarize(xs)
		t.AddRow(k.String(), pct(b.Min), pct(b.Q1), pct(b.Median), pct(b.Q3), pct(b.Max), pct(stats.Mean(xs)))
	}
	return t
}

// Fig12 runs the Imagick case study and renders the function- and
// instruction-level profiles of Oracle, TIP and NCI for ceil (§6).
func Fig12(opt Options) (*Table, error) {
	opt.fill()
	w, err := workload.LoadScaled("imagick", opt.Seed, opt.Scale)
	if err != nil {
		return nil, err
	}
	rc := tip.DefaultRunConfig()
	rc.TargetSamples = opt.TargetSamples
	rc.WithBreakdown = true
	res, err := tip.Run(w, rc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 12: Imagick profiles — Oracle vs TIP vs NCI",
		Header: []string{"Symbol", "Oracle", "TIP", "NCI"},
		Notes: []string{
			"paper: TIP attributes ceil's time to frflags/fsflags; NCI blames feq.d and ret",
		},
	}
	orP := res.Oracle.Profile
	tipP := res.Sampled[profiler.KindTIP].Profile
	nciP := res.Sampled[profiler.KindNCI].Profile

	// Function-level shares.
	or := orP.TopFunctions(0, true)
	shareOf := func(p *profile.Profile, name string) float64 {
		for _, r := range p.TopFunctions(0, true) {
			if r.Name == name {
				return r.Share
			}
		}
		return 0
	}
	sort.Slice(or, func(i, j int) bool { return or[i].Share > or[j].Share })
	for _, r := range or {
		if r.Share < 0.005 {
			continue
		}
		t.AddRow("fn "+r.Name, pct(r.Share), pct(shareOf(tipP, r.Name)), pct(shareOf(nciP, r.Name)))
	}
	// ceil instruction-level shares.
	rows := orP.FunctionInstProfile("ceil")
	tipRows := tipP.FunctionInstProfile("ceil")
	nciRows := nciP.FunctionInstProfile("ceil")
	for i, r := range rows {
		tv, nv := 0.0, 0.0
		if i < len(tipRows) {
			tv = tipRows[i].Share
		}
		if i < len(nciRows) {
			nv = nciRows[i].Share
		}
		t.AddRow("ceil "+r.Name, pct(r.Share), pct(tv), pct(nv))
	}
	return t, nil
}

// Fig13Result carries the optimization-comparison outcomes for tests.
type Fig13Result struct {
	Table      *Table
	Speedup    float64
	OrigIPC    float64
	OptIPC     float64
	OrigStacks map[string]profile.CycleStack
	OptStacks  map[string]profile.CycleStack
	OrigCycles uint64
	OptCycles  uint64
}

// Fig13 compares original and optimized Imagick: per-function cycle stacks
// and the overall speedup (§6, Fig. 13).
func Fig13(opt Options) (*Fig13Result, error) {
	opt.fill()
	run := func(name string) (*tip.Result, error) {
		w, err := workload.LoadScaled(name, opt.Seed, opt.Scale)
		if err != nil {
			return nil, err
		}
		rc := tip.DefaultRunConfig()
		rc.TargetSamples = opt.TargetSamples
		rc.WithBreakdown = true
		rc.Profilers = []profiler.Kind{profiler.KindTIP}
		return tip.Run(w, rc)
	}
	orig, err := run("imagick")
	if err != nil {
		return nil, err
	}
	optRes, err := run("imagick-opt")
	if err != nil {
		return nil, err
	}
	fns := []string{"MeanShiftImage", "floor", "ceil", "MorphologyApply"}
	out := &Fig13Result{
		Table: &Table{
			Title: "Figure 13: Imagick original vs optimized — per-function cycle breakdown",
			Header: []string{"Function", "Variant", "Cycles",
				"Execution", "ALU stall", "Load stall", "Store stall",
				"Front-end", "Mispredict", "Misc. flush"},
		},
		Speedup:    float64(orig.Stats.Cycles) / float64(optRes.Stats.Cycles),
		OrigIPC:    orig.Stats.IPC(),
		OptIPC:     optRes.Stats.IPC(),
		OrigCycles: orig.Stats.Cycles,
		OptCycles:  optRes.Stats.Cycles,
		OrigStacks: map[string]profile.CycleStack{},
		OptStacks:  map[string]profile.CycleStack{},
	}
	for _, fn := range fns {
		for _, v := range []struct {
			label string
			res   *tip.Result
			dst   map[string]profile.CycleStack
		}{{"orig", orig, out.OrigStacks}, {"opt", optRes, out.OptStacks}} {
			st := v.res.Oracle.FunctionStack(fn)
			v.dst[fn] = st
			row := []string{fn, v.label, fmt.Sprintf("%.0f", st.Total)}
			for c := 0; c < profile.NumCategories; c++ {
				row = append(row, fmt.Sprintf("%.0f", st.Cycles[c]))
			}
			out.Table.AddRow(row...)
		}
	}
	out.Table.Notes = append(out.Table.Notes,
		fmt.Sprintf("speedup %.2fx (paper 1.93x); IPC %.2f -> %.2f (paper 1.2 -> 2.3)",
			out.Speedup, out.OrigIPC, out.OptIPC))
	return out, nil
}

// Table1 renders the simulated configuration.
func Table1() *Table {
	cfg := tip.DefaultCoreConfig()
	t := &Table{
		Title:  "Table 1: simulated configuration",
		Header: []string{"Part", "Configuration"},
	}
	t.AddRow("Core", fmt.Sprintf("OoO BOOM-style model @ %.1f GHz", float64(cfg.ClockHz)/1e9))
	t.AddRow("Front-end", fmt.Sprintf("%d-wide fetch, %d-entry fetch buffer, %d-wide decode, TAGE predictor, max %d outstanding branches",
		cfg.FetchWidth, cfg.FetchBufEntries, cfg.DispatchWidth, cfg.MaxBranches))
	t.AddRow("Execute", fmt.Sprintf("%d-entry ROB (%d banks), %d-entry %d-issue INT queue, %d-entry %d-issue MEM queue, %d-entry %d-issue FP queue",
		cfg.ROBEntries, cfg.CommitWidth,
		cfg.IntIQ.Entries, cfg.IntIQ.Width, cfg.MemIQ.Entries, cfg.MemIQ.Width, cfg.FPIQ.Entries, cfg.FPIQ.Width))
	t.AddRow("LSU", fmt.Sprintf("%d-entry load/store queue, %d-entry store buffer", cfg.LSQEntries, cfg.StoreBufEntries))
	h := cfg.Hierarchy
	t.AddRow("L1", fmt.Sprintf("%d KB %d-way I-cache, %d KB %d-way D-cache w/ %d MSHRs, next-line prefetcher from L2",
		h.L1I.SizeBytes>>10, h.L1I.Ways, h.L1D.SizeBytes>>10, h.L1D.Ways, h.L1D.MSHRs))
	t.AddRow("L2/LLC", fmt.Sprintf("%d KB %d-way L2 w/ %d MSHRs, %d MB %d-way LLC w/ %d MSHRs",
		h.L2.SizeBytes>>10, h.L2.Ways, h.L2.MSHRs, h.LLC.SizeBytes>>20, h.LLC.Ways, h.LLC.MSHRs))
	t.AddRow("TLB", fmt.Sprintf("page-table walker, %d-entry fully-assoc L1 I/D-TLBs, %d-entry direct-mapped L2 TLB",
		cfg.TLB.L1Entries, cfg.TLB.L2Entries))
	t.AddRow("Memory", fmt.Sprintf("banked DRAM: %d banks, %d B rows, row hit/miss %d/%d cycles, queue depth %d",
		h.DRAM.Banks, h.DRAM.RowBytes, h.DRAM.RowHit, h.DRAM.RowMiss, h.DRAM.QueueDepth))
	t.AddRow("OS", "synthetic demand-paging fault handler (no full OS)")
	return t
}

// OverheadTable renders the §3.2 overhead analysis.
func OverheadTable() *Table {
	o := profiler.Overhead{CommitWidth: 4, ClockHz: 3_200_000_000, SampleHz: 4000}
	t := &Table{
		Title:  "Section 3.2: TIP overhead analysis",
		Header: []string{"Quantity", "Value", "Paper"},
	}
	t.AddRow("TIP storage", fmt.Sprintf("%d B", o.StorageBytes()), "57 B")
	t.AddRow("Oracle data rate", fmt.Sprintf("%.0f GB/s", float64(o.OracleBytesPerSecond())/1e9), "179 GB/s")
	t.AddRow("TIP sample size", fmt.Sprintf("%d B", o.TIPSampleBytes()), "88 B")
	t.AddRow("non-ILP sample size", fmt.Sprintf("%d B", o.NonILPSampleBytes()), "56 B")
	t.AddRow("TIP data rate", fmt.Sprintf("%d KB/s", o.TIPBytesPerSecond()/1000), "352 KB/s")
	t.AddRow("TIP CSR payload rate", fmt.Sprintf("%d KB/s", o.TIPCSRBytesPerSecond()/1000), "192 KB/s")
	t.AddRow("non-ILP data rate", fmt.Sprintf("%d KB/s", o.NonILPBytesPerSecond()/1000), "224 KB/s")
	t.AddRow("reduction vs Oracle", fmt.Sprintf("%.0fx", o.ReductionVsOracle()), "several orders of magnitude")
	return t
}

// Validation renders the §5.2-style validation: the relative difference
// between Software and NCI profiles (the paper compared perf vs PEBS on an
// i7-4770 — 69% — against Software vs NCI on FireSim — 57%).
func Validation(evals []*BenchmarkEval) *Table {
	t := &Table{
		Title:  "Validation: Software vs NCI relative profile difference",
		Header: []string{"Granularity", "Average difference", "Paper (FireSim)", "Paper (Intel)"},
	}
	instAvg := suiteAverage(evals, func(ev *BenchmarkEval) float64 {
		return ev.CrossProfiler[profiler.KindSoftware][profiler.KindNCI]
	})
	t.AddRow("instruction", pct(instAvg), "57%", "69%")
	funcAvg := suiteAverage(evals, func(ev *BenchmarkEval) float64 {
		// Function-level gap approximated by |err_sw - err_nci|.
		d := baseErrors(ev, profiler.KindSoftware).Func - baseErrors(ev, profiler.KindNCI).Func
		if d < 0 {
			d = -d
		}
		return d
	})
	t.AddRow("function", pct(funcAvg), "7%", "4%")
	return t
}

// SamplingOverhead measures the §3.2 sampling-runtime overhead by actually
// injecting the PMU interrupt (pipeline drain + handler + replay) at a
// range of sampling intervals. The paper measures 1.0-1.1% on an i7-4770 at
// 4 kHz (one interrupt per 800,000 cycles at 3.2 GHz); the sweep shows our
// per-interrupt cost and the overhead it implies at the paper's interval.
func SamplingOverhead(opt Options) (*Table, error) {
	opt.fill()
	w, err := workload.LoadScaled("imagick", opt.Seed, opt.Scale)
	if err != nil {
		return nil, err
	}
	base, err := tip.MeasureStats(w, tip.DefaultCoreConfig())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Section 3.2: sampling-interrupt runtime overhead (imagick)",
		Header: []string{"Interval (cycles)", "Interrupts", "Overhead", "Cycles/interrupt"},
		Notes: []string{
			"paper: 1.1% runtime overhead at 4 kHz = one interrupt per 800,000 cycles on an i7-4770",
		},
	}
	var perInterrupt float64
	for _, interval := range []uint64{100_000, 20_000, 5_000, 1_000} {
		// Streams are fresh per run; Reset re-arms the loaded workload
		// instead of paying LoadScaled again for every sweep point.
		w.Reset()
		cfg := tip.DefaultCoreConfig()
		cfg.SampleInterruptEvery = interval
		stats, err := tip.MeasureStats(w, cfg)
		if err != nil {
			return nil, err
		}
		over := float64(stats.Cycles)/float64(base.Cycles) - 1
		cpi := 0.0
		if stats.PMUInterrupts > 0 {
			cpi = float64(stats.Cycles-base.Cycles) / float64(stats.PMUInterrupts)
			perInterrupt = cpi
		}
		t.AddRow(fmt.Sprintf("%d", interval),
			fmt.Sprintf("%d", stats.PMUInterrupts),
			pct2(over), fmt.Sprintf("%.0f", cpi))
	}
	implied := perInterrupt / 800_000
	t.Notes = append(t.Notes, fmt.Sprintf(
		"implied overhead at the paper's 800k-cycle interval: %s with our ~20-cycle CSR-copy handler; "+
			"perf's real interrupt path (context save, kernel entry, buffer management) costs thousands of "+
			"cycles per sample, which is how the paper reaches ~1.1%%", pct2(implied)))
	return t, nil
}
