package experiments

import (
	"context"
	"fmt"
	"time"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/workload"
)

// SampledOptions parameterises one sampled-vs-full accuracy comparison.
type SampledOptions struct {
	// Seed seeds workload interpretation (0 = 1).
	Seed uint64
	// Scale overrides the benchmark's dynamic-instruction budget
	// (0 = default full scale).
	Scale uint64
	// TargetSamples calibrates the sampling period (0 = 32768, matching
	// the suite evaluation's 4 kHz-equivalent regime).
	TargetSamples uint64
	// WindowCycles, WindowInterval, WarmupCycles define the sampled
	// schedule (see tip.RunConfig). Zero WindowCycles/WindowInterval
	// select DefaultSampledWindow/DefaultSampledInterval.
	WindowCycles   uint64
	WindowInterval uint64
	WarmupCycles   uint64
	// WarmupAuto derives WarmupCycles from the fast-forward leg length
	// (tip.AutoWarmupCycles), overriding WarmupCycles.
	WarmupAuto bool
	// WindowWorkers runs the sampled schedule's detailed windows on up to
	// this many concurrent worker cores over a serial functional sweep
	// (0 = serial schedule; output is byte-identical at any count >= 1).
	WindowWorkers int
	// Checked attaches the cycle-level invariant checker to both runs.
	Checked bool
	// ReplayWorkers fans each run's profiler matrix over up to this many
	// goroutines (0 or 1 = sequential).
	ReplayWorkers int
}

// Default sampled-schedule geometry: 8K-cycle measurement windows, one per
// 128K cycles (a 1/16 measured fraction), each preceded by an 8K-cycle
// detailed warmup absorbing post-fast-forward transients. Chosen
// empirically on the suite: windows shorter than 8K cycles get noisy on
// stall-dominated workloads (one DRAM burst dominates the window CPI),
// warmups shorter than the window leave warm-state transients in the
// measurement, and the 1/16 fraction is the widest that still leaves the
// trapezoidal stitching enough windows to track phase ramps at benchmark
// scales, landing under 2% cycle error at 4x+ effective speed.
const (
	DefaultSampledWindow   = 8 << 10
	DefaultSampledInterval = 128 << 10
	DefaultSampledWarmup   = 8 << 10
)

func (o *SampledOptions) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TargetSamples == 0 {
		o.TargetSamples = 32768
	}
	if o.WindowCycles == 0 {
		o.WindowCycles = DefaultSampledWindow
	}
	if o.WindowInterval == 0 {
		o.WindowInterval = DefaultSampledInterval
	}
	if o.WindowCycles != o.WindowInterval && o.WarmupCycles == 0 {
		o.WarmupCycles = DefaultSampledWarmup
	}
}

// SampledCompare is one benchmark's sampled-vs-full comparison: the same
// workload simulated in full and under the sampled schedule, with the full
// run's Oracle as ground truth for both runs' profilers.
type SampledCompare struct {
	Name  string
	Class string

	// Full-run ground truth.
	FullCycles    uint64
	FullCommitted uint64
	FullWall      time.Duration

	// Sampled run.
	EstCycles        uint64
	SampledWall      time.Duration
	DetailedFraction float64
	Windows          uint64
	FFInstructions   uint64
	// WindowWorkers, SweepSeconds and MeasureSeconds describe the
	// checkpoint-parallel schedule when it ran (WindowWorkers 0 = the
	// serial path; the wall-clock split is then zero).
	WindowWorkers  int
	SweepSeconds   float64
	MeasureSeconds float64

	// CPIError is the stitched estimate's weighted CPI error,
	// |EstCycles - FullCycles| / FullCycles. (Committed instructions are
	// conserved across the two runs, so cycle error and CPI error are
	// the same number.)
	CPIError float64
	// Speedup is the effective cycles/s ratio: (EstCycles/SampledWall) /
	// (FullCycles/FullWall).
	Speedup float64

	// FullErr[k] is profiler k's error against the full-run Oracle when
	// it observed the full trace — the baseline attribution error.
	FullErr map[profiler.Kind]GranErrors
	// SampledErr[k] is profiler k's error against the full-run Oracle
	// when it observed only the measurement windows — the baseline plus
	// whatever the sampling schedule added.
	SampledErr map[profiler.Kind]GranErrors
	// OracleDrift is the sampled-run Oracle's profile error against the
	// full-run Oracle: how far window-only exact attribution sits from
	// whole-run exact attribution.
	OracleDrift GranErrors
}

// EffectiveRate returns the sampled run's effective simulation rate in
// estimated cycles per second.
func (c *SampledCompare) EffectiveRate() float64 {
	if c.SampledWall <= 0 {
		return 0
	}
	return float64(c.EstCycles) / c.SampledWall.Seconds()
}

// FullRate returns the full run's simulation rate in cycles per second.
func (c *SampledCompare) FullRate() float64 {
	if c.FullWall <= 0 {
		return 0
	}
	return float64(c.FullCycles) / c.FullWall.Seconds()
}

// CompareSampled runs name twice on the same workload — once in full, once
// under opt's sampled schedule — and reports the sampled run's speed and
// accuracy against the full run's ground truth. Both runs use the streaming
// pipeline and the same calibrated-interval regime, so the wall-clock ratio
// isolates what sampling buys.
func CompareSampled(ctx context.Context, name string, opt SampledOptions) (*SampledCompare, error) {
	opt.fill()
	if ctx == nil {
		ctx = context.Background()
	}
	w, err := workload.LoadScaled(name, opt.Seed, opt.Scale)
	if err != nil {
		return nil, err
	}

	rc := tip.DefaultRunConfig()
	rc.TargetSamples = opt.TargetSamples
	rc.Check = opt.Checked
	rc.ReplayWorkers = opt.ReplayWorkers

	fullStart := time.Now()
	full, err := tip.RunStreaming(ctx, w, rc)
	if err != nil {
		return nil, fmt.Errorf("experiments: full run %s: %w", name, err)
	}
	fullWall := time.Since(fullStart)

	src := rc
	src.Sampled = true
	src.WindowCycles = opt.WindowCycles
	src.WindowInterval = opt.WindowInterval
	src.WarmupCycles = opt.WarmupCycles
	src.WarmupAuto = opt.WarmupAuto
	src.WindowWorkers = opt.WindowWorkers
	sampledStart := time.Now()
	sampled, err := tip.RunSampled(ctx, w, src)
	if err != nil {
		return nil, fmt.Errorf("experiments: sampled run %s: %w", name, err)
	}
	sampledWall := time.Since(sampledStart)

	c := &SampledCompare{
		Name:          name,
		Class:         w.Class,
		FullCycles:    full.Stats.Cycles,
		FullCommitted: full.Stats.Committed,
		FullWall:      fullWall,
		EstCycles:     sampled.Stats.Cycles,
		SampledWall:   sampledWall,
		FullErr:       map[profiler.Kind]GranErrors{},
		SampledErr:    map[profiler.Kind]GranErrors{},
	}
	if sr := sampled.Sampling; sr != nil {
		c.DetailedFraction = sr.DetailedFraction()
		c.Windows = sr.Windows
		c.FFInstructions = sr.FFInstructions
		c.WindowWorkers = sr.WindowWorkers
		c.SweepSeconds = sr.SweepSeconds
		c.MeasureSeconds = sr.MeasureSeconds
	}
	if c.FullCycles > 0 {
		d := float64(c.EstCycles) - float64(c.FullCycles)
		if d < 0 {
			d = -d
		}
		c.CPIError = d / float64(c.FullCycles)
	}
	if fullWall > 0 && sampledWall > 0 {
		c.Speedup = c.EffectiveRate() / c.FullRate()
	}

	// Attribution: both runs' profilers against the one ground truth —
	// the full run's Oracle. The two runs share w.Prog, so profiles are
	// directly comparable index for index.
	truth := full.Oracle.Profile
	errsAgainst := func(p *profile.Profile) GranErrors {
		return GranErrors{
			Inst:  p.Error(truth, profile.GranInstruction, true),
			Block: p.Error(truth, profile.GranBlock, true),
			Func:  p.Error(truth, profile.GranFunction, true),
		}
	}
	for k, sp := range full.Sampled {
		c.FullErr[k] = errsAgainst(sp.Profile)
	}
	for k, sp := range sampled.Sampled {
		c.SampledErr[k] = errsAgainst(sp.Profile)
	}
	c.OracleDrift = errsAgainst(sampled.Oracle.Profile)
	return c, nil
}

// SampledTable renders sampled-vs-full comparisons as a report table: one
// row per benchmark with speed and CPI accuracy, then one row per profiler
// showing full-trace vs sampled attribution error at instruction
// granularity.
func SampledTable(comps []*SampledCompare) *Table {
	t := &Table{
		Title: "Sampled simulation: speed and accuracy vs full simulation",
		Header: []string{"benchmark", "full Mcyc/s", "eff Mcyc/s", "speedup",
			"CPI err", "fraction", "windows", "oracle drift"},
	}
	for _, c := range comps {
		t.AddRow(c.Name,
			fmt.Sprintf("%.2f", c.FullRate()/1e6),
			fmt.Sprintf("%.2f", c.EffectiveRate()/1e6),
			fmt.Sprintf("%.2fx", c.Speedup),
			pct2(c.CPIError),
			fmt.Sprintf("%.3f", c.DetailedFraction),
			fmt.Sprintf("%d", c.Windows),
			pct2(c.OracleDrift.Inst))
	}
	for _, c := range comps {
		for _, k := range profiler.AllKinds() {
			t.AddRow(fmt.Sprintf("%s/%v", c.Name, k),
				"", "", "",
				"", "", "",
				fmt.Sprintf("full %s sampled %s", pct2(c.FullErr[k].Inst), pct2(c.SampledErr[k].Inst)))
		}
	}
	t.Notes = append(t.Notes,
		"CPI err: |estimated - full| / full total cycles (instruction counts are conserved).",
		"oracle drift: sampled-run Oracle profile vs full-run Oracle profile (instruction granularity).",
		"per-profiler rows: attribution error vs the full-run Oracle, full trace vs measurement windows only.")
	return t
}
