package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/tipprof/tip/internal/cpu"
)

// TestEvalSuiteTimedPreCancelled asserts an already-cancelled context stops
// the suite before any cycle-level simulation starts.
func TestEvalSuiteTimedPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := cpu.RunsStarted()
	_, _, err := EvalSuiteTimed(ctx, detOpts("x264", "lbm"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started := cpu.RunsStarted() - before; started != 0 {
		t.Fatalf("%d simulations started under a cancelled context", started)
	}
}

// TestEvalSuiteTimedReportsRootCause asserts the first real failure wins over
// the secondary context.Canceled errors it triggers in sibling evaluations.
func TestEvalSuiteTimedReportsRootCause(t *testing.T) {
	opt := detOpts("x264", "no-such-benchmark", "lbm")
	opt.Parallelism = 2
	_, _, err := EvalSuiteTimed(context.Background(), opt)
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("root cause masked by cancellation: %v", err)
	}
	if !strings.Contains(err.Error(), "no-such-benchmark") {
		t.Fatalf("error does not name the failing benchmark: %v", err)
	}
}

// TestEvalSuiteTimedPhaseSplit sanity-checks the reported timing: both phases
// ran, and their sum is consistent with having actually timed something.
func TestEvalSuiteTimedPhaseSplit(t *testing.T) {
	opt := detOpts("x264")
	opt.ReplayWorkers = 2
	opt.Parallelism = 2
	evals, timing, err := EvalSuiteTimed(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 1 || evals[0] == nil {
		t.Fatalf("expected one evaluation, got %+v", evals)
	}
	if timing.Capture <= 0 || timing.Replay <= 0 {
		t.Fatalf("phase timings not recorded: %+v", timing)
	}
	if timing.Wall < timing.Capture {
		t.Fatalf("wall %v below the sequential capture phase %v", timing.Wall, timing.Capture)
	}
	if timing.MaxReplayWorkers < 1 || timing.MaxReplayWorkers > 2 {
		t.Fatalf("MaxReplayWorkers = %d, want 1..2", timing.MaxReplayWorkers)
	}
}
