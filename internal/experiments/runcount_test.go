package experiments

import (
	"testing"

	"github.com/tipprof/tip/internal/cpu"
)

// TestEvalBenchmarkSingleSimulation asserts the capture/replay pipeline's
// core economy: one benchmark evaluation costs exactly one cycle-level
// simulation, even though it feeds the Oracle plus the full profiler matrix
// (~36 consumers). Before the capture/replay restructuring this was two —
// an unprofiled calibration pass and a profiled pass.
func TestEvalBenchmarkSingleSimulation(t *testing.T) {
	opt := goldenOpts("x264")
	before := cpu.RunsStarted()
	if _, err := EvalBenchmark("x264", opt); err != nil {
		t.Fatal(err)
	}
	if got := cpu.RunsStarted() - before; got != 1 {
		t.Fatalf("EvalBenchmark performed %d cycle-level simulations; want exactly 1", got)
	}
}
