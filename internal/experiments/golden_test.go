package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_eval.txt from the current implementation")

// goldenOpts pins every evaluation knob so the golden file is a function of
// the implementation only.
func goldenOpts(benchmarks ...string) Options {
	return Options{
		Seed:          1,
		Scale:         60_000,
		TargetSamples: 512,
		Frequencies:   []uint64{100, BaseFrequency},
		Benchmarks:    benchmarks,
		Parallelism:   1,
	}
}

// renderEval serializes a BenchmarkEval with full float64 precision and a
// deterministic field order, so byte-equality of the rendering is
// bit-equality of the results.
func renderEval(ev *BenchmarkEval) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark %s class %s\n", ev.Name, ev.Class)
	fmt.Fprintf(&b, "cycles %d committed %d ipc %.17g interval4k %d\n",
		ev.Cycles, ev.Committed, ev.IPC, ev.Interval4k)
	fmt.Fprintf(&b, "stack total %.17g", ev.Stack.Total)
	for c := 0; c < profile.NumCategories; c++ {
		fmt.Fprintf(&b, " %.17g", ev.Stack.Cycles[c])
	}
	b.WriteString("\n")

	freqs := make([]uint64, 0, len(ev.Periodic))
	for f := range ev.Periodic {
		freqs = append(freqs, f)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] < freqs[j] })
	writeKinds := func(label string, m map[profiler.Kind]GranErrors) {
		kinds := make([]int, 0, len(m))
		for k := range m {
			kinds = append(kinds, int(k))
		}
		sort.Ints(kinds)
		for _, ki := range kinds {
			g := m[profiler.Kind(ki)]
			fmt.Fprintf(&b, "%s %v %.17g %.17g %.17g\n",
				label, profiler.Kind(ki), g.Inst, g.Block, g.Func)
		}
	}
	for _, f := range freqs {
		writeKinds(fmt.Sprintf("periodic@%d", f), ev.Periodic[f])
	}
	writeKinds("random", ev.Random)
	writeKinds("periodic-raw", ev.PeriodicRaw)

	as := make([]int, 0, len(ev.CrossProfiler))
	for a := range ev.CrossProfiler {
		as = append(as, int(a))
	}
	sort.Ints(as)
	for _, ai := range as {
		bs := make([]int, 0, len(ev.CrossProfiler[profiler.Kind(ai)]))
		for bk := range ev.CrossProfiler[profiler.Kind(ai)] {
			bs = append(bs, int(bk))
		}
		sort.Ints(bs)
		for _, bi := range bs {
			fmt.Fprintf(&b, "cross %v %v %.17g\n", profiler.Kind(ai), profiler.Kind(bi),
				ev.CrossProfiler[profiler.Kind(ai)][profiler.Kind(bi)])
		}
	}
	return b.String()
}

// TestEvalBenchmarkGolden pins EvalBenchmark's complete numeric output for
// three benchmarks (one per Fig. 7 class) against a golden file, at full
// float64 precision. Any change to the evaluation pipeline — including the
// capture/replay restructuring — must keep these bytes identical.
func TestEvalBenchmarkGolden(t *testing.T) {
	benchmarks := []string{"x264", "imagick", "lbm"}
	var b strings.Builder
	for _, name := range benchmarks {
		ev, err := EvalBenchmark(name, goldenOpts(benchmarks...))
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(renderEval(ev))
		b.WriteString("\n")
	}
	got := b.String()

	path := filepath.Join("testdata", "golden_eval.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("evaluation results diverged from golden file %s.\n"+
			"If the change is intentional, regenerate with: go test ./internal/experiments -run Golden -update-golden\n"+
			"first differing line: %s", path, firstDiffLine(got, string(want)))
	}
}

// TestEvalBenchmarkGoldenParallelReplay re-renders the same evaluations with
// sharded replay turned on and pins them to the unchanged golden file: the
// decode-once broadcast must be byte-identical to sequential replay.
func TestEvalBenchmarkGoldenParallelReplay(t *testing.T) {
	benchmarks := []string{"x264", "imagick", "lbm"}
	var b strings.Builder
	for _, name := range benchmarks {
		opt := goldenOpts(benchmarks...)
		opt.Parallelism = 2
		opt.ReplayWorkers = 2
		ev, err := EvalBenchmark(name, opt)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(renderEval(ev))
		b.WriteString("\n")
	}
	got := b.String()

	path := filepath.Join("testdata", "golden_eval.txt")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run TestEvalBenchmarkGolden with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("parallel replay diverged from the sequential golden file %s.\n"+
			"first differing line: %s", path, firstDiffLine(got, string(want)))
	}
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: got %q want %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(al), len(bl))
}
