// Package experiments regenerates every table and figure of the paper's
// evaluation (§4-§6): the profiler-error comparisons (Figs. 1, 8, 9, 10),
// the cycle stacks (Fig. 7), the sensitivity analyses (Fig. 11), the
// Imagick case study (Figs. 12, 13), the simulated configuration (Table 1),
// the §3.2 overhead analysis, and the §5.2 validation experiment.
//
// Every experiment renders into a Table so cmd/tipbench can print the same
// rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// Title identifies the experiment ("Figure 10: ...").
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold the data, already formatted.
	Rows [][]string
	// Notes carry free-form commentary (paper targets, caveats).
	Notes []string
}

// AddRow appends a row of stringable cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// pct2 formats a fraction as a percentage with two decimals.
func pct2(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }
