package trace

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
)

// shardChanDepth is the per-worker chunk channel depth. The decoder runs at
// most shardChanDepth+1 chunks ahead of the slowest worker, which bounds the
// live chunk set (and therefore the pool) of a sharded replay.
const shardChanDepth = 4

// Faultable is a consumer that can fail mid-stream (a spilling capture, a
// trace writer, a profiler sink with an I/O error). Sharded replay polls it
// between chunks and aborts the whole replay on the first reported error,
// instead of streaming millions of records into a consumer that already
// failed.
type Faultable interface {
	Err() error
}

// ReplayShards replays the captured trace through several consumer shards
// in parallel: the trace is decoded exactly once into pooled record chunks,
// and every chunk is broadcast to one goroutine per shard. Each shard
// observes the complete stream — the same records, in the same order, with
// one OnCycle per record and a final Finish — so any per-shard result is
// byte-identical to a sequential Replay of the same consumers; sharding
// chooses only how the consumer work is spread over cores.
//
// The decode runs on the calling goroutine and applies backpressure: a slow
// shard stalls the decoder after shardChanDepth buffered chunks. Replay
// stops early when ctx is cancelled, when decoding fails, or when a shard
// implementing Faultable reports an error; Finish is not delivered on any
// early stop. With a single shard and a background context this is
// equivalent to Replay, minus the chunk indirection.
func (c *Capture) ReplayShards(ctx context.Context, chunkRecords int, shards ...Consumer) (cycles uint64, records uint64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	it, err := c.Chunks(chunkRecords)
	if err != nil {
		return 0, 0, err
	}

	w := len(shards)
	chans := make([]chan *Chunk, w)
	for i := range chans {
		chans[i] = make(chan *Chunk, shardChanDepth)
	}
	workerErrs := make([]error, w)
	var abort atomic.Bool
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i int, shard Consumer, ch <-chan *Chunk) {
			defer wg.Done()
			f, _ := shard.(Faultable)
			for ck := range ch {
				if workerErrs[i] == nil {
					for j := range ck.Records {
						shard.OnCycle(&ck.Records[j])
					}
					if f != nil {
						if e := f.Err(); e != nil {
							workerErrs[i] = e
							abort.Store(true)
						}
					}
				}
				// An errored worker keeps draining its channel (without
				// touching the records) so the decoder can never block
				// forever on a send, and so chunk refcounts still reach
				// zero.
				ck.Release()
			}
		}(i, shard, chans[i])
	}

	var decodeErr error
	for {
		if e := ctx.Err(); e != nil {
			decodeErr = e
			break
		}
		if abort.Load() {
			break
		}
		ck, e := it.Next(int32(w))
		if e == io.EOF {
			break
		}
		if e != nil {
			decodeErr = e
			break
		}
		for _, ch := range chans {
			ch <- ck
		}
	}
	// Publish the totals before closing the channels: the close is the
	// happens-before edge that lets workers (and the caller) read them.
	cycles = it.Cycles()
	records = it.Records()
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	// A worker's consumer failure is the root cause; decode/context errors
	// come second (an abort often cancels the decode as a side effect).
	for _, e := range workerErrs {
		if e != nil {
			return 0, records, e
		}
	}
	if decodeErr != nil {
		return 0, records, decodeErr
	}
	if records == 0 {
		return 0, 0, io.ErrUnexpectedEOF
	}
	for _, shard := range shards {
		shard.Finish(cycles)
	}
	return cycles, records, nil
}
