package trace

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
)

// shardChanDepth is the per-worker chunk channel depth. The decoder runs at
// most shardChanDepth+1 chunks ahead of the slowest worker, which bounds the
// live chunk set (and therefore the pool) of a sharded replay.
const shardChanDepth = 4

// Faultable is a consumer that can fail mid-stream (a spilling capture, a
// trace writer, a profiler sink with an I/O error). Sharded replay polls it
// between chunks and aborts the whole replay on the first reported error,
// instead of streaming millions of records into a consumer that already
// failed.
type Faultable interface {
	Err() error
}

// chunkSource yields decoded chunks with their reference count pre-set; it
// is the seam shared by capture replay (ChunkIter) and streaming replay
// (streamIter).
type chunkSource interface {
	Next(refs int32) (*Chunk, error)
}

// shardBroadcast drives the decode-once broadcast shared by Capture and
// Stream replay: one goroutine per shard, per-shard channels of depth
// shardChanDepth, every chunk delivered to every shard exactly once. It
// returns the first shard consumer error (the root cause when both fail) and
// the decode/context error; Finish is never delivered here — the caller owns
// the success epilogue.
func shardBroadcast(ctx context.Context, src chunkSource, shards []Consumer) (workerErr, decodeErr error) {
	w := len(shards)
	chans := make([]chan *Chunk, w)
	for i := range chans {
		chans[i] = make(chan *Chunk, shardChanDepth)
	}
	workerErrs := make([]error, w)
	var abort atomic.Bool
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i int, shard Consumer, ch <-chan *Chunk) {
			defer wg.Done()
			f, _ := shard.(Faultable)
			for ck := range ch {
				if workerErrs[i] == nil {
					for j := range ck.Records {
						shard.OnCycle(&ck.Records[j])
					}
					if f != nil {
						if e := f.Err(); e != nil {
							workerErrs[i] = e
							abort.Store(true)
						}
					}
				}
				// An errored worker keeps draining its channel (without
				// touching the records) so the decoder can never block
				// forever on a send, and so chunk refcounts still reach
				// zero.
				ck.Release()
			}
		}(i, shard, chans[i])
	}

	for {
		if e := ctx.Err(); e != nil {
			decodeErr = e
			break
		}
		if abort.Load() {
			break
		}
		ck, e := src.Next(int32(w))
		if e == io.EOF {
			break
		}
		if e != nil {
			decodeErr = e
			break
		}
		for _, ch := range chans {
			ch <- ck
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	// A worker's consumer failure is the root cause; decode/context errors
	// come second (an abort often cancels the decode as a side effect).
	for _, e := range workerErrs {
		if e != nil {
			return e, decodeErr
		}
	}
	return nil, decodeErr
}

// ReplayShards replays the captured trace through several consumer shards
// in parallel: the trace is decoded exactly once into pooled record chunks,
// and every chunk is broadcast to one goroutine per shard. Each shard
// observes the complete stream — the same records, in the same order, with
// one OnCycle per record and a final Finish — so any per-shard result is
// byte-identical to a sequential Replay of the same consumers; sharding
// chooses only how the consumer work is spread over cores.
//
// The decode runs on the calling goroutine and applies backpressure: a slow
// shard stalls the decoder after shardChanDepth buffered chunks. Replay
// stops early when ctx is cancelled, when decoding fails, or when a shard
// implementing Faultable reports an error; Finish is not delivered on any
// early stop. With a single shard and a background context this is
// equivalent to Replay, minus the chunk indirection.
func (c *Capture) ReplayShards(ctx context.Context, chunkRecords int, shards ...Consumer) (cycles uint64, records uint64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	it, err := c.Chunks(chunkRecords)
	if err != nil {
		return 0, 0, err
	}

	workerErr, decodeErr := shardBroadcast(ctx, it, shards)
	cycles = it.Cycles()
	records = it.Records()
	if workerErr != nil {
		return 0, records, workerErr
	}
	if decodeErr != nil {
		return 0, records, decodeErr
	}
	if records == 0 {
		return 0, 0, io.ErrUnexpectedEOF
	}
	for _, shard := range shards {
		shard.Finish(cycles)
	}
	return cycles, records, nil
}

// ReplayShards broadcasts the live stream through consumer shards exactly
// like Capture.ReplayShards broadcasts a finished capture — same shard
// semantics, same cycle accounting, same error precedence — but chunks are
// consumed as the producer emits them, so profilers run concurrently with
// the simulation and only the pilot buffer plus the ring window is ever
// resident.
//
// It first waits for the pilot boundary (the caller typically already
// consumed it via Pilot to calibrate the shards being passed in). On any
// error it Aborts the stream so the producing core can never block on a full
// ring; the caller must still stop the producer itself (cancel its context)
// and wait for it. A Stream can be replayed at most once.
func (s *Stream) ReplayShards(ctx context.Context, shards ...Consumer) (cycles uint64, records uint64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.pilotReady:
	case <-ctx.Done():
		s.Abort()
		return 0, 0, ctx.Err()
	}
	it := &streamIter{s: s, ctx: ctx}
	workerErr, decodeErr := shardBroadcast(ctx, it, shards)
	cycles = it.lastCommit + 1
	records = it.records
	if workerErr != nil || decodeErr != nil {
		s.Abort()
		if workerErr != nil {
			return 0, records, workerErr
		}
		return 0, records, decodeErr
	}
	if records == 0 {
		return 0, 0, io.ErrUnexpectedEOF
	}
	for _, shard := range shards {
		shard.Finish(cycles)
	}
	return cycles, records, nil
}
