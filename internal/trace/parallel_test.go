package trace

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
)

// newFinishedCapture builds a finished in-memory capture of n sample records.
func newFinishedCapture(t *testing.T, n int) *Capture {
	t.Helper()
	c := NewCapture(0)
	t.Cleanup(func() { c.Close() })
	captureRecords(t, c, n)
	return c
}

// TestReplayShardsMatchesReplay pins the parallel path to the sequential
// one: every shard sees the identical record sequence and the identical
// Finish total, at several worker counts and chunk sizes.
func TestReplayShardsMatchesReplay(t *testing.T) {
	c := newFinishedCapture(t, 777)
	var ref collect
	wantCycles, wantRecords, err := c.Replay(&ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 8} {
		for _, chunk := range []int{1, 13, 256, 0} {
			t.Run(fmt.Sprintf("shards=%d/chunk=%d", shards, chunk), func(t *testing.T) {
				cons := make([]*collect, shards)
				args := make([]Consumer, shards)
				for i := range cons {
					cons[i] = &collect{}
					args[i] = cons[i]
				}
				cycles, records, err := c.ReplayShards(context.Background(), chunk, args...)
				if err != nil {
					t.Fatal(err)
				}
				if cycles != wantCycles || records != wantRecords {
					t.Fatalf("totals %d/%d, want %d/%d", cycles, records, wantCycles, wantRecords)
				}
				for i, cc := range cons {
					if len(cc.recs) != len(ref.recs) {
						t.Fatalf("shard %d saw %d records, want %d", i, len(cc.recs), len(ref.recs))
					}
					for j := range cc.recs {
						if cc.recs[j] != ref.recs[j] {
							t.Fatalf("shard %d record %d differs", i, j)
						}
					}
					if cc.total != wantCycles {
						t.Fatalf("shard %d Finish(%d), want %d", i, cc.total, wantCycles)
					}
				}
			})
		}
	}
}

// faultingConsumer fails (via the Faultable interface) once it has seen
// failAt records.
type faultingConsumer struct {
	seen     uint64
	failAt   uint64
	err      error
	finished bool
}

func (f *faultingConsumer) OnCycle(*Record) {
	f.seen++
	if f.seen >= f.failAt && f.err == nil {
		f.err = errors.New("injected consumer failure")
	}
}
func (f *faultingConsumer) Finish(uint64) { f.finished = true }
func (f *faultingConsumer) Err() error    { return f.err }

func TestReplayShardsAbortsOnConsumerFault(t *testing.T) {
	c := newFinishedCapture(t, 4096)
	bad := &faultingConsumer{failAt: 100}
	good := &collect{}
	_, _, err := c.ReplayShards(context.Background(), 64, bad, good)
	if err == nil || err.Error() != "injected consumer failure" {
		t.Fatalf("err = %v, want the injected consumer failure", err)
	}
	if bad.finished || good.total != 0 {
		t.Fatal("Finish must not be delivered on an aborted replay")
	}
	// The abort is polled per chunk, so the healthy shard stops well short
	// of the full stream.
	if uint64(len(good.recs)) == c.Records() {
		t.Fatal("healthy shard consumed the entire stream despite the abort")
	}
}

func TestReplayShardsContextCancel(t *testing.T) {
	c := newFinishedCapture(t, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := &collect{}
	_, _, err := c.ReplayShards(ctx, 64, cc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cc.total != 0 {
		t.Fatal("Finish must not be delivered on a cancelled replay")
	}
}

func TestReplayShardsEmptyCaptureErrors(t *testing.T) {
	c := NewCapture(0)
	defer c.Close()
	c.Finish(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	_, _, err := c.ReplayShards(context.Background(), 0, &collect{})
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReplayShardsNilContext(t *testing.T) {
	c := newFinishedCapture(t, 32)
	cc := &collect{}
	cycles, records, err := c.ReplayShards(nil, 8, cc)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || records != 32 || cc.total != cycles {
		t.Fatalf("cycles=%d records=%d finish=%d", cycles, records, cc.total)
	}
}
