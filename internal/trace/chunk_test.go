package trace

import (
	"bytes"
	"io"
	"testing"

	"github.com/tipprof/tip/internal/xrand"
)

// syntheticTrace encodes n pseudo-random records with multi-cycle commit
// bursts, so chunk boundaries of every size land mid-burst somewhere. It
// returns the encoded bytes and the plaintext records.
func syntheticTrace(n int, seed uint64) ([]byte, []Record) {
	rng := xrand.New(seed)
	recs := make([]Record, n)
	cycle := uint64(0)
	burst := 0
	for i := range recs {
		r := sampleRecord(cycle)
		if burst == 0 && rng.Bool(0.3) {
			// Start a commit burst: 2-5 consecutive committing cycles.
			burst = 2 + int(rng.Uint64n(4))
		}
		if burst > 0 {
			burst--
			r.Banks[1].Committing = true
			r.CommitCount = 1
			if rng.Bool(0.3) {
				r.Banks[2].Committing = true
				r.CommitCount = 2
			}
		} else {
			r.Banks[1].Committing = false
			r.CommitCount = 0
		}
		if rng.Bool(0.1) {
			r.ExceptionRaised = true
			r.ExceptionPC = rng.Uint64n(1 << 40)
			r.ExceptionFID = rng.Uint64n(1 << 30)
			r.ExceptionInstIndex = int32(rng.Uint64n(64)) - 1
		}
		if rng.Bool(0.4) {
			r.DispatchValid = true
			r.DispatchPC = rng.Uint64n(1 << 40)
			r.DispatchFID = rng.Uint64n(1 << 30)
			r.DispatchInstIndex = int32(rng.Uint64n(64))
		}
		recs[i] = r
		cycle += 1 + rng.Uint64n(3)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range recs {
		w.OnCycle(&recs[i])
	}
	w.Finish(cycle)
	return buf.Bytes(), recs
}

// drainChunks collects every record a chunk iterator yields, releasing each
// chunk with the given reference count.
func drainChunks(t *testing.T, it *ChunkIter, refs int32) []Record {
	t.Helper()
	var out []Record
	for {
		ck, err := it.Next(refs)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(ck.Records) == 0 {
			t.Fatal("iterator returned an empty chunk before EOF")
		}
		out = append(out, ck.Records...)
		for r := int32(0); r < refs; r++ {
			ck.Release()
		}
	}
}

// TestChunkIterMatchesReplayBytes is the chunking property test: for any
// chunk size — including 1-record chunks and sizes that split commit bursts
// mid-group — the concatenated chunk records are exactly the record sequence
// ReplayBytes delivers, with the same record and cycle totals.
func TestChunkIterMatchesReplayBytes(t *testing.T) {
	data, _ := syntheticTrace(501, 11)

	var ref collect
	wantCycles, wantRecords, err := ReplayBytes(data, &ref)
	if err != nil {
		t.Fatal(err)
	}

	sizes := []int{1, 2, 3, 5, 17, 100, 500, 501, 502, DefaultChunkRecords, 0}
	rng := xrand.New(23)
	for i := 0; i < 8; i++ {
		sizes = append(sizes, 1+int(rng.Uint64n(600)))
	}
	for _, size := range sizes {
		it, err := NewChunkIterBytes(data, size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got := drainChunks(t, it, 1)
		if len(got) != len(ref.recs) {
			t.Fatalf("size %d: %d records, want %d", size, len(got), len(ref.recs))
		}
		for j := range got {
			if got[j] != ref.recs[j] {
				t.Fatalf("size %d: record %d differs:\n got %+v\nwant %+v", size, j, got[j], ref.recs[j])
			}
		}
		if it.Records() != wantRecords {
			t.Fatalf("size %d: Records() = %d, want %d", size, it.Records(), wantRecords)
		}
		if it.Cycles() != wantCycles {
			t.Fatalf("size %d: Cycles() = %d, want %d", size, it.Cycles(), wantCycles)
		}
	}
}

// TestChunkIterStreamingMatchesBytes pins the streaming (Reader-backed)
// iterator to the in-memory one over the same encoded trace.
func TestChunkIterStreamingMatchesBytes(t *testing.T) {
	data, _ := syntheticTrace(257, 5)
	var ref collect
	wantCycles, wantRecords, err := ReplayBytes(data, &ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 7, 64, 1024} {
		it := NewChunkIter(bytes.NewReader(data), size)
		got := drainChunks(t, it, 2) // broadcast refcount > 1 must behave the same
		if len(got) != len(ref.recs) {
			t.Fatalf("size %d: %d records, want %d", size, len(got), len(ref.recs))
		}
		for j := range got {
			if got[j] != ref.recs[j] {
				t.Fatalf("size %d: record %d differs", size, j)
			}
		}
		if it.Records() != wantRecords || it.Cycles() != wantCycles {
			t.Fatalf("size %d: totals %d/%d, want %d/%d",
				size, it.Records(), it.Cycles(), wantRecords, wantCycles)
		}
	}
}

func TestChunkIterEmptyAndBadMagic(t *testing.T) {
	it, err := NewChunkIterBytes(nil, 8)
	if err != nil {
		t.Fatalf("empty data: %v", err)
	}
	if _, err := it.Next(1); err != io.EOF {
		t.Fatalf("empty data Next = %v, want io.EOF", err)
	}
	if _, err := NewChunkIterBytes([]byte("NOTATRACE"), 8); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestChunkIterTruncatedTrace(t *testing.T) {
	data, _ := syntheticTrace(64, 3)
	trunc := data[:len(data)-4]
	it, err := NewChunkIterBytes(trunc, 16)
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for {
		ck, err := it.Next(1)
		if err == io.EOF {
			break
		}
		if err != nil {
			sawErr = true
			break
		}
		ck.Release()
	}
	if !sawErr {
		t.Fatal("truncated trace chunked cleanly")
	}
}

// TestCaptureChunksMatchesReplay pins Capture.Chunks — both the in-memory
// and the spilled source — to Capture.Replay record for record.
func TestCaptureChunksMatchesReplay(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int
	}{
		{"in-memory", 0},
		{"spilled", 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCapture(tc.budget)
			defer c.Close()
			captureRecords(t, c, 300)
			if (tc.budget != 0) != c.Spilled() {
				t.Fatalf("Spilled() = %v with budget %d", c.Spilled(), tc.budget)
			}
			var ref collect
			wantCycles, wantRecords, err := c.Replay(&ref)
			if err != nil {
				t.Fatal(err)
			}
			it, err := c.Chunks(33)
			if err != nil {
				t.Fatal(err)
			}
			got := drainChunks(t, it, 1)
			if uint64(len(got)) != wantRecords {
				t.Fatalf("%d records, want %d", len(got), wantRecords)
			}
			for j := range got {
				if got[j] != ref.recs[j] {
					t.Fatalf("record %d differs", j)
				}
			}
			if it.Cycles() != wantCycles {
				t.Fatalf("Cycles() = %d, want %d", it.Cycles(), wantCycles)
			}
		})
	}
}

func TestCaptureChunksUnfinishedErrors(t *testing.T) {
	c := NewCapture(0)
	defer c.Close()
	r := sampleRecord(0)
	c.OnCycle(&r)
	if _, err := c.Chunks(8); err == nil {
		t.Fatal("chunking an unfinished capture must error")
	}
}
