package trace

import (
	"bytes"
	"io"
	"testing"
)

// fuzzSeedTraces returns small encoded traces used to seed both fuzz
// targets, so the fuzzer starts from well-formed inputs and mutates from
// there. The first numValid seeds replay cleanly; the rest are degenerate
// inputs the decoder must reject (TestFuzzSeedsReplayCleanly pins the
// split).
func fuzzSeedTraces() (seeds [][]byte, numValid int) {
	one := func(v3 bool, recs []Record, total uint64) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if v3 {
			w = NewWriterV3(&buf)
		}
		for i := range recs {
			w.OnCycle(&recs[i])
		}
		w.Finish(total)
		return buf.Bytes()
	}

	r0 := sampleRecord(0)
	seeds = append(seeds, one(false, []Record{r0}, 1))

	burst := make([]Record, 8)
	for i := range burst {
		burst[i] = sampleRecord(uint64(i * 3))
		burst[i].Banks[1].Committing = i%2 == 0
		if burst[i].Banks[1].Committing {
			burst[i].CommitCount = 1
		} else {
			burst[i].CommitCount = 0
		}
	}
	burst[3].ExceptionRaised = true
	burst[3].ExceptionPC = 0xfeed
	burst[3].ExceptionFID = 42
	burst[3].ExceptionInstIndex = -1
	burst[5].DispatchValid = true
	burst[5].DispatchPC = 0xbeef
	burst[5].DispatchFID = 77
	burst[5].DispatchInstIndex = 5
	seeds = append(seeds, one(false, burst, 22))

	synth, _ := syntheticTrace(40, 9)
	seeds = append(seeds, synth)

	// v3 seeds: the same commit burst interleaved across two cores (core
	// deltas alternate sign), and a single-core v3 stream whose core
	// deltas are all zero.
	multi := make([]Record, len(burst))
	copy(multi, burst)
	for i := range multi {
		multi[i].Core = uint32(i % 2)
	}
	seeds = append(seeds, one(true, multi, 22))
	seeds = append(seeds, one(true, []Record{r0}, 1))

	numValid = len(seeds)

	// Degenerate inputs: empty, magic only (both versions), magic plus
	// garbage, bad magic.
	seeds = append(seeds,
		nil,
		[]byte(formatMagic),
		[]byte(formatMagicV3),
		append([]byte(formatMagic), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
		append([]byte(formatMagicV3), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
		[]byte("NOTATRACE"),
	)
	return seeds, numValid
}

// FuzzDecodeRecord drives the record decoder over arbitrary bytes. The
// decoder must never panic and must always make progress (or error): a
// malformed trace is an error to report, not a crash or an infinite loop.
// Decoded records are run through the age-order accessors, which must
// tolerate any field values the decoder lets through.
func FuzzDecodeRecord(f *testing.F) {
	seeds, _ := fuzzSeedTraces()
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var st codecState
		var rec Record
		pos := 0
		for pos < len(data) {
			next, err := decodeRecord(data, pos, &st, &rec)
			if err != nil {
				return
			}
			if next <= pos {
				t.Fatalf("decodeRecord made no progress at %d", pos)
			}
			pos = next
			// Accessors must clamp malformed bank counts, never index
			// out of range.
			rec.Oldest()
			rec.YoungestCommitting()
			rec.CommittingInAgeOrder(nil)
		}
	})
}

// FuzzReplayBytes is a differential fuzz of the three decode paths over the
// same input: the slice-based ReplayBytes, the Reader-based Replay, and the
// chunked iterator behind sharded replay. All three must agree — same
// accept/reject decision and, on success, the identical record sequence and
// totals. None may panic.
func FuzzReplayBytes(f *testing.F) {
	seeds, _ := fuzzSeedTraces()
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var viaBytes collect
		cyB, recB, errB := ReplayBytes(data, &viaBytes)

		var viaReader collect
		cyR, recR, errR := Replay(NewReader(bytes.NewReader(data)), &viaReader)

		if (errB == nil) != (errR == nil) {
			t.Fatalf("slice/reader disagree: bytes err %v, reader err %v", errB, errR)
		}

		var viaChunks []Record
		var cyC, recC uint64
		var errC error
		it, err := NewChunkIterBytes(data, 7)
		if err != nil {
			errC = err
		} else {
			for {
				ck, err := it.Next(1)
				if err == io.EOF {
					break
				}
				if err != nil {
					errC = err
					break
				}
				viaChunks = append(viaChunks, ck.Records...)
				ck.Release()
			}
			if errC == nil {
				cyC, recC = it.Cycles(), it.Records()
				if recC == 0 {
					errC = io.ErrUnexpectedEOF
				}
			}
		}
		if (errB == nil) != (errC == nil) {
			t.Fatalf("slice/chunk disagree: bytes err %v, chunk err %v", errB, errC)
		}
		if errB != nil {
			return
		}

		if cyB != cyR || recB != recR || cyB != cyC || recB != recC {
			t.Fatalf("totals disagree: bytes %d/%d, reader %d/%d, chunks %d/%d",
				cyB, recB, cyR, recR, cyC, recC)
		}
		if len(viaBytes.recs) != len(viaReader.recs) || len(viaBytes.recs) != len(viaChunks) {
			t.Fatalf("record counts disagree: %d/%d/%d",
				len(viaBytes.recs), len(viaReader.recs), len(viaChunks))
		}
		for i := range viaBytes.recs {
			if viaBytes.recs[i] != viaReader.recs[i] || viaBytes.recs[i] != viaChunks[i] {
				t.Fatalf("record %d differs across decode paths", i)
			}
		}
	})
}

// TestFuzzSeedsReplayCleanly sanity-checks that the valid seeds really are
// valid (and the corrupted ones really are rejected) under the normal test
// runner, so a codec change that invalidates the corpus fails fast here.
func TestFuzzSeedsReplayCleanly(t *testing.T) {
	seeds, numValid := fuzzSeedTraces()
	for i, s := range seeds[:numValid] {
		if _, _, err := ReplayBytes(s, &nullConsumer{}); err != nil {
			t.Fatalf("seed %d does not replay: %v", i, err)
		}
	}
	for i, s := range seeds[numValid:] {
		if _, _, err := ReplayBytes(s, &nullConsumer{}); err == nil {
			t.Fatalf("degenerate seed %d replayed cleanly", i)
		}
	}
}
