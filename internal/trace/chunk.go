package trace

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultChunkRecords is the per-chunk record count for chunked replay. At
// roughly 350 bytes per decoded Record a chunk is a few hundred kilobytes:
// large enough that per-chunk synchronization vanishes against the decode
// and consumer work, small enough that a handful of in-flight chunks keep a
// parallel replay's footprint modest.
const DefaultChunkRecords = 1024

// Chunk is a run of consecutive decoded trace records. During a sharded
// replay every worker observes the same chunk read-only; refs counts the
// outstanding readers and Release returns the chunk to its pool once the
// last one is done, so the decode allocates a steady-state working set
// instead of one Record per cycle.
type Chunk struct {
	// Records are the decoded records, in stream order.
	Records []Record

	refs atomic.Int32
	pool *sync.Pool
}

// Release drops one reader reference, recycling the chunk when it was the
// last. Callers must not touch the chunk afterwards.
func (c *Chunk) Release() {
	if c.refs.Add(-1) == 0 && c.pool != nil {
		c.pool.Put(c)
	}
}

// ChunkIter decodes an encoded trace into fixed-size record chunks. It is
// the decode-once half of sharded replay: one iterator walks the capture a
// single time and every decoded chunk can be handed to any number of
// consumers, where the per-record Replay path would decode the stream once
// per... consumer group. The iterator is not safe for concurrent use; the
// chunks it returns are immutable and may be read from any goroutine.
type ChunkIter struct {
	// In-memory source (nil data selects the streaming source).
	data []byte
	pos  int
	// Streaming source (spilled captures).
	r *Reader

	st   codecState
	n    int
	pool *sync.Pool

	records    uint64
	lastCommit uint64
	done       bool
}

// NewChunkIterBytes returns a chunk iterator over an in-memory encoded
// trace (the layout ReplayBytes accepts, magic header included).
// chunkRecords bounds the records per chunk; 0 selects DefaultChunkRecords.
func NewChunkIterBytes(data []byte, chunkRecords int) (*ChunkIter, error) {
	if len(data) == 0 {
		// Empty trace: iterate to an immediate EOF so the caller
		// reports the same io.ErrUnexpectedEOF as ReplayBytes.
		return newChunkIter(nil, nil, chunkRecords), nil
	}
	v3, err := sniffMagic(data)
	if err != nil {
		return nil, err
	}
	it := newChunkIter(data, nil, chunkRecords)
	it.st.v3 = v3
	it.pos = len(formatMagic)
	return it, nil
}

// NewChunkIter returns a chunk iterator over a streamed encoded trace.
func NewChunkIter(r io.Reader, chunkRecords int) *ChunkIter {
	return newChunkIter(nil, NewReader(r), chunkRecords)
}

func newChunkIter(data []byte, r *Reader, chunkRecords int) *ChunkIter {
	if chunkRecords <= 0 {
		chunkRecords = DefaultChunkRecords
	}
	it := &ChunkIter{data: data, r: r, n: chunkRecords}
	if data == nil && r == nil {
		it.done = true
	}
	it.pool = newChunkPool(chunkRecords)
	return it
}

// Next decodes the next chunk of up to chunkRecords records and returns it
// with its reference count set to refs — one per consumer the caller will
// hand the chunk to; each must Release it. Next returns io.EOF at the end
// of the trace and any decode error as-is; a partially decoded chunk is
// recycled, never returned.
func (it *ChunkIter) Next(refs int32) (*Chunk, error) {
	if it.done {
		return nil, io.EOF
	}
	ck := it.pool.Get().(*Chunk)
	recs := ck.Records[:0]
	var err error
	for len(recs) < it.n {
		recs = recs[:len(recs)+1]
		rec := &recs[len(recs)-1]
		if it.data != nil {
			if it.pos >= len(it.data) {
				recs = recs[:len(recs)-1]
				err = io.EOF
				break
			}
			it.pos, err = decodeRecord(it.data, it.pos, &it.st, rec)
		} else {
			err = it.r.Next(rec)
		}
		if err != nil {
			recs = recs[:len(recs)-1]
			break
		}
		it.records++
		if rec.CommitCount > 0 {
			it.lastCommit = rec.Cycle
		}
	}
	ck.Records = recs
	if err != nil {
		it.done = true
		if !errors.Is(err, io.EOF) {
			ck.Records = ck.Records[:0]
			it.pool.Put(ck)
			return nil, err
		}
		// EOF mid-chunk: flush the records decoded so far.
		if len(recs) == 0 {
			it.pool.Put(ck)
			return nil, io.EOF
		}
	}
	ck.refs.Store(refs)
	return ck, nil
}

// Records returns the number of records decoded so far (the stream total
// once Next has returned io.EOF).
func (it *ChunkIter) Records() uint64 { return it.records }

// Cycles returns the replayed run length under the same rule as Replay: the
// cycle of the last committing record plus one. Valid once Next has
// returned io.EOF.
func (it *ChunkIter) Cycles() uint64 { return it.lastCommit + 1 }

// Chunks returns a chunk iterator over the finished capture, decoding the
// trace exactly once regardless of how many consumers the chunks are
// broadcast to. Like Replay it may be called any number of times;
// concurrent iterations are independent.
func (c *Capture) Chunks(chunkRecords int) (*ChunkIter, error) {
	if !c.finished {
		return nil, errReplayUnfinished
	}
	if c.err != nil {
		return nil, errCaptureFailed(c.err)
	}
	if c.f == nil {
		return NewChunkIterBytes(c.buf, chunkRecords)
	}
	src := io.NewSectionReader(c.f, 0, int64(c.fileBytes))
	return NewChunkIter(src, chunkRecords), nil
}
