package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The binary trace format is a sequence of records, each:
//
//	cycle       uvarint (delta from previous record)
//	flags       byte    (bit0 robEmpty, bit1 exceptionRaised, bit2 dispatchValid, bit3 anyInFlight)
//	numBanks    byte
//	headBank    byte
//	commitCount byte
//	per bank: flags byte (valid/committing/mispredicted/flush/exception), then
//	          pc, fid, instIndex (delta-encoded, see below) if valid
//	optional exception block, dispatch block, youngestFID
//
// PC, FID and InstIndex fields are stored as zigzag uvarint deltas against
// the previous value of the same kind anywhere in the stream (codecState).
// Commit streams are highly local — consecutive banks hold consecutive FIDs
// and instruction indices, and PCs mostly advance by one instruction — so
// the deltas almost always fit one byte where the absolute values need three
// or four. That roughly halves both the trace size and the varint work on
// the capture/replay hot path.
//
// The format exists so traces can be captured once and replayed against new
// profiler models (the paper ran up to 19 profiler configs per simulation).
//
// Version 3 (TIPTRC3) adds one field: a zigzag uvarint core-ID delta right
// after the cycle delta, so a multi-programmed capture interleaves records
// from several cores in one stream (§3.2: perf tags every sample with its
// core). The delta is against the previous record's core, so a single-core
// v3 stream pays exactly one extra zero byte per record. Decoders detect
// the version from the magic; v2 streams keep decoding unchanged with
// Record.Core = 0.
const (
	formatMagic   = "TIPTRC2\n"
	formatMagicV3 = "TIPTRC3\n"
)

// codecState is the cross-record prediction context shared by the encoder
// and decoder. Both sides start from the zero state and advance it field by
// field in the same order, so the deltas are self-describing. v3 selects
// the TIPTRC3 layout (per-record core-ID delta).
type codecState struct {
	lastCycle uint64
	lastCore  uint64
	lastPC    uint64
	lastFID   uint64
	lastInst  int64
	v3        bool
}

// detectMagic classifies an encoded stream's 8-byte header: v3 reports the
// TIPTRC3 layout, ok that the header matched a known version at all.
func detectMagic(hdr []byte) (v3, ok bool) {
	switch string(hdr) {
	case formatMagic:
		return false, true
	case formatMagicV3:
		return true, true
	}
	return false, false
}

// sniffMagic validates an in-memory encoded trace's header and returns the
// codec version; it is the shared front door of every slice-decoding entry
// point (ReplayBytes, NewChunkIterBytes, NewCaptureFromEncoded).
func sniffMagic(data []byte) (v3 bool, err error) {
	if len(data) >= len(formatMagic) {
		if v3, ok := detectMagic(data[:len(formatMagic)]); ok {
			return v3, nil
		}
	}
	n := len(data)
	if n > len(formatMagic) {
		n = len(formatMagic)
	}
	return false, badMagic(data[:n])
}

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// putUvarint writes v at b[n] and returns the position after it. The caller
// guarantees capacity (appendRecord reserves maxRecordBytes up front); the
// first loop test falls straight through for the one-byte deltas that
// dominate a trace.
func putUvarint(b []byte, n int, v uint64) int {
	for v >= 0x80 {
		b[n] = byte(v) | 0x80
		n++
		v >>= 7
	}
	b[n] = byte(v)
	return n + 1
}

func (st *codecState) putPC(b []byte, n int, pc uint64) int {
	n = putUvarint(b, n, zigzag(int64(pc)-int64(st.lastPC)))
	st.lastPC = pc
	return n
}

func (st *codecState) putFID(b []byte, n int, fid uint64) int {
	n = putUvarint(b, n, zigzag(int64(fid)-int64(st.lastFID)))
	st.lastFID = fid
	return n
}

func (st *codecState) putInst(b []byte, n int, idx int32) int {
	n = putUvarint(b, n, zigzag(int64(idx)-st.lastInst))
	st.lastInst = int64(idx)
	return n
}

// Writer streams records to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	st       codecState
	wroteHdr bool
	buf      []byte
	err      error
	count    uint64
}

// NewWriter returns a trace writer emitting the v2 (TIPTRC2) layout.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// NewWriterV3 returns a trace writer emitting the v3 (TIPTRC3) layout,
// which carries each record's producing core ID.
func NewWriterV3(w io.Writer) *Writer {
	tw := NewWriter(w)
	tw.st.v3 = true
	return tw
}

// appendRecord encodes r onto buf and returns the extended slice, advancing
// the codec state. It is the single encoder shared by the streaming Writer
// and the in-memory Capture, so both produce identical bytes.
//
// It reserves maxRecordBytes of spare capacity once, then encodes with
// indexed writes into the slice. The previous append-per-field form paid a
// capacity check (and the append call overhead) per byte; this is the
// hottest trace-side frame of a capture, so those per-field checks showed up
// directly in the profile.
func appendRecord(buf []byte, r *Record, st *codecState) []byte {
	if cap(buf)-len(buf) < maxRecordBytes {
		// The Capture pre-grows with its own doubling policy, so only the
		// Writer path (stable reused buffer) ever lands here, and only until
		// its buffer reaches maxRecordBytes capacity.
		grown := make([]byte, len(buf), 2*cap(buf)+maxRecordBytes)
		copy(grown, buf)
		buf = grown
	}
	b := buf[:cap(buf)]
	n := len(buf)
	n = putUvarint(b, n, r.Cycle-st.lastCycle)
	st.lastCycle = r.Cycle
	if st.v3 {
		n = putUvarint(b, n, zigzag(int64(r.Core)-int64(st.lastCore)))
		st.lastCore = uint64(r.Core)
	}
	var flags byte
	if r.ROBEmpty {
		flags |= 1
	}
	if r.ExceptionRaised {
		flags |= 2
	}
	if r.DispatchValid {
		flags |= 4
	}
	if r.AnyInFlight {
		flags |= 8
	}
	b[n] = flags
	b[n+1] = byte(r.NumBanks)
	b[n+2] = r.HeadBank
	b[n+3] = r.CommitCount
	n += 4
	for i := 0; i < r.NumBanks; i++ {
		bk := &r.Banks[i]
		var bf byte
		if bk.Valid {
			bf |= 1
		}
		if bk.Committing {
			bf |= 2
		}
		if bk.Mispredicted {
			bf |= 4
		}
		if bk.Flush {
			bf |= 8
		}
		if bk.Exception {
			bf |= 16
		}
		b[n] = bf
		n++
		if bk.Valid {
			n = st.putPC(b, n, bk.PC)
			n = st.putFID(b, n, bk.FID)
			n = st.putInst(b, n, bk.InstIndex)
		}
	}
	if r.ExceptionRaised {
		n = st.putPC(b, n, r.ExceptionPC)
		n = st.putFID(b, n, r.ExceptionFID)
		n = st.putInst(b, n, r.ExceptionInstIndex)
	}
	if r.DispatchValid {
		n = st.putPC(b, n, r.DispatchPC)
		n = st.putFID(b, n, r.DispatchFID)
		n = st.putInst(b, n, r.DispatchInstIndex)
	}
	if r.AnyInFlight {
		n = st.putFID(b, n, r.YoungestFID)
	}
	return buf[:n]
}

// normalizeRecord copies src into dst exactly as an encode→decode round
// trip through the codec would: unconditional fields are copied, every
// flag-guarded payload field is copied when its guard is set and zeroed
// when it is not, and banks past NumBanks are zeroed. The producing core
// reuses one Record and deliberately leaves unguarded payload fields stale
// (see Record.Reset); a capture launders that staleness through
// appendRecord/decodeRecord, and the streaming direct path must launder it
// the same way so streamed and captured replays observe bit-identical
// records. TestNormalizeRecordMatchesCodec pins the equivalence against
// the real codec on fuzzed records. Core is copied unconditionally — the
// v3 codec round-trips it and v2 streams never carry a nonzero Core.
func normalizeRecord(dst, src *Record) {
	dst.Cycle = src.Cycle
	dst.Core = src.Core
	dst.ROBEmpty = src.ROBEmpty
	dst.ExceptionRaised = src.ExceptionRaised
	dst.DispatchValid = src.DispatchValid
	dst.AnyInFlight = src.AnyInFlight
	n := src.NumBanks
	if n > MaxBanks {
		n = MaxBanks
	}
	dst.NumBanks = n
	dst.HeadBank = src.HeadBank
	dst.CommitCount = src.CommitCount
	for i := 0; i < n; i++ {
		sb, db := &src.Banks[i], &dst.Banks[i]
		db.Valid = sb.Valid
		db.Committing = sb.Committing
		db.Mispredicted = sb.Mispredicted
		db.Flush = sb.Flush
		db.Exception = sb.Exception
		if sb.Valid {
			db.PC = sb.PC
			db.FID = sb.FID
			db.InstIndex = sb.InstIndex
		} else {
			db.PC = 0
			db.FID = 0
			db.InstIndex = 0
		}
	}
	for i := n; i < MaxBanks; i++ {
		dst.Banks[i] = BankEntry{}
	}
	if src.ExceptionRaised {
		dst.ExceptionPC = src.ExceptionPC
		dst.ExceptionFID = src.ExceptionFID
		dst.ExceptionInstIndex = src.ExceptionInstIndex
	} else {
		dst.ExceptionPC = 0
		dst.ExceptionFID = 0
		dst.ExceptionInstIndex = 0
	}
	if src.DispatchValid {
		dst.DispatchPC = src.DispatchPC
		dst.DispatchFID = src.DispatchFID
		dst.DispatchInstIndex = src.DispatchInstIndex
	} else {
		dst.DispatchPC = 0
		dst.DispatchFID = 0
		dst.DispatchInstIndex = 0
	}
	if src.AnyInFlight {
		dst.YoungestFID = src.YoungestFID
	} else {
		dst.YoungestFID = 0
	}
}

// OnCycle implements Consumer.
func (w *Writer) OnCycle(r *Record) {
	if w.err != nil {
		return
	}
	if !w.wroteHdr {
		magic := formatMagic
		if w.st.v3 {
			magic = formatMagicV3
		}
		if _, err := w.w.WriteString(magic); err != nil {
			w.err = err
			return
		}
		w.wroteHdr = true
	}
	w.buf = appendRecord(w.buf[:0], r, &w.st)
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = err
	}
	w.count++
}

// Finish implements Consumer; it flushes buffered output.
func (w *Writer) Finish(totalCycles uint64) {
	if w.err == nil {
		w.err = w.w.Flush()
	}
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Reader replays a stored trace.
type Reader struct {
	r       *bufio.Reader
	st      codecState
	readHdr bool
	// scratch backs the fixed-size header reads; a local array would
	// escape through the io.ReadFull interface call and cost one heap
	// allocation per record.
	scratch [len(formatMagic)]byte
}

// NewReader returns a trace reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) readPC() (uint64, error) {
	u, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, unexpected(err)
	}
	pc := uint64(int64(r.st.lastPC) + unzigzag(u))
	r.st.lastPC = pc
	return pc, nil
}

func (r *Reader) readFID() (uint64, error) {
	u, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, unexpected(err)
	}
	fid := uint64(int64(r.st.lastFID) + unzigzag(u))
	r.st.lastFID = fid
	return fid, nil
}

func (r *Reader) readInst() (int32, error) {
	u, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, unexpected(err)
	}
	idx := r.st.lastInst + unzigzag(u)
	r.st.lastInst = idx
	return int32(idx), nil
}

// Next decodes the next record into rec. It returns io.EOF at end of trace.
// The codec version is detected from the stream's magic: v3 records carry a
// core ID, v2 records decode with Core = 0.
func (r *Reader) Next(rec *Record) error {
	if !r.readHdr {
		hdr := r.scratch[:len(formatMagic)]
		if _, err := io.ReadFull(r.r, hdr); err != nil {
			return err
		}
		v3, ok := detectMagic(hdr)
		if !ok {
			return badMagic(hdr)
		}
		r.st.v3 = v3
		r.readHdr = true
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		return err
	}
	*rec = Record{}
	r.st.lastCycle += delta
	rec.Cycle = r.st.lastCycle
	if r.st.v3 {
		u, err := binary.ReadUvarint(r.r)
		if err != nil {
			return unexpected(err)
		}
		r.st.lastCore = uint64(int64(r.st.lastCore) + unzigzag(u))
		rec.Core = uint32(r.st.lastCore)
	}
	hdr := r.scratch[:4]
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		return unexpected(err)
	}
	flags := hdr[0]
	rec.ROBEmpty = flags&1 != 0
	rec.ExceptionRaised = flags&2 != 0
	rec.DispatchValid = flags&4 != 0
	rec.AnyInFlight = flags&8 != 0
	rec.NumBanks = int(hdr[1])
	if rec.NumBanks > MaxBanks {
		return fmt.Errorf("trace: bank count %d exceeds max %d", rec.NumBanks, MaxBanks)
	}
	rec.HeadBank = hdr[2]
	rec.CommitCount = hdr[3]
	for i := 0; i < rec.NumBanks; i++ {
		bf, err := r.r.ReadByte()
		if err != nil {
			return unexpected(err)
		}
		b := &rec.Banks[i]
		b.Valid = bf&1 != 0
		b.Committing = bf&2 != 0
		b.Mispredicted = bf&4 != 0
		b.Flush = bf&8 != 0
		b.Exception = bf&16 != 0
		if b.Valid {
			if b.PC, err = r.readPC(); err != nil {
				return err
			}
			if b.FID, err = r.readFID(); err != nil {
				return err
			}
			if b.InstIndex, err = r.readInst(); err != nil {
				return err
			}
		}
	}
	if rec.ExceptionRaised {
		if rec.ExceptionPC, err = r.readPC(); err != nil {
			return err
		}
		if rec.ExceptionFID, err = r.readFID(); err != nil {
			return err
		}
		if rec.ExceptionInstIndex, err = r.readInst(); err != nil {
			return err
		}
	}
	if rec.DispatchValid {
		if rec.DispatchPC, err = r.readPC(); err != nil {
			return err
		}
		if rec.DispatchFID, err = r.readFID(); err != nil {
			return err
		}
		if rec.DispatchInstIndex, err = r.readInst(); err != nil {
			return err
		}
	}
	if rec.AnyInFlight {
		if rec.YoungestFID, err = r.readFID(); err != nil {
			return err
		}
	}
	return nil
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// sliceUvarint reads one uvarint from data at pos for the in-memory decode
// path, with the same one-byte fast path as putUvarint.
func sliceUvarint(data []byte, pos int) (uint64, int, error) {
	if pos < len(data) && data[pos] < 0x80 {
		return uint64(data[pos]), pos + 1, nil
	}
	return sliceUvarintSlow(data, pos)
}

// sliceUvarintSlow is the multi-byte tail of sliceUvarint, split out so the
// one-byte fast path stays under the inlining budget of its callers.
func sliceUvarintSlow(data []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return 0, pos, io.ErrUnexpectedEOF
	}
	return v, pos + n, nil
}

func (st *codecState) slicePC(data []byte, pos int) (uint64, int, error) {
	u, pos, err := sliceUvarint(data, pos)
	if err != nil {
		return 0, pos, err
	}
	pc := uint64(int64(st.lastPC) + unzigzag(u))
	st.lastPC = pc
	return pc, pos, nil
}

func (st *codecState) sliceFID(data []byte, pos int) (uint64, int, error) {
	u, pos, err := sliceUvarint(data, pos)
	if err != nil {
		return 0, pos, err
	}
	fid := uint64(int64(st.lastFID) + unzigzag(u))
	st.lastFID = fid
	return fid, pos, nil
}

func (st *codecState) sliceInst(data []byte, pos int) (int32, int, error) {
	u, pos, err := sliceUvarint(data, pos)
	if err != nil {
		return 0, pos, err
	}
	idx := st.lastInst + unzigzag(u)
	st.lastInst = idx
	return int32(idx), pos, nil
}

// decodeRecord decodes the record at data[pos:] into rec, mirroring
// Reader.Next byte for byte but without reader indirection — the hot path
// for replaying an in-memory capture. It returns the position after the
// record; the codec state carries the delta bases between records.
func decodeRecord(data []byte, pos int, st *codecState, rec *Record) (int, error) {
	delta, pos, err := sliceUvarint(data, pos)
	if err != nil {
		return pos, err
	}
	// Clear only what the previous decode into rec could have dirtied:
	// every header field is overwritten below, bank flags are overwritten
	// for i < NumBanks, and every flag-guarded payload block is explicitly
	// zeroed on its flag-false branch — bit-identical to *rec = Record{}
	// without re-zeroing the ~300-byte struct once per replayed cycle.
	prevBanks := rec.NumBanks
	if prevBanks > MaxBanks {
		prevBanks = MaxBanks
	}
	st.lastCycle += delta
	rec.Cycle = st.lastCycle
	if st.v3 {
		var u uint64
		if pos < len(data) && data[pos] < 0x80 {
			u = uint64(data[pos])
			pos++
		} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
			return pos, err
		}
		st.lastCore = uint64(int64(st.lastCore) + unzigzag(u))
		rec.Core = uint32(st.lastCore)
	} else {
		rec.Core = 0
	}
	if pos+4 > len(data) {
		return pos, io.ErrUnexpectedEOF
	}
	flags := data[pos]
	rec.ROBEmpty = flags&1 != 0
	rec.ExceptionRaised = flags&2 != 0
	rec.DispatchValid = flags&4 != 0
	rec.AnyInFlight = flags&8 != 0
	rec.NumBanks = int(data[pos+1])
	if rec.NumBanks > MaxBanks {
		return pos, fmt.Errorf("trace: bank count %d exceeds max %d", rec.NumBanks, MaxBanks)
	}
	rec.HeadBank = data[pos+2]
	rec.CommitCount = data[pos+3]
	pos += 4
	// The delta bases live in locals across the whole record (written back
	// on success; an error abandons the stream) and each varint load runs
	// its one-byte fast path inline — the helpers are beyond the inliner's
	// budget and this loop is the hottest part of replay.
	lastPC, lastFID, lastInst := st.lastPC, st.lastFID, st.lastInst
	for i := 0; i < rec.NumBanks; i++ {
		if pos >= len(data) {
			return pos, io.ErrUnexpectedEOF
		}
		bf := data[pos]
		pos++
		b := &rec.Banks[i]
		b.Valid = bf&1 != 0
		b.Committing = bf&2 != 0
		b.Mispredicted = bf&4 != 0
		b.Flush = bf&8 != 0
		b.Exception = bf&16 != 0
		if b.Valid {
			var u uint64
			if pos < len(data) && data[pos] < 0x80 {
				u = uint64(data[pos])
				pos++
			} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
				return pos, err
			}
			lastPC = uint64(int64(lastPC) + unzigzag(u))
			b.PC = lastPC
			if pos < len(data) && data[pos] < 0x80 {
				u = uint64(data[pos])
				pos++
			} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
				return pos, err
			}
			lastFID = uint64(int64(lastFID) + unzigzag(u))
			b.FID = lastFID
			if pos < len(data) && data[pos] < 0x80 {
				u = uint64(data[pos])
				pos++
			} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
				return pos, err
			}
			lastInst += unzigzag(u)
			b.InstIndex = int32(lastInst)
		} else {
			b.PC = 0
			b.FID = 0
			b.InstIndex = 0
		}
	}
	for i := rec.NumBanks; i < prevBanks; i++ {
		rec.Banks[i] = BankEntry{}
	}
	if rec.ExceptionRaised {
		var u uint64
		if pos < len(data) && data[pos] < 0x80 {
			u = uint64(data[pos])
			pos++
		} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
			return pos, err
		}
		lastPC = uint64(int64(lastPC) + unzigzag(u))
		rec.ExceptionPC = lastPC
		if pos < len(data) && data[pos] < 0x80 {
			u = uint64(data[pos])
			pos++
		} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
			return pos, err
		}
		lastFID = uint64(int64(lastFID) + unzigzag(u))
		rec.ExceptionFID = lastFID
		if pos < len(data) && data[pos] < 0x80 {
			u = uint64(data[pos])
			pos++
		} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
			return pos, err
		}
		lastInst += unzigzag(u)
		rec.ExceptionInstIndex = int32(lastInst)
	} else {
		rec.ExceptionPC = 0
		rec.ExceptionFID = 0
		rec.ExceptionInstIndex = 0
	}
	if rec.DispatchValid {
		var u uint64
		if pos < len(data) && data[pos] < 0x80 {
			u = uint64(data[pos])
			pos++
		} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
			return pos, err
		}
		lastPC = uint64(int64(lastPC) + unzigzag(u))
		rec.DispatchPC = lastPC
		if pos < len(data) && data[pos] < 0x80 {
			u = uint64(data[pos])
			pos++
		} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
			return pos, err
		}
		lastFID = uint64(int64(lastFID) + unzigzag(u))
		rec.DispatchFID = lastFID
		if pos < len(data) && data[pos] < 0x80 {
			u = uint64(data[pos])
			pos++
		} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
			return pos, err
		}
		lastInst += unzigzag(u)
		rec.DispatchInstIndex = int32(lastInst)
	} else {
		rec.DispatchPC = 0
		rec.DispatchFID = 0
		rec.DispatchInstIndex = 0
	}
	if rec.AnyInFlight {
		var u uint64
		if pos < len(data) && data[pos] < 0x80 {
			u = uint64(data[pos])
			pos++
		} else if u, pos, err = sliceUvarintSlow(data, pos); err != nil {
			return pos, err
		}
		lastFID = uint64(int64(lastFID) + unzigzag(u))
		rec.YoungestFID = lastFID
	} else {
		rec.YoungestFID = 0
	}
	st.lastPC, st.lastFID, st.lastInst = lastPC, lastFID, lastInst
	return pos, nil
}
