package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The binary trace format is a sequence of records, each:
//
//	cycle       uvarint (delta from previous record)
//	flags       byte    (bit0 robEmpty, bit1 exceptionRaised, bit2 dispatchValid, bit3 anyInFlight)
//	numBanks    byte
//	headBank    byte
//	commitCount byte
//	per bank: flags byte (valid/committing/mispredicted/flush/exception), then
//	          pc uvarint, fid uvarint, instIndex uvarint (+1 biased) if valid
//	optional exception block, dispatch block, youngestFID
//
// The format exists so traces can be captured once and replayed against new
// profiler models (the paper ran up to 19 profiler configs per simulation).
const formatMagic = "TIPTRC1\n"

// Writer streams records to an io.Writer.
type Writer struct {
	w         *bufio.Writer
	lastCycle uint64
	wroteHdr  bool
	buf       []byte
	err       error
	count     uint64
}

// NewWriter returns a trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (w *Writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// OnCycle implements Consumer.
func (w *Writer) OnCycle(r *Record) {
	if w.err != nil {
		return
	}
	if !w.wroteHdr {
		if _, err := w.w.WriteString(formatMagic); err != nil {
			w.err = err
			return
		}
		w.wroteHdr = true
	}
	w.buf = w.buf[:0]
	w.uvarint(r.Cycle - w.lastCycle)
	w.lastCycle = r.Cycle
	var flags byte
	if r.ROBEmpty {
		flags |= 1
	}
	if r.ExceptionRaised {
		flags |= 2
	}
	if r.DispatchValid {
		flags |= 4
	}
	if r.AnyInFlight {
		flags |= 8
	}
	w.buf = append(w.buf, flags, byte(r.NumBanks), r.HeadBank, r.CommitCount)
	for i := 0; i < r.NumBanks; i++ {
		b := &r.Banks[i]
		var bf byte
		if b.Valid {
			bf |= 1
		}
		if b.Committing {
			bf |= 2
		}
		if b.Mispredicted {
			bf |= 4
		}
		if b.Flush {
			bf |= 8
		}
		if b.Exception {
			bf |= 16
		}
		w.buf = append(w.buf, bf)
		if b.Valid {
			w.uvarint(b.PC)
			w.uvarint(b.FID)
			w.uvarint(uint64(int64(b.InstIndex) + 1))
		}
	}
	if r.ExceptionRaised {
		w.uvarint(r.ExceptionPC)
		w.uvarint(r.ExceptionFID)
		w.uvarint(uint64(int64(r.ExceptionInstIndex) + 1))
	}
	if r.DispatchValid {
		w.uvarint(r.DispatchPC)
		w.uvarint(r.DispatchFID)
		w.uvarint(uint64(int64(r.DispatchInstIndex) + 1))
	}
	if r.AnyInFlight {
		w.uvarint(r.YoungestFID)
	}
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = err
	}
	w.count++
}

// Finish implements Consumer; it flushes buffered output.
func (w *Writer) Finish(totalCycles uint64) {
	if w.err == nil {
		w.err = w.w.Flush()
	}
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Reader replays a stored trace.
type Reader struct {
	r         *bufio.Reader
	lastCycle uint64
	readHdr   bool
}

// NewReader returns a trace reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next decodes the next record into rec. It returns io.EOF at end of trace.
func (r *Reader) Next(rec *Record) error {
	if !r.readHdr {
		hdr := make([]byte, len(formatMagic))
		if _, err := io.ReadFull(r.r, hdr); err != nil {
			return err
		}
		if string(hdr) != formatMagic {
			return fmt.Errorf("trace: bad magic %q", hdr)
		}
		r.readHdr = true
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		return err
	}
	*rec = Record{}
	r.lastCycle += delta
	rec.Cycle = r.lastCycle
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return unexpected(err)
	}
	flags := hdr[0]
	rec.ROBEmpty = flags&1 != 0
	rec.ExceptionRaised = flags&2 != 0
	rec.DispatchValid = flags&4 != 0
	rec.AnyInFlight = flags&8 != 0
	rec.NumBanks = int(hdr[1])
	if rec.NumBanks > MaxBanks {
		return fmt.Errorf("trace: bank count %d exceeds max %d", rec.NumBanks, MaxBanks)
	}
	rec.HeadBank = hdr[2]
	rec.CommitCount = hdr[3]
	for i := 0; i < rec.NumBanks; i++ {
		bf, err := r.r.ReadByte()
		if err != nil {
			return unexpected(err)
		}
		b := &rec.Banks[i]
		b.Valid = bf&1 != 0
		b.Committing = bf&2 != 0
		b.Mispredicted = bf&4 != 0
		b.Flush = bf&8 != 0
		b.Exception = bf&16 != 0
		if b.Valid {
			if b.PC, err = binary.ReadUvarint(r.r); err != nil {
				return unexpected(err)
			}
			if b.FID, err = binary.ReadUvarint(r.r); err != nil {
				return unexpected(err)
			}
			v, err := binary.ReadUvarint(r.r)
			if err != nil {
				return unexpected(err)
			}
			b.InstIndex = int32(int64(v) - 1)
		}
	}
	if rec.ExceptionRaised {
		if rec.ExceptionPC, err = binary.ReadUvarint(r.r); err != nil {
			return unexpected(err)
		}
		if rec.ExceptionFID, err = binary.ReadUvarint(r.r); err != nil {
			return unexpected(err)
		}
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			return unexpected(err)
		}
		rec.ExceptionInstIndex = int32(int64(v) - 1)
	}
	if rec.DispatchValid {
		if rec.DispatchPC, err = binary.ReadUvarint(r.r); err != nil {
			return unexpected(err)
		}
		if rec.DispatchFID, err = binary.ReadUvarint(r.r); err != nil {
			return unexpected(err)
		}
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			return unexpected(err)
		}
		rec.DispatchInstIndex = int32(int64(v) - 1)
	}
	if rec.AnyInFlight {
		if rec.YoungestFID, err = binary.ReadUvarint(r.r); err != nil {
			return unexpected(err)
		}
	}
	return nil
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
