package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"github.com/tipprof/tip/internal/xrand"
)

func sampleRecord(cycle uint64) Record {
	var r Record
	r.Cycle = cycle
	r.NumBanks = 4
	r.HeadBank = 1
	r.Banks[1] = BankEntry{Valid: true, Committing: true, PC: 0x10000, FID: 7, InstIndex: 3}
	r.Banks[2] = BankEntry{Valid: true, PC: 0x10004, FID: 8, InstIndex: 4}
	r.CommitCount = 1
	r.AnyInFlight = true
	r.YoungestFID = 12
	return r
}

func TestOldestRespectsHeadBank(t *testing.T) {
	r := sampleRecord(5)
	old := r.Oldest()
	if old == nil || old.FID != 7 {
		t.Fatalf("Oldest = %+v", old)
	}
	// Invalidate head bank: next in age order is bank 2.
	r.Banks[1].Valid = false
	old = r.Oldest()
	if old == nil || old.FID != 8 {
		t.Fatalf("Oldest after head invalid = %+v", old)
	}
	r.ROBEmpty = true
	if r.Oldest() != nil {
		t.Fatal("Oldest on empty ROB should be nil")
	}
}

func TestCommittingInAgeOrder(t *testing.T) {
	var r Record
	r.NumBanks = 4
	r.HeadBank = 2
	// Banks 2, 3 commit (ages 0, 1); bank 0 commits (age 2).
	r.Banks[2] = BankEntry{Valid: true, Committing: true, FID: 10}
	r.Banks[3] = BankEntry{Valid: true, Committing: true, FID: 11}
	r.Banks[0] = BankEntry{Valid: true, Committing: true, FID: 12}
	out := r.CommittingInAgeOrder(nil)
	if len(out) != 3 || out[0].FID != 10 || out[1].FID != 11 || out[2].FID != 12 {
		t.Fatalf("age order wrong: %v %v %v", out[0].FID, out[1].FID, out[2].FID)
	}
	if y := r.YoungestCommitting(); y == nil || y.FID != 12 {
		t.Fatalf("YoungestCommitting = %+v", y)
	}
}

func TestAccessorsClampMalformedBankCount(t *testing.T) {
	// A corrupt producer can hand out a record with NumBanks past the
	// array; the age-order accessors must clamp rather than panic so the
	// invariant checker gets to report the record.
	r := sampleRecord(0)
	r.NumBanks = MaxBanks + 3
	if old := r.Oldest(); old == nil || old.FID != 7 {
		t.Fatalf("Oldest on malformed record = %+v", old)
	}
	if y := r.YoungestCommitting(); y == nil || y.FID != 7 {
		t.Fatalf("YoungestCommitting on malformed record = %+v", y)
	}
	if out := r.CommittingInAgeOrder(nil); len(out) != 1 {
		t.Fatalf("CommittingInAgeOrder on malformed record = %d entries", len(out))
	}
}

func TestYoungestCommittingNil(t *testing.T) {
	var r Record
	r.NumBanks = 4
	r.Banks[0] = BankEntry{Valid: true} // valid but not committing
	if r.YoungestCommitting() != nil {
		t.Fatal("expected nil when nothing commits")
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := &CountingConsumer{}, &CountingConsumer{}
	tee := &Tee{Consumers: []Consumer{a, b}}
	r := sampleRecord(1)
	tee.OnCycle(&r)
	tee.OnCycle(&r)
	tee.Finish(2)
	if a.Cycles != 2 || b.Cycles != 2 {
		t.Fatalf("cycles %d/%d", a.Cycles, b.Cycles)
	}
	if !a.Finished || !b.Finished || a.Total != 2 {
		t.Fatal("finish not propagated")
	}
	if a.Commits != 2 {
		t.Fatalf("commits = %d", a.Commits)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{sampleRecord(0), sampleRecord(1), sampleRecord(100)}
	recs[1].ExceptionRaised = true
	recs[1].ExceptionPC = 0x2000
	recs[1].ExceptionFID = 99
	recs[1].ExceptionInstIndex = -1
	recs[2].DispatchValid = true
	recs[2].DispatchPC = 0x3000
	recs[2].DispatchFID = 55
	recs[2].DispatchInstIndex = 9
	recs[2].ROBEmpty = true
	for i := range recs {
		w.OnCycle(&recs[i])
	}
	w.Finish(101)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if w.Count() != 3 {
		t.Fatalf("wrote %d records", w.Count())
	}

	r := NewReader(&buf)
	for i := range recs {
		var got Record
		if err := r.Next(&got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != recs[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, recs[i])
		}
	}
	var extra Record
	if err := r.Next(&extra); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	r := NewReader(bytes.NewBufferString("NOTATRACE"))
	var rec Record
	if err := r.Next(&rec); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := sampleRecord(0)
	w.OnCycle(&rec)
	w.Finish(1)
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-3]))
	var got Record
	err := r.Next(&got)
	if err == nil {
		// First record may decode if truncation hit trailing fields of
		// a later record; here there is only one, so it must fail.
		t.Fatal("truncated trace decoded cleanly")
	}
}

// Property: arbitrary records survive an encode/decode round trip.
func TestQuickRoundTrip(t *testing.T) {
	rng := xrand.New(7)
	gen := func() Record {
		var r Record
		r.NumBanks = 1 + int(rng.Uint64n(MaxBanks))
		r.Cycle = rng.Uint64n(1 << 40)
		r.HeadBank = uint8(rng.Uint64n(uint64(r.NumBanks)))
		for i := 0; i < r.NumBanks; i++ {
			if rng.Bool(0.7) {
				r.Banks[i] = BankEntry{
					Valid:        true,
					Committing:   rng.Bool(0.5),
					Mispredicted: rng.Bool(0.1),
					Flush:        rng.Bool(0.1),
					Exception:    rng.Bool(0.05),
					PC:           rng.Uint64n(1 << 48),
					FID:          rng.Uint64n(1 << 48),
					InstIndex:    int32(rng.Uint64n(1<<20)) - 1,
				}
			}
		}
		empty := true
		commits := 0
		for i := 0; i < r.NumBanks; i++ {
			if r.Banks[i].Valid {
				empty = false
				if r.Banks[i].Committing {
					commits++
				}
			}
		}
		r.ROBEmpty = empty
		r.CommitCount = uint8(commits)
		if rng.Bool(0.3) {
			r.ExceptionRaised = true
			r.ExceptionPC = rng.Uint64n(1 << 48)
			r.ExceptionFID = rng.Uint64n(1 << 30)
			r.ExceptionInstIndex = int32(rng.Uint64n(100)) - 1
		}
		if rng.Bool(0.5) {
			r.DispatchValid = true
			r.DispatchPC = rng.Uint64n(1 << 48)
			r.DispatchFID = rng.Uint64n(1 << 30)
			r.DispatchInstIndex = int32(rng.Uint64n(100)) - 1
		}
		if rng.Bool(0.8) {
			r.AnyInFlight = true
			r.YoungestFID = rng.Uint64n(1 << 40)
		}
		return r
	}
	f := func(n uint8) bool {
		count := int(n%16) + 1
		recs := make([]Record, count)
		cycle := uint64(0)
		for i := range recs {
			recs[i] = gen()
			cycle += recs[i].Cycle % 1000
			recs[i].Cycle = cycle
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := range recs {
			w.OnCycle(&recs[i])
		}
		w.Finish(cycle)
		if w.Err() != nil {
			return false
		}
		r := NewReader(&buf)
		for i := range recs {
			var got Record
			if err := r.Next(&got); err != nil {
				return false
			}
			if got != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	w := NewWriter(io.Discard)
	rec := sampleRecord(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Cycle = uint64(i)
		w.OnCycle(&rec)
	}
	w.Finish(uint64(b.N))
}

func BenchmarkDecodeRecord(b *testing.B) {
	// Replay-side decode throughput over a realistic mixed stream:
	// mostly committing records with small deltas, occasional gaps.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 4096
	for i := 0; i < n; i++ {
		rec := sampleRecord(uint64(i))
		rec.Banks[1].PC = 0x10000 + uint64(i)*4
		rec.Banks[1].FID = uint64(7 + i)
		if i%17 == 0 { // idle cycle: no banks, nothing in flight
			rec = Record{Cycle: uint64(i)}
		}
		w.OnCycle(&rec)
	}
	w.Finish(n)
	if w.Err() != nil {
		b.Fatal(w.Err())
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReplayBytes(data, &CountingConsumer{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTeeDispatch(b *testing.B) {
	tee := &Tee{Consumers: []Consumer{&CountingConsumer{}, &CountingConsumer{}, &CountingConsumer{}}}
	rec := sampleRecord(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tee.OnCycle(&rec)
	}
}
