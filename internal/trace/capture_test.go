package trace

import (
	"bytes"
	"os"
	"testing"
)

// captureRecords streams n sample records into a capture and finishes it.
func captureRecords(t *testing.T, c *Capture, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r := sampleRecord(uint64(i))
		c.OnCycle(&r)
	}
	c.Finish(uint64(n))
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// collect replays a capture into a slice of record copies.
type collect struct {
	recs  []Record
	total uint64
}

func (c *collect) OnCycle(r *Record)    { c.recs = append(c.recs, *r) }
func (c *collect) Finish(cycles uint64) { c.total = cycles }

func TestCaptureInMemoryRoundTrip(t *testing.T) {
	c := NewCapture(0)
	defer c.Close()
	captureRecords(t, c, 100)
	if c.Spilled() {
		t.Fatal("100 records should not spill with the default budget")
	}
	if c.Records() != 100 || c.Cycles() != 100 {
		t.Fatalf("Records=%d Cycles=%d, want 100/100", c.Records(), c.Cycles())
	}

	var got collect
	cycles, records, err := c.Replay(&got)
	if err != nil {
		t.Fatal(err)
	}
	if records != 100 || cycles != got.total {
		t.Fatalf("replay delivered %d records, Finish(%d) vs consumer %d", records, cycles, got.total)
	}
	for i, r := range got.recs {
		want := sampleRecord(uint64(i))
		if r != want {
			t.Fatalf("record %d differs after capture round-trip:\ngot  %+v\nwant %+v", i, r, want)
		}
	}
}

func TestCaptureSpillRoundTrip(t *testing.T) {
	// A tiny budget forces the spill path almost immediately.
	c := NewCapture(64)
	captureRecords(t, c, 500)
	if !c.Spilled() {
		t.Fatal("a 64-byte budget must spill")
	}
	if c.Bytes() <= 64 {
		t.Fatalf("Bytes()=%d, want the full encoded size", c.Bytes())
	}

	// Replay twice: a capture is reusable and both replays must agree.
	for pass := 0; pass < 2; pass++ {
		var got collect
		_, records, err := c.Replay(&got)
		if err != nil {
			t.Fatal(err)
		}
		if records != 500 {
			t.Fatalf("pass %d: replayed %d records, want 500", pass, records)
		}
		for i, r := range got.recs {
			want := sampleRecord(uint64(i))
			if r != want {
				t.Fatalf("pass %d: record %d differs after spill round-trip", pass, i)
			}
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCaptureCloseRemovesSpillFile(t *testing.T) {
	c := NewCapture(64)
	captureRecords(t, c, 50)
	if !c.Spilled() {
		t.Fatal("expected a spilled capture")
	}
	name := c.f.Name()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Fatalf("spill file %s survives Close (stat err: %v)", name, err)
	}
}

func TestCaptureReplayUnfinishedErrors(t *testing.T) {
	c := NewCapture(0)
	defer c.Close()
	r := sampleRecord(0)
	c.OnCycle(&r)
	if _, _, err := c.Replay(&collect{}); err == nil {
		t.Fatal("replaying an unfinished capture must error")
	}
}

// TestCaptureMatchesDirectEncoding pins the capture's encoded bytes to a
// plain Writer over the same records: the capture is the codec plus storage,
// nothing more.
func TestCaptureMatchesDirectEncoding(t *testing.T) {
	c := NewCapture(0)
	defer c.Close()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 64; i++ {
		r := sampleRecord(uint64(i))
		c.OnCycle(&r)
		w.OnCycle(&r)
	}
	c.Finish(64)
	w.Finish(64)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.buf, buf.Bytes()) {
		t.Fatalf("capture bytes differ from direct encoding: %d vs %d bytes",
			len(c.buf), buf.Len())
	}
}

// TestReplayDecodeLoopAllocs bounds the decode loop's allocations: after the
// reader's one-time setup, decoding must not allocate per record, so the
// total for a whole stream stays a small constant.
func TestReplayDecodeLoopAllocs(t *testing.T) {
	c := NewCapture(0)
	defer c.Close()
	captureRecords(t, c, 4096)

	allocs := testing.AllocsPerRun(3, func() {
		if _, _, err := c.Replay(&nullConsumer{}); err != nil {
			t.Fatal(err)
		}
	})
	// One bytes.Reader, one Reader with its header scratch, and a few
	// interface boxes — but nothing proportional to the 4096 records.
	if allocs > 16 {
		t.Fatalf("replaying 4096 records allocated %.0f times; decode loop must not allocate per record", allocs)
	}
}

type nullConsumer struct{}

func (nullConsumer) OnCycle(*Record) {}
func (nullConsumer) Finish(uint64)   {}
