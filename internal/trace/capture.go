package trace

import (
	"errors"
	"io"
	"os"
)

// errCaptureSealed is the sticky error set when records arrive at a capture
// that has already been finished or closed. Appending to a sealed capture
// would silently corrupt it — most dangerously an adopted
// NewCaptureFromEncoded capture, whose buffer is the caller's persisted
// bytes — so the first late record poisons the capture instead.
var errCaptureSealed = errors.New("trace: record after capture Finish/Close")

// DefaultSpillBytes is the in-memory capture budget before a capture spills
// to a temporary file. Encoded records run ~10-25 bytes per cycle, so the
// default holds several-million-cycle benchmarks entirely in memory while
// bounding the footprint of a parallel suite evaluation.
const DefaultSpillBytes = 128 << 20

// spillChunk is the write granularity once a capture has spilled: records
// accumulate in the buffer and are flushed to the file in chunks this size.
const spillChunk = 1 << 20

// maxRecordBytes over-estimates the largest possible encoded record: cycle
// delta + header + MaxBanks full banks + exception/dispatch/in-flight blocks,
// all uvarints at their 10-byte worst case.
const maxRecordBytes = 512

// Capture records an encoded trace once and replays it any number of times.
// It is the capture half of the paper's capture-once, evaluate-many-configs
// methodology (§4): one cycle-level simulation streams its commit-stage
// records into the capture, and every profiler configuration afterwards is
// fed by decoding the capture — far cheaper than re-simulating the core.
//
// Records are encoded straight into the in-memory buffer (same byte format
// as Writer); once the encoded size crosses the spill threshold the capture
// transparently moves to a temp file. Close releases the file; a purely
// in-memory capture needs no Close but tolerates one.
type Capture struct {
	limit     int
	buf       []byte // header + encoded records (pending chunk when spilled)
	f         *os.File
	fileBytes uint64 // bytes already flushed to f
	st        codecState
	count     uint64
	// cycles is the Finish total from the captured run.
	cycles   uint64
	finished bool
	closed   bool
	err      error
}

// NewCapture returns an empty capture encoding the v2 (TIPTRC2) layout.
// spillBytes bounds the in-memory encoded size before spilling to disk; 0
// selects DefaultSpillBytes.
func NewCapture(spillBytes int) *Capture {
	if spillBytes <= 0 {
		spillBytes = DefaultSpillBytes
	}
	return &Capture{limit: spillBytes}
}

// NewCaptureV3 returns an empty capture encoding the v3 (TIPTRC3) layout,
// which records each cycle's producing core ID — the format multi-programmed
// captures interleave several cores' records into.
func NewCaptureV3(spillBytes int) *Capture {
	c := NewCapture(spillBytes)
	c.st.v3 = true
	return c
}

// OnCycle implements Consumer. Records arriving after Finish or Close set a
// sticky error rather than corrupting the sealed trace.
func (c *Capture) OnCycle(r *Record) {
	if c.err != nil {
		return
	}
	if c.finished || c.closed {
		c.err = errCaptureSealed
		return
	}
	if c.count == 0 && c.f == nil && len(c.buf) == 0 {
		if c.st.v3 {
			c.buf = append(c.buf, formatMagicV3...)
		} else {
			c.buf = append(c.buf, formatMagic...)
		}
	}
	if cap(c.buf)-len(c.buf) < maxRecordBytes {
		c.grow()
	}
	c.buf = appendRecord(c.buf, r, &c.st)
	c.count++
	if c.f == nil {
		if len(c.buf) > c.limit {
			c.spill()
		}
	} else if len(c.buf) >= spillChunk {
		c.flush()
	}
}

// grow doubles the buffer's capacity (1 MiB floor, bounded by what the
// capture can ever hold before spilling). The runtime's growth policy for
// large slices is ~1.25x, which would re-copy a multi-megabyte trace several
// times over as it accumulates; explicit doubling keeps total copying linear
// in the final size.
func (c *Capture) grow() {
	bound := c.limit + maxRecordBytes
	if c.f != nil {
		bound = spillChunk + maxRecordBytes
	}
	newCap := 2 * cap(c.buf)
	if newCap < 1<<20 {
		newCap = 1 << 20
	}
	if newCap > bound {
		newCap = bound
	}
	if newCap <= cap(c.buf) {
		return // bound reached; let append grow the tail if it must
	}
	nb := make([]byte, len(c.buf), newCap)
	copy(nb, c.buf)
	c.buf = nb
}

// spill moves the capture to a temp file once the memory budget is exceeded.
func (c *Capture) spill() {
	f, err := os.CreateTemp("", "tip-capture-*.trc")
	if err != nil {
		c.err = err
		return
	}
	c.f = f
	c.flush()
}

// flush writes the buffered chunk to the spill file.
func (c *Capture) flush() {
	n, err := c.f.Write(c.buf)
	c.fileBytes += uint64(n)
	c.buf = c.buf[:0]
	if err != nil {
		c.err = err
	}
}

// Finish implements Consumer; after Finish the capture is replayable.
func (c *Capture) Finish(totalCycles uint64) {
	if c.f != nil && c.err == nil && len(c.buf) > 0 {
		c.flush()
	}
	c.cycles = totalCycles
	c.finished = true
}

// Err returns the first capture error (encoding or spill I/O), if any.
func (c *Capture) Err() error { return c.err }

// Cycles returns the captured run's total cycle count (valid after Finish).
func (c *Capture) Cycles() uint64 { return c.cycles }

// Records returns the number of captured per-cycle records.
func (c *Capture) Records() uint64 { return c.count }

// Bytes returns the encoded trace size in bytes (including the header).
func (c *Capture) Bytes() uint64 { return c.fileBytes + uint64(len(c.buf)) }

// Spilled reports whether the capture overflowed to a temp file.
func (c *Capture) Spilled() bool { return c.f != nil }

// NewCaptureFromEncoded adopts an already-encoded trace stream — the bytes a
// prior capture's WriteTo produced — as a finished, replayable in-memory
// capture. records and cycles restore the Records/Cycles bookkeeping that is
// not re-derivable without a full decode; callers persisting captures (the
// tipd capture cache's spill directory) store them alongside the stream.
// The data slice is retained, not copied.
func NewCaptureFromEncoded(data []byte, records, cycles uint64) (*Capture, error) {
	v3, err := sniffMagic(data)
	if err != nil {
		return nil, err
	}
	return &Capture{
		limit:    len(data),
		buf:      data,
		count:    records,
		cycles:   cycles,
		st:       codecState{v3: v3},
		finished: true,
	}, nil
}

// Replay streams the captured trace through consumers exactly as the live
// core did: one OnCycle per record, then Finish. It can be called any number
// of times; concurrent replays of the same capture are safe because each
// call reads through its own cursor. In-memory captures decode straight off
// the buffer; spilled ones stream through a reader.
func (c *Capture) Replay(consumers ...Consumer) (cycles uint64, records uint64, err error) {
	if !c.finished {
		return 0, 0, errReplayUnfinished
	}
	if c.err != nil {
		return 0, 0, errCaptureFailed(c.err)
	}
	if c.f == nil {
		return ReplayBytes(c.buf, consumers...)
	}
	src := io.NewSectionReader(c.f, 0, int64(c.fileBytes))
	return Replay(NewReader(src), consumers...)
}

// WriteTo copies the full encoded stream (header included) to w, leaving the
// capture replayable. It is how captures are persisted: the written bytes are
// exactly what Replay decodes, so a saved file can be compared or replayed
// byte-for-byte later.
func (c *Capture) WriteTo(w io.Writer) (int64, error) {
	if !c.finished {
		return 0, errReplayUnfinished
	}
	if c.err != nil {
		return 0, errCaptureFailed(c.err)
	}
	var written int64
	if c.f != nil {
		n, err := io.Copy(w, io.NewSectionReader(c.f, 0, int64(c.fileBytes)))
		written += n
		if err != nil {
			return written, err
		}
	}
	n, err := w.Write(c.buf)
	return written + int64(n), err
}

// Close releases the spill file, if any. The capture is not replayable
// afterwards.
func (c *Capture) Close() error {
	c.buf = nil
	c.closed = true
	if c.f == nil {
		return nil
	}
	f := c.f
	c.f = nil
	name := f.Name()
	if err := f.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Remove(name)
}
