// Package trace defines the per-cycle commit-stage record the simulated
// core emits and that every profiler model consumes.
//
// This mirrors the paper's methodology (§4): FireSim was modified to trace
// out, every cycle, the instruction address and the valid, commit,
// exception, flush, and mispredicted flags of the head ROB entry in each
// ROB bank, plus the information needed to model Dispatch and Software
// sampling out-of-band. Because all profilers observe the same stream, they
// sample the exact same cycles and differences between them are purely
// systematic.
//
// Records are reused by the producer: consumers must copy anything they
// need to retain beyond the callback.
package trace

// MaxBanks caps the commit width the record can carry.
const MaxBanks = 8

// BankEntry is the head ROB entry of one bank in one cycle.
type BankEntry struct {
	// Valid reports the entry holds a live instruction.
	Valid bool
	// Committing reports the instruction commits this cycle.
	Committing bool
	// Mispredicted marks a resolved-mispredicted control-flow
	// instruction (branch or return).
	Mispredicted bool
	// Flush marks an instruction that flushes the pipeline when it
	// commits (CSR status-register writes on BOOM).
	Flush bool
	// Exception marks an instruction with a pending exception (page
	// fault) that will be raised when it reaches the head.
	Exception bool
	// PC is the instruction address.
	PC uint64
	// FID is the fetch-order instance ID assigned by the core. Re-fetched
	// (squashed and replayed) instructions get fresh FIDs.
	FID uint64
	// InstIndex is the static-instruction index into the program (the
	// symbol at instruction granularity); -1 if unknown.
	InstIndex int32
}

// Record is the commit-stage observation for one cycle.
type Record struct {
	// Cycle is the core cycle this record describes.
	Cycle uint64
	// Core identifies the physical core that produced the record in a
	// multi-programmed capture (§3.2: each core has its own TIP unit and
	// perf tags every sample with a core ID). Single-core streams and v2
	// traces carry 0. The multicore driver sets it once per producing
	// core; Reset deliberately leaves it alone so the per-cycle reset
	// stays cheap.
	Core uint32
	// NumBanks is the commit width (live entries in Banks).
	NumBanks int
	// Banks holds the head entry per bank, indexed by bank ID.
	Banks [MaxBanks]BankEntry
	// HeadBank is the bank holding the oldest instruction (Oldest ID).
	HeadBank uint8
	// ROBEmpty reports that no bank holds a valid entry.
	ROBEmpty bool
	// CommitCount is the number of instructions committing this cycle.
	CommitCount uint8

	// ExceptionRaised reports that the core raises an exception this
	// cycle (the head instruction faulted); the excepting instruction is
	// identified by the fields below. This is the event TIP's OIR Update
	// unit watches for (§3.1).
	ExceptionRaised    bool
	ExceptionPC        uint64
	ExceptionFID       uint64
	ExceptionInstIndex int32

	// DispatchValid reports an instruction is waiting at the dispatch
	// stage this cycle; Dispatch-tagging profilers sample it.
	DispatchValid     bool
	DispatchPC        uint64
	DispatchFID       uint64
	DispatchInstIndex int32

	// YoungestFID is the newest in-flight fetch ID (ROB or front-end);
	// Software profiling resumes after all of these drain.
	YoungestFID uint64
	// AnyInFlight reports whether YoungestFID is meaningful.
	AnyInFlight bool
}

// Reset prepares a producer-reused record for a new cycle. It clears every
// flag that encoder and consumers branch on, but deliberately leaves the
// flag-guarded payload fields (bank PC/FID/InstIndex and the exception,
// dispatch, and youngest-FID blocks) stale: readers are required to check
// the corresponding flag first and the encoder only serializes payloads
// whose flag is set, so stale values are unobservable. That keeps the
// per-cycle reset to a handful of byte stores instead of zeroing the whole
// ~200-byte struct — a measurable win when it runs once per simulated cycle.
func (r *Record) Reset(cycle uint64, numBanks int) {
	r.Cycle = cycle
	r.NumBanks = numBanks
	r.HeadBank = 0
	r.ROBEmpty = false
	r.CommitCount = 0
	r.ExceptionRaised = false
	r.DispatchValid = false
	r.AnyInFlight = false
	if numBanks > MaxBanks {
		numBanks = MaxBanks
	}
	for i := 0; i < numBanks; i++ {
		b := &r.Banks[i]
		b.Valid = false
		b.Committing = false
		b.Mispredicted = false
		b.Flush = false
		b.Exception = false
	}
}

// banks returns the bank count clamped to [0, MaxBanks] so the age-order
// scans below cannot index past the array on a malformed record; the
// invariant checker (internal/check) reports such records instead of
// crashing on them.
func (r *Record) banks() int {
	if r.NumBanks > MaxBanks {
		return MaxBanks
	}
	return r.NumBanks
}

// headBank returns the age-order scan start: HeadBank reduced into [0, n).
// Well-formed records already satisfy HeadBank < n; the reduction only
// matters for malformed decoded records, where it preserves the historical
// modulo semantics. The accessors below run once (or more) per replayed
// cycle per profiler, so their scans wrap by compare-and-reset instead of
// dividing on every iteration.
func (r *Record) headBank(n int) int {
	b := int(r.HeadBank)
	if b >= n {
		b %= n
	}
	return b
}

// Oldest returns the oldest valid bank entry, or nil if the ROB is empty.
func (r *Record) Oldest() *BankEntry {
	if r.ROBEmpty {
		return nil
	}
	// The oldest instruction lives in HeadBank; if that bank is invalid
	// (partially drained ROB), scan banks in age order.
	n := r.banks()
	if n <= 0 {
		return nil
	}
	b := r.headBank(n)
	for i := 0; i < n; i++ {
		if r.Banks[b].Valid {
			return &r.Banks[b]
		}
		if b++; b == n {
			b = 0
		}
	}
	return nil
}

// CommittingInAgeOrder appends the committing entries, oldest first, to dst
// and returns it.
func (r *Record) CommittingInAgeOrder(dst []*BankEntry) []*BankEntry {
	n := r.banks()
	if n <= 0 {
		return dst
	}
	b := r.headBank(n)
	for i := 0; i < n; i++ {
		if r.Banks[b].Valid && r.Banks[b].Committing {
			dst = append(dst, &r.Banks[b])
		}
		if b++; b == n {
			b = 0
		}
	}
	return dst
}

// YoungestCommitting returns the youngest committing entry this cycle, or
// nil. This is what TIP's OIR Update unit latches (§3.1).
func (r *Record) YoungestCommitting() *BankEntry {
	var out *BankEntry
	n := r.banks()
	if n <= 0 {
		return nil
	}
	b := r.headBank(n)
	for i := 0; i < n; i++ {
		if r.Banks[b].Valid && r.Banks[b].Committing {
			out = &r.Banks[b]
		}
		if b++; b == n {
			b = 0
		}
	}
	return out
}

// Consumer observes the per-cycle stream. OnCycle is called once per cycle
// with a reused record; Finish is called once when the run ends, with the
// final cycle count.
type Consumer interface {
	OnCycle(r *Record)
	Finish(totalCycles uint64)
}

// Tee fans one stream out to several consumers.
type Tee struct {
	Consumers []Consumer
}

// OnCycle implements Consumer.
func (t *Tee) OnCycle(r *Record) {
	for _, c := range t.Consumers {
		c.OnCycle(r)
	}
}

// Finish implements Consumer.
func (t *Tee) Finish(totalCycles uint64) {
	for _, c := range t.Consumers {
		c.Finish(totalCycles)
	}
}

// CountingConsumer counts records; used in tests and as a cheap baseline in
// the trace-overhead ablation bench.
type CountingConsumer struct {
	Cycles   uint64
	Commits  uint64
	Finished bool
	Total    uint64
}

// OnCycle implements Consumer.
func (c *CountingConsumer) OnCycle(r *Record) {
	c.Cycles++
	c.Commits += uint64(r.CommitCount)
}

// Finish implements Consumer.
func (c *CountingConsumer) Finish(totalCycles uint64) {
	c.Finished = true
	c.Total = totalCycles
}
