package trace

// CoreFilter forwards one core's records out of an interleaved multi-core
// (TIPTRC3) stream to an inner consumer, translating the shared Finish into
// the per-core cycle count the inner consumer expects.
//
// A lockstep multi-programmed capture holds every core's records in one
// stream; per-core profiler stacks (Oracle, sampled profilers, the
// internal/check invariant checker) are written against a single core's
// contiguous cycle sequence. Wrapping each core's shard in a CoreFilter
// demultiplexes the broadcast: every shard observes the whole stream but
// delivers only its core's records inward, so one decode pass feeds all
// cores' matrices — the same decode-once economics as single-core sharded
// replay.
//
// Finish semantics mirror Replay: the inner consumer's total is the cycle of
// this core's last committing record plus one (the same value
// cpu.Core.FinalizeStats derives for the direct path), not the interleaved
// stream's global total.
type CoreFilter struct {
	// Core selects the records to forward.
	Core uint32
	// Inner receives the selected records.
	Inner Consumer

	lastCommit uint64
}

// OnCycle implements Consumer.
func (f *CoreFilter) OnCycle(r *Record) {
	if r.Core != f.Core {
		return
	}
	f.Inner.OnCycle(r)
	if r.CommitCount > 0 {
		f.lastCommit = r.Cycle
	}
}

// Finish implements Consumer. totalCycles is the interleaved stream's
// global total and is discarded in favour of this core's own count.
func (f *CoreFilter) Finish(totalCycles uint64) {
	f.Inner.Finish(f.lastCommit + 1)
}

// Err implements Faultable by deferring to the inner consumer, so a sharded
// replay's fault polling sees through the filter.
func (f *CoreFilter) Err() error {
	if fa, ok := f.Inner.(Faultable); ok {
		return fa.Err()
	}
	return nil
}
