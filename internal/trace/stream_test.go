package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"
)

// streamRecords runs a producer goroutine that feeds n sample records into
// the stream and then Finishes it, mirroring how a core run drives the
// producer side.
func streamRecords(s *Stream, n int) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			r := sampleRecord(uint64(i))
			s.OnCycle(&r)
		}
		s.Finish(uint64(n))
	}()
	return done
}

// TestStreamMatchesCaptureReplay pins the fused path to the capture path:
// every shard of a streamed replay sees the identical record sequence and
// Finish total a capture-then-replay of the same run produces, across shard
// counts, chunk sizes, and pilot windows.
func TestStreamMatchesCaptureReplay(t *testing.T) {
	const n = 777
	capt := newFinishedCapture(t, n)
	var ref collect
	wantCycles, wantRecords, err := capt.Replay(&ref)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 3} {
		for _, chunk := range []int{1, 13, 256, 0} {
			for _, pilot := range []uint64{0, 100, 10_000} {
				name := fmt.Sprintf("shards=%d/chunk=%d/pilot=%d", shards, chunk, pilot)
				t.Run(name, func(t *testing.T) {
					s := NewStream(StreamConfig{ChunkRecords: chunk, PilotCycles: pilot})
					prodDone := streamRecords(s, n)
					ps, err := s.Pilot(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					if pilot > 0 && pilot <= n {
						if ps.Exact || ps.Cycles != pilot || ps.Committed != pilot {
							t.Fatalf("pilot stats %+v, want exact prefix of %d", ps, pilot)
						}
					}
					if pilot > n {
						if !ps.Exact || ps.Cycles != n || ps.Committed != n {
							t.Fatalf("pilot stats %+v, want Exact whole-run totals", ps)
						}
					}
					cons := make([]*collect, shards)
					args := make([]Consumer, shards)
					for i := range cons {
						cons[i] = &collect{}
						args[i] = cons[i]
					}
					cycles, records, err := s.ReplayShards(context.Background(), args...)
					if err != nil {
						t.Fatal(err)
					}
					<-prodDone
					if cycles != wantCycles || records != wantRecords {
						t.Fatalf("totals %d/%d, want %d/%d", cycles, records, wantCycles, wantRecords)
					}
					for i, cc := range cons {
						if len(cc.recs) != len(ref.recs) {
							t.Fatalf("shard %d saw %d records, want %d", i, len(cc.recs), len(ref.recs))
						}
						for j := range cc.recs {
							if cc.recs[j] != ref.recs[j] {
								t.Fatalf("shard %d record %d differs", i, j)
							}
						}
						if cc.total != wantCycles {
							t.Fatalf("shard %d Finish(%d), want %d", i, cc.total, wantCycles)
						}
					}
				})
			}
		}
	}
}

// TestStreamProducerFail checks a failed run surfaces the producer's error
// from ReplayShards after the produced prefix drains, with no Finish.
func TestStreamProducerFail(t *testing.T) {
	s := NewStream(StreamConfig{ChunkRecords: 8})
	injected := errors.New("injected core failure")
	go func() {
		for i := 0; i < 100; i++ {
			r := sampleRecord(uint64(i))
			s.OnCycle(&r)
		}
		s.Fail(injected)
	}()
	cc := &collect{}
	_, records, err := s.ReplayShards(context.Background(), cc)
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	if cc.total != 0 {
		t.Fatal("Finish must not be delivered after a producer failure")
	}
	// The full chunks produced before the failure still drain to consumers.
	if records == 0 {
		t.Fatal("expected the produced prefix to drain before the error")
	}
}

// TestStreamPilotFailBeforeBoundary checks a producer failing inside the
// pilot window propagates its error from Pilot.
func TestStreamPilotFailBeforeBoundary(t *testing.T) {
	s := NewStream(StreamConfig{PilotCycles: 1 << 20})
	injected := errors.New("early core failure")
	r := sampleRecord(0)
	s.OnCycle(&r)
	s.Fail(injected)
	if _, err := s.Pilot(context.Background()); !errors.Is(err, injected) {
		t.Fatalf("Pilot err = %v, want the injected failure", err)
	}
}

// TestStreamConsumerFaultAborts checks a Faultable shard error aborts the
// streamed replay and unblocks the producer mid-run.
func TestStreamConsumerFaultAborts(t *testing.T) {
	s := NewStream(StreamConfig{ChunkRecords: 16, RingDepth: 2})
	prodDone := streamRecords(s, 100_000)
	bad := &faultingConsumer{failAt: 50}
	good := &collect{}
	_, _, err := s.ReplayShards(context.Background(), bad, good)
	if err == nil || err.Error() != "injected consumer failure" {
		t.Fatalf("err = %v, want the injected consumer failure", err)
	}
	if bad.finished || good.total != 0 {
		t.Fatal("Finish must not be delivered on an aborted streamed replay")
	}
	select {
	case <-prodDone:
	case <-time.After(10 * time.Second):
		t.Fatal("producer still blocked after the replay aborted")
	}
	if uint64(len(good.recs)) == 100_000 {
		t.Fatal("healthy shard consumed the entire stream despite the abort")
	}
}

// TestStreamContextCancelUnblocksProducer checks cancelling the consumer
// context aborts the stream so the producing goroutine can finish.
func TestStreamContextCancelUnblocksProducer(t *testing.T) {
	s := NewStream(StreamConfig{ChunkRecords: 16, RingDepth: 2})
	prodDone := streamRecords(s, 100_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := &collect{}
	_, _, err := s.ReplayShards(ctx, cc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cc.total != 0 {
		t.Fatal("Finish must not be delivered on a cancelled streamed replay")
	}
	select {
	case <-prodDone:
	case <-time.After(10 * time.Second):
		t.Fatal("producer still blocked after the cancelled replay")
	}
}

// TestStreamEmptyRunErrors checks an empty stream reports the same
// io.ErrUnexpectedEOF as replaying an empty capture.
func TestStreamEmptyRunErrors(t *testing.T) {
	s := NewStream(StreamConfig{})
	s.Finish(0)
	_, _, err := s.ReplayShards(context.Background(), &collect{})
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestCaptureOnCycleAfterFinishSticky is the regression test for the sealed
// capture bug: records arriving after Finish previously appended to the
// encoded buffer, silently corrupting the trace.
func TestCaptureOnCycleAfterFinishSticky(t *testing.T) {
	c := NewCapture(0)
	defer c.Close()
	captureRecords(t, c, 10)
	wantBytes := c.Bytes()

	r := sampleRecord(10)
	c.OnCycle(&r)
	if err := c.Err(); err == nil {
		t.Fatal("OnCycle after Finish must set a sticky error")
	}
	if c.Bytes() != wantBytes || c.Records() != 10 {
		t.Fatal("late record mutated the sealed capture")
	}
	if _, _, err := c.Replay(&collect{}); err == nil {
		t.Fatal("replaying a poisoned capture must fail")
	}
}

// TestCaptureOnCycleAfterCloseSticky checks Close seals the capture the same
// way Finish does.
func TestCaptureOnCycleAfterCloseSticky(t *testing.T) {
	c := NewCapture(0)
	captureRecords(t, c, 10)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	r := sampleRecord(10)
	c.OnCycle(&r)
	if err := c.Err(); err == nil {
		t.Fatal("OnCycle after Close must set a sticky error")
	}
}

// TestAdoptedCaptureRejectsLateRecords pins the adopted-capture corruption
// scenario from the issue: a NewCaptureFromEncoded capture wraps the
// caller's persisted bytes, so a stray OnCycle used to append garbage into
// them.
func TestAdoptedCaptureRejectsLateRecords(t *testing.T) {
	src := NewCapture(0)
	defer src.Close()
	captureRecords(t, src, 25)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	persisted := append([]byte(nil), buf.Bytes()...)

	adopted, err := NewCaptureFromEncoded(buf.Bytes(), src.Records(), src.Cycles())
	if err != nil {
		t.Fatal(err)
	}
	r := sampleRecord(25)
	adopted.OnCycle(&r)
	if err := adopted.Err(); err == nil {
		t.Fatal("OnCycle on an adopted capture must set a sticky error")
	}
	if !bytes.Equal(buf.Bytes(), persisted) {
		t.Fatal("late record mutated the adopted encoded bytes")
	}
}

// TestNormalizeRecordMatchesCodec pins normalizeRecord to the codec: for
// randomized records — including deliberately stale payloads behind cleared
// guard flags, exactly what the producing core's reused record carries —
// normalization must equal an appendRecord→decodeRecord round trip.
func TestNormalizeRecordMatchesCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randRecord := func(cycle uint64) Record {
		var r Record
		r.Cycle = cycle
		r.Core = uint32(rng.Intn(4))
		r.NumBanks = rng.Intn(MaxBanks + 1)
		r.HeadBank = uint8(rng.Intn(MaxBanks))
		r.CommitCount = uint8(rng.Intn(5))
		r.ROBEmpty = rng.Intn(2) == 0
		for i := 0; i < r.NumBanks; i++ {
			b := &r.Banks[i]
			b.Valid = rng.Intn(2) == 0
			b.Committing = rng.Intn(2) == 0
			b.Mispredicted = rng.Intn(2) == 0
			b.Flush = rng.Intn(2) == 0
			b.Exception = rng.Intn(2) == 0
			// Payloads are set whether or not Valid is — an invalid
			// bank's payload is stale garbage the codec must drop.
			b.PC = rng.Uint64() >> rng.Intn(40)
			b.FID = rng.Uint64() >> rng.Intn(40)
			b.InstIndex = int32(rng.Intn(1 << 20))
		}
		r.ExceptionRaised = rng.Intn(4) == 0
		r.ExceptionPC = rng.Uint64() >> 20
		r.ExceptionFID = rng.Uint64() >> 20
		r.ExceptionInstIndex = int32(rng.Intn(1 << 20))
		r.DispatchValid = rng.Intn(2) == 0
		r.DispatchPC = rng.Uint64() >> 20
		r.DispatchFID = rng.Uint64() >> 20
		r.DispatchInstIndex = int32(rng.Intn(1 << 20))
		r.AnyInFlight = rng.Intn(2) == 0
		r.YoungestFID = rng.Uint64() >> 20
		return r
	}
	// Pin against the v3 codec: it round-trips every field normalizeRecord
	// copies, including Core, which the v2 layout does not carry.
	encSt := codecState{v3: true}
	decSt := codecState{v3: true}
	var rt Record
	for i := 0; i < 5000; i++ {
		r := randRecord(uint64(i))
		buf := appendRecord(nil, &r, &encSt)
		if _, err := decodeRecord(buf, 0, &decSt, &rt); err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		var norm Record
		// Reuse norm across iterations would also work; a fresh zero value
		// is the stricter target since decodeRecord zeroes what it skips.
		normalizeRecord(&norm, &r)
		if norm != rt {
			t.Fatalf("record %d:\nnormalize: %+v\nroundtrip: %+v\ninput: %+v", i, norm, rt, r)
		}
	}
	// Normalizing over a dirty destination must scrub every stale field.
	dirty := randRecord(9999)
	for i := range dirty.Banks {
		dirty.Banks[i] = BankEntry{Valid: true, Committing: true, PC: ^uint64(0), FID: ^uint64(0), InstIndex: -1}
	}
	src := randRecord(10000)
	buf := appendRecord(nil, &src, &encSt)
	if _, err := decodeRecord(buf, 0, &decSt, &rt); err != nil {
		t.Fatal(err)
	}
	normalizeRecord(&dirty, &src)
	if dirty != rt {
		t.Fatalf("dirty destination not scrubbed:\nnormalize: %+v\nroundtrip: %+v", dirty, rt)
	}
}
