package trace

import (
	"context"
	"errors"
	"io"
	"sync"
)

// streamRingDepth is the bounded ring's chunk capacity: the producing core
// can run at most streamRingDepth chunks ahead of the consumer before it
// blocks. Together with the per-shard channel depth this caps a streaming
// run's live chunk window — and therefore its peak memory — independently of
// trace length.
const streamRingDepth = 4

// errStreamAborted reports a producer stopped by the consumer side (a shard
// fault or cancelled replay), with no more specific root cause recorded.
var errStreamAborted = errors.New("trace: stream aborted by consumer")

// PilotStats summarises the pilot prefix of a streamed run: the cycles and
// committed instructions observed before the pilot boundary. When the run
// finished before the pilot window closed, the stats cover the whole run and
// Exact is set — calibration from them is then identical to the two-pass
// CalibrateInterval path.
type PilotStats struct {
	// Cycles is the pilot window's length in cycles (the whole run when
	// Exact).
	Cycles uint64
	// Committed is the number of instructions committed inside the window.
	Committed uint64
	// Exact reports the run ended before the pilot window did, making
	// Cycles/Committed exact run totals rather than a prefix sample.
	Exact bool
}

// StreamConfig parameterises a Stream.
type StreamConfig struct {
	// ChunkRecords bounds the records per chunk
	// (0 = DefaultChunkRecords).
	ChunkRecords int
	// RingDepth bounds the chunks buffered between producer and consumer
	// (0 = streamRingDepth).
	RingDepth int
	// PilotCycles is the pilot window length in cycles: chunks encoded
	// before the boundary are buffered (not ring-bounded) so the consumer
	// can replay them once calibration has run, and PilotStats are
	// published when the boundary is crossed. Zero disables the pilot
	// stage entirely — every chunk flows through the bounded ring and the
	// consumer may start immediately.
	PilotCycles uint64
}

// Stream is the fused capture→replay pipe: the producer side is a Consumer
// the cycle-level core feeds directly, batching records into chunks pushed
// through a bounded ring; the consumer side broadcasts each chunk to replay
// shards while the simulation is still running. Every profiler observes the
// bit-identical record stream a capture-then-replay evaluation would have
// produced, but the whole trace is never resident: peak memory is the pilot
// buffer plus the ring window, independent of run length.
//
// Two chunk representations are used. Pilot-window chunks are TIPTRC2-
// encoded (same codec as Capture, minus the magic header): the pilot buffer
// is unbounded in chunk count, so compact encoding keeps it to a few bytes
// per cycle. Past the pilot boundary the ring is backpressured, so chunks
// carry decoded records directly — normalizeRecord launders the producer's
// stale flag-guarded fields exactly as an encode→decode round trip would,
// at a fraction of the cost, and the varint codec drops off the fused hot
// path entirely.
//
// Lifecycle: exactly one producer goroutine calls OnCycle repeatedly and
// then exactly one of Finish (successful run) or Fail (aborted run); one
// consumer goroutine calls Pilot and then ReplayShards. The consumer may
// stop the producer early via Abort (ReplayShards does this on any error).
type Stream struct {
	chunkRecords int
	pilotCycles  uint64

	ring      chan *Chunk
	abortCh   chan struct{}
	abortOnce sync.Once

	// Producer-owned state (no locking: single producer goroutine).
	st             codecState
	buf            []byte
	bufRecs        int
	cur            *Chunk
	committed      uint64
	pilotBuffering bool
	aborted        bool

	// pilotChunks and pilot are written by the producer before pilotReady
	// closes and read by the consumer only after; the close is the
	// happens-before edge.
	pilotChunks []encChunk
	pilot       PilotStats
	pilotReady  chan struct{}

	// failErr is written before ring closes and read after it drains.
	failErr error

	bufPool   sync.Pool
	chunkPool *sync.Pool
}

// encChunk is one encoded run of consecutive records in the pilot buffer.
type encChunk struct {
	data    []byte
	records int
}

// NewStream returns an empty stream pipe.
func NewStream(cfg StreamConfig) *Stream {
	if cfg.ChunkRecords <= 0 {
		cfg.ChunkRecords = DefaultChunkRecords
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = streamRingDepth
	}
	s := &Stream{
		chunkRecords:   cfg.ChunkRecords,
		pilotCycles:    cfg.PilotCycles,
		ring:           make(chan *Chunk, cfg.RingDepth),
		abortCh:        make(chan struct{}),
		pilotReady:     make(chan struct{}),
		pilotBuffering: cfg.PilotCycles > 0,
		chunkPool:      newChunkPool(cfg.ChunkRecords),
	}
	// Encoded pilot chunks recycle through the pool once decoded, so the
	// pilot buffer's byte slices are reused across runs sharing the stream's
	// pools. A chunk's encoded size is bounded in practice by a few dozen
	// bytes per record; the initial capacity only seeds the first lap.
	s.bufPool.New = func() any {
		return make([]byte, 0, cfg.ChunkRecords*32+maxRecordBytes)
	}
	if cfg.PilotCycles == 0 {
		close(s.pilotReady)
	}
	return s
}

// OnCycle implements Consumer: batch the record into the current chunk,
// flushing full chunks into the ring (or, before the pilot boundary, the
// pilot buffer). After an Abort it is a no-op, so a cancelled consumer never
// leaves the producing core blocked on a full ring.
func (s *Stream) OnCycle(r *Record) {
	if s.aborted {
		return
	}
	s.committed += uint64(r.CommitCount)
	if s.pilotBuffering {
		if s.buf == nil {
			s.buf = s.bufPool.Get().([]byte)[:0]
		}
		s.buf = appendRecord(s.buf, r, &s.st)
		s.bufRecs++
		if r.Cycle+1 >= s.pilotCycles {
			// Pilot boundary: flush the partial chunk into the pilot
			// buffer and publish the pilot stats. Consumers blocked in
			// Pilot wake here, typically long before the run ends.
			s.flushPilot()
			s.pilot = PilotStats{Cycles: r.Cycle + 1, Committed: s.committed}
			s.pilotBuffering = false
			close(s.pilotReady)
		} else if s.bufRecs >= s.chunkRecords {
			s.flushPilot()
		}
		return
	}
	if s.cur == nil {
		s.cur = s.chunkPool.Get().(*Chunk)
		s.cur.Records = s.cur.Records[:0]
	}
	recs := s.cur.Records[:len(s.cur.Records)+1]
	normalizeRecord(&recs[len(recs)-1], r)
	s.cur.Records = recs
	if len(recs) >= s.chunkRecords {
		s.flushDirect()
	}
}

// flushPilot appends the pending encoded chunk to the pilot buffer.
func (s *Stream) flushPilot() {
	if s.bufRecs == 0 {
		return
	}
	s.pilotChunks = append(s.pilotChunks, encChunk{data: s.buf, records: s.bufRecs})
	s.buf = nil
	s.bufRecs = 0
}

// flushDirect hands the pending record chunk to the ring. The send blocks
// when the consumer lags (backpressure on the simulating core) and aborts
// cleanly when the consumer gives up.
func (s *Stream) flushDirect() {
	if s.cur == nil || len(s.cur.Records) == 0 {
		return
	}
	ck := s.cur
	s.cur = nil
	select {
	case s.ring <- ck:
	case <-s.abortCh:
		s.aborted = true
		ck.Records = ck.Records[:0]
		s.chunkPool.Put(ck)
	}
}

// flushTail flushes whichever chunk representation is pending.
func (s *Stream) flushTail() {
	if s.pilotBuffering {
		s.flushPilot()
		return
	}
	s.flushDirect()
}

// Finish implements Consumer: flush the tail chunk and close the ring. A run
// shorter than the pilot window publishes exact whole-run pilot stats here.
func (s *Stream) Finish(totalCycles uint64) {
	s.flushTail()
	s.closeProducer(nil, totalCycles)
}

// Fail ends the producer side after a run error (core fault, cancellation):
// the consumer drains what was produced and then observes err instead of a
// clean end of stream. Exactly one of Finish or Fail must be called.
func (s *Stream) Fail(err error) {
	if err == nil {
		err = errStreamAborted
	}
	s.closeProducer(err, 0)
}

func (s *Stream) closeProducer(err error, totalCycles uint64) {
	s.failErr = err
	if s.pilotBuffering {
		s.pilot = PilotStats{Cycles: totalCycles, Committed: s.committed, Exact: true}
		s.pilotBuffering = false
		close(s.pilotReady)
	}
	close(s.ring)
}

// Abort stops the producer from the consumer side: pending and future ring
// sends return immediately and OnCycle becomes a no-op. The simulation
// driving the producer should also be cancelled; Abort only guarantees the
// producer can never block again.
func (s *Stream) Abort() {
	s.abortOnce.Do(func() { close(s.abortCh) })
}

// Pilot blocks until the pilot boundary (or the end of a run shorter than
// the pilot window) and returns the pilot stats. If the producer failed
// before producing them, the producer's error is returned.
func (s *Stream) Pilot(ctx context.Context) (PilotStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.pilotReady:
		if s.pilot.Exact && s.failErr != nil {
			return PilotStats{}, s.failErr
		}
		return s.pilot, nil
	case <-ctx.Done():
		return PilotStats{}, ctx.Err()
	}
}

// streamIter serves the stream's chunks exactly once: the pilot buffer is
// decoded first, then live ring chunks (already record-form) pass straight
// through. It implements the chunk-source contract shardBroadcast drives.
type streamIter struct {
	s        *Stream
	ctx      context.Context
	pilotIdx int

	st codecState

	records    uint64
	lastCommit uint64
	done       bool
}

// Next returns the next chunk with its reference count set to refs. It
// returns io.EOF after the producer Finishes and everything is drained, the
// producer's error after a Fail, and ctx's error if the wait is cancelled.
func (it *streamIter) Next(refs int32) (*Chunk, error) {
	if it.done {
		return nil, io.EOF
	}
	if it.pilotIdx < len(it.s.pilotChunks) {
		ec := it.s.pilotChunks[it.pilotIdx]
		it.pilotIdx++
		ck := it.s.chunkPool.Get().(*Chunk)
		recs := ck.Records[:0]
		pos := 0
		var err error
		for i := 0; i < ec.records; i++ {
			recs = recs[:len(recs)+1]
			if pos, err = decodeRecord(ec.data, pos, &it.st, &recs[len(recs)-1]); err != nil {
				ck.Records = ck.Records[:0]
				it.s.chunkPool.Put(ck)
				it.done = true
				return nil, err
			}
		}
		ck.Records = recs
		it.s.bufPool.Put(ec.data[:0])
		return it.deliver(ck, refs), nil
	}
	select {
	case ck, ok := <-it.s.ring:
		if !ok {
			it.done = true
			if err := it.s.failErr; err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		return it.deliver(ck, refs), nil
	case <-it.ctx.Done():
		it.done = true
		return nil, it.ctx.Err()
	}
}

// deliver accounts the chunk's records and arms its reference count. Cycles
// are monotonic, so the youngest committing record in the chunk (if any)
// advances lastCommit.
func (it *streamIter) deliver(ck *Chunk, refs int32) *Chunk {
	it.records += uint64(len(ck.Records))
	for i := len(ck.Records) - 1; i >= 0; i-- {
		if ck.Records[i].CommitCount > 0 {
			it.lastCommit = ck.Records[i].Cycle
			break
		}
	}
	ck.refs.Store(refs)
	return ck
}

// newChunkPool builds the decoded-chunk pool shared by a replay's decoder
// and its shards; chunks recycle once every shard Releases them.
func newChunkPool(chunkRecords int) *sync.Pool {
	pool := &sync.Pool{}
	pool.New = func() any {
		return &Chunk{Records: make([]Record, 0, chunkRecords), pool: pool}
	}
	return pool
}
