package trace

import (
	"errors"
	"io"
)

// Replay streams a stored trace through consumers, exactly as the live core
// would have: one OnCycle per record, then Finish with the cycle count of
// the last committing record plus one. This is the workflow the paper uses
// to evaluate many profiler configurations from one simulation (§4) —
// capture the commit-stage trace once, then model profilers out-of-band.
func Replay(r *Reader, consumers ...Consumer) (cycles uint64, records uint64, err error) {
	var rec Record
	lastCommit := uint64(0)
	any := false
	for {
		if err := r.Next(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return 0, records, err
		}
		records++
		any = true
		for _, c := range consumers {
			c.OnCycle(&rec)
		}
		if rec.CommitCount > 0 {
			lastCommit = rec.Cycle
		}
	}
	if !any {
		return 0, 0, io.ErrUnexpectedEOF
	}
	cycles = lastCommit + 1
	for _, c := range consumers {
		c.Finish(cycles)
	}
	return cycles, records, nil
}
