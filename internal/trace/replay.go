package trace

import (
	"errors"
	"fmt"
	"io"
)

// errReplayUnfinished rejects replay of a capture that never saw Finish.
var errReplayUnfinished = errors.New("trace: replay of unfinished capture")

// errCaptureFailed wraps the capture-side error that poisoned a capture.
func errCaptureFailed(err error) error {
	return fmt.Errorf("trace: capture failed: %w", err)
}

// badMagic reports a stream that starts with neither the TIPTRC2 nor the
// TIPTRC3 header.
func badMagic(prefix []byte) error {
	return fmt.Errorf("trace: bad magic %q", prefix)
}

// Replay streams a stored trace through consumers, exactly as the live core
// would have: one OnCycle per record, then Finish with the cycle count of
// the last committing record plus one. This is the workflow the paper uses
// to evaluate many profiler configurations from one simulation (§4) —
// capture the commit-stage trace once, then model profilers out-of-band.
func Replay(r *Reader, consumers ...Consumer) (cycles uint64, records uint64, err error) {
	var rec Record
	lastCommit := uint64(0)
	any := false
	for {
		if err := r.Next(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return 0, records, err
		}
		records++
		any = true
		for _, c := range consumers {
			c.OnCycle(&rec)
		}
		if rec.CommitCount > 0 {
			lastCommit = rec.Cycle
		}
	}
	if !any {
		return 0, 0, io.ErrUnexpectedEOF
	}
	cycles = lastCommit + 1
	for _, c := range consumers {
		c.Finish(cycles)
	}
	return cycles, records, nil
}

// ReplayBytes is Replay over an in-memory encoded trace. It decodes straight
// off the slice — no reader indirection, no per-byte interface calls — which
// is what makes replaying a capture markedly cheaper than re-simulating.
func ReplayBytes(data []byte, consumers ...Consumer) (cycles uint64, records uint64, err error) {
	if len(data) == 0 {
		return 0, 0, io.ErrUnexpectedEOF
	}
	v3, err := sniffMagic(data)
	if err != nil {
		return 0, 0, err
	}
	pos := len(formatMagic)
	var rec Record
	st := codecState{v3: v3}
	lastCommit := uint64(0)
	any := false
	for pos < len(data) {
		pos, err = decodeRecord(data, pos, &st, &rec)
		if err != nil {
			return 0, records, err
		}
		records++
		any = true
		for _, c := range consumers {
			c.OnCycle(&rec)
		}
		if rec.CommitCount > 0 {
			lastCommit = rec.Cycle
		}
	}
	if !any {
		return 0, 0, io.ErrUnexpectedEOF
	}
	cycles = lastCommit + 1
	for _, c := range consumers {
		c.Finish(cycles)
	}
	return cycles, records, nil
}
