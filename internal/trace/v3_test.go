package trace

import (
	"bytes"
	"io"
	"testing"
)

// interleavedTrace builds a lockstep-style multi-core record sequence: per
// cycle, one record per live core in core order, each a perturbed
// sampleRecord. It returns the plaintext records; cores drop out at
// different cycles like a real multi-programmed run.
func interleavedTrace(cores int, cyclesPerCore []uint64) []Record {
	var recs []Record
	maxCycles := uint64(0)
	for _, c := range cyclesPerCore {
		if c > maxCycles {
			maxCycles = c
		}
	}
	for cycle := uint64(0); cycle < maxCycles; cycle++ {
		for core := 0; core < cores; core++ {
			if cycle >= cyclesPerCore[core] {
				continue
			}
			r := sampleRecord(cycle)
			r.Core = uint32(core)
			// Distinct per-core PCs so a demux mix-up is visible in the
			// payloads, not just the core IDs.
			r.Banks[1].PC = 0x10000 + uint64(core)<<20 + cycle*4
			r.Banks[2].PC = r.Banks[1].PC + 4
			recs = append(recs, r)
		}
	}
	return recs
}

func encodeV3(recs []Record) []byte {
	var buf bytes.Buffer
	w := NewWriterV3(&buf)
	for i := range recs {
		w.OnCycle(&recs[i])
	}
	w.Finish(0)
	return buf.Bytes()
}

// TestV3RoundTripCarriesCore checks all three decode paths reproduce an
// interleaved two-core stream exactly, core IDs included.
func TestV3RoundTripCarriesCore(t *testing.T) {
	recs := interleavedTrace(2, []uint64{50, 80})
	enc := encodeV3(recs)
	if string(enc[:len(formatMagicV3)]) != formatMagicV3 {
		t.Fatalf("v3 writer emitted magic %q", enc[:len(formatMagicV3)])
	}

	var viaBytes collect
	if _, _, err := ReplayBytes(enc, &viaBytes); err != nil {
		t.Fatal(err)
	}
	var viaReader collect
	if _, _, err := Replay(NewReader(bytes.NewReader(enc)), &viaReader); err != nil {
		t.Fatal(err)
	}
	it, err := NewChunkIterBytes(enc, 7)
	if err != nil {
		t.Fatal(err)
	}
	var viaChunks []Record
	for {
		ck, err := it.Next(1)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		viaChunks = append(viaChunks, ck.Records...)
		ck.Release()
	}

	for name, got := range map[string][]Record{
		"bytes": viaBytes.recs, "reader": viaReader.recs, "chunks": viaChunks,
	} {
		if len(got) != len(recs) {
			t.Fatalf("%s: decoded %d records, want %d", name, len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("%s: record %d differs:\n got %+v\nwant %+v", name, i, got[i], recs[i])
			}
		}
	}
}

// TestV2ReencodedAsV3DecodesIdentically is the v2↔v3 differential: any v2
// stream re-encoded as v3 (core 0 throughout) must decode to the identical
// record sequence.
func TestV2ReencodedAsV3DecodesIdentically(t *testing.T) {
	v2, want := syntheticTrace(60, 31)

	var decoded collect
	if _, _, err := ReplayBytes(v2, &decoded); err != nil {
		t.Fatal(err)
	}
	v3 := encodeV3(decoded.recs)

	var back collect
	if _, _, err := ReplayBytes(v3, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(back.recs), len(want))
	}
	for i := range want {
		if back.recs[i] != want[i] {
			t.Fatalf("record %d differs after v2→v3 re-encode:\n got %+v\nwant %+v", i, back.recs[i], want[i])
		}
	}
}

// TestV3SingleCoreSizeBound pins the format overhead claim: a single-core
// stream encoded as v3 costs exactly one extra byte per record (the zero
// core delta).
func TestV3SingleCoreSizeBound(t *testing.T) {
	v2, recs := syntheticTrace(200, 7)
	v3 := encodeV3(recs)
	if len(v3) != len(v2)+len(recs) {
		t.Fatalf("v3 size %d, want v2 size %d + %d records", len(v3), len(v2), len(recs))
	}
}

// TestCaptureV3RoundTrip runs an interleaved stream through NewCaptureV3,
// replays it, and re-adopts the persisted bytes via NewCaptureFromEncoded —
// the tipd spill/restore path — checking core IDs survive both.
func TestCaptureV3RoundTrip(t *testing.T) {
	recs := interleavedTrace(3, []uint64{30, 45, 20})
	c := NewCaptureV3(0)
	defer c.Close()
	for i := range recs {
		c.OnCycle(&recs[i])
	}
	c.Finish(45)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	var got collect
	if _, _, err := c.Replay(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.recs) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got.recs), len(recs))
	}
	for i := range recs {
		if got.recs[i] != recs[i] {
			t.Fatalf("record %d differs through capture: got %+v want %+v", i, got.recs[i], recs[i])
		}
	}

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	adopted, err := NewCaptureFromEncoded(buf.Bytes(), c.Records(), c.Cycles())
	if err != nil {
		t.Fatal(err)
	}
	var re collect
	if _, _, err := adopted.Replay(&re); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if re.recs[i] != recs[i] {
			t.Fatalf("record %d differs through adopted capture", i)
		}
	}
}

// TestCoreFilterDemux wraps per-core collectors in CoreFilter over one
// interleaved replay: each inner consumer must observe exactly its core's
// records and a Finish total equal to its own last commit cycle plus one,
// not the interleaved stream's global total.
func TestCoreFilterDemux(t *testing.T) {
	cyc := []uint64{40, 25}
	recs := interleavedTrace(2, cyc)
	enc := encodeV3(recs)

	var inner [2]collect
	if _, _, err := ReplayBytes(enc, &CoreFilter{Core: 0, Inner: &inner[0]}, &CoreFilter{Core: 1, Inner: &inner[1]}); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 2; core++ {
		got := inner[core].recs
		if uint64(len(got)) != cyc[core] {
			t.Fatalf("core %d saw %d records, want %d", core, len(got), cyc[core])
		}
		for i, r := range got {
			if r.Core != uint32(core) {
				t.Fatalf("core %d record %d has Core=%d", core, i, r.Core)
			}
			if r.Cycle != uint64(i) {
				t.Fatalf("core %d record %d has Cycle=%d, want contiguous from 0", core, i, r.Cycle)
			}
		}
		// sampleRecord commits every cycle, so the per-core total is the
		// core's own cycle count.
		if inner[core].total != cyc[core] {
			t.Fatalf("core %d Finish total %d, want %d", core, inner[core].total, cyc[core])
		}
	}
}
