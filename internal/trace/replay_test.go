package trace

import (
	"bytes"
	"io"
	"testing"
)

func TestReplayEmptyFileErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Finish(0)
	if _, _, err := Replay(NewReader(&buf), &CountingConsumer{}); err == nil {
		t.Fatal("empty trace replayed without error")
	}
}

func TestReplayDeliversAllRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := uint64(0); i < 10; i++ {
		r := sampleRecord(i)
		if i == 9 {
			r.Banks[1].Committing = true
			r.CommitCount = 1
		}
		w.OnCycle(&r)
	}
	w.Finish(10)
	cc := &CountingConsumer{}
	cycles, records, err := Replay(NewReader(&buf), cc)
	if err != nil {
		t.Fatal(err)
	}
	if records != 10 || cc.Cycles != 10 {
		t.Fatalf("replayed %d records, consumer saw %d", records, cc.Cycles)
	}
	if cycles != 10 { // last commit at cycle 9
		t.Fatalf("cycles = %d, want 10", cycles)
	}
	if !cc.Finished || cc.Total != 10 {
		t.Fatalf("finish not propagated: %+v", cc)
	}
}

func TestReplayTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := uint64(0); i < 5; i++ {
		r := sampleRecord(i)
		w.OnCycle(&r)
	}
	w.Finish(5)
	data := buf.Bytes()
	trunc := data[:len(data)-4]
	_, records, err := Replay(NewReader(bytes.NewReader(trunc)), &CountingConsumer{})
	if err == nil || err == io.EOF {
		t.Fatalf("truncated trace replayed cleanly after %d records", records)
	}
}
