package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPeriodicSequence(t *testing.T) {
	p := NewPeriodic(100)
	want := []uint64{99, 199, 299, 399}
	cycle := uint64(0)
	var got []uint64
	for i := 0; i < 4; i++ {
		cycle = p.Next(cycle)
		got = append(got, cycle)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestPeriodicNextFromZero(t *testing.T) {
	p := NewPeriodic(250)
	if first := p.Next(0); first != 249 {
		t.Fatalf("first sample = %d, want 249", first)
	}
	// Next from exactly a sample cycle advances a full period.
	if s := p.Next(249); s != 499 {
		t.Fatalf("Next(249) = %d, want 499", s)
	}
	// Next from mid-interval lands at the interval end.
	if s := p.Next(300); s != 499 {
		t.Fatalf("Next(300) = %d, want 499", s)
	}
}

func TestPeriodicStrictlyIncreasing(t *testing.T) {
	p := NewPeriodic(7)
	cycle := uint64(0)
	last := uint64(0)
	for i := 0; i < 100; i++ {
		cycle = p.Next(cycle)
		if i > 0 && cycle <= last {
			t.Fatalf("non-increasing: %d after %d", cycle, last)
		}
		last = cycle
	}
}

func TestRandomWithinWindows(t *testing.T) {
	r := NewRandom(100, 42)
	cycle := uint64(0)
	for w := uint64(0); w < 50; w++ {
		cycle = r.Next(cycle)
		if cycle/100 < w {
			t.Fatalf("sample %d fell before window %d", cycle, w)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := NewRandom(100, 7)
	b := NewRandom(100, 7)
	ca, cb := uint64(0), uint64(0)
	for i := 0; i < 100; i++ {
		ca, cb = a.Next(ca), b.Next(cb)
		if ca != cb {
			t.Fatalf("same-seed schedules diverged at %d: %d vs %d", i, ca, cb)
		}
	}
}

func TestRandomDifferentSeedsDiffer(t *testing.T) {
	a := NewRandom(1000, 1)
	b := NewRandom(1000, 2)
	ca, cb := uint64(0), uint64(0)
	same := 0
	for i := 0; i < 100; i++ {
		ca, cb = a.Next(ca), b.Next(cb)
		if ca == cb {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("%d/100 identical samples across seeds", same)
	}
}

func TestRandomAverageRateMatchesPeriod(t *testing.T) {
	r := NewRandom(100, 3)
	cycle := uint64(0)
	n := 0
	for cycle < 100_000 {
		cycle = r.Next(cycle)
		n++
	}
	if n < 950 || n > 1050 {
		t.Fatalf("random schedule produced %d samples in 1000 windows", n)
	}
}

func TestFrequencyToInterval(t *testing.T) {
	if iv := FrequencyToInterval(3_200_000_000, 4000); iv != 800_000 {
		t.Fatalf("4 kHz at 3.2 GHz = %d cycles, want 800000", iv)
	}
	if iv := FrequencyToInterval(100, 1000); iv != 1 {
		t.Fatalf("oversampled interval = %d, want clamp to 1", iv)
	}
}

func TestZeroIntervalPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPeriodic(0) },
		func() { NewRandom(0, 1) },
		func() { FrequencyToInterval(100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("zero interval did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPeriodicNextSaturatesNearMax(t *testing.T) {
	p := NewPeriodic(100)
	if got := p.Next(math.MaxUint64); got != math.MaxUint64 {
		t.Fatalf("Next(MaxUint64) = %d, want saturation at MaxUint64", got)
	}
	// Near the top of the cycle range the next schedule point would
	// overflow; Next must saturate instead of wrapping around to a tiny
	// cycle number (which would make a run near the horizon sample every
	// single cycle).
	for _, c := range []uint64{
		math.MaxUint64 - 1,
		math.MaxUint64 - 99,
		math.MaxUint64 - 100,
		math.MaxUint64/100*100 - 1,
	} {
		if got := p.Next(c); got <= c {
			t.Fatalf("Next(%d) = %d: wrapped or stalled", c, got)
		}
	}
	// Away from the boundary the schedule is the usual one.
	if got := p.Next(12345); got != 12399 {
		t.Fatalf("Next(12345) = %d, want 12399", got)
	}
}

// Property: for any interval, Next always returns a strictly later cycle.
func TestQuickNextStrictlyLater(t *testing.T) {
	f := func(interval uint32, start uint64) bool {
		iv := uint64(interval%10_000) + 1
		p := NewPeriodic(iv)
		r := NewRandom(iv, start)
		s := start % (1 << 40)
		return p.Next(s) > s && r.Next(s) > s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: periodic samples are exactly one per window.
func TestQuickPeriodicOnePerWindow(t *testing.T) {
	f := func(interval uint16) bool {
		iv := uint64(interval%1000) + 2
		p := NewPeriodic(iv)
		cycle := uint64(0)
		for w := uint64(0); w < 20; w++ {
			cycle = p.Next(cycle)
			if cycle/iv != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
