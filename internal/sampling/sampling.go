// Package sampling provides the sample-trigger schedules the profilers use:
// periodic sampling (the paper's default, hardware-friendly) and random
// sampling within each interval (the §5.2 sensitivity alternative that
// avoids Shannon-Nyquist aliasing with periodic program behaviour).
package sampling

import (
	"math"

	"github.com/tipprof/tip/internal/xrand"
)

// Schedule produces a deterministic, strictly increasing sequence of sample
// cycles. Two schedules constructed with identical parameters produce the
// same cycles, which is how all profilers sample the exact same cycle.
type Schedule interface {
	// Next returns the first sample cycle strictly after cycle.
	Next(cycle uint64) uint64
	// Period returns the nominal sampling period in cycles.
	Period() uint64
}

// Periodic samples every Interval cycles: Interval-1, 2*Interval-1, ...
// (sampling at the end of each interval, so the first sample has a full
// interval behind it).
type Periodic struct {
	Interval uint64
}

// NewPeriodic returns a periodic schedule; interval must be positive.
func NewPeriodic(interval uint64) *Periodic {
	if interval == 0 {
		panic("sampling: zero interval")
	}
	return &Periodic{Interval: interval}
}

// Next implements Schedule. The sequence saturates at MaxUint64 instead of
// wrapping: for cycles within an interval of the top of the range, the
// naive (cycle+1+Interval) arithmetic would overflow and return a
// non-increasing sample cycle, breaking the Schedule contract.
func (p *Periodic) Next(cycle uint64) uint64 {
	if cycle == math.MaxUint64 {
		return math.MaxUint64
	}
	n := (cycle+1)/p.Interval + 1
	if n > math.MaxUint64/p.Interval {
		return math.MaxUint64
	}
	return n*p.Interval - 1
}

// Period implements Schedule.
func (p *Periodic) Period() uint64 { return p.Interval }

// Random picks one uniformly random cycle within each Interval-sized
// window. The sequence is deterministic given the seed.
type Random struct {
	Interval uint64
	rng      *xrand.Source
	window   uint64 // index of the window the pending sample belongs to
	pending  uint64 // sample cycle within the current window
}

// NewRandom returns a random-within-interval schedule.
func NewRandom(interval uint64, seed uint64) *Random {
	if interval == 0 {
		panic("sampling: zero interval")
	}
	r := &Random{Interval: interval, rng: xrand.New(seed)}
	r.window = 0
	r.pending = r.draw(0)
	return r
}

func (r *Random) draw(window uint64) uint64 {
	return window*r.Interval + r.rng.Uint64n(r.Interval)
}

// Next implements Schedule.
func (r *Random) Next(cycle uint64) uint64 {
	for r.pending <= cycle {
		// Jump straight to the window containing cycle when the
		// pending sample is far behind (keeps Next O(1) amortized).
		if w := cycle / r.Interval; w > r.window {
			r.window = w
		} else {
			r.window++
		}
		r.pending = r.draw(r.window)
	}
	return r.pending
}

// Period implements Schedule.
func (r *Random) Period() uint64 { return r.Interval }

// NextPrime returns the smallest prime >= n (n >= 2). Periodic sampling of
// a perfectly periodic program can alias (Shannon-Nyquist, §5.2): if the
// interval shares a factor with the loop period, samples lock onto the same
// instructions forever. Real SPEC executions carry enough micro-jitter to
// avoid exact lock-in; our synthetic programs are cycle-deterministic, so
// the evaluation primes the interval instead — a one-line substitute for
// the jitter real systems get for free (see DESIGN.md).
func NextPrime(n uint64) uint64 {
	if n < 2 {
		return 2
	}
	for {
		if isPrime(n) {
			return n
		}
		n++
	}
}

func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := uint64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// FrequencyToInterval converts a sampling frequency to a period in cycles
// at the given clock. This is how the paper's 4 kHz at 3.2 GHz becomes an
// 800 000-cycle interval; scaled-down runs scale the clock.
func FrequencyToInterval(clockHz, sampleHz uint64) uint64 {
	if sampleHz == 0 {
		panic("sampling: zero sample frequency")
	}
	iv := clockHz / sampleHz
	if iv == 0 {
		return 1
	}
	return iv
}
