package perfdata

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

func TestRecordSize(t *testing.T) {
	// The paper's §3.2 counts 88 B per TIP sample: 40 B metadata + six
	// 64-bit CSRs.
	if RecordBytes != 88 {
		t.Fatalf("record size = %d B, want 88", RecordBytes)
	}
}

func TestSampleRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Sample{
		{Core: 1, PID: 42, TID: 43, Time: 100, Cycle: 100,
			Flags: profiler.FlagStalled, ValidMask: 0b0100, OldestID: 2,
			Addrs: [AddrCSRs]uint64{0, 0, 0x10040, 0}},
		{Core: 1, PID: 42, TID: 43, Time: 300, Cycle: 300,
			ValidMask: 0b1111, OldestID: 1,
			Addrs: [AddrCSRs]uint64{0x10000, 0x10004, 0x10008, 0x1000c}},
	}
	for i := range in {
		w.Write(&in[i])
	}
	if w.Err() != nil || w.Count() != 2 {
		t.Fatalf("write: err=%v count=%d", w.Err(), w.Count())
	}
	// File size: magic + 2 records.
	if buf.Len() != len(Magic)+2*RecordBytes {
		t.Fatalf("file size %d", buf.Len())
	}

	r := NewReader(&buf)
	for i := range in {
		var got Sample
		if err := r.Next(&got); err != nil {
			t.Fatal(err)
		}
		if got != in[i] {
			t.Fatalf("sample %d mismatch:\n got %+v\nwant %+v", i, got, in[i])
		}
	}
	var extra Sample
	if err := r.Next(&extra); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(bytes.NewBufferString("NOTMAGIC" + string(make([]byte, 200))))
	var s Sample
	if err := r.Next(&s); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderTruncated(t *testing.T) {
	// Three complete records, then cut the file mid-way through the third:
	// the reader must fail with a typed *ErrTruncated naming record 2.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		s := Sample{Cycle: uint64(5 + i), ValidMask: 1}
		w.Write(&s)
	}
	data := buf.Bytes()[:buf.Len()-10]
	r := NewReader(bytes.NewReader(data))
	var got Sample
	for i := 0; i < 2; i++ {
		if err := r.Next(&got); err != nil {
			t.Fatalf("complete record %d: %v", i, err)
		}
	}
	err := r.Next(&got)
	if err == nil {
		t.Fatal("truncated record decoded")
	}
	var trunc *ErrTruncated
	if !errors.As(err, &trunc) {
		t.Fatalf("err = %v (%T), want *ErrTruncated", err, err)
	}
	if trunc.Record != 2 {
		t.Fatalf("truncated record index = %d, want 2", trunc.Record)
	}
	if r.Count() != 2 {
		t.Fatalf("reader count = %d, want 2", r.Count())
	}
	// Pre-existing callers matching the sentinel still work.
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatal("ErrTruncated does not unwrap to io.ErrUnexpectedEOF")
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	r := NewReader(bytes.NewBufferString(Magic[:4]))
	var s Sample
	var trunc *ErrTruncated
	if err := r.Next(&s); !errors.As(err, &trunc) || trunc.Record != 0 {
		t.Fatalf("partial header: err = %v, want *ErrTruncated{Record: 0}", err)
	}
}

// runWithCollectorAndSampled runs a workload with both the perfdata
// Collector and the analytical TIP model on the same trace.
func runWithCollectorAndSampled(t *testing.T, name string, interval uint64) (
	*bytes.Buffer, *profiler.Sampled, *program.Program) {
	t.Helper()
	w, err := workload.LoadScaled(name, 1, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	coll := NewCollector(pw, sampling.NewPeriodic(interval), 0, 1234, 1234)
	sampled := profiler.NewSampled(profiler.KindTIP, w.Prog, sampling.NewPeriodic(interval))
	sampled.EnableCategories(true)

	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 50_000_000
	core := cpu.New(cfg, w.Prog, w.Stream())
	for _, reg := range w.Prefault {
		core.MMU().PrefaultRange(reg.Base, reg.Size)
	}
	if _, err := core.Run(&trace.Tee{Consumers: []trace.Consumer{coll, sampled}}); err != nil {
		t.Fatal(err)
	}
	if pw.Err() != nil {
		t.Fatal(pw.Err())
	}
	return &buf, sampled, w.Prog
}

// TestPostprocessMatchesAnalyticalTIP: recording CSR snapshots to a file
// and post-processing them offline reproduces the in-band TIP profile.
func TestPostprocessMatchesAnalyticalTIP(t *testing.T) {
	buf, sampled, prog := runWithCollectorAndSampled(t, "imagick", 101)
	prof, cats, err := Postprocess(NewReader(buf), prog)
	if err != nil {
		t.Fatal(err)
	}
	if e := profile.DistributionError(prof.InstCycles, sampled.Profile.InstCycles); e > 1e-9 {
		t.Fatalf("post-processed profile differs from analytical TIP: TV=%v", e)
	}
	for c := 0; c < profile.NumCategories; c++ {
		a := cats.Stack.Cycles[c]
		b := sampled.Categories.Stack.Cycles[c]
		if math.Abs(a-b) > 1e-6 {
			t.Fatalf("category %v differs: file %v vs analytical %v",
				profile.Category(c), a, b)
		}
	}
}

func TestPostprocessOnComputeWorkload(t *testing.T) {
	buf, sampled, prog := runWithCollectorAndSampled(t, "exchange2", 97)
	prof, _, err := Postprocess(NewReader(buf), prog)
	if err != nil {
		t.Fatal(err)
	}
	if e := profile.DistributionError(prof.InstCycles, sampled.Profile.InstCycles); e > 1e-9 {
		t.Fatalf("profiles differ: TV=%v", e)
	}
}

func TestPostprocessUnknownAddressesDropped(t *testing.T) {
	b := program.NewBuilder("p")
	f := b.Func("main")
	blk := f.NewBlock()
	blk.Op(isa.KindIntALU, isa.IntReg(1))
	blk.Ret()
	prog := b.MustBuild(0)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	s := Sample{Cycle: 9, ValidMask: 1, Addrs: [AddrCSRs]uint64{0xdeadbeef}}
	w.Write(&s)
	prof, _, err := Postprocess(NewReader(&buf), prog)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Attributed() != 0 {
		t.Fatalf("unknown address attributed %v cycles", prof.Attributed())
	}
}

func TestCollectorDropsUnresolvedDrain(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	coll := NewCollector(w, sampling.NewPeriodic(2), 0, 0, 0)
	// Cycle 0: commit; cycle 1 (sampled): empty ROB with clean OIR ->
	// pending drain; then the run ends with no dispatch.
	var r trace.Record
	r.NumBanks = 4
	r.Banks[0] = trace.BankEntry{Valid: true, Committing: true, PC: 0x100, FID: 1, InstIndex: 0}
	r.CommitCount = 1
	coll.OnCycle(&r)
	r = trace.Record{Cycle: 1, NumBanks: 4, ROBEmpty: true}
	coll.OnCycle(&r)
	coll.Finish(2)
	if w.Count() != 0 {
		t.Fatalf("unresolved drain sample written (%d records)", w.Count())
	}
	if coll.Samples != 1 {
		t.Fatalf("Samples = %d, want 1", coll.Samples)
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	w := NewWriter(io.Discard)
	s := Sample{Cycle: 1, ValidMask: 0b1111,
		Addrs: [AddrCSRs]uint64{0x10000, 0x10004, 0x10008, 0x1000c}}
	b.SetBytes(RecordBytes)
	for i := 0; i < b.N; i++ {
		s.Cycle = uint64(i)
		w.Write(&s)
	}
	if w.Err() != nil {
		b.Fatal(w.Err())
	}
}
