// Package perfdata models the software half of TIP's deployment (§3.1):
// the PMU interrupt handler that copies TIP's CSRs into a perf-style buffer
// at each sample, the on-disk raw-sample format, and the offline
// post-processing
// step that turns raw samples plus the application binary into a profile.
//
// Each on-disk record is exactly the 88 bytes the paper's overhead analysis
// counts (§3.2): 40 B of kernel metadata (core/process/thread identifiers
// and a timestamp) plus TIP's six CSRs — the cycle counter, the merged
// flags register, and the four per-bank instruction-address registers.
// Non-ILP profilers would write 56 B (one address); TIP's extra 32 B buys
// the ILP-aware sample.
package perfdata

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/tipprof/tip/internal/profiler"
)

// Magic identifies a TIP raw-sample file.
const Magic = "TIPPERF1"

// AddrCSRs is the number of per-bank address CSRs (the commit width of the
// 4-wide BOOM).
const AddrCSRs = 4

// RecordBytes is the on-disk size of one sample (88 B, §3.2).
const RecordBytes = metadataBytes + 8 /*cycle*/ + 8 /*flags*/ + AddrCSRs*8

const metadataBytes = 40

// Sample is one raw TIP sample: the CSR snapshot plus perf metadata.
type Sample struct {
	// Core, PID, TID identify where the sample was taken (perf reads
	// these from kernel structures; 40 B per sample with the timestamp
	// and header).
	Core uint32
	PID  uint32
	TID  uint32
	// Time is the sample's timestamp; the simulator uses the cycle.
	Time uint64

	// Cycle is the cycle-counter CSR.
	Cycle uint64
	// Flags is the merged flags CSR (§3.1): sample-selection flags in
	// the low byte, the address-valid bits, and the Oldest ID.
	Flags profiler.SampleFlags
	// ValidMask marks which address CSRs hold live instruction
	// addresses (bit i = Addrs[i]).
	ValidMask uint8
	// OldestID is the bank holding the oldest instruction.
	OldestID uint8
	// Addrs are the per-bank instruction-address CSRs.
	Addrs [AddrCSRs]uint64
}

// packFlags merges the flag fields into the 64-bit flags CSR.
func (s *Sample) packFlags() uint64 {
	return uint64(s.Flags) | uint64(s.ValidMask)<<8 | uint64(s.OldestID)<<16
}

func (s *Sample) unpackFlags(v uint64) {
	s.Flags = profiler.SampleFlags(v & 0xff)
	s.ValidMask = uint8(v >> 8)
	s.OldestID = uint8(v >> 16)
}

// Writer streams samples in the binary format.
type Writer struct {
	w     io.Writer
	buf   [RecordBytes]byte
	n     uint64
	wrote bool
	err   error
}

// NewWriter returns a sample writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write appends one sample.
func (w *Writer) Write(s *Sample) {
	if w.err != nil {
		return
	}
	if !w.wrote {
		if _, err := io.WriteString(w.w, Magic); err != nil {
			w.err = err
			return
		}
		w.wrote = true
	}
	b := w.buf[:]
	le := binary.LittleEndian
	// 40 B metadata block.
	le.PutUint32(b[0:], s.Core)
	le.PutUint32(b[4:], s.PID)
	le.PutUint32(b[8:], s.TID)
	le.PutUint32(b[12:], 0) // reserved
	le.PutUint64(b[16:], s.Time)
	le.PutUint64(b[24:], 0) // stream id (unused)
	le.PutUint64(b[32:], 0) // period hint (readers recompute)
	// CSR block.
	le.PutUint64(b[40:], s.Cycle)
	le.PutUint64(b[48:], s.packFlags())
	for i := 0; i < AddrCSRs; i++ {
		le.PutUint64(b[56+8*i:], s.Addrs[i])
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return
	}
	w.n++
}

// Count returns samples written.
func (w *Writer) Count() uint64 { return w.n }

// Err returns the first write error.
func (w *Writer) Err() error { return w.err }

// ErrTruncated reports a sample file that ends mid-record — typically an
// interrupted recording. It unwraps to io.ErrUnexpectedEOF so existing
// errors.Is checks keep working.
type ErrTruncated struct {
	// Record is the zero-based index of the record that was cut short
	// (equivalently: the number of complete records before the cut).
	Record uint64
}

func (e *ErrTruncated) Error() string {
	return fmt.Sprintf("perfdata: truncated sample file: record %d cut short after %d complete records", e.Record, e.Record)
}

func (e *ErrTruncated) Unwrap() error { return io.ErrUnexpectedEOF }

// Reader decodes a sample file.
type Reader struct {
	r       io.Reader
	buf     [RecordBytes]byte
	readHdr bool
	count   uint64
}

// NewReader returns a sample reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Count returns the number of complete samples decoded so far.
func (r *Reader) Count() uint64 { return r.count }

// Next reads the next sample; io.EOF at end of file, *ErrTruncated if the
// file ends mid-record.
func (r *Reader) Next(s *Sample) error {
	if !r.readHdr {
		hdr := make([]byte, len(Magic))
		if _, err := io.ReadFull(r.r, hdr); err != nil {
			if err == io.ErrUnexpectedEOF {
				return &ErrTruncated{Record: 0}
			}
			return err
		}
		if string(hdr) != Magic {
			return fmt.Errorf("perfdata: bad magic %q", hdr)
		}
		r.readHdr = true
	}
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return &ErrTruncated{Record: r.count}
		}
		return err
	}
	r.count++
	le := binary.LittleEndian
	b := r.buf[:]
	s.Core = le.Uint32(b[0:])
	s.PID = le.Uint32(b[4:])
	s.TID = le.Uint32(b[8:])
	s.Time = le.Uint64(b[16:])
	s.Cycle = le.Uint64(b[40:])
	s.unpackFlags(le.Uint64(b[48:]))
	for i := 0; i < AddrCSRs; i++ {
		s.Addrs[i] = le.Uint64(b[56+8*i:])
	}
	return nil
}
