package perfdata

import (
	"errors"
	"io"

	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
)

// Collector models the TIP hardware registers plus the PMU interrupt path:
// at each sample trigger it snapshots the address/flags/cycle CSRs exactly
// as the Fig. 6 sample-selection logic populates them and hands the record
// to the Writer — the role perf's interrupt handler plays on a real system.
//
// It is deliberately independent of profiler.Sampled: Sampled is the
// analytical model used for error evaluation, Collector is the
// record-and-post-process deployment path, and tests cross-validate that
// both produce identical profiles.
type Collector struct {
	w     *Writer
	sched sampling.Schedule
	next  uint64

	core, pid, tid uint32

	// oirPC/flags mirror the hardware OIR.
	oirValid   bool
	oirPC      uint64
	oirMispred bool
	oirFlush   bool
	oirExcept  bool

	// pending holds a drained-state sample whose address CSR keeps its
	// write-enable asserted until the first instruction dispatches
	// (§3.1, step 8 in Fig. 6).
	pending    *Sample
	hasPending bool
	pendSample Sample

	// Samples counts captured samples (including pending ones).
	Samples uint64
}

// NewCollector builds a collector writing to w, sampling on sched.
func NewCollector(w *Writer, sched sampling.Schedule, core, pid, tid uint32) *Collector {
	return &Collector{
		w: w, sched: sched, next: sched.Next(0),
		core: core, pid: pid, tid: tid,
	}
}

// OnCycle implements trace.Consumer.
func (c *Collector) OnCycle(r *trace.Record) {
	// Resolve a pending drained sample: when the first instruction's
	// ROB entry becomes valid, its address latches into Address 0.
	if c.hasPending && !r.ROBEmpty {
		if old := r.Oldest(); old != nil {
			c.pendSample.Addrs[0] = old.PC
			c.pendSample.ValidMask = 1
			c.pendSample.OldestID = 0
			c.w.Write(&c.pendSample)
			c.hasPending = false
		}
	}

	if r.Cycle == c.next {
		c.capture(r)
		c.next = c.sched.Next(r.Cycle)
	}

	// OIR update (youngest committing entry, or the excepting
	// instruction).
	if y := r.YoungestCommitting(); y != nil {
		c.oirValid = true
		c.oirPC = y.PC
		c.oirMispred = y.Mispredicted
		c.oirFlush = y.Flush
		c.oirExcept = false
	}
	if r.ExceptionRaised {
		c.oirValid = true
		c.oirPC = r.ExceptionPC
		c.oirMispred, c.oirFlush, c.oirExcept = false, false, true
	}
}

// capture fills the CSR snapshot for the sampled cycle.
func (c *Collector) capture(r *trace.Record) {
	c.Samples++
	s := Sample{
		Core: c.core, PID: c.pid, TID: c.tid,
		Time:  r.Cycle,
		Cycle: r.Cycle,
	}
	if r.CommitCount == 0 {
		s.Flags |= profiler.FlagStalled
	}
	if !r.ROBEmpty {
		if r.CommitCount > 0 {
			// Computing: valid bits from the commit signals.
			for i := 0; i < r.NumBanks && i < AddrCSRs; i++ {
				e := &r.Banks[i]
				if e.Valid && e.Committing {
					s.Addrs[i] = e.PC
					s.ValidMask |= 1 << i
				}
			}
			s.OldestID = r.HeadBank
		} else if old := r.Oldest(); old != nil {
			// Stalled: the oldest valid entry.
			bank := oldestBank(r)
			s.Addrs[bank] = old.PC
			s.ValidMask = 1 << bank
			s.OldestID = bank
		}
		c.w.Write(&s)
		return
	}
	// ROB empty: flush (OIR) or drain (wait for the first dispatch).
	if c.oirValid && (c.oirMispred || c.oirFlush || c.oirExcept) {
		switch {
		case c.oirMispred:
			s.Flags |= profiler.FlagMispredicted
		case c.oirFlush:
			s.Flags |= profiler.FlagFlush
		default:
			s.Flags |= profiler.FlagException
		}
		s.Addrs[0] = c.oirPC
		s.ValidMask = 1
		s.OldestID = 0
		c.w.Write(&s)
		return
	}
	// Drained: hold the record open until an instruction dispatches.
	s.Flags |= profiler.FlagFrontend
	c.pendSample = s
	c.hasPending = true
}

// Finish implements trace.Consumer; an unresolved drained sample at the end
// of the run is dropped (no instruction ever arrived).
func (c *Collector) Finish(totalCycles uint64) {
	c.hasPending = false
}

func oldestBank(r *trace.Record) uint8 {
	for i := 0; i < r.NumBanks; i++ {
		b := (int(r.HeadBank) + i) % r.NumBanks
		if r.Banks[b].Valid {
			return uint8(b)
		}
	}
	return 0
}

// Postprocess replays a raw-sample stream against the application binary
// and rebuilds the instruction-level profile and cycle categorization —
// the offline step perf performs after the run (§3.1): "for each sample,
// add 1/n of the value in the cycles register to each instruction's
// counter".
func Postprocess(r *Reader, prog *program.Program) (*profile.Profile, *profiler.CategoryProfile, error) {
	prof := profile.New(prog)
	cats := profiler.NewCategoryProfile(prog, true)
	var s Sample
	last := uint64(0)
	for {
		if err := r.Next(&s); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, err
		}
		period := float64(s.Cycle + 1 - last)
		last = s.Cycle + 1
		n := 0
		for i := 0; i < AddrCSRs; i++ {
			if s.ValidMask&(1<<i) != 0 {
				n++
			}
		}
		if n == 0 {
			continue // dropped/unresolved sample
		}
		split := period / float64(n)
		for i := 0; i < AddrCSRs; i++ {
			if s.ValidMask&(1<<i) == 0 {
				continue
			}
			idx := int32(-1)
			if in := prog.InstAt(s.Addrs[i]); in != nil {
				idx = int32(in.Index)
			}
			prof.Add(idx, split)
			cats.Add(s.Flags, idx, split)
		}
	}
	return prof, cats, nil
}
