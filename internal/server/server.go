// Package server implements tipd, the networked profiling service over the
// TIP capture/replay pipeline: clients POST profiling jobs, a bounded worker
// pool runs them (reusing cached captures so repeated jobs skip the
// cycle-level simulation and only replay), and results are served as JSON
// profiles or gzipped pprof protobufs that open in `go tool pprof`.
//
// This is the §3.1 deployment story turned into a service: perf records TIP
// samples online and profiles are rebuilt offline on demand — tipd plays the
// perf-server role, with the simulator standing in for the hardware.
//
// API:
//
//	POST   /v1/jobs             submit a job (JobSpec body) — 202, or 429 when saturated
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job state + JSON profile when done
//	GET    /v1/jobs/{id}/pprof  gzipped pprof protobuf (?profiler=TIP|Oracle|...)
//	DELETE /v1/jobs/{id}        cancel a queued/running job, or forget a finished one
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"time"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/fleet"
	"github.com/tipprof/tip/internal/pprofenc"
)

// Config parameterises the daemon.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS, min 1). Each
	// worker runs one job at a time; replay fan-out happens inside a job.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; submissions beyond it
	// are rejected with 429 + Retry-After (default 16).
	QueueDepth int
	// CacheEntries bounds the capture cache (default 8 captures).
	CacheEntries int
	// CacheBytes bounds the capture cache's encoded footprint
	// (default 1 GiB).
	CacheBytes uint64
	// SpillDir, when set, persists the capture cache there on graceful
	// shutdown and re-loads it on startup.
	SpillDir string
	// JobTimeout bounds one job's execution (default 10m).
	JobTimeout time.Duration
	// MaxRetainedJobs bounds finished jobs kept for retrieval; the oldest
	// terminal jobs are forgotten first (default 256).
	MaxRetainedJobs int
	// Core is the simulated core configuration for every job (default
	// Table 1). It is part of the capture-cache key.
	Core cpu.Config
	// Store, when set, is the fleet's shared capture store: cache misses
	// try the store before simulating, and freshly simulated captures are
	// published to it, so any node in a fleet serves any warm key.
	Store *fleet.Store
	// Logf receives operational warnings (corrupted spill entries, failed
	// store publishes). Default log.Printf.
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 8
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 1 << 30
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 256
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	// Only a fully zero core config selects the Table 1 default. Anything
	// else must stand on its own: keying the decision on a single field
	// (the old FetchWidth==0 check) silently accepted partially-populated
	// configs that later panicked the first worker that built a core.
	if reflect.DeepEqual(c.Core, cpu.Config{}) {
		c.Core = cpu.DefaultConfig()
	} else if err := c.Core.Validate(); err != nil {
		return fmt.Errorf("core config: %w", err)
	}
	return nil
}

// Server is the tipd daemon.
type Server struct {
	cfg      Config
	coreHash string

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // creation order, for retention
	nextID   uint64
	queue    chan *job
	running  int
	draining bool

	workers  sync.WaitGroup
	baseCtx  context.Context
	abort    context.CancelFunc
	cache    *captureCache
	met      *metrics
	mux      *http.ServeMux
	shutdown bool

	// execute runs one job; tests stub it to control timing and failure.
	execute func(ctx context.Context, jb *job) (*jobOutcome, error)
}

// New builds a Server, loads any persisted captures from cfg.SpillDir, and
// starts the worker pool.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		coreHash: coreConfigHash(cfg.Core),
		jobs:     map[string]*job{},
		queue:    make(chan *job, cfg.QueueDepth),
		cache:    newCaptureCache(cfg.CacheEntries, cfg.CacheBytes, cfg.Logf),
		met:      newMetrics(),
		mux:      http.NewServeMux(),
	}
	s.baseCtx, s.abort = context.WithCancel(context.Background())
	s.execute = s.executeJob
	if cfg.SpillDir != "" {
		if err := s.cache.load(cfg.SpillDir); err != nil {
			return nil, fmt.Errorf("server: loading capture cache: %w", err)
		}
	}
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/jobs/{id}/pprof", s.handlePprof)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// worker pulls jobs off the queue until the queue closes at shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	for jb := range s.queue {
		s.runJob(jb)
	}
}

// runJob drives one job through running → terminal state.
func (s *Server) runJob(jb *job) {
	s.mu.Lock()
	if jb.state != stateQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	jb.state = stateRunning
	jb.started = time.Now()
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	jb.cancel = cancel
	s.running++
	s.mu.Unlock()

	out, err := s.execute(ctx, jb)
	timedOut := ctx.Err() != nil && errors.Is(ctx.Err(), context.DeadlineExceeded)
	cancel()

	s.mu.Lock()
	s.running--
	jb.finished = time.Now()
	jb.cancel = nil
	state := stateDone
	switch {
	case err == nil:
		jb.outcome = out
		jb.cacheHit = out.cacheHit
		jb.source = out.source
		jb.timing = out.timing
	case errors.Is(err, context.Canceled):
		state = stateCanceled
		jb.errMsg = "canceled"
	case timedOut || errors.Is(err, context.DeadlineExceeded):
		state = stateFailed
		jb.errMsg = fmt.Sprintf("timed out after %s", s.cfg.JobTimeout)
	default:
		state = stateFailed
		jb.errMsg = err.Error()
	}
	jb.state = state
	var cycles uint64
	simulated := false
	if state == stateDone && jb.outcome != nil {
		if jb.outcome.res != nil {
			cycles = jb.outcome.res.Stats.Cycles
		} else if jb.outcome.multi != nil {
			cycles = jb.outcome.multi.TotalCycles
		}
		// A store pull is not a simulation: only fresh cycle-level runs
		// (capture misses and sampled windows) count simulated cycles.
		simulated = jb.outcome.source == sourceSimulated || jb.outcome.source == sourceSampled
	}
	s.met.jobFinished(state, jb.timing.Capture.Seconds(), jb.timing.Replay.Seconds(), cycles, simulated)
	s.mu.Unlock()
}

// StartDrain marks the daemon draining: new submissions are refused with
// 503, queued and running jobs keep executing, and reads keep being served.
// Fleet workers call this (and push a draining heartbeat) before Shutdown so
// the coordinator takes the node off the ring while its jobs finish.
// Idempotent.
func (s *Server) StartDrain() {
	s.mu.Lock()
	s.startDrainLocked()
	s.mu.Unlock()
}

func (s *Server) startDrainLocked() {
	if s.draining {
		return
	}
	s.draining = true
	// Closing the queue lets the workers run every already-accepted job
	// and then exit; handleSubmit stops adding to it once draining is set.
	close(s.queue)
}

// Shutdown gracefully stops the daemon: new submissions are refused, queued
// and running jobs drain, and the capture cache is persisted to the spill
// directory. If ctx expires first, in-flight jobs are aborted via their
// contexts and Shutdown returns ctx's error after they unwind — ctx is the
// drain-timeout bound, so a wedged job cannot hold shutdown forever.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil
	}
	s.shutdown = true
	s.startDrainLocked()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.abort() // cancel in-flight job contexts
		<-done
	}
	if s.cfg.SpillDir != "" {
		if perr := s.cache.persist(s.cfg.SpillDir); perr != nil && err == nil {
			err = perr
		}
	}
	return err
}

// --- HTTP handlers ---------------------------------------------------------

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	kinds, gran, err := spec.normalize()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.nextID++
	jb := &job{
		id:      fmt.Sprintf("j%08d", s.nextID),
		spec:    spec,
		kinds:   kinds,
		gran:    gran,
		state:   stateQueued,
		created: time.Now(),
	}
	// Admission control: the queue send must not block — a full queue is
	// a saturated service, and the client should back off and retry. The
	// retry hint is jittered (fleet.RetryAfterMS) so the backed-off
	// clients don't return in one synchronized storm, and the body carries
	// the queue state so a fleet coordinator can treat the 429 as a steal
	// signal.
	select {
	case s.queue <- jb:
	default:
		s.nextID--
		depth, qcap := len(s.queue), s.cfg.QueueDepth
		s.mu.Unlock()
		s.met.jobRejected()
		ms := fleet.RetryAfterMS()
		w.Header().Set("Retry-After", strconv.Itoa((ms+999)/1000))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":          "job queue saturated; retry later",
			"retry_after_ms": ms,
			"queue_depth":    depth,
			"queue_cap":      qcap,
		})
		return
	}
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb.id)
	s.retainLocked()
	v := s.view(jb)
	s.mu.Unlock()
	s.met.jobAccepted()

	w.Header().Set("Location", "/v1/jobs/"+jb.id)
	writeJSON(w, http.StatusAccepted, v)
}

// retainLocked forgets the oldest terminal jobs beyond MaxRetainedJobs.
// Queued and running jobs are never forgotten. Caller holds s.mu.
func (s *Server) retainLocked() {
	if len(s.jobs) <= s.cfg.MaxRetainedJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.jobs) - s.cfg.MaxRetainedJobs
	for _, id := range s.order {
		jb := s.jobs[id]
		if jb == nil {
			continue
		}
		if excess > 0 && (jb.state == stateDone || jb.state == stateFailed || jb.state == stateCanceled) {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		if jb := s.jobs[id]; jb != nil {
			v := s.view(jb)
			v.Result = nil // keep the listing light
			views = append(views, v)
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jb := s.jobs[r.PathValue("id")]
	if jb == nil {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	v := s.view(jb)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	jb := s.jobs[id]
	if jb == nil {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	switch jb.state {
	case stateQueued:
		// The worker that eventually pops it will skip it.
		jb.state = stateCanceled
		jb.errMsg = "canceled before start"
		jb.finished = time.Now()
		s.met.jobFinished(stateCanceled, 0, 0, 0, false)
		v := s.view(jb)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, v)
	case stateRunning:
		// Cancel the job's context; the worker observes the abort within
		// a few thousand simulated cycles (capture) or between record
		// chunks (sharded replay) and marks the job canceled.
		if jb.cancel != nil {
			jb.cancel()
		}
		v := s.view(jb)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, v)
	default:
		// Terminal: forget the job.
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *Server) handlePprof(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jb := s.jobs[r.PathValue("id")]
	if jb == nil {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if jb.state != stateDone || jb.outcome == nil ||
		(jb.outcome.res == nil && jb.outcome.multi == nil) {
		state := jb.state
		s.mu.Unlock()
		httpError(w, http.StatusConflict, fmt.Sprintf("job is %s, not done", state))
		return
	}
	res := jb.outcome.res
	multi := jb.outcome.multi
	spec := jb.spec
	s.mu.Unlock()

	// Multicore jobs expose one pprof file per core (?core=N, default 0);
	// the samples carry a "core" string label so merged or archived
	// profiles stay distinguishable (`go tool pprof -tags`).
	bench, seed, scale := spec.Bench, spec.Seed, spec.Scale
	var labels []pprofenc.Label
	if multi != nil {
		core := 0
		if cs := r.URL.Query().Get("core"); cs != "" {
			n, err := strconv.Atoi(cs)
			if err != nil || n < 0 || n >= len(multi.Cores) {
				httpError(w, http.StatusBadRequest,
					fmt.Sprintf("core %q out of range [0,%d)", cs, len(multi.Cores)))
				return
			}
			core = n
		}
		res = multi.Cores[core]
		cs := spec.Cores[core]
		bench, seed, scale = cs.Bench, cs.Seed, cs.Scale
		labels = []pprofenc.Label{{Key: "core", Value: strconv.Itoa(core)}}
	} else if r.URL.Query().Get("core") != "" {
		httpError(w, http.StatusBadRequest, "core selects a core of a multicore job; this job is single-core")
		return
	}

	name := r.URL.Query().Get("profiler")
	if name == "" {
		name = "TIP"
	}
	prof := res.Oracle.Profile
	if name != "Oracle" {
		found := false
		for k, sp := range res.Sampled {
			if k.String() == name {
				prof = sp.Profile
				found = true
				break
			}
		}
		if !found {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("profiler %q not in this job (use Oracle or one of the job's profilers)", name))
			return
		}
	}
	opt := pprofenc.JobOptions(bench, seed, scale, name, res.SampleInterval)
	opt.Labels = labels
	data, err := pprofenc.Encode(prof, opt)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s-%s.pb.gz", bench, name))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, entries, bytes := s.cache.counters()
	s.mu.Lock()
	g := gauges{
		queueDepth:   len(s.queue),
		running:      s.running,
		workers:      s.cfg.Workers,
		draining:     s.draining,
		cacheHits:    hits,
		cacheMisses:  misses,
		cacheEntries: entries,
		cacheBytes:   bytes,
	}
	s.mu.Unlock()
	if st := s.cfg.Store; st != nil {
		g.store = true
		g.storeHits, g.storeMisses, g.storePuts = st.Counters()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeProm(w, g)
}

// Health is the daemon's self-reported state: what /healthz serves, what a
// fleet member pushes in heartbeats, and what a human probes — one struct so
// all three read the same signal. The response stays a plain 200 regardless
// of load or drain state, so liveness probes written against the old
// endpoint keep working; drain is a field, not a status code.
type Health struct {
	OK           bool   `json:"ok"`
	Draining     bool   `json:"draining"`
	Jobs         int    `json:"jobs"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	Running      int    `json:"running"`
	Workers      int    `json:"workers"`
	CacheEntries int    `json:"cache_entries"`
	CacheBytes   uint64 `json:"cache_bytes"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	Simulations  uint64 `json:"simulations"`
	CoreHash     string `json:"core_hash"`
	StoreEnabled bool   `json:"store"`
	StoreHits    uint64 `json:"store_hits,omitempty"`
	StoreMisses  uint64 `json:"store_misses,omitempty"`
	StorePuts    uint64 `json:"store_puts,omitempty"`
}

// Health snapshots the daemon's state.
func (s *Server) Health() Health {
	hits, misses, entries, bytes := s.cache.counters()
	h := Health{
		OK:           true,
		CacheEntries: entries,
		CacheBytes:   bytes,
		CacheHits:    hits,
		CacheMisses:  misses,
		Simulations:  s.met.simulationCount(),
		CoreHash:     s.coreHash,
	}
	if st := s.cfg.Store; st != nil {
		h.StoreEnabled = true
		h.StoreHits, h.StoreMisses, h.StorePuts = st.Counters()
	}
	s.mu.Lock()
	h.Draining = s.draining
	h.Jobs = len(s.jobs)
	h.QueueDepth = len(s.queue)
	h.QueueCap = s.cfg.QueueDepth
	h.Running = s.running
	h.Workers = s.cfg.Workers
	s.mu.Unlock()
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}

// Ensure the server package's public API stays anchored to the tip run
// entry points it builds on (compile-time check, documents the coupling).
var _ = tip.RunCaptured
