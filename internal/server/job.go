package server

import (
	"context"
	"fmt"
	"strings"
	"time"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/experiments"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/workload"
)

// Job states.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// CoreJobSpec names one core's workload in a multicore job.
type CoreJobSpec struct {
	// Bench is the benchmark name (required; see tipsim -list).
	Bench string `json:"bench"`
	// Seed is the workload seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Scale is the approximate dynamic-instruction budget (0 = full).
	Scale uint64 `json:"scale,omitempty"`
}

// JobSpec is the body of POST /v1/jobs: which benchmark to profile and how.
type JobSpec struct {
	// Bench is the benchmark name (required unless Cores is set; see
	// tipsim -list).
	Bench string `json:"bench,omitempty"`
	// Seed is the workload seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Scale is the approximate dynamic-instruction budget (0 = full).
	Scale uint64 `json:"scale,omitempty"`
	// Profilers restricts the sampled-profiler set (default: all).
	Profilers []string `json:"profilers,omitempty"`
	// Granularity selects the error-reporting symbol level:
	// "instruction" (default), "block", or "function".
	Granularity string `json:"granularity,omitempty"`
	// TargetSamples calibrates the sampling interval (default 4096).
	TargetSamples uint64 `json:"target_samples,omitempty"`
	// ReplayWorkers fans the replay out over this many goroutines
	// (default 2 — sharded replays cancel between chunks, so DELETE
	// aborts promptly; results are byte-identical at any count).
	ReplayWorkers int `json:"replay_workers,omitempty"`
	// Sampled runs the job under sampled simulation: detailed measurement
	// windows alternating with functional fast-forward, with the cycle
	// total stitched from the window CPIs. Sampled jobs bypass the capture
	// cache — fast-forward legs emit no trace records, so there is no full
	// capture to store or reuse.
	Sampled bool `json:"sampled,omitempty"`
	// WindowCycles, WindowInterval, and WarmupCycles set the sampled
	// schedule geometry (0 = evaluation-harness defaults; all three
	// require "sampled").
	WindowCycles   uint64 `json:"window_cycles,omitempty"`
	WindowInterval uint64 `json:"window_interval,omitempty"`
	WarmupCycles   uint64 `json:"warmup_cycles,omitempty"`
	// WarmupAuto sizes the warmup from the fast-forward leg length
	// (tip.AutoWarmupCycles), overriding warmup_cycles.
	WarmupAuto bool `json:"warmup_auto,omitempty"`
	// WindowWorkers runs the sampled windows checkpoint-parallel on up to
	// this many worker cores (clamped to [0,16]; 0 = serial schedule;
	// results are byte-identical at any count >= 1).
	WindowWorkers int `json:"window_workers,omitempty"`
	// Cores runs a multi-programmed lockstep job: workload i on core i of
	// one shared-LLC system, profiled per core from a single core-tagged
	// capture. Mutually exclusive with Bench/Seed/Scale and Sampled. The
	// capture is cached keyed by the ordered core set — order matters,
	// because physical placement changes shared-cache arbitration.
	Cores []CoreJobSpec `json:"cores,omitempty"`
}

// normalize validates the spec, applies defaults, and resolves the parsed
// profiler kinds and granularity.
func (sp *JobSpec) normalize() ([]profiler.Kind, profile.Granularity, error) {
	if len(sp.Cores) > 0 {
		switch {
		case sp.Bench != "" || sp.Seed != 0 || sp.Scale != 0:
			return nil, 0, fmt.Errorf("cores is mutually exclusive with bench/seed/scale")
		case sp.Sampled:
			return nil, 0, fmt.Errorf("cores cannot be combined with sampled")
		case len(sp.Cores) > 4:
			return nil, 0, fmt.Errorf("at most 4 cores (got %d)", len(sp.Cores))
		}
		for i := range sp.Cores {
			c := &sp.Cores[i]
			if c.Bench == "" {
				return nil, 0, fmt.Errorf("cores[%d]: bench is required", i)
			}
			if !validBench(c.Bench) {
				return nil, 0, fmt.Errorf("cores[%d]: unknown benchmark %q", i, c.Bench)
			}
			if c.Seed == 0 {
				c.Seed = 1
			}
		}
	} else {
		if sp.Bench == "" {
			return nil, 0, fmt.Errorf("bench is required")
		}
		if !validBench(sp.Bench) {
			return nil, 0, fmt.Errorf("unknown benchmark %q", sp.Bench)
		}
		if sp.Seed == 0 {
			sp.Seed = 1
		}
	}
	if sp.ReplayWorkers == 0 {
		sp.ReplayWorkers = 2
	}
	if sp.ReplayWorkers < 1 || sp.ReplayWorkers > 16 {
		return nil, 0, fmt.Errorf("replay_workers %d out of range [1,16]", sp.ReplayWorkers)
	}
	if !sp.Sampled {
		switch {
		case sp.WindowCycles != 0:
			return nil, 0, fmt.Errorf("window_cycles requires sampled")
		case sp.WindowInterval != 0:
			return nil, 0, fmt.Errorf("window_interval requires sampled")
		case sp.WarmupCycles != 0:
			return nil, 0, fmt.Errorf("warmup_cycles requires sampled")
		case sp.WarmupAuto:
			return nil, 0, fmt.Errorf("warmup_auto requires sampled")
		case sp.WindowWorkers != 0:
			return nil, 0, fmt.Errorf("window_workers requires sampled")
		}
	} else {
		if sp.WindowWorkers < 0 {
			sp.WindowWorkers = 0
		}
		if sp.WindowWorkers > 16 {
			sp.WindowWorkers = 16
		}
		if sp.WindowCycles == 0 {
			sp.WindowCycles = experiments.DefaultSampledWindow
		}
		if sp.WindowInterval == 0 {
			sp.WindowInterval = experiments.DefaultSampledInterval
		}
		if sp.WarmupAuto {
			sp.WarmupCycles = tip.AutoWarmupCycles(sp.WindowCycles, sp.WindowInterval)
		} else if sp.WarmupCycles == 0 && sp.WindowCycles != sp.WindowInterval {
			sp.WarmupCycles = experiments.DefaultSampledWarmup
		}
		rc := tip.DefaultRunConfig()
		rc.Sampled = true
		rc.WindowCycles = sp.WindowCycles
		rc.WindowInterval = sp.WindowInterval
		rc.WarmupCycles = sp.WarmupCycles
		if err := tip.ValidateSampled(rc); err != nil {
			return nil, 0, err
		}
	}
	var kinds []profiler.Kind
	if len(sp.Profilers) > 0 {
		byName := map[string]profiler.Kind{}
		for _, k := range profiler.AllKinds() {
			byName[strings.ToLower(k.String())] = k
		}
		for _, name := range sp.Profilers {
			k, ok := byName[strings.ToLower(strings.TrimSpace(name))]
			if !ok {
				return nil, 0, fmt.Errorf("unknown profiler %q", name)
			}
			kinds = append(kinds, k)
		}
	}
	var gran profile.Granularity
	switch strings.ToLower(sp.Granularity) {
	case "", "instruction":
		gran = profile.GranInstruction
		sp.Granularity = "instruction"
	case "block", "basic-block":
		gran = profile.GranBlock
		sp.Granularity = "block"
	case "function":
		gran = profile.GranFunction
	default:
		return nil, 0, fmt.Errorf("unknown granularity %q (instruction, block, function)", sp.Granularity)
	}
	return kinds, gran, nil
}

func validBench(name string) bool {
	if name == "imagick-opt" {
		return true
	}
	_, ok := workload.ByName(name)
	return ok
}

// job is one profiling job's full lifecycle. Mutable fields are guarded by
// the owning Server's mu.
type job struct {
	id   string
	spec JobSpec

	kinds []profiler.Kind
	gran  profile.Granularity

	state    string
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc

	cacheHit bool
	// source records where the job's capture came from: "cache" (local LRU
	// or a shared singleflight), "store" (pulled from the fleet's shared
	// capture store), "simulated" (a fresh cycle-level simulation), or
	// "sampled" (sampled jobs always simulate their windows).
	source string
	// timing reuses the experiments phase-split struct: capture vs replay
	// wall-clock plus the replay worker count actually used.
	timing experiments.Timing

	outcome *jobOutcome
}

// Capture sources for job.source / jobOutcome.source.
const (
	sourceCache     = "cache"
	sourceStore     = "store"
	sourceSimulated = "simulated"
	sourceSampled   = "sampled"
)

// jobOutcome is what a successful execution hands back to the server.
// Exactly one of res (single-core) and multi (multicore) is set.
type jobOutcome struct {
	res      *tip.Result
	multi    *tip.MulticoreResult
	cacheHit bool
	source   string
	timing   experiments.Timing
}

// executeJob is the real job runner. On a capture-cache hit the cached trace
// is replayed through the job's profiler matrix; on a miss the whole job
// runs fused — the cycle-level simulation streams straight into the replay
// shards while the encoded trace is teed into the cache — so the miss costs
// max(simulate, replay) instead of their sum. A fused miss calibrates its
// sampling interval from the streaming pilot window, so its interval (and
// result) can differ marginally from a later cache-hit rerun of the same
// spec, which calibrates from the exact cycle count. Cancelling ctx aborts
// either path.
func (s *Server) executeJob(ctx context.Context, jb *job) (*jobOutcome, error) {
	spec := jb.spec
	out := &jobOutcome{}
	rc := tip.DefaultRunConfig()
	rc.Core = s.cfg.Core
	rc.Profilers = jb.kinds
	rc.TargetSamples = spec.TargetSamples
	rc.ReplayWorkers = spec.ReplayWorkers
	out.timing.ReplayWorkers = spec.ReplayWorkers

	if len(spec.Cores) > 0 {
		return s.executeMulticoreJob(ctx, spec, rc, out)
	}

	w, err := workload.LoadScaled(spec.Bench, spec.Seed, spec.Scale)
	if err != nil {
		return nil, err
	}
	key := captureKey{Bench: spec.Bench, Seed: spec.Seed, Scale: spec.Scale, Core: s.coreHash}

	if spec.Sampled {
		// Sampled jobs skip the capture cache: the fast-forward legs emit
		// no trace records, so there is no full capture to store, and
		// replaying someone else's cached full trace would charge this job
		// the full-simulation cost it asked to avoid. The whole run is
		// fused (simulate + profile in one pass), so its wall-clock is
		// reported as replay time like a fused miss.
		rc.Sampled = true
		rc.WindowCycles = spec.WindowCycles
		rc.WindowInterval = spec.WindowInterval
		rc.WarmupCycles = spec.WarmupCycles // normalize resolved warmup_auto
		rc.WindowWorkers = spec.WindowWorkers
		start := time.Now()
		res, err := tip.RunSampled(ctx, w, rc)
		if err != nil {
			return nil, err
		}
		out.timing.Replay = time.Since(start)
		out.res = res
		out.source = sourceSampled
		return out, nil
	}

	var fusedRes *tip.Result
	fromStore := false
	start := time.Now()
	ent, hit, err := s.cache.getOrCapture(ctx, key, func(ctx context.Context) (*tip.TraceCapture, []tip.CoreStats, error) {
		// Local miss: a warm fleet store beats re-simulating — any node's
		// capture of this key is byte-identical to what we would produce.
		if capt, stats, ok := s.storeGet(key); ok {
			fromStore = true
			return capt, stats, nil
		}
		res, capt, stats, err := tip.RunStreamingTee(ctx, w, rc)
		if err != nil {
			return nil, nil, err
		}
		s.met.simulationRan()
		fusedRes = res
		allStats := []tip.CoreStats{stats}
		s.storePut(key, capt, allStats)
		return capt, allStats, nil
	})
	if err != nil {
		return nil, err
	}
	defer s.cache.release(ent)
	out.cacheHit = hit
	out.source = captureSource(hit, fromStore)

	if !hit && fusedRes != nil {
		// Fused miss: this worker was the capture leader and the streaming
		// run already evaluated the job's matrix. Simulation and replay
		// overlapped, so the whole wall-clock is reported as replay time.
		out.timing.Replay = time.Since(start)
		out.res = fusedRes
		return out, nil
	}
	out.timing.Capture = time.Since(start)

	repStart := time.Now()
	res, err := tip.RunCaptured(ctx, w, ent.capture, ent.stats[0], rc)
	out.timing.Replay = time.Since(repStart)
	if err != nil {
		return nil, err
	}
	out.res = res
	return out, nil
}

// executeMulticoreJob runs a "cores" job: on a capture-cache miss the whole
// core set is simulated lockstep into one core-tagged v3 capture; hit or
// miss, the capture is then demultiplexed through per-core profiler
// matrices. Multicore jobs have no fused streaming path — capture and replay
// are reported as separate phases.
func (s *Server) executeMulticoreJob(ctx context.Context, spec JobSpec, rc tip.RunConfig, out *jobOutcome) (*jobOutcome, error) {
	ws := make([]*tip.Workload, len(spec.Cores))
	for i, c := range spec.Cores {
		w, err := workload.LoadScaled(c.Bench, c.Seed, c.Scale)
		if err != nil {
			return nil, fmt.Errorf("cores[%d]: %w", i, err)
		}
		ws[i] = w
	}
	key := captureKey{Cores: coreSetHash(spec.Cores), Core: s.coreHash}
	fromStore := false
	start := time.Now()
	ent, hit, err := s.cache.getOrCapture(ctx, key, func(ctx context.Context) (*tip.TraceCapture, []tip.CoreStats, error) {
		if capt, stats, ok := s.storeGet(key); ok {
			fromStore = true
			return capt, stats, nil
		}
		capt, stats, err := tip.CaptureMulticore(ctx, ws, rc.Core)
		if err != nil {
			return nil, nil, err
		}
		s.met.simulationRan()
		s.storePut(key, capt, stats)
		return capt, stats, nil
	})
	if err != nil {
		return nil, err
	}
	defer s.cache.release(ent)
	out.cacheHit = hit
	out.source = captureSource(hit, fromStore)
	out.timing.Capture = time.Since(start)

	repStart := time.Now()
	multi, err := tip.RunMulticoreCaptured(ctx, ws, ent.capture, ent.stats, rc)
	out.timing.Replay = time.Since(repStart)
	if err != nil {
		return nil, err
	}
	out.multi = multi
	return out, nil
}

// storeGet pulls key's capture from the shared store, if one is configured.
func (s *Server) storeGet(key captureKey) (*tip.TraceCapture, []tip.CoreStats, bool) {
	st := s.cfg.Store
	if st == nil {
		return nil, nil, false
	}
	return st.Get(key.id())
}

// storePut publishes a freshly simulated capture to the shared store,
// best-effort: a failed publish costs the fleet a future warm hit, not this
// job.
func (s *Server) storePut(key captureKey, capt *tip.TraceCapture, stats []tip.CoreStats) {
	st := s.cfg.Store
	if st == nil {
		return
	}
	if err := st.Put(key.id(), capt, stats); err != nil {
		s.cfg.Logf("tipd: publishing %s to store: %v", key.id(), err)
	}
}

func captureSource(hit, fromStore bool) string {
	switch {
	case hit:
		return sourceCache
	case fromStore:
		return sourceStore
	default:
		return sourceSimulated
	}
}

// --- JSON views ------------------------------------------------------------

// TimingView is a job's phase split in seconds.
type TimingView struct {
	CaptureSeconds float64 `json:"capture_seconds"`
	ReplaySeconds  float64 `json:"replay_seconds"`
	ReplayWorkers  int     `json:"replay_workers"`
}

// SamplingView summarises a sampled job's schedule and stitching: how many
// measurement windows ran, how much of the estimate was actually simulated
// in detail, and how many instructions were fast-forwarded. The job's
// "cycles" field is the stitched estimate, not a measured count.
type SamplingView struct {
	Windows          uint64  `json:"windows"`
	MeasuredCycles   uint64  `json:"measured_cycles"`
	DetailedFraction float64 `json:"detailed_fraction"`
	FFInstructions   uint64  `json:"ff_instructions"`
	// WindowWorkers, SweepSeconds and MeasureSeconds describe the
	// checkpoint-parallel schedule when it ran (window_workers 0 = the
	// serial path; the wall-clock split is then omitted).
	WindowWorkers  int     `json:"window_workers,omitempty"`
	SweepSeconds   float64 `json:"sweep_seconds,omitempty"`
	MeasureSeconds float64 `json:"measure_seconds,omitempty"`
}

// FuncShare is one row of a function-granularity profile.
type FuncShare struct {
	Name   string  `json:"name"`
	Cycles float64 `json:"cycles"`
	Share  float64 `json:"share"`
}

// ResultView is a completed job's evaluation summary: run statistics, the
// Oracle cycle stack, per-profiler errors at the requested granularity, and
// function-granularity profiles for Oracle and every modelled profiler.
//
// A multicore job's top-level view carries only Cycles (the interleaved
// run's length) plus one full per-core view per entry of Cores, each tagged
// with its benchmark name.
type ResultView struct {
	Bench          string                 `json:"bench,omitempty"`
	Cycles         uint64                 `json:"cycles"`
	Committed      uint64                 `json:"committed,omitempty"`
	IPC            float64                `json:"ipc,omitempty"`
	SampleInterval uint64                 `json:"sample_interval,omitempty"`
	Class          string                 `json:"class,omitempty"`
	CycleStack     map[string]float64     `json:"cycle_stack,omitempty"`
	Errors         map[string]float64     `json:"errors,omitempty"`
	Profiles       map[string][]FuncShare `json:"profiles,omitempty"`
	Sampling       *SamplingView          `json:"sampling,omitempty"`
	Cores          []*ResultView          `json:"cores,omitempty"`
}

// JobView is the wire representation of a job.
type JobView struct {
	ID       string      `json:"id"`
	State    string      `json:"state"`
	Spec     JobSpec     `json:"spec"`
	Error    string      `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	CacheHit bool       `json:"cache_hit"`
	// CaptureSource says where the capture came from: "cache", "store",
	// "simulated", or "sampled". Empty until the job finishes.
	CaptureSource string      `json:"capture_source,omitempty"`
	Timing        *TimingView `json:"timing,omitempty"`
	Result        *ResultView `json:"result,omitempty"`
}

// view renders jb; the caller holds s.mu.
func (s *Server) view(jb *job) JobView {
	v := JobView{
		ID:            jb.id,
		State:         jb.state,
		Spec:          jb.spec,
		Error:         jb.errMsg,
		Created:       jb.created,
		CacheHit:      jb.cacheHit,
		CaptureSource: jb.source,
	}
	if !jb.started.IsZero() {
		t := jb.started
		v.Started = &t
	}
	if !jb.finished.IsZero() {
		t := jb.finished
		v.Finished = &t
	}
	if jb.state == stateDone || jb.state == stateFailed {
		v.Timing = &TimingView{
			CaptureSeconds: jb.timing.Capture.Seconds(),
			ReplaySeconds:  jb.timing.Replay.Seconds(),
			ReplayWorkers:  jb.timing.ReplayWorkers,
		}
	}
	if jb.outcome != nil && jb.outcome.res != nil {
		v.Result = resultView(jb.outcome.res, jb.gran)
	}
	if jb.outcome != nil && jb.outcome.multi != nil {
		mv := &ResultView{Cycles: jb.outcome.multi.TotalCycles}
		for i, res := range jb.outcome.multi.Cores {
			cv := resultView(res, jb.gran)
			cv.Bench = jb.spec.Cores[i].Bench
			mv.Cores = append(mv.Cores, cv)
		}
		v.Result = mv
	}
	return v
}

func resultView(res *tip.Result, gran profile.Granularity) *ResultView {
	stack := res.Stack()
	norm := stack.Normalized()
	rv := &ResultView{
		Cycles:         res.Stats.Cycles,
		Committed:      res.Stats.Committed,
		IPC:            res.Stats.IPC(),
		SampleInterval: res.SampleInterval,
		Class:          stack.Class(),
		CycleStack:     map[string]float64{},
		Errors:         map[string]float64{},
		Profiles:       map[string][]FuncShare{},
	}
	for i, frac := range norm {
		rv.CycleStack[profile.Category(i).String()] = frac
	}
	for k := range res.Sampled {
		rv.Errors[k.String()] = res.Err(k, gran)
	}
	if sr := res.Sampling; sr != nil {
		rv.Sampling = &SamplingView{
			Windows:          sr.Windows,
			MeasuredCycles:   sr.MeasuredCycles,
			DetailedFraction: sr.DetailedFraction(),
			FFInstructions:   sr.FFInstructions,
			WindowWorkers:    sr.WindowWorkers,
			SweepSeconds:     sr.SweepSeconds,
			MeasureSeconds:   sr.MeasureSeconds,
		}
	}
	rv.Profiles["Oracle"] = funcShares(res.Oracle.Profile)
	for k, sp := range res.Sampled {
		rv.Profiles[k.String()] = funcShares(sp.Profile)
	}
	return rv
}

// funcShares aggregates a profile to function granularity (application code
// only, like the paper's evaluation).
func funcShares(p *profile.Profile) []FuncShare {
	agg := p.Aggregate(profile.GranFunction, true)
	total := 0.0
	for _, v := range agg {
		total += v
	}
	out := []FuncShare{}
	for i, v := range agg {
		if v == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = v / total
		}
		out = append(out, FuncShare{Name: p.Prog.Funcs[i].Name, Cycles: v, Share: share})
	}
	return out
}
