package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/trace"
)

// coreConfigHash fingerprints a core configuration for capture-cache keying:
// two configurations with the same rendered parameter set produce
// byte-identical traces, so their captures are interchangeable.
func coreConfigHash(cfg cpu.Config) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%+v", cfg)))
	return hex.EncodeToString(h[:8])
}

// captureKey names one cached capture: the full simulation input. Single-core
// captures are keyed by (bench, seed, scale, core-config hash); multicore
// captures leave those empty and carry a hash of the whole core set instead,
// so pre-multicore spill sidecars (no "cores" field) keep their old ids.
type captureKey struct {
	Bench string `json:"bench,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	Scale uint64 `json:"scale,omitempty"`
	Core  string `json:"core"`
	Cores string `json:"cores,omitempty"`
}

// coreSetHash fingerprints a multicore job's ordered core set. Order matters:
// the lockstep system arbitrates same-cycle shared-LLC accesses in core
// order, so swapped placements produce different captures.
func coreSetHash(cores []CoreJobSpec) string {
	var b strings.Builder
	for _, c := range cores {
		fmt.Fprintf(&b, "%s:%d:%d,", c.Bench, c.Seed, c.Scale)
	}
	h := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(h[:8])
}

// id is the map key and spill-file basename. The hex hashes keep it
// filesystem-safe; bench names are lowercase alphanumerics.
func (k captureKey) id() string {
	if k.Cores != "" {
		return fmt.Sprintf("cores-%s-%s", k.Cores, k.Core)
	}
	return fmt.Sprintf("%s-%d-%d-%s", k.Bench, k.Seed, k.Scale, k.Core)
}

// cacheEntry is one cached capture plus the per-core stats of the run that
// produced it (needed to calibrate replays; single-core captures hold one
// element). Entries are refcounted: replays hold a ref while streaming, and
// an entry evicted under load is only Closed once the last ref drops.
type cacheEntry struct {
	key     captureKey
	capture *trace.Capture
	stats   []cpu.Stats
	bytes   uint64
	refs    int
	dead    bool
	elem    *list.Element
}

// captureFn performs the cycle-level simulation on a cache miss, returning
// one Stats per core (length 1 for single-core captures).
type captureFn func(ctx context.Context) (*trace.Capture, []cpu.Stats, error)

// captureCache is the LRU capture cache with singleflight capture dedup:
// repeated jobs for the same (bench, seed, scale, core) skip the simulation
// entirely and only replay, and concurrent identical misses perform exactly
// one simulation between them.
type captureCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   uint64
	bytes      uint64
	ll         *list.List // front = most recently used
	byKey      map[string]*cacheEntry
	flights    map[string]chan struct{} // closed when the leader finishes
	hits       uint64
	misses     uint64
	warnf      func(format string, args ...any)
}

func newCaptureCache(maxEntries int, maxBytes uint64, warnf func(string, ...any)) *captureCache {
	if warnf == nil {
		warnf = log.Printf
	}
	return &captureCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		byKey:      map[string]*cacheEntry{},
		flights:    map[string]chan struct{}{},
		warnf:      warnf,
	}
}

// getOrCapture returns a ref-held entry for key, running fn on a miss. When
// a concurrent caller is already capturing the same key, it waits for that
// flight and reuses the result (counted as a hit: the simulation was
// shared). The caller must release() the entry when done replaying.
func (c *captureCache) getOrCapture(ctx context.Context, key captureKey, fn captureFn) (ent *cacheEntry, hit bool, err error) {
	id := key.id()
	for {
		c.mu.Lock()
		if ent := c.byKey[id]; ent != nil {
			ent.refs++
			c.ll.MoveToFront(ent.elem)
			c.hits++
			c.mu.Unlock()
			return ent, true, nil
		}
		if fl := c.flights[id]; fl != nil {
			c.mu.Unlock()
			// Another job is simulating this key right now; wait and
			// re-check. If the leader fails (or is cancelled), the retry
			// loop promotes this waiter to leader.
			select {
			case <-fl:
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		// Miss: become the capture leader.
		fl := make(chan struct{})
		c.flights[id] = fl
		c.misses++
		c.mu.Unlock()

		capt, stats, err := fn(ctx)

		c.mu.Lock()
		delete(c.flights, id)
		if err != nil {
			c.mu.Unlock()
			close(fl)
			return nil, false, err
		}
		ent := &cacheEntry{
			key:     key,
			capture: capt,
			stats:   stats,
			bytes:   capt.Bytes(),
			refs:    1,
		}
		c.insertLocked(ent)
		c.mu.Unlock()
		close(fl)
		return ent, false, nil
	}
}

// insertLocked adds ent at the LRU front and evicts past capacity. Callers
// hold c.mu.
func (c *captureCache) insertLocked(ent *cacheEntry) {
	ent.elem = c.ll.PushFront(ent)
	c.byKey[ent.key.id()] = ent
	c.bytes += ent.bytes
	for c.ll.Len() > 1 &&
		((c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		oldest := c.ll.Back()
		c.evictLocked(oldest.Value.(*cacheEntry))
	}
}

// evictLocked unlinks ent; the capture closes now or, if replays still hold
// refs, when the last one releases.
func (c *captureCache) evictLocked(ent *cacheEntry) {
	c.ll.Remove(ent.elem)
	delete(c.byKey, ent.key.id())
	c.bytes -= ent.bytes
	ent.dead = true
	if ent.refs == 0 {
		ent.capture.Close()
	}
}

// release drops one ref taken by getOrCapture.
func (c *captureCache) release(ent *cacheEntry) {
	c.mu.Lock()
	ent.refs--
	if ent.dead && ent.refs == 0 {
		ent.capture.Close()
	}
	c.mu.Unlock()
}

// counters returns (hits, misses, entries, bytes) for /metrics.
func (c *captureCache) counters() (hits, misses uint64, entries int, bytes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len(), c.bytes
}

// spillMeta is the JSON sidecar persisted next to each spilled capture.
// Single-core captures keep their stats in Stats so pre-multicore sidecars
// round-trip unchanged; multicore captures add CoreStats (one per core).
type spillMeta struct {
	Key       captureKey  `json:"key"`
	Records   uint64      `json:"records"`
	Cycles    uint64      `json:"cycles"`
	Stats     cpu.Stats   `json:"stats"`
	CoreStats []cpu.Stats `json:"core_stats,omitempty"`
}

// persist writes every live entry to dir as <id>.trc (the encoded stream,
// exactly what Capture.WriteTo emits) plus <id>.json (the sidecar), so a
// restarted daemon starts warm. Entries are written most-recently-used
// first so a truncated persist keeps the hottest captures.
func (c *captureCache) persist(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c.mu.Lock()
	ents := make([]*cacheEntry, 0, c.ll.Len())
	for e := c.ll.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*cacheEntry)
		ent.refs++ // pin against concurrent eviction while writing
		ents = append(ents, ent)
	}
	c.mu.Unlock()
	var firstErr error
	for _, ent := range ents {
		if err := writeSpill(dir, ent); err != nil && firstErr == nil {
			firstErr = err
		}
		c.release(ent)
	}
	return firstErr
}

func writeSpill(dir string, ent *cacheEntry) error {
	id := ent.key.id()
	trcPath := filepath.Join(dir, id+".trc")
	f, err := os.Create(trcPath)
	if err != nil {
		return err
	}
	if _, err := ent.capture.WriteTo(f); err != nil {
		f.Close()
		os.Remove(trcPath)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(trcPath)
		return err
	}
	meta := spillMeta{
		Key:     ent.key,
		Records: ent.capture.Records(),
		Cycles:  ent.capture.Cycles(),
	}
	if len(ent.stats) == 1 && ent.key.Cores == "" {
		meta.Stats = ent.stats[0]
	} else {
		meta.CoreStats = ent.stats
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".json"), append(data, '\n'), 0o644)
}

// load restores persisted captures from dir (written by persist). Corrupted
// or unreadable entries are skipped with a logged warning — the spill
// directory is a cache, not a durability contract, so a bad entry must
// never fail startup.
func (c *captureCache) load(dir string) error {
	names, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var metas []string
	for _, de := range names {
		if strings.HasSuffix(de.Name(), ".json") {
			metas = append(metas, de.Name())
		}
	}
	sort.Strings(metas)
	for _, name := range metas {
		var meta spillMeta
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			c.warnf("tipd: spill sidecar %s: unreadable, skipping (%v)", name, err)
			continue
		}
		if err := json.Unmarshal(data, &meta); err != nil {
			c.warnf("tipd: spill sidecar %s: corrupted, skipping (%v)", name, err)
			continue
		}
		enc, err := os.ReadFile(filepath.Join(dir, meta.Key.id()+".trc"))
		if err != nil {
			c.warnf("tipd: spill entry %s: missing payload, skipping (%v)", meta.Key.id(), err)
			continue
		}
		capt, err := trace.NewCaptureFromEncoded(enc, meta.Records, meta.Cycles)
		if err != nil {
			c.warnf("tipd: spill entry %s: undecodable payload, skipping (%v)", meta.Key.id(), err)
			continue
		}
		stats := meta.CoreStats
		if len(stats) == 0 {
			stats = []cpu.Stats{meta.Stats}
		}
		c.mu.Lock()
		if _, dup := c.byKey[meta.Key.id()]; dup {
			c.mu.Unlock()
			continue
		}
		c.insertLocked(&cacheEntry{
			key:     meta.Key,
			capture: capt,
			stats:   stats,
			bytes:   capt.Bytes(),
		})
		c.mu.Unlock()
	}
	return nil
}
