package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/fleet"
)

// fetchPprof downloads a job's TIP pprof payload.
func fetchPprof(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/pprof?profiler=TIP")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof: status %d (%v)", resp.StatusCode, err)
	}
	return data
}

// TestStoreServesWarmAcrossNodes is the fleet's core serving claim: a key
// captured (simulated) on node A is served warm on node B straight from the
// shared store — no second simulation anywhere — and once both nodes are
// warm, their pprof payloads for the key are bit-identical.
func TestStoreServesWarmAcrossNodes(t *testing.T) {
	storeDir := t.TempDir()
	stA, err := fleet.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := fleet.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	sA, tsA := newTestServer(t, Config{Workers: 1, Store: stA})
	sB, tsB := newTestServer(t, Config{Workers: 1, Store: stB})

	runs0 := cpu.RunsStarted()

	// Cold on the whole fleet: node A simulates and publishes.
	vA, code := submit(t, tsA, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit to A: status %d", code)
	}
	doneA := waitTerminal(t, tsA, vA.ID)
	if doneA.State != stateDone || doneA.CaptureSource != "simulated" {
		t.Fatalf("A: state=%s source=%q (%s), want done/simulated",
			doneA.State, doneA.CaptureSource, doneA.Error)
	}
	if _, _, puts := stA.Counters(); puts != 1 {
		t.Fatalf("A published %d captures, want 1", puts)
	}

	// Same key on node B: warm from the store, no simulation.
	vB, code := submit(t, tsB, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit to B: status %d", code)
	}
	doneB := waitTerminal(t, tsB, vB.ID)
	if doneB.State != stateDone || doneB.CaptureSource != "store" {
		t.Fatalf("B: state=%s source=%q (%s), want done/store",
			doneB.State, doneB.CaptureSource, doneB.Error)
	}
	if doneB.CacheHit {
		t.Fatal("store pull misreported as a local cache hit")
	}
	if got := cpu.RunsStarted() - runs0; got != 1 {
		t.Fatalf("fleet ran %d simulations for one key, want exactly 1", got)
	}
	if sB.met.simulationCount() != 0 || sA.met.simulationCount() != 1 {
		t.Fatalf("simulation counters A=%d B=%d, want 1/0",
			sA.met.simulationCount(), sB.met.simulationCount())
	}

	// Warm profiles are bit-identical from any node. (Node A's first
	// answer came from the fused pilot-calibrated run, so compare a warm
	// rerun on A — exact calibration, like B's replay — against B.)
	vA2, _ := submit(t, tsA, testSpec())
	doneA2 := waitTerminal(t, tsA, vA2.ID)
	if doneA2.State != stateDone || doneA2.CaptureSource != "cache" {
		t.Fatalf("A rerun: state=%s source=%q", doneA2.State, doneA2.CaptureSource)
	}
	pA := fetchPprof(t, tsA, vA2.ID)
	pB := fetchPprof(t, tsB, vB.ID)
	if !bytes.Equal(pA, pB) {
		t.Fatalf("warm pprof differs across nodes: %d vs %d bytes", len(pA), len(pB))
	}

	// Both nodes expose the store traffic in /metrics.
	resp, err := http.Get(tsB.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"tipd_store_hits_total 1\n", "tipd_simulations_total 0\n"} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("B /metrics missing %q:\n%s", want, prom)
		}
	}
}

// TestSaturation429Jitter pins the retry-storm fix: the saturated response
// carries a jittered retry_after_ms in [500, 1500) and a Retry-After header
// that rounds it up to whole seconds, plus the queue state a coordinator
// uses as its steal signal.
func TestSaturation429Jitter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release, started := blockingExecute(s)
	defer release()

	if _, code := submit(t, ts, testSpec()); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started")
	}
	if _, code := submit(t, ts, testSpec()); code != http.StatusAccepted {
		t.Fatalf("second submit: status %d", code)
	}

	body, _ := json.Marshal(testSpec())
	for i := 0; i < 8; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var rej struct {
			RetryAfterMS int `json:"retry_after_ms"`
			QueueDepth   int `json:"queue_depth"`
			QueueCap     int `json:"queue_cap"`
		}
		err = json.NewDecoder(resp.Body).Decode(&rej)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests || err != nil {
			t.Fatalf("saturated submit %d: status %d (%v)", i, resp.StatusCode, err)
		}
		if rej.RetryAfterMS < 500 || rej.RetryAfterMS >= 1500 {
			t.Fatalf("retry_after_ms = %d, want in [500, 1500)", rej.RetryAfterMS)
		}
		if rej.QueueCap != 1 || rej.QueueDepth != 1 {
			t.Fatalf("queue state = %d/%d, want 1/1", rej.QueueDepth, rej.QueueCap)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra != (rej.RetryAfterMS+999)/1000 {
			t.Fatalf("Retry-After %q does not round up retry_after_ms %d",
				resp.Header.Get("Retry-After"), rej.RetryAfterMS)
		}
	}
}

// warnCollector is a threadsafe Config.Logf sink.
type warnCollector struct {
	mu   sync.Mutex
	msgs []string
}

func (wc *warnCollector) logf(format string, args ...any) {
	wc.mu.Lock()
	wc.msgs = append(wc.msgs, fmt.Sprintf(format, args...))
	wc.mu.Unlock()
}

func (wc *warnCollector) contains(sub string) bool {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	for _, m := range wc.msgs {
		if strings.Contains(m, sub) {
			return true
		}
	}
	return false
}

// TestMulticoreSpillRestartRoundTrip spills a multicore (TIPTRC3 core-tagged)
// capture across a restart and checks (a) the restarted daemon serves the
// core set warm with per-core stats intact, and (b) a corrupted sidecar is
// skipped with a logged warning instead of failing startup.
func TestMulticoreSpillRestartRoundTrip(t *testing.T) {
	spillDir := t.TempDir()
	spec := JobSpec{
		Cores: []CoreJobSpec{
			{Bench: "mcf", Scale: testScale},
			{Bench: "x264", Scale: testScale},
		},
		Profilers:     []string{"TIP"},
		TargetSamples: 256,
	}

	// First daemon: simulate, then drain so the capture spills.
	s1, ts1 := newTestServer(t, Config{Workers: 1, SpillDir: spillDir})
	v, code := submit(t, ts1, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if done := waitTerminal(t, ts1, v.ID); done.State != stateDone {
		t.Fatalf("multicore job finished %s (%s)", done.State, done.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// The sidecar must carry the v3 multicore shape: a "cores" key and one
	// stats entry per core.
	sidecars, err := filepath.Glob(filepath.Join(spillDir, "cores-*.json"))
	if err != nil || len(sidecars) != 1 {
		t.Fatalf("multicore sidecars = %v (%v), want exactly 1", sidecars, err)
	}
	raw, err := os.ReadFile(sidecars[0])
	if err != nil {
		t.Fatal(err)
	}
	var meta spillMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Key.Cores == "" || len(meta.CoreStats) != 2 {
		t.Fatalf("sidecar key=%+v core_stats=%d, want a 2-core entry", meta.Key, len(meta.CoreStats))
	}

	// Restart: the same core set must be a warm hit with no simulation.
	runs0 := cpu.RunsStarted()
	_, ts2 := newTestServer(t, Config{Workers: 1, SpillDir: spillDir})
	v2, code := submit(t, ts2, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit after restart: status %d", code)
	}
	done2 := waitTerminal(t, ts2, v2.ID)
	if done2.State != stateDone || !done2.CacheHit || done2.CaptureSource != "cache" {
		t.Fatalf("restarted daemon: state=%s hit=%v source=%q (%s)",
			done2.State, done2.CacheHit, done2.CaptureSource, done2.Error)
	}
	if done2.Result == nil || len(done2.Result.Cores) != 2 {
		t.Fatalf("restored multicore result = %+v", done2.Result)
	}
	if got := cpu.RunsStarted() - runs0; got != 0 {
		t.Fatalf("restored entry still simulated %d times", got)
	}

	// Corrupt the sidecar: the next restart must skip the entry with a
	// warning, not fail.
	if err := os.WriteFile(sidecars[0], []byte(`{"key":`), 0o644); err != nil {
		t.Fatal(err)
	}
	wc := &warnCollector{}
	s3, err := New(Config{Workers: 1, SpillDir: spillDir, Logf: wc.logf})
	if err != nil {
		t.Fatalf("startup failed on a corrupted sidecar: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Drop the spill dir first so shutdown doesn't re-persist over the
		// corruption we just checked.
		s3.cfg.SpillDir = ""
		s3.Shutdown(ctx)
	}()
	if !wc.contains("corrupted") {
		t.Fatalf("no corruption warning logged: %v", wc.msgs)
	}
	if _, _, entries, _ := s3.cache.counters(); entries != 0 {
		t.Fatalf("corrupted entry loaded anyway (%d entries)", entries)
	}
}

// TestShutdownTimeoutAbortsInFlight pins the drain bound: a wedged job
// cannot hold Shutdown past its context deadline — the job's context is
// cancelled and Shutdown returns the deadline error promptly.
func TestShutdownTimeoutAbortsInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// The job ignores release and only exits on ctx cancellation — a stand-
	// in for a wedged simulation that only the drain bound can stop.
	started := make(chan string, 1)
	s.execute = func(ctx context.Context, jb *job) (*jobOutcome, error) {
		started <- jb.id
		<-ctx.Done()
		return nil, ctx.Err()
	}

	v, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err := s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("bounded drain took %s", elapsed)
	}
	if got, _ := getJob(t, ts, v.ID); got.State != stateCanceled {
		t.Fatalf("aborted job state = %s, want canceled", got.State)
	}
}

// TestHealthzFleetSignal checks /healthz carries the fields the coordinator
// and humans share: queue state, cache occupancy, drain flag, and the
// store counters when a store is configured.
func TestHealthzFleetSignal(t *testing.T) {
	st, err := fleet.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 3, Store: st})

	v, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitTerminal(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Draining || h.Workers != 2 || h.QueueCap != 3 {
		t.Fatalf("healthz basics = %+v", h)
	}
	if h.CacheEntries != 1 || h.CacheBytes == 0 {
		t.Fatalf("healthz cache occupancy = %d entries / %d bytes, want 1 entry", h.CacheEntries, h.CacheBytes)
	}
	if h.Simulations != 1 || !h.StoreEnabled || h.StorePuts != 1 {
		t.Fatalf("healthz fleet counters = %+v", h)
	}
	if h.CoreHash == "" {
		t.Fatal("healthz missing core_hash")
	}

	// Drain state shows up in the same signal.
	s.StartDrain()
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var h2 Health
	if err := json.NewDecoder(resp2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || !h2.Draining {
		t.Fatalf("draining healthz: status %d, %+v (old probes need the plain 200)", resp2.StatusCode, h2)
	}
}
