package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// histBuckets are the shared latency buckets (seconds) for the capture and
// replay phase histograms: captures of scaled benchmarks land in the
// sub-second range, full-scale suites in the tens of seconds.
var histBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// histogram is a fixed-bucket Prometheus histogram.
type histogram struct {
	counts []uint64 // cumulative at write time; stored per-bucket here
	sum    float64
	count  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(histBuckets))}
}

func (h *histogram) observe(v float64) {
	for i, ub := range histBuckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
}

// write renders the histogram in Prometheus text exposition format.
func (h *histogram) write(w io.Writer, name string) {
	cum := uint64(0)
	for i, ub := range histBuckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, ub, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

// metrics aggregates the daemon's counters. Gauges (queue depth, running
// jobs, cache occupancy) are read live from server state at scrape time.
type metrics struct {
	mu             sync.Mutex
	jobsTotal      map[string]uint64 // by terminal state
	accepted       uint64
	rejected       uint64 // 429 admission rejections
	captureSeconds *histogram
	replaySeconds  *histogram
	simCycles      uint64 // cycles simulated by cache-miss captures
	replayCycles   uint64 // cycles streamed through replays
	simulations    uint64 // full cycle-level capture simulations performed
	lastCPS        float64
}

func newMetrics() *metrics {
	return &metrics{
		jobsTotal:      map[string]uint64{},
		captureSeconds: newHistogram(),
		replaySeconds:  newHistogram(),
	}
}

func (m *metrics) jobAccepted() {
	m.mu.Lock()
	m.accepted++
	m.mu.Unlock()
}

func (m *metrics) jobRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// simulationRan counts one full cycle-level capture simulation — the thing
// the capture cache and the shared store exist to avoid. The fleet CI gate
// asserts a repeated key never moves this counter on any node.
func (m *metrics) simulationRan() {
	m.mu.Lock()
	m.simulations++
	m.mu.Unlock()
}

func (m *metrics) simulationCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.simulations
}

// jobFinished records a terminal transition. captureS/replayS are the phase
// durations (zero for jobs that never ran), cycles the simulated cycle count
// of the run, simulated whether the capture phase actually simulated (cache
// miss) rather than hit the cache.
func (m *metrics) jobFinished(state string, captureS, replayS float64, cycles uint64, simulated bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsTotal[state]++
	if state != stateDone {
		return
	}
	m.captureSeconds.observe(captureS)
	m.replaySeconds.observe(replayS)
	if simulated {
		m.simCycles += cycles
	}
	m.replayCycles += cycles
	if total := captureS + replayS; total > 0 {
		m.lastCPS = float64(cycles) / total
	}
}

// gauges is the live server state sampled at scrape time.
type gauges struct {
	queueDepth   int
	running      int
	workers      int
	draining     bool
	cacheHits    uint64
	cacheMisses  uint64
	cacheEntries int
	cacheBytes   uint64
	store        bool
	storeHits    uint64
	storeMisses  uint64
	storePuts    uint64
}

// writeProm renders the full exposition page.
func (m *metrics) writeProm(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP tipd_jobs_total Terminal job transitions by state.\n")
	fmt.Fprintf(w, "# TYPE tipd_jobs_total counter\n")
	states := make([]string, 0, len(m.jobsTotal))
	for s := range m.jobsTotal {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "tipd_jobs_total{state=%q} %d\n", s, m.jobsTotal[s])
	}

	fmt.Fprintf(w, "# HELP tipd_jobs_accepted_total Jobs admitted to the queue.\n")
	fmt.Fprintf(w, "# TYPE tipd_jobs_accepted_total counter\n")
	fmt.Fprintf(w, "tipd_jobs_accepted_total %d\n", m.accepted)
	fmt.Fprintf(w, "# HELP tipd_jobs_rejected_total Submissions refused with 429 (queue saturated).\n")
	fmt.Fprintf(w, "# TYPE tipd_jobs_rejected_total counter\n")
	fmt.Fprintf(w, "tipd_jobs_rejected_total %d\n", m.rejected)

	fmt.Fprintf(w, "# HELP tipd_queue_depth Jobs waiting in the admission queue.\n")
	fmt.Fprintf(w, "# TYPE tipd_queue_depth gauge\n")
	fmt.Fprintf(w, "tipd_queue_depth %d\n", g.queueDepth)
	fmt.Fprintf(w, "# HELP tipd_jobs_running Jobs currently executing on the worker pool.\n")
	fmt.Fprintf(w, "# TYPE tipd_jobs_running gauge\n")
	fmt.Fprintf(w, "tipd_jobs_running %d\n", g.running)
	fmt.Fprintf(w, "# HELP tipd_workers Size of the worker pool.\n")
	fmt.Fprintf(w, "# TYPE tipd_workers gauge\n")
	fmt.Fprintf(w, "tipd_workers %d\n", g.workers)
	fmt.Fprintf(w, "# HELP tipd_draining Whether the daemon is shutting down.\n")
	fmt.Fprintf(w, "# TYPE tipd_draining gauge\n")
	fmt.Fprintf(w, "tipd_draining %d\n", boolGauge(g.draining))

	fmt.Fprintf(w, "# HELP tipd_capture_cache_hits_total Jobs served from a cached capture (including singleflight-shared simulations).\n")
	fmt.Fprintf(w, "# TYPE tipd_capture_cache_hits_total counter\n")
	fmt.Fprintf(w, "tipd_capture_cache_hits_total %d\n", g.cacheHits)
	fmt.Fprintf(w, "# HELP tipd_capture_cache_misses_total Jobs that had to simulate.\n")
	fmt.Fprintf(w, "# TYPE tipd_capture_cache_misses_total counter\n")
	fmt.Fprintf(w, "tipd_capture_cache_misses_total %d\n", g.cacheMisses)
	fmt.Fprintf(w, "# HELP tipd_capture_cache_hit_ratio Fraction of capture lookups served from cache.\n")
	fmt.Fprintf(w, "# TYPE tipd_capture_cache_hit_ratio gauge\n")
	ratio := 0.0
	if total := g.cacheHits + g.cacheMisses; total > 0 {
		ratio = float64(g.cacheHits) / float64(total)
	}
	fmt.Fprintf(w, "tipd_capture_cache_hit_ratio %g\n", ratio)
	fmt.Fprintf(w, "# HELP tipd_capture_cache_entries Captures currently cached.\n")
	fmt.Fprintf(w, "# TYPE tipd_capture_cache_entries gauge\n")
	fmt.Fprintf(w, "tipd_capture_cache_entries %d\n", g.cacheEntries)
	fmt.Fprintf(w, "# HELP tipd_capture_cache_bytes Encoded bytes held by the capture cache.\n")
	fmt.Fprintf(w, "# TYPE tipd_capture_cache_bytes gauge\n")
	fmt.Fprintf(w, "tipd_capture_cache_bytes %d\n", g.cacheBytes)

	fmt.Fprintf(w, "# HELP tipd_simulations_total Full cycle-level capture simulations performed (jobs not served by cache or store).\n")
	fmt.Fprintf(w, "# TYPE tipd_simulations_total counter\n")
	fmt.Fprintf(w, "tipd_simulations_total %d\n", m.simulations)
	if g.store {
		fmt.Fprintf(w, "# HELP tipd_store_hits_total Capture-cache misses served from the shared store.\n")
		fmt.Fprintf(w, "# TYPE tipd_store_hits_total counter\n")
		fmt.Fprintf(w, "tipd_store_hits_total %d\n", g.storeHits)
		fmt.Fprintf(w, "# HELP tipd_store_misses_total Shared-store lookups that found nothing usable.\n")
		fmt.Fprintf(w, "# TYPE tipd_store_misses_total counter\n")
		fmt.Fprintf(w, "tipd_store_misses_total %d\n", g.storeMisses)
		fmt.Fprintf(w, "# HELP tipd_store_puts_total Captures published to the shared store.\n")
		fmt.Fprintf(w, "# TYPE tipd_store_puts_total counter\n")
		fmt.Fprintf(w, "tipd_store_puts_total %d\n", g.storePuts)
	}

	fmt.Fprintf(w, "# HELP tipd_capture_seconds Capture-phase duration of completed jobs (cache hits observe ~0).\n")
	fmt.Fprintf(w, "# TYPE tipd_capture_seconds histogram\n")
	m.captureSeconds.write(w, "tipd_capture_seconds")
	fmt.Fprintf(w, "# HELP tipd_replay_seconds Replay-phase duration of completed jobs.\n")
	fmt.Fprintf(w, "# TYPE tipd_replay_seconds histogram\n")
	m.replaySeconds.write(w, "tipd_replay_seconds")

	fmt.Fprintf(w, "# HELP tipd_simulated_cycles_total Core cycles simulated by cache-miss captures.\n")
	fmt.Fprintf(w, "# TYPE tipd_simulated_cycles_total counter\n")
	fmt.Fprintf(w, "tipd_simulated_cycles_total %d\n", m.simCycles)
	fmt.Fprintf(w, "# HELP tipd_replayed_cycles_total Core cycles streamed through profiler replays.\n")
	fmt.Fprintf(w, "# TYPE tipd_replayed_cycles_total counter\n")
	fmt.Fprintf(w, "tipd_replayed_cycles_total %d\n", m.replayCycles)
	fmt.Fprintf(w, "# HELP tipd_cycles_per_second Simulated-cycle throughput of the most recent completed job.\n")
	fmt.Fprintf(w, "# TYPE tipd_cycles_per_second gauge\n")
	fmt.Fprintf(w, "tipd_cycles_per_second %g\n", m.lastCPS)
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
