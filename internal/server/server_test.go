package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/pprofenc"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/workload"
)

// testScale keeps simulated workloads small enough that a full
// capture+replay job completes in well under a second.
const testScale = 20_000

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec JobSpec) (JobView, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) (JobView, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

// waitTerminal polls a job until it leaves queued/running.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, code := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if v.State != stateQueued && v.State != stateRunning {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobView{}
}

func testSpec() JobSpec {
	return JobSpec{
		Bench:         "x264",
		Seed:          1,
		Scale:         testScale,
		Profilers:     []string{"TIP"},
		TargetSamples: 256,
	}
}

func kindByName(t *testing.T, name string) profiler.Kind {
	t.Helper()
	for _, k := range profiler.AllKinds() {
		if k.String() == name {
			return k
		}
	}
	t.Fatalf("no profiler kind %q", name)
	return 0
}

// TestJobLifecycle drives the full submit → poll → fetch-pprof → delete
// flow against a real simulation, and checks the daemon's pprof payload is
// bit-for-bit identical to the batch pipeline's encoding of the same run.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	v, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if v.ID == "" || (v.State != stateQueued && v.State != stateRunning) {
		t.Fatalf("submit returned %+v", v)
	}

	done := waitTerminal(t, ts, v.ID)
	if done.State != stateDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}
	if done.CacheHit {
		t.Fatal("first job for a key must be a cache miss")
	}
	if done.Result == nil {
		t.Fatal("done job has no result")
	}
	if done.Result.Cycles == 0 || done.Result.SampleInterval == 0 {
		t.Fatalf("implausible result: %+v", done.Result)
	}
	if len(done.Result.Profiles["Oracle"]) == 0 || len(done.Result.Profiles["TIP"]) == 0 {
		t.Fatalf("missing profiles: have %v", len(done.Result.Profiles))
	}
	if _, ok := done.Result.Errors["TIP"]; !ok {
		t.Fatalf("missing TIP error: %v", done.Result.Errors)
	}
	if done.Timing == nil || done.Timing.ReplayWorkers != 2 {
		t.Fatalf("timing = %+v, want replay_workers 2", done.Timing)
	}

	// The listing includes the job (without the heavy result payload).
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []JobView `json:"jobs"`
	}
	json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != v.ID || listing.Jobs[0].Result != nil {
		t.Fatalf("listing = %+v", listing)
	}

	// pprof export must match the batch pipeline bit-for-bit.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/pprof?profiler=TIP")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(got) == 0 {
		t.Fatalf("pprof: status %d, %d bytes", resp.StatusCode, len(got))
	}

	spec := testSpec()
	w, err := workload.LoadScaled(spec.Bench, spec.Seed, spec.Scale)
	if err != nil {
		t.Fatal(err)
	}
	rc := tip.DefaultRunConfig()
	rc.Profilers = []profiler.Kind{kindByName(t, "TIP")}
	rc.TargetSamples = spec.TargetSamples
	rc.ReplayWorkers = 2
	res, err := tip.Run(w, rc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pprofenc.Encode(res.Sampled[kindByName(t, "TIP")].Profile,
		pprofenc.JobOptions(spec.Bench, spec.Seed, spec.Scale, "TIP", res.SampleInterval))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("daemon pprof (%d bytes) differs from batch encoding (%d bytes)", len(got), len(want))
	}

	// Oracle export works too; an unknown profiler is a client error.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/pprof?profiler=Oracle")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Oracle pprof: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/pprof?profiler=NCI")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pprof for profiler outside the job: status %d, want 400", resp.StatusCode)
	}

	// DELETE on a terminal job forgets it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete finished job: status %d", resp.StatusCode)
	}
	if _, code := getJob(t, ts, v.ID); code != http.StatusNotFound {
		t.Fatalf("deleted job still retrievable: status %d", code)
	}
}

// TestCacheSingleSimulation submits several identical jobs concurrently and
// asserts exactly one cycle-level simulation ran between them — the rest hit
// the capture cache (or joined the in-flight capture) and only replayed.
func TestCacheSingleSimulation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	const n = 4
	runs0 := cpu.RunsStarted()
	ids := make([]string, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, code := submit(t, ts, testSpec())
			if code != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, code)
				return
			}
			mu.Lock()
			ids[i] = v.ID
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	hits := 0
	for _, id := range ids {
		v := waitTerminal(t, ts, id)
		if v.State != stateDone {
			t.Fatalf("job %s finished %s (%s)", id, v.State, v.Error)
		}
		if v.CacheHit {
			hits++
		}
	}
	if got := cpu.RunsStarted() - runs0; got != 1 {
		t.Fatalf("%d identical jobs started %d simulations, want exactly 1", n, got)
	}
	if hits != n-1 {
		t.Fatalf("%d jobs reported cache hits, want %d", hits, n-1)
	}

	// The sharing is observable in /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"tipd_capture_cache_misses_total 1\n",
		fmt.Sprintf("tipd_capture_cache_hits_total %d\n", n-1),
		fmt.Sprintf("tipd_jobs_total{state=\"done\"} %d\n", n),
		fmt.Sprintf("tipd_jobs_accepted_total %d\n", n),
		"tipd_capture_seconds_count 4\n",
		"tipd_capture_cache_entries 1\n",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", prom)
	}
}

// TestSampledJobBypassesCache submits the same sampled spec twice and checks
// that neither run touches the capture cache: sampled runs produce no full
// trace to store, so both jobs must simulate (no cache hit, no cached
// entries) and both results must carry the sampling summary.
func TestSampledJobBypassesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	spec := testSpec()
	spec.Sampled = true
	spec.WindowCycles = 2048
	spec.WindowInterval = 8192
	spec.WarmupCycles = 1024
	for i := 0; i < 2; i++ {
		v, code := submit(t, ts, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		v = waitTerminal(t, ts, v.ID)
		if v.State != stateDone {
			t.Fatalf("job %d finished %s (%s)", i, v.State, v.Error)
		}
		if v.CacheHit {
			t.Errorf("sampled job %d reported a capture-cache hit", i)
		}
		if v.Result == nil || v.Result.Sampling == nil {
			t.Fatalf("job %d result missing sampling summary", i)
		}
		if v.Result.Sampling.Windows == 0 || v.Result.Sampling.DetailedFraction >= 1 {
			t.Errorf("job %d sampling summary implausible: %+v", i, v.Result.Sampling)
		}
		// Normalized defaults are echoed back in the spec.
		if v.Spec.WindowCycles != spec.WindowCycles || v.Spec.WindowInterval != spec.WindowInterval {
			t.Errorf("job %d spec geometry not echoed: %+v", i, v.Spec)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"tipd_capture_cache_misses_total 0\n",
		"tipd_capture_cache_hits_total 0\n",
		"tipd_capture_cache_entries 0\n",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// blockingExecute stubs the job runner with one that parks until released
// (or until the job's context is canceled).
func blockingExecute(s *Server) (release func(), started chan string) {
	started = make(chan string, 64)
	gate := make(chan struct{})
	s.execute = func(ctx context.Context, jb *job) (*jobOutcome, error) {
		started <- jb.id
		select {
		case <-gate:
			return &jobOutcome{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }, started
}

// TestSaturationRejects fills the worker pool and the queue, then checks the
// next submission is refused with 429 + Retry-After instead of blocking.
func TestSaturationRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release, started := blockingExecute(s)
	defer release()

	// First job occupies the single worker.
	a, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit a: status %d", code)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the first job")
	}

	// Second job fills the queue.
	b, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit b: status %d", code)
	}

	// Third submission must be rejected, not block.
	body, _ := json.Marshal(testSpec())
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	release()
	for _, id := range []string{a.ID, b.ID} {
		if v := waitTerminal(t, ts, id); v.State != stateDone {
			t.Fatalf("job %s finished %s after release", id, v.State)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "tipd_jobs_rejected_total 1\n") {
		t.Fatalf("/metrics does not count the rejection:\n%s", prom)
	}
}

// TestDeleteCancelsRunning cancels an in-flight job via its context and
// checks the worker pool survives to run the next job.
func TestDeleteCancelsRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release, started := blockingExecute(s)
	defer release()

	v, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("delete running job: status %d, want 202", resp.StatusCode)
	}
	if got := waitTerminal(t, ts, v.ID); got.State != stateCanceled {
		t.Fatalf("job finished %s, want canceled", got.State)
	}

	// The pool is not wedged: the next job still runs.
	w2, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("post-cancel submit: status %d", code)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker wedged after cancellation")
	}
	release()
	if got := waitTerminal(t, ts, w2.ID); got.State != stateDone {
		t.Fatalf("post-cancel job finished %s", got.State)
	}
}

// TestDeleteQueuedJob cancels a job before any worker picks it up.
func TestDeleteQueuedJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	release, started := blockingExecute(s)
	defer release()

	a, _ := submit(t, ts, testSpec())
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first job never started")
	}
	b, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit b: status %d", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+b.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var bv JobView
	json.NewDecoder(resp.Body).Decode(&bv)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || bv.State != stateCanceled {
		t.Fatalf("delete queued job: status %d state %s", resp.StatusCode, bv.State)
	}

	release()
	if got := waitTerminal(t, ts, a.ID); got.State != stateDone {
		t.Fatalf("job a finished %s", got.State)
	}
	// The canceled job must stay canceled even after the worker drains it.
	if got, _ := getJob(t, ts, b.ID); got.State != stateCanceled {
		t.Fatalf("queued-then-canceled job became %s", got.State)
	}
}

// TestExecuteCanceledContext checks the real runner honors cancellation: a
// canceled context aborts before (or during) the cycle-level simulation.
func TestExecuteCanceledContext(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	spec := testSpec()
	kinds, gran, err := spec.normalize()
	if err != nil {
		t.Fatal(err)
	}
	jb := &job{id: "jtest", spec: spec, kinds: kinds, gran: gran}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.executeJob(ctx, jb); err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("executeJob with canceled ctx: err = %v", err)
	}
}

// TestShutdownDrainsAndSpills submits work, shuts the daemon down gracefully,
// and checks (a) queued jobs finish rather than vanish, (b) new submissions
// are refused while draining, and (c) a fresh daemon pointed at the same
// spill directory serves the capture from disk without re-simulating.
func TestShutdownDrainsAndSpills(t *testing.T) {
	spill := t.TempDir()
	s, err := New(Config{Workers: 2, SpillDir: spill})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	b, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Both jobs drained to done.
	for _, id := range []string{a.ID, b.ID} {
		v, code := getJob(t, ts, id)
		if code != http.StatusOK || v.State != stateDone {
			t.Fatalf("after drain, job %s: status %d state %s (%s)", id, code, v.State, v.Error)
		}
	}
	// Submissions are refused while draining.
	if _, code := submit(t, ts, testSpec()); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", code)
	}

	// A fresh daemon restores the capture from the spill directory: the
	// same job is a cache hit with zero new simulations.
	runs0 := cpu.RunsStarted()
	s2, err := New(Config{Workers: 1, SpillDir: spill})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()

	v, code := submit(t, ts2, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit to warm daemon: status %d", code)
	}
	done := waitTerminal(t, ts2, v.ID)
	if done.State != stateDone {
		t.Fatalf("warm job finished %s (%s)", done.State, done.Error)
	}
	if !done.CacheHit {
		t.Fatal("warm-start job should hit the spilled capture")
	}
	if got := cpu.RunsStarted() - runs0; got != 0 {
		t.Fatalf("warm daemon ran %d simulations, want 0", got)
	}
}

// TestBadRequests exercises the client-error paths.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release, started := blockingExecute(s)
	defer release()

	for _, tc := range []struct {
		name string
		body string
	}{
		{"not json", "{"},
		{"missing bench", `{}`},
		{"unknown bench", `{"bench":"doom"}`},
		{"unknown profiler", `{"bench":"x264","profilers":["perf"]}`},
		{"bad granularity", `{"bench":"x264","granularity":"loop"}`},
		{"replay workers out of range", `{"bench":"x264","replay_workers":99}`},
		{"window_cycles without sampled", `{"bench":"x264","window_cycles":4096}`},
		{"window_interval without sampled", `{"bench":"x264","window_interval":65536}`},
		{"warmup_cycles without sampled", `{"bench":"x264","warmup_cycles":1024}`},
		{"window exceeds interval", `{"bench":"x264","sampled":true,"window_cycles":1048576,"window_interval":4096}`},
		{"warmup overflows gap", `{"bench":"x264","sampled":true,"window_cycles":4096,"window_interval":8192,"warmup_cycles":8192}`},
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	if _, code := getJob(t, ts, "j99999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j99999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete unknown job: status %d, want 404", resp.StatusCode)
	}

	// pprof for a job that is not done is a conflict.
	v, _ := submit(t, ts, testSpec())
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/pprof")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("pprof of running job: status %d, want 409", resp.StatusCode)
	}
	release()
	waitTerminal(t, ts, v.ID)
}

// TestHealthz sanity-checks the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var h struct {
		OK      bool `json:"ok"`
		Workers int  `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Workers != 1 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestConfigRejectsPartialCore is the regression test for the fill bug that
// keyed the "use the default core" decision on Core.FetchWidth alone: a
// partially-populated config (FetchWidth set, everything else zero) was
// accepted silently and panicked the first worker that built a core. New
// must reject it up front.
func TestConfigRejectsPartialCore(t *testing.T) {
	cfg := Config{Workers: 1}
	cfg.Core.FetchWidth = 8
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a partially-populated core config")
	} else if !strings.Contains(err.Error(), "core config") {
		t.Fatalf("err = %v, want a core config rejection", err)
	}

	// A fully zero core config still selects the Table 1 default...
	s, _ := newTestServer(t, Config{Workers: 1})
	if s.cfg.Core.FetchWidth != cpu.DefaultConfig().FetchWidth {
		t.Fatalf("zero core config not defaulted: %+v", s.cfg.Core)
	}
	// ...and an explicit complete config passes validation unchanged.
	custom := cpu.DefaultConfig()
	custom.ROBEntries = 64
	s2, _ := newTestServer(t, Config{Workers: 1, Core: custom})
	if s2.cfg.Core.ROBEntries != 64 {
		t.Fatalf("valid custom core config was rewritten: %+v", s2.cfg.Core)
	}
}

// TestFusedMissReportsReplayOnly checks a cache-miss job runs the fused
// streaming path: simulation and replay overlap, so the job reports all its
// wall-clock as replay and zero as a separate capture phase, while a
// subsequent hit reports a capture phase of ~0 and a real replay.
func TestFusedMissReportsReplayOnly(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	v, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	miss := waitTerminal(t, ts, v.ID)
	if miss.State != stateDone || miss.CacheHit {
		t.Fatalf("first job: state=%s hit=%v (%s)", miss.State, miss.CacheHit, miss.Error)
	}
	if miss.Timing == nil || miss.Timing.CaptureSeconds != 0 || miss.Timing.ReplaySeconds <= 0 {
		t.Fatalf("fused miss timing = %+v, want capture 0 and replay > 0", miss.Timing)
	}

	v2, code := submit(t, ts, testSpec())
	if code != http.StatusAccepted {
		t.Fatalf("second submit: status %d", code)
	}
	hit := waitTerminal(t, ts, v2.ID)
	if hit.State != stateDone || !hit.CacheHit {
		t.Fatalf("second job: state=%s hit=%v (%s)", hit.State, hit.CacheHit, hit.Error)
	}
	if hit.Timing == nil || hit.Timing.ReplaySeconds <= 0 {
		t.Fatalf("cache hit timing = %+v, want a replay phase", hit.Timing)
	}
}

// TestMulticoreJobLifecycle drives a two-core job end to end: per-core
// results in the job view, per-core pprof export byte-identical to the batch
// multicore pipeline (including the "core" sample label), a cache hit on
// resubmission, and rejection of out-of-range core selectors.
func TestMulticoreJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := JobSpec{
		Cores: []CoreJobSpec{
			{Bench: "mcf", Scale: testScale},
			{Bench: "x264", Scale: testScale},
		},
		Profilers:     []string{"TIP"},
		TargetSamples: 256,
	}

	v, code := submit(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	done := waitTerminal(t, ts, v.ID)
	if done.State != stateDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}
	if done.CacheHit {
		t.Fatal("first multicore job for a core set must be a cache miss")
	}
	res := done.Result
	if res == nil || len(res.Cores) != 2 {
		t.Fatalf("multicore result = %+v, want 2 cores", res)
	}
	if res.Cycles == 0 {
		t.Fatal("multicore result has no total cycles")
	}
	for i, want := range []string{"mcf", "x264"} {
		cv := res.Cores[i]
		if cv.Bench != want {
			t.Fatalf("core %d bench = %q, want %q", i, cv.Bench, want)
		}
		if cv.Cycles == 0 || cv.SampleInterval == 0 {
			t.Fatalf("core %d: implausible result %+v", i, cv)
		}
		if _, ok := cv.Errors["TIP"]; !ok {
			t.Fatalf("core %d missing TIP error: %v", i, cv.Errors)
		}
		if len(cv.Profiles["Oracle"]) == 0 || len(cv.Profiles["TIP"]) == 0 {
			t.Fatalf("core %d missing profiles", i)
		}
	}

	// Per-core pprof must match the batch multicore pipeline bit for bit,
	// core label included.
	ws := make([]*tip.Workload, 2)
	for i, c := range spec.Cores {
		w, err := workload.LoadScaled(c.Bench, 1, c.Scale)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	rc := tip.DefaultRunConfig()
	rc.Profilers = []profiler.Kind{kindByName(t, "TIP")}
	rc.TargetSamples = spec.TargetSamples
	rc.ReplayWorkers = 2
	batch, err := tip.RunMulticore(context.Background(), ws, rc)
	if err != nil {
		t.Fatal(err)
	}
	for core, c := range spec.Cores {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/pprof?profiler=TIP&core=%d", ts.URL, v.ID, core))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(got) == 0 {
			t.Fatalf("core %d pprof: status %d, %d bytes", core, resp.StatusCode, len(got))
		}
		opt := pprofenc.JobOptions(c.Bench, 1, c.Scale, "TIP", batch.Cores[core].SampleInterval)
		opt.Labels = []pprofenc.Label{{Key: "core", Value: fmt.Sprint(core)}}
		want, err := pprofenc.Encode(batch.Cores[core].Sampled[kindByName(t, "TIP")].Profile, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("core %d: daemon pprof (%d bytes) differs from batch encoding (%d bytes)",
				core, len(got), len(want))
		}
	}

	// Out-of-range core selector is a client error.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/pprof?core=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("core=2 on a 2-core job: status %d, want 400", resp.StatusCode)
	}

	// The same core set again hits the capture cache.
	v2, code := submit(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	done2 := waitTerminal(t, ts, v2.ID)
	if done2.State != stateDone || !done2.CacheHit {
		t.Fatalf("resubmitted job: state %s, cacheHit %v; want done hit", done2.State, done2.CacheHit)
	}
	for i := range done.Result.Cores {
		if done.Result.Cores[i].SampleInterval != done2.Result.Cores[i].SampleInterval {
			t.Fatalf("core %d interval changed across cache hit", i)
		}
	}
}

// TestMulticoreSpecValidation exercises the "cores" job spec rejections.
func TestMulticoreSpecValidation(t *testing.T) {
	pair := []CoreJobSpec{{Bench: "mcf"}, {Bench: "x264"}}
	bad := []JobSpec{
		{Cores: pair, Bench: "mcf"},
		{Cores: pair, Sampled: true},
		{Cores: []CoreJobSpec{{Bench: "nope"}}},
		{Cores: []CoreJobSpec{{}}},
		{Cores: make([]CoreJobSpec, 5)},
	}
	for i := range bad {
		if _, _, err := bad[i].normalize(); err == nil {
			t.Errorf("spec %d (%+v) unexpectedly valid", i, bad[i])
		}
	}
	good := JobSpec{Cores: pair}
	if _, _, err := good.normalize(); err != nil {
		t.Fatalf("plain cores spec rejected: %v", err)
	}
	if good.Cores[0].Seed != 1 || good.Cores[1].Seed != 1 {
		t.Fatalf("per-core seeds not defaulted: %+v", good.Cores)
	}
}
