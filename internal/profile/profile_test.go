package profile

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
)

// twoFuncProgram: main{b0: 2 alu; b1: 1 alu + ret-block} and helper{1 alu,
// ret}, plus an OS handler.
func twoFuncProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("p")
	h := b.Func("os_handler")
	hb := h.NewBlock()
	hb.Op(isa.KindIntALU, isa.IntReg(1))
	hb.Ret()
	main := b.Func("main")
	m0 := main.NewBlock()
	m0.Op(isa.KindIntALU, isa.IntReg(1))
	m0.Op(isa.KindIntALU, isa.IntReg(2))
	m1 := main.NewBlock()
	m1.Op(isa.KindIntALU, isa.IntReg(3))
	m1.Ret()
	helper := b.Func("helper")
	h0 := helper.NewBlock()
	h0.Op(isa.KindIntALU, isa.IntReg(4))
	h0.Ret()
	b.SetEntry(main)
	b.SetHandler(h)
	return b.MustBuild(0)
}

func TestAggregateGranularities(t *testing.T) {
	p := twoFuncProgram(t)
	prof := New(p)
	// Handler: insts 0,1. Main: 2,3 (block), 4,5 (block). Helper: 6,7.
	prof.Add(2, 10)
	prof.Add(3, 5)
	prof.Add(4, 3)
	prof.Add(6, 2)

	inst := prof.Aggregate(GranInstruction, false)
	if inst[2] != 10 || inst[3] != 5 {
		t.Fatalf("instruction aggregate wrong: %v", inst)
	}
	blocks := prof.Aggregate(GranBlock, false)
	mainB0 := p.InstByIndex(2).Block().ID
	mainB1 := p.InstByIndex(4).Block().ID
	if blocks[mainB0] != 15 || blocks[mainB1] != 3 {
		t.Fatalf("block aggregate wrong: %v", blocks)
	}
	funcs := prof.Aggregate(GranFunction, false)
	if funcs[1] != 18 || funcs[2] != 2 {
		t.Fatalf("function aggregate wrong: %v", funcs)
	}
}

func TestAggregateExcludesOS(t *testing.T) {
	p := twoFuncProgram(t)
	prof := New(p)
	prof.Add(0, 100) // handler inst
	prof.Add(2, 10)
	funcs := prof.Aggregate(GranFunction, true)
	if funcs[0] != 0 {
		t.Fatalf("OS function not excluded: %v", funcs)
	}
	if funcs[1] != 10 {
		t.Fatalf("application cycles wrong: %v", funcs)
	}
}

func TestAddIgnoresNegativeIndex(t *testing.T) {
	p := twoFuncProgram(t)
	prof := New(p)
	prof.Add(-1, 5)
	prof.Add(int32(p.NumInsts()), 5)
	if prof.Attributed() != 0 {
		t.Fatal("out-of-range adds were not dropped")
	}
}

func TestErrorIdenticalIsZero(t *testing.T) {
	p := twoFuncProgram(t)
	a := New(p)
	a.Add(2, 10)
	a.Add(4, 5)
	if e := a.Error(a, GranInstruction, false); e != 0 {
		t.Fatalf("self error = %v", e)
	}
}

func TestErrorDisjointIsOne(t *testing.T) {
	p := twoFuncProgram(t)
	a := New(p)
	a.Add(2, 10)
	b := New(p)
	b.Add(4, 10)
	if e := a.Error(b, GranInstruction, false); e != 1 {
		t.Fatalf("disjoint error = %v, want 1", e)
	}
	// At function level they collide into the same function: error 0.
	if e := a.Error(b, GranFunction, false); e != 0 {
		t.Fatalf("function-level error = %v, want 0", e)
	}
}

func TestErrorScaleInvariant(t *testing.T) {
	p := twoFuncProgram(t)
	a := New(p)
	a.Add(2, 10)
	a.Add(4, 30)
	b := New(p)
	b.Add(2, 1)
	b.Add(4, 3)
	if e := a.Error(b, GranInstruction, false); e > 1e-12 {
		t.Fatalf("scaled profiles should match: e=%v", e)
	}
}

func TestErrorGranularityMonotone(t *testing.T) {
	// Misattribution within a function hurts at instruction level but
	// not at function level (the paper's lbm observation).
	p := twoFuncProgram(t)
	oracle := New(p)
	oracle.Add(2, 10)
	prof := New(p)
	prof.Add(3, 10) // same block, same function, wrong instruction
	ei := prof.Error(oracle, GranInstruction, false)
	eb := prof.Error(oracle, GranBlock, false)
	ef := prof.Error(oracle, GranFunction, false)
	if !(ei >= eb && eb >= ef) {
		t.Fatalf("errors not monotone: inst %v block %v func %v", ei, eb, ef)
	}
	if ei != 1 || eb != 0 || ef != 0 {
		t.Fatalf("unexpected errors: %v %v %v", ei, eb, ef)
	}
}

func TestDistributionErrorEmpty(t *testing.T) {
	if e := DistributionError([]float64{0, 0}, []float64{0, 0}); e != 0 {
		t.Fatalf("both-empty error = %v", e)
	}
	if e := DistributionError([]float64{1, 0}, []float64{0, 0}); e != 1 {
		t.Fatalf("one-empty error = %v", e)
	}
}

func TestDistributionErrorMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	DistributionError([]float64{1}, []float64{1, 2})
}

// Property: error is symmetric, in [0,1], and zero iff normalized equal.
func TestQuickErrorProperties(t *testing.T) {
	f := func(av, bv [6]uint8) bool {
		a := make([]float64, 6)
		b := make([]float64, 6)
		for i := range av {
			a[i] = float64(av[i])
			b[i] = float64(bv[i])
		}
		e1 := DistributionError(a, b)
		e2 := DistributionError(b, a)
		if math.Abs(e1-e2) > 1e-12 {
			return false
		}
		return e1 >= 0 && e1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopFunctions(t *testing.T) {
	p := twoFuncProgram(t)
	prof := New(p)
	prof.Add(2, 30) // main
	prof.Add(6, 70) // helper
	top := prof.TopFunctions(10, false)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Name != "helper" || math.Abs(top[0].Share-0.7) > 1e-12 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	one := prof.TopFunctions(1, false)
	if len(one) != 1 {
		t.Fatalf("limit not applied: %v", one)
	}
}

func TestFunctionInstProfile(t *testing.T) {
	p := twoFuncProgram(t)
	prof := New(p)
	prof.Add(2, 6)
	prof.Add(3, 2)
	prof.Add(4, 2)
	rows := prof.FunctionInstProfile("main")
	if len(rows) != 4 { // 2+1 alu + ret
		t.Fatalf("rows = %d", len(rows))
	}
	if math.Abs(rows[0].Share-0.6) > 1e-12 {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	if prof.FunctionInstProfile("nope") != nil {
		t.Fatal("unknown function should return nil")
	}
	empty := New(p)
	if empty.FunctionInstProfile("main") != nil {
		t.Fatal("zero-cycle function should return nil")
	}
}

func TestCycleStackClassification(t *testing.T) {
	var s CycleStack
	s.Add(CatExecution, 60)
	s.Add(CatLoadStall, 40)
	s.Total = 100
	if s.Class() != "Compute" {
		t.Fatalf("class = %s, want Compute", s.Class())
	}
	var f CycleStack
	f.Add(CatExecution, 40)
	f.Add(CatMispredict, 2)
	f.Add(CatMiscFlush, 2)
	f.Add(CatLoadStall, 56)
	f.Total = 100
	if f.Class() != "Flush" {
		t.Fatalf("class = %s, want Flush", f.Class())
	}
	if math.Abs(f.FlushShare()-0.04) > 1e-12 {
		t.Fatalf("flush share = %v", f.FlushShare())
	}
	var st CycleStack
	st.Add(CatExecution, 30)
	st.Add(CatLoadStall, 69)
	st.Add(CatMispredict, 1)
	st.Total = 100
	if st.Class() != "Stall" {
		t.Fatalf("class = %s, want Stall", st.Class())
	}
}

func TestCycleStackNormalized(t *testing.T) {
	var s CycleStack
	s.Add(CatExecution, 25)
	s.Add(CatFrontend, 75)
	s.Total = 100
	n := s.Normalized()
	if n[CatExecution] != 0.25 || n[CatFrontend] != 0.75 {
		t.Fatalf("normalized = %v", n)
	}
	var empty CycleStack
	if empty.Normalized() != [NumCategories]float64{} {
		t.Fatal("empty stack should normalize to zeros")
	}
	if empty.Class() != "Stall" {
		t.Fatal("empty stack class")
	}
}

func TestStallCategoryOf(t *testing.T) {
	if StallCategoryOf(isa.KindLoad) != CatLoadStall {
		t.Fatal("load")
	}
	if StallCategoryOf(isa.KindStore) != CatStoreStall {
		t.Fatal("store")
	}
	if StallCategoryOf(isa.KindAtomic) != CatStoreStall {
		t.Fatal("atomic")
	}
	if StallCategoryOf(isa.KindFPDiv) != CatALUStall {
		t.Fatal("fpdiv")
	}
}

func TestCategoryAndGranularityNames(t *testing.T) {
	if CatExecution.String() != "Execution" || CatMiscFlush.String() != "Misc. flush" {
		t.Fatal("category names")
	}
	if GranInstruction.String() != "instruction" || GranFunction.String() != "function" {
		t.Fatal("granularity names")
	}
}

func TestCycleStackString(t *testing.T) {
	var s CycleStack
	s.Add(CatExecution, 1)
	s.Total = 2
	str := s.String()
	if str == "" {
		t.Fatal("empty string render")
	}
}
