// Package profile defines performance-profile data structures and the
// paper's evaluation machinery: attributed-cycle profiles at instruction,
// basic-block and function granularity, the systematic-error metric of §4,
// and commit-stage cycle stacks (§3.1, Fig. 7).
package profile

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
)

// Granularity selects the symbol level profiles are compared at.
type Granularity int

const (
	// GranInstruction compares individual instruction addresses.
	GranInstruction Granularity = iota
	// GranBlock compares basic blocks.
	GranBlock
	// GranFunction compares functions.
	GranFunction
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case GranInstruction:
		return "instruction"
	case GranBlock:
		return "basic-block"
	case GranFunction:
		return "function"
	}
	return fmt.Sprintf("granularity(%d)", int(g))
}

// Category is a commit-stage cycle type (§3.1): execution cycles, stall
// cycles split by the stalling instruction's type, front-end (drained)
// cycles, and flush cycles split into branch mispredicts and the rest.
type Category int

const (
	// CatExecution: one or more instructions committed.
	CatExecution Category = iota
	// CatALUStall: stalled on a non-memory instruction at the ROB head.
	CatALUStall
	// CatLoadStall: stalled on a load.
	CatLoadStall
	// CatStoreStall: stalled on a store (or atomic).
	CatStoreStall
	// CatFrontend: ROB drained because fetch starved (I-cache/I-TLB).
	CatFrontend
	// CatMispredict: ROB empty after a branch misprediction flush.
	CatMispredict
	// CatMiscFlush: ROB empty after CSR or exception flushes.
	CatMiscFlush

	// NumCategories is the number of cycle categories.
	NumCategories = int(iota)
)

var categoryNames = [NumCategories]string{
	"Execution", "ALU stall", "Load stall", "Store stall",
	"Front-end", "Mispredict", "Misc. flush",
}

// String names the category (matching the Fig. 7 legend).
func (c Category) String() string {
	if int(c) < NumCategories {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// StallCategoryOf maps the kind of an instruction blocking the ROB head to
// its stall category.
func StallCategoryOf(k isa.Kind) Category {
	switch k {
	case isa.KindLoad:
		return CatLoadStall
	case isa.KindStore, isa.KindAtomic:
		return CatStoreStall
	default:
		return CatALUStall
	}
}

// Profile holds cycles attributed to static instructions of one program.
// Profiles are produced by profilers (Oracle exactly, the practical
// profilers statistically) and compared with Error.
type Profile struct {
	// Prog is the program the instruction indices refer to.
	Prog *program.Program
	// InstCycles[i] is the cycles attributed to static instruction i.
	InstCycles []float64
	// TotalCycles is the run's total cycle count (the normalization
	// denominator; may differ slightly from the sum of InstCycles for
	// sampled profiles).
	TotalCycles float64
}

// New returns an empty profile for prog.
func New(prog *program.Program) *Profile {
	return &Profile{Prog: prog, InstCycles: make([]float64, prog.NumInsts())}
}

// Add attributes w cycles to instruction index idx. Negative indices (used
// for "unknown") are dropped.
func (p *Profile) Add(idx int32, w float64) {
	if idx < 0 || int(idx) >= len(p.InstCycles) {
		return
	}
	p.InstCycles[idx] += w
}

// EachNonZero calls f for every instruction index with a nonzero attributed
// cycle count, in ascending index order. It is the export hook encoders
// (internal/pprofenc) iterate with: index order makes the emitted artifact
// deterministic without materializing an intermediate slice.
func (p *Profile) EachNonZero(f func(idx int, cycles float64)) {
	for i, v := range p.InstCycles {
		if v != 0 {
			f(i, v)
		}
	}
}

// Attributed returns the total attributed cycles.
func (p *Profile) Attributed() float64 {
	s := 0.0
	for _, v := range p.InstCycles {
		s += v
	}
	return s
}

// symbolOf maps an instruction index to its symbol ID at granularity g.
func (p *Profile) symbolOf(i int, g Granularity) int {
	switch g {
	case GranInstruction:
		return i
	case GranBlock:
		return p.Prog.InstByIndex(i).Block().ID
	default:
		return p.Prog.InstByIndex(i).Func().Index
	}
}

func (p *Profile) numSymbols(g Granularity) int {
	switch g {
	case GranInstruction:
		return p.Prog.NumInsts()
	case GranBlock:
		return p.Prog.NumBlocks()
	default:
		return p.Prog.NumFuncs()
	}
}

// Aggregate returns per-symbol attributed cycles at granularity g. When
// excludeOS is set, instructions in OS functions (the synthetic page-fault
// handler) are dropped — the paper only includes samples that hit
// application code (§4).
func (p *Profile) Aggregate(g Granularity, excludeOS bool) []float64 {
	out := make([]float64, p.numSymbols(g))
	for i, v := range p.InstCycles {
		if v == 0 {
			continue
		}
		if excludeOS && isOSInst(p.Prog, i) {
			continue
		}
		out[p.symbolOf(i, g)] += v
	}
	return out
}

func isOSInst(prog *program.Program, i int) bool {
	return prog.InstByIndex(i).Func() == prog.Handler()
}

// Error computes the paper's systematic profile error of p against the
// reference (Oracle) profile at granularity g:
//
//	e = (c_total − c_correct) / c_total
//
// where c_correct is the per-symbol overlap of the two profiles. Both
// profiles are normalized so e is the total-variation distance in [0, 1].
func (p *Profile) Error(ref *Profile, g Granularity, excludeOS bool) float64 {
	a := p.Aggregate(g, excludeOS)
	b := ref.Aggregate(g, excludeOS)
	return DistributionError(a, b)
}

// DistributionError normalizes both vectors and returns 1 − Σ min(a, b).
func DistributionError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("profile: mismatched symbol spaces")
	}
	sa, sb := 0.0, 0.0
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	if sa == 0 || sb == 0 {
		if sa == sb {
			return 0
		}
		return 1
	}
	overlap := 0.0
	for i := range a {
		x, y := a[i]/sa, b[i]/sb
		if x < y {
			overlap += x
		} else {
			overlap += y
		}
	}
	e := 1 - overlap
	if e < 0 {
		return 0
	}
	return e
}

// SymbolShare is one row of a profile report.
type SymbolShare struct {
	// Name is the symbol's display name.
	Name string
	// Share is the fraction of attributed cycles.
	Share float64
}

// TopFunctions returns functions by descending share of attributed cycles.
func (p *Profile) TopFunctions(n int, excludeOS bool) []SymbolShare {
	agg := p.Aggregate(GranFunction, excludeOS)
	total := 0.0
	for _, v := range agg {
		total += v
	}
	out := make([]SymbolShare, 0, len(agg))
	for i, v := range agg {
		if v == 0 {
			continue
		}
		out = append(out, SymbolShare{Name: p.Prog.Funcs[i].Name, Share: v / total})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Share > out[j].Share })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// FunctionInstProfile returns, for the named function, each instruction's
// share of the cycles attributed within that function (the paper's Fig. 12
// view: "fraction of time within the function").
func (p *Profile) FunctionInstProfile(fnName string) []SymbolShare {
	var fn *program.Function
	for _, f := range p.Prog.Funcs {
		if f.Name == fnName {
			fn = f
			break
		}
	}
	if fn == nil {
		return nil
	}
	total := 0.0
	var rows []SymbolShare
	for _, b := range fn.Blocks {
		for _, in := range b.Insts {
			total += p.InstCycles[in.Index]
		}
	}
	if total == 0 {
		return nil
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Insts {
			v := p.InstCycles[in.Index]
			rows = append(rows, SymbolShare{
				Name:  fmt.Sprintf("%#x %s", in.PC, in.Name()),
				Share: v / total,
			})
		}
	}
	return rows
}

// CycleStack is the per-category cycle breakdown of a run (Fig. 7).
type CycleStack struct {
	// Cycles[c] is the cycles attributed to category c.
	Cycles [NumCategories]float64
	// Total is the run length in cycles.
	Total float64
}

// Add accumulates w cycles of category c.
func (s *CycleStack) Add(c Category, w float64) { s.Cycles[c] += w }

// Normalized returns per-category fractions of Total.
func (s *CycleStack) Normalized() [NumCategories]float64 {
	var out [NumCategories]float64
	if s.Total == 0 {
		return out
	}
	for i, v := range s.Cycles {
		out[i] = v / s.Total
	}
	return out
}

// ExecutionShare is the committed fraction (the benchmark-classification
// input: compute-intensive benchmarks exceed 50%).
func (s *CycleStack) ExecutionShare() float64 {
	if s.Total == 0 {
		return 0
	}
	return s.Cycles[CatExecution] / s.Total
}

// FlushShare is the flush fraction (mispredict + misc; flush-intensive
// benchmarks exceed 3%).
func (s *CycleStack) FlushShare() float64 {
	if s.Total == 0 {
		return 0
	}
	return (s.Cycles[CatMispredict] + s.Cycles[CatMiscFlush]) / s.Total
}

// Class labels the benchmark per the paper's Fig. 7 classification.
func (s *CycleStack) Class() string {
	switch {
	case s.ExecutionShare() > 0.5:
		return "Compute"
	case s.FlushShare() > 0.03:
		return "Flush"
	default:
		return "Stall"
	}
}

// String renders the stack as a one-line report.
func (s *CycleStack) String() string {
	var b strings.Builder
	n := s.Normalized()
	for i, v := range n {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s %.1f%%", Category(i), v*100)
	}
	return b.String()
}
