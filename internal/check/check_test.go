package check_test

import (
	"strings"
	"testing"

	"github.com/tipprof/tip/internal/check"
	"github.com/tipprof/tip/internal/trace"
)

// commitRec builds one cycle of a well-formed 4-bank stream committing a
// single instruction with FID == cycle.
func commitRec(cycle uint64) trace.Record {
	var r trace.Record
	r.Cycle = cycle
	r.NumBanks = 4
	r.HeadBank = uint8(cycle % 4)
	b := &r.Banks[r.HeadBank]
	b.Valid = true
	b.Committing = true
	b.FID = cycle
	b.PC = 0x10000 + cycle*4
	b.InstIndex = int32(cycle % 8)
	r.CommitCount = 1
	r.AnyInFlight = true
	r.YoungestFID = cycle
	return r
}

func newChecker() *check.Checker {
	return check.New(check.Options{
		Benchmark:       "synthetic",
		CommitWidth:     4,
		ROBEntries:      128,
		FetchBufEntries: 32,
	})
}

// runStream feeds n well-formed cycles through the checker, applying mutate
// to the record of cycle 5, and returns the invariant names reported.
func runStream(t *testing.T, n uint64, mutate func(*trace.Record)) map[string]bool {
	t.Helper()
	c := newChecker()
	for i := uint64(0); i < n; i++ {
		r := commitRec(i)
		if i == 5 && mutate != nil {
			mutate(&r)
		}
		c.OnCycle(&r)
	}
	c.Finish(n)
	got := map[string]bool{}
	for _, v := range c.Violations() {
		got[v.Invariant] = true
	}
	return got
}

func TestCheckerCleanStream(t *testing.T) {
	if got := runStream(t, 20, nil); len(got) != 0 {
		t.Fatalf("clean stream reported violations: %v", got)
	}
}

func TestCheckerCatchesEachCorruption(t *testing.T) {
	cases := []struct {
		name   string
		want   string
		mutate func(*trace.Record)
	}{
		{"cycle-gap", "cycle-contiguous", func(r *trace.Record) { r.Cycle += 3 }},
		{"bank-count", "bank-count", func(r *trace.Record) { r.NumBanks = 3 }},
		{"bank-count-over-max", "bank-count", func(r *trace.Record) { r.NumBanks = trace.MaxBanks + 1 }},
		{"head-bank", "head-bank", func(r *trace.Record) { r.HeadBank = 7 }},
		{"commit-without-valid", "bank-flags", func(r *trace.Record) {
			r.Banks[(r.HeadBank+1)%4].Committing = true
			r.CommitCount = 2
		}},
		{"committing-exception", "bank-flags", func(r *trace.Record) { r.Banks[r.HeadBank].Exception = true }},
		{"commit-count", "commit-count", func(r *trace.Record) { r.CommitCount = 2 }},
		{"rob-empty-with-banks", "rob-empty", func(r *trace.Record) { r.ROBEmpty = true }},
		{"not-empty-no-banks", "rob-empty", func(r *trace.Record) {
			r.Banks[r.HeadBank] = trace.BankEntry{}
			r.CommitCount = 0
		}},
		{"two-flush-causes", "single-cause", func(r *trace.Record) {
			r.Banks[r.HeadBank].Flush = true
			b := &r.Banks[(r.HeadBank+1)%4]
			b.Valid, b.Committing, b.Flush = true, true, true
			b.FID = r.Cycle + 1000
			r.CommitCount = 2
		}},
		{"exception-with-commits", "exception-commit", func(r *trace.Record) {
			r.ExceptionRaised = true
			r.ExceptionFID = r.Banks[r.HeadBank].FID
			r.Banks[r.HeadBank].Exception = true
		}},
		{"exception-not-at-head", "exception-head", func(r *trace.Record) {
			r.Banks[r.HeadBank].Committing = false
			r.CommitCount = 0
			r.ExceptionRaised = true
			r.ExceptionFID = r.Banks[r.HeadBank].FID + 7
		}},
		{"flush-not-last", "flush-last", func(r *trace.Record) {
			r.Banks[r.HeadBank].Flush = true
			b := &r.Banks[(r.HeadBank+1)%4]
			b.Valid, b.Committing = true, true
			b.FID = r.Cycle + 1000
			r.CommitCount = 2
		}},
		{"fid-reversed", "fid-order", func(r *trace.Record) {
			b := &r.Banks[(r.HeadBank+1)%4]
			b.Valid = true
			b.FID = r.Banks[r.HeadBank].FID - 1
		}},
		{"commit-fid-reused", "commit-fid-monotonic", func(r *trace.Record) {
			r.Banks[r.HeadBank].FID = 2 // already committed at cycle 2
		}},
		{"dispatch-no-inflight", "dispatch-inflight", func(r *trace.Record) {
			r.DispatchValid = true
			r.AnyInFlight = false
		}},
		{"youngest-behind-bank", "youngest-fid", func(r *trace.Record) { r.YoungestFID = r.Cycle - 1 }},
		{"inflight-unset", "youngest-fid", func(r *trace.Record) { r.AnyInFlight = false }},
		{"occupancy", "occupancy", func(r *trace.Record) { r.YoungestFID = r.Cycle + 100_000 }},
		{"empty-rob-with-commits", "state-partition", func(r *trace.Record) {
			r.Banks[r.HeadBank].Valid = false
			r.ROBEmpty = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runStream(t, 20, tc.mutate)
			if !got[tc.want] {
				t.Fatalf("corruption %q not reported as %q; got %v", tc.name, tc.want, got)
			}
		})
	}
}

func TestCheckerFinishInvariants(t *testing.T) {
	c := newChecker()
	for i := uint64(0); i < 10; i++ {
		r := commitRec(i)
		c.OnCycle(&r)
	}
	c.Finish(12) // last commit was at cycle 9: total must be 10
	found := false
	for _, v := range c.Violations() {
		if v.Invariant == "total-cycles" {
			found = true
		}
	}
	if !found {
		t.Fatalf("inconsistent total cycles not reported: %v", c.Violations())
	}

	c2 := newChecker()
	c2.Finish(0)
	if err := c2.Err(); err == nil || !strings.Contains(err.Error(), "empty-trace") {
		t.Fatalf("empty trace not reported: %v", err)
	}
}

func TestCheckerViolationCapKeepsCounting(t *testing.T) {
	c := check.New(check.Options{Benchmark: "cap", CommitWidth: 4, MaxViolations: 4})
	for i := uint64(0); i < 50; i++ {
		r := commitRec(i)
		r.CommitCount = 3 // every cycle violates commit-count
		c.OnCycle(&r)
	}
	c.Finish(50)
	if got := len(c.Violations()); got != 4 {
		t.Fatalf("stored %d violations, want cap 4", got)
	}
	if c.Count() != 50 {
		t.Fatalf("counted %d violations, want 50", c.Count())
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "50 invariant violation") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestCheckerReportMentionsRecord(t *testing.T) {
	c := newChecker()
	r := commitRec(0)
	r.CommitCount = 2
	c.OnCycle(&r)
	c.Finish(1)
	rep := c.Report()
	for _, want := range []string{"commit-count", "cyc=0", "synthetic"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}
