// Package check implements an opt-in, cycle-level invariant checker for the
// commit-stage trace stream, plus end-of-run conservation audits over the
// profilers that consumed it.
//
// Every number the evaluation reports rests on the commit-stage trace being
// internally consistent and deterministic — the property FireSim gives the
// paper for free and a software model must actively defend. The profilers
// (internal/profiler) lean on structural guarantees the core (internal/cpu)
// is supposed to provide: contiguous cycle numbers, a fixed bank count,
// commit counts that match the per-bank flags, at most one flush/exception
// cause per cycle, fetch-ordered FIDs, and a bounded in-flight window.
// Nothing else enforces them; a silent model bug would skew every
// attribution study built on top. The checker asserts them on every cycle
// and, when the run finishes, audits conservation: the Oracle attributes
// every cycle exactly once (its cycle stack partitions the run into the
// paper's Computing/Stalled/Flushed/Drained states, §2–3), and each sampled
// profiler's attributed-plus-lost mass equals the weight of the samples it
// took.
//
// The checker is a plain trace.Consumer, so it runs against a live core and
// against replayed golden traces alike. It deliberately re-implements the
// cycle-state classification instead of importing the Oracle's: the two
// independent derivations cross-check each other.
package check

import (
	"fmt"
	"math"
	"strings"

	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/trace"
)

// state indexes the checker's independent cycle-state tally.
type state int

const (
	stateComputing state = iota
	stateStalled
	stateFlushed
	stateDrained
	numStates
)

var stateNames = [numStates]string{"Computing", "Stalled", "Flushed", "Drained"}

// Options configure a Checker. Zero values disable the corresponding
// structural checks so the checker can run against traces from non-default
// core configurations.
type Options struct {
	// Benchmark labels violations (the workload under test).
	Benchmark string
	// CommitWidth is the expected record bank count (0 = don't check).
	CommitWidth int
	// ROBEntries bounds the in-flight FID window together with
	// FetchBufEntries (0 = don't check).
	ROBEntries int
	// FetchBufEntries is the fetch-buffer capacity for the window bound.
	FetchBufEntries int
	// MaxViolations caps stored per-cycle violations (default 16); the
	// total count keeps incrementing past the cap.
	MaxViolations int
}

// Violation is one invariant failure.
type Violation struct {
	// Benchmark is the workload the trace came from.
	Benchmark string
	// Cycle is the cycle of the offending record (the final cycle count
	// for end-of-run audit violations).
	Cycle uint64
	// Invariant names the violated property.
	Invariant string
	// Detail explains the failure.
	Detail string
	// Record is a compact dump of the offending record (empty for
	// end-of-run audits).
	Record string
}

// String renders the violation as a one-line report.
func (v Violation) String() string {
	s := fmt.Sprintf("%s: cycle %d: %s: %s", v.Benchmark, v.Cycle, v.Invariant, v.Detail)
	if v.Record != "" {
		s += " [" + v.Record + "]"
	}
	return s
}

// oirState replicates TIP's Offending Instruction Register flags (§3.1) so
// the checker can classify empty-ROB cycles as Flushed versus Drained
// independently of the profilers.
type oirState struct {
	valid        bool
	mispredicted bool
	flush        bool
	exception    bool
}

func (o *oirState) observe(r *trace.Record) {
	if y := r.YoungestCommitting(); y != nil {
		o.valid = true
		o.mispredicted = y.Mispredicted
		o.flush = y.Flush
		o.exception = false
	}
	if r.ExceptionRaised {
		o.valid = true
		o.mispredicted = false
		o.flush = false
		o.exception = true
	}
}

func (o *oirState) flushed() bool {
	return o.valid && (o.mispredicted || o.flush || o.exception)
}

type auditedOracle struct {
	name string
	o    *profiler.Oracle
}

type auditedSampled struct {
	name string
	s    *profiler.Sampled
}

// Checker verifies per-cycle trace invariants and end-of-run conservation.
// Attach it to the consumer list of a run (or a replay); audits may be
// registered before or after the run — they are evaluated lazily by Err,
// Violations, and Report.
type Checker struct {
	opt Options

	stored []Violation
	count  uint64

	started       bool
	prevCycle     uint64
	records       uint64
	anyCommit     bool
	lastCommit    uint64 // cycle of the most recent committing record
	lastCommitFID uint64
	haveCommitFID bool
	oir           oirState
	stateCycles   [numStates]uint64

	finished    bool
	totalCycles uint64

	oracles  []auditedOracle
	sampleds []auditedSampled
}

// New returns a checker with the given options.
func New(opt Options) *Checker {
	if opt.MaxViolations <= 0 {
		opt.MaxViolations = 16
	}
	if opt.Benchmark == "" {
		opt.Benchmark = "?"
	}
	return &Checker{opt: opt}
}

// AuditOracle registers an Oracle for the end-of-run conservation audit:
// attributed cycles must equal total cycles, the cycle stack must partition
// the run, and its per-category totals must match the checker's independent
// state tally.
func (c *Checker) AuditOracle(name string, o *profiler.Oracle) {
	c.oracles = append(c.oracles, auditedOracle{name: name, o: o})
}

// AuditSampled registers a sampled profiler for the end-of-run conservation
// audit: attributed plus lost weight must equal the total sampled weight.
func (c *Checker) AuditSampled(name string, s *profiler.Sampled) {
	c.sampleds = append(c.sampleds, auditedSampled{name: name, s: s})
}

func (c *Checker) report(r *trace.Record, invariant, format string, args ...any) {
	c.count++
	if len(c.stored) >= c.opt.MaxViolations {
		return
	}
	v := Violation{
		Benchmark: c.opt.Benchmark,
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	}
	if r != nil {
		v.Cycle = r.Cycle
		v.Record = DumpRecord(r)
	} else {
		v.Cycle = c.totalCycles
	}
	c.stored = append(c.stored, v)
}

// OnCycle implements trace.Consumer.
func (c *Checker) OnCycle(r *trace.Record) {
	c.records++

	// Cycle numbers are contiguous from zero: the sampled profilers match
	// r.Cycle against their precomputed schedule, so a skipped or repeated
	// cycle silently drops or duplicates samples.
	if !c.started {
		c.started = true
		if r.Cycle != 0 {
			c.report(r, "cycle-contiguous", "first record at cycle %d, want 0", r.Cycle)
		}
	} else if r.Cycle != c.prevCycle+1 {
		c.report(r, "cycle-contiguous", "cycle %d follows %d", r.Cycle, c.prevCycle)
	}
	c.prevCycle = r.Cycle

	// Bank shape: fixed commit width, head bank in range.
	if r.NumBanks < 1 || r.NumBanks > trace.MaxBanks {
		c.report(r, "bank-count", "NumBanks %d outside [1, %d]", r.NumBanks, trace.MaxBanks)
		return // the bank scans below (and oir.observe) would index out of range
	}
	if c.opt.CommitWidth > 0 && r.NumBanks != c.opt.CommitWidth {
		c.report(r, "bank-count", "NumBanks %d, core commit width %d", r.NumBanks, c.opt.CommitWidth)
	}
	if int(r.HeadBank) >= r.NumBanks {
		c.report(r, "head-bank", "HeadBank %d with %d banks", r.HeadBank, r.NumBanks)
	}

	// Per-bank flag consistency and the commit count.
	valid, committing, flushCommits := 0, 0, 0
	for i := 0; i < r.NumBanks; i++ {
		b := &r.Banks[i]
		if !b.Valid {
			if b.Committing {
				c.report(r, "bank-flags", "bank %d commits without a valid entry", i)
			}
			continue
		}
		valid++
		if b.Committing {
			committing++
			if b.Exception {
				c.report(r, "bank-flags", "bank %d commits an excepting instruction", i)
			}
			if b.Flush {
				flushCommits++
			}
		}
	}
	if int(r.CommitCount) != committing {
		c.report(r, "commit-count", "CommitCount %d, %d banks committing", r.CommitCount, committing)
	}

	// ROB-empty flag agrees with the banks.
	if r.ROBEmpty && valid > 0 {
		c.report(r, "rob-empty", "ROBEmpty with %d valid banks", valid)
	}
	if !r.ROBEmpty && valid == 0 {
		c.report(r, "rob-empty", "ROB not empty but no valid banks")
	}

	// At most one flush/exception cause per cycle, and exceptions are
	// raised instead of (never alongside) commits, from the ROB head.
	if causes := flushCommits + boolInt(r.ExceptionRaised); causes > 1 {
		c.report(r, "single-cause", "%d flush/exception causes in one cycle", causes)
	}
	if r.ExceptionRaised {
		if r.CommitCount != 0 {
			c.report(r, "exception-commit", "exception raised alongside %d commits", r.CommitCount)
		}
		if old := r.Oldest(); old == nil {
			c.report(r, "exception-head", "exception raised with an empty ROB")
		} else if !old.Exception || old.FID != r.ExceptionFID {
			c.report(r, "exception-head",
				"excepting FID %d but head entry FID %d (exception flag %v)",
				r.ExceptionFID, old.FID, old.Exception)
		}
	}

	// A flushing commit ends the commit group: it must be the youngest
	// committing instruction this cycle.
	if flushCommits > 0 {
		if y := r.YoungestCommitting(); y != nil && !y.Flush {
			c.report(r, "flush-last", "instructions commit after a flushing instruction")
		}
	}

	// FIDs are fetch-ordered: strictly increasing along the ROB in age
	// order, and commits never reuse or reorder FIDs across the run (even
	// across flushes — refetched instructions get fresh FIDs).
	prevFID, haveFID := uint64(0), false
	for i := 0; i < r.NumBanks; i++ {
		b := &r.Banks[(int(r.HeadBank)+i)%r.NumBanks]
		if !b.Valid {
			continue
		}
		if haveFID && b.FID <= prevFID {
			c.report(r, "fid-order", "FID %d not older than FID %d in age order", prevFID, b.FID)
		}
		prevFID, haveFID = b.FID, true
	}
	if committing > 0 {
		if old := oldestCommitting(r); old != nil {
			if c.haveCommitFID && old.FID <= c.lastCommitFID {
				c.report(r, "commit-fid-monotonic",
					"committing FID %d after FID %d already committed", old.FID, c.lastCommitFID)
			}
		}
		if y := r.YoungestCommitting(); y != nil {
			c.lastCommitFID = y.FID
			c.haveCommitFID = true
		}
		c.anyCommit = true
		c.lastCommit = r.Cycle
	}

	// Front-end observations: dispatch implies in-flight work, and
	// YoungestFID really is the youngest.
	if r.DispatchValid && !r.AnyInFlight {
		c.report(r, "dispatch-inflight", "dispatch-stage instruction without in-flight work")
	}
	if r.AnyInFlight {
		for i := 0; i < r.NumBanks; i++ {
			if b := &r.Banks[i]; b.Valid && b.FID > r.YoungestFID {
				c.report(r, "youngest-fid", "bank %d FID %d exceeds YoungestFID %d", i, b.FID, r.YoungestFID)
			}
		}
		if r.DispatchValid && r.DispatchFID > r.YoungestFID {
			c.report(r, "youngest-fid", "dispatch FID %d exceeds YoungestFID %d", r.DispatchFID, r.YoungestFID)
		}
	} else if valid > 0 {
		c.report(r, "youngest-fid", "valid ROB entries but AnyInFlight is unset")
	}

	// In-flight FID window: FIDs are dense (every fetched instruction
	// enters the fetch buffer then the ROB in order), so the span from the
	// ROB head to the youngest in-flight instruction is bounded by the ROB
	// plus fetch-buffer capacity — the 128-entry ROB bound, observed
	// through the trace.
	if c.opt.ROBEntries > 0 && r.AnyInFlight {
		if old := r.Oldest(); old != nil {
			bound := uint64(c.opt.ROBEntries + c.opt.FetchBufEntries)
			if window := r.YoungestFID - old.FID + 1; window > bound {
				c.report(r, "occupancy", "in-flight FID window %d exceeds %d (ROB %d + fetch buffer %d)",
					window, bound, c.opt.ROBEntries, c.opt.FetchBufEntries)
			}
		}
	}

	// Exactly one of the paper's four commit-stage states holds; tally it
	// for the end-of-run cross-check against the Oracle's cycle stack.
	switch {
	case !r.ROBEmpty && r.CommitCount > 0:
		c.stateCycles[stateComputing]++
	case !r.ROBEmpty:
		c.stateCycles[stateStalled]++
	case r.CommitCount == 0:
		if c.oir.flushed() {
			c.stateCycles[stateFlushed]++
		} else {
			c.stateCycles[stateDrained]++
		}
	default:
		c.report(r, "state-partition", "empty ROB with CommitCount %d", r.CommitCount)
	}

	c.oir.observe(r)
}

// Finish implements trace.Consumer.
func (c *Checker) Finish(totalCycles uint64) {
	c.finished = true
	c.totalCycles = totalCycles
	if c.records == 0 {
		c.report(nil, "empty-trace", "Finish(%d) with no records", totalCycles)
		return
	}
	// The run length is the cycle after the last commit (trailing
	// commit-free cycles would mean the core kept stepping a dead machine).
	if c.anyCommit && totalCycles != c.lastCommit+1 {
		c.report(nil, "total-cycles", "total %d, last commit at cycle %d", totalCycles, c.lastCommit)
	}
	if totalCycles > c.records {
		c.report(nil, "total-cycles", "total %d exceeds %d observed records", totalCycles, c.records)
	}
}

// auditViolations evaluates the registered conservation audits against the
// profilers' current state. It is recomputed on every call (rather than
// latched at Finish) so audits can be registered after the run and so tests
// can probe the same checker before and after injecting a mutation.
func (c *Checker) auditViolations() []Violation {
	if !c.finished {
		return nil
	}
	var out []Violation
	add := func(name, invariant, format string, args ...any) {
		out = append(out, Violation{
			Benchmark: c.opt.Benchmark,
			Cycle:     c.totalCycles,
			Invariant: invariant,
			Detail:    name + ": " + fmt.Sprintf(format, args...),
		})
	}
	total := float64(c.totalCycles)
	tol := 1e-8*total + 1e-6
	for _, a := range c.oracles {
		if att := a.o.Profile.Attributed(); math.Abs(att-total) > tol {
			add(a.name, "conservation", "attributed %.6f cycles of %d total", att, c.totalCycles)
		}
		sum := 0.0
		for _, v := range a.o.Stack.Cycles {
			sum += v
		}
		if math.Abs(sum-total) > tol {
			add(a.name, "conservation", "cycle stack sums to %.6f of %d total", sum, c.totalCycles)
		}
		// Cross-check the Oracle's category totals against the checker's
		// independently derived state tally.
		if c.records > 0 {
			groups := [numStates]float64{
				stateComputing: a.o.Stack.Cycles[profile.CatExecution],
				stateStalled: a.o.Stack.Cycles[profile.CatALUStall] +
					a.o.Stack.Cycles[profile.CatLoadStall] +
					a.o.Stack.Cycles[profile.CatStoreStall],
				stateFlushed: a.o.Stack.Cycles[profile.CatMispredict] +
					a.o.Stack.Cycles[profile.CatMiscFlush],
				stateDrained: a.o.Stack.Cycles[profile.CatFrontend],
			}
			for s, want := range c.stateCycles {
				if math.Abs(groups[s]-float64(want)) > tol {
					add(a.name, "state-tally", "%s: stack has %.6f cycles, trace shows %d",
						stateNames[s], groups[s], want)
				}
			}
		}
	}
	for _, a := range c.sampleds {
		want := a.s.SampledWeight
		got := a.s.Profile.Attributed() + a.s.LostWeight
		tolS := 1e-8*math.Max(want, 1) + 1e-6
		if math.Abs(got-want) > tolS {
			add(a.name, "conservation",
				"attributed %.6f + lost %.6f != sampled weight %.6f (%d samples)",
				a.s.Profile.Attributed(), a.s.LostWeight, want, a.s.Samples)
		}
	}
	return out
}

// Violations returns every stored violation: per-cycle failures first (up
// to MaxViolations), then end-of-run audit failures.
func (c *Checker) Violations() []Violation {
	out := append([]Violation(nil), c.stored...)
	return append(out, c.auditViolations()...)
}

// Count returns the total number of violations, including per-cycle ones
// suppressed past the storage cap.
func (c *Checker) Count() uint64 {
	return c.count + uint64(len(c.auditViolations()))
}

// Err returns nil when no invariant was violated, or an error summarizing
// the violations.
func (c *Checker) Err() error {
	vs := c.Violations()
	if n := c.Count(); n > 0 {
		show := vs
		if len(show) > 3 {
			show = show[:3]
		}
		lines := make([]string, len(show))
		for i, v := range show {
			lines[i] = v.String()
		}
		return fmt.Errorf("check: %d invariant violation(s):\n  %s", n, strings.Join(lines, "\n  "))
	}
	return nil
}

// Report renders a full human-readable violation report, or a clean
// summary when no invariant was violated.
func (c *Checker) Report() string {
	vs := c.Violations()
	if len(vs) == 0 {
		return fmt.Sprintf("check: %s: %d cycles, %d records, 0 violations",
			c.opt.Benchmark, c.totalCycles, c.records)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s: %d violation(s) over %d records:\n", c.opt.Benchmark, c.Count(), c.records)
	for _, v := range vs {
		fmt.Fprintf(&b, "  %s\n", v.String())
	}
	return b.String()
}

// DumpRecord renders a record compactly for violation reports.
func DumpRecord(r *trace.Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cyc=%d banks=%d head=%d commits=%d", r.Cycle, r.NumBanks, r.HeadBank, r.CommitCount)
	if r.ROBEmpty {
		b.WriteString(" empty")
	}
	for i := 0; i < r.NumBanks && i < trace.MaxBanks; i++ {
		e := &r.Banks[i]
		if !e.Valid {
			continue
		}
		fmt.Fprintf(&b, " b%d{fid=%d idx=%d pc=%#x", i, e.FID, e.InstIndex, e.PC)
		for _, f := range []struct {
			on bool
			s  string
		}{{e.Committing, "C"}, {e.Mispredicted, "M"}, {e.Flush, "F"}, {e.Exception, "X"}} {
			if f.on {
				b.WriteString(" " + f.s)
			}
		}
		b.WriteString("}")
	}
	if r.ExceptionRaised {
		fmt.Fprintf(&b, " exc{fid=%d idx=%d}", r.ExceptionFID, r.ExceptionInstIndex)
	}
	if r.DispatchValid {
		fmt.Fprintf(&b, " disp{fid=%d idx=%d}", r.DispatchFID, r.DispatchInstIndex)
	}
	if r.AnyInFlight {
		fmt.Fprintf(&b, " yfid=%d", r.YoungestFID)
	}
	return b.String()
}

// oldestCommitting returns the oldest committing bank entry (age order).
func oldestCommitting(r *trace.Record) *trace.BankEntry {
	for i := 0; i < r.NumBanks; i++ {
		b := &r.Banks[(int(r.HeadBank)+i)%r.NumBanks]
		if b.Valid && b.Committing {
			return b
		}
	}
	return nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
