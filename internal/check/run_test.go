package check_test

import (
	"strings"
	"testing"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/check"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// runChecked runs a small benchmark with extra consumers ahead of a manually
// attached checker and returns both.
func runChecked(t *testing.T, bench string, extra ...trace.Consumer) (*tip.Result, *check.Checker) {
	t.Helper()
	w, err := workload.LoadScaled(bench, 1, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := tip.DefaultRunConfig()
	rc.TargetSamples = 512
	ck := check.New(check.Options{
		Benchmark:       w.Name,
		CommitWidth:     rc.Core.CommitWidth,
		ROBEntries:      rc.Core.ROBEntries,
		FetchBufEntries: rc.Core.FetchBufEntries,
	})
	rc.ExtraConsumers = append(append([]trace.Consumer{}, extra...), ck)
	res, err := tip.Run(w, rc)
	if err != nil {
		t.Fatal(err)
	}
	return res, ck
}

// TestRealRunClean asserts a live simulation satisfies every per-cycle
// invariant and every conservation audit, then injects an attribution bug
// (a double-counted hot instruction) and asserts the audit catches it.
func TestRealRunCleanAndInjectedBugCaught(t *testing.T) {
	res, ck := runChecked(t, "imagick")
	ck.AuditOracle("Oracle", res.Oracle)
	for k, s := range res.Sampled {
		ck.AuditSampled(k.String(), s)
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}

	// Deliberate attribution bug: double-count the hottest instruction in
	// the TIP profile. Conservation must break.
	sp := res.Sampled[tip.KindTIP]
	hot, best := -1, 0.0
	for i, v := range sp.Profile.InstCycles {
		if v > best {
			hot, best = i, v
		}
	}
	if hot < 0 {
		t.Fatal("TIP attributed no cycles")
	}
	sp.Profile.InstCycles[hot] *= 2
	err := ck.Err()
	if err == nil {
		t.Fatal("injected double-count not caught by conservation audit")
	}
	if !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("unexpected violation for injected bug: %v", err)
	}

	// Audits are recomputed lazily: undoing the mutation makes the same
	// checker clean again.
	sp.Profile.InstCycles[hot] = best
	if err := ck.Err(); err != nil {
		t.Fatalf("checker not clean after undoing mutation: %v", err)
	}
}

// TestRunCheckFlag exercises the RunConfig.Check wiring end to end.
func TestRunCheckFlag(t *testing.T) {
	w, err := workload.LoadScaled("x264", 1, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := tip.DefaultRunConfig()
	rc.TargetSamples = 512
	rc.Check = true
	if _, err := tip.Run(w, rc); err != nil {
		t.Fatalf("checked run failed: %v", err)
	}
}

// corruptor flips CommitCount on the n-th committing cycle, after the
// profilers have consumed the record but before the checker sees it.
type corruptor struct {
	fire int
	seen int
}

func (c *corruptor) OnCycle(r *trace.Record) {
	if r.CommitCount > 0 {
		c.seen++
		if c.seen == c.fire {
			r.CommitCount++
		}
	}
}

func (c *corruptor) Finish(uint64) {}

// TestCorruptedStreamCaught asserts a single corrupted record in an
// otherwise clean live run is detected by a downstream checker.
func TestCorruptedStreamCaught(t *testing.T) {
	_, ck := runChecked(t, "imagick", &corruptor{fire: 1000})
	err := ck.Err()
	if err == nil {
		t.Fatal("corrupted record not detected")
	}
	if !strings.Contains(err.Error(), "commit-count") {
		t.Fatalf("want commit-count violation, got: %v", err)
	}
	if ck.Count() != 1 {
		t.Fatalf("want exactly 1 violation, got %d:\n%s", ck.Count(), ck.Report())
	}
}
