package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestSeedReset(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if v := s.Uint64(); v != first[i] {
			t.Fatalf("after reseed value %d = %d, want %d", i, v, first[i])
		}
	}
}

func TestUint64nRange(t *testing.T) {
	s := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nOneAlwaysZero(t *testing.T) {
	s := New(9)
	for i := 0; i < 100; i++ {
		if v := s.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", v)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(-1) did not panic")
		}
	}()
	New(1).Intn(-1)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64RoughlyUniform(t *testing.T) {
	s := New(13)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[int(s.Float64()*10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d has %d samples, want ~%d", i, c, n/10)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.23 || got > 0.27 {
		t.Fatalf("Bool(0.25) hit rate %v, want ~0.25", got)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Fork()
	// Child draws must not change the parent's subsequent stream relative to
	// a parent that forked but never used the child.
	parent2 := New(23)
	_ = parent2.Fork()
	for i := 0; i < 1000; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != parent2.Uint64() {
			t.Fatal("child draws perturbed the parent stream")
		}
	}
}

func TestPerm(t *testing.T) {
	s := New(29)
	out := make([]int, 50)
	s.Perm(out)
	seen := make(map[int]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) {
			t.Fatalf("perm value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("perm value %d repeated", v)
		}
		seen[v] = true
	}
}

func TestPermEmptyAndSingle(t *testing.T) {
	s := New(31)
	s.Perm(nil) // must not panic
	one := make([]int, 1)
	s.Perm(one)
	if one[0] != 0 {
		t.Fatalf("perm of 1 element = %v", one)
	}
}

// Property: Uint64n output is always within range for arbitrary seed/n.
func TestQuickUint64nInRange(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		s := New(seed)
		for i := 0; i < 20; i++ {
			if s.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: reseeding with the same seed reproduces the stream exactly.
func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}
