// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every stochastic decision in the repository (workload generation, random
// sampling, page-fault injection) draws from an xrand.Source seeded from the
// run configuration, so simulations are bit-for-bit reproducible across runs
// and platforms. The generator is xoshiro256** seeded via splitmix64, which
// has a 256-bit state, passes BigCrush, and needs no allocation.
package xrand

import "math/bits"

// Source is a deterministic xoshiro256** generator. The zero value is not a
// valid source; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed using splitmix64 so that nearby seeds
// produce uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed resets the source to the stream identified by seed.
func (s *Source) Seed(seed uint64) {
	sm := seed
	for i := range s.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with an all-zero state; splitmix64 cannot
	// produce four zero words from any seed, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Uint64n returns a uniformly distributed value in [0, n). It panics if n is
// zero. Uses Lemire's multiply-shift rejection method.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Fork derives an independent child stream. Drawing from the child does not
// perturb the parent beyond the single Uint64 consumed here, which keeps
// generation order stable when new consumers are added.
func (s *Source) Fork() *Source {
	return New(s.Uint64())
}

// Perm fills out with a uniformly random permutation of [0, len(out)).
func (s *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
