// Package cpu models the 4-wide out-of-order core of Table 1 — a
// BOOM-style machine with an in-order front end (fetch through dispatch), a
// banked reorder buffer, per-class issue queues, a load/store unit backed by
// the cache hierarchy, and a commit stage that emits the per-cycle trace
// records every profiler consumes.
//
// The model is trace-driven on the correct path: the workload interpreter
// supplies committed-path dynamic instructions, and speculation is modelled
// through its timing effects (front-end stalls on mispredicted branches,
// squash-and-refetch on commit-time flushes and exceptions) rather than by
// executing wrong-path instructions. This matches the paper's observation
// point — the commit stage — exactly: Computing, Stalled, Flushed and
// Drained states (Fig. 3) all arise naturally from the pipeline dynamics.
package cpu

import (
	"errors"

	"github.com/tipprof/tip/internal/branch"
	"github.com/tipprof/tip/internal/cache"
	"github.com/tipprof/tip/internal/tlb"
	"github.com/tipprof/tip/internal/trace"
)

// IQConfig sizes one issue queue.
type IQConfig struct {
	// Entries is the queue capacity.
	Entries int
	// Width is the per-cycle issue width.
	Width int
}

// Config parameterises the core; DefaultConfig matches Table 1.
type Config struct {
	// FetchWidth is instructions fetched per cycle (8-wide fetch).
	FetchWidth int
	// FetchBufEntries is the fetch buffer capacity (32).
	FetchBufEntries int
	// DispatchWidth is decode/dispatch width (4-wide decode).
	DispatchWidth int
	// FetchToDispatch is the front-end depth in cycles from fetch to
	// dispatch-ready (decode, rename, dispatch stages).
	FetchToDispatch uint64
	// ROBEntries is the reorder buffer capacity (128).
	ROBEntries int
	// CommitWidth is the commit width and ROB bank count (4).
	CommitWidth int
	// IntIQ, MemIQ, FPIQ size the issue queues (40/4-issue, 24/2-issue,
	// 32/2-issue).
	IntIQ, MemIQ, FPIQ IQConfig
	// LSQEntries bounds in-flight loads+stores (32).
	LSQEntries int
	// StoreBufEntries bounds committed stores draining to the L1D.
	StoreBufEntries int
	// MaxBranches bounds outstanding unresolved branches (20).
	MaxBranches int
	// BTBEntries/BTBWays/RASDepth size the target predictors.
	BTBEntries, BTBWays, RASDepth int
	// BTBMissBubble is the front-end bubble when a taken control-flow
	// instruction misses the BTB (target fixed at decode).
	BTBMissBubble uint64
	// RedirectPenalty is the delay from resolving a mispredict (or
	// committing a flushing instruction) to fetch restarting.
	RedirectPenalty uint64
	// MaxCycles aborts runaway simulations after exactly this many cycles
	// (cycle values 0..MaxCycles-1 may execute); 0 means no cap.
	MaxCycles uint64
	// ClockHz is the nominal core frequency (for data-rate reporting
	// only; the simulator is cycle-based).
	ClockHz uint64

	// Hierarchy configures the caches and DRAM.
	Hierarchy cache.HierarchyConfig
	// TLB configures address translation.
	TLB tlb.Config
	// Tage configures the direction predictor.
	Tage branch.TageConfig

	// HandlerSeed seeds the OS fault-handler instruction streams.
	HandlerSeed uint64

	// SampleInterruptEvery, when nonzero, injects a PMU sampling
	// interrupt every that many cycles: the pipeline drains, the OS
	// handler runs (modelling perf copying TIP's CSRs to its buffer),
	// and the squashed instructions replay — the §3.2 sampling-overhead
	// mechanism. Zero disables interrupt modelling (profilers then
	// observe the trace out-of-band with no perturbation, like the
	// paper's FireSim methodology).
	SampleInterruptEvery uint64
}

// DefaultConfig returns the Table 1 configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth:      8,
		FetchBufEntries: 32,
		DispatchWidth:   4,
		FetchToDispatch: 5,
		ROBEntries:      128,
		CommitWidth:     4,
		IntIQ:           IQConfig{Entries: 40, Width: 4},
		MemIQ:           IQConfig{Entries: 24, Width: 2},
		FPIQ:            IQConfig{Entries: 32, Width: 2},
		LSQEntries:      32,
		StoreBufEntries: 12,
		MaxBranches:     20,
		BTBEntries:      512,
		BTBWays:         4,
		RASDepth:        16,
		BTBMissBubble:   2,
		RedirectPenalty: 2,
		ClockHz:         3_200_000_000,
		Hierarchy:       cache.DefaultHierarchyConfig(),
		TLB:             tlb.DefaultConfig(),
		Tage:            branch.DefaultTageConfig(),
		HandlerSeed:     0xfa117,
	}
}

// Validate reports why the configuration cannot drive a core, or nil when it
// can. Services accepting configurations from the outside (tipd) call it to
// reject partially-populated configs before they reach New, which panics.
func (c *Config) Validate() error {
	switch {
	case c.FetchWidth <= 0, c.FetchBufEntries <= 0, c.DispatchWidth <= 0,
		c.ROBEntries <= 0, c.CommitWidth <= 0, c.LSQEntries <= 0,
		c.StoreBufEntries <= 0, c.MaxBranches <= 0:
		return errors.New("cpu: non-positive structure size in config")
	case c.CommitWidth > trace.MaxBanks:
		return errors.New("cpu: commit width exceeds trace.MaxBanks")
	case c.ROBEntries%c.CommitWidth != 0:
		return errors.New("cpu: ROB entries must be a multiple of the bank count")
	case c.IntIQ.Entries <= 0 || c.IntIQ.Width <= 0 ||
		c.MemIQ.Entries <= 0 || c.MemIQ.Width <= 0 ||
		c.FPIQ.Entries <= 0 || c.FPIQ.Width <= 0:
		return errors.New("cpu: invalid issue queue config")
	}
	return nil
}

// validate panics on nonsensical configurations.
func (c *Config) validate() {
	if err := c.Validate(); err != nil {
		panic(err.Error())
	}
}

// Stats aggregates a run's outcomes.
type Stats struct {
	// Cycles is total execution time in core cycles.
	Cycles uint64
	// Committed is the number of committed instructions.
	Committed uint64
	// Fetched counts fetched instruction instances (including replays).
	Fetched uint64
	// Mispredicts counts resolved branch/return mispredictions.
	Mispredicts uint64
	// CSRFlushes counts commit-time pipeline flushes from CSR writes.
	CSRFlushes uint64
	// Exceptions counts raised page-fault exceptions.
	Exceptions uint64
	// BTBBubbles counts front-end bubbles from BTB misses.
	BTBBubbles uint64
	// StoreStallCycles counts commit cycles blocked on a full store
	// buffer.
	StoreStallCycles uint64
	// PMUInterrupts counts injected sampling interrupts.
	PMUInterrupts uint64
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}
