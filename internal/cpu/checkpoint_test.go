package cpu

import (
	"testing"

	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/trace"
)

// TestCheckpointRestoreFidelity is the checkpoint seam's core contract: a
// core restored from a checkpoint taken mid-sweep must behave bit-identically
// to the swept core continuing serially from the same point — every trace
// record and every statistic of a detailed window must match. This is what
// lets the parallel sampled scheduler claim its windows are the serial
// schedule's windows merely executed elsewhere.
func TestCheckpointRestoreFidelity(t *testing.T) {
	const ffInsts = 30_000
	const windowCycles = 4096
	mk := func() *program.Program { return loadProgram(256<<10, program.MemStride, 120_000) }

	// The sweep: a fresh core fast-forwards functionally, then checkpoints.
	pa := mk()
	sweepInterp := program.NewInterp(pa, 7)
	sweep := New(DefaultConfig(), pa, sweepInterp)
	sweep.MMU().PrefaultAll()
	ff := program.NewFastForward(pa)
	sweep.ArchCheckpoint(0)
	if executed, done := sweep.FastForward(ff, ffInsts); done || executed != ffInsts {
		t.Fatalf("FastForward executed %d (done=%v), want %d", executed, done, ffInsts)
	}
	var cp Checkpoint
	sweep.CheckpointInto(&cp)
	snap := sweepInterp.Clone() // architectural state at the checkpoint

	// Path A: the swept core itself runs the window (the serial schedule).
	serialRecs, serialStats := runWindow(t, sweep, windowCycles, false)

	// Path B: a different core restores the checkpoint and runs the same
	// window. The worker core is built identically to the sweep core
	// (same prefault prefix), as the scheduler's workers are.
	pb := mk()
	worker := New(DefaultConfig(), pb, program.NewInterp(pb, 7))
	worker.MMU().PrefaultAll()
	worker.Restore(&cp, snap, 0) // window 0: identity-preserving seed
	restoredRecs, restoredStats := runWindow(t, worker, windowCycles, true)

	if len(serialRecs) != len(restoredRecs) {
		t.Fatalf("serial window committed %d records, restored %d", len(serialRecs), len(restoredRecs))
	}
	for i := range serialRecs {
		if serialRecs[i] != restoredRecs[i] {
			t.Fatalf("record %d diverged:\nserial   %+v\nrestored %+v", i, serialRecs[i], restoredRecs[i])
		}
	}
	if serialStats != restoredStats {
		t.Fatalf("stats diverged:\nserial   %+v\nrestored %+v", serialStats, restoredStats)
	}
}

// TestCheckpointRestoreRepeatable pins restore idempotence: restoring the
// same checkpoint into the same core twice (as a pooled worker does across
// jobs) must reproduce the window exactly.
func TestCheckpointRestoreRepeatable(t *testing.T) {
	const ffInsts = 20_000
	const windowCycles = 2048
	p := loadProgram(64<<10, program.MemStride, 100_000)
	base := program.NewInterp(p, 3)
	sweep := New(DefaultConfig(), p, base)
	sweep.MMU().PrefaultAll()
	ff := program.NewFastForward(p)
	sweep.ArchCheckpoint(0)
	if _, done := sweep.FastForward(ff, ffInsts); done {
		t.Fatal("program finished during fast-forward")
	}
	var cp Checkpoint
	sweep.CheckpointInto(&cp)

	pw := loadProgram(64<<10, program.MemStride, 100_000)
	worker := New(DefaultConfig(), pw, program.NewInterp(pw, 3))
	worker.MMU().PrefaultAll()

	worker.Restore(&cp, base.Clone(), 5)
	recs1, stats1 := runWindow(t, worker, windowCycles, true)
	// Dirty the worker further, then restore the same checkpoint again.
	worker.Restore(&cp, base.Clone(), 5)
	recs2, stats2 := runWindow(t, worker, windowCycles, true)

	if len(recs1) != len(recs2) || stats1 != stats2 {
		t.Fatalf("repeated restore diverged: %d vs %d records, stats %+v vs %+v",
			len(recs1), len(recs2), stats1, stats2)
	}
	for i := range recs1 {
		if recs1[i] != recs2[i] {
			t.Fatalf("record %d diverged across restores", i)
		}
	}
}

// TestCheckpointWindowIdentity pins the per-window identity knobs: two
// restores of one checkpoint under different window numbers must produce the
// same committed work (cycles, instructions) while drawing their fetch IDs
// from disjoint ranges — FIDs are window-relative, not execution-relative.
func TestCheckpointWindowIdentity(t *testing.T) {
	const ffInsts = 20_000
	const windowCycles = 1024
	p := loadProgram(64<<10, program.MemStride, 100_000)
	base := program.NewInterp(p, 3)
	sweep := New(DefaultConfig(), p, base)
	sweep.MMU().PrefaultAll()
	ff := program.NewFastForward(p)
	sweep.ArchCheckpoint(0)
	if _, done := sweep.FastForward(ff, ffInsts); done {
		t.Fatal("program finished during fast-forward")
	}
	var cp Checkpoint
	sweep.CheckpointInto(&cp)

	pw := loadProgram(64<<10, program.MemStride, 100_000)
	worker := New(DefaultConfig(), pw, program.NewInterp(pw, 3))
	worker.MMU().PrefaultAll()

	worker.Restore(&cp, base.Clone(), 3)
	recs3, stats3 := runWindow(t, worker, windowCycles, true)
	worker.Restore(&cp, base.Clone(), 9)
	recs9, stats9 := runWindow(t, worker, windowCycles, true)

	if stats3.Committed != stats9.Committed || stats3.Cycles != stats9.Cycles {
		t.Fatalf("window number changed committed work: %+v vs %+v", stats3, stats9)
	}
	for i := range recs3 {
		a, b := recs3[i], recs9[i]
		for j := range a.Banks {
			if a.Banks[j].Valid && a.Banks[j].FID>>40 != 3 {
				t.Fatalf("window 3 record %d bank %d has FID %#x outside its window range", i, j, a.Banks[j].FID)
			}
			if b.Banks[j].Valid && b.Banks[j].FID>>40 != 9 {
				t.Fatalf("window 9 record %d bank %d has FID %#x outside its window range", i, j, b.Banks[j].FID)
			}
			a.Banks[j].FID, b.Banks[j].FID = 0, 0
		}
		a.ExceptionFID, b.ExceptionFID = 0, 0
		a.DispatchFID, b.DispatchFID = 0, 0
		a.YoungestFID, b.YoungestFID = 0, 0
		if a != b {
			t.Fatalf("record %d differs beyond its FIDs:\nwindow3 %+v\nwindow9 %+v", i, recs3[i], recs9[i])
		}
	}
}

// runWindow steps core for n cycles from local cycle 0, returning the
// committed records and the stats delta. resumeDone tells whether the core
// was prepared by Restore (already at local cycle 0) or needs ResumeFrom.
func runWindow(t *testing.T, core *Core, n uint64, restored bool) ([]trace.Record, Stats) {
	t.Helper()
	if !restored {
		core.ResumeFrom(0)
	}
	start := core.Stats()
	var recs []trace.Record
	var rec trace.Record
	for cycle := uint64(0); cycle < n; cycle++ {
		rec = trace.Record{}
		if core.Step(cycle, &rec) {
			t.Fatal("program finished inside the window; enlarge the workload")
		}
		if rec.CommitCount > 0 {
			recs = append(recs, rec)
		}
	}
	s := core.Stats()
	s.Cycles -= start.Cycles
	s.Committed -= start.Committed
	s.Fetched -= start.Fetched
	s.Mispredicts -= start.Mispredicts
	s.CSRFlushes -= start.CSRFlushes
	s.Exceptions -= start.Exceptions
	s.BTBBubbles -= start.BTBBubbles
	s.StoreStallCycles -= start.StoreStallCycles
	s.PMUInterrupts -= start.PMUInterrupts
	return recs, s
}
