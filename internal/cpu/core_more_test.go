package cpu

import (
	"testing"

	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/trace"
)

// pointerChaseProgram builds a serial chain of dependent loads over a
// region of the given size.
func pointerChaseProgram(size uint64, iters int) *program.Program {
	b := program.NewBuilder("chase")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Load(isa.IntReg(5), isa.IntReg(5), program.MemBehavior{
		Base: 1 << 30, Size: size, Pattern: program.MemChase,
	})
	b0.LoopBack(0, iters)
	b1 := f.NewBlock()
	b1.Ret()
	return b.MustBuild(0)
}

func TestPointerChaseSerializesOnMemory(t *testing.T) {
	// A DRAM-resident chase must average at least the LLC-miss latency
	// per load; an L1-resident chase is bounded by the L1 load-to-use.
	slow, _ := runProgram(t, pointerChaseProgram(64<<20, 3000), 1)
	fast, _ := runProgram(t, pointerChaseProgram(8<<10, 3000), 1)
	slowCPL := float64(slow.Cycles) / 3000 // cycles per load
	fastCPL := float64(fast.Cycles) / 3000
	if slowCPL < 40 {
		t.Fatalf("DRAM chase %.1f cycles/load, too fast", slowCPL)
	}
	if fastCPL > 12 {
		t.Fatalf("L1 chase %.1f cycles/load, too slow", fastCPL)
	}
}

func TestUnpipelinedDivide(t *testing.T) {
	// Back-to-back independent divides still serialize on the single
	// divider; ALU ops of the same count do not.
	build := func(kind isa.Kind) *program.Program {
		b := program.NewBuilder("div")
		f := b.Func("main")
		b0 := f.NewBlock()
		for i := 0; i < 4; i++ {
			b0.Op(kind, isa.IntReg(i+1), isa.IntReg(i+1))
		}
		b0.LoopBack(0, 1000)
		b1 := f.NewBlock()
		b1.Ret()
		return b.MustBuild(0)
	}
	div, _ := runProgram(t, build(isa.KindIntDiv), 1)
	alu, _ := runProgram(t, build(isa.KindIntALU), 1)
	// 4 divides/iter at 16 cycles on one unit: >= 64 cycles/iter.
	if perIter := float64(div.Cycles) / 1000; perIter < 60 {
		t.Fatalf("divide loop %.1f cycles/iter, divider not serializing", perIter)
	}
	if div.Cycles < 10*alu.Cycles {
		t.Fatalf("divides (%d) not dramatically slower than ALU (%d)", div.Cycles, alu.Cycles)
	}
}

func TestAtomicSerializesAndAccessesMemory(t *testing.T) {
	b := program.NewBuilder("atomic")
	f := b.Func("main")
	b0 := f.NewBlock()
	for i := 0; i < 4; i++ {
		b0.Op(isa.KindIntALU, isa.IntReg(i+1))
	}
	b0.Atomic(isa.IntReg(7), isa.IntReg(8), program.MemBehavior{Base: 1 << 30, Size: 4 << 10})
	b0.LoopBack(0, 500)
	b1 := f.NewBlock()
	b1.Ret()
	p := b.MustBuild(0)
	stats, _ := runProgram(t, p, 1)
	if stats.CSRFlushes != 0 {
		t.Fatal("atomics should not flush")
	}
	// Serialization bounds IPC well below the ALU-only rate.
	if stats.IPC() > 1.0 {
		t.Fatalf("atomic loop IPC %.2f, serialization missing", stats.IPC())
	}
}

func TestExceptionOnStore(t *testing.T) {
	b := program.NewBuilder("stfault")
	h := b.Func("os_handler")
	hb := h.NewBlock()
	hb.Op(isa.KindIntALU, isa.IntReg(1))
	hb.Ret()
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Store(isa.IntReg(1), isa.IntReg(2), program.MemBehavior{Base: 1 << 30, Size: 64})
	b0.Ret()
	b.SetEntry(f)
	b.SetHandler(h)
	p := b.MustBuild(0)

	cfg := DefaultConfig()
	cfg.MaxCycles = 1_000_000
	core := New(cfg, p, program.NewInterp(p, 1))
	stats, err := core.Run(&trace.CountingConsumer{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Exceptions != 1 {
		t.Fatalf("store fault raised %d exceptions", stats.Exceptions)
	}
	// Store + handler (2) + ret all commit.
	if stats.Committed != 4 {
		t.Fatalf("committed %d, want 4", stats.Committed)
	}
}

func TestROBFullBackpressure(t *testing.T) {
	// One DRAM-missing load followed by hundreds of independent ALU ops:
	// the ROB fills while the load stalls at its head.
	b := program.NewBuilder("robfull")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Load(isa.IntReg(1), isa.IntReg(2), program.MemBehavior{
		Base: 1 << 30, Size: 64 << 20, Pattern: program.MemRandom,
	})
	for i := 0; i < 20; i++ {
		b0.Op(isa.KindIntALU, isa.IntReg(3+i%6), isa.IntReg(3+i%6))
	}
	b0.LoopBack(0, 2000)
	b1 := f.NewBlock()
	b1.Ret()
	p := b.MustBuild(0)

	cfg := DefaultConfig()
	cfg.MaxCycles = 50_000_000
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	maxValid := 0
	cc := &callbackConsumer{onCycle: func(r *trace.Record) {
		n := 0
		for i := 0; i < r.NumBanks; i++ {
			if r.Banks[i].Valid {
				n++
			}
		}
		if n > maxValid {
			maxValid = n
		}
	}}
	if _, err := core.Run(cc); err != nil {
		t.Fatal(err)
	}
	if maxValid != cfg.CommitWidth {
		t.Fatalf("never saw all %d banks valid (max %d)", cfg.CommitWidth, maxValid)
	}
}

func TestDispatchObservationInTrace(t *testing.T) {
	p := independentALULoop(500)
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000_000
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	sawDispatch := false
	sawInFlight := false
	cc := &callbackConsumer{onCycle: func(r *trace.Record) {
		if r.DispatchValid {
			sawDispatch = true
			if r.DispatchPC == 0 {
				t.Error("dispatch-valid record with zero PC")
			}
		}
		if r.AnyInFlight {
			sawInFlight = true
		}
	}}
	if _, err := core.Run(cc); err != nil {
		t.Fatal(err)
	}
	if !sawDispatch {
		t.Fatal("no record ever showed a dispatch-stage instruction")
	}
	if !sawInFlight {
		t.Fatal("no record ever showed in-flight instructions")
	}
}

func TestYoungestFIDMonotoneWithinRun(t *testing.T) {
	p := independentALULoop(300)
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000_000
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	last := uint64(0)
	cc := &callbackConsumer{onCycle: func(r *trace.Record) {
		if r.AnyInFlight {
			if r.YoungestFID < last {
				t.Errorf("youngest FID regressed: %d after %d", r.YoungestFID, last)
			}
			last = r.YoungestFID
		}
	}}
	if _, err := core.Run(cc); err != nil {
		t.Fatal(err)
	}
}

func TestTLBStatsPopulated(t *testing.T) {
	// A large random footprint touches many pages: the D-TLB must miss
	// and the walker must run.
	p := loadProgram(32<<20, program.MemRandom, 3000)
	cfg := DefaultConfig()
	cfg.MaxCycles = 50_000_000
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	if _, err := core.Run(nil); err != nil {
		t.Fatal(err)
	}
	if core.MMU().DTLBMisses == 0 || core.MMU().Walks == 0 {
		t.Fatalf("TLB never missed on a 32 MB random footprint: %+v misses, %d walks",
			core.MMU().DTLBMisses, core.MMU().Walks)
	}
	if core.Hierarchy().DRAM.Accesses == 0 {
		t.Fatal("DRAM never accessed")
	}
}

func TestBTBBubblesCounted(t *testing.T) {
	// A program with many distinct taken jumps exceeds BTB warmup and
	// counts front-end bubbles.
	b := program.NewBuilder("jumps")
	f := b.Func("main")
	blocks := make([]*program.BlockBuilder, 40)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	for i := 0; i < 38; i++ {
		blocks[i].Op(isa.KindIntALU, isa.IntReg(1))
		blocks[i].Jump(i + 1)
	}
	blocks[38].LoopBack(0, 100)
	blocks[39].Ret()
	p := b.MustBuild(0)
	stats, _ := runProgram(t, p, 1)
	if stats.BTBBubbles == 0 {
		t.Fatal("taken jumps never missed the BTB")
	}
}

func TestCommitWidthNarrowCore(t *testing.T) {
	p := independentALULoop(2000)
	cfg := DefaultConfig()
	cfg.CommitWidth = 2
	cfg.DispatchWidth = 2
	cfg.ROBEntries = 64
	cfg.MaxCycles = 10_000_000
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	stats, err := core.Run(&trace.CountingConsumer{})
	if err != nil {
		t.Fatal(err)
	}
	if ipc := stats.IPC(); ipc > 2.01 {
		t.Fatalf("2-wide core reached IPC %.2f", ipc)
	}
	if ipc := stats.IPC(); ipc < 1.5 {
		t.Fatalf("2-wide core only reached IPC %.2f on independent ALUs", ipc)
	}
}

func TestSerializedThenException(t *testing.T) {
	// A fence immediately before a faulting load: serialization and the
	// exception path compose without deadlock.
	b := program.NewBuilder("mix")
	h := b.Func("os_handler")
	hb := h.NewBlock()
	hb.Op(isa.KindIntALU, isa.IntReg(1))
	hb.Ret()
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Op(isa.KindIntALU, isa.IntReg(2))
	b0.Fence()
	b0.Load(isa.IntReg(3), isa.IntReg(4), program.MemBehavior{Base: 1 << 30, Size: 64})
	b0.Ret()
	b.SetEntry(f)
	b.SetHandler(h)
	p := b.MustBuild(0)
	cfg := DefaultConfig()
	cfg.MaxCycles = 1_000_000
	core := New(cfg, p, program.NewInterp(p, 1))
	stats, err := core.Run(&trace.CountingConsumer{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Exceptions != 1 {
		t.Fatalf("exceptions = %d", stats.Exceptions)
	}
	if stats.Committed != 6 { // alu, fence, load, handler alu, handler ret, main ret
		t.Fatalf("committed = %d, want 6", stats.Committed)
	}
}

func TestFlushDuringSerializeRefetchesFetchBuffer(t *testing.T) {
	// A flushing CSR with younger instructions already in the fetch
	// buffer: they must be squashed and refetched, and all of them must
	// still commit exactly once.
	p := csrFlushProgram(50, true)
	stats, v := runProgram(t, p, 1)
	want := uint64(50*14 + 1) // 6 ALU + CSR + 6 ALU + branch per iter, + ret
	if stats.Committed != want {
		t.Fatalf("committed %d, want %d", stats.Committed, want)
	}
	if uint64(len(v.committedFID)) != want {
		t.Fatalf("distinct FIDs %d, want %d", len(v.committedFID), want)
	}
}

func TestPMUSamplingInterrupts(t *testing.T) {
	p := independentALULoop(3000)
	base, _ := runProgram(t, p, 1)

	cfg := DefaultConfig()
	cfg.MaxCycles = 50_000_000
	cfg.SampleInterruptEvery = 500
	core := New(cfg, independentALULoop(3000), nil)
	_ = core
	core2 := New(cfg, p, program.NewInterp(p, 1))
	core2.MMU().PrefaultAll()
	stats, err := core2.Run(&trace.CountingConsumer{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PMUInterrupts == 0 {
		t.Fatal("no interrupts injected")
	}
	wantInterrupts := stats.Cycles / cfg.SampleInterruptEvery
	if stats.PMUInterrupts < wantInterrupts-2 || stats.PMUInterrupts > wantInterrupts+2 {
		t.Fatalf("interrupts = %d, want ~%d", stats.PMUInterrupts, wantInterrupts)
	}
	// Interrupts add handler instructions and flush/replay cost.
	if stats.Cycles <= base.Cycles {
		t.Fatalf("interrupted run (%d cycles) not slower than base (%d)", stats.Cycles, base.Cycles)
	}
	// The application instruction count is unchanged; the handler adds
	// 43 instructions (3 blocks x 14 + ret) per interrupt... the ALU loop
	// program has no handler, so committed counts match exactly.
	if stats.Committed != base.Committed {
		t.Fatalf("committed %d != base %d", stats.Committed, base.Committed)
	}
}

func TestPMUInterruptWithHandlerProgram(t *testing.T) {
	// With a program that has an OS handler, the handler's instructions
	// commit on every interrupt.
	p := csrFlushProgram(200, false)
	// Rebuild with a handler attached.
	b := program.NewBuilder("withhandler")
	h := b.Func("os_handler")
	hb := h.NewBlock()
	for i := 0; i < 10; i++ {
		hb.Op(isa.KindIntALU, isa.IntReg(1+i%4))
	}
	hb.Ret()
	f := b.Func("main")
	b0 := f.NewBlock()
	for i := 0; i < 10; i++ {
		b0.Op(isa.KindIntALU, isa.IntReg(1+i%6))
	}
	b0.LoopBack(0, 2000)
	b1 := f.NewBlock()
	b1.Ret()
	b.SetEntry(f)
	b.SetHandler(h)
	p = b.MustBuild(0)

	cfg := DefaultConfig()
	cfg.MaxCycles = 50_000_000
	cfg.SampleInterruptEvery = 997
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	stats, err := core.Run(&trace.CountingConsumer{})
	if err != nil {
		t.Fatal(err)
	}
	app := uint64(2000*11 + 1)
	wantHandler := stats.PMUInterrupts * 11
	if stats.Committed != app+wantHandler {
		t.Fatalf("committed %d, want %d app + %d handler", stats.Committed, app, wantHandler)
	}
}
