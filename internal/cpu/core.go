package cpu

import (
	"fmt"
	"sync/atomic"

	"github.com/tipprof/tip/internal/branch"
	"github.com/tipprof/tip/internal/cache"
	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/tlb"
	"github.com/tipprof/tip/internal/trace"
)

// dep references a producing ROB entry; the reference is stale (and the
// operand ready) when the slot's uop tag no longer matches.
type dep struct {
	robIdx int32
	uop    uint64
}

// robEntry is one reorder-buffer slot.
type robEntry struct {
	d   program.DynInst
	fid uint64
	uop uint64

	iq     isa.IssueClass
	inIQ   bool
	issued bool
	// doneCycle is when the result is available (valid once issued).
	doneCycle uint64

	deps  [2]dep
	ndeps int
	// readyAt memoizes depsReady: once every still-matching producer has
	// issued, the entry becomes ready at exactly max(doneCycle), and that
	// bound never moves (tags are unique, commit waits for doneCycle, and a
	// squashed producer implies this entry was squashed with it). Caching it
	// turns the per-cycle dependence scan of a waiting instruction into one
	// comparison.
	readyAt      uint64
	readyAtKnown bool

	mispredicted     bool // resolved-mispredicted control flow
	exceptionPending bool // raises when it reaches the ROB head
	faultPage        uint64
	flushAtCommit    bool
	serialized       bool
}

// fetchedInst is a fetch-buffer element.
type fetchedInst struct {
	d            program.DynInst
	fid          uint64
	readyAt      uint64
	mispredicted bool
}

const invalidFID = ^uint64(0)

// Core is the simulated out-of-order processor.
type Core struct {
	cfg  Config
	prog *program.Program

	hier *cache.Hierarchy
	l1i  *cache.Cache
	l1d  *cache.Cache
	mmu  *tlb.MMU
	tage *branch.Tage
	btb  *branch.BTB
	ras  *branch.RAS
	// archRAS mirrors the RAS at commit so flushes can repair the
	// speculative fetch RAS instead of leaving it corrupted.
	archRAS *branch.RAS

	// Instruction supply.
	stream     program.Stream
	streamDone bool
	la         fetchLookahead
	pending    []program.DynInst
	pi         int
	// replayScratch is the retired backing array of pending from the last
	// pipeline flush, recycled ping-pong style so steady-state flushes
	// allocate nothing.
	replayScratch []program.DynInst

	// Front end.
	fetchBlockedUntil uint64
	waitBranchFID     uint64 // invalidFID when not waiting
	lastFetchLine     uint64
	fetchBuf          []fetchedInst // FIFO; head at index 0 via fbHead
	fbHead            int
	nextFID           uint64

	// Rename state: architectural reg -> producing ROB slot + uop tag.
	renameRob [isa.NumRegs]int32
	renameUop [isa.NumRegs]uint64

	// ROB ring buffer.
	rob      []robEntry
	robHead  int
	robCount int
	nextUop  uint64

	// Issue queues hold ROB slot indices in dispatch (age) order.
	iqs [isa.NumIssueClasses][]int32

	// Execution resources.
	intDivBusyUntil uint64
	fpDivBusyUntil  uint64
	lsqCount        int
	storeBuf        []uint64 // drain-completion cycles

	// Outstanding-branch bookkeeping: resolveAt times of unresolved
	// control flow, drained each cycle.
	branchResolve   []uint64
	serializeActive bool

	handlerSeed uint64
	pmuPending  bool

	stats Stats
}

type fetchLookahead struct {
	d     program.DynInst
	valid bool
}

// New builds a core executing prog from stream with a private memory
// hierarchy.
func New(cfg Config, prog *program.Program, stream program.Stream) *Core {
	hier := cache.NewHierarchy(cfg.Hierarchy)
	c := NewWithCaches(cfg, prog, stream, hier.L1I, hier.L1D)
	c.hier = hier
	return c
}

// NewWithCaches builds a core whose private L1 caches are supplied by the
// caller — the multi-core configuration, where per-core L1/L2 stacks share
// an LLC and DRAM (each physical core gets its own TIP unit, §3.2).
func NewWithCaches(cfg Config, prog *program.Program, stream program.Stream, l1i, l1d *cache.Cache) *Core {
	cfg.validate()
	c := &Core{
		cfg:     cfg,
		prog:    prog,
		l1i:     l1i,
		l1d:     l1d,
		tage:    branch.NewTage(cfg.Tage),
		btb:     branch.NewBTB(cfg.BTBEntries, cfg.BTBWays),
		ras:     branch.NewRAS(cfg.RASDepth),
		archRAS: branch.NewRAS(cfg.RASDepth),
		stream:  stream,
		rob:     make([]robEntry, cfg.ROBEntries),
	}
	c.mmu = tlb.New(cfg.TLB, c.l1d)
	c.waitBranchFID = invalidFID
	c.lastFetchLine = ^uint64(0)
	for i := range c.renameRob {
		c.renameRob[i] = -1
	}
	c.handlerSeed = cfg.HandlerSeed
	// Code pages are resident (the loader touched them); data pages
	// demand-fault unless the workload prefaults them.
	c.mmu.PrefaultRange(prog.Base(), prog.CodeBytes())
	return c
}

// MMU exposes the translation machinery (workloads prefault through it).
func (c *Core) MMU() *tlb.MMU { return c.mmu }

// Hierarchy exposes the cache hierarchy for inspection; nil when the core
// was built with NewWithCaches (shared-memory configurations).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// L1D exposes the core's private data cache.
func (c *Core) L1D() *cache.Cache { return c.l1d }

// Step advances the machine one cycle, filling rec with the commit-stage
// observation; it reports whether the core has fully drained. Exported for
// lockstep multi-core simulation — single-core users call Run.
func (c *Core) Step(cycle uint64, rec *trace.Record) bool {
	return c.step(cycle, rec)
}

// FinalizeStats records the run length after external stepping (Run does
// this automatically).
func (c *Core) FinalizeStats(lastCommitCycle uint64) {
	c.stats.Cycles = lastCommitCycle + 1
}

// Predictor exposes the direction predictor for inspection.
func (c *Core) Predictor() *branch.Tage { return c.tage }

// Stats returns the accumulated run statistics.
func (c *Core) Stats() Stats { return c.stats }

// supplyNext pulls the next correct-path instruction: lookahead first, then
// the replay queue, then the workload stream.
func (c *Core) supplyNext() (program.DynInst, bool) {
	if c.la.valid {
		c.la.valid = false
		return c.la.d, true
	}
	if c.pi < len(c.pending) {
		d := c.pending[c.pi]
		c.pi++
		if c.pi == len(c.pending) {
			c.pending = c.pending[:0]
			c.pi = 0
		}
		return d, true
	}
	if c.streamDone {
		return program.DynInst{}, false
	}
	d, ok := c.stream.Next()
	if !ok {
		c.streamDone = true
		return program.DynInst{}, false
	}
	return d, true
}

// unread pushes an instruction back into the lookahead slot.
func (c *Core) unread(d program.DynInst) {
	if c.la.valid {
		panic("cpu: double unread")
	}
	c.la = fetchLookahead{d: d, valid: true}
}

// anySupply reports whether any instruction remains to execute.
func (c *Core) anySupply() bool {
	return c.la.valid || c.pi < len(c.pending) || !c.streamDone
}

func (c *Core) fbLen() int { return len(c.fetchBuf) - c.fbHead }

func (c *Core) fbPush(f fetchedInst) { c.fetchBuf = append(c.fetchBuf, f) }

func (c *Core) fbPeek() *fetchedInst { return &c.fetchBuf[c.fbHead] }

func (c *Core) fbPop() fetchedInst {
	f := c.fetchBuf[c.fbHead]
	c.fbHead++
	if c.fbHead == len(c.fetchBuf) {
		c.fetchBuf = c.fetchBuf[:0]
		c.fbHead = 0
	} else if c.fbHead >= 64 {
		// Compact so the backing array stays bounded in steady state.
		n := copy(c.fetchBuf, c.fetchBuf[c.fbHead:])
		c.fetchBuf = c.fetchBuf[:n]
		c.fbHead = 0
	}
	return f
}

// runsStarted counts Core.Run invocations process-wide. Tests use the delta
// to assert how many cycle-level simulations an evaluation pipeline performs.
var runsStarted atomic.Uint64

// RunsStarted returns the process-wide count of Core.Run invocations.
func RunsStarted() uint64 { return runsStarted.Load() }

// Run simulates until the program finishes (or MaxCycles), emitting one
// trace record per cycle to consumer. It returns the final statistics.
func (c *Core) Run(consumer trace.Consumer) (Stats, error) {
	runsStarted.Add(1)
	var rec trace.Record
	cycle := uint64(0)
	lastCommitCycle := uint64(0)
	for {
		if c.cfg.MaxCycles > 0 && cycle > c.cfg.MaxCycles {
			return c.stats, fmt.Errorf("cpu: exceeded MaxCycles=%d (committed %d)", c.cfg.MaxCycles, c.stats.Committed)
		}
		done := c.step(cycle, &rec)
		if consumer != nil {
			consumer.OnCycle(&rec)
		}
		if rec.CommitCount > 0 {
			lastCommitCycle = cycle
		}
		if done {
			break
		}
		cycle++
	}
	c.stats.Cycles = lastCommitCycle + 1
	if consumer != nil {
		consumer.Finish(c.stats.Cycles)
	}
	return c.stats, nil
}

// step advances one cycle: commit (and record), issue, dispatch, fetch. It
// reports whether the machine is fully drained with no supply left.
func (c *Core) step(cycle uint64, rec *trace.Record) bool {
	c.drainBranchResolve(cycle)
	if c.cfg.SampleInterruptEvery > 0 && cycle > 0 && cycle%c.cfg.SampleInterruptEvery == 0 {
		c.pmuPending = true
	}
	c.commit(cycle, rec)
	c.issue(cycle)
	c.dispatch(cycle)
	c.fetch(cycle)
	return c.robCount == 0 && c.fbLen() == 0 && !c.anySupply()
}

func (c *Core) drainBranchResolve(cycle uint64) {
	out := c.branchResolve[:0]
	for _, t := range c.branchResolve {
		if t > cycle {
			out = append(out, t)
		}
	}
	c.branchResolve = out
}

// ---------------------------------------------------------------------------
// Commit stage

// commit records the commit-stage state for this cycle and retires up to
// CommitWidth executed instructions, handling exceptions, flushing CSRs,
// and store-buffer pressure.
func (c *Core) commit(cycle uint64, rec *trace.Record) {
	*rec = trace.Record{Cycle: cycle, NumBanks: c.cfg.CommitWidth}

	cw := c.cfg.CommitWidth
	if c.robCount == 0 {
		rec.ROBEmpty = true
	} else {
		rec.HeadBank = uint8(c.robHead % cw)
		n := c.robCount
		if n > cw {
			n = cw
		}
		for i := 0; i < n; i++ {
			slot := (c.robHead + i) % c.cfg.ROBEntries
			e := &c.rob[slot]
			b := &rec.Banks[slot%cw]
			b.Valid = true
			b.PC = e.d.PC()
			b.FID = e.fid
			b.InstIndex = int32(e.d.SI.Index)
			b.Mispredicted = e.mispredicted
			b.Flush = e.flushAtCommit
			b.Exception = e.exceptionPending
		}
	}

	// PMU sampling interrupt: taken at the next cycle boundary, draining
	// in-flight work into the OS handler (perf's CSR-copy path, §3.2).
	if c.pmuPending {
		c.pmuPending = false
		c.stats.PMUInterrupts++
		c.observeFrontEnd(cycle, rec)
		c.raiseInterrupt(cycle)
		return
	}

	// Exception: raised when the excepting instruction is at the head
	// and its page walk has completed.
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		if h.exceptionPending && h.issued && h.doneCycle <= cycle {
			rec.ExceptionRaised = true
			rec.ExceptionPC = h.d.PC()
			rec.ExceptionFID = h.fid
			rec.ExceptionInstIndex = int32(h.d.SI.Index)
			c.observeFrontEnd(cycle, rec)
			c.raiseException(cycle, h)
			return
		}
	}

	committed := 0
	for committed < cw && c.robCount > 0 {
		e := &c.rob[c.robHead]
		if !e.issued || e.doneCycle > cycle {
			break
		}
		if e.exceptionPending {
			// Became head mid-group; raise next cycle.
			break
		}
		if e.d.SI.Kind == isa.KindStore {
			if !c.retireStore(e, cycle) {
				c.stats.StoreStallCycles++
				break
			}
		}
		slot := c.robHead
		rec.Banks[slot%cw].Committing = true
		committed++
		c.stats.Committed++
		switch e.d.SI.Kind {
		case isa.KindCall:
			c.archRAS.Push(e.d.PC() + isa.InstBytes)
		case isa.KindRet:
			c.archRAS.Pop(e.d.NextPC)
		}
		// Clear rename mappings that point at the retiring entry.
		if dst := e.d.SI.Dst; dst != isa.RegZero {
			if c.renameRob[dst] == int32(slot) && c.renameUop[dst] == e.uop {
				c.renameRob[dst] = -1
			}
		}
		if e.serialized {
			c.serializeActive = false
		}
		flush := e.flushAtCommit
		e.uop = 0 // invalidate tag so dependents see ready
		c.robHead = (c.robHead + 1) % c.cfg.ROBEntries
		c.robCount--
		if e.d.SI.Kind.IsMem() {
			c.lsqCount--
		}
		if flush {
			c.stats.CSRFlushes++
			c.observeFrontEnd(cycle, rec)
			rec.CommitCount = uint8(committed)
			c.flushPipeline(cycle, nil)
			return
		}
	}
	rec.CommitCount = uint8(committed)
	c.observeFrontEnd(cycle, rec)
}

// retireStore pushes a committing store into the store buffer; it reports
// false when the buffer is full (the store stalls at the head).
func (c *Core) retireStore(e *robEntry, cycle uint64) bool {
	// Drop drained entries.
	out := c.storeBuf[:0]
	for _, t := range c.storeBuf {
		if t > cycle {
			out = append(out, t)
		}
	}
	c.storeBuf = out
	if len(c.storeBuf) >= c.cfg.StoreBufEntries {
		return false
	}
	done := c.l1d.Access(e.d.MemAddr, true, cycle)
	c.storeBuf = append(c.storeBuf, done)
	return true
}

// observeFrontEnd fills the dispatch-stage and youngest-in-flight fields.
func (c *Core) observeFrontEnd(cycle uint64, rec *trace.Record) {
	if c.fbLen() > 0 {
		f := c.fbPeek()
		if f.readyAt <= cycle {
			rec.DispatchValid = true
			rec.DispatchPC = f.d.PC()
			rec.DispatchFID = f.fid
			rec.DispatchInstIndex = int32(f.d.SI.Index)
		}
	}
	switch {
	case c.fbLen() > 0:
		rec.AnyInFlight = true
		rec.YoungestFID = c.fetchBuf[len(c.fetchBuf)-1].fid
	case c.robCount > 0:
		rec.AnyInFlight = true
		tail := (c.robHead + c.robCount - 1) % c.cfg.ROBEntries
		rec.YoungestFID = c.rob[tail].fid
	default:
		// The whole machine retired this cycle (commit has already
		// drained the ROB by the time this runs), but the instructions
		// recorded in the banks were still in flight when the commit
		// stage observed them: the record must cover their FIDs.
		for i := 0; i < rec.NumBanks; i++ {
			if b := &rec.Banks[i]; b.Valid && (!rec.AnyInFlight || b.FID > rec.YoungestFID) {
				rec.AnyInFlight = true
				rec.YoungestFID = b.FID
			}
		}
	}
}

// raiseInterrupt squashes all in-flight instructions and redirects fetch to
// the OS handler; the squashed instructions replay afterwards. This is the
// PMU sampling interrupt (the handler stands in for perf copying TIP's six
// CSRs into its memory buffer).
func (c *Core) raiseInterrupt(cycle uint64) {
	var handlerInsts []program.DynInst
	if hf := c.prog.Handler(); hf != nil {
		it := program.NewInterpFunc(c.prog, hf, c.handlerSeed)
		c.handlerSeed = c.handlerSeed*6364136223846793005 + 1
		for {
			d, ok := it.Next()
			if !ok {
				break
			}
			handlerInsts = append(handlerInsts, d)
			if len(handlerInsts) > 100000 {
				panic("cpu: runaway interrupt handler")
			}
		}
	}
	c.flushPipeline(cycle, handlerInsts)
}

// raiseException squashes everything (the excepting instruction included),
// installs the missing page, and redirects fetch to the OS handler followed
// by replay of the squashed instructions.
func (c *Core) raiseException(cycle uint64, h *robEntry) {
	c.stats.Exceptions++
	c.mmu.InstallPage(h.faultPage)

	var handlerInsts []program.DynInst
	if hf := c.prog.Handler(); hf != nil {
		it := program.NewInterpFunc(c.prog, hf, c.handlerSeed)
		c.handlerSeed = c.handlerSeed*6364136223846793005 + 1
		for {
			d, ok := it.Next()
			if !ok {
				break
			}
			handlerInsts = append(handlerInsts, d)
			if len(handlerInsts) > 100000 {
				panic("cpu: runaway exception handler")
			}
		}
	}
	c.flushPipeline(cycle, handlerInsts)
}

// flushPipeline squashes all in-flight instructions (ROB and front end) and
// queues prefix + squashed instructions for refetch. The ROB entries that
// remain are all younger than the flush point because the caller has already
// retired everything older.
func (c *Core) flushPipeline(cycle uint64, prefix []program.DynInst) {
	need := len(prefix) + c.robCount + c.fbLen() + 2 + len(c.pending) - c.pi
	replay := c.replayScratch[:0]
	if cap(replay) < need {
		replay = make([]program.DynInst, 0, need)
	}
	replay = append(replay, prefix...)
	for i := 0; i < c.robCount; i++ {
		slot := (c.robHead + i) % c.cfg.ROBEntries
		replay = append(replay, c.rob[slot].d)
		c.rob[slot].uop = 0
	}
	for i := c.fbHead; i < len(c.fetchBuf); i++ {
		replay = append(replay, c.fetchBuf[i].d)
	}
	if c.la.valid {
		replay = append(replay, c.la.d)
		c.la.valid = false
	}
	replay = append(replay, c.pending[c.pi:]...)

	// Ping-pong: the old pending array becomes the next flush's scratch.
	// replay was built above (including the tail copy from c.pending), so
	// the two backing arrays never alias live data.
	c.replayScratch = c.pending[:0]
	c.pending = replay
	c.pi = 0
	c.robCount = 0
	c.robHead = 0
	c.fetchBuf = c.fetchBuf[:0]
	c.fbHead = 0
	for i := range c.renameRob {
		c.renameRob[i] = -1
	}
	for i := range c.iqs {
		c.iqs[i] = c.iqs[i][:0]
	}
	c.lsqCount = 0
	c.branchResolve = c.branchResolve[:0]
	c.serializeActive = false
	c.waitBranchFID = invalidFID
	c.lastFetchLine = ^uint64(0)
	c.ras.CopyFrom(c.archRAS)
	c.fetchBlockedUntil = cycle + c.cfg.RedirectPenalty
}

// ---------------------------------------------------------------------------
// Issue/execute

// issue selects ready instructions from each queue, oldest first, and
// computes their completion times.
func (c *Core) issue(cycle uint64) {
	for class := 0; class < isa.NumIssueClasses; class++ {
		width := c.iqWidth(isa.IssueClass(class))
		iq := c.iqs[class]
		issued := 0
		w := 0
		for r := 0; r < len(iq); r++ {
			idx := iq[r]
			e := &c.rob[idx]
			if issued >= width || !c.depsReady(e, cycle) || !c.unitFree(e, cycle) {
				iq[w] = idx
				w++
				continue
			}
			c.execute(e, cycle)
			issued++
		}
		c.iqs[class] = iq[:w]
	}
}

func (c *Core) iqWidth(class isa.IssueClass) int {
	switch class {
	case isa.IssueInt:
		return c.cfg.IntIQ.Width
	case isa.IssueMem:
		return c.cfg.MemIQ.Width
	default:
		return c.cfg.FPIQ.Width
	}
}

func (c *Core) iqCap(class isa.IssueClass) int {
	switch class {
	case isa.IssueInt:
		return c.cfg.IntIQ.Entries
	case isa.IssueMem:
		return c.cfg.MemIQ.Entries
	default:
		return c.cfg.FPIQ.Entries
	}
}

func (c *Core) depsReady(e *robEntry, cycle uint64) bool {
	if e.readyAtKnown {
		return cycle >= e.readyAt
	}
	bound := uint64(0)
	for i := 0; i < e.ndeps; i++ {
		d := e.deps[i]
		p := &c.rob[d.robIdx]
		if p.uop != d.uop {
			continue // producer retired or squashed: value in regfile
		}
		if !p.issued {
			return false // completion cycle not knowable yet
		}
		if p.doneCycle > bound {
			bound = p.doneCycle
		}
	}
	e.readyAt = bound
	e.readyAtKnown = true
	return cycle >= bound
}

func (c *Core) unitFree(e *robEntry, cycle uint64) bool {
	switch e.d.SI.Kind {
	case isa.KindIntDiv:
		return c.intDivBusyUntil <= cycle
	case isa.KindFPDiv:
		return c.fpDivBusyUntil <= cycle
	}
	return true
}

// execute computes e's completion time, accessing the memory system for
// loads/stores and resolving control flow.
func (c *Core) execute(e *robEntry, cycle uint64) {
	e.issued = true
	e.inIQ = false
	kind := e.d.SI.Kind
	lat := uint64(isa.Latency(kind))

	switch kind {
	case isa.KindLoad:
		tr := c.mmu.TranslateData(e.d.MemAddr, cycle+1)
		if tr.Fault {
			e.exceptionPending = true
			e.faultPage = tlb.PageOf(e.d.MemAddr)
			e.doneCycle = tr.Done
		} else {
			e.doneCycle = c.l1d.Access(e.d.MemAddr, false, tr.Done)
		}
	case isa.KindStore:
		tr := c.mmu.TranslateData(e.d.MemAddr, cycle+1)
		if tr.Fault {
			e.exceptionPending = true
			e.faultPage = tlb.PageOf(e.d.MemAddr)
			e.doneCycle = tr.Done
		} else {
			// Address+data resolved; the write happens at commit.
			e.doneCycle = tr.Done + 1
		}
	case isa.KindAtomic:
		tr := c.mmu.TranslateData(e.d.MemAddr, cycle+1)
		if tr.Fault {
			e.exceptionPending = true
			e.faultPage = tlb.PageOf(e.d.MemAddr)
			e.doneCycle = tr.Done
		} else {
			e.doneCycle = c.l1d.Access(e.d.MemAddr, true, tr.Done) + lat
		}
	case isa.KindIntDiv:
		e.doneCycle = cycle + lat
		c.intDivBusyUntil = e.doneCycle
	case isa.KindFPDiv:
		e.doneCycle = cycle + lat
		c.fpDivBusyUntil = e.doneCycle
	default:
		e.doneCycle = cycle + lat
	}

	if kind.IsControlFlow() {
		c.branchResolve = append(c.branchResolve, e.doneCycle)
		if e.fid == c.waitBranchFID {
			// Mispredict resolved: fetch restarts on the correct path.
			c.waitBranchFID = invalidFID
			c.fetchBlockedUntil = maxU64(c.fetchBlockedUntil, e.doneCycle+c.cfg.RedirectPenalty)
			c.lastFetchLine = ^uint64(0)
		}
	}
}

// ---------------------------------------------------------------------------
// Dispatch

// dispatch moves up to DispatchWidth instructions from the fetch buffer
// into the ROB and issue queues, enforcing resource limits and serialization.
func (c *Core) dispatch(cycle uint64) {
	if c.serializeActive {
		return
	}
	for n := 0; n < c.cfg.DispatchWidth; n++ {
		if c.fbLen() == 0 {
			return
		}
		f := c.fbPeek()
		if f.readyAt > cycle {
			return
		}
		in := f.d.SI
		if in.Kind.IsSerializing() && c.robCount != 0 {
			return // drain before dispatching a serialized instruction
		}
		if c.robCount == c.cfg.ROBEntries {
			return
		}
		class := isa.IssueClassOf(in.Kind)
		if len(c.iqs[class]) >= c.iqCap(class) {
			return
		}
		if in.Kind.IsMem() && c.lsqCount >= c.cfg.LSQEntries {
			return
		}
		if in.Kind.IsControlFlow() && len(c.branchResolve) >= c.cfg.MaxBranches {
			return
		}

		c.fbPop()
		slot := (c.robHead + c.robCount) % c.cfg.ROBEntries
		c.robCount++
		c.nextUop++
		e := &c.rob[slot]
		*e = robEntry{
			d:             f.d,
			fid:           f.fid,
			uop:           c.nextUop,
			iq:            class,
			inIQ:          true,
			mispredicted:  f.mispredicted,
			flushAtCommit: in.FlushAtCommit,
			serialized:    in.Kind.IsSerializing(),
		}
		for _, src := range in.Srcs {
			if src == isa.RegZero {
				continue
			}
			if p := c.renameRob[src]; p >= 0 {
				e.deps[e.ndeps] = dep{robIdx: p, uop: c.renameUop[src]}
				e.ndeps++
			}
		}
		if dst := in.Dst; dst != isa.RegZero {
			c.renameRob[dst] = int32(slot)
			c.renameUop[dst] = c.nextUop
		}
		if in.Kind.IsMem() {
			c.lsqCount++
		}
		c.iqs[class] = append(c.iqs[class], int32(slot))
		if e.serialized {
			c.serializeActive = true
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Fetch

// fetch fills the fetch buffer with correct-path instructions, modelling
// I-cache/I-TLB latency per line, branch prediction, BTB bubbles, and
// blocking on unresolved mispredictions.
func (c *Core) fetch(cycle uint64) {
	if cycle < c.fetchBlockedUntil || c.waitBranchFID != invalidFID {
		return
	}
	for delivered := 0; delivered < c.cfg.FetchWidth; delivered++ {
		if c.fbLen() >= c.cfg.FetchBufEntries {
			return
		}
		d, ok := c.supplyNext()
		if !ok {
			return
		}
		pc := d.PC()
		line := pc >> 6
		if line != c.lastFetchLine {
			tr := c.mmu.TranslateFetch(pc, cycle)
			if tr.Fault {
				// Code pages are prefaulted; an I-side fault means a
				// workload bug.
				panic(fmt.Sprintf("cpu: instruction fetch fault at %#x", pc))
			}
			done := c.l1i.Access(pc, false, tr.Done)
			c.lastFetchLine = line
			if done > cycle+1 {
				c.fetchBlockedUntil = done
				c.unread(d)
				return
			}
		}

		fid := c.nextFID
		c.nextFID++
		c.stats.Fetched++
		mispred := false
		bubble := false
		switch d.SI.Kind {
		case isa.KindBranch:
			pred := c.tage.Predict(pc)
			c.tage.Update(pc, d.Taken)
			if pred != d.Taken {
				mispred = true
			} else if d.Taken {
				if _, ok := c.btb.Lookup(pc); !ok {
					c.btb.Insert(pc, d.NextPC)
					bubble = true
				}
			}
		case isa.KindJump:
			if _, ok := c.btb.Lookup(pc); !ok {
				c.btb.Insert(pc, d.NextPC)
				bubble = true
			}
		case isa.KindCall:
			c.ras.Push(pc + isa.InstBytes)
			if _, ok := c.btb.Lookup(pc); !ok {
				c.btb.Insert(pc, d.NextPC)
				bubble = true
			}
		case isa.KindRet:
			if d.NextPC != 0 { // 0 = end of program
				if _, correct := c.ras.Pop(d.NextPC); !correct {
					mispred = true
				}
			}
		}

		c.fbPush(fetchedInst{d: d, fid: fid, readyAt: cycle + c.cfg.FetchToDispatch, mispredicted: mispred})

		if mispred {
			c.stats.Mispredicts++
			// Fetch stalls until the mispredicted instruction
			// resolves at execute.
			c.waitBranchFID = fid
			return
		}
		if bubble {
			c.stats.BTBBubbles++
			c.fetchBlockedUntil = cycle + c.cfg.BTBMissBubble
			c.lastFetchLine = ^uint64(0)
			return
		}
		if d.SI.Kind.IsControlFlow() && d.Taken {
			// A taken redirect ends the fetch group.
			c.lastFetchLine = ^uint64(0)
			return
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
