package cpu

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/tipprof/tip/internal/branch"
	"github.com/tipprof/tip/internal/cache"
	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/tlb"
	"github.com/tipprof/tip/internal/trace"
)

// dep references a producing ROB entry; the reference is stale (and the
// operand ready) when the slot's uop tag no longer matches.
type dep struct {
	robIdx int32
	uop    uint64
}

// instMeta is the per-static-instruction decode packet the pipeline stages
// consume: everything dispatch/issue/execute/commit need from program.Inst,
// packed into eight bytes and indexed by Inst.Index. Building the table once
// per core replaces the per-dynamic-instance pointer chase into the much
// larger Inst struct (whose hot fields share cache lines with report strings
// and behaviour pointers) with one dense-array load.
type instMeta struct {
	lat   uint16
	kind  isa.Kind
	class isa.IssueClass
	dst   isa.Reg
	srcs  [2]isa.Reg
	flags uint8
}

const (
	metaMem uint8 = 1 << iota
	metaControlFlow
	metaSerializing
	metaFlushAtCommit
)

func buildInstMeta(prog *program.Program) []instMeta {
	meta := make([]instMeta, prog.NumInsts())
	for i := range meta {
		in := prog.InstByIndex(i)
		mi := &meta[i]
		mi.lat = uint16(isa.Latency(in.Kind))
		mi.kind = in.Kind
		mi.class = isa.IssueClassOf(in.Kind)
		mi.dst = in.Dst
		mi.srcs = in.Srcs
		if in.Kind.IsMem() {
			mi.flags |= metaMem
		}
		if in.Kind.IsControlFlow() {
			mi.flags |= metaControlFlow
		}
		if in.Kind.IsSerializing() {
			mi.flags |= metaSerializing
		}
		if in.FlushAtCommit {
			mi.flags |= metaFlushAtCommit
		}
	}
	return meta
}

// robEntry is one reorder-buffer slot.
type robEntry struct {
	d   program.DynInst
	fid uint64
	uop uint64
	// pc, instIdx and mi cache the static-instruction facts that commit,
	// issue and execute read every cycle, so the per-cycle loops never
	// dereference d.SI.
	pc      uint64
	instIdx int32
	mi      instMeta

	issued bool
	// doneCycle is when the result is available (valid once issued).
	doneCycle uint64

	deps  [2]dep
	ndeps int

	mispredicted     bool // resolved-mispredicted control flow
	exceptionPending bool // raises when it reaches the ROB head
	faultPage        uint64
}

// fetchedInst is a fetch-buffer element.
type fetchedInst struct {
	d            program.DynInst
	pc           uint64
	fid          uint64
	readyAt      uint64
	instIdx      int32
	mispredicted bool
}

const invalidFID = ^uint64(0)

// Core is the simulated out-of-order processor.
type Core struct {
	cfg  Config
	prog *program.Program
	// meta is the per-static-instruction decode table, indexed by Inst.Index.
	meta []instMeta

	// Hot-path scalars hoisted out of cfg so the per-cycle loops read small
	// adjacent fields (and index arrays) instead of a sprawling nested
	// struct. All are fixed at construction.
	commitWidth     int
	robEntries      int
	dispatchWidth   int
	fetchWidth      int
	lsqEntries      int
	storeBufCap     int
	maxBranches     int
	fetchToDispatch uint64
	redirectPenalty uint64
	btbMissBubble   uint64
	iqWidths        [isa.NumIssueClasses]int
	iqCaps          [isa.NumIssueClasses]int

	hier *cache.Hierarchy
	l1i  *cache.Cache
	l1d  *cache.Cache
	mmu  *tlb.MMU
	tage *branch.Tage
	btb  *branch.BTB
	ras  *branch.RAS
	// archRAS mirrors the RAS at commit so flushes can repair the
	// speculative fetch RAS instead of leaving it corrupted.
	archRAS *branch.RAS

	// Instruction supply.
	stream     program.Stream
	streamDone bool
	la         fetchLookahead
	pending    []program.DynInst
	pi         int
	// replayScratch is the retired backing array of pending from the last
	// pipeline flush, recycled ping-pong style so steady-state flushes
	// allocate nothing.
	replayScratch []program.DynInst

	// Front end.
	fetchBlockedUntil uint64
	waitBranchFID     uint64 // invalidFID when not waiting
	lastFetchLine     uint64
	// ffLastLine is the fast-forward warming loop's fetch-line memo (the
	// functional analogue of lastFetchLine); ^0 between fast-forwards.
	ffLastLine uint64
	// ffWarmTage gates direction-predictor training during fast-forward:
	// on only within the bounded warm tail of each leg (ffTageWarmTail).
	ffWarmTage bool
	// fetchBuf is a fixed ring of FetchBufEntries slots; fbHead is the
	// oldest element, fbCount the occupancy. A ring never memmoves, unlike
	// the previous append-and-compact FIFO.
	fetchBuf []fetchedInst
	fbHead   int
	fbCount  int
	nextFID  uint64

	// Rename state: architectural reg -> producing ROB slot + uop tag.
	renameRob [isa.NumRegs]int32
	renameUop [isa.NumRegs]uint64

	// ROB ring buffer. robTail is the next free slot ((robHead+robCount) mod
	// robEntries) and robHeadBank the head's commit bank (robHead mod
	// CommitWidth); both are maintained incrementally so the per-cycle loops
	// never divide. robHeadBank stays consistent across the robHead wrap
	// because config validation enforces ROBEntries % CommitWidth == 0.
	rob         []robEntry
	robHead     int
	robTail     int
	robHeadBank int
	robCount    int
	nextUop     uint64

	// Issue queues hold ROB slot indices in dispatch (age) order.
	iqs [isa.NumIssueClasses][]iqEntry

	// issueEpoch counts issued instructions. iqScanEpoch[class] is its value
	// when that queue's wakeup scan last finished: while the two match, no
	// instruction has issued since every blocked entry in the queue was
	// (re)checked, so none of their producers can have issued either (an
	// instruction cannot retire without issuing) and the scan skips the
	// producer loads outright. uint32 wrap cannot alias: scans run every
	// cycle and the epoch moves at most issue-width per cycle.
	issueEpoch  uint32
	iqScanEpoch [isa.NumIssueClasses]uint32

	// iqMinReady[class] lower-bounds the next cycle at which any entry
	// with a pinned ready time could issue (maintained by the scan and by
	// dispatch). While cycle < iqMinReady[class] AND the epochs match, the
	// whole scan is provably a no-op and is skipped: no pinned entry is
	// due, and no blocked entry can have been woken (waking requires an
	// issue, which would move issueEpoch).
	iqMinReady [isa.NumIssueClasses]uint64

	// Execution resources.
	intDivBusyUntil uint64
	fpDivBusyUntil  uint64
	lsqCount        int
	storeBuf        []uint64 // drain-completion cycles

	// Outstanding-branch bookkeeping: resolveAt times of unresolved
	// control flow, drained each cycle.
	branchResolve   []uint64
	serializeActive bool

	handlerSeed uint64
	pmuPending  bool
	// nextSample is the next cycle at which the PMU sampling interrupt
	// fires (^0 when sampling is off); a countdown comparison instead of
	// the previous per-cycle modulo.
	nextSample  uint64
	sampleEvery uint64

	stats Stats
}

type fetchLookahead struct {
	d     program.DynInst
	valid bool
}

// New builds a core executing prog from stream with a private memory
// hierarchy.
func New(cfg Config, prog *program.Program, stream program.Stream) *Core {
	hier := cache.NewHierarchy(cfg.Hierarchy)
	c := NewWithCaches(cfg, prog, stream, hier.L1I, hier.L1D)
	c.hier = hier
	return c
}

// NewWithCaches builds a core whose private L1 caches are supplied by the
// caller — the multi-core configuration, where per-core L1/L2 stacks share
// an LLC and DRAM (each physical core gets its own TIP unit, §3.2).
func NewWithCaches(cfg Config, prog *program.Program, stream program.Stream, l1i, l1d *cache.Cache) *Core {
	cfg.validate()
	c := &Core{
		cfg:      cfg,
		prog:     prog,
		meta:     buildInstMeta(prog),
		l1i:      l1i,
		l1d:      l1d,
		tage:     branch.NewTage(cfg.Tage),
		btb:      branch.NewBTB(cfg.BTBEntries, cfg.BTBWays),
		ras:      branch.NewRAS(cfg.RASDepth),
		archRAS:  branch.NewRAS(cfg.RASDepth),
		stream:   stream,
		rob:      make([]robEntry, cfg.ROBEntries),
		fetchBuf: make([]fetchedInst, cfg.FetchBufEntries),

		commitWidth:     cfg.CommitWidth,
		robEntries:      cfg.ROBEntries,
		dispatchWidth:   cfg.DispatchWidth,
		fetchWidth:      cfg.FetchWidth,
		lsqEntries:      cfg.LSQEntries,
		storeBufCap:     cfg.StoreBufEntries,
		maxBranches:     cfg.MaxBranches,
		fetchToDispatch: cfg.FetchToDispatch,
		redirectPenalty: cfg.RedirectPenalty,
		btbMissBubble:   cfg.BTBMissBubble,
		iqWidths: [isa.NumIssueClasses]int{
			isa.IssueInt: cfg.IntIQ.Width,
			isa.IssueMem: cfg.MemIQ.Width,
			isa.IssueFP:  cfg.FPIQ.Width,
		},
		iqCaps: [isa.NumIssueClasses]int{
			isa.IssueInt: cfg.IntIQ.Entries,
			isa.IssueMem: cfg.MemIQ.Entries,
			isa.IssueFP:  cfg.FPIQ.Entries,
		},
	}
	c.mmu = tlb.New(cfg.TLB, c.l1d)
	c.sampleEvery = cfg.SampleInterruptEvery
	c.nextSample = ^uint64(0)
	if c.sampleEvery > 0 {
		c.nextSample = c.sampleEvery
	}
	c.waitBranchFID = invalidFID
	c.lastFetchLine = ^uint64(0)
	c.ffLastLine = ^uint64(0)
	for i := range c.renameRob {
		c.renameRob[i] = -1
	}
	c.handlerSeed = cfg.HandlerSeed
	// Code pages are resident (the loader touched them); data pages
	// demand-fault unless the workload prefaults them.
	c.mmu.PrefaultRange(prog.Base(), prog.CodeBytes())
	return c
}

// MMU exposes the translation machinery (workloads prefault through it).
func (c *Core) MMU() *tlb.MMU { return c.mmu }

// Hierarchy exposes the cache hierarchy for inspection; nil when the core
// was built with NewWithCaches (shared-memory configurations).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// L1D exposes the core's private data cache.
func (c *Core) L1D() *cache.Cache { return c.l1d }

// Step advances the machine one cycle, filling rec with the commit-stage
// observation; it reports whether the core has fully drained. Exported for
// lockstep multi-core simulation — single-core users call Run.
func (c *Core) Step(cycle uint64, rec *trace.Record) bool {
	return c.step(cycle, rec)
}

// FinalizeStats records the run length after external stepping (Run does
// this automatically).
func (c *Core) FinalizeStats(lastCommitCycle uint64) {
	c.stats.Cycles = lastCommitCycle + 1
}

// Predictor exposes the direction predictor for inspection.
func (c *Core) Predictor() *branch.Tage { return c.tage }

// Stats returns the accumulated run statistics.
func (c *Core) Stats() Stats { return c.stats }

// supplyNext pulls the next correct-path instruction: lookahead first, then
// the replay queue, then the workload stream.
func (c *Core) supplyNext() (program.DynInst, bool) {
	if c.la.valid {
		c.la.valid = false
		return c.la.d, true
	}
	if c.pi < len(c.pending) {
		d := c.pending[c.pi]
		c.pi++
		if c.pi == len(c.pending) {
			c.pending = c.pending[:0]
			c.pi = 0
		}
		return d, true
	}
	if c.streamDone {
		return program.DynInst{}, false
	}
	d, ok := c.stream.Next()
	if !ok {
		c.streamDone = true
		return program.DynInst{}, false
	}
	return d, true
}

// unread pushes an instruction back into the lookahead slot.
func (c *Core) unread(d program.DynInst) {
	if c.la.valid {
		panic("cpu: double unread")
	}
	c.la = fetchLookahead{d: d, valid: true}
}

// anySupply reports whether any instruction remains to execute.
func (c *Core) anySupply() bool {
	return c.la.valid || c.pi < len(c.pending) || !c.streamDone
}

func (c *Core) fbLen() int { return c.fbCount }

func (c *Core) fbPush(f fetchedInst) {
	t := c.fbHead + c.fbCount
	if t >= len(c.fetchBuf) {
		t -= len(c.fetchBuf)
	}
	c.fetchBuf[t] = f
	c.fbCount++
}

func (c *Core) fbPeek() *fetchedInst { return &c.fetchBuf[c.fbHead] }

// fbPopFront drops the head element (the caller has already read it through
// fbPeek).
func (c *Core) fbPopFront() {
	if c.fbHead++; c.fbHead == len(c.fetchBuf) {
		c.fbHead = 0
	}
	c.fbCount--
}

// runsStarted counts Core.Run invocations process-wide. Tests use the delta
// to assert how many cycle-level simulations an evaluation pipeline performs.
var runsStarted atomic.Uint64

// RunsStarted returns the process-wide count of Core.Run invocations.
func RunsStarted() uint64 { return runsStarted.Load() }

// cancelMask gates how often RunContext polls its context: every
// cancelMask+1 cycles. Simulated cores retire millions of cycles per second,
// so an 8K-cycle granularity cancels within microseconds of wall-clock while
// keeping the poll invisible in the hot loop.
const cancelMask = 8191

// Run simulates until the program finishes (or MaxCycles), emitting one
// trace record per cycle to consumer. It returns the final statistics.
func (c *Core) Run(consumer trace.Consumer) (Stats, error) {
	return c.RunContext(nil, consumer)
}

// RunContext is Run with cooperative cancellation: every few thousand cycles
// it polls ctx and, if cancelled, abandons the simulation and returns
// ctx's error (wrapped). A nil ctx disables polling entirely — Run's hot
// loop stays branch-predictable. The consumer's Finish is not delivered on
// cancellation; a partially-fed capture must be Closed by the caller.
func (c *Core) RunContext(ctx context.Context, consumer trace.Consumer) (Stats, error) {
	runsStarted.Add(1)
	var rec trace.Record
	cycle := uint64(0)
	lastCommitCycle := uint64(0)
	for {
		// MaxCycles permits exactly that many cycles (values
		// 0..MaxCycles-1); multicore.System.run enforces the identical
		// boundary on its lockstep clock.
		if c.cfg.MaxCycles > 0 && cycle >= c.cfg.MaxCycles {
			return c.stats, fmt.Errorf("cpu: exceeded MaxCycles=%d (committed %d)", c.cfg.MaxCycles, c.stats.Committed)
		}
		if ctx != nil && cycle&cancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return c.stats, fmt.Errorf("cpu: run aborted at cycle %d: %w", cycle, err)
			}
		}
		done := c.step(cycle, &rec)
		if consumer != nil {
			consumer.OnCycle(&rec)
		}
		if rec.CommitCount > 0 {
			lastCommitCycle = cycle
		}
		if done {
			break
		}
		cycle++
	}
	c.stats.Cycles = lastCommitCycle + 1
	if consumer != nil {
		consumer.Finish(c.stats.Cycles)
	}
	return c.stats, nil
}

// step advances one cycle: commit (and record), issue, dispatch, fetch. It
// reports whether the machine is fully drained with no supply left.
func (c *Core) step(cycle uint64, rec *trace.Record) bool {
	c.drainBranchResolve(cycle)
	if cycle >= c.nextSample {
		// >= (not ==) keeps the countdown correct even if a caller steps
		// past the boundary cycle; Run and the lockstep multi-core driver
		// both advance one cycle at a time, so in practice it fires exactly
		// on the old cycle%SampleInterruptEvery == 0 schedule.
		c.pmuPending = true
		c.nextSample += c.sampleEvery
	}
	c.commit(cycle, rec)
	c.issue(cycle)
	c.dispatch(cycle)
	c.fetch(cycle)
	return c.robCount == 0 && c.fbCount == 0 && !c.anySupply()
}

func (c *Core) drainBranchResolve(cycle uint64) {
	if len(c.branchResolve) == 0 {
		return
	}
	out := c.branchResolve[:0]
	for _, t := range c.branchResolve {
		if t > cycle {
			out = append(out, t)
		}
	}
	c.branchResolve = out
}

// ---------------------------------------------------------------------------
// Commit stage

// commit records the commit-stage state for this cycle and retires up to
// CommitWidth executed instructions, handling exceptions, flushing CSRs,
// and store-buffer pressure.
func (c *Core) commit(cycle uint64, rec *trace.Record) {
	cw := c.commitWidth
	rec.Reset(cycle, cw)

	if c.robCount == 0 {
		rec.ROBEmpty = true
	} else {
		rec.HeadBank = uint8(c.robHeadBank)
		n := c.robCount
		if n > cw {
			n = cw
		}
		slot := c.robHead
		bank := c.robHeadBank
		for i := 0; i < n; i++ {
			e := &c.rob[slot]
			b := &rec.Banks[bank]
			b.Valid = true
			b.PC = e.pc
			b.FID = e.fid
			b.InstIndex = e.instIdx
			b.Mispredicted = e.mispredicted
			b.Flush = e.mi.flags&metaFlushAtCommit != 0
			b.Exception = e.exceptionPending
			if slot++; slot == c.robEntries {
				slot = 0
			}
			if bank++; bank == cw {
				bank = 0
			}
		}
	}

	// PMU sampling interrupt: taken at the next cycle boundary, draining
	// in-flight work into the OS handler (perf's CSR-copy path, §3.2).
	if c.pmuPending {
		c.pmuPending = false
		c.stats.PMUInterrupts++
		c.observeFrontEnd(cycle, rec)
		c.raiseInterrupt(cycle)
		return
	}

	// Exception: raised when the excepting instruction is at the head
	// and its page walk has completed.
	if c.robCount > 0 {
		h := &c.rob[c.robHead]
		if h.exceptionPending && h.issued && h.doneCycle <= cycle {
			rec.ExceptionRaised = true
			rec.ExceptionPC = h.pc
			rec.ExceptionFID = h.fid
			rec.ExceptionInstIndex = h.instIdx
			c.observeFrontEnd(cycle, rec)
			c.raiseException(cycle, h)
			return
		}
	}

	committed := 0
	for committed < cw && c.robCount > 0 {
		e := &c.rob[c.robHead]
		if !e.issued || e.doneCycle > cycle {
			break
		}
		if e.exceptionPending {
			// Became head mid-group; raise next cycle.
			break
		}
		kind := e.mi.kind
		if kind == isa.KindStore {
			if !c.retireStore(e, cycle) {
				c.stats.StoreStallCycles++
				break
			}
		}
		rec.Banks[c.robHeadBank].Committing = true
		committed++
		c.stats.Committed++
		switch kind {
		case isa.KindCall:
			c.archRAS.Push(e.pc + isa.InstBytes)
		case isa.KindRet:
			c.archRAS.Pop(e.d.NextPC)
		}
		// Clear rename mappings that point at the retiring entry.
		if dst := e.mi.dst; dst != isa.RegZero {
			if c.renameRob[dst] == int32(c.robHead) && c.renameUop[dst] == e.uop {
				c.renameRob[dst] = -1
			}
		}
		if e.mi.flags&metaSerializing != 0 {
			c.serializeActive = false
		}
		flush := e.mi.flags&metaFlushAtCommit != 0
		e.uop = 0 // invalidate tag so dependents see ready
		if c.robHead++; c.robHead == c.robEntries {
			c.robHead = 0
		}
		if c.robHeadBank++; c.robHeadBank == cw {
			c.robHeadBank = 0
		}
		c.robCount--
		if e.mi.flags&metaMem != 0 {
			c.lsqCount--
		}
		if flush {
			c.stats.CSRFlushes++
			c.observeFrontEnd(cycle, rec)
			rec.CommitCount = uint8(committed)
			c.flushPipeline(cycle, nil)
			return
		}
	}
	rec.CommitCount = uint8(committed)
	c.observeFrontEnd(cycle, rec)
}

// retireStore pushes a committing store into the store buffer; it reports
// false when the buffer is full (the store stalls at the head).
func (c *Core) retireStore(e *robEntry, cycle uint64) bool {
	// Drop drained entries.
	out := c.storeBuf[:0]
	for _, t := range c.storeBuf {
		if t > cycle {
			out = append(out, t)
		}
	}
	c.storeBuf = out
	if len(c.storeBuf) >= c.storeBufCap {
		return false
	}
	done := c.l1d.Access(e.d.MemAddr, true, cycle)
	c.storeBuf = append(c.storeBuf, done)
	return true
}

// observeFrontEnd fills the dispatch-stage and youngest-in-flight fields.
func (c *Core) observeFrontEnd(cycle uint64, rec *trace.Record) {
	switch {
	case c.fbCount > 0:
		f := &c.fetchBuf[c.fbHead]
		if f.readyAt <= cycle {
			rec.DispatchValid = true
			rec.DispatchPC = f.pc
			rec.DispatchFID = f.fid
			rec.DispatchInstIndex = f.instIdx
		}
		rec.AnyInFlight = true
		t := c.fbHead + c.fbCount - 1
		if t >= len(c.fetchBuf) {
			t -= len(c.fetchBuf)
		}
		rec.YoungestFID = c.fetchBuf[t].fid
	case c.robCount > 0:
		rec.AnyInFlight = true
		tail := c.robTail
		if tail == 0 {
			tail = c.robEntries
		}
		tail--
		rec.YoungestFID = c.rob[tail].fid
	default:
		// The whole machine retired this cycle (commit has already
		// drained the ROB by the time this runs), but the instructions
		// recorded in the banks were still in flight when the commit
		// stage observed them: the record must cover their FIDs.
		for i := 0; i < rec.NumBanks; i++ {
			if b := &rec.Banks[i]; b.Valid && (!rec.AnyInFlight || b.FID > rec.YoungestFID) {
				rec.AnyInFlight = true
				rec.YoungestFID = b.FID
			}
		}
	}
}

// raiseInterrupt squashes all in-flight instructions and redirects fetch to
// the OS handler; the squashed instructions replay afterwards. This is the
// PMU sampling interrupt (the handler stands in for perf copying TIP's six
// CSRs into its memory buffer).
func (c *Core) raiseInterrupt(cycle uint64) {
	var handlerInsts []program.DynInst
	if hf := c.prog.Handler(); hf != nil {
		it := program.NewInterpFunc(c.prog, hf, c.handlerSeed)
		c.handlerSeed = c.handlerSeed*6364136223846793005 + 1
		for {
			d, ok := it.Next()
			if !ok {
				break
			}
			handlerInsts = append(handlerInsts, d)
			if len(handlerInsts) > 100000 {
				panic("cpu: runaway interrupt handler")
			}
		}
	}
	c.flushPipeline(cycle, handlerInsts)
}

// raiseException squashes everything (the excepting instruction included),
// installs the missing page, and redirects fetch to the OS handler followed
// by replay of the squashed instructions.
func (c *Core) raiseException(cycle uint64, h *robEntry) {
	c.stats.Exceptions++
	c.mmu.InstallPage(h.faultPage)

	var handlerInsts []program.DynInst
	if hf := c.prog.Handler(); hf != nil {
		it := program.NewInterpFunc(c.prog, hf, c.handlerSeed)
		c.handlerSeed = c.handlerSeed*6364136223846793005 + 1
		for {
			d, ok := it.Next()
			if !ok {
				break
			}
			handlerInsts = append(handlerInsts, d)
			if len(handlerInsts) > 100000 {
				panic("cpu: runaway exception handler")
			}
		}
	}
	c.flushPipeline(cycle, handlerInsts)
}

// flushPipeline squashes all in-flight instructions (ROB and front end) and
// queues prefix + squashed instructions for refetch. The ROB entries that
// remain are all younger than the flush point because the caller has already
// retired everything older.
func (c *Core) flushPipeline(cycle uint64, prefix []program.DynInst) {
	need := len(prefix) + c.robCount + c.fbCount + 2 + len(c.pending) - c.pi
	replay := c.replayScratch[:0]
	if cap(replay) < need {
		replay = make([]program.DynInst, 0, need)
	}
	replay = append(replay, prefix...)
	slot := c.robHead
	for i := 0; i < c.robCount; i++ {
		replay = append(replay, c.rob[slot].d)
		c.rob[slot].uop = 0
		if slot++; slot == c.robEntries {
			slot = 0
		}
	}
	fb := c.fbHead
	for i := 0; i < c.fbCount; i++ {
		replay = append(replay, c.fetchBuf[fb].d)
		if fb++; fb == len(c.fetchBuf) {
			fb = 0
		}
	}
	if c.la.valid {
		replay = append(replay, c.la.d)
		c.la.valid = false
	}
	replay = append(replay, c.pending[c.pi:]...)

	// Ping-pong: the old pending array becomes the next flush's scratch.
	// replay was built above (including the tail copy from c.pending), so
	// the two backing arrays never alias live data.
	c.replayScratch = c.pending[:0]
	c.pending = replay
	c.pi = 0
	c.robCount = 0
	c.robHead = 0
	c.robTail = 0
	c.robHeadBank = 0
	c.fbHead = 0
	c.fbCount = 0
	for i := range c.renameRob {
		c.renameRob[i] = -1
	}
	for i := range c.iqs {
		c.iqs[i] = c.iqs[i][:0]
		c.iqMinReady[i] = 0
	}
	c.lsqCount = 0
	c.branchResolve = c.branchResolve[:0]
	c.serializeActive = false
	c.waitBranchFID = invalidFID
	c.lastFetchLine = ^uint64(0)
	c.ras.CopyFrom(c.archRAS)
	c.fetchBlockedUntil = cycle + c.redirectPenalty
}

// ---------------------------------------------------------------------------
// Issue/execute

// iqEntry is one issue-queue slot: the ROB index plus cached wakeup state, so
// the per-cycle scan almost never chases a ROB pointer per waiting entry.
// readyAt is the entry's pinned ready time once every producer has issued
// (the bound never moves: doneCycle is immutable after issue, commit waits
// for it, and a squashed producer implies the consumer was squashed too), or
// iqReadyUnknown while some producer is unissued — then blockIdx/blockUop
// name that producer, and the scan re-derives the bound only after it issues
// or its slot is reused (retirement; the value is in the regfile).
type iqEntry struct {
	idx      int32
	blockIdx int32
	kind     isa.Kind
	blockUop uint64
	readyAt  uint64
}

// iqReadyUnknown marks an issue-queue entry whose ready time is not yet
// computable (some producer has not issued). Cycle numbers never reach it.
const iqReadyUnknown = ^uint64(0)

// issue selects ready instructions from each queue, oldest first, and
// computes their completion times.
func (c *Core) issue(cycle uint64) {
	for class := 0; class < isa.NumIssueClasses; class++ {
		if cycle < c.iqMinReady[class] && c.issueEpoch == c.iqScanEpoch[class] {
			continue // provably nothing to issue or wake this cycle
		}
		width := c.iqWidths[class]
		iq := c.iqs[class]
		issued := 0
		w := 0
		full := true
		minNext := iqReadyUnknown
		for r := 0; r < len(iq); r++ {
			if issued == width {
				// Width exhausted: everything younger stays queued; one
				// bulk copy instead of per-entry moves. The unscanned
				// tail was not rechecked, so the scan epoch must not
				// advance below, and ready entries may be waiting there.
				w += copy(iq[w:], iq[r:])
				full = false
				minNext = cycle + 1
				break
			}
			en := iq[r]
			if en.readyAt == iqReadyUnknown {
				// The epoch comparison is live, not a scan-start
				// snapshot: an issue earlier in this very scan makes it
				// mismatch for the entries after it. A producer is
				// always older than its consumer, so it sits at an
				// earlier queue position (or an already-scanned or
				// later-rechecked class) — a skipped entry's producer
				// provably has not issued.
				if c.issueEpoch == c.iqScanEpoch[class] {
					if w != r {
						iq[w] = en
					}
					w++
					continue
				}
				if p := &c.rob[en.blockIdx]; p.uop == en.blockUop && !p.issued {
					// Still blocked on the same producer.
					if w != r {
						iq[w] = en
					}
					w++
					continue
				}
				if !c.tryReady(&c.rob[en.idx], &en) {
					iq[w] = en
					w++
					continue
				}
				// tryReady mutated en (pinned readyAt): if the entry is
				// kept below, the store must happen even when w == r, or
				// the queue keeps the stale blocked copy and the next
				// matching-epoch scan skips it forever.
				if cycle < en.readyAt || !c.unitFree(en.kind, cycle) {
					if ra := maxU64(en.readyAt, cycle+1); ra < minNext {
						minNext = ra
					}
					iq[w] = en
					w++
					continue
				}
				c.execute(&c.rob[en.idx], cycle)
				issued++
				continue
			}
			if cycle < en.readyAt || !c.unitFree(en.kind, cycle) {
				if ra := maxU64(en.readyAt, cycle+1); ra < minNext {
					minNext = ra
				}
				if w != r {
					iq[w] = en
				}
				w++
				continue
			}
			c.execute(&c.rob[en.idx], cycle)
			issued++
		}
		c.iqs[class] = iq[:w]
		c.iqMinReady[class] = minNext
		if full {
			// Every blocked entry was checked against the current epoch
			// (issues later in this scan are younger than any entry
			// skipped before them, so they cannot be a skipped entry's
			// producer). After a width break the old snapshot stays: the
			// break implies issues this scan, so it mismatches and the
			// tail is rechecked next cycle.
			c.iqScanEpoch[class] = c.issueEpoch
		}
	}
}

// tryReady computes e's ready time if every still-matching producer has
// issued, storing it in en.readyAt; otherwise it records the first unissued
// producer as en's block pointer and reports false. The bound is identical
// whenever it becomes computable, so evaluating eagerly (at dispatch, or the
// cycle the blocking producer issues) matches a per-cycle dependence walk.
func (c *Core) tryReady(e *robEntry, en *iqEntry) bool {
	bound := uint64(0)
	for i := 0; i < e.ndeps; i++ {
		d := e.deps[i]
		p := &c.rob[d.robIdx]
		if p.uop != d.uop {
			continue // producer retired or squashed: value in regfile
		}
		if !p.issued {
			en.blockIdx = d.robIdx
			en.blockUop = d.uop
			return false
		}
		if p.doneCycle > bound {
			bound = p.doneCycle
		}
	}
	en.readyAt = bound
	return true
}

func (c *Core) unitFree(kind isa.Kind, cycle uint64) bool {
	switch kind {
	case isa.KindIntDiv:
		return c.intDivBusyUntil <= cycle
	case isa.KindFPDiv:
		return c.fpDivBusyUntil <= cycle
	}
	return true
}

// execute computes e's completion time, accessing the memory system for
// loads/stores and resolving control flow.
func (c *Core) execute(e *robEntry, cycle uint64) {
	e.issued = true
	c.issueEpoch++
	kind := e.mi.kind
	lat := uint64(e.mi.lat)

	switch kind {
	case isa.KindLoad:
		tr := c.mmu.TranslateData(e.d.MemAddr, cycle+1)
		if tr.Fault {
			e.exceptionPending = true
			e.faultPage = tlb.PageOf(e.d.MemAddr)
			e.doneCycle = tr.Done
		} else {
			e.doneCycle = c.l1d.Access(e.d.MemAddr, false, tr.Done)
		}
	case isa.KindStore:
		tr := c.mmu.TranslateData(e.d.MemAddr, cycle+1)
		if tr.Fault {
			e.exceptionPending = true
			e.faultPage = tlb.PageOf(e.d.MemAddr)
			e.doneCycle = tr.Done
		} else {
			// Address+data resolved; the write happens at commit.
			e.doneCycle = tr.Done + 1
		}
	case isa.KindAtomic:
		tr := c.mmu.TranslateData(e.d.MemAddr, cycle+1)
		if tr.Fault {
			e.exceptionPending = true
			e.faultPage = tlb.PageOf(e.d.MemAddr)
			e.doneCycle = tr.Done
		} else {
			e.doneCycle = c.l1d.Access(e.d.MemAddr, true, tr.Done) + lat
		}
	case isa.KindIntDiv:
		e.doneCycle = cycle + lat
		c.intDivBusyUntil = e.doneCycle
	case isa.KindFPDiv:
		e.doneCycle = cycle + lat
		c.fpDivBusyUntil = e.doneCycle
	default:
		e.doneCycle = cycle + lat
	}

	if e.mi.flags&metaControlFlow != 0 {
		c.branchResolve = append(c.branchResolve, e.doneCycle)
		if e.fid == c.waitBranchFID {
			// Mispredict resolved: fetch restarts on the correct path.
			c.waitBranchFID = invalidFID
			c.fetchBlockedUntil = maxU64(c.fetchBlockedUntil, e.doneCycle+c.redirectPenalty)
			c.lastFetchLine = ^uint64(0)
		}
	}
}

// ---------------------------------------------------------------------------
// Dispatch

// dispatch moves up to DispatchWidth instructions from the fetch buffer
// into the ROB and issue queues, enforcing resource limits and serialization.
func (c *Core) dispatch(cycle uint64) {
	if c.serializeActive {
		return
	}
	for n := 0; n < c.dispatchWidth; n++ {
		if c.fbCount == 0 {
			return
		}
		f := &c.fetchBuf[c.fbHead]
		if f.readyAt > cycle {
			return
		}
		mi := c.meta[f.instIdx]
		if mi.flags&metaSerializing != 0 && c.robCount != 0 {
			return // drain before dispatching a serialized instruction
		}
		if c.robCount == c.robEntries {
			return
		}
		class := mi.class
		if len(c.iqs[class]) >= c.iqCaps[class] {
			return
		}
		if mi.flags&metaMem != 0 && c.lsqCount >= c.lsqEntries {
			return
		}
		if mi.flags&metaControlFlow != 0 && len(c.branchResolve) >= c.maxBranches {
			return
		}

		slot := c.robTail
		if c.robTail++; c.robTail == c.robEntries {
			c.robTail = 0
		}
		c.robCount++
		c.nextUop++
		e := &c.rob[slot]
		*e = robEntry{
			d:            f.d,
			fid:          f.fid,
			uop:          c.nextUop,
			pc:           f.pc,
			instIdx:      f.instIdx,
			mi:           mi,
			mispredicted: f.mispredicted,
		}
		c.fbPopFront()
		for _, src := range mi.srcs {
			if src == isa.RegZero {
				continue
			}
			if p := c.renameRob[src]; p >= 0 {
				e.deps[e.ndeps] = dep{robIdx: p, uop: c.renameUop[src]}
				e.ndeps++
			}
		}
		if dst := mi.dst; dst != isa.RegZero {
			c.renameRob[dst] = int32(slot)
			c.renameUop[dst] = c.nextUop
		}
		if mi.flags&metaMem != 0 {
			c.lsqCount++
		}
		en := iqEntry{idx: int32(slot), kind: mi.kind, readyAt: iqReadyUnknown}
		c.tryReady(e, &en)
		if en.readyAt < c.iqMinReady[class] {
			c.iqMinReady[class] = en.readyAt
		}
		c.iqs[class] = append(c.iqs[class], en)
		if mi.flags&metaSerializing != 0 {
			c.serializeActive = true
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Fetch

// fetch fills the fetch buffer with correct-path instructions, modelling
// I-cache/I-TLB latency per line, branch prediction, BTB bubbles, and
// blocking on unresolved mispredictions.
func (c *Core) fetch(cycle uint64) {
	if cycle < c.fetchBlockedUntil || c.waitBranchFID != invalidFID {
		return
	}
	for delivered := 0; delivered < c.fetchWidth; delivered++ {
		if c.fbCount >= len(c.fetchBuf) {
			return
		}
		d, ok := c.supplyNext()
		if !ok {
			return
		}
		si := d.SI
		pc := si.PC
		kind := si.Kind
		line := pc >> 6
		if line != c.lastFetchLine {
			tr := c.mmu.TranslateFetch(pc, cycle)
			if tr.Fault {
				// Code pages are prefaulted; an I-side fault means a
				// workload bug.
				panic(fmt.Sprintf("cpu: instruction fetch fault at %#x", pc))
			}
			done := c.l1i.Access(pc, false, tr.Done)
			c.lastFetchLine = line
			if done > cycle+1 {
				c.fetchBlockedUntil = done
				c.unread(d)
				return
			}
		}

		fid := c.nextFID
		c.nextFID++
		c.stats.Fetched++
		mispred := false
		bubble := false
		switch kind {
		case isa.KindBranch:
			if c.tage.PredictUpdate(pc, d.Taken) != d.Taken {
				mispred = true
			} else if d.Taken {
				bubble = !c.btb.Probe(pc, d.NextPC)
			}
		case isa.KindJump:
			bubble = !c.btb.Probe(pc, d.NextPC)
		case isa.KindCall:
			c.ras.Push(pc + isa.InstBytes)
			bubble = !c.btb.Probe(pc, d.NextPC)
		case isa.KindRet:
			if d.NextPC != 0 { // 0 = end of program
				if _, correct := c.ras.Pop(d.NextPC); !correct {
					mispred = true
				}
			}
		}

		c.fbPush(fetchedInst{
			d:            d,
			pc:           pc,
			fid:          fid,
			readyAt:      cycle + c.fetchToDispatch,
			instIdx:      int32(si.Index),
			mispredicted: mispred,
		})

		if mispred {
			c.stats.Mispredicts++
			// Fetch stalls until the mispredicted instruction
			// resolves at execute.
			c.waitBranchFID = fid
			return
		}
		if bubble {
			c.stats.BTBBubbles++
			c.fetchBlockedUntil = cycle + c.btbMissBubble
			c.lastFetchLine = ^uint64(0)
			return
		}
		if kind.IsControlFlow() && d.Taken {
			// A taken redirect ends the fetch group.
			c.lastFetchLine = ^uint64(0)
			return
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// debugDump enables a pipeline-state dump on MaxCycles exhaustion (temporary).
