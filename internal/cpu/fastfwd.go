package cpu

import (
	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
)

// coreSupply adapts the core's instruction supply (lookahead slot, replay
// queue, then workload stream) to program.Stream, so the fast-forward
// interpreter drains squashed-but-unexecuted instructions before pulling
// new ones. The pointer conversion keeps the interface value free of per
// call allocation.
type coreSupply Core

// Next implements program.Stream.
func (s *coreSupply) Next() (program.DynInst, bool) { return (*Core)(s).supplyNext() }

// ArchCheckpoint collapses the core to architectural state at cycle: every
// in-flight (uncommitted) instruction is squashed into the replay queue in
// program order, exactly as a pipeline flush would, so execution can
// continue functionally from the oldest uncommitted instruction. The caches,
// TLBs and predictors keep their contents — that accumulated state is the
// point of keeping one core alive across detailed windows.
func (c *Core) ArchCheckpoint(cycle uint64) {
	c.flushPipeline(cycle, nil)
}

// FastForward executes up to n instructions functionally: architectural
// state advances (the supply is consumed, the architectural RAS tracks
// calls and returns) and the cache, TLB and branch-predictor arrays are
// warmed roughly as full simulation would have left them — but no cycles
// elapse and no trace records are produced. Call ArchCheckpoint first so
// the in-flight instructions replay through the functional path. It returns
// how many instructions actually executed; done reports the supply ran dry
// (end of program).
// ffTageWarmTail bounds direction-predictor warming to the last stretch of
// each fast-forward leg. TAGE state is short-lived relative to cache tags:
// its longest history is a few hundred branches and its saturating counters
// converge within a few thousand executions per static branch, so training
// it across an arbitrarily long skip buys no accuracy — while costing more
// than a third of the functional loop (per-table folded-history updates on
// every conditional branch). Long-lived structures (caches, TLBs, BTB, the
// architectural RAS) warm across the whole skip regardless.
const ffTageWarmTail = 48 << 10

func (c *Core) FastForward(ff *program.FastForward, n uint64) (executed uint64, done bool) {
	tailStart := uint64(0)
	if n > ffTageWarmTail {
		tailStart = n - ffTageWarmTail
	}
	for executed < n {
		c.ffWarmTage = executed >= tailStart
		// Drain the replay queue (and lookahead) through the supply
		// adapter; once both are empty, pull straight from the workload
		// stream — the adapter's per-instruction branch checks and extra
		// copy are the dominant cost of the functional loop.
		var batch []program.DynInst
		if c.la.valid || c.pi < len(c.pending) {
			batch = ff.Fill((*coreSupply)(c), n-executed)
		} else {
			if c.streamDone {
				return executed, true
			}
			batch = ff.Fill(c.stream, n-executed)
			if len(batch) == 0 {
				c.streamDone = true
				return executed, true
			}
		}
		if len(batch) == 0 {
			return executed, true
		}
		for i := range batch {
			c.warmInst(&batch[i])
		}
		executed += uint64(len(batch))
	}
	return executed, false
}

// warmInst applies one functionally-executed instruction to the warm state,
// mirroring what the detailed front end and data path touch: I-side
// translation and cache tags once per new fetch line, the direction
// predictor and BTB for control flow (the architectural RAS stands in for
// the speculative one, which ResumeFrom restores from it), and D-side
// translation plus cache tags for memory operations — installing
// demand-faulted pages as the OS handler would.
func (c *Core) warmInst(d *program.DynInst) {
	pc := d.SI.PC
	if line := pc >> 6; line != c.ffLastLine {
		c.ffLastLine = line
		c.mmu.WarmFetch(pc)
		c.l1i.Warm(pc, false)
	}
	mi := &c.meta[d.SI.Index]
	switch mi.kind {
	case isa.KindBranch:
		if c.ffWarmTage {
			c.tage.Warm(pc, d.Taken)
		}
		if d.Taken {
			c.btb.Warm(pc, d.NextPC)
		}
	case isa.KindJump:
		c.btb.Warm(pc, d.NextPC)
	case isa.KindCall:
		c.archRAS.Push(pc + isa.InstBytes)
		c.btb.Warm(pc, d.NextPC)
	case isa.KindRet:
		c.archRAS.Pop(d.NextPC)
	}
	if mi.flags&metaMem != 0 {
		c.mmu.WarmData(d.MemAddr)
		c.l1d.Warm(d.MemAddr, mi.kind == isa.KindStore || mi.kind == isa.KindAtomic)
	}
	if mi.flags&metaControlFlow != 0 && d.Taken {
		// A taken redirect moves fetch to a new line next instruction.
		c.ffLastLine = ^uint64(0)
	}
}

// ResumeFrom prepares the core to re-enter detailed simulation at cycle
// after a fast-forward: the speculative RAS is restored from the
// architectural one and the front end unblocked immediately — the warmup
// prefix of the next detailed window absorbs the cold-start transient, so
// no modelled redirect penalty applies.
func (c *Core) ResumeFrom(cycle uint64) {
	c.ras.CopyFrom(c.archRAS)
	c.lastFetchLine = ^uint64(0)
	c.ffLastLine = ^uint64(0)
	c.waitBranchFID = invalidFID
	c.fetchBlockedUntil = cycle
}
