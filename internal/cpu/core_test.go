package cpu

import (
	"testing"

	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/trace"
)

// validator checks per-record structural invariants while counting.
type validator struct {
	t            *testing.T
	cycles       uint64
	commits      uint64
	finished     bool
	total        uint64
	lastCycle    uint64
	committedFID map[uint64]bool
	commitOrder  []uint64
}

func newValidator(t *testing.T) *validator {
	return &validator{t: t, committedFID: map[uint64]bool{}}
}

func (v *validator) OnCycle(r *trace.Record) {
	if v.cycles > 0 && r.Cycle != v.lastCycle+1 {
		v.t.Fatalf("non-contiguous cycles: %d after %d", r.Cycle, v.lastCycle)
	}
	v.lastCycle = r.Cycle
	v.cycles++
	n := 0
	anyValid := false
	for i := 0; i < r.NumBanks; i++ {
		b := &r.Banks[i]
		if b.Committing && !b.Valid {
			v.t.Fatalf("cycle %d: committing invalid entry in bank %d", r.Cycle, i)
		}
		if b.Valid {
			anyValid = true
		}
		if b.Committing {
			n++
			if v.committedFID[b.FID] {
				v.t.Fatalf("cycle %d: FID %d committed twice", r.Cycle, b.FID)
			}
			v.committedFID[b.FID] = true
		}
	}
	if n != int(r.CommitCount) {
		v.t.Fatalf("cycle %d: CommitCount %d but %d committing banks", r.Cycle, r.CommitCount, n)
	}
	if r.ROBEmpty && anyValid {
		v.t.Fatalf("cycle %d: ROBEmpty with valid banks", r.Cycle)
	}
	if !r.ROBEmpty && !anyValid {
		v.t.Fatalf("cycle %d: non-empty ROB with no valid banks", r.Cycle)
	}
	// Committing FIDs must be in age order and monotonically increasing
	// across the run (commit is in order; replays get fresh FIDs).
	for _, e := range r.CommittingInAgeOrder(nil) {
		v.commitOrder = append(v.commitOrder, e.FID)
	}
	v.commits += uint64(r.CommitCount)
}

func (v *validator) Finish(total uint64) {
	v.finished = true
	v.total = total
	for i := 1; i < len(v.commitOrder); i++ {
		if v.commitOrder[i] <= v.commitOrder[i-1] {
			v.t.Fatalf("commit order regressed: %d after %d", v.commitOrder[i], v.commitOrder[i-1])
		}
	}
}

func runProgram(t *testing.T, p *program.Program, seed uint64) (Stats, *validator) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MaxCycles = 50_000_000
	core := New(cfg, p, program.NewInterp(p, seed))
	core.MMU().PrefaultAll() // default: no data faults
	v := newValidator(t)
	stats, err := core.Run(v)
	if err != nil {
		t.Fatal(err)
	}
	if !v.finished {
		t.Fatal("consumer never finished")
	}
	return stats, v
}

// independentALULoop: N iterations of 8 independent ALU ops + loop branch.
func independentALULoop(iters int) *program.Program {
	b := program.NewBuilder("alu")
	f := b.Func("main")
	b0 := f.NewBlock()
	for i := 0; i < 8; i++ {
		b0.Op(isa.KindIntALU, isa.IntReg(i+1))
	}
	b0.LoopBack(0, iters)
	b1 := f.NewBlock()
	b1.Ret()
	return b.MustBuild(0)
}

// dependentChainLoop: each op depends on the previous.
func dependentChainLoop(iters int) *program.Program {
	b := program.NewBuilder("chain")
	f := b.Func("main")
	b0 := f.NewBlock()
	for i := 0; i < 8; i++ {
		b0.Op(isa.KindIntALU, isa.IntReg(1), isa.IntReg(1))
	}
	b0.LoopBack(0, iters)
	b1 := f.NewBlock()
	b1.Ret()
	return b.MustBuild(0)
}

func TestHighILPReachesCommitWidth(t *testing.T) {
	stats, v := runProgram(t, independentALULoop(5000), 1)
	if ipc := stats.IPC(); ipc < 3.0 {
		t.Fatalf("independent ALU loop IPC = %.2f, want near commit width 4", ipc)
	}
	if v.commits != stats.Committed {
		t.Fatalf("trace commits %d != stats %d", v.commits, stats.Committed)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	stats, _ := runProgram(t, dependentChainLoop(5000), 1)
	if ipc := stats.IPC(); ipc > 1.3 {
		t.Fatalf("dependent chain IPC = %.2f, want ~1", ipc)
	}
}

func TestAllInstructionsCommitOnce(t *testing.T) {
	p := independentALULoop(1000)
	stats, v := runProgram(t, p, 1)
	// 9 insts per iteration (8 ALU + branch) * 1000 + ret.
	want := uint64(9*1000 + 1)
	if stats.Committed != want {
		t.Fatalf("committed %d, want %d", stats.Committed, want)
	}
	if uint64(len(v.committedFID)) != want {
		t.Fatalf("distinct committed FIDs %d, want %d", len(v.committedFID), want)
	}
}

func TestTotalCyclesMatchesTrace(t *testing.T) {
	stats, v := runProgram(t, independentALULoop(100), 1)
	if v.total != stats.Cycles {
		t.Fatalf("Finish total %d != stats cycles %d", v.total, stats.Cycles)
	}
	if v.cycles < stats.Cycles {
		t.Fatalf("trace has %d records for %d cycles", v.cycles, stats.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := runProgram(t, independentALULoop(2000), 7)
	b, _ := runProgram(t, independentALULoop(2000), 7)
	if a != b {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a, b)
	}
}

func TestPredictableLoopFewMispredicts(t *testing.T) {
	stats, _ := runProgram(t, independentALULoop(5000), 1)
	if stats.Mispredicts > 50 {
		t.Fatalf("predictable loop had %d mispredicts", stats.Mispredicts)
	}
}

func randomBranchProgram(iters int) *program.Program {
	b := program.NewBuilder("randbr")
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Op(isa.KindIntALU, isa.IntReg(1))
	b0.Branch(2, program.BranchBehavior{Mode: program.BrRandom, P: 0.5})
	b1 := f.NewBlock()
	b1.Op(isa.KindIntALU, isa.IntReg(2))
	b1.Jump(3)
	b2 := f.NewBlock()
	b2.Op(isa.KindIntALU, isa.IntReg(3))
	b2.Jump(3)
	b3 := f.NewBlock()
	b3.LoopBack(0, iters)
	b4 := f.NewBlock()
	b4.Ret()
	return b.MustBuild(0)
}

func TestRandomBranchesMispredict(t *testing.T) {
	iters := 4000
	stats, _ := runProgram(t, randomBranchProgram(iters), 3)
	// The 50/50 branch should mispredict roughly half the time.
	if stats.Mispredicts < uint64(iters)/4 {
		t.Fatalf("only %d mispredicts across %d random branches", stats.Mispredicts, iters)
	}
	// Mispredicts slow the machine down well below the ALU-bound rate.
	if ipc := stats.IPC(); ipc > 2.5 {
		t.Fatalf("random-branch IPC = %.2f, implausibly high", ipc)
	}
}

func csrFlushProgram(iters int, flush bool) *program.Program {
	b := program.NewBuilder("csr")
	f := b.Func("main")
	b0 := f.NewBlock()
	for i := 0; i < 6; i++ {
		b0.Op(isa.KindIntALU, isa.IntReg(i+1))
	}
	b0.CSR("fsflags", isa.IntReg(10), flush)
	for i := 0; i < 6; i++ {
		b0.Op(isa.KindIntALU, isa.IntReg(i+1))
	}
	b0.LoopBack(0, iters)
	b1 := f.NewBlock()
	b1.Ret()
	return b.MustBuild(0)
}

func TestCSRFlushCountsAndRefetch(t *testing.T) {
	stats, _ := runProgram(t, csrFlushProgram(500, true), 1)
	if stats.CSRFlushes != 500 {
		t.Fatalf("CSRFlushes = %d, want 500", stats.CSRFlushes)
	}
	// Flushes squash and refetch younger instructions.
	if stats.Fetched <= stats.Committed {
		t.Fatalf("fetched %d <= committed %d despite flushes", stats.Fetched, stats.Committed)
	}
}

func TestCSRFlushSlowsExecution(t *testing.T) {
	flush, _ := runProgram(t, csrFlushProgram(500, true), 1)
	noflush, _ := runProgram(t, csrFlushProgram(500, false), 1)
	if flush.Committed != noflush.Committed {
		t.Fatalf("committed differ: %d vs %d", flush.Committed, noflush.Committed)
	}
	if float64(flush.Cycles) < 1.3*float64(noflush.Cycles) {
		t.Fatalf("flushing run (%d cycles) not clearly slower than non-flushing (%d)", flush.Cycles, noflush.Cycles)
	}
}

func TestSerializingCSRWithoutFlushStillDrains(t *testing.T) {
	// Even a non-flushing CSR serializes: IPC must drop well below the
	// pure-ALU version of the same loop.
	csr, _ := runProgram(t, csrFlushProgram(500, false), 1)
	alu, _ := runProgram(t, independentALULoop(500), 1)
	if csr.IPC() >= alu.IPC() {
		t.Fatalf("serializing CSR IPC %.2f >= plain ALU IPC %.2f", csr.IPC(), alu.IPC())
	}
}

func fenceProgram(iters int) *program.Program {
	b := program.NewBuilder("fence")
	f := b.Func("main")
	b0 := f.NewBlock()
	for i := 0; i < 4; i++ {
		b0.Op(isa.KindIntALU, isa.IntReg(i+1))
	}
	b0.Fence()
	b0.LoopBack(0, iters)
	b1 := f.NewBlock()
	b1.Ret()
	return b.MustBuild(0)
}

func TestFenceSerializesWithoutFlush(t *testing.T) {
	stats, _ := runProgram(t, fenceProgram(300), 1)
	if stats.CSRFlushes != 0 {
		t.Fatalf("fence caused %d flushes", stats.CSRFlushes)
	}
	// Fences do not refetch.
	if stats.Fetched != stats.Committed {
		t.Fatalf("fetched %d != committed %d", stats.Fetched, stats.Committed)
	}
	if stats.IPC() > 2.0 {
		t.Fatalf("fence-heavy IPC %.2f too high", stats.IPC())
	}
}

func loadProgram(footprint uint64, pattern program.MemPattern, iters int) *program.Program {
	b := program.NewBuilder("loads")
	f := b.Func("main")
	b0 := f.NewBlock()
	mb := program.MemBehavior{Base: 1 << 30, Size: footprint, Pattern: pattern, Stride: 64}
	b0.Load(isa.IntReg(1), isa.IntReg(2), mb)
	b0.Op(isa.KindIntALU, isa.IntReg(3), isa.IntReg(1))
	b0.LoopBack(0, iters)
	b1 := f.NewBlock()
	b1.Ret()
	return b.MustBuild(0)
}

func TestCacheResidentLoadsFast(t *testing.T) {
	small, _ := runProgram(t, loadProgram(8<<10, program.MemStride, 4000), 1)
	big, _ := runProgram(t, loadProgram(64<<20, program.MemRandom, 4000), 1)
	if small.Cycles*2 >= big.Cycles {
		t.Fatalf("L1-resident run (%d cycles) not much faster than DRAM-bound (%d)", small.Cycles, big.Cycles)
	}
}

func TestPageFaultExceptionFlow(t *testing.T) {
	b := program.NewBuilder("fault")
	h := b.Func("os_handler")
	hb := h.NewBlock()
	for i := 0; i < 20; i++ {
		hb.Op(isa.KindIntALU, isa.IntReg(i%8+1))
	}
	hb.Ret()
	f := b.Func("main")
	b0 := f.NewBlock()
	// Touch 4 distinct pages via a 4-page stride region.
	b0.Load(isa.IntReg(1), isa.IntReg(2), program.MemBehavior{
		Base: 1 << 30, Size: 4 * 4096, Stride: 4096,
	})
	b0.Op(isa.KindIntALU, isa.IntReg(3), isa.IntReg(1))
	b0.LoopBack(0, 8)
	b1 := f.NewBlock()
	b1.Ret()
	b.SetEntry(f)
	b.SetHandler(h)
	p := b.MustBuild(0)

	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000_000
	core := New(cfg, p, program.NewInterp(p, 1))
	// Deliberately do NOT prefault the data region.
	v := newValidator(t)
	stats, err := core.Run(v)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Exceptions != 4 {
		t.Fatalf("exceptions = %d, want 4 (one per page)", stats.Exceptions)
	}
	// The handler runs per fault: 21 handler insts x 4 + app insts.
	app := uint64(8*3 + 1)
	if stats.Committed != app+4*21 {
		t.Fatalf("committed = %d, want %d", stats.Committed, app+4*21)
	}
	if core.MMU().PresentPages() < 4 {
		t.Fatal("pages not installed")
	}
}

func TestExceptionRaisedVisibleInTrace(t *testing.T) {
	b := program.NewBuilder("fault2")
	h := b.Func("os_handler")
	hb := h.NewBlock()
	hb.Op(isa.KindIntALU, isa.IntReg(1))
	hb.Ret()
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Load(isa.IntReg(1), isa.IntReg(2), program.MemBehavior{Base: 1 << 30, Size: 64})
	b0.Ret()
	b.SetEntry(f)
	b.SetHandler(h)
	p := b.MustBuild(0)

	cfg := DefaultConfig()
	cfg.MaxCycles = 1_000_000
	core := New(cfg, p, program.NewInterp(p, 1))
	seen := false
	var exPC uint64
	cc := &callbackConsumer{onCycle: func(r *trace.Record) {
		if r.ExceptionRaised {
			seen = true
			exPC = r.ExceptionPC
		}
	}}
	if _, err := core.Run(cc); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("no ExceptionRaised record")
	}
	if exPC != p.Entry().Blocks[0].Insts[0].PC {
		t.Fatalf("exception PC %#x, want the load %#x", exPC, p.Entry().Blocks[0].Insts[0].PC)
	}
}

type callbackConsumer struct {
	onCycle func(*trace.Record)
}

func (c *callbackConsumer) OnCycle(r *trace.Record) { c.onCycle(r) }
func (c *callbackConsumer) Finish(uint64)           {}

func TestStoreHeavyWorkload(t *testing.T) {
	b := program.NewBuilder("stores")
	f := b.Func("main")
	b0 := f.NewBlock()
	mb := program.MemBehavior{Base: 1 << 30, Size: 64 << 20, Pattern: program.MemRandom}
	for i := 0; i < 4; i++ {
		b0.Store(isa.IntReg(1), isa.IntReg(2), mb)
	}
	b0.LoopBack(0, 2000)
	b1 := f.NewBlock()
	b1.Ret()
	p := b.MustBuild(0)
	stats, _ := runProgram(t, p, 1)
	if stats.StoreStallCycles == 0 {
		t.Fatal("DRAM-bound store stream never stalled the store buffer")
	}
}

func TestCallReturnRASNoMispredicts(t *testing.T) {
	b := program.NewBuilder("calls")
	leaf := b.Func("leaf")
	lb := leaf.NewBlock()
	lb.Op(isa.KindIntALU, isa.IntReg(1))
	lb.Ret()
	f := b.Func("main")
	b0 := f.NewBlock()
	b0.Call(leaf)
	b1 := f.NewBlock()
	b1.LoopBack(0, 2000)
	b2 := f.NewBlock()
	b2.Ret()
	b.SetEntry(f)
	p := b.MustBuild(0)
	stats, _ := runProgram(t, p, 1)
	if stats.Mispredicts > 20 {
		t.Fatalf("balanced call/ret produced %d mispredicts", stats.Mispredicts)
	}
}

func TestMispredictEmptiesROB(t *testing.T) {
	// A hard-to-predict branch right before dependent work: the ROB
	// should drain while fetch waits on resolution, producing empty-ROB
	// cycles (flush state for the profilers).
	p := randomBranchProgram(2000)
	cfg := DefaultConfig()
	cfg.MaxCycles = 20_000_000
	core := New(cfg, p, program.NewInterp(p, 3))
	core.MMU().PrefaultAll()
	emptyCycles := uint64(0)
	cc := &callbackConsumer{onCycle: func(r *trace.Record) {
		if r.ROBEmpty {
			emptyCycles++
		}
	}}
	stats, err := core.Run(cc)
	if err != nil {
		t.Fatal(err)
	}
	if emptyCycles == 0 {
		t.Fatal("mispredict-heavy run never emptied the ROB")
	}
	if emptyCycles < stats.Mispredicts {
		t.Fatalf("only %d empty cycles for %d mispredicts", emptyCycles, stats.Mispredicts)
	}
}

func TestICacheFootprintSlowdown(t *testing.T) {
	// A program with a huge straight-line body exceeds the 32 KB L1I and
	// pays front-end stalls versus a tight loop with the same dynamic
	// instruction count.
	bigBody := func(nblocks int, iters int) *program.Program {
		b := program.NewBuilder("big")
		f := b.Func("main")
		blocks := make([]*program.BlockBuilder, nblocks+2)
		for i := range blocks {
			blocks[i] = f.NewBlock()
		}
		for i := 0; i < nblocks; i++ {
			for j := 0; j < 32; j++ {
				blocks[i].Op(isa.KindIntALU, isa.IntReg(j%8+1), isa.IntReg(j%8+1))
			}
		}
		blocks[nblocks].LoopBack(0, iters)
		blocks[nblocks+1].Ret()
		return b.MustBuild(0)
	}
	// 640 blocks x 32 insts x 4 B = 80 KB of code, 2.5x the L1I.
	big, _ := runProgram(t, bigBody(640, 4), 1)
	small, _ := runProgram(t, bigBody(8, 320), 1)
	// Dynamic instruction counts match to within the loop-branch overhead.
	if diff := int64(big.Committed) - int64(small.Committed); diff > 1000 || diff < -1000 {
		t.Fatalf("dynamic inst counts too different: %d vs %d", big.Committed, small.Committed)
	}
	if float64(big.Cycles) < 1.1*float64(small.Cycles) {
		t.Fatalf("I-cache-thrashing run (%d) not slower than resident run (%d)", big.Cycles, small.Cycles)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.ROBEntries = 126 // not a multiple of 4 banks
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(bad, independentALULoop(1), nil)
}

func TestMaxCyclesAborts(t *testing.T) {
	p := independentALULoop(1 << 30)
	cfg := DefaultConfig()
	cfg.MaxCycles = 1000
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	if _, err := core.Run(&trace.CountingConsumer{}); err == nil {
		t.Fatal("expected MaxCycles error")
	}
}

func BenchmarkCoreALULoop(b *testing.B) {
	p := independentALULoop(1 << 30)
	cfg := DefaultConfig()
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	var rec trace.Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.step(uint64(i), &rec)
	}
	b.ReportMetric(float64(core.Stats().Committed)/float64(b.N), "IPC")
}

func BenchmarkCoreMemBound(b *testing.B) {
	p := loadProgram(64<<20, program.MemRandom, 1<<30)
	cfg := DefaultConfig()
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	var rec trace.Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.step(uint64(i), &rec)
	}
}

// TestMaxCyclesBoundary pins the cap to exactly MaxCycles cycles: a run
// that needs N cycles to drain succeeds at MaxCycles=N and aborts at N-1.
func TestMaxCyclesBoundary(t *testing.T) {
	p := independentALULoop(64)
	run := func(maxCycles uint64) (uint64, error) {
		cfg := DefaultConfig()
		cfg.MaxCycles = maxCycles
		core := New(cfg, p, program.NewInterp(p, 1))
		core.MMU().PrefaultAll()
		cc := &trace.CountingConsumer{}
		_, err := core.Run(cc)
		return cc.Cycles, err
	}
	// One record is emitted per stepped cycle, so the unbounded run's
	// record count is the exact number of cycles the core needs.
	steps, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run(steps); err != nil {
		t.Fatalf("MaxCycles=%d (exact) aborted: %v", steps, err)
	}
	if _, err := run(steps - 1); err == nil {
		t.Fatalf("MaxCycles=%d (one short) did not abort", steps-1)
	}
}
