package cpu

import (
	"testing"

	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/trace"
)

// TestFastForwardConservesInstructions checks the checkpoint → fast-forward
// → resume seam loses and duplicates nothing: detailed commits plus
// functionally executed instructions equal a pure detailed run's commits on
// the same (program, seed).
func TestFastForwardConservesInstructions(t *testing.T) {
	mk := func() *program.Program { return loadProgram(1<<20, program.MemStride, 20_000) }

	full, _ := runProgram(t, mk(), 3)

	p := mk()
	cfg := DefaultConfig()
	core := New(cfg, p, program.NewInterp(p, 3))
	core.MMU().PrefaultAll()
	ff := program.NewFastForward(p)

	var rec trace.Record
	cycle := uint64(0)
	for ; cycle < 2000; cycle++ {
		if core.Step(cycle, &rec) {
			t.Fatal("program finished before the fast-forward point")
		}
	}
	core.ArchCheckpoint(cycle)
	executed, done := core.FastForward(ff, 5000)
	if executed != 5000 || done {
		t.Fatalf("FastForward executed %d (done=%v), want 5000", executed, done)
	}
	core.ResumeFrom(cycle)
	for !core.Step(cycle, &rec) {
		cycle++
	}

	total := core.Stats().Committed + ff.Executed()
	if total != full.Committed {
		t.Fatalf("committed+fast-forwarded = %d, full-run committed = %d", total, full.Committed)
	}
	var counted uint64
	for _, n := range ff.Counts() {
		counted += n
	}
	if counted != ff.Executed() {
		t.Fatalf("per-instruction counts sum to %d, executed %d", counted, ff.Executed())
	}
}

// TestFastForwardWarmsCaches checks a fast-forwarded working set is
// resident afterwards: a detailed window resumed on it should not start
// cold.
func TestFastForwardWarmsCaches(t *testing.T) {
	p := loadProgram(8<<10, program.MemStride, 100_000)
	cfg := DefaultConfig()
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	ff := program.NewFastForward(p)

	core.ArchCheckpoint(0)
	if executed, done := core.FastForward(ff, 10_000); done || executed != 10_000 {
		t.Fatalf("FastForward executed %d (done=%v)", executed, done)
	}
	// The 8 KiB strided footprint cycles entirely through the L1D.
	for off := uint64(0); off < 8<<10; off += 64 {
		if !core.L1D().Contains((1 << 30) + off) {
			t.Fatalf("line at offset %#x not warmed into L1D", off)
		}
	}
	if core.L1D().Hits+core.L1D().Misses != 0 {
		t.Fatalf("fast-forward touched timed L1D stats: %d/%d", core.L1D().Hits, core.L1D().Misses)
	}
}

// TestFastForwardZeroAllocs pins the fast-forward inner loop's allocation
// behavior, in the same style as the steady-state Step guard: once the
// batch buffer and interpreter pools have settled, fast-forwarding must not
// allocate at all.
func TestFastForwardZeroAllocs(t *testing.T) {
	p := loadProgram(64<<10, program.MemStride, 1<<28)
	cfg := DefaultConfig()
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	ff := program.NewFastForward(p)

	core.ArchCheckpoint(0)
	if _, done := core.FastForward(ff, 50_000); done {
		t.Fatal("program finished during warmup; enlarge the loop")
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, done := core.FastForward(ff, 10_000); done {
			t.Fatal("program finished during measurement; enlarge the loop")
		}
	})
	if allocs != 0 {
		t.Fatalf("FastForward allocated %.1f times per 10k steady-state instructions; want 0", allocs)
	}
}

// BenchmarkFastForward measures the functional fast-forward rate in
// instructions per second (the denominator of sampled mode's speedup).
func BenchmarkFastForward(b *testing.B) {
	p := loadProgram(1<<20, program.MemStride, 1<<30)
	cfg := DefaultConfig()
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()
	ff := program.NewFastForward(p)
	core.ArchCheckpoint(0)
	b.ResetTimer()
	executed, done := core.FastForward(ff, uint64(b.N))
	if done || executed != uint64(b.N) {
		b.Fatalf("program exhausted after %d instructions", executed)
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "insts/s")
}
