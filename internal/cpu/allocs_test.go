package cpu

import (
	"testing"

	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/trace"
)

// TestStepSteadyStateZeroAllocs pins the hot loop's allocation behavior:
// once the ring buffers, issue queues, and scratch slices have grown to
// their steady-state capacity, stepping the core must not allocate at all.
// The workload is a long predictable ALU loop — flush-free, so the test
// isolates the per-cycle path (fetch/dispatch/issue/commit) rather than the
// flush path, whose replay buffer is exercised by the full-suite runs.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	p := independentALULoop(500_000)
	cfg := DefaultConfig()
	core := New(cfg, p, program.NewInterp(p, 1))
	core.MMU().PrefaultAll()

	var rec trace.Record
	cycle := uint64(0)
	// Warm up past cold-start growth: slice capacities, predictor tables,
	// and the fetch buffer all reach steady state well within this.
	for i := 0; i < 50_000; i++ {
		if core.Step(cycle, &rec) {
			t.Fatal("program finished during warmup; enlarge the loop")
		}
		cycle++
	}

	allocs := testing.AllocsPerRun(5, func() {
		for i := 0; i < 1_000; i++ {
			if core.Step(cycle, &rec) {
				t.Fatal("program finished during measurement; enlarge the loop")
			}
			cycle++
		}
	})
	if allocs != 0 {
		t.Fatalf("Core.Step allocated %.1f times per 1000 steady-state cycles; want 0", allocs)
	}
}

// TestFlushReplayBufferReuse drives a branchy workload through enough
// flushes that the ping-pong replay scratch in flushPipeline settles, then
// checks whole-run allocations stay far below one per flush.
func TestFlushReplayBufferReuse(t *testing.T) {
	stats, _ := runProgram(t, randomBranchProgram(4000), 7)
	if stats.Mispredicts < 100 {
		t.Skipf("workload only mispredicted %d times; flush path not exercised", stats.Mispredicts)
	}
	// Re-run the same program measuring allocations end to end. The run
	// includes cold-start growth, so the bound is loose — the regression
	// guarded against is one fresh replay slice per flush (>= one alloc
	// per mispredict).
	p := randomBranchProgram(4000)
	allocs := testing.AllocsPerRun(1, func() {
		cfg := DefaultConfig()
		core := New(cfg, p, program.NewInterp(p, 7))
		core.MMU().PrefaultAll()
		if _, err := core.Run(nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > float64(stats.Mispredicts)/2 {
		t.Fatalf("full run allocated %.0f times against %d flushes; replay buffer is not being reused",
			allocs, stats.Mispredicts)
	}
}
