package cpu

import (
	"testing"

	"github.com/tipprof/tip/internal/isa"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/xrand"
)

// randomProgram builds a structurally random but valid program: random
// block counts, instruction mixes, control flow (branches, jumps, calls,
// loops), memory behaviours, CSRs and fences.
func randomProgram(seed uint64) *program.Program {
	rng := xrand.New(seed)
	b := program.NewBuilder("fuzz")

	handler := b.Func("os_handler")
	hb := handler.NewBlock()
	for i := 0; i < 4+rng.Intn(8); i++ {
		hb.Op(isa.KindIntALU, isa.IntReg(1+rng.Intn(6)))
	}
	hb.Ret()

	// A few leaf functions.
	nLeaves := 1 + rng.Intn(3)
	leaves := make([]*program.FuncBuilder, nLeaves)
	for li := range leaves {
		f := b.Func("leaf")
		nb := 1 + rng.Intn(3)
		blocks := make([]*program.BlockBuilder, nb+1)
		for i := range blocks {
			blocks[i] = f.NewBlock()
		}
		for i := 0; i < nb; i++ {
			emitRandomWork(rng, blocks[i], 1+rng.Intn(8))
			if i < nb-1 && rng.Bool(0.5) {
				mode := program.BranchBehavior{Mode: program.BrRandom, P: rng.Float64()}
				if rng.Bool(0.5) {
					mode = program.BranchBehavior{Mode: program.BrLoop, Trip: 1 + rng.Intn(5)}
				}
				blocks[i].Branch(i+1, mode, isa.IntReg(1+rng.Intn(6)))
			}
		}
		blocks[nb].Ret()
		leaves[li] = f
	}

	main := b.Func("main")
	nb := 2 + rng.Intn(4)
	blocks := make([]*program.BlockBuilder, nb+2)
	for i := range blocks {
		blocks[i] = main.NewBlock()
	}
	for i := 0; i < nb; i++ {
		emitRandomWork(rng, blocks[i], 1+rng.Intn(10))
		if rng.Bool(0.3) {
			blocks[i].Call(leaves[rng.Intn(nLeaves)])
			continue
		}
		if rng.Bool(0.3) && i < nb-1 {
			blocks[i].Branch(i+1, program.BranchBehavior{Mode: program.BrPattern,
				Pattern: []bool{rng.Bool(0.5), rng.Bool(0.5), true}}, isa.IntReg(2))
		}
	}
	blocks[nb].LoopBack(0, 2+rng.Intn(30))
	blocks[nb+1].Ret()

	b.SetEntry(main)
	b.SetHandler(handler)
	return b.MustBuild(0)
}

func emitRandomWork(rng *xrand.Source, blk *program.BlockBuilder, n int) {
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			blk.Load(isa.IntReg(1+rng.Intn(6)), isa.IntReg(7), program.MemBehavior{
				Base: 1 << 30, Size: 1 << (10 + rng.Intn(12)),
				Pattern: program.MemPattern(rng.Intn(3)),
			})
		case 1:
			blk.Store(isa.IntReg(1+rng.Intn(6)), isa.IntReg(7), program.MemBehavior{
				Base: 2 << 30, Size: 1 << (10 + rng.Intn(10)),
			})
		case 2:
			blk.Op(isa.KindFPALU, isa.FPReg(1+rng.Intn(6)), isa.FPReg(1+rng.Intn(6)))
		case 3:
			blk.Op(isa.KindIntMul, isa.IntReg(1+rng.Intn(6)), isa.IntReg(1+rng.Intn(6)))
		case 4:
			if rng.Bool(0.3) {
				blk.CSR("fsflags", isa.IntReg(1), rng.Bool(0.5))
			} else {
				blk.Op(isa.KindIntALU, isa.IntReg(1+rng.Intn(6)))
			}
		case 5:
			if rng.Bool(0.2) {
				blk.Fence()
			} else {
				blk.Op(isa.KindIntALU, isa.IntReg(1+rng.Intn(6)))
			}
		case 6:
			if rng.Bool(0.2) {
				blk.Atomic(isa.IntReg(1+rng.Intn(6)), isa.IntReg(7), program.MemBehavior{
					Base: 3 << 30, Size: 4096,
				})
			} else {
				blk.Op(isa.KindIntDiv, isa.IntReg(1+rng.Intn(6)), isa.IntReg(1+rng.Intn(6)))
			}
		default:
			blk.Op(isa.KindIntALU, isa.IntReg(1+rng.Intn(6)), isa.IntReg(1+rng.Intn(6)))
		}
	}
}

// TestFuzzRandomPrograms runs dozens of structurally random programs and
// checks the machine-level invariants on every one: the run terminates,
// every dynamic instruction commits exactly once, the trace is consistent,
// and no cycle is lost.
func TestFuzzRandomPrograms(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 12
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		p := randomProgram(seed)

		// Count the dynamic stream length independently.
		it := program.NewInterp(p, seed)
		want := uint64(0)
		capped := &program.CappedStream{S: it, Max: 300_000}
		for {
			if _, ok := capped.Next(); !ok {
				break
			}
			want++
		}

		cfg := DefaultConfig()
		cfg.MaxCycles = 20_000_000
		core := New(cfg, p, &program.CappedStream{S: program.NewInterp(p, seed), Max: 300_000})
		// Half the programs run with demand paging active.
		if seed%2 == 0 {
			core.MMU().PrefaultAll()
		}
		v := newValidator(t)
		stats, err := core.Run(v)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// With demand paging, handler instructions add commits.
		if seed%2 == 0 && stats.Committed != want {
			t.Fatalf("seed %d: committed %d, stream had %d", seed, stats.Committed, want)
		}
		if seed%2 == 1 && stats.Committed < want {
			t.Fatalf("seed %d: committed %d < stream %d", seed, stats.Committed, want)
		}
		if v.total != stats.Cycles {
			t.Fatalf("seed %d: trace total %d != cycles %d", seed, v.total, stats.Cycles)
		}
	}
}
