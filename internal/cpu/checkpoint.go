package cpu

import (
	"github.com/tipprof/tip/internal/branch"
	"github.com/tipprof/tip/internal/cache"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/tlb"
)

// Checkpoint is a snapshot of the warmed hardware state a functional sweep
// has accumulated: cache hierarchy tags, both TLB levels plus the present-page
// set, and the TAGE/BTB/architectural-RAS predictors. It deliberately holds
// no pipeline state — checkpoints are taken from cores that have only ever
// executed functionally (FastForward), whose pipelines are empty and whose
// timing state (readyAt, bank busy times) is all zero, so a core restored
// from one can start a detailed leg at local cycle 0.
//
// The instruction-supply position is not part of the checkpoint: the stream
// is an interface the core cannot clone generically, so the scheduler that
// owns the sweep snapshots its interpreter separately and hands both to
// Restore.
//
// A zero-value Checkpoint is ready for use; CheckpointInto allocates its
// structures on first use and reuses them on every later snapshot, so pooled
// checkpoints are free of steady-state allocation.
type Checkpoint struct {
	hier *cache.Hierarchy
	// mmu is a pure state container: its walk path is nil, and it is never
	// asked to translate — Restore copies its entries into a core whose
	// walker reads through that core's own L1D.
	mmu     *tlb.MMU
	tage    *branch.Tage
	btb     *branch.BTB
	archRAS *branch.RAS
}

// CheckpointInto snapshots c's warmed hardware state into cp. The core must
// own a private hierarchy (built with New); cp's structures are allocated on
// first use and overwritten thereafter.
func (c *Core) CheckpointInto(cp *Checkpoint) {
	if c.hier == nil {
		panic("cpu: CheckpointInto requires a core with a private hierarchy (built with New)")
	}
	if cp.hier == nil {
		cp.hier = cache.NewHierarchy(c.cfg.Hierarchy)
		cp.mmu = tlb.New(c.cfg.TLB, nil)
		cp.tage = branch.NewTage(c.cfg.Tage)
		cp.btb = branch.NewBTB(c.cfg.BTBEntries, c.cfg.BTBWays)
		cp.archRAS = branch.NewRAS(c.cfg.RASDepth)
	}
	cp.hier.CopyFrom(c.hier)
	c.mmu.CheckpointInto(cp.mmu)
	cp.tage.CopyFrom(c.tage)
	cp.btb.CopyFrom(c.btb)
	cp.archRAS.CopyFrom(c.archRAS)
}

// windowSeedStep decorrelates per-window OS-handler streams: window w's
// handler seed is HandlerSeed + w*windowSeedStep. The constant is odd, so
// distinct windows never share a seed sequence; window 0 gets exactly
// cfg.HandlerSeed, making a window-0 restore bit-identical to a fresh core.
const windowSeedStep = 0x9e3779b97f4a7c15

// Restore rebuilds c from cp as a core about to start detailed simulation at
// local cycle 0: the warmed structures are copied in, the pipeline and all
// absolute-time execution state are reset, the speculative RAS is repaired
// from the checkpointed architectural one, and the instruction supply is
// replaced by stream (positioned where the sweep stood when the checkpoint
// was taken). window gives the restored core a deterministic identity —
// fetch IDs start at window<<40 (above any FID an earlier window can reach,
// keeping the re-sequenced stream's FIDs monotonic) and the OS-handler seed
// is derived from it — so the detailed leg's output depends only on
// (checkpoint, stream, window), never on which worker runs it or when.
// Statistics are zeroed; the caller reads the leg's stats as a pure delta.
func (c *Core) Restore(cp *Checkpoint, stream program.Stream, window uint64) {
	if c.hier == nil {
		panic("cpu: Restore requires a core with a private hierarchy (built with New)")
	}
	c.hier.CopyFrom(cp.hier)
	c.mmu.RestoreFrom(cp.mmu)
	c.tage.CopyFrom(cp.tage)
	c.btb.CopyFrom(cp.btb)
	c.archRAS.CopyFrom(cp.archRAS)
	c.ras.CopyFrom(cp.archRAS)

	// Instruction supply: the checkpoint position lives in stream alone.
	c.stream = stream
	c.streamDone = false
	c.la.valid = false
	c.pending = c.pending[:0]
	c.pi = 0

	// Empty pipeline at local cycle 0 (mirrors flushPipeline's resets, plus
	// the absolute-time state a flush leaves alone because its clock keeps
	// running — here the clock restarts).
	c.fetchBlockedUntil = 0
	c.waitBranchFID = invalidFID
	c.lastFetchLine = ^uint64(0)
	c.ffLastLine = ^uint64(0)
	c.ffWarmTage = false
	c.fbHead, c.fbCount = 0, 0
	for i := range c.renameRob {
		c.renameRob[i] = -1
	}
	c.robHead, c.robTail, c.robHeadBank, c.robCount = 0, 0, 0, 0
	for i := range c.iqs {
		c.iqs[i] = c.iqs[i][:0]
		c.iqMinReady[i] = 0
		c.iqScanEpoch[i] = 0
	}
	c.issueEpoch = 0
	c.intDivBusyUntil, c.fpDivBusyUntil = 0, 0
	c.lsqCount = 0
	c.storeBuf = c.storeBuf[:0]
	c.branchResolve = c.branchResolve[:0]
	c.serializeActive = false

	// Deterministic per-window identity.
	c.nextFID = window << 40
	c.nextUop = 0
	c.handlerSeed = c.cfg.HandlerSeed + window*windowSeedStep
	c.pmuPending = false
	c.nextSample = ^uint64(0)
	if c.sampleEvery > 0 {
		c.nextSample = c.sampleEvery
	}
	c.stats = Stats{}
}
