package tip

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/tipprof/tip/internal/multicore"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// goldenCaptureMulticorePath holds a gzipped TIPTRC3 stream captured from a
// pinned two-core run (mcf co-running with x264 over the shared LLC). Like
// the single-core golden it pins byte-exact determinism of the whole capture
// path — here additionally the lockstep interleaving and the core-ID deltas.
const goldenCaptureMulticorePath = "testdata/golden_capture_multicore.trc.gz"

func loadScaled(t *testing.T, name string, scale uint64) *Workload {
	t.Helper()
	w, err := workload.LoadScaled(name, 1, scale)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// mcPair loads the canonical two-core test pair: mcf (DRAM-bound) and x264
// (compute-lean), freshly instantiated so every capture starts from the
// same stream state.
func mcPair(t *testing.T, scale uint64) []*Workload {
	return []*Workload{loadScaled(t, "mcf", scale), loadScaled(t, "x264", scale)}
}

// TestCaptureMulticoreMatchesGolden re-captures the pinned two-core run and
// compares the encoded TIPTRC3 stream byte-for-byte against the committed
// golden. Regenerate (only when the trace format or core model deliberately
// changes) with:
//
//	TIP_GEN_GOLDEN_CAPTURE=1 go test -run TestCaptureMulticoreMatchesGolden .
func TestCaptureMulticoreMatchesGolden(t *testing.T) {
	capt, _, err := CaptureMulticore(nil, mcPair(t, 8_000), DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer capt.Close()
	var got bytes.Buffer
	if _, err := capt.WriteTo(&got); err != nil {
		t.Fatal(err)
	}

	if os.Getenv("TIP_GEN_GOLDEN_CAPTURE") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenCaptureMulticorePath), 0o755); err != nil {
			t.Fatal(err)
		}
		var gz bytes.Buffer
		zw := gzip.NewWriter(&gz)
		if _, err := zw.Write(got.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCaptureMulticorePath, gz.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %d raw bytes (%d gzipped), %d cycles, %d records",
			goldenCaptureMulticorePath, got.Len(), gz.Len(), capt.Cycles(), capt.Records())
		return
	}

	f, err := os.Open(goldenCaptureMulticorePath)
	if err != nil {
		t.Fatalf("missing golden multicore capture (regenerate with TIP_GEN_GOLDEN_CAPTURE=1): %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		i := 0
		for i < len(want) && i < got.Len() && got.Bytes()[i] == want[i] {
			i++
		}
		t.Fatalf("multicore capture diverged from golden: got %d bytes, want %d, first difference at offset %d",
			got.Len(), len(want), i)
	}
}

// sameProfiles fails the test unless two results carry exactly equal Oracle
// and per-kind sampled profiles. "Exactly" is the contract: the replayed
// path must reproduce the direct path's attributed cycles bit for bit, so
// float tolerance would hide real divergence.
func sameProfiles(t *testing.T, label string, a, b *Result) {
	t.Helper()
	ao, bo := a.Oracle.Profile, b.Oracle.Profile
	if len(ao.InstCycles) != len(bo.InstCycles) {
		t.Fatalf("%s: oracle profile sizes differ", label)
	}
	for i := range ao.InstCycles {
		if ao.InstCycles[i] != bo.InstCycles[i] {
			t.Fatalf("%s: oracle inst %d differs: %v vs %v", label, i, ao.InstCycles[i], bo.InstCycles[i])
		}
	}
	if len(a.Sampled) != len(b.Sampled) {
		t.Fatalf("%s: sampled profiler sets differ", label)
	}
	for k, sa := range a.Sampled {
		sb, ok := b.Sampled[k]
		if !ok {
			t.Fatalf("%s: %v missing from second result", label, k)
		}
		for i := range sa.Profile.InstCycles {
			if sa.Profile.InstCycles[i] != sb.Profile.InstCycles[i] {
				t.Fatalf("%s: %v inst %d differs: %v vs %v",
					label, k, i, sa.Profile.InstCycles[i], sb.Profile.InstCycles[i])
			}
		}
	}
}

// TestSingleCoreMulticoreMatchesPipeline is the v3 metamorphic anchor: a
// one-core multicore run through the TIPTRC3 capture/demux path must
// produce exactly the profiles the single-core TIPTRC2 pipeline produces
// for the same workload — same core stepping, same cache topology (the
// private stack at physical offset 0 over its own LLC), same calibrated
// interval, so any divergence is a v3 codec or demux bug.
func TestSingleCoreMulticoreMatchesPipeline(t *testing.T) {
	rc := DefaultRunConfig()
	rc.Check = true

	single, err := Run(loadScaled(t, "imagick", 60_000), rc)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulticore(context.Background(), []*Workload{loadScaled(t, "imagick", 60_000)}, rc)
	if err != nil {
		t.Fatal(err)
	}
	mc := multi.Cores[0]
	if single.Stats.Cycles != mc.Stats.Cycles {
		t.Fatalf("cycle counts differ: single %d, multicore %d", single.Stats.Cycles, mc.Stats.Cycles)
	}
	if single.SampleInterval != mc.SampleInterval {
		t.Fatalf("calibrated intervals differ: single %d, multicore %d", single.SampleInterval, mc.SampleInterval)
	}
	sameProfiles(t, "single vs 1-core multicore", single, mc)
}

// TestMulticoreReplayWorkerInvariance pins that fanning the per-core
// matrices over more replay shards never changes any core's profiles: a
// capture replayed with ReplayWorkers 1 and 4 must agree exactly per core.
func TestMulticoreReplayWorkerInvariance(t *testing.T) {
	capt, stats, err := CaptureMulticore(nil, mcPair(t, 30_000), DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer capt.Close()

	rc := DefaultRunConfig()
	rc.Check = true
	results := make([]*MulticoreResult, 0, 2)
	for _, workers := range []int{1, 4} {
		rc.ReplayWorkers = workers
		res, err := RunMulticoreCaptured(context.Background(), mcPair(t, 30_000), capt, stats, rc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		results = append(results, res)
	}
	for core := range results[0].Cores {
		sameProfiles(t, "workers 1 vs 4", results[0].Cores[core], results[1].Cores[core])
	}
}

// collectRecords decodes a capture into plaintext record copies.
type collectRecords struct {
	recs []trace.Record
}

func (c *collectRecords) OnCycle(r *trace.Record) { c.recs = append(c.recs, *r) }
func (c *collectRecords) Finish(uint64)           {}

// TestMulticoreRelabelingSwapsProfiles pins the demux layer's symmetry
// under core relabeling: re-encoding a two-core capture with the core IDs
// swapped (0↔1) and replaying it with the workload/stats assignment swapped
// must swap the per-core profiles exactly. (Swapping the *workload
// placement* at capture time is deliberately not exact: the lockstep loop
// arbitrates same-cycle shared-LLC accesses in core order, so physical
// placement changes timing — the same reason placement matters on real
// hardware; DESIGN.md §12 records this.)
func TestMulticoreRelabelingSwapsProfiles(t *testing.T) {
	ws := mcPair(t, 30_000)
	capt, stats, err := CaptureMulticore(nil, ws, DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer capt.Close()

	rc := DefaultRunConfig()
	rc.SampleInterval = 53
	rc.Check = true
	orig, err := RunMulticoreCaptured(context.Background(), ws, capt, stats, rc)
	if err != nil {
		t.Fatal(err)
	}

	// Relabel: decode, flip the core tags, re-encode as v3.
	var all collectRecords
	if _, _, err := capt.Replay(&all); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriterV3(&buf)
	for i := range all.recs {
		all.recs[i].Core ^= 1
		w.OnCycle(&all.recs[i])
	}
	w.Finish(capt.Cycles())
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	relabeled, err := trace.NewCaptureFromEncoded(buf.Bytes(), capt.Records(), capt.Cycles())
	if err != nil {
		t.Fatal(err)
	}

	swapped, err := RunMulticoreCaptured(context.Background(),
		[]*Workload{ws[1], ws[0]}, relabeled, []CoreStats{stats[1], stats[0]}, rc)
	if err != nil {
		t.Fatal(err)
	}
	sameProfiles(t, "core 0 vs relabeled core 1", orig.Cores[0], swapped.Cores[1])
	sameProfiles(t, "core 1 vs relabeled core 0", orig.Cores[1], swapped.Cores[0])
}

// TestPerCoreTIPAccurateThroughReplay is the acceptance-criterion test: the
// captured/replayed multicore path must (a) reproduce the direct lockstep
// run's per-core profiles byte-identically and (b) keep each core's TIP
// profile accurate against that core's own Oracle under shared-LLC
// contention, mirroring internal/multicore's direct-path contention test.
func TestPerCoreTIPAccurateThroughReplay(t *testing.T) {
	ws := mcPair(t, 50_000)
	rc := DefaultRunConfig()
	rc.SampleInterval = 53
	rc.Check = true

	// Direct path: the same per-core matrices observe the live lockstep
	// run, no capture in between.
	direct, directStats, err := runMulticoreDirect(ws, rc)
	if err != nil {
		t.Fatal(err)
	}

	capt, stats, err := CaptureMulticore(nil, mcPair(t, 50_000), DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer capt.Close()
	for i := range stats {
		if stats[i].Cycles != directStats[i].Cycles {
			t.Fatalf("core %d: capture run cycles %d != direct run cycles %d", i, stats[i].Cycles, directStats[i].Cycles)
		}
	}
	replayed, err := RunMulticoreCaptured(context.Background(), mcPair(t, 50_000), capt, stats, rc)
	if err != nil {
		t.Fatal(err)
	}

	for i := range replayed.Cores {
		sameProfiles(t, "direct vs replayed", direct[i], replayed.Cores[i])
		res := replayed.Cores[i]
		tipErr := res.Err(KindTIP, GranInstruction)
		nciErr := res.Err(KindNCI, GranInstruction)
		if tipErr > 0.10 {
			t.Errorf("core %d (%s): TIP error %.3f vs own Oracle exceeds 0.10", i, res.Workload.Name, tipErr)
		}
		if nciErr < tipErr {
			t.Errorf("core %d (%s): NCI error %.3f below TIP's %.3f", i, res.Workload.Name, nciErr, tipErr)
		}
	}
}

// runMulticoreDirect runs ws on the lockstep system with each core's
// profiler matrix observing the live record stream — the pre-capture
// direct path, used as the byte-identity reference for replayed runs.
func runMulticoreDirect(ws []*Workload, rc RunConfig) ([]*Result, []CoreStats, error) {
	matrices := make([]consumerMatrix, len(ws))
	specs := make([]multicore.CoreSpec, len(ws))
	for i, w := range ws {
		matrices[i] = buildMatrix(w, rc, rc.SampleInterval)
		specs[i] = multicore.CoreSpec{
			Workload:  w,
			Consumers: []trace.Consumer{matrices[i].dispatcher()},
		}
	}
	results, err := multicore.New(multicore.Config{Core: rc.Core}, specs).Run()
	if err != nil {
		return nil, nil, err
	}
	out := make([]*Result, len(ws))
	stats := make([]CoreStats, len(ws))
	for i, w := range ws {
		m := &matrices[i]
		if m.checker != nil {
			if cerr := m.checker.Err(); cerr != nil {
				return nil, nil, cerr
			}
		}
		stats[i] = results[i].Stats
		out[i] = &Result{
			Workload:       w,
			Stats:          results[i].Stats,
			Oracle:         m.oracle,
			Sampled:        m.byKind,
			SampleInterval: rc.SampleInterval,
		}
	}
	return out, stats, nil
}
