package tip

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/xrand"
)

// winJob is one scheduled measurement window travelling from the sweep to a
// worker (over jobs) and, in schedule order, to the sequencer (over pendingC).
type winJob struct {
	index  int    // window number; window 0 runs inline before the sweep starts
	pos    uint64 // committed-instruction position of the checkpoint
	cp     *cpu.Checkpoint
	interp *program.Interp // positioned at pos; becomes the worker's stream
	result chan winResult  // buffered (cap 1): a worker never blocks reporting
}

// sampledConvLag is the feedback pipeline depth of the parallel schedule:
// checkpoint k's placement converts cycle budgets into instruction counts at
// the CPI of window k-sampledConvLag, the most recent window a k-deep
// schedule can have settled without stalling the sweep. Serial sizing uses
// the immediately preceding window (lag 1); a fixed lag keeps up to
// sampledConvLag detailed legs in flight — the concurrency ceiling — while
// still tracking program phase changes, and because the lag is a constant
// (never derived from WindowWorkers) the schedule is byte-identical for
// every worker count. Early windows ramp in at half depth (idx = k/2) so
// short runs don't price every placement at window 0's cold CPI. Six was
// picked empirically: lag 8 overshot a 4.9M-cycle mcf estimate by 2.2%
// where lag 6 lands within 0.1%, and six in-flight legs still saturate the
// four workers a CI runner offers.
const sampledConvLag = 6

// convTrack carries settled window CPIs from the sequencer back to the
// sweep. Entry i is window i's pricing pair (cycles, commits); a window that
// committed nothing carries the previous entry forward, mirroring the serial
// schedule's IPC-1 fallback chain. ratioFor blocks until the entry the lag
// allows exists, which is what bounds how far the sweep can run ahead.
type convTrack struct {
	mu     sync.Mutex
	cond   sync.Cond
	cycles []uint64
	coms   []uint64
	failed bool
}

func newConvTrack(w0Cycles, c0 uint64) *convTrack {
	t := &convTrack{cycles: []uint64{w0Cycles}, coms: []uint64{c0}}
	t.cond.L = &t.mu
	return t
}

// publish appends the next window's settled pricing pair, in window order.
func (t *convTrack) publish(winCycles, winCom uint64) {
	t.mu.Lock()
	if winCom == 0 {
		winCycles = t.cycles[len(t.cycles)-1]
		winCom = t.coms[len(t.coms)-1]
	}
	t.cycles = append(t.cycles, winCycles)
	t.coms = append(t.coms, winCom)
	t.cond.Broadcast()
	t.mu.Unlock()
}

// fail wakes any waiting sweep so it can abandon the schedule.
func (t *convTrack) fail() {
	t.mu.Lock()
	t.failed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// ratioFor returns window k's placement pricing pair — exactly window
// max(k/2, k-sampledConvLag)'s, regardless of how many newer windows happen
// to have settled — blocking until it exists. The lag ramps in (window 2
// waits for window 1, window 4 for window 2, ...) so short runs don't place
// most of their schedule at window 0's cold-start CPI — a ramping program's
// worst possible conversion — at the cost of reduced concurrency over the
// first ~2*sampledConvLag windows. ok is false when the run failed.
func (t *convTrack) ratioFor(k int) (cyc, com uint64, ok bool) {
	idx := k / 2
	if lagged := k - sampledConvLag; lagged > idx {
		idx = lagged
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.cycles) <= idx && !t.failed {
		t.cond.Wait()
	}
	if t.failed {
		return 0, 0, false
	}
	return t.cycles[idx], t.coms[idx], true
}

// winResult is one detailed warmup+window leg's outcome.
type winResult struct {
	recs      []trace.Record // the window's records, on the leg-local clock
	warmSteps uint64         // warmup cycles actually simulated
	winSteps  uint64         // window cycles actually simulated
	warmCom   uint64         // instructions committed during warmup
	winCom    uint64         // instructions committed during the window
	// lastCommit is the leg-local cycle (0 = warmup start) of the last
	// commit, or -1 if nothing committed.
	lastCommit int64
	stats      cpu.Stats // the whole leg's stats, read as a pure delta
	seconds    float64   // leg wall-clock (restore + warmup + window)
	err        error
}

// runSampledParallel is the checkpoint-parallel sampled producer
// (RunConfig.WindowWorkers >= 1): where runSampledCore interleaves windows and
// fast-forward legs on one core, this scheduler separates them so the
// detailed legs — the expensive part — run concurrently.
//
// Window 0 runs inline first, on a fresh core from cycle 0, exactly as the
// serial producer would run it; its committed count and cycle length give the
// IPC that converts cycle budgets into instruction positions. A single
// functional sweep then walks the whole program once (cache/TLB/predictor
// warming on, timing off), and at each window's warmup start snapshots a
// Checkpoint plus an interpreter clone. A pool of WindowWorkers workers
// restores each checkpoint onto a private core and runs the warmup+window
// detailed leg at leg-local cycle 0; the sequencer re-emits the windows'
// records in schedule order on the contiguous measured clock, so downstream
// consumers see the same kind of stream the serial producer feeds them.
//
// Determinism: checkpoint positions derive only from (window 0, jitter seed);
// each leg's output depends only on (checkpoint, interpreter position, window
// number) — Restore gives the core a per-window identity (FID base, handler
// seed) and a zero-cycle clock — and the sequencer consumes results in
// schedule order regardless of which worker finished first. The output is
// therefore byte-identical for every WindowWorkers value >= 1.
//
// The estimate this scheduler produces is deliberately a different estimator
// from the serial one: serial sizes each fast-forward leg from the
// immediately preceding window's CPI, while the sweep must place checkpoints
// ahead of the detailed legs, so window k's placement uses the CPI of window
// k-sampledConvLag — the same feedback loop, delayed by the pipeline depth
// that keeps the workers busy (see convTrack). Stitching (trapezoidal
// pricing of unmeasured spans) reuses the serial stitcher unchanged.
func runSampledParallel(ctx context.Context, w *Workload, rc RunConfig, consumer trace.Consumer) (CoreStats, *SampledRunStats, error) {
	workers := rc.WindowWorkers
	if workers < 1 {
		workers = 1
	}
	sr := &SampledRunStats{WindowWorkers: workers}
	var rec trace.Record
	measured := uint64(0) // the emitted clock, contiguous from 0
	vd := uint64(0)       // virtual detailed clock: window 0 plus every leg
	lastCommitMeasured := uint64(0)
	lastCommitDetailed := uint64(0)

	// Commit-free suffix holdback, identical to the serial producer's: the
	// measured stream must end at its last commit like a full run's does.
	var held []trace.Record
	emit := func(r *trace.Record) {
		if r.CommitCount == 0 {
			held = append(held, *r)
			return
		}
		for i := range held {
			consumer.OnCycle(&held[i])
		}
		held = held[:0]
		consumer.OnCycle(r)
	}

	// --- Window 0: inline on a fresh core, byte-for-byte the serial
	// producer's first window (same FIDs, same handler seed, same clock).
	w0Start := time.Now()
	w0core := newCore(rc.Core, w)
	done := false
	for n := uint64(0); n < rc.WindowCycles; n++ {
		if rc.Core.MaxCycles > 0 && vd >= rc.Core.MaxCycles {
			return w0core.Stats(), sr, fmt.Errorf("cpu: exceeded MaxCycles=%d (committed %d)",
				rc.Core.MaxCycles, w0core.Stats().Committed)
		}
		if vd&sampledCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return w0core.Stats(), sr, fmt.Errorf("cpu: run aborted at cycle %d: %w", vd, err)
			}
		}
		d := w0core.Step(vd, &rec)
		rec.Cycle = measured
		emit(&rec)
		if rec.CommitCount > 0 {
			lastCommitMeasured = measured
			lastCommitDetailed = vd
		}
		measured++
		vd++
		if d {
			done = true
			break
		}
	}
	sr.Windows++
	sr.MeasureSeconds += time.Since(w0Start).Seconds()
	w0Cycles := vd
	c0 := w0core.Stats().Committed
	stats := w0core.Stats()

	finalize := func() (CoreStats, *SampledRunStats, error) {
		sr.MeasuredCycles = lastCommitMeasured + 1
		sr.DetailedCycles = lastCommitDetailed + 1
		sr.EstimatedCycles = sr.MeasuredCycles + sr.FFRepresentedCycles + sr.WarmupRepresentedCycles
		stats.Cycles = sr.EstimatedCycles
		stats.Committed += sr.FFInstructions
		return stats, sr, nil
	}
	if done {
		// The program fits inside one window: nothing to sweep.
		return finalize()
	}

	gap := rc.WindowInterval - rc.WindowCycles // > 0: the caller gates on it
	ffBase := gap - rc.WarmupCycles
	track := newConvTrack(w0Cycles, c0)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// pendingC's bound is what caps checkpoint memory: at most
	// 2*workers+workers snapshots (queued + in flight) exist at a time.
	pendingC := make(chan *winJob, workers*2)
	jobs := make(chan *winJob)
	cpPool := make(chan *cpu.Checkpoint, workers*3)
	itpPool := make(chan *program.Interp, workers*3)
	bufPool := make(chan []trace.Record, workers*3)

	var total uint64 // program's total committed instructions; set before pendingC closes
	var sweepSeconds float64
	var wg sync.WaitGroup

	// --- Functional sweep: one serial walk of the whole program with
	// warming on, snapshotting at each scheduled warmup start. Defers run
	// LIFO: the timing and `total` writes land before close(pendingC), whose
	// close is the sequencer's happens-before edge for reading them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(jobs)
		defer close(pendingC)
		start := time.Now()
		defer func() { sweepSeconds = time.Since(start).Seconds() }()

		interp := program.NewInterp(w.Prog, w.Seed)
		score := cpu.New(rc.Core, w.Prog, interp)
		for _, reg := range w.Prefault {
			score.MMU().PrefaultRange(reg.Base, reg.Size)
		}
		ff := program.NewFastForward(w.Prog)
		// Same seed derivation as the serial schedule; draws happen in
		// schedule order, so positions are independent of worker count.
		jitter := xrand.New(rc.SamplingSeed ^ 0x5a3c9d71)
		pos := uint64(0)
		for index := 1; ; index++ {
			// Block until the lag-delayed feedback window has settled;
			// this is also what bounds the sweep's run-ahead.
			cyc, com, ok := track.ratioFor(index)
			if !ok {
				return
			}
			// conv turns a cycle budget into instructions at the feedback
			// window's IPC (IPC 1 when it committed nothing — same
			// fallback as the serial skip sizing).
			conv := func(cycles uint64) uint64 {
				if com == 0 {
					return cycles
				}
				return mulDiv(cycles, com, cyc)
			}
			ffCycles := ffBase/2 + jitter.Uint64n(ffBase+1)
			skip := conv(ffCycles)
			var target uint64
			if index == 1 {
				target = c0 + skip
			} else {
				// estWW approximates the previous leg's instruction
				// span (its warmup+window cycles at the feedback IPC).
				estWW := conv(rc.WarmupCycles + rc.WindowCycles)
				if estWW == 0 {
					estWW = 1
				}
				target = pos + estWW + skip
			}
			if target <= pos {
				target = pos + 1 // always advance
			}
			exec, ffDone := score.FastForward(ff, target-pos)
			pos += exec
			if ffDone {
				total = pos
				return
			}
			var cp *cpu.Checkpoint
			select {
			case cp = <-cpPool:
			default:
				cp = &cpu.Checkpoint{}
			}
			score.CheckpointInto(cp)
			var itp *program.Interp
			select {
			case itp = <-itpPool:
			default:
				itp = &program.Interp{}
			}
			itp.CopyFrom(interp)
			job := &winJob{index: index, pos: pos, cp: cp, interp: itp,
				result: make(chan winResult, 1)}
			select {
			case pendingC <- job:
			case <-runCtx.Done():
				return
			}
			select {
			case jobs <- job:
			case <-runCtx.Done():
				return
			}
		}
	}()

	// --- Workers: each owns one core for its lifetime and restores every
	// checkpoint it draws onto it.
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wcore := newCore(rc.Core, w)
			for {
				var job *winJob
				select {
				case j, ok := <-jobs:
					if !ok {
						return
					}
					job = j
				case <-runCtx.Done():
					return
				}
				job.result <- runWindowLeg(runCtx, wcore, job, rc, cpPool, bufPool)
				// The interpreter was the leg's live stream; it is idle
				// again once the leg returns.
				select {
				case itpPool <- job.interp:
				default:
				}
			}
		}()
	}

	// --- Sequencer: consume results in schedule order and re-emit each
	// window on the contiguous measured clock.
	st := stitcher{sr: sr}
	st.prevCycles, st.prevCommits = w0Cycles, c0
	prevEnd := c0 // committed-instruction position of detailed coverage so far
	var runErr error
	failRun := func(err error) {
		if runErr == nil {
			runErr = err
		}
		track.fail()
		cancel()
	}
	for job := range pendingC {
		if runErr != nil {
			continue // draining; workers may never produce these results
		}
		var res winResult
		select {
		case res = <-job.result:
		case <-runCtx.Done():
			failRun(fmt.Errorf("cpu: run aborted at cycle %d: %w", vd, ctx.Err()))
			continue
		}
		if res.err != nil {
			failRun(fmt.Errorf("cpu: run aborted at cycle %d: %w", vd, res.err))
			continue
		}
		legStart := vd
		vd += res.warmSteps + res.winSteps
		if rc.Core.MaxCycles > 0 && vd > rc.Core.MaxCycles {
			failRun(fmt.Errorf("cpu: exceeded MaxCycles=%d (committed %d)",
				rc.Core.MaxCycles, stats.Committed))
			continue
		}
		// The unmeasured span between the previous window's committed end
		// and this checkpoint was covered functionally; price it plus this
		// leg's warmup commits against the bracketing windows.
		var leftover uint64
		if job.pos > prevEnd {
			leftover = job.pos - prevEnd
		}
		sr.FFInstructions += leftover
		st.pend(leftover, res.warmCom, st.prevCycles, st.prevCommits)
		st.settle(res.winSteps, res.winCom, true)
		track.publish(res.winSteps, res.winCom)
		if res.winSteps > 0 {
			sr.Windows++
			st.prevCycles, st.prevCommits = res.winSteps, res.winCom
		}
		sr.WarmupCyclesRun += res.warmSteps
		sr.MeasureSeconds += res.seconds
		if res.lastCommit >= 0 {
			lastCommitDetailed = legStart + uint64(res.lastCommit)
		}
		for i := range res.recs {
			r := &res.recs[i]
			r.Cycle = measured
			emit(r)
			if r.CommitCount > 0 {
				lastCommitMeasured = measured
			}
			measured++
		}
		addLegStats(&stats, &res.stats)
		prevEnd = job.pos + res.warmCom + res.winCom
		select {
		case bufPool <- res.recs[:0]:
		default:
		}
	}
	wg.Wait()
	if runErr != nil {
		return stats, sr, runErr
	}
	// Trailing functional coverage: instructions past the last leg's
	// committed end that the sweep executed but no window measured.
	var leftover uint64
	if total > prevEnd {
		leftover = total - prevEnd
	}
	sr.FFInstructions += leftover
	st.pend(leftover, 0, st.prevCycles, st.prevCommits)
	st.settle(0, 0, false)
	sr.SweepSeconds = sweepSeconds
	return finalize()
}

// runWindowLeg restores job's checkpoint onto wcore and runs the detailed
// warmup+window leg at leg-local cycle 0. Warmup steps are simulated but not
// recorded; window steps append their records (on the local clock — the
// sequencer renumbers) to a pooled buffer.
func runWindowLeg(ctx context.Context, wcore *cpu.Core, job *winJob, rc RunConfig, cpPool chan *cpu.Checkpoint, bufPool chan []trace.Record) winResult {
	start := time.Now()
	wcore.Restore(job.cp, job.interp, uint64(job.index))
	// The checkpoint's contents now live in wcore; recycle it immediately so
	// the sweep can snapshot ahead without allocating.
	select {
	case cpPool <- job.cp:
	default:
	}
	var recs []trace.Record
	select {
	case recs = <-bufPool:
		recs = recs[:0]
	default:
		recs = make([]trace.Record, 0, rc.WindowCycles)
	}
	res := winResult{lastCommit: -1}
	var rec trace.Record
	local := uint64(0)
	done := false
	for n := uint64(0); n < rc.WarmupCycles && !done; n++ {
		if local&sampledCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				res.err = err
				return res
			}
		}
		done = wcore.Step(local, &rec)
		if rec.CommitCount > 0 {
			res.lastCommit = int64(local)
		}
		local++
		res.warmSteps++
	}
	res.warmCom = wcore.Stats().Committed
	for n := uint64(0); n < rc.WindowCycles && !done; n++ {
		if local&sampledCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				res.err = err
				return res
			}
		}
		done = wcore.Step(local, &rec)
		recs = append(recs, rec)
		if rec.CommitCount > 0 {
			res.lastCommit = int64(local)
		}
		local++
		res.winSteps++
	}
	res.winCom = wcore.Stats().Committed - res.warmCom
	res.recs = recs
	res.stats = wcore.Stats()
	res.seconds = time.Since(start).Seconds()
	return res
}

// addLegStats folds a leg's stats delta into the run totals. Cycles is
// excluded: legs run on local clocks, and the run's Cycles is the stitched
// estimate set at finalize.
func addLegStats(dst *cpu.Stats, d *cpu.Stats) {
	dst.Committed += d.Committed
	dst.Fetched += d.Fetched
	dst.Mispredicts += d.Mispredicts
	dst.CSRFlushes += d.CSRFlushes
	dst.Exceptions += d.Exceptions
	dst.BTBBubbles += d.BTBBubbles
	dst.StoreStallCycles += d.StoreStallCycles
	dst.PMUInterrupts += d.PMUInterrupts
}
