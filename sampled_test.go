package tip

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// TestValidateSampled exercises every window-geometry rejection and the two
// legal shapes (proper sub-window, and window == interval where warmup is
// ignored).
func TestValidateSampled(t *testing.T) {
	mk := func(wc, wi, warm uint64) RunConfig {
		rc := DefaultRunConfig()
		rc.Sampled = true
		rc.WindowCycles = wc
		rc.WindowInterval = wi
		rc.WarmupCycles = warm
		return rc
	}
	cases := []struct {
		name    string
		rc      RunConfig
		wantErr string
	}{
		{"zero window", mk(0, 4096, 0), "WindowCycles must be positive"},
		{"zero interval", mk(1024, 0, 0), "WindowInterval must be positive"},
		{"window exceeds interval", mk(8192, 4096, 0), "exceeds WindowInterval"},
		{"warmup overflows interval", mk(1024, 4096, 3073), "exceed WindowInterval"},
		{"ok", mk(1024, 4096, 512), ""},
		{"full fraction ignores warmup", mk(4096, 4096, 1<<40), ""},
	}
	for _, tc := range cases {
		err := ValidateSampled(tc.rc)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestRunSampledFullFractionIdentity is the degenerate-case pin: with
// WindowCycles == WindowInterval the sampled path must be bit-identical to
// full simulation at every layer — the encoded trace records, the profiler
// matrix, and the core statistics.
func TestRunSampledFullFractionIdentity(t *testing.T) {
	w, err := workload.LoadScaled("imagick", 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.SampleInterval = 1009 // pin the interval so captured/streaming/sampled calibrate nothing
	rc.Check = true
	rc.WithBreakdown = true

	refCapt, refStats, err := CaptureWorkload(w, rc.Core)
	if err != nil {
		t.Fatal(err)
	}
	defer refCapt.Close()
	ref, err := RunCaptured(context.Background(), w, refCapt, refStats, rc)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := RunStreaming(context.Background(), w, rc)
	if err != nil {
		t.Fatal(err)
	}

	src := rc
	src.Sampled = true
	src.WindowCycles = 4096
	src.WindowInterval = 4096
	src.WarmupCycles = 2048 // must be ignored at full fraction
	gotCapt := trace.NewCapture(0)
	defer gotCapt.Close()
	src.ExtraConsumers = []trace.Consumer{gotCapt}
	got, err := RunSampled(context.Background(), w, src)
	if err != nil {
		t.Fatal(err)
	}

	assertResultsIdentical(t, "sampled-vs-captured", ref, got)
	assertResultsIdentical(t, "sampled-vs-streaming", stream, got)
	if got.Stats != refStats {
		t.Fatalf("sampled stats %+v, want %+v", got.Stats, refStats)
	}
	sr := got.Sampling
	if sr == nil {
		t.Fatal("sampled run published no Sampling stats")
	}
	if sr.FFInstructions != 0 || sr.FFRepresentedCycles != 0 || sr.WarmupCyclesRun != 0 {
		t.Fatalf("full-fraction run fast-forwarded: %+v", sr)
	}
	if sr.DetailedFraction() != 1 {
		t.Fatalf("full-fraction run reports fraction %v", sr.DetailedFraction())
	}
	if sr.EstimatedCycles != refStats.Cycles || sr.MeasuredCycles != refStats.Cycles {
		t.Fatalf("full-fraction cycles: estimated %d measured %d, want %d",
			sr.EstimatedCycles, sr.MeasuredCycles, refStats.Cycles)
	}

	// Trace layer: the teed capture's encoded bytes must equal the
	// reference capture's, record for record.
	if gotCapt.Records() != refCapt.Records() || gotCapt.Cycles() != refCapt.Cycles() {
		t.Fatalf("capture shape: %d records/%d cycles, want %d/%d",
			gotCapt.Records(), gotCapt.Cycles(), refCapt.Records(), refCapt.Cycles())
	}
	var refBuf, gotBuf bytes.Buffer
	if _, err := refCapt.WriteTo(&refBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := gotCapt.WriteTo(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatal("full-fraction sampled trace bytes differ from full simulation")
	}
}

// TestRunSampledFullFractionCalibrationParity pins the pilot-calibration
// path: at full fraction the sampled run's measured stream equals the full
// trace, so its pilot estimate — and therefore its calibrated interval and
// every profile — must match RunStreaming's exactly.
func TestRunSampledFullFractionCalibrationParity(t *testing.T) {
	w, err := workload.LoadScaled("imagick", 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.Check = true
	stream, err := RunStreaming(context.Background(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	src := rc
	src.Sampled = true
	src.WindowCycles = 4096
	src.WindowInterval = 4096
	got, err := RunSampled(context.Background(), w, src)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "calibrated full fraction", stream, got)
	if got.Stats != stream.Stats {
		t.Fatalf("sampled stats %+v, want %+v", got.Stats, stream.Stats)
	}
}

// TestRunSampledConvergence is the metamorphic accuracy check: as the
// detailed window fraction grows toward 1, the stitched cycle estimate's
// error against the full run must not get worse, and at fraction 1 it must
// be exactly zero. Instruction conservation (detailed commits plus
// fast-forwarded instructions equal the full run's commits) holds at every
// fraction.
func TestRunSampledConvergence(t *testing.T) {
	w, err := workload.LoadScaled("imagick", 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	full, err := MeasureStats(w, DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}

	const interval = 1 << 13
	prevErr := 2.0 // anything real is below this
	for _, div := range []uint64{8, 4, 2, 1} {
		rc := DefaultRunConfig()
		rc.Sampled = true
		rc.Check = true
		rc.WindowInterval = interval
		rc.WindowCycles = interval / div
		if div > 1 {
			rc.WarmupCycles = 1 << 10
		}
		res, err := RunSampled(context.Background(), w, rc)
		if err != nil {
			t.Fatalf("1/%d: %v", div, err)
		}
		est := res.Stats.Cycles
		cpiErr := absFrac(est, full.Cycles)
		t.Logf("fraction 1/%d: est %d cycles vs full %d (err %.4f, windows %d, ff %d insts)",
			div, est, full.Cycles, cpiErr, res.Sampling.Windows, res.Sampling.FFInstructions)
		if res.Stats.Committed != full.Committed {
			t.Fatalf("1/%d: committed %d (detailed+ff), full run %d",
				div, res.Stats.Committed, full.Committed)
		}
		if cpiErr > prevErr+1e-9 {
			t.Fatalf("1/%d: error %.4f worse than the smaller fraction's %.4f", div, cpiErr, prevErr)
		}
		prevErr = cpiErr
	}
	if prevErr != 0 {
		t.Fatalf("fraction 1 error %.6f, want exactly 0", prevErr)
	}
}

// absFrac returns |a-b|/b.
func absFrac(a, b uint64) float64 {
	if a > b {
		return float64(a-b) / float64(b)
	}
	return float64(b-a) / float64(b)
}

// TestRunSampledReplayWorkersIdentity pins shard-count independence for the
// sampled path: the same sampled run replayed over 1 and 4 workers must
// produce deeply equal profiler state and identical schedules.
func TestRunSampledReplayWorkersIdentity(t *testing.T) {
	w, err := workload.LoadScaled("x264", 1, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	var ref *Result
	for _, workers := range []int{1, 4} {
		rc := DefaultRunConfig()
		rc.Sampled = true
		rc.WindowCycles = 1 << 11
		rc.WindowInterval = 1 << 13
		rc.WarmupCycles = 1 << 9
		rc.Check = true
		rc.ReplayWorkers = workers
		res, err := RunSampled(context.Background(), w, rc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		assertResultsIdentical(t, fmt.Sprintf("workers=%d", workers), ref, res)
		if ref.Stats != res.Stats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, res.Stats, ref.Stats)
		}
		if !reflect.DeepEqual(ref.Sampling, res.Sampling) {
			t.Fatalf("workers=%d: sampling %+v, want %+v", workers, res.Sampling, ref.Sampling)
		}
	}
}

// TestRunSampledRejectsBadGeometry checks RunSampled surfaces validation
// errors before simulating anything.
func TestRunSampledRejectsBadGeometry(t *testing.T) {
	w, err := workload.LoadScaled("mcf", 1, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.Sampled = true
	rc.WindowCycles = 0
	rc.WindowInterval = 4096
	if _, err := RunSampled(context.Background(), w, rc); err == nil ||
		!strings.Contains(err.Error(), "WindowCycles must be positive") {
		t.Fatalf("error %v, want WindowCycles rejection", err)
	}
}

// TestRunDispatchesSampled checks the Run front door honors rc.Sampled.
func TestRunDispatchesSampled(t *testing.T) {
	w, err := workload.LoadScaled("mcf", 1, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.Sampled = true
	rc.WindowCycles = 1 << 11
	rc.WindowInterval = 1 << 13
	res, err := Run(w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling == nil {
		t.Fatal("Run with rc.Sampled returned no Sampling stats")
	}
	if res.Sampling.FFInstructions == 0 {
		t.Fatal("sampled run fast-forwarded nothing; window geometry too lax for this workload")
	}
}
