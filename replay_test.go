package tip

import (
	"bytes"
	"testing"

	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// TestTraceReplayEquivalence captures a run's commit-stage trace to the
// binary format, replays it through fresh profiler instances, and checks
// the profiles match the live run exactly — the paper's capture-once,
// evaluate-many-configs workflow (§4).
func TestTraceReplayEquivalence(t *testing.T) {
	w, err := workload.LoadScaled("imagick", 1, 150_000)
	if err != nil {
		t.Fatal(err)
	}

	const interval = 127
	mkProfilers := func() (*profiler.Oracle, map[Kind]*profiler.Sampled, []trace.Consumer) {
		or := profiler.NewOracle(w.Prog, false)
		consumers := []trace.Consumer{or}
		byKind := map[Kind]*profiler.Sampled{}
		for _, k := range AllKinds() {
			sp := profiler.NewSampled(k, w.Prog, sampling.NewPeriodic(interval))
			byKind[k] = sp
			consumers = append(consumers, sp)
		}
		return or, byKind, consumers
	}

	// Live run: profilers plus a trace writer on the same stream.
	liveOracle, liveSampled, consumers := mkProfilers()
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	consumers = append(consumers, tw)

	core := newCore(DefaultCoreConfig(), w)
	stats, err := core.Run(&trace.Tee{Consumers: consumers})
	if err != nil {
		t.Fatal(err)
	}
	if tw.Err() != nil {
		t.Fatal(tw.Err())
	}
	if tw.Count() < stats.Cycles {
		t.Fatalf("trace has %d records for %d cycles", tw.Count(), stats.Cycles)
	}

	// Replay the stored trace through fresh profiler instances.
	data := append([]byte(nil), buf.Bytes()...)
	repOracle, repSampled, repConsumers := mkProfilers()
	cycles, _, err := trace.Replay(trace.NewReader(bytes.NewReader(data)), repConsumers...)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != stats.Cycles {
		t.Fatalf("replay cycles %d != live %d", cycles, stats.Cycles)
	}

	if e := profile.DistributionError(liveOracle.Profile.InstCycles, repOracle.Profile.InstCycles); e > 1e-12 {
		t.Fatalf("Oracle profiles differ after replay: TV=%v", e)
	}
	for _, k := range AllKinds() {
		live, rep := liveSampled[k], repSampled[k]
		if live.Samples != rep.Samples {
			t.Fatalf("%v: sample counts differ: %d vs %d", k, live.Samples, rep.Samples)
		}
		if e := profile.DistributionError(live.Profile.InstCycles, rep.Profile.InstCycles); e > 1e-12 {
			t.Fatalf("%v profiles differ after replay: TV=%v", k, e)
		}
	}

	// Replaying against a previously unmodelled configuration also works
	// (the "evaluate a new profiler from an old trace" workflow).
	newCfg := profiler.NewSampled(profiler.KindTIP, w.Prog, sampling.NewPeriodic(311))
	if _, _, err := trace.Replay(trace.NewReader(bytes.NewReader(data)), newCfg); err != nil {
		t.Fatal(err)
	}
	if newCfg.Samples == 0 {
		t.Fatal("new configuration collected no samples from the stored trace")
	}
}
