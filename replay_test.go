package tip

import (
	"bytes"
	"testing"

	"github.com/tipprof/tip/internal/check"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// newChecker builds an invariant checker matching the default core.
func newReplayChecker(name string) *check.Checker {
	cfg := DefaultCoreConfig()
	return check.New(check.Options{
		Benchmark:       name,
		CommitWidth:     cfg.CommitWidth,
		ROBEntries:      cfg.ROBEntries,
		FetchBufEntries: cfg.FetchBufEntries,
	})
}

// TestTraceReplayEquivalence captures a run's commit-stage trace to the
// binary format, replays it through fresh profiler instances, and checks
// the profiles match the live run exactly — the paper's capture-once,
// evaluate-many-configs workflow (§4).
func TestTraceReplayEquivalence(t *testing.T) {
	w, err := workload.LoadScaled("imagick", 1, 150_000)
	if err != nil {
		t.Fatal(err)
	}

	const interval = 127
	mkProfilers := func() (*profiler.Oracle, map[Kind]*profiler.Sampled, []trace.Consumer) {
		or := profiler.NewOracle(w.Prog, false)
		consumers := []trace.Consumer{or}
		byKind := map[Kind]*profiler.Sampled{}
		for _, k := range AllKinds() {
			sp := profiler.NewSampled(k, w.Prog, sampling.NewPeriodic(interval))
			byKind[k] = sp
			consumers = append(consumers, sp)
		}
		return or, byKind, consumers
	}

	// Live run: profilers plus a trace writer and an invariant checker on
	// the same stream.
	liveOracle, liveSampled, consumers := mkProfilers()
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	liveCheck := newReplayChecker(w.Name)
	consumers = append(consumers, tw, liveCheck)

	core := newCore(DefaultCoreConfig(), w)
	stats, err := core.Run(&trace.Tee{Consumers: consumers})
	if err != nil {
		t.Fatal(err)
	}
	if tw.Err() != nil {
		t.Fatal(tw.Err())
	}
	if tw.Count() < stats.Cycles {
		t.Fatalf("trace has %d records for %d cycles", tw.Count(), stats.Cycles)
	}

	if err := liveCheck.Err(); err != nil {
		t.Fatalf("live trace violates invariants: %v", err)
	}

	// Replay the stored trace through fresh profiler instances and a fresh
	// checker: the decoded golden trace must satisfy the same invariants.
	data := append([]byte(nil), buf.Bytes()...)
	repOracle, repSampled, repConsumers := mkProfilers()
	repCheck := newReplayChecker(w.Name)
	repConsumers = append(repConsumers, repCheck)
	cycles, _, err := trace.Replay(trace.NewReader(bytes.NewReader(data)), repConsumers...)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != stats.Cycles {
		t.Fatalf("replay cycles %d != live %d", cycles, stats.Cycles)
	}
	repCheck.AuditOracle("Oracle", repOracle)
	for k, sp := range repSampled {
		repCheck.AuditSampled(k.String(), sp)
	}
	if err := repCheck.Err(); err != nil {
		t.Fatalf("replayed trace violates invariants: %v", err)
	}

	if e := profile.DistributionError(liveOracle.Profile.InstCycles, repOracle.Profile.InstCycles); e > 1e-12 {
		t.Fatalf("Oracle profiles differ after replay: TV=%v", e)
	}
	for _, k := range AllKinds() {
		live, rep := liveSampled[k], repSampled[k]
		if live.Samples != rep.Samples {
			t.Fatalf("%v: sample counts differ: %d vs %d", k, live.Samples, rep.Samples)
		}
		if e := profile.DistributionError(live.Profile.InstCycles, rep.Profile.InstCycles); e > 1e-12 {
			t.Fatalf("%v profiles differ after replay: TV=%v", k, e)
		}
	}

	// Replaying against a previously unmodelled configuration also works
	// (the "evaluate a new profiler from an old trace" workflow).
	newCfg := profiler.NewSampled(profiler.KindTIP, w.Prog, sampling.NewPeriodic(311))
	if _, _, err := trace.Replay(trace.NewReader(bytes.NewReader(data)), newCfg); err != nil {
		t.Fatal(err)
	}
	if newCfg.Samples == 0 {
		t.Fatal("new configuration collected no samples from the stored trace")
	}
}

// TestCaptureReplayByteIdenticalStream pins the tentpole property of the
// single-pass evaluation pipeline: replaying a CaptureWorkload capture and
// re-encoding the decoded records reproduces the live encoding byte for
// byte. Profilers fed by replay therefore observe the exact record stream
// the live core emitted — which is why capture/replay results must (and do,
// per the experiments golden test) match dual-simulation results exactly.
func TestCaptureReplayByteIdenticalStream(t *testing.T) {
	w, err := workload.LoadScaled("imagick", 1, 150_000)
	if err != nil {
		t.Fatal(err)
	}

	// Live encoding: run the core once with a plain trace writer.
	var live bytes.Buffer
	lw := trace.NewWriter(&live)
	stats, err := newCore(DefaultCoreConfig(), w).Run(lw)
	if err != nil {
		t.Fatal(err)
	}
	if lw.Err() != nil {
		t.Fatal(lw.Err())
	}

	// Capture pass (fresh stream, deterministic), then re-encode the
	// replayed records.
	capture, capStats, err := CaptureWorkload(w, DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer capture.Close()
	if capStats != stats {
		t.Fatalf("capture run stats diverged from live run:\nlive %+v\ncap  %+v", stats, capStats)
	}
	var reencoded bytes.Buffer
	rw := trace.NewWriter(&reencoded)
	cycles, records, err := capture.Replay(rw)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Err() != nil {
		t.Fatal(rw.Err())
	}
	if cycles != stats.Cycles {
		t.Fatalf("replay Finish cycles %d != live %d", cycles, stats.Cycles)
	}
	if records != capture.Records() {
		t.Fatalf("replay delivered %d records, capture holds %d", records, capture.Records())
	}
	if !bytes.Equal(live.Bytes(), reencoded.Bytes()) {
		t.Fatalf("capture->replay->re-encode differs from the live encoding: %d vs %d bytes",
			live.Len(), reencoded.Len())
	}
}

// TestSamplingPolicyDoesNotPerturbExecution is a metamorphic check on the
// out-of-band methodology (§4): profilers only observe the trace, so
// switching between periodic and random sampling must leave the underlying
// execution — and therefore the encoded trace — byte-identical.
func TestSamplingPolicyDoesNotPerturbExecution(t *testing.T) {
	capture := func(random bool) []byte {
		w, err := workload.LoadScaled("x264", 1, 60_000)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		rc := DefaultRunConfig()
		rc.TargetSamples = 512
		rc.RandomSampling = random
		rc.Check = true
		rc.ExtraConsumers = []trace.Consumer{tw}
		if _, err := Run(w, rc); err != nil {
			t.Fatal(err)
		}
		if tw.Err() != nil {
			t.Fatal(tw.Err())
		}
		return append([]byte(nil), buf.Bytes()...)
	}
	periodic := capture(false)
	random := capture(true)
	if !bytes.Equal(periodic, random) {
		t.Fatalf("sampling policy perturbed the execution trace: %d vs %d bytes",
			len(periodic), len(random))
	}
}

// TestSameSeedByteIdenticalTraces is the base determinism property: two runs
// from the same seed encode byte-identical traces.
func TestSameSeedByteIdenticalTraces(t *testing.T) {
	capture := func() []byte {
		w, err := workload.LoadScaled("imagick", 1, 60_000)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		rc := DefaultRunConfig()
		rc.TargetSamples = 512
		rc.ExtraConsumers = []trace.Consumer{tw}
		if _, err := Run(w, rc); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), buf.Bytes()...)
	}
	a, b := capture(), capture()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces: %d vs %d bytes", len(a), len(b))
	}
}
