package tip

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// normalizeSampling strips the fields that legitimately differ across
// worker counts and runs — the worker count itself and the wall-clock
// measurements — so the rest of the schedule can be compared deeply.
func normalizeSampling(sr *SampledRunStats) SampledRunStats {
	n := *sr
	n.WindowWorkers = 0
	n.SweepSeconds = 0
	n.MeasureSeconds = 0
	return n
}

// TestRunSampledWindowWorkersIdentity is the tentpole invariant: the
// checkpoint-parallel scheduler's output must be byte-identical for every
// WindowWorkers value >= 1 — same profiler state, same stats, same schedule,
// and the same encoded trace bytes. Run under -race this also exercises the
// sweep/worker/sequencer handoff for data races.
func TestRunSampledWindowWorkersIdentity(t *testing.T) {
	w, err := workload.LoadScaled("x264", 1, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	var ref *Result
	var refBytes []byte
	for _, workers := range []int{1, 2, 4, 7} {
		rc := DefaultRunConfig()
		rc.Sampled = true
		rc.WindowCycles = 1 << 11
		rc.WindowInterval = 1 << 13
		rc.WarmupCycles = 1 << 9
		rc.Check = true
		rc.WindowWorkers = workers
		capt := trace.NewCapture(0)
		rc.ExtraConsumers = []trace.Consumer{capt}
		res, err := RunSampled(context.Background(), w, rc)
		if err != nil {
			capt.Close()
			t.Fatalf("windowworkers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if _, err := capt.WriteTo(&buf); err != nil {
			capt.Close()
			t.Fatal(err)
		}
		capt.Close()
		if res.Sampling.WindowWorkers != workers {
			t.Fatalf("windowworkers=%d: Sampling reports %d workers",
				workers, res.Sampling.WindowWorkers)
		}
		if ref == nil {
			ref, refBytes = res, buf.Bytes()
			continue
		}
		label := fmt.Sprintf("windowworkers=%d", workers)
		assertResultsIdentical(t, label, ref, res)
		if ref.Stats != res.Stats {
			t.Fatalf("%s: stats %+v, want %+v", label, res.Stats, ref.Stats)
		}
		if got, want := normalizeSampling(res.Sampling), normalizeSampling(ref.Sampling); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: sampling %+v, want %+v", label, got, want)
		}
		if !bytes.Equal(refBytes, buf.Bytes()) {
			t.Fatalf("%s: encoded trace bytes differ from windowworkers=1", label)
		}
	}
}

// TestRunSampledParallelConvergence bounds the parallel estimator's accuracy:
// its stitched cycle estimate must stay close to the full run's, and detailed
// commits plus fast-forwarded instructions must cover the whole program
// (over-coverage only — a window that overruns its slot double-counts a few
// instructions; it can never lose any).
func TestRunSampledParallelConvergence(t *testing.T) {
	w, err := workload.LoadScaled("imagick", 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	full, err := MeasureStats(w, DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.Sampled = true
	rc.Check = true
	rc.WindowCycles = 1 << 12
	rc.WindowInterval = 1 << 14
	rc.WarmupCycles = 1 << 10
	rc.WindowWorkers = 4
	res, err := RunSampled(context.Background(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	cpiErr := absFrac(res.Stats.Cycles, full.Cycles)
	t.Logf("parallel 1/4 fraction: est %d cycles vs full %d (err %.4f, windows %d, ff %d insts)",
		res.Stats.Cycles, full.Cycles, cpiErr, res.Sampling.Windows, res.Sampling.FFInstructions)
	if cpiErr > 0.10 {
		t.Fatalf("parallel estimate off by %.1f%% (est %d, full %d)",
			100*cpiErr, res.Stats.Cycles, full.Cycles)
	}
	if res.Stats.Committed < full.Committed {
		t.Fatalf("committed %d lost instructions vs full run's %d",
			res.Stats.Committed, full.Committed)
	}
	if absFrac(res.Stats.Committed, full.Committed) > 0.02 {
		t.Fatalf("committed %d over-counts full run's %d by more than 2%%",
			res.Stats.Committed, full.Committed)
	}
	if res.Sampling.Windows < 2 {
		t.Fatalf("only %d windows ran; geometry too lax to exercise the sweep", res.Sampling.Windows)
	}
}

// TestRunSampledParallelFullFractionServesSerial pins the mode select:
// window == interval has no gap to sweep, so even with WindowWorkers set the
// run must take the serial path — whose full-fraction output is bit-identical
// to RunStreaming — and report WindowWorkers 0.
func TestRunSampledParallelFullFractionServesSerial(t *testing.T) {
	w, err := workload.LoadScaled("imagick", 1, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.Check = true
	stream, err := RunStreaming(context.Background(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	src := rc
	src.Sampled = true
	src.WindowCycles = 4096
	src.WindowInterval = 4096
	src.WindowWorkers = 4
	got, err := RunSampled(context.Background(), w, src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampling.WindowWorkers != 0 {
		t.Fatalf("full-fraction run reports %d window workers, want the serial path (0)",
			got.Sampling.WindowWorkers)
	}
	assertResultsIdentical(t, "full fraction with workers", stream, got)
	if got.Stats != stream.Stats {
		t.Fatalf("stats %+v, want %+v", got.Stats, stream.Stats)
	}
}

// TestRunSampledParallelPublishesTiming checks the wall-clock split the
// scaling tools consume: a real parallel run must report a positive sweep
// and measurement time.
func TestRunSampledParallelPublishesTiming(t *testing.T) {
	w, err := workload.LoadScaled("mcf", 1, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.Sampled = true
	rc.WindowCycles = 1 << 11
	rc.WindowInterval = 1 << 13
	rc.WarmupCycles = 1 << 9
	rc.WindowWorkers = 2
	res, err := RunSampled(context.Background(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Sampling
	if sr.SweepSeconds <= 0 || sr.MeasureSeconds <= 0 {
		t.Fatalf("parallel run published no timing split: sweep %v measure %v",
			sr.SweepSeconds, sr.MeasureSeconds)
	}
}

// TestRunSampledParallelHonorsCancel checks a canceled context aborts the
// parallel scheduler promptly and surfaces the cancellation.
func TestRunSampledParallelHonorsCancel(t *testing.T) {
	w, err := workload.LoadScaled("mcf", 1, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.Sampled = true
	rc.WindowCycles = 1 << 11
	rc.WindowInterval = 1 << 13
	rc.WarmupCycles = 1 << 9
	rc.WindowWorkers = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSampled(ctx, w, rc); err == nil {
		t.Fatal("canceled parallel sampled run returned nil error")
	}
}

// TestAutoWarmupCycles pins the -warmup auto heuristic: gap/16 with an 8192
// floor, capped at half the gap, zero when there is no gap — and exactly the
// historical 8192 default at the default geometry.
func TestAutoWarmupCycles(t *testing.T) {
	cases := []struct {
		window, interval, want uint64
	}{
		{8 << 10, 128 << 10, 8192}, // default geometry: the long-time fixed default
		{4096, 4096, 0},            // no gap, no warmup
		{1 << 11, 1 << 13, 3072},   // small gap: capped at gap/2
		{8 << 10, 1 << 21, 130560}, // big gap: gap/16
		{8 << 10, 160 << 10, 9728}, // mid gap: gap/16 above the floor
		{1 << 10, 100 << 10, 8192}, // gap/16 below the floor: floored
	}
	for _, tc := range cases {
		if got := AutoWarmupCycles(tc.window, tc.interval); got != tc.want {
			t.Errorf("AutoWarmupCycles(%d, %d) = %d, want %d", tc.window, tc.interval, got, tc.want)
		}
		rc := DefaultRunConfig()
		rc.WindowCycles = tc.window
		rc.WindowInterval = tc.interval
		rc.WarmupCycles = AutoWarmupCycles(tc.window, tc.interval)
		if err := ValidateSampled(rc); err != nil {
			t.Errorf("auto warmup for (%d, %d) fails validation: %v", tc.window, tc.interval, err)
		}
	}
}
