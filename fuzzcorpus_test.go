package tip_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// TestGenerateFuzzCorpus regenerates the committed seed corpus for the trace
// decoder fuzz targets from real benchmark captures. It is a maintenance
// tool, not a test: it only runs when TIP_GEN_FUZZ_CORPUS is set.
//
//	TIP_GEN_FUZZ_CORPUS=1 go test -run TestGenerateFuzzCorpus .
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("TIP_GEN_FUZZ_CORPUS") == "" {
		t.Skip("set TIP_GEN_FUZZ_CORPUS to regenerate internal/trace/testdata/fuzz")
	}
	for _, bench := range []string{"imagick", "gcc"} {
		data := encodeBenchTrace(t, bench, 4000, 2048)
		writeCorpus(t, "FuzzDecodeRecord", bench, data)
		writeCorpus(t, "FuzzReplayBytes", bench, data)
		// A truncated real trace exercises the error paths from a realistic
		// prefix instead of pure mutation noise.
		trunc := data[:len(data)*3/4]
		writeCorpus(t, "FuzzReplayBytes", bench+"-truncated", trunc)
	}
	// A core-tagged v3 stream from a real two-core capture seeds the
	// decoder's core-delta path with genuine lockstep interleaving.
	mc := encodeMulticoreTrace(t, []string{"mcf", "x264"}, 4000, 2048)
	writeCorpus(t, "FuzzDecodeRecord", "multicore-v3", mc)
	writeCorpus(t, "FuzzReplayBytes", "multicore-v3", mc)
	writeCorpus(t, "FuzzReplayBytes", "multicore-v3-truncated", mc[:len(mc)*3/4])
}

// encodeMulticoreTrace captures a scaled-down lockstep run of benches and
// re-encodes its first maxRecords records as a standalone TIPTRC3 stream.
func encodeMulticoreTrace(t *testing.T, benches []string, scale uint64, maxRecords int) []byte {
	t.Helper()
	ws := make([]*tip.Workload, len(benches))
	for i, bench := range benches {
		w, err := workload.LoadScaled(bench, 1, scale)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = w
	}
	capture, _, err := tip.CaptureMulticore(nil, ws, tip.DefaultRunConfig().Core)
	if err != nil {
		t.Fatal(err)
	}
	defer capture.Close()
	var buf bytes.Buffer
	enc := &prefixEncoder{w: trace.NewWriterV3(&buf), max: maxRecords}
	if _, _, err := capture.Replay(enc); err != nil {
		t.Fatal(err)
	}
	if enc.w.Err() != nil {
		t.Fatal(enc.w.Err())
	}
	return buf.Bytes()
}

// encodeBenchTrace captures a scaled-down run of the benchmark and re-encodes
// its first maxRecords cycles through a trace.Writer, yielding a small but
// complete TIPTRC2 byte stream with real pipeline behaviour.
func encodeBenchTrace(t *testing.T, bench string, scale uint64, maxRecords int) []byte {
	t.Helper()
	w, err := workload.LoadScaled(bench, 1, scale)
	if err != nil {
		t.Fatal(err)
	}
	capture, _, err := tip.CaptureWorkload(w, tip.DefaultRunConfig().Core)
	if err != nil {
		t.Fatal(err)
	}
	defer capture.Close()
	var buf bytes.Buffer
	enc := &prefixEncoder{w: trace.NewWriter(&buf), max: maxRecords}
	if _, _, err := capture.Replay(enc); err != nil {
		t.Fatal(err)
	}
	if enc.w.Err() != nil {
		t.Fatal(enc.w.Err())
	}
	return buf.Bytes()
}

// prefixEncoder re-encodes only the first max records of a replayed trace,
// closing the stream at the prefix's own last cycle so the result is a valid
// standalone trace.
type prefixEncoder struct {
	w         *trace.Writer
	n, max    int
	lastCycle uint64
}

func (p *prefixEncoder) OnCycle(r *trace.Record) {
	if p.n < p.max {
		p.w.OnCycle(r)
		p.n++
		p.lastCycle = r.Cycle
	}
}

func (p *prefixEncoder) Finish(uint64) { p.w.Finish(p.lastCycle + 1) }

// writeCorpus writes one seed in the `go test fuzz v1` file format.
func writeCorpus(t *testing.T, target, name string, data []byte) {
	t.Helper()
	dir := filepath.Join("internal", "trace", "testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
	path := filepath.Join(dir, "seed-"+name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", path, len(body))
}
