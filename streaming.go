package tip

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"github.com/tipprof/tip/internal/trace"
)

// DefaultPilotCycles is the default streaming calibration window. At the
// suite's simulated IPC it covers a few hundred thousand instructions —
// enough pilot signal that the cycles-per-instruction extrapolation lands
// the sampling interval within a few percent of the two-pass calibration,
// while bounding the buffered prefix to a few megabytes of encoded trace.
const DefaultPilotCycles = 1 << 17

// PilotEstimateCycles extrapolates a run's total cycle count from its pilot
// window: the pilot's cycles-per-instruction scaled to the workload's
// dynamic-instruction budget (Workload.TargetDynInsts). Exact pilot stats —
// the run ended inside the window — are returned as-is, making the estimate
// (and therefore the calibrated interval) identical to the two-pass path.
// The estimate saturates instead of overflowing and is never smaller than
// the pilot itself.
func PilotEstimateCycles(ps trace.PilotStats, targetDynInsts uint64) uint64 {
	if ps.Exact || ps.Committed == 0 || targetDynInsts == 0 {
		return ps.Cycles
	}
	hi, lo := bits.Mul64(ps.Cycles, targetDynInsts)
	if hi >= ps.Committed {
		return math.MaxUint64
	}
	est, _ := bits.Div64(hi, lo, ps.Committed)
	if est < ps.Cycles {
		est = ps.Cycles
	}
	return est
}

// appendConsumers appends extra to base without aliasing the caller's slice.
func appendConsumers(base, extra []trace.Consumer) []trace.Consumer {
	if len(extra) == 0 {
		return base
	}
	out := make([]trace.Consumer, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

// RunStreaming evaluates rc's profiler matrix in a single fused pass: the
// cycle-level simulation streams trace chunks through a bounded ring
// into the replay shards while it is still running, so peak memory is
// independent of run length and wall-clock approaches max(simulate, replay).
// With rc.SampleInterval zero the interval is calibrated from a pilot window
// (rc.PilotCycles); see RunConfig.Streaming for the parity contract with the
// captured path. A nil ctx means context.Background().
func RunStreaming(ctx context.Context, w *Workload, rc RunConfig) (*Result, error) {
	res, _, err := runStreaming(ctx, w, rc, nil)
	return res, err
}

// RunStreamingTee is RunStreaming with the full encoded trace teed into a
// capture as it streams past — the fused equivalent of CaptureWorkload
// followed by RunCaptured, for callers that need both the profiler results
// and a persistable capture (golden-file generation, the tipd capture
// cache). On success the caller owns the returned capture and must Close
// it; on error no capture is returned and any spill file is released.
func RunStreamingTee(ctx context.Context, w *Workload, rc RunConfig) (*Result, *TraceCapture, CoreStats, error) {
	capt := trace.NewCapture(0)
	res, stats, err := runStreaming(ctx, w, rc, capt)
	if err != nil {
		if cerr := capt.Close(); cerr != nil {
			err = fmt.Errorf("%w (also failed to close teed capture: %v)", err, cerr)
		}
		return nil, nil, CoreStats{}, err
	}
	return res, capt, stats, nil
}

// runStreaming is the fused capture→replay orchestrator. The producer
// goroutine runs the core, feeding the stream (optionally teed into capt);
// the calling goroutine calibrates from the pilot window, builds the
// profiler matrix, and replays the stream through it. Error precedence
// follows the captured path: a core/capture failure surfaces as the run
// error, a shard consumer failure as the replay error, and any failure
// cancels the other side before returning.
func runStreaming(ctx context.Context, w *Workload, rc RunConfig, capt *TraceCapture) (*Result, CoreStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fail := func(err error) (*Result, CoreStats, error) {
		return nil, CoreStats{}, fmt.Errorf("tip: %s: %w", w.Name, err)
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	if rc.TargetSamples == 0 {
		rc.TargetSamples = 4096
	}

	var pilotCycles uint64
	if rc.SampleInterval == 0 {
		pilotCycles = rc.PilotCycles
		if pilotCycles == 0 {
			pilotCycles = DefaultPilotCycles
		}
	}
	s := trace.NewStream(trace.StreamConfig{PilotCycles: pilotCycles})
	var producer trace.Consumer = s
	if capt != nil {
		producer = &trace.Tee{Consumers: []trace.Consumer{capt, s}}
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var stats CoreStats
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		st, err := newCore(rc.Core, w).RunContext(runCtx, producer)
		if err != nil {
			// RunContext delivered no Finish; Fail closes the producer side
			// so the replay drains and then observes this error.
			s.Fail(err)
			return
		}
		stats = st
	}()
	// stop tears down both sides on a consumer-side failure: the stream stops
	// accepting records, the core's context is cancelled, and the producer
	// goroutine is awaited so nothing races the return.
	stop := func() {
		s.Abort()
		cancelRun()
		<-prodDone
	}

	interval := rc.SampleInterval
	estCycles := uint64(0)
	if interval == 0 {
		ps, err := s.Pilot(ctx)
		if err != nil {
			stop()
			return fail(err)
		}
		estCycles = PilotEstimateCycles(ps, w.TargetDynInsts)
		interval = CalibrateInterval(estCycles, rc.TargetSamples)
	}
	if rc.ExtraConsumersAt != nil {
		rc.ExtraConsumers = appendConsumers(rc.ExtraConsumers, rc.ExtraConsumersAt(interval, estCycles))
	}
	m := buildMatrix(w, rc, interval)

	workers := rc.ReplayWorkers
	if workers < 1 {
		workers = 1
	}
	if _, _, err := s.ReplayShards(ctx, m.shards(workers)...); err != nil {
		stop()
		return fail(err)
	}
	// A clean replay means the producer already Finished; the wait is only
	// for the stats publication.
	<-prodDone
	if capt != nil {
		if err := capt.Err(); err != nil {
			return fail(fmt.Errorf("capture: %w", err))
		}
	}
	if m.checker != nil {
		if err := m.checker.Err(); err != nil {
			return fail(err)
		}
	}
	return &Result{
		Workload:       w,
		Stats:          stats,
		Oracle:         m.oracle,
		Sampled:        m.byKind,
		SampleInterval: interval,
	}, stats, nil
}
