// Multi-core profiling (§3.2): two cores share the LLC and DRAM, each with
// its own TIP unit. Contention changes each workload's timing — and each
// core's TIP profile stays accurate against that core's own Oracle, which
// is the property that makes per-core TIP units sufficient.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/multicore"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

func main() {
	names := []string{"mcf", "omnetpp"}
	cfg := multicore.Config{Core: cpu.DefaultConfig(), MaxCycles: 500_000_000}

	// Solo baselines first.
	solo := map[string]uint64{}
	for _, n := range names {
		w := mustLoad(n)
		sys := multicore.New(cfg, []multicore.CoreSpec{{Workload: w}})
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		solo[n] = res[0].Stats.Cycles
	}

	// Co-run with per-core Oracle + TIP.
	type coreState struct {
		name   string
		oracle *profiler.Oracle
		tip    *profiler.Sampled
	}
	var specs []multicore.CoreSpec
	var states []coreState
	for _, n := range names {
		w := mustLoad(n)
		or := profiler.NewOracle(w.Prog, false)
		tp := profiler.NewSampled(profiler.KindTIP, w.Prog, sampling.NewPeriodic(101))
		specs = append(specs, multicore.CoreSpec{
			Workload:  w,
			Consumers: []trace.Consumer{or, tp},
		})
		states = append(states, coreState{name: n, oracle: or, tip: tp})
	}
	sys := multicore.New(cfg, specs)
	results, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("core  benchmark  solo-cycles  co-run-cycles  slowdown  TIP-error")
	for i, st := range states {
		co := results[i].Stats.Cycles
		e := st.tip.Profile.Error(st.oracle.Profile, profile.GranInstruction, true)
		fmt.Printf("%4d  %-9s  %11d  %13d  %7.2fx  %8.2f%%\n",
			i, st.name, solo[st.name], co,
			float64(co)/float64(solo[st.name]), e*100)
	}
	fmt.Printf("\nshared LLC: %d hits, %d misses across both cores\n",
		sys.LLC().Hits, sys.LLC().Misses)
	fmt.Println("sharing the LLC and memory controller slows both DRAM-bound")
	fmt.Println("workloads, but each per-core TIP profile stays accurate against")
	fmt.Println("its own Oracle — per-core TIP units suffice (paper §3.2).")
}

func mustLoad(name string) *workload.Workload {
	w, err := workload.LoadScaled(name, 1, 600_000)
	if err != nil {
		log.Fatal(err)
	}
	return w
}
