// Cycle stacks: classify a set of benchmarks by where their cycles go
// (Fig. 7 of the paper) using the Oracle profiler's exact per-cycle
// attribution — Execution, stalls by type, front-end, and flushes.
//
//	go run ./examples/cyclestacks                 # a representative trio
//	go run ./examples/cyclestacks exchange2 mcf   # pick your own
package main

import (
	"fmt"
	"log"
	"os"

	tip "github.com/tipprof/tip"
)

func main() {
	names := []string{"exchange2", "imagick", "mcf"}
	if len(os.Args) > 1 {
		names = os.Args[1:]
	}

	fmt.Printf("%-14s %-8s %5s  %9s %9s %9s %9s %9s %9s %9s\n",
		"benchmark", "class", "IPC",
		"Execution", "ALUstall", "LoadStall", "StStall", "Frontend", "Mispred", "MiscFlush")
	for _, name := range names {
		w, err := tip.LoadWorkload(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		rc := tip.DefaultRunConfig()
		rc.Profilers = []tip.Kind{} // Oracle only: cycle stacks need no sampling
		res, err := tip.Run(w, rc)
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stack()
		n := st.Normalized()
		fmt.Printf("%-14s %-8s %5.2f ", name, st.Class(), res.Stats.IPC())
		for c := tip.Category(0); int(c) < len(n); c++ {
			fmt.Printf(" %8.1f%%", n[c]*100)
		}
		fmt.Println()
	}

	fmt.Println("\nclassification rule (paper §4): Execution > 50% -> Compute;")
	fmt.Println("else flush share > 3% -> Flush; otherwise Stall.")
}
