// Case study (§6 of the paper): use TIP to find the Imagick performance
// bug that NCI-style profiling cannot pinpoint, then verify the fix.
//
// Imagick's ceil/floor wrap their floating-point rounding in
// frflags/fsflags status-register accesses; on a BOOM-style core the
// fsflags write flushes the pipeline at commit. TIP attributes the flush
// cycles to the fsflags instruction itself; NCI blames whatever commits
// next (the ret), sending the developer to the return-address predictor
// instead of the real culprit. Replacing the CSR accesses with nops —
// Imagick never reads the FP status register — yields the paper's 1.93x
// speedup.
//
//	go run ./examples/casestudy
package main

import (
	"fmt"
	"log"

	tip "github.com/tipprof/tip"
)

func main() {
	// Step 1: profile the original program with TIP and NCI.
	w, err := tip.LoadWorkload("imagick", 1)
	if err != nil {
		log.Fatal(err)
	}
	rc := tip.DefaultRunConfig()
	rc.Profilers = []tip.Kind{tip.KindNCI, tip.KindTIP}
	rc.WithBreakdown = true
	res, err := tip.Run(w, rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("function-level profile (both profilers agree — and it is inconclusive):")
	for _, r := range res.Oracle.Profile.TopFunctions(4, true) {
		fmt.Printf("  %-18s %5.1f%%\n", r.Name, r.Share*100)
	}

	fmt.Println("\ninstruction-level profile of ceil:")
	fmt.Printf("  %-26s %8s  %8s\n", "instruction", "TIP", "NCI")
	tipRows := res.Sampled[tip.KindTIP].Profile.FunctionInstProfile("ceil")
	nciRows := res.Sampled[tip.KindNCI].Profile.FunctionInstProfile("ceil")
	for i := range tipRows {
		fmt.Printf("  %-26s %7.1f%%  %7.1f%%\n",
			tipRows[i].Name, tipRows[i].Share*100, nciRows[i].Share*100)
	}
	fmt.Println("\n  TIP pinpoints frflags/fsflags; NCI points at ret (the instruction")
	fmt.Println("  committing after each flush) — the wrong trail.")

	// Step 2: apply the paper's fix (CSR accesses -> nops) and measure.
	orig, err := tip.MeasureStats(w, rc.Core)
	if err != nil {
		log.Fatal(err)
	}
	wOpt, err := tip.LoadWorkload("imagick-opt", 1)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := tip.MeasureStats(wOpt, rc.Core)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noriginal : %9d cycles, IPC %.2f, %d pipeline flushes\n",
		orig.Cycles, orig.IPC(), orig.CSRFlushes)
	fmt.Printf("optimized: %9d cycles, IPC %.2f, %d pipeline flushes\n",
		opt.Cycles, opt.IPC(), opt.CSRFlushes)
	fmt.Printf("speedup  : %.2fx (paper: 1.93x)\n",
		float64(orig.Cycles)/float64(opt.Cycles))
	fmt.Println("\nthe speedup exceeds the time the CSRs themselves consumed: removing")
	fmt.Println("the flushes restores the core's ability to hide latencies everywhere.")
}
