// Quickstart: run one benchmark on the simulated core, profile it with TIP
// and the baseline profilers, and compare their accuracy against the Oracle
// golden reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tip "github.com/tipprof/tip"
)

func main() {
	// Load a benchmark. "imagick" is the paper's §6 case study; see
	// tip.Benchmarks() for the full 27-benchmark suite.
	w, err := tip.LoadWorkload("imagick", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Run it on the Table 1 core with every profiler attached. All
	// profilers observe the same execution and sample the same cycles.
	rc := tip.DefaultRunConfig()
	res, err := tip.Run(w, rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %s: %d instructions in %d cycles (IPC %.2f)\n",
		w.Name, res.Stats.Committed, res.Stats.Cycles, res.Stats.IPC())
	fmt.Printf("cycle stack: %s\n\n", res.Stack())

	// The headline result: instruction-level profile error vs Oracle.
	fmt.Println("instruction-level profile error vs the Oracle reference:")
	for _, k := range tip.AllKinds() {
		fmt.Printf("  %-9s %6.2f%%\n", k, res.Err(k, tip.GranInstruction)*100)
	}

	// TIP stays accurate at every granularity; heuristic profilers
	// degrade as the symbols get finer.
	fmt.Println("\nTIP vs NCI across granularities (instruction / block / function):")
	for _, k := range []tip.Kind{tip.KindNCI, tip.KindTIP} {
		fmt.Printf("  %-5s %6.2f%%  %6.2f%%  %6.2f%%\n", k,
			res.Err(k, tip.GranInstruction)*100,
			res.Err(k, tip.GranBlock)*100,
			res.Err(k, tip.GranFunction)*100)
	}

	// Where does the time go? The Oracle profile knows exactly.
	fmt.Println("\nhottest functions (Oracle):")
	for _, r := range res.Oracle.Profile.TopFunctions(5, true) {
		fmt.Printf("  %-20s %6.2f%%\n", r.Name, r.Share*100)
	}
}
