package tip

import (
	"testing"

	"github.com/tipprof/tip/internal/workload"
)

// smallRun runs a benchmark at reduced scale with all profilers.
func smallRun(t *testing.T, name string, scale uint64) *Result {
	t.Helper()
	w, err := workload.LoadScaled(name, 1, scale)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.TargetSamples = 2048
	res, err := Run(w, rc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 27 {
		t.Fatalf("suite has %d benchmarks", len(names))
	}
	for _, n := range names {
		if _, ok := BenchmarkClass(n); !ok {
			t.Fatalf("no class for %s", n)
		}
	}
}

func TestRunProducesAllProfilers(t *testing.T) {
	res := smallRun(t, "x264", 150_000)
	if len(res.Sampled) != len(AllKinds()) {
		t.Fatalf("got %d profilers", len(res.Sampled))
	}
	if res.Oracle == nil {
		t.Fatal("no oracle")
	}
	if res.SampleInterval == 0 {
		t.Fatal("no calibrated interval")
	}
}

func TestOracleAccountsAllCycles(t *testing.T) {
	res := smallRun(t, "leela", 150_000)
	attributed := res.Oracle.Profile.Attributed()
	total := float64(res.Stats.Cycles)
	if diff := attributed - total; diff > 1 || diff < -1 {
		t.Fatalf("Oracle attributed %.1f of %.1f cycles", attributed, total)
	}
	if res.Oracle.Stack.Total != total {
		t.Fatalf("stack total %v != cycles %v", res.Oracle.Stack.Total, total)
	}
	var stackSum float64
	for _, v := range res.Oracle.Stack.Cycles {
		stackSum += v
	}
	if diff := stackSum - total; diff > 1 || diff < -1 {
		t.Fatalf("stack sums to %.1f of %.1f cycles", stackSum, total)
	}
}

func TestErrorsWithinRange(t *testing.T) {
	res := smallRun(t, "deepsjeng", 150_000)
	for _, k := range AllKinds() {
		for _, g := range []Granularity{GranInstruction, GranBlock, GranFunction} {
			e := res.Err(k, g)
			if e < 0 || e > 1 {
				t.Fatalf("%v at %v: error %v out of range", k, g, e)
			}
		}
	}
}

func TestTIPBeatsBaselinesAtInstructionLevel(t *testing.T) {
	for _, name := range []string{"x264", "imagick", "lbm"} {
		res := smallRun(t, name, 200_000)
		tipErr := res.Err(KindTIP, GranInstruction)
		for _, k := range []Kind{KindSoftware, KindDispatch, KindLCI, KindNCI} {
			if other := res.Err(k, GranInstruction); other < tipErr {
				t.Errorf("%s: %v error %.3f < TIP %.3f", name, k, other, tipErr)
			}
		}
	}
}

func TestErrorGrowsWithFinerGranularity(t *testing.T) {
	res := smallRun(t, "imagick", 200_000)
	for _, k := range []Kind{KindNCI, KindLCI} {
		fe := res.Err(k, GranFunction)
		ie := res.Err(k, GranInstruction)
		if fe > ie+0.01 {
			t.Errorf("%v: function error %.3f > instruction error %.3f", k, fe, ie)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := smallRun(t, "nab", 120_000)
	b := smallRun(t, "nab", 120_000)
	if a.Stats != b.Stats {
		t.Fatalf("stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Err(KindTIP, GranInstruction) != b.Err(KindTIP, GranInstruction) {
		t.Fatal("profiles differ between identical runs")
	}
}

func TestImagickSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale imagick comparison")
	}
	cfg := DefaultCoreConfig()
	w, err := LoadWorkload("imagick", 1)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := MeasureStats(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wOpt, err := LoadWorkload("imagick-opt", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := MeasureStats(wOpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Committed != opt.Committed {
		t.Fatalf("instruction counts differ: %d vs %d", orig.Committed, opt.Committed)
	}
	speedup := float64(orig.Cycles) / float64(opt.Cycles)
	if speedup < 1.7 || speedup > 2.2 {
		t.Fatalf("speedup %.2fx outside the paper's 1.93x ballpark", speedup)
	}
	if opt.CSRFlushes != 0 {
		t.Fatalf("optimized variant still flushes %d times", opt.CSRFlushes)
	}
	if orig.CSRFlushes == 0 {
		t.Fatal("original variant never flushed")
	}
}

func TestImagickCaseStudyAttribution(t *testing.T) {
	res := smallRun(t, "imagick", 400_000)
	// TIP puts significant ceil time on fsflags; NCI puts it on ret.
	get := func(k Kind, mnemonic string) float64 {
		for _, r := range res.Sampled[k].Profile.FunctionInstProfile("ceil") {
			if len(r.Name) >= len(mnemonic) && r.Name[len(r.Name)-len(mnemonic):] == mnemonic {
				return r.Share
			}
		}
		return 0
	}
	if s := get(KindTIP, "fsflags"); s < 0.15 {
		t.Errorf("TIP gives fsflags only %.1f%% of ceil", s*100)
	}
	if s := get(KindNCI, "fsflags"); s > 0.15 {
		t.Errorf("NCI gives fsflags %.1f%% of ceil; expected misattribution", s*100)
	}
	if s := get(KindNCI, "ret"); s < 0.15 {
		t.Errorf("NCI gives ret only %.1f%% of ceil; expected the blame", s*100)
	}
}

func TestRandomSamplingRuns(t *testing.T) {
	w, err := workload.LoadScaled("bwaves", 1, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.TargetSamples = 1024
	rc.RandomSampling = true
	rc.Profilers = []Kind{KindTIP}
	res, err := Run(w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Err(KindTIP, GranInstruction); e > 0.3 {
		t.Fatalf("random-sampling TIP error %.3f implausibly high", e)
	}
}

func TestFixedIntervalRespected(t *testing.T) {
	w, err := workload.LoadScaled("x264", 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.SampleInterval = 997
	rc.Profilers = []Kind{KindTIP}
	res, err := Run(w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleInterval != 997 {
		t.Fatalf("interval = %d, want 997", res.SampleInterval)
	}
	want := res.Stats.Cycles / 997
	got := res.Sampled[KindTIP].Samples
	if got < want-2 || got > want+2 {
		t.Fatalf("samples = %d, want ~%d", got, want)
	}
}

func TestClassificationMatchesSpecsSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several benchmarks")
	}
	// A representative from each class keeps its class even at reduced
	// scale (the full suite is validated by cmd/tipbench).
	for _, name := range []string{"exchange2", "imagick", "mcf"} {
		res := smallRun(t, name, 300_000)
		want, _ := BenchmarkClass(name)
		if got := res.Stack().Class(); got != want {
			t.Errorf("%s classified %s, want %s", name, got, want)
		}
	}
}

func TestOverheadExported(t *testing.T) {
	o := Overhead{CommitWidth: 4, ClockHz: 3_200_000_000, SampleHz: 4000}
	if o.StorageBytes() != 57 {
		t.Fatal("overhead model broken through facade")
	}
}
