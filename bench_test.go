// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md's per-experiment index), plus ablation
// benches for the design choices DESIGN.md calls out.
//
// Each figure bench regenerates its experiment at a reduced scale and
// reports the headline numbers as benchmark metrics, so
//
//	go test -bench=Fig -benchtime=1x
//
// prints the same series the paper reports. cmd/tipbench regenerates the
// full-scale versions.
package tip_test

import (
	"bytes"
	"testing"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/experiments"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// benchScale keeps figure benches to a few seconds each.
const benchScale = 200_000

// benchSubset is a class-balanced subset for the per-suite figures.
var benchSubset = []string{
	"exchange2", "deepsjeng", "namd", // Compute
	"imagick", "nab", "gcc", // Flush
	"lbm", "mcf", "streamcluster", // Stall
}

func benchOpts() experiments.Options {
	return experiments.Options{
		Scale:         benchScale,
		TargetSamples: 4096,
		Benchmarks:    benchSubset,
	}
}

func evalForBench(b *testing.B) []*experiments.BenchmarkEval {
	b.Helper()
	evals, err := experiments.EvalSuite(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return evals
}

func meanInstErr(evals []*experiments.BenchmarkEval, k profiler.Kind) float64 {
	s := 0.0
	for _, ev := range evals {
		s += ev.Periodic[experiments.BaseFrequency][k].Inst
	}
	return s / float64(len(evals))
}

// BenchmarkFig01aAverageError regenerates Figure 1a: average
// instruction-level error per profiler.
func BenchmarkFig01aAverageError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := evalForBench(b)
		b.ReportMetric(meanInstErr(evals, profiler.KindSoftware)*100, "%err-Software")
		b.ReportMetric(meanInstErr(evals, profiler.KindDispatch)*100, "%err-Dispatch")
		b.ReportMetric(meanInstErr(evals, profiler.KindLCI)*100, "%err-LCI")
		b.ReportMetric(meanInstErr(evals, profiler.KindNCI)*100, "%err-NCI")
		b.ReportMetric(meanInstErr(evals, profiler.KindTIP)*100, "%err-TIP")
	}
}

// BenchmarkFig01bImagick regenerates Figure 1b: imagick's per-profiler
// instruction-level error.
func BenchmarkFig01bImagick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		opt.Benchmarks = []string{"imagick"}
		opt.Scale = 0 // full scale: the case study needs its real shape
		ev, err := experiments.EvalBenchmark("imagick", opt)
		if err != nil {
			b.Fatal(err)
		}
		base := ev.Periodic[experiments.BaseFrequency]
		b.ReportMetric(base[profiler.KindNCI].Inst*100, "%err-NCI")
		b.ReportMetric(base[profiler.KindTIP].Inst*100, "%err-TIP")
	}
}

// BenchmarkFig07CycleStacks regenerates Figure 7 and reports the class
// shares.
func BenchmarkFig07CycleStacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := evalForBench(b)
		correct := 0
		for _, ev := range evals {
			if ev.Stack.Class() == ev.Class {
				correct++
			}
		}
		b.ReportMetric(float64(correct), "classes-correct")
		b.ReportMetric(float64(len(evals)), "classes-total")
	}
}

// BenchmarkFig08FunctionErrors regenerates Figure 8.
func BenchmarkFig08FunctionErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := evalForBench(b)
		sum := func(k profiler.Kind) float64 {
			s := 0.0
			for _, ev := range evals {
				s += ev.Periodic[experiments.BaseFrequency][k].Func
			}
			return s / float64(len(evals)) * 100
		}
		b.ReportMetric(sum(profiler.KindSoftware), "%err-Software")
		b.ReportMetric(sum(profiler.KindNCI), "%err-NCI")
		b.ReportMetric(sum(profiler.KindTIP), "%err-TIP")
	}
}

// BenchmarkFig09BasicBlockErrors regenerates Figure 9.
func BenchmarkFig09BasicBlockErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := evalForBench(b)
		sum := func(k profiler.Kind) float64 {
			s := 0.0
			for _, ev := range evals {
				s += ev.Periodic[experiments.BaseFrequency][k].Block
			}
			return s / float64(len(evals)) * 100
		}
		b.ReportMetric(sum(profiler.KindLCI), "%err-LCI")
		b.ReportMetric(sum(profiler.KindNCI), "%err-NCI")
		b.ReportMetric(sum(profiler.KindTIP), "%err-TIP")
	}
}

// BenchmarkFig10InstructionErrors regenerates Figure 10.
func BenchmarkFig10InstructionErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := evalForBench(b)
		b.ReportMetric(meanInstErr(evals, profiler.KindNCI)*100, "%err-NCI")
		b.ReportMetric(meanInstErr(evals, profiler.KindTIPILP)*100, "%err-TIP-ILP")
		b.ReportMetric(meanInstErr(evals, profiler.KindTIP)*100, "%err-TIP")
	}
}

// BenchmarkFig11aFrequencySweep regenerates Figure 11a: TIP error vs
// sampling frequency.
func BenchmarkFig11aFrequencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := evalForBench(b)
		for _, freq := range experiments.DefaultFrequencies {
			s := 0.0
			for _, ev := range evals {
				s += ev.Periodic[freq][profiler.KindTIP].Inst
			}
			b.ReportMetric(s/float64(len(evals))*100,
				"%err-TIP@"+itoa(freq)+"Hz")
		}
	}
}

// BenchmarkFig11bRandomSampling regenerates Figure 11b.
func BenchmarkFig11bRandomSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := evalForBench(b)
		p, pr, r := 0.0, 0.0, 0.0
		for _, ev := range evals {
			pr += ev.PeriodicRaw[profiler.KindTIP].Inst
			p += ev.Periodic[experiments.BaseFrequency][profiler.KindTIP].Inst
			r += ev.Random[profiler.KindTIP].Inst
		}
		n := float64(len(evals))
		b.ReportMetric(pr/n*100, "%err-periodic-raw")
		b.ReportMetric(p/n*100, "%err-periodic")
		b.ReportMetric(r/n*100, "%err-random")
	}
}

// BenchmarkFig11cNCIILP regenerates Figure 11c: commit-parallelism-aware
// NCI gets worse, not better.
func BenchmarkFig11cNCIILP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evals := evalForBench(b)
		b.ReportMetric(meanInstErr(evals, profiler.KindNCI)*100, "%err-NCI")
		b.ReportMetric(meanInstErr(evals, profiler.KindNCIILP)*100, "%err-NCI+ILP")
		b.ReportMetric(meanInstErr(evals, profiler.KindTIP)*100, "%err-TIP")
	}
}

// BenchmarkFig12CaseStudy regenerates Figure 12: within-ceil attribution.
func BenchmarkFig12CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig12(experiments.Options{TargetSamples: 8192})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Rows)), "rows")
	}
}

// BenchmarkFig13Optimization regenerates Figure 13 and reports the headline
// speedup (paper: 1.93x).
func BenchmarkFig13Optimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(experiments.Options{TargetSamples: 2048})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup, "speedup-x")
		b.ReportMetric(r.OrigIPC, "IPC-orig")
		b.ReportMetric(r.OptIPC, "IPC-opt")
	}
}

// BenchmarkTable1Config renders the configuration table.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1().Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkOverheadModel evaluates the §3.2 overhead model.
func BenchmarkOverheadModel(b *testing.B) {
	o := tip.Overhead{CommitWidth: 4, ClockHz: 3_200_000_000, SampleHz: 4000}
	for i := 0; i < b.N; i++ {
		_ = o.OracleBytesPerSecond()
		_ = o.TIPBytesPerSecond()
	}
	b.ReportMetric(float64(o.StorageBytes()), "storage-B")
	b.ReportMetric(float64(o.TIPBytesPerSecond())/1000, "TIP-KB/s")
	b.ReportMetric(float64(o.OracleBytesPerSecond())/1e9, "Oracle-GB/s")
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationCommitWidth sweeps the commit width: TIP's ILP
// accounting matters more as the machine gets wider.
func BenchmarkAblationCommitWidth(b *testing.B) {
	for _, cw := range []int{2, 4, 8} {
		b.Run(itoa(uint64(cw))+"wide", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := workload.LoadScaled("exchange2", 1, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				rc := tip.DefaultRunConfig()
				rc.Core.CommitWidth = cw
				rc.Core.DispatchWidth = cw
				rc.Core.ROBEntries = 32 * cw
				rc.Profilers = []tip.Kind{tip.KindNCI, tip.KindTIP}
				res, err := tip.Run(w, rc)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats.IPC(), "IPC")
				b.ReportMetric(res.Err(tip.KindNCI, tip.GranInstruction)*100, "%err-NCI")
				b.ReportMetric(res.Err(tip.KindTIP, tip.GranInstruction)*100, "%err-TIP")
			}
		})
	}
}

// BenchmarkAblationConsumerCost measures the out-of-band profiler-matrix
// cost per simulated cycle (the trace-driven design's overhead).
func BenchmarkAblationConsumerCost(b *testing.B) {
	run := func(b *testing.B, kinds []tip.Kind) {
		for i := 0; i < b.N; i++ {
			w, err := workload.LoadScaled("x264", 1, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			rc := tip.DefaultRunConfig()
			rc.Profilers = kinds
			if _, err := tip.Run(w, rc); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("oracle-only", func(b *testing.B) { run(b, []tip.Kind{}) })
	b.Run("all-profilers", func(b *testing.B) { run(b, nil) })
}

// BenchmarkAblationTraceEncode measures the binary trace codec (store once,
// replay against new profiler models).
func BenchmarkAblationTraceEncode(b *testing.B) {
	var rec trace.Record
	rec.NumBanks = 4
	rec.Banks[0] = trace.BankEntry{Valid: true, Committing: true, PC: 0x10000, FID: 1, InstIndex: 0}
	rec.Banks[1] = trace.BankEntry{Valid: true, PC: 0x10004, FID: 2, InstIndex: 1}
	rec.CommitCount = 1
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Cycle = uint64(i)
		w.OnCycle(&rec)
	}
	w.Finish(uint64(b.N))
	if w.Err() != nil {
		b.Fatal(w.Err())
	}
	b.ReportMetric(float64(buf.Len())/float64(b.N), "B/record")
}

// BenchmarkAblationErrorMetric measures the total-variation error
// computation over instruction-granularity profiles.
func BenchmarkAblationErrorMetric(b *testing.B) {
	w, err := workload.LoadScaled("gcc", 1, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	rc := tip.DefaultRunConfig()
	rc.Profilers = []tip.Kind{tip.KindTIP}
	res, err := tip.Run(w, rc)
	if err != nil {
		b.Fatal(err)
	}
	prof := res.Sampled[tip.KindTIP].Profile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prof.Error(res.Oracle.Profile, profile.GranInstruction, true)
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationPrefetcher compares the L1D next-line prefetcher on/off
// on a streaming workload (Table 1 includes the prefetcher; this shows what
// it buys).
func BenchmarkAblationPrefetcher(b *testing.B) {
	run := func(b *testing.B, enabled bool) {
		for i := 0; i < b.N; i++ {
			w, err := workload.LoadScaled("bwaves", 1, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			rc := tip.DefaultRunConfig()
			rc.Core.Hierarchy.L1D.NextLinePrefetch = enabled
			rc.Profilers = []tip.Kind{}
			res, err := tip.Run(w, rc)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Stats.IPC(), "IPC")
			b.ReportMetric(float64(res.Stats.Cycles), "cycles")
		}
	}
	b.Run("prefetch-on", func(b *testing.B) { run(b, true) })
	b.Run("prefetch-off", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationSamplingInterval sweeps the sampling density on one
// benchmark (the per-benchmark view behind Fig. 11a).
func BenchmarkAblationSamplingInterval(b *testing.B) {
	for _, interval := range []uint64{4099, 1021, 251, 61} {
		b.Run("interval-"+itoa(interval), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := workload.LoadScaled("gcc", 1, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				rc := tip.DefaultRunConfig()
				rc.SampleInterval = interval
				rc.Profilers = []tip.Kind{tip.KindTIP}
				res, err := tip.Run(w, rc)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Err(tip.KindTIP, tip.GranInstruction)*100, "%err-TIP")
				b.ReportMetric(float64(res.Sampled[tip.KindTIP].Samples), "samples")
			}
		})
	}
}
