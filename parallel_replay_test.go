package tip

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// captureForTest captures one small imagick run shared by the parallel-replay
// tests.
func captureForTest(t *testing.T) (*Workload, *TraceCapture, CoreStats) {
	t.Helper()
	w, err := workload.LoadScaled("imagick", 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	capture, stats, err := CaptureWorkload(w, DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { capture.Close() })
	return w, capture, stats
}

// TestRunCapturedWorkerCountIdentity pins the tentpole invariant at the API
// level: RunCaptured must produce deeply equal profiler state at any worker
// count, with the conservation checker attached throughout.
func TestRunCapturedWorkerCountIdentity(t *testing.T) {
	w, capture, stats := captureForTest(t)

	run := func(workers int) *Result {
		rc := DefaultRunConfig()
		rc.TargetSamples = 512
		rc.Check = true
		rc.WithBreakdown = true
		rc.ReplayWorkers = workers
		res, err := RunCaptured(context.Background(), w, capture, stats, rc)
		if err != nil {
			t.Fatalf("ReplayWorkers=%d: %v", workers, err)
		}
		return res
	}

	ref := run(1)
	for _, workers := range []int{2, 3, 16} {
		got := run(workers)
		if !reflect.DeepEqual(ref.Oracle.Profile, got.Oracle.Profile) {
			t.Fatalf("Oracle profile differs at ReplayWorkers=%d", workers)
		}
		if !reflect.DeepEqual(ref.Oracle.Stack, got.Oracle.Stack) {
			t.Fatalf("cycle stack differs at ReplayWorkers=%d", workers)
		}
		for _, k := range AllKinds() {
			a, b := ref.Sampled[k], got.Sampled[k]
			if a.Samples != b.Samples {
				t.Fatalf("%v: sample count %d vs %d at ReplayWorkers=%d",
					k, a.Samples, b.Samples, workers)
			}
			if !reflect.DeepEqual(a.Profile, b.Profile) {
				t.Fatalf("%v profile differs at ReplayWorkers=%d", k, workers)
			}
		}
	}
}

// faultingEveryCycle is an extra consumer that reports a failure mid-stream
// through the trace.Faultable interface.
type faultingEveryCycle struct {
	seen   uint64
	failAt uint64
	err    error
}

func (f *faultingEveryCycle) OnCycle(*trace.Record) {
	f.seen++
	if f.seen >= f.failAt && f.err == nil {
		f.err = errors.New("injected mid-replay failure")
	}
}
func (f *faultingEveryCycle) Finish(uint64) {}
func (f *faultingEveryCycle) Err() error    { return f.err }

// TestRunCapturedAbortsOnConsumerFault injects a failing consumer into the
// every-cycle tier and checks a sharded replay surfaces its error instead of
// streaming the rest of the capture into a dead pipeline.
func TestRunCapturedAbortsOnConsumerFault(t *testing.T) {
	w, capture, stats := captureForTest(t)
	bad := &faultingEveryCycle{failAt: 500}
	rc := DefaultRunConfig()
	rc.TargetSamples = 512
	rc.ReplayWorkers = 4
	rc.ExtraConsumers = []trace.Consumer{bad}
	_, err := RunCaptured(context.Background(), w, capture, stats, rc)
	if err == nil || !strings.Contains(err.Error(), "injected mid-replay failure") {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	if bad.seen == capture.Records() {
		t.Fatal("replay streamed the full capture despite the mid-stream failure")
	}
}

// TestRunCapturedContextCancelled checks both replay paths reject an already
// cancelled context without delivering results.
func TestRunCapturedContextCancelled(t *testing.T) {
	w, capture, stats := captureForTest(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		rc := DefaultRunConfig()
		rc.TargetSamples = 512
		rc.ReplayWorkers = workers
		res, err := RunCaptured(ctx, w, capture, stats, rc)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ReplayWorkers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("ReplayWorkers=%d: got a result from a cancelled run", workers)
		}
	}
}
