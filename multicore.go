package tip

import (
	"context"
	"errors"
	"fmt"

	"github.com/tipprof/tip/internal/multicore"
	"github.com/tipprof/tip/internal/trace"
)

// MulticoreResult is the outcome of one multi-programmed profiled run: one
// Result per core, each validated against that core's own Oracle (§3.2 —
// every physical core has its own TIP unit; a co-runner changes a
// benchmark's timing but not its profile's accuracy).
type MulticoreResult struct {
	// Cores holds one Result per core, in spec order.
	Cores []*Result
	// TotalCycles is the interleaved run's length: the last committing
	// cycle across all cores, plus one.
	TotalCycles uint64
}

// CaptureMulticore runs ws lockstep on one shared-LLC system — workload i
// on core i — streaming the interleaved commit-stage records into one
// core-tagged TIPTRC3 capture. It returns the capture (caller must Close
// it) and each core's run statistics. Cancelling ctx aborts the simulation;
// a nil ctx disables cancellation.
func CaptureMulticore(ctx context.Context, ws []*Workload, cfg CoreConfig) (*TraceCapture, []CoreStats, error) {
	if len(ws) == 0 {
		return nil, nil, errors.New("tip: multicore capture needs at least one workload")
	}
	specs := make([]multicore.CoreSpec, len(ws))
	for i, w := range ws {
		specs[i] = multicore.CoreSpec{Workload: w}
	}
	sys := multicore.New(multicore.Config{Core: cfg}, specs)
	capt := trace.NewCaptureV3(0)
	results, err := sys.CaptureRun(ctx, capt)
	if err == nil {
		if cerr := capt.Err(); cerr != nil {
			err = fmt.Errorf("tip: multicore capture: %w", cerr)
		}
	}
	if err != nil {
		if cerr := capt.Close(); cerr != nil {
			err = errors.Join(err, fmt.Errorf("tip: close multicore capture: %w", cerr))
		}
		return nil, nil, err
	}
	stats := make([]CoreStats, len(results))
	for i := range results {
		stats[i] = results[i].Stats
	}
	return capt, stats, nil
}

// RunMulticoreCaptured evaluates rc's profiler matrix per core by replaying
// a core-tagged multicore capture — one decode pass feeds every core's
// matrix through trace.CoreFilter demultiplexers. stats must be the capture
// run's per-core statistics (from CaptureMulticore). With rc.SampleInterval
// zero each core's interval is calibrated from that core's own cycle count,
// exactly as a single-core run of the same length would be. With rc.Check a
// separate invariant checker rides each core's filtered stream, so cycle
// contiguity and the Oracle/Sampled conservation laws are audited per core.
//
// rc.ReplayWorkers spreads the per-core matrices over replay shards: each
// core gets max(1, ReplayWorkers/len(ws)) shards and every shard is wrapped
// in that core's filter, so worker count never changes profile output.
// rc.ExtraConsumers / rc.ExtraConsumersAt are not applied on this path —
// they would observe one core's filtered stream per matrix they were added
// to, which is never what a caller wiring a single-stream consumer expects.
func RunMulticoreCaptured(ctx context.Context, ws []*Workload, capt *TraceCapture, stats []CoreStats, rc RunConfig) (*MulticoreResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(ws) == 0 || len(ws) != len(stats) {
		return nil, fmt.Errorf("tip: multicore replay: %d workloads, %d stats", len(ws), len(stats))
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("tip: multicore replay: %w", err)
	}
	if rc.TargetSamples == 0 {
		rc.TargetSamples = 4096
	}
	rc.ExtraConsumers = nil
	rc.ExtraConsumersAt = nil

	perCore := rc.ReplayWorkers / len(ws)
	if perCore < 1 {
		perCore = 1
	}
	matrices := make([]consumerMatrix, len(ws))
	intervals := make([]uint64, len(ws))
	var shards []trace.Consumer
	for i, w := range ws {
		interval := rc.SampleInterval
		if interval == 0 {
			interval = CalibrateInterval(stats[i].Cycles, rc.TargetSamples)
		}
		intervals[i] = interval
		matrices[i] = buildMatrix(w, rc, interval)
		for _, shard := range matrices[i].shards(perCore) {
			shards = append(shards, &trace.CoreFilter{Core: uint32(i), Inner: shard})
		}
	}

	var totalCycles uint64
	var err error
	if rc.ReplayWorkers > 1 {
		totalCycles, _, err = capt.ReplayShards(ctx, 0, shards...)
	} else {
		totalCycles, _, err = capt.Replay(shards...)
	}
	if err != nil {
		return nil, fmt.Errorf("tip: multicore replay: %w", err)
	}
	res := &MulticoreResult{TotalCycles: totalCycles}
	for i, w := range ws {
		m := &matrices[i]
		if m.checker != nil {
			if cerr := m.checker.Err(); cerr != nil {
				return nil, fmt.Errorf("tip: core %d (%s): %w", i, w.Name, cerr)
			}
		}
		res.Cores = append(res.Cores, &Result{
			Workload:       w,
			Stats:          stats[i],
			Oracle:         m.oracle,
			Sampled:        m.byKind,
			SampleInterval: intervals[i],
		})
	}
	return res, nil
}

// RunMulticore captures a lockstep multi-programmed run of ws and evaluates
// the per-core profiler matrices from the capture — the whole-pipeline
// multicore entry point behind tipsim -cores, tipbench -figures multicore,
// and tipd "cores" jobs.
func RunMulticore(ctx context.Context, ws []*Workload, rc RunConfig) (*MulticoreResult, error) {
	capt, stats, err := CaptureMulticore(ctx, ws, rc.Core)
	if err != nil {
		return nil, err
	}
	defer capt.Close()
	return RunMulticoreCaptured(ctx, ws, capt, stats, rc)
}
