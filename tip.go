// Package tip is the public API of the TIP reproduction: it wires a
// workload, the cycle-level BOOM-style core, and any set of profilers
// together, runs the simulation, and returns profiles, profile errors, and
// cycle stacks.
//
// The package reproduces "TIP: Time-Proportional Instruction Profiling"
// (Gottschall, Eeckhout, Jahre — MICRO 2021): an Oracle golden-reference
// profiler, the practical TIP profiler, and the baseline heuristics used by
// real hardware (Software interrupts, AMD-IBS/Arm-SPE dispatch tagging,
// CoreSight-style LCI, Intel-PEBS-style NCI).
//
// Quick start:
//
//	res, err := tip.RunBenchmark("imagick", tip.DefaultRunConfig())
//	fmt.Println(res.Err(tip.KindNCI, tip.GranInstruction))  // NCI's error
//	fmt.Println(res.Err(tip.KindTIP, tip.GranInstruction))  // TIP's error
package tip

import (
	"context"
	"errors"
	"fmt"

	"github.com/tipprof/tip/internal/check"
	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/profile"
	"github.com/tipprof/tip/internal/profiler"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/workload"
)

// Re-exported types so downstream users never import internal packages.
type (
	// Granularity selects the symbol level for profiles and errors.
	Granularity = profile.Granularity
	// Kind identifies a sampled-profiler policy.
	Kind = profiler.Kind
	// Profile is an attributed-cycle profile.
	Profile = profile.Profile
	// CycleStack is a per-category cycle breakdown (Fig. 7).
	CycleStack = profile.CycleStack
	// Category is a commit-stage cycle type.
	Category = profile.Category
	// CoreConfig parameterises the simulated core (Table 1 defaults).
	CoreConfig = cpu.Config
	// CoreStats reports a run's cycles/instructions/flushes.
	CoreStats = cpu.Stats
	// Workload is a generated benchmark program.
	Workload = workload.Workload
	// Overhead models §3.2's storage and data-rate analysis.
	Overhead = profiler.Overhead
	// TraceCapture is a recorded commit-stage trace that can be replayed
	// through any number of profiler configurations without re-simulating
	// the core (§4's capture-once, evaluate-many methodology).
	TraceCapture = trace.Capture
)

// Re-exported constants.
const (
	GranInstruction = profile.GranInstruction
	GranBlock       = profile.GranBlock
	GranFunction    = profile.GranFunction

	KindSoftware = profiler.KindSoftware
	KindDispatch = profiler.KindDispatch
	KindLCI      = profiler.KindLCI
	KindNCI      = profiler.KindNCI
	KindNCIILP   = profiler.KindNCIILP
	KindTIPILP   = profiler.KindTIPILP
	KindTIP      = profiler.KindTIP

	CatExecution  = profile.CatExecution
	CatALUStall   = profile.CatALUStall
	CatLoadStall  = profile.CatLoadStall
	CatStoreStall = profile.CatStoreStall
	CatFrontend   = profile.CatFrontend
	CatMispredict = profile.CatMispredict
	CatMiscFlush  = profile.CatMiscFlush
)

// AllKinds lists every sampled-profiler policy in evaluation order.
func AllKinds() []Kind { return profiler.AllKinds() }

// Benchmarks lists the 27-benchmark suite in Fig. 7 order.
func Benchmarks() []string { return workload.Names() }

// BenchmarkClass returns a benchmark's expected Fig. 7 class.
func BenchmarkClass(name string) (string, bool) {
	s, ok := workload.ByName(name)
	return s.Class, ok
}

// LoadWorkload generates the named benchmark ("imagick-opt" selects the §6
// optimized variant).
func LoadWorkload(name string, seed uint64) (*Workload, error) {
	return workload.Load(name, seed)
}

// DefaultCoreConfig returns the Table 1 core configuration.
func DefaultCoreConfig() CoreConfig { return cpu.DefaultConfig() }

// RunConfig controls one profiled simulation.
type RunConfig struct {
	// Core is the simulated core configuration.
	Core CoreConfig
	// Profilers lists the sampled profilers to model out-of-band; nil
	// means all of them.
	Profilers []Kind
	// SampleInterval is the sampling period in cycles. Zero means
	// calibrate: run the single cycle-level simulation while capturing
	// its trace, set the interval so the run collects about
	// TargetSamples samples — the scaled equivalent of the paper's
	// 4 kHz on multi-minute benchmarks (see DESIGN.md) — and feed the
	// profilers by replaying the capture.
	SampleInterval uint64
	// TargetSamples is the calibration target (default 4096).
	TargetSamples uint64
	// RandomSampling picks a random cycle within each interval instead
	// of the interval end (§5.2).
	RandomSampling bool
	// SamplingSeed seeds random sampling.
	SamplingSeed uint64
	// WithBreakdown records Oracle's per-instruction category matrix
	// (needed for Fig. 12/13 reports).
	WithBreakdown bool
	// ExtraConsumers receive the trace alongside the profilers.
	ExtraConsumers []trace.Consumer
	// ExtraConsumersAt, when set, is invoked once the sampling interval is
	// known — after calibration on the streaming path, where consumers must
	// be built before the run's final cycle count exists — and its result
	// is appended to ExtraConsumers. estCycles is the cycle-count estimate
	// the interval was calibrated from (the exact total on the captured
	// path, the pilot extrapolation on the streaming path, 0 when an
	// explicit SampleInterval made no estimate necessary).
	ExtraConsumersAt func(interval, estCycles uint64) []trace.Consumer
	// Check attaches a cycle-level invariant checker (internal/check) to
	// the trace stream and fails the run on any violated trace invariant
	// or profiler conservation law.
	Check bool
	// ReplayWorkers is the number of goroutines a captured-trace replay
	// fans the profiler matrix out over (0 or 1 = sequential). The capture
	// is decoded once and the decoded chunks are broadcast to every
	// worker, each owning a disjoint subset of the profilers behind its
	// own dispatcher; results are byte-identical at any worker count. Only
	// replays shard — a live profiled run (explicit SampleInterval with no
	// capture) always streams sequentially.
	ReplayWorkers int
	// Streaming fuses capture and replay: Run simulates the core once,
	// streaming trace chunks through a bounded ring into the
	// profiler matrix while the simulation is still running, instead of
	// capturing the whole trace first. Peak memory stays bounded by the
	// pilot window plus the ring regardless of run length, and wall-clock
	// approaches max(simulate, replay). Calibration uses a pilot window
	// (see PilotCycles), so with SampleInterval zero the chosen interval is
	// an estimate — identical to the captured path's only when the run ends
	// inside the pilot window; profiler output is byte-identical between
	// the two paths whenever the interval matches.
	Streaming bool
	// PilotCycles is the streaming calibration window in cycles (0 =
	// DefaultPilotCycles). The pilot prefix is buffered, its
	// cycles-per-instruction extrapolated against the workload's
	// TargetDynInsts to estimate the total cycle count, and the sampling
	// interval derived from that estimate; the buffered prefix is then
	// replayed first so profilers observe every cycle. Ignored when
	// SampleInterval is explicit.
	PilotCycles uint64
	// Sampled selects SMARTS-style sampled simulation: detailed
	// measurement windows of WindowCycles, one per WindowInterval of
	// estimated execution, with the gap covered by functional
	// fast-forward (architectural state plus cache/TLB/predictor warming,
	// no timing) and an optional WarmupCycles detailed prefix whose
	// observations are discarded. Profilers see only the measurement
	// windows, renumbered onto a contiguous clock; Result.Stats.Cycles
	// becomes an estimate built by weighting each fast-forward leg with
	// its preceding window's CPI (see RunSampled). Composes with the
	// streaming pipeline; implies Streaming-style fused execution.
	Sampled bool
	// WindowCycles is the length of each detailed measurement window in
	// cycles. Required (non-zero) when Sampled is set.
	WindowCycles uint64
	// WindowInterval is the execution period each window represents, in
	// cycles: one window of WindowCycles measures each WindowInterval of
	// the run, so WindowCycles/WindowInterval is the detailed fraction.
	// Must be at least WindowCycles; equal means every cycle is measured
	// and the run is bit-identical to full simulation. Required when
	// Sampled is set.
	WindowInterval uint64
	// WarmupCycles is the detailed warmup prefix re-run before each
	// measurement window after a fast-forward: the core simulates these
	// cycles normally but the profilers never observe them, absorbing the
	// functional warming's residual cold-start error. WindowCycles +
	// WarmupCycles must fit in WindowInterval (unless the two are equal,
	// in which case no fast-forward ever happens and warmup is ignored).
	WarmupCycles uint64
	// WarmupAuto derives WarmupCycles from the fast-forward leg length
	// instead of taking it literally: RunSampled resolves it to
	// AutoWarmupCycles(WindowCycles, WindowInterval) before validation.
	// Long fast-forward legs evict more warm state than the small-scale
	// default warmup can rebuild (BENCH_6's sensitivity sweep under-warms
	// 100M-cycle runs), so warmup should grow with the gap it follows.
	WarmupAuto bool
	// WindowWorkers selects checkpoint-parallel sampled simulation: a
	// serial functional sweep snapshots the warmed state at each window's
	// warmup start, and up to WindowWorkers worker cores run the detailed
	// warmup+window legs concurrently, re-sequenced in schedule order.
	// Output is byte-identical for every value >= 1 (the sweep, not
	// execution order, defines each window's start state); 0 keeps the
	// serial single-core schedule, whose estimate differs slightly (it
	// sizes each leg from the latest window's CPI, the parallel sweep from
	// window 0's). Ignored unless Sampled.
	WindowWorkers int
}

// DefaultRunConfig returns the standard evaluation configuration.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Core:          cpu.DefaultConfig(),
		TargetSamples: 4096,
		SamplingSeed:  0x5eed,
	}
}

// Result is the outcome of one profiled run.
type Result struct {
	// Workload is the benchmark that ran.
	Workload *Workload
	// Stats are the core's run statistics.
	Stats CoreStats
	// Oracle is the golden-reference profiler (with its cycle stack).
	Oracle *profiler.Oracle
	// Sampled holds each modelled profiler.
	Sampled map[Kind]*profiler.Sampled
	// SampleInterval is the sampling period used, in cycles.
	SampleInterval uint64
	// Sampling describes the sampled-simulation schedule when the run
	// used RunConfig.Sampled; nil for full-detail runs.
	Sampling *SampledRunStats
}

// Err returns the named profiler's systematic error against Oracle at the
// given granularity, excluding OS (handler) samples like the paper.
func (r *Result) Err(k Kind, g Granularity) float64 {
	s, ok := r.Sampled[k]
	if !ok {
		return 1
	}
	return s.Profile.Error(r.Oracle.Profile, g, true)
}

// Stack returns the Oracle cycle stack.
func (r *Result) Stack() *CycleStack { return &r.Oracle.Stack }

// newCore builds a core for w with data regions prefaulted.
func newCore(cfg CoreConfig, w *Workload) *cpu.Core {
	core := cpu.New(cfg, w.Prog, w.Stream())
	for _, reg := range w.Prefault {
		core.MMU().PrefaultRange(reg.Base, reg.Size)
	}
	return core
}

// CalibrateInterval converts a measured cycle count into a sampling period
// collecting about targetSamples samples (default 4096), floored at 16 and
// primed so periodic sampling cannot lock onto a cycle-deterministic loop
// period (see sampling.NextPrime).
func CalibrateInterval(cycles, targetSamples uint64) uint64 {
	if targetSamples == 0 {
		targetSamples = 4096
	}
	interval := cycles / targetSamples
	if interval < 16 {
		interval = 16
	}
	return sampling.NextPrime(interval)
}

// CaptureWorkload runs the single cycle-level simulation of w, streaming its
// encoded commit-stage trace into a replayable capture. The caller owns the
// capture and must Close it. The simulator is deterministic, so replaying the
// capture feeds profilers the byte-identical record stream a live profiled
// run would have seen.
func CaptureWorkload(w *Workload, cfg CoreConfig) (*TraceCapture, CoreStats, error) {
	return CaptureWorkloadContext(nil, w, cfg)
}

// CaptureWorkloadContext is CaptureWorkload with cooperative cancellation:
// cancelling ctx aborts the cycle-level simulation within a few thousand
// simulated cycles and returns ctx's error. It is the capture entry point
// long-running services (tipd) use so an abandoned job never pins a worker
// for the remainder of a simulation. A nil ctx disables cancellation.
func CaptureWorkloadContext(ctx context.Context, w *Workload, cfg CoreConfig) (*TraceCapture, CoreStats, error) {
	capt := trace.NewCapture(0)
	stats, err := newCore(cfg, w).RunContext(ctx, capt)
	if err != nil {
		err = fmt.Errorf("tip: %s: %w", w.Name, err)
	} else if cerr := capt.Err(); cerr != nil {
		err = fmt.Errorf("tip: %s: capture: %w", w.Name, cerr)
	}
	if err != nil {
		// A failed capture may still own a spill file; losing the Close
		// error would leak the temp file silently (PR 1's no-ignored-Close
		// policy).
		if cerr := capt.Close(); cerr != nil {
			err = errors.Join(err, fmt.Errorf("tip: %s: close capture: %w", w.Name, cerr))
		}
		return nil, CoreStats{}, err
	}
	return capt, stats, nil
}

// consumerMatrix is one evaluation's profiler fan-out, split into the
// every-cycle tier (Oracle, checker, non-sampled extras — pinned together
// on one replay shard) and the sample-aware tier (balanced across shards).
type consumerMatrix struct {
	every   []trace.Consumer
	sampled []*profiler.Sampled
	oracle  *profiler.Oracle
	byKind  map[Kind]*profiler.Sampled
	checker *check.Checker
}

// buildMatrix assembles the profiler matrix for one evaluation.
func buildMatrix(w *Workload, rc RunConfig, interval uint64) consumerMatrix {
	kinds := rc.Profilers
	if kinds == nil {
		kinds = profiler.AllKinds()
	}
	m := consumerMatrix{
		oracle: profiler.NewOracle(w.Prog, rc.WithBreakdown),
		byKind: make(map[Kind]*profiler.Sampled, len(kinds)),
	}
	m.every = append(m.every, m.oracle)
	for _, k := range kinds {
		var sched sampling.Schedule
		if rc.RandomSampling {
			sched = sampling.NewRandom(interval, rc.SamplingSeed)
		} else {
			sched = sampling.NewPeriodic(interval)
		}
		sp := profiler.NewSampled(k, w.Prog, sched)
		if k == KindTIP || k == KindTIPILP {
			// TIP exposes its flags CSR with every sample; keep the
			// §3.1 categorization alongside the profile.
			sp.EnableCategories(rc.WithBreakdown)
		}
		m.byKind[k] = sp
		m.sampled = append(m.sampled, sp)
	}
	for _, c := range rc.ExtraConsumers {
		if sp, ok := c.(*profiler.Sampled); ok {
			m.sampled = append(m.sampled, sp)
		} else {
			m.every = append(m.every, c)
		}
	}

	if rc.Check {
		m.checker = check.New(check.Options{
			Benchmark:       w.Name,
			CommitWidth:     rc.Core.CommitWidth,
			ROBEntries:      rc.Core.ROBEntries,
			FetchBufEntries: rc.Core.FetchBufEntries,
		})
		m.checker.AuditOracle("Oracle", m.oracle)
		for _, k := range kinds {
			m.checker.AuditSampled(k.String(), m.byKind[k])
		}
		m.every = append(m.every, m.checker)
	}
	return m
}

// dispatcher assembles the matrix behind a single sequential dispatcher.
func (m *consumerMatrix) dispatcher() *profiler.Dispatcher {
	d := profiler.NewDispatcher()
	for _, c := range m.every {
		d.AddEveryCycle(c)
	}
	for _, sp := range m.sampled {
		d.AddSampled(sp)
	}
	return d
}

// shards assembles the matrix into at most workers dispatchers for a
// sharded replay: shard 0 carries the whole every-cycle tier (Oracle and
// checker stay pinned together so the checker's per-cycle invariants see
// the stream exactly once) plus its share of sampled profilers; the
// remaining shards split the rest of the sample-aware tier balanced by
// expected wakeups. Workers that would own no consumers are elided.
func (m *consumerMatrix) shards(workers int) []trace.Consumer {
	groups := profiler.ShardSampled(workers, m.sampled, float64(len(m.every)))
	shards := make([]trace.Consumer, 0, workers)
	d0 := profiler.NewDispatcher()
	for _, c := range m.every {
		d0.AddEveryCycle(c)
	}
	for _, sp := range groups[0] {
		d0.AddSampled(sp)
	}
	shards = append(shards, d0)
	for _, g := range groups[1:] {
		if len(g) == 0 {
			continue
		}
		d := profiler.NewDispatcher()
		for _, sp := range g {
			d.AddSampled(sp)
		}
		shards = append(shards, d)
	}
	return shards
}

// RunCaptured evaluates rc's profiler matrix by replaying a captured trace
// of w — no second simulation. stats must be the capture run's statistics.
// With rc.SampleInterval zero the interval is calibrated from stats.Cycles.
// The capture is left open; the caller may replay it again (e.g. for another
// configuration) before Closing it.
//
// With rc.ReplayWorkers > 1 the capture is decoded once and broadcast to
// that many replay workers, each evaluating a disjoint subset of the matrix
// (see RunConfig.ReplayWorkers); the result is byte-identical to the
// sequential replay. ctx cancellation aborts a sharded replay between
// chunks; the sequential path checks it only between phases. A nil ctx
// means context.Background().
func RunCaptured(ctx context.Context, w *Workload, capt *TraceCapture, stats CoreStats, rc RunConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("tip: %s: %w", w.Name, err)
	}
	if rc.TargetSamples == 0 {
		rc.TargetSamples = 4096
	}
	interval := rc.SampleInterval
	estCycles := uint64(0)
	if interval == 0 {
		estCycles = stats.Cycles
		interval = CalibrateInterval(stats.Cycles, rc.TargetSamples)
	}
	if rc.ExtraConsumersAt != nil {
		rc.ExtraConsumers = appendConsumers(rc.ExtraConsumers, rc.ExtraConsumersAt(interval, estCycles))
	}
	m := buildMatrix(w, rc, interval)
	var err error
	if rc.ReplayWorkers > 1 {
		_, _, err = capt.ReplayShards(ctx, 0, m.shards(rc.ReplayWorkers)...)
	} else {
		_, _, err = capt.Replay(m.dispatcher())
	}
	if err != nil {
		return nil, fmt.Errorf("tip: %s: %w", w.Name, err)
	}
	if m.checker != nil {
		if err := m.checker.Err(); err != nil {
			return nil, fmt.Errorf("tip: %s: %w", w.Name, err)
		}
	}
	return &Result{
		Workload:       w,
		Stats:          stats,
		Oracle:         m.oracle,
		Sampled:        m.byKind,
		SampleInterval: interval,
	}, nil
}

// Run simulates w under rc. With rc.SampleInterval zero it runs the single
// cycle-level simulation while capturing the encoded trace, calibrates the
// sampling period from the measured cycle count, and feeds the profilers by
// replaying the capture — one simulation where there used to be two. With an
// explicit interval the profilers observe the live trace stream directly.
// Either way the profilers see the byte-identical record stream.
func Run(w *Workload, rc RunConfig) (*Result, error) {
	if rc.TargetSamples == 0 {
		rc.TargetSamples = 4096
	}
	if rc.Sampled {
		return RunSampled(context.Background(), w, rc)
	}
	if rc.Streaming {
		return RunStreaming(context.Background(), w, rc)
	}
	if rc.SampleInterval == 0 {
		capt, stats, err := CaptureWorkload(w, rc.Core)
		if err != nil {
			return nil, err
		}
		defer capt.Close()
		return RunCaptured(context.Background(), w, capt, stats, rc)
	}

	if rc.ExtraConsumersAt != nil {
		rc.ExtraConsumers = appendConsumers(rc.ExtraConsumers, rc.ExtraConsumersAt(rc.SampleInterval, 0))
	}
	m := buildMatrix(w, rc, rc.SampleInterval)
	stats, err := newCore(rc.Core, w).Run(m.dispatcher())
	if err != nil {
		return nil, fmt.Errorf("tip: %s: %w", w.Name, err)
	}
	if m.checker != nil {
		if err := m.checker.Err(); err != nil {
			return nil, fmt.Errorf("tip: %s: %w", w.Name, err)
		}
	}
	return &Result{
		Workload:       w,
		Stats:          stats,
		Oracle:         m.oracle,
		Sampled:        m.byKind,
		SampleInterval: rc.SampleInterval,
	}, nil
}

// RunBenchmark loads and runs a named benchmark with seed 1.
func RunBenchmark(name string, rc RunConfig) (*Result, error) {
	w, err := workload.Load(name, 1)
	if err != nil {
		return nil, err
	}
	return Run(w, rc)
}

// MeasureStats runs w unprofiled and returns the core statistics (used by
// the Fig. 13 speedup comparison, where no profiler is needed).
func MeasureStats(w *Workload, cfg CoreConfig) (CoreStats, error) {
	return newCore(cfg, w).Run(nil)
}
