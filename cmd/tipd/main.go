// Command tipd is the TIP profiling daemon: a long-running HTTP service
// that accepts profiling jobs, runs them on a bounded worker pool over the
// capture/replay pipeline, and serves the results as JSON profiles or
// gzipped pprof protobufs.
//
// This is the paper's §3.1 deployment model as a service: the simulator
// stands in for the TIP hardware, tipd plays the role of the perf server
// that records samples online and rebuilds profiles offline on demand.
// Repeated jobs for the same (bench, seed, scale, core) reuse the cached
// capture and skip the cycle-level simulation entirely. Jobs submitted with
// "sampled":true instead run under sampled simulation (detailed measurement
// windows alternating with functional fast-forward) and bypass the capture
// cache — there is no full trace to store. Jobs submitted with "cores":[...]
// run a multi-programmed lockstep set on one shared-LLC system, profile each
// core against its own Oracle from a single core-tagged capture (cached
// keyed by the ordered core set), and export per-core pprof via ?core=N with
// a "core" sample label.
//
// Example:
//
//	tipd -listen :7171 -spill-dir /var/tmp/tipd &
//	curl -s localhost:7171/v1/jobs -d '{"bench":"imagick","scale":200000}'
//	curl -s localhost:7171/v1/jobs/j00000001
//	curl -s -o prof.pb.gz localhost:7171/v1/jobs/j00000001/pprof?profiler=TIP
//	go tool pprof -top prof.pb.gz
//
// Multicore:
//
//	curl -s localhost:7171/v1/jobs \
//	    -d '{"cores":[{"bench":"mcf","scale":200000},{"bench":"x264","scale":200000}]}'
//	curl -s -o mcf.pb.gz 'localhost:7171/v1/jobs/j00000002/pprof?profiler=TIP&core=0'
//	go tool pprof -tags mcf.pb.gz   # samples labelled core=0
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tipprof/tip/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:7171", "address to serve HTTP on")
		workers      = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 16, "max queued jobs before submissions get 429")
		cacheEntries = flag.Int("cache-entries", 8, "max captures kept in the in-memory cache")
		cacheMB      = flag.Int64("cache-mb", 1024, "max megabytes of encoded captures cached")
		spillDir     = flag.String("spill-dir", "", "persist the capture cache here across restarts (empty = off)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-job execution deadline")
		retain       = flag.Int("retain", 256, "finished jobs kept for retrieval")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight jobs before aborting them")
	)
	flag.Parse()

	s, err := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		CacheBytes:      uint64(*cacheMB) << 20,
		SpillDir:        *spillDir,
		JobTimeout:      *jobTimeout,
		MaxRetainedJobs: *retain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tipd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *listen, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("tipd: serving on %s", *listen)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("tipd: %s received, draining (timeout %s)", sig, *drainTimeout)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "tipd:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	hs.Shutdown(ctx)
	if err := s.Shutdown(ctx); err != nil {
		log.Printf("tipd: shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("tipd: drained cleanly")
}
