// Command tipd is the TIP profiling daemon: a long-running HTTP service
// that accepts profiling jobs, runs them on a bounded worker pool over the
// capture/replay pipeline, and serves the results as JSON profiles or
// gzipped pprof protobufs.
//
// This is the paper's §3.1 deployment model as a service: the simulator
// stands in for the TIP hardware, tipd plays the role of the perf server
// that records samples online and rebuilds profiles offline on demand.
// Repeated jobs for the same (bench, seed, scale, core) reuse the cached
// capture and skip the cycle-level simulation entirely. Jobs submitted with
// "sampled":true instead run under sampled simulation (detailed measurement
// windows alternating with functional fast-forward) and bypass the capture
// cache — there is no full trace to store. Jobs submitted with "cores":[...]
// run a multi-programmed lockstep set on one shared-LLC system, profile each
// core against its own Oracle from a single core-tagged capture (cached
// keyed by the ordered core set), and export per-core pprof via ?core=N with
// a "core" sample label.
//
// Example:
//
//	tipd -listen :7171 -spill-dir /var/tmp/tipd &
//	curl -s localhost:7171/v1/jobs -d '{"bench":"imagick","scale":200000}'
//	curl -s localhost:7171/v1/jobs/j00000001
//	curl -s -o prof.pb.gz localhost:7171/v1/jobs/j00000001/pprof?profiler=TIP
//	go tool pprof -top prof.pb.gz
//
// Multicore:
//
//	curl -s localhost:7171/v1/jobs \
//	    -d '{"cores":[{"bench":"mcf","scale":200000},{"bench":"x264","scale":200000}]}'
//	curl -s -o mcf.pb.gz 'localhost:7171/v1/jobs/j00000002/pprof?profiler=TIP&core=0'
//	go tool pprof -tags mcf.pb.gz   # samples labelled core=0
//
// Fleet: tipd also scales out. One instance runs as the coordinator
// (-coordinator), consistent-hashing submissions by capture key across
// worker instances that register with it (-join), all sharing one
// content-addressed capture store (-store) so a capture simulated on any
// node is served warm by every node:
//
//	tipd -coordinator -listen :7270 &
//	tipd -listen :7271 -join http://localhost:7270 -store /var/tmp/tipstore &
//	tipd -listen :7272 -join http://localhost:7270 -store /var/tmp/tipstore &
//	curl -s localhost:7270/v1/jobs -d '{"bench":"imagick","scale":200000}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/tipprof/tip/internal/fleet"
	"github.com/tipprof/tip/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:7171", "address to serve HTTP on")
		workers      = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 16, "max queued jobs before submissions get 429")
		cacheEntries = flag.Int("cache-entries", 8, "max captures kept in the in-memory cache")
		cacheMB      = flag.Int64("cache-mb", 1024, "max megabytes of encoded captures cached")
		spillDir     = flag.String("spill-dir", "", "persist the capture cache here across restarts (empty = off)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-job execution deadline")
		retain       = flag.Int("retain", 256, "finished jobs kept for retrieval")

		coordinator = flag.Bool("coordinator", false, "run as the fleet coordinator instead of a worker")
		join        = flag.String("join", "", "coordinator URL to register with (worker joins the fleet)")
		advertise   = flag.String("advertise", "", "URL the coordinator dials for this node (default http://<listen>)")
		name        = flag.String("name", "", "fleet node name (default host:port of -listen)")
		storeDir    = flag.String("store", "", "shared content-addressed capture store directory (empty = off)")
		heartbeat   = flag.Duration("heartbeat", time.Second, "fleet heartbeat interval")
		lameduck    = flag.Duration("lameduck", 0, "after drain, keep serving reads this long before closing HTTP")
	)
	drainTimeout := time.Minute
	flag.DurationVar(&drainTimeout, "draintimeout", drainTimeout, "how long shutdown waits for in-flight jobs before aborting them")
	flag.DurationVar(&drainTimeout, "drain-timeout", drainTimeout, "alias for -draintimeout")
	flag.Parse()

	if *coordinator {
		runCoordinator(*listen, drainTimeout)
		return
	}

	var store *fleet.Store
	if *storeDir != "" {
		var err error
		store, err = fleet.OpenStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tipd:", err)
			os.Exit(1)
		}
	}

	s, err := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		CacheBytes:      uint64(*cacheMB) << 20,
		SpillDir:        *spillDir,
		JobTimeout:      *jobTimeout,
		MaxRetainedJobs: *retain,
		Store:           store,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tipd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *listen, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("tipd: serving on %s", *listen)

	// Fleet membership: heartbeat our health to the coordinator so we stay
	// on its ring. The same snapshot announces drain later.
	var member *fleet.Member
	beatCtx, stopBeats := context.WithCancel(context.Background())
	defer stopBeats()
	if *join != "" {
		member = &fleet.Member{
			Coordinator: strings.TrimRight(*join, "/"),
			Name:        nodeName(*name, *listen),
			URL:         advertiseURL(*advertise, *listen),
			Interval:    *heartbeat,
			Snapshot:    func() fleet.NodeHealth { return nodeHealth(s) },
		}
		go member.Run(beatCtx)
		log.Printf("tipd: joined fleet at %s as %s (%s)", member.Coordinator, member.Name, member.URL)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("tipd: %s received, draining (timeout %s)", sig, drainTimeout)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "tipd:", err)
		os.Exit(1)
	}

	// Drain sequence: stop accepting first and tell the coordinator so it
	// routes new jobs elsewhere, then let accepted jobs finish (bounded by
	// -draintimeout), then keep HTTP up through the lame-duck window so
	// clients can still fetch the results of jobs we accepted — gate (c) of
	// a fleet drain is that no accepted job is lost.
	s.StartDrain()
	if member != nil {
		if err := member.Beat(beatCtx); err != nil {
			log.Printf("tipd: drain heartbeat: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := s.Shutdown(ctx)
	if *lameduck > 0 {
		log.Printf("tipd: drained, serving reads for %s", *lameduck)
		time.Sleep(*lameduck)
	}
	stopBeats()
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	hs.Shutdown(hctx)
	if drainErr != nil {
		log.Printf("tipd: shutdown: %v", drainErr)
		os.Exit(1)
	}
	log.Printf("tipd: drained cleanly")
}

// runCoordinator serves the fleet coordinator until SIGTERM.
func runCoordinator(listen string, drainTimeout time.Duration) {
	c := fleet.NewCoordinator(fleet.CoordinatorConfig{})
	hs := &http.Server{Addr: listen, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("tipd: coordinator serving on %s", listen)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("tipd: coordinator: %s received, shutting down", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "tipd:", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	hs.Shutdown(ctx)
}

// nodeHealth maps the server's health snapshot onto the fleet heartbeat.
func nodeHealth(s *server.Server) fleet.NodeHealth {
	h := s.Health()
	return fleet.NodeHealth{
		CoreHash:     h.CoreHash,
		Draining:     h.Draining,
		QueueDepth:   h.QueueDepth,
		QueueCap:     h.QueueCap,
		Running:      h.Running,
		Workers:      h.Workers,
		CacheEntries: h.CacheEntries,
		CacheBytes:   h.CacheBytes,
	}
}

// nodeName defaults the fleet node name to the listen address with an
// explicit host, so ":7171" and "0.0.0.0:7171" don't collide as names.
func nodeName(name, listen string) string {
	if name != "" {
		return name
	}
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return listen
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// advertiseURL picks the URL the coordinator dials: the explicit -advertise
// if given, else http://<listen> with a loopback host filled in.
func advertiseURL(adv, listen string) string {
	if adv != "" {
		return strings.TrimRight(adv, "/")
	}
	return "http://" + nodeName("", listen)
}
