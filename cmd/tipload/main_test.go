package main

import (
	"testing"
	"time"
)

// TestLoopbackFleetSmoke runs a small load against an in-process 2-worker
// fleet and checks the report's gate fields: nothing lost, repeated keys
// served warm, and every simulated capture shared through the store.
func TestLoopbackFleetSmoke(t *testing.T) {
	url, shutdown, err := spawnFleet(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	cfg := config{
		target:     url,
		clients:    4,
		jobs:       12,
		benches:    []string{"x264", "mcf"},
		seeds:      1,
		scale:      20_000,
		samples:    256,
		poll:       10 * time.Millisecond,
		jobTimeout: time.Minute,
		maxBackoff: 2 * time.Second,
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != schemaVersion || rep.UniverseKeys != 2 {
		t.Fatalf("report header = %+v", rep)
	}
	if rep.Completed != cfg.jobs || rep.Lost != 0 || rep.Failed != 0 {
		t.Fatalf("completed=%d lost=%d failed=%d rejected=%d, want %d/0/0/0",
			rep.Completed, rep.Lost, rep.Failed, rep.Rejected, cfg.jobs)
	}
	// 2 distinct keys: at most 2 simulations fleet-wide; every repeat-key
	// job must be a cache or store hit.
	if rep.Sources["simulated"] > 2 {
		t.Fatalf("%d simulations for 2 keys: %+v", rep.Sources["simulated"], rep.Sources)
	}
	if rep.RepeatKeyJobs == 0 || rep.RepeatHitRate != 1.0 {
		t.Fatalf("repeat keys %d hit rate %g, want all hits: %+v",
			rep.RepeatKeyJobs, rep.RepeatHitRate, rep)
	}
	if rep.Latency.Count != cfg.jobs || rep.Latency.P99 <= 0 {
		t.Fatalf("latency summary = %+v", rep.Latency)
	}
	if len(rep.PerNode) == 0 {
		t.Fatalf("no per-node counts: %+v", rep.PerNode)
	}
}
